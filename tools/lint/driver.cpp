// Driver: file discovery, suppression application, baseline diffing.
#include <algorithm>
#include <filesystem>
#include <fstream>
#include <sstream>

#include "lint.h"

namespace wiera::lint {

namespace {

namespace fs = std::filesystem;

bool lintable(const fs::path& p) {
  const std::string ext = p.extension().string();
  return ext == ".cpp" || ext == ".h";
}

// Collect *.cpp / *.h under each path (file or directory), repo-relative.
std::vector<std::string> collect_files(const Options& options) {
  std::vector<std::string> files;
  for (const std::string& raw : options.paths) {
    const fs::path abs = fs::path(options.root) / raw;
    std::error_code ec;
    if (fs::is_directory(abs, ec)) {
      for (auto it = fs::recursive_directory_iterator(abs, ec);
           !ec && it != fs::recursive_directory_iterator(); ++it) {
        if (it->is_regular_file(ec) && lintable(it->path())) {
          files.push_back(
              fs::relative(it->path(), options.root, ec).generic_string());
        }
      }
    } else if (fs::is_regular_file(abs, ec) && lintable(abs)) {
      files.push_back(raw);
    }
  }
  std::sort(files.begin(), files.end());
  files.erase(std::unique(files.begin(), files.end()), files.end());
  return files;
}

// Baseline file format, one grandfathered finding per line:
//   <check> <path>:<line>
// Lines starting with '#' and blank lines are ignored.
std::set<std::string> load_baseline(const std::string& path) {
  std::set<std::string> entries;
  std::ifstream in(path);
  std::string line;
  while (std::getline(in, line)) {
    const auto b = line.find_first_not_of(" \t\r");
    if (b == std::string::npos || line[b] == '#') continue;
    const auto e = line.find_last_not_of(" \t\r");
    entries.insert(line.substr(b, e - b + 1));
  }
  return entries;
}

std::string baseline_key(const Finding& f) {
  return f.check + " " + f.file + ":" + std::to_string(f.line);
}

}  // namespace

RunResult run_lint(const Options& options) {
  RunResult result;
  Project project;

  std::vector<Finding> all;  // includes bad-suppression findings
  for (const std::string& rel : collect_files(options)) {
    const std::string abs =
        (std::filesystem::path(options.root) / rel).string();
    project.files.push_back(load_source(abs, rel, all));
  }
  result.files_scanned = static_cast<int>(project.files.size());
  build_tables(project);

  const auto checks = make_all_checks();
  for (const SourceFile& file : project.files) {
    for (const auto& check : checks) {
      if (!options.only.empty() && options.only.count(check->name()) == 0) {
        continue;
      }
      check->run(file, project, all);
    }
  }

  // Apply suppressions. bad-suppression itself cannot be suppressed.
  std::vector<Finding> kept;
  for (Finding& f : all) {
    bool suppressed = false;
    if (f.check != "bad-suppression") {
      for (const SourceFile& file : project.files) {
        if (file.path != f.file) continue;
        for (const Suppression& s : file.suppressions) {
          if (s.check == f.check && s.target_line == f.line) {
            suppressed = true;
            break;
          }
        }
        break;
      }
    }
    if (suppressed) {
      result.suppressed++;
    } else {
      kept.push_back(std::move(f));
    }
  }
  std::sort(kept.begin(), kept.end());
  kept.erase(std::unique(kept.begin(), kept.end(),
                         [](const Finding& a, const Finding& b) {
                           return a.check == b.check && a.file == b.file &&
                                  a.line == b.line && a.message == b.message;
                         }),
             kept.end());

  if (!options.write_baseline_path.empty()) {
    std::ofstream out(options.write_baseline_path);
    out << "# wiera-lint baseline: grandfathered findings, one per line\n"
        << "# (regenerate with --write-baseline; shrink it, never grow "
           "it)\n";
    for (const Finding& f : kept) out << baseline_key(f) << "\n";
  }

  std::set<std::string> baseline;
  if (!options.baseline_path.empty()) {
    baseline = load_baseline(options.baseline_path);
  }
  for (Finding& f : kept) {
    if (baseline.count(baseline_key(f)) > 0) {
      result.baselined++;
    } else {
      result.findings.push_back(std::move(f));
    }
  }
  return result;
}

}  // namespace wiera::lint
