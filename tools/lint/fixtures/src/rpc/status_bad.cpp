// Fixture: status-discipline positives — the two laundering shapes.
namespace fx {

struct Status {
  bool ok() const { return true; }
};

Status do_send();

void drop_call() {
  (void)do_send();
}

void drop_local() {
  Status st = do_send();
  (void)st;
}

}  // namespace fx
