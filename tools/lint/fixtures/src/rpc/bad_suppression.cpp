// Fixture: malformed suppressions. A reason-less allow() and an allow()
// naming an unknown check each yield a bad-suppression finding and do NOT
// suppress anything — the status finding below must still fire.
namespace fx {

struct Status {};

Status poke();

void nope() {
  (void)poke();  // wiera-lint: allow(status-discipline)
}

void unknown() {
  // wiera-lint: allow(made-up-check) not a real check
  int x = 1;
  (void)x;
}

}  // namespace fx
