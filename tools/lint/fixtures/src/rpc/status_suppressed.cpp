// Fixture: status-discipline suppression on the code line itself.
namespace fx {

struct Status {};

Status fire_and_forget();

void launch() {
  (void)fire_and_forget();  // wiera-lint: allow(status-discipline) best-effort probe, failure is expected
}

}  // namespace fx
