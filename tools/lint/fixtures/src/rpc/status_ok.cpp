// Fixture: status-discipline negatives — (void) on non-status values, and a
// handled status.
namespace fx {

struct Status {
  bool ok() const { return true; }
};

struct Widget {
  int frob();
};

Status probe();

int fine() {
  Widget w;
  (void)w.frob();
  int unused = 3;
  (void)unused;
  Status st = probe();
  if (!st.ok()) {
    return 1;
  }
  return 0;
}

}  // namespace fx
