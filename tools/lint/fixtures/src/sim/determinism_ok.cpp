// Fixture: determinism-source negatives — member calls and declarations
// named like libc functions must not fire.
namespace fx {

struct Sim {
  long now() const { return 7; }
};

struct Vm {
  long create_time = 0;
};

struct Clocky {
  long time() const { return 1; }
  int clock() const { return 2; }
};

long good(const Sim& sim, const Vm& vm, const Clocky& c) {
  return sim.now() + vm.create_time + c.time() + c.clock();
}

}  // namespace fx
