// Fixture: determinism-source positives. Never compiled — lexed only.
#include <chrono>

namespace fx {

long wall_now() {
  auto t = std::chrono::system_clock::now();
  return t.time_since_epoch().count() + std::time(nullptr);
}

int roll() {
  return rand() % 6;
}

}  // namespace fx
