// Fixture: determinism-source suppression with a reason.
namespace fx {

long legacy() {
  // wiera-lint: allow(determinism-source) interop shim, measured offline only
  return std::time(nullptr);
}

}  // namespace fx
