// Fixture: unordered-iteration suppression with a reason.
#include <string>
#include <unordered_map>

namespace fx {

struct Sup {
  std::unordered_map<std::string, int> stats_;

  int total() const {
    int t = 0;
    // wiera-lint: allow(unordered-iteration) commutative sum, order-free
    for (const auto& [k, v] : stats_) t += v + static_cast<int>(k.size());
    return t;
  }
};

}  // namespace fx
