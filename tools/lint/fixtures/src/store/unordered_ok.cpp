// Fixture: unordered-iteration negatives — ordered containers, vectors, and
// a name that is declared both ordered and unordered somewhere in the tree
// (ambiguous, deliberately skipped).
#include <map>
#include <vector>

namespace fx {

struct Ok {
  std::map<int, int> m_;
  std::vector<int> v_;
  std::map<int, int> ambiguous_;

  int sum() const {
    int t = 0;
    for (const auto& [k, x] : m_) t += k + x;
    for (int x : v_) t += x;
    for (const auto& [k, x] : ambiguous_) t += k + x;
    return t;
  }
};

}  // namespace fx
