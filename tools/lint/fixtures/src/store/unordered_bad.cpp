// Fixture: unordered-iteration positive.
#include <map>
#include <string>
#include <unordered_map>

namespace fx {

struct Table {
  std::unordered_map<std::string, int> counts_;
  std::map<std::string, int> sorted_;
  std::unordered_map<std::string, int> ambiguous_;

  int render() const {
    int total = 0;
    for (const auto& [k, v] : counts_) {
      total += v + static_cast<int>(k.size());
    }
    for (const auto& [k, v] : sorted_) {
      total += v + static_cast<int>(k.size());
    }
    return total;
  }
};

}  // namespace fx
