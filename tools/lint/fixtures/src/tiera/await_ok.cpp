// Fixture: await-hazard negatives — copy-before-await, re-fetch after
// resume, the awaited expression itself (evaluated pre-suspension), a copied
// snapshot loop, and a co_await inside a nested lambda (barrier: it suspends
// the lambda's coroutine, not the enclosing function).
#include <vector>

namespace fx {

struct Task {};
struct Obj {
  int size = 0;
};

void schedule(Task t);

struct Inst {
  std::vector<Obj> objs_;
  std::vector<int> order_;

  Task wait();
  Task push(int v);

  Task copy_before_await(int* out) {
    Obj* obj = &objs_[0];
    const int size = obj->size;
    co_await wait();
    out[0] = size;
  }

  Task refetch_after_await(int* out) {
    Obj* obj = &objs_[0];
    co_await wait();
    obj = &objs_[1];
    out[0] = obj->size;
  }

  Task awaited_expression_runs_before_suspension() {
    Obj* obj = &objs_[0];
    co_await push(obj->size);
  }

  Task snapshot_loop() {
    const std::vector<int> snapshot = order_;
    for (int id : snapshot) {
      co_await push(id);
    }
  }

  void lambda_in_loop() {
    for (int id : order_) {
      auto spawn = [this, id]() -> Task {
        co_await push(id);
        co_return;
      };
      schedule(spawn());
    }
  }
};

}  // namespace fx
