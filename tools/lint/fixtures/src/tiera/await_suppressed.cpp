// Fixture: await-hazard suppression (comment alone targets the next line).
#include <vector>

namespace fx {

struct Task {};

struct Inst {
  std::vector<int> order_;

  Task wait();

  Task stable_iteration() {
    // wiera-lint: allow(await-hazard) order_ is append-only while replaying
    for (int id : order_) {
      co_await wait();
      use(id);
    }
  }
};

}  // namespace fx
