// Fixture: await-hazard positives — the three flagged shapes.
#include <mutex>
#include <vector>

namespace fx {

struct Task {};
struct Obj {
  int size = 0;
};

struct Inst {
  std::vector<Obj> objs_;
  std::vector<int> order_;
  std::mutex mu_;

  Task wait();

  Task use_after_await(int* out) {
    Obj* obj = &objs_[0];
    co_await wait();
    out[0] = obj->size;
  }

  Task guard_across_await() {
    std::lock_guard<std::mutex> lock(mu_);
    co_await wait();
  }

  Task iterate_member() {
    for (int id : order_) {
      co_await wait();
      out(id);
    }
  }
};

}  // namespace fx
