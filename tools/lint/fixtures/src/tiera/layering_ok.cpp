// Fixture: layering negatives — sanctioned downward edges and a
// same-directory include.
#include "common/status.h"
#include "local_header.h"
#include "store/tier.h"

namespace fx {
int mid();
}
