// Fixture: layering positives — `common` is the bottom layer and must not
// reach up into sim or wiera.
#include "sim/sim.h"
#include "wiera/peer.h"

namespace fx {
int bottom();
}
