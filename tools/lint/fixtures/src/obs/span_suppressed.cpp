// Fixture: span-pairing suppression.
namespace fx {

struct TraceContext {
  int id = 0;
};

struct Tracer {
  TraceContext start_trace(const char* name);
};

Tracer& tracer();

int last_id;

int intentionally_open() {
  // wiera-lint: allow(span-pairing) span closed by the shutdown flusher via its id
  TraceContext ctx = tracer().start_trace("background");
  last_id = ctx.id;
  return last_id;
}

}  // namespace fx
