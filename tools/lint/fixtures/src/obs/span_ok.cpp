// Fixture: span-pairing negatives — closed in-function, returned to the
// caller, and handed to a callee that owns the close. annotate() is neither
// a close nor an escape.
namespace fx {

struct TraceContext {
  int id = 0;
};

struct Tracer {
  TraceContext start_trace(const char* name);
  TraceContext start_span(const TraceContext& parent, const char* name);
  void end_span(const TraceContext& ctx, int status);
  void annotate(const TraceContext& ctx, const char* note);
};

Tracer& tracer();
void do_work(const TraceContext& ctx);

void closed_span() {
  TraceContext ctx = tracer().start_trace("op");
  tracer().annotate(ctx, "phase");
  tracer().end_span(ctx, 0);
}

TraceContext returned_span() {
  TraceContext ctx = tracer().start_trace("op");
  return ctx;
}

void passed_span() {
  TraceContext ctx = tracer().start_span(returned_span(), "sub");
  do_work(ctx);
}

}  // namespace fx
