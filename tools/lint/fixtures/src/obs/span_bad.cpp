// Fixture: span-pairing positives — a context that neither closes nor
// escapes, and a start_trace() whose result is dropped on the floor.
namespace fx {

struct TraceContext {
  int id = 0;
};

struct Tracer {
  TraceContext start_trace(const char* name);
  TraceContext start_span(const TraceContext& parent, const char* name);
  void end_span(const TraceContext& ctx, int status);
  void annotate(const TraceContext& ctx, const char* note);
};

Tracer& tracer();

int leaked_span() {
  TraceContext ctx = tracer().start_trace("op");
  int work = ctx.id;
  return work;
}

void dropped_trace() {
  tracer().start_trace("op");
}

}  // namespace fx
