// Fixture: layering suppression on the include line below the comment.
// wiera-lint: allow(layering) transitional: printer moves into policy next PR
#include "obs/trace.h"

namespace fx {
int pol();
}
