#include <cctype>
#include <cstring>

#include "lint.h"

namespace wiera::lint {

namespace {

bool ident_start(char c) {
  return std::isalpha(static_cast<unsigned char>(c)) || c == '_';
}
bool ident_char(char c) {
  return std::isalnum(static_cast<unsigned char>(c)) || c == '_';
}

// Longest-match multi-char punctuation. `>>` is kept as one token; template
// matching treats it as two closers.
const char* kPuncts[] = {
    "<<=", ">>=", "<=>", "->*", "...", "::", "->", "<<", ">>", "<=", ">=",
    "==",  "!=",  "&&",  "||",  "+=", "-=", "*=", "/=", "%=", "&=", "|=",
    "^=",  "++",  "--",  "##",
};

}  // namespace

std::vector<Token> lex(const std::string& text) {
  std::vector<Token> toks;
  size_t i = 0;
  const size_t n = text.size();
  int line = 1;

  auto push = [&](Token::Kind kind, std::string t, int l) {
    toks.push_back(Token{kind, std::move(t), l});
  };

  while (i < n) {
    const char c = text[i];
    if (c == '\n') {
      line++;
      i++;
      continue;
    }
    if (std::isspace(static_cast<unsigned char>(c))) {
      i++;
      continue;
    }
    // Line comment.
    if (c == '/' && i + 1 < n && text[i + 1] == '/') {
      while (i < n && text[i] != '\n') i++;
      continue;
    }
    // Block comment.
    if (c == '/' && i + 1 < n && text[i + 1] == '*') {
      i += 2;
      while (i + 1 < n && !(text[i] == '*' && text[i + 1] == '/')) {
        if (text[i] == '\n') line++;
        i++;
      }
      i = i + 2 <= n ? i + 2 : n;
      continue;
    }
    // Raw string literal: R"delim( ... )delim".
    if (c == 'R' && i + 1 < n && text[i + 1] == '"') {
      size_t d = i + 2;
      while (d < n && text[d] != '(') d++;
      const std::string delim = text.substr(i + 2, d - (i + 2));
      const std::string closer = ")" + delim + "\"";
      size_t end = text.find(closer, d);
      if (end == std::string::npos) end = n;
      const int start_line = line;
      for (size_t k = i; k < end && k < n; ++k) {
        if (text[k] == '\n') line++;
      }
      push(Token::Kind::kString, text.substr(i, end + closer.size() - i),
           start_line);
      i = end + closer.size() > n ? n : end + closer.size();
      continue;
    }
    // String / char literal.
    if (c == '"' || c == '\'') {
      const char quote = c;
      const int start_line = line;
      size_t j = i + 1;
      while (j < n && text[j] != quote) {
        if (text[j] == '\\' && j + 1 < n) j++;
        if (text[j] == '\n') line++;
        j++;
      }
      j = j < n ? j + 1 : n;
      push(quote == '"' ? Token::Kind::kString : Token::Kind::kChar,
           text.substr(i, j - i), start_line);
      i = j;
      continue;
    }
    if (ident_start(c)) {
      size_t j = i + 1;
      while (j < n && ident_char(text[j])) j++;
      push(Token::Kind::kIdent, text.substr(i, j - i), line);
      i = j;
      continue;
    }
    if (std::isdigit(static_cast<unsigned char>(c)) ||
        (c == '.' && i + 1 < n &&
         std::isdigit(static_cast<unsigned char>(text[i + 1])))) {
      // pp-number: digits, idents, dots, and exponent signs.
      size_t j = i + 1;
      while (j < n &&
             (ident_char(text[j]) || text[j] == '.' ||
              ((text[j] == '+' || text[j] == '-') &&
               (text[j - 1] == 'e' || text[j - 1] == 'E' ||
                text[j - 1] == 'p' || text[j - 1] == 'P')))) {
        j++;
      }
      push(Token::Kind::kNumber, text.substr(i, j - i), line);
      i = j;
      continue;
    }
    // Backslash-newline continuation.
    if (c == '\\' && i + 1 < n && text[i + 1] == '\n') {
      line++;
      i += 2;
      continue;
    }
    bool matched = false;
    for (const char* p : kPuncts) {
      const size_t len = std::strlen(p);
      if (text.compare(i, len, p) == 0) {
        push(Token::Kind::kPunct, p, line);
        i += len;
        matched = true;
        break;
      }
    }
    if (matched) continue;
    push(Token::Kind::kPunct, std::string(1, c), line);
    i++;
  }
  push(Token::Kind::kEof, "", line);
  return toks;
}

size_t match_angle(const std::vector<Token>& toks, size_t open, size_t limit) {
  int depth = 0;
  for (size_t i = open; i < limit && i < toks.size(); ++i) {
    const std::string& t = toks[i].text;
    if (t == "<") depth++;
    else if (t == ">") {
      if (--depth == 0) return i;
    } else if (t == ">>") {
      depth -= 2;
      if (depth <= 0) return i;
    } else if (t == ";" || t == "{") {
      return open;  // not a template argument list after all
    }
  }
  return open;
}

}  // namespace wiera::lint
