// span-pairing: every trace span opened with start_span()/start_trace() must
// be provably closed (an end_span() on the same context in the same function
// body) or escape to whoever owns closing it (returned, or passed to another
// function). A span that is neither leaks: the SimChecker reports
// kLeakedSpan at quiescence (PR 5), but only on paths a test actually
// drives — this check catches the leak at analysis time on every path.
//
// Escape forms that silence the check:
//   return X / co_return X          the caller owns the close
//   f(..., X, ...)                  the callee (or a later finish helper)
//                                   owns it — any call other than
//                                   end_span/annotate counts
//   member = X / X stored           ownership moved into an object
//
// A start_span()/start_trace() whose result is dropped on the floor
// (`tracer().start_trace(...);` as a statement) is always a finding: the
// context is the only handle that can ever close the span.
#include "lint.h"

namespace wiera::lint {

namespace {

class SpanPairingCheck : public Check {
 public:
  std::string name() const override { return "span-pairing"; }
  std::string description() const override {
    return "every opened trace span is closed (end_span) or escapes to its "
           "closer";
  }

  void run(const SourceFile& file, const Project&,
           std::vector<Finding>& out) const override {
    if (file.module.empty()) return;  // src/ only
    const auto& toks = file.tokens;

    // Function body extents, innermost-first lookup.
    std::vector<std::pair<size_t, size_t>> bodies;
    for (size_t i = 0; i < toks.size(); ++i) {
      if (toks[i].text == "{" && is_function_body_brace(toks, i)) {
        bodies.emplace_back(i, match_brace(toks, i));
      }
    }
    auto enclosing_body_end = [&](size_t i) -> size_t {
      size_t best_start = 0, best_end = toks.size();
      bool found = false;
      for (const auto& [b, e] : bodies) {
        if (b < i && i < e && (!found || b > best_start)) {
          best_start = b;
          best_end = e;
          found = true;
        }
      }
      return best_end;
    };

    for (size_t i = 0; i + 1 < toks.size(); ++i) {
      if (toks[i].kind != Token::Kind::kIdent) continue;
      const std::string& t = toks[i].text;
      if (t != "start_span" && t != "start_trace") continue;
      if (toks[i + 1].text != "(") continue;
      // Skip declarations (`TraceContext start_trace(...)` in headers):
      // a call site is preceded by `.` `->` `=` `(` `,` `return` etc.,
      // a declaration by a type name.
      if (i > 0 && toks[i - 1].kind == Token::Kind::kIdent &&
          toks[i - 1].text != "return" && toks[i - 1].text != "co_return") {
        continue;
      }

      // The variable receiving the context: walk back over `tracer ( ) .`
      // style qualifiers to an `=`; the ident before it is the name.
      std::string var;
      size_t j = i;
      while (j > 0) {
        const std::string& p = toks[j - 1].text;
        if (p == "." || p == "->" || p == "::" || p == ")" || p == "(" ||
            (toks[j - 1].kind == Token::Kind::kIdent && p != "return" &&
             p != "co_return")) {
          j--;
          continue;
        }
        break;
      }
      if (j > 1 && toks[j - 1].text == "=" &&
          toks[j - 2].kind == Token::Kind::kIdent) {
        var = toks[j - 2].text;
      }

      const size_t body_end = enclosing_body_end(i);

      if (var.empty()) {
        // Not assigned to a variable. Passed straight into a call or
        // returned → escaped; discarded as a statement → leak.
        const size_t call_close = [&] {
          int depth = 0;
          for (size_t k = i + 1; k < toks.size(); ++k) {
            if (toks[k].text == "(") depth++;
            else if (toks[k].text == ")" && --depth == 0) return k;
          }
          return toks.size();
        }();
        const bool discarded =
            call_close + 1 < toks.size() && toks[call_close + 1].text == ";" &&
            (j == 0 || toks[j - 1].text == ";" || toks[j - 1].text == "{" ||
             toks[j - 1].text == "}");
        if (discarded) {
          out.push_back(
              {name(), file.path, toks[i].line,
               t + "() result discarded: the returned TraceContext is the "
                   "only handle that can close this span",
               "assign the context and end_span() it, or drop the call"});
        }
        continue;
      }

      // Scan the rest of the enclosing function for a close or an escape.
      bool closed = false, escaped = false;
      for (size_t k = i; k < body_end && k < toks.size(); ++k) {
        if (toks[k].kind != Token::Kind::kIdent || toks[k].text != var) {
          continue;
        }
        const std::string& prev = toks[k - 1].text;
        const std::string& next =
            k + 1 < toks.size() ? toks[k + 1].text : std::string();
        // `end_span(var` or `end_span(var,` closes it.
        if (prev == "(" && k >= 2 &&
            toks[k - 2].text == "end_span") {
          closed = true;
          break;
        }
        // `return var` / `co_return var` escapes.
        if (prev == "return" || prev == "co_return") {
          escaped = true;
          break;
        }
        // Argument position in any other call: `foo(..., var` — the callee
        // owns closing. annotate() doesn't close, skip it.
        if ((prev == "(" || prev == ",")) {
          // Find the callee of this argument list.
          int depth = 0;
          size_t c = k;
          while (c > 0) {
            const std::string& ct = toks[c].text;
            if (ct == ")") depth++;
            else if (ct == "(") {
              if (depth == 0) break;
              depth--;
            }
            c--;
          }
          const std::string callee =
              c > 0 && toks[c - 1].kind == Token::Kind::kIdent
                  ? toks[c - 1].text
                  : "";
          if (callee != "annotate" && callee != "end_span") {
            escaped = true;
            break;
          }
          continue;
        }
        // Stored somewhere (`x = var;`) escapes.
        if (prev == "=" && next == ";") {
          escaped = true;
          break;
        }
      }
      if (closed || escaped) continue;
      out.push_back(
          {name(), file.path, toks[i].line,
           "trace span context '" + var +
               "' is opened here but never closed in this function and "
               "never escapes — the span leaks (SimChecker kLeakedSpan at "
               "quiescence)",
           "call tracer().end_span(" + var +
               ", status) on every exit path, or pass/return the context "
               "to whoever finishes the span"});
    }
  }
};

}  // namespace

std::unique_ptr<Check> make_span_check() {
  return std::make_unique<SpanPairingCheck>();
}

}  // namespace wiera::lint
