// Source loading, suppression parsing, and project-wide symbol tables.
#include <algorithm>
#include <cstring>
#include <fstream>
#include <sstream>

#include "lint.h"

namespace wiera::lint {

namespace {

const char* kKnownChecks[] = {
    "determinism-source", "unordered-iteration", "status-discipline",
    "await-hazard",       "span-pairing",        "layering",
};

bool known_check(const std::string& name) {
  for (const char* c : kKnownChecks) {
    if (name == c) return true;
  }
  return false;
}

std::string trim(std::string s) {
  const auto b = s.find_first_not_of(" \t\r");
  const auto e = s.find_last_not_of(" \t\r");
  if (b == std::string::npos) return "";
  return s.substr(b, e - b + 1);
}

// Module of a repo-relative path: "src/sim/sync.h" -> "sim"; "" outside src/.
std::string module_of(const std::string& path) {
  if (path.rfind("src/", 0) != 0) return "";
  const size_t slash = path.find('/', 4);
  if (slash == std::string::npos) return "";
  return path.substr(4, slash - 4);
}

// Parse `// wiera-lint: allow(<check>) <reason>` comments line by line.
// A comment on a code line suppresses that line; a comment alone on its line
// suppresses the next line.
void parse_suppressions(SourceFile& file, std::vector<Finding>& out) {
  std::istringstream in(file.text);
  std::string raw;
  int line_no = 0;
  while (std::getline(in, raw)) {
    line_no++;
    const size_t at = raw.find("wiera-lint:");
    if (at == std::string::npos) continue;
    const size_t comment = raw.rfind("//", at);
    if (comment == std::string::npos) continue;  // not in a line comment
    std::string rest = trim(raw.substr(at + std::strlen("wiera-lint:")));
    if (rest.rfind("allow(", 0) != 0) {
      out.push_back({"bad-suppression", file.path, line_no,
                     "unrecognized wiera-lint directive (expected "
                     "`allow(<check>) <reason>`)",
                     "write `// wiera-lint: allow(<check>) <reason>`"});
      continue;
    }
    const size_t close = rest.find(')');
    if (close == std::string::npos) continue;
    const std::string check = trim(rest.substr(6, close - 6));
    const std::string reason = trim(rest.substr(close + 1));
    if (!known_check(check)) {
      out.push_back({"bad-suppression", file.path, line_no,
                     "allow(" + check + ") names an unknown check",
                     "see wiera-lint --list-checks for valid names"});
      continue;
    }
    if (reason.empty()) {
      out.push_back({"bad-suppression", file.path, line_no,
                     "allow(" + check + ") carries no reason; every "
                     "suppression must justify itself",
                     "append a short reason after the closing parenthesis"});
      continue;
    }
    const bool comment_only = trim(raw.substr(0, comment)).empty();
    Suppression s;
    s.check = check;
    s.reason = reason;
    s.comment_line = line_no;
    s.target_line = comment_only ? line_no + 1 : line_no;
    file.suppressions.push_back(std::move(s));
  }
}

void parse_includes(SourceFile& file) {
  std::istringstream in(file.text);
  std::string raw;
  int line_no = 0;
  while (std::getline(in, raw)) {
    line_no++;
    std::string s = trim(raw);
    if (s.empty() || s[0] != '#') continue;
    s = trim(s.substr(1));
    if (s.rfind("include", 0) != 0) continue;
    s = trim(s.substr(std::strlen("include")));
    if (s.size() < 2 || s[0] != '"') continue;  // system headers exempt
    const size_t close = s.find('"', 1);
    if (close == std::string::npos) continue;
    file.includes.emplace_back(line_no, s.substr(1, close - 1));
  }
}

// --- project tables --------------------------------------------------------

bool is_unordered_name(const std::string& t) {
  return t == "unordered_map" || t == "unordered_set" ||
         t == "unordered_multimap" || t == "unordered_multiset";
}

bool is_ordered_name(const std::string& t) {
  return t == "map" || t == "set" || t == "multimap" || t == "multiset";
}

// After `unordered_map<...>` (or map<...>), record the declared variable
// names until the statement ends.
void collect_container_decls(const SourceFile& file, Project& project) {
  const auto& toks = file.tokens;
  for (size_t i = 0; i + 1 < toks.size(); ++i) {
    if (toks[i].kind != Token::Kind::kIdent) continue;
    int kind = 0;
    if (is_unordered_name(toks[i].text)) kind = Project::kUnordered;
    else if (is_ordered_name(toks[i].text)) kind = Project::kOrdered;
    if (kind == 0) continue;
    size_t j = i + 1;
    if (toks[j].text != "<") continue;  // e.g. `using map;` — not a decl
    const size_t close = match_angle(toks, j, toks.size());
    if (close == j) continue;
    j = close + 1;
    // Declarators: [*|&] name [, name ...] terminated by ; = { ( )
    while (j < toks.size()) {
      while (toks[j].text == "*" || toks[j].text == "&" ||
             toks[j].text == "const") {
        j++;
      }
      if (toks[j].kind != Token::Kind::kIdent) break;
      project.container_vars[toks[j].text] |= kind;
      j++;
      if (toks[j].text == ",") { j++; continue; }
      break;
    }
  }
}

// Record function names whose declared return type is Status, Result<T>,
// Task<Status> or Task<Result<T>>. Token shapes:
//   Status  name (          Result < ... > name (
//   Task < Status > name (  Task < Result < ... > > name (
void collect_status_functions(const SourceFile& file, Project& project) {
  const auto& toks = file.tokens;
  auto add_if_fn = [&](size_t name_idx) {
    if (name_idx + 1 >= toks.size()) return;
    if (toks[name_idx].kind != Token::Kind::kIdent) return;
    if (toks[name_idx + 1].text != "(") return;
    const std::string& name = toks[name_idx].text;
    if (name == "operator") return;
    project.status_functions.insert(name);
  };
  for (size_t i = 0; i + 1 < toks.size(); ++i) {
    if (toks[i].kind != Token::Kind::kIdent) continue;
    const std::string& t = toks[i].text;
    if (t == "Status") {
      // `Status name(`; skip `Status(` ctor calls and `Status&` refs.
      add_if_fn(i + 1);
    } else if (t == "Result" || t == "Task") {
      if (toks[i + 1].text != "<") continue;
      const size_t close = match_angle(toks, i + 1, toks.size());
      if (close == i + 1) continue;
      if (t == "Result") {
        add_if_fn(close + 1);
      } else {
        // Task<...>: only status-ish payloads count.
        bool statusy = false;
        for (size_t k = i + 2; k < close; ++k) {
          if (toks[k].text == "Status" || toks[k].text == "Result") {
            statusy = true;
            break;
          }
        }
        if (statusy) add_if_fn(close + 1);
      }
    }
  }
}

}  // namespace

SourceFile load_source(const std::string& path, std::string virtual_path,
                       std::vector<Finding>& out) {
  SourceFile file;
  file.path = std::move(virtual_path);
  file.module = module_of(file.path);
  file.is_header = file.path.size() > 2 &&
                   file.path.compare(file.path.size() - 2, 2, ".h") == 0;
  std::ifstream in(path);
  std::ostringstream buf;
  buf << in.rdbuf();
  file.text = buf.str();
  file.tokens = lex(file.text);
  parse_suppressions(file, out);
  parse_includes(file);
  return file;
}

void build_tables(Project& project) {
  for (const SourceFile& file : project.files) {
    collect_container_decls(file, project);
    collect_status_functions(file, project);
  }

  // The sanctioned module DAG. This is the *measured* dependency structure
  // of the tree, frozen as policy: an include edge is admissible iff the
  // target module is in the transitive closure of the including module's
  // sanctioned deps. Growing a module's reach is a deliberate act — edit
  // this table (and docs/STATIC_ANALYSIS.md) in the same PR.
  auto& d = project.module_deps;
  d["common"] = {};
  d["obs"] = {"common"};
  d["policy"] = {"common"};
  d["sim"] = {"common", "obs"};
  d["net"] = {"common", "sim"};
  d["store"] = {"common", "sim"};
  d["rpc"] = {"common", "net", "obs", "sim"};
  d["metadb"] = {"common", "rpc"};
  d["coord"] = {"common", "rpc", "sim"};
  d["cost"] = {"common", "net", "store"};
  d["tiera"] = {"common", "metadb", "obs", "policy", "sim", "store"};
  d["wiera"] = {"common", "coord", "net", "obs", "policy", "rpc", "sim",
                "tiera"};
  d["ycsb"] = {"common", "wiera"};
  d["vfs"] = {"common", "wiera"};
  d["apps"] = {"common", "vfs"};

  // Transitive closure.
  for (const auto& [mod, deps] : d) {
    std::set<std::string>& closure = project.allowed_deps[mod];
    std::vector<std::string> work(deps.begin(), deps.end());
    while (!work.empty()) {
      std::string m = work.back();
      work.pop_back();
      if (!closure.insert(m).second) continue;
      auto it = d.find(m);
      if (it == d.end()) continue;
      for (const std::string& next : it->second) work.push_back(next);
    }
  }
}

size_t match_brace(const std::vector<Token>& toks, size_t open) {
  int depth = 0;
  for (size_t i = open; i < toks.size(); ++i) {
    if (toks[i].text == "{") depth++;
    else if (toks[i].text == "}" && --depth == 0) return i;
  }
  return toks.size();
}

bool is_function_body_brace(const std::vector<Token>& toks, size_t i) {
  if (i == 0 || toks[i].text != "{") return false;
  // Walk back over trailing specifiers and trailing-return-type tokens.
  size_t j = i - 1;
  auto skippable = [](const Token& t) {
    if (t.kind == Token::Kind::kIdent) {
      return t.text == "const" || t.text == "noexcept" ||
             t.text == "override" || t.text == "final" ||
             t.text == "mutable" || t.text == "try";
    }
    // Pieces of a trailing return type: `-> sim::Task<void>`.
    return t.text == "->" || t.text == "::" || t.text == "<" ||
           t.text == ">" || t.text == ">>" || t.text == "*" || t.text == "&";
  };
  while (j > 0 && (skippable(toks[j]) ||
                   (toks[j].kind == Token::Kind::kIdent && j > 0 &&
                    (toks[j - 1].text == "->" || toks[j - 1].text == "::" ||
                     toks[j - 1].text == "<")))) {
    j--;
  }
  if (toks[j].text != ")") return false;
  // Backwards paren match, then look at what introduced the paren group.
  int depth = 0;
  size_t k = j;
  while (true) {
    if (toks[k].text == ")") depth++;
    else if (toks[k].text == "(" && --depth == 0) break;
    if (k == 0) return false;
    k--;
  }
  if (k == 0) return false;
  const std::string& intro = toks[k - 1].text;
  if (intro == "if" || intro == "while" || intro == "for" ||
      intro == "switch" || intro == "catch") {
    return false;
  }
  // `](...)` is a lambda; `name(...)` / `operator()(...)` a function.
  return true;
}

std::string render(const Finding& f, bool fix_hints) {
  std::string out = f.file + ":" + std::to_string(f.line) + ": [" + f.check +
                    "] " + f.message;
  if (fix_hints && !f.hint.empty()) out += "\n    fix-hint: " + f.hint;
  out += "\n";
  return out;
}

}  // namespace wiera::lint
