// determinism-source: ban wall clocks, OS randomness and OS scheduling in
// sim-reachable code (everything under src/). The determinism trace hash
// (docs/DETERMINISM.md, PR 1) only replays if every timestamp flows through
// Simulation::now() and every random draw through the seed-derived
// wiera::Rng — one stray std::chrono or rand() call desynchronizes every
// seed-replay test without failing any of them locally.
#include "lint.h"

namespace wiera::lint {

namespace {

// Any appearance of these identifiers is a finding.
const char* kBannedIdents[] = {
    "system_clock",    "steady_clock", "high_resolution_clock",
    "random_device",   "mt19937",      "mt19937_64",
    "default_random_engine", "minstd_rand", "minstd_rand0",
    "ranlux24",        "ranlux48",     "knuth_b",
    "gettimeofday",    "clock_gettime", "timespec_get",
    "localtime",       "gmtime",       "mktime",
    "chrono",          "sleep_for",    "sleep_until",
    "this_thread",
};

// Banned only as a direct (or std::-qualified) function call, so member
// functions like `vm.create_time` or `sim_->time()` stay legal.
const char* kBannedCalls[] = {"rand", "srand", "time", "clock", "random",
                              "drand48", "lrand48"};

bool banned_ident(const std::string& t) {
  for (const char* b : kBannedIdents) {
    if (t == b) return true;
  }
  return false;
}

bool banned_call(const std::string& t) {
  for (const char* b : kBannedCalls) {
    if (t == b) return true;
  }
  return false;
}

class DeterminismCheck : public Check {
 public:
  std::string name() const override { return "determinism-source"; }
  std::string description() const override {
    return "no wall-clock / OS randomness in sim-reachable code "
           "(use Simulation::now() and wiera::Rng)";
  }

  void run(const SourceFile& file, const Project&,
           std::vector<Finding>& out) const override {
    if (file.module.empty()) return;  // only src/ is sim-reachable
    const auto& toks = file.tokens;
    for (size_t i = 0; i < toks.size(); ++i) {
      if (toks[i].kind != Token::Kind::kIdent) continue;
      const std::string& t = toks[i].text;
      if (banned_ident(t)) {
        out.push_back(
            {name(), file.path, toks[i].line,
             "nondeterministic source '" + t + "' in sim-reachable code",
             "route time through Simulation::now() / common/time.h and "
             "randomness through the seed-derived wiera::Rng"});
        continue;
      }
      if (!banned_call(t)) continue;
      if (i + 1 >= toks.size() || toks[i + 1].text != "(") continue;
      // Member calls (`x.time(...)`, `sim_->clock(...)`) are fine, as are
      // declarations (`long time() const` — preceded by a type name); only
      // a bare or std::-qualified call hits the C library.
      if (i > 0) {
        const std::string& prev = toks[i - 1].text;
        if (prev == "." || prev == "->") continue;
        if (prev == "::") {
          if (!(i >= 2 && toks[i - 2].text == "std")) continue;
        } else if (toks[i - 1].kind == Token::Kind::kIdent &&
                   prev != "return" && prev != "co_return" &&
                   prev != "co_await") {
          continue;  // declaration or qualified type, not a call
        }
      }
      out.push_back(
          {name(), file.path, toks[i].line,
           "call to nondeterministic '" + t + "()' in sim-reachable code",
           "use Simulation::now() for time and wiera::Rng for randomness"});
    }
  }
};

}  // namespace

std::unique_ptr<Check> make_determinism_check() {
  return std::make_unique<DeterminismCheck>();
}

}  // namespace wiera::lint
