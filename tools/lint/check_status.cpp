// status-discipline: catch (void)-laundered Status / Result<T>.
//
// Both types are [[nodiscard]], so a plain drop is a compiler warning — but
// `(void)expr` silences it, and the codebase's assert-then-`(void)st` idiom
// silently swallows errors in NDEBUG builds. Every launder must either turn
// into real handling or carry a written justification
// (`// wiera-lint: allow(status-discipline) <reason>`).
//
// Two shapes are flagged:
//   (void)call(...)         where `call` is declared anywhere in the tree to
//                           return Status / Result<T> / Task<Status-ish>
//                           (co_await between the cast and the call is
//                           looked through)
//   (void)name;             where `name` is a local declared as
//                           Status / Result<T> earlier in the same file
#include "lint.h"

namespace wiera::lint {

namespace {

class StatusDisciplineCheck : public Check {
 public:
  std::string name() const override { return "status-discipline"; }
  std::string description() const override {
    return "no (void)-cast or otherwise-laundered Status / Result<T>";
  }

  void run(const SourceFile& file, const Project& project,
           std::vector<Finding>& out) const override {
    if (file.module.empty()) return;  // src/ only
    const auto& toks = file.tokens;

    // Locals declared as Status/Result in this file: `Status name =`,
    // `Status name;` and `Result<...> name =` shapes.
    std::set<std::string> status_locals;
    for (size_t i = 0; i + 2 < toks.size(); ++i) {
      if (toks[i].kind != Token::Kind::kIdent) continue;
      size_t name_idx = 0;
      if (toks[i].text == "Status" &&
          toks[i + 1].kind == Token::Kind::kIdent) {
        name_idx = i + 1;
      } else if (toks[i].text == "Result" && toks[i + 1].text == "<") {
        const size_t close = match_angle(toks, i + 1, toks.size());
        if (close != i + 1 && close + 1 < toks.size() &&
            toks[close + 1].kind == Token::Kind::kIdent) {
          name_idx = close + 1;
        }
      }
      if (name_idx == 0 || name_idx + 1 >= toks.size()) continue;
      const std::string& after = toks[name_idx + 1].text;
      if (after == "=" || after == ";") {
        status_locals.insert(toks[name_idx].text);
      }
    }

    for (size_t i = 0; i + 3 < toks.size(); ++i) {
      if (!(toks[i].text == "(" && toks[i + 1].text == "void" &&
            toks[i + 2].text == ")")) {
        continue;
      }
      size_t j = i + 3;
      if (toks[j].text == "co_await") j++;

      // `(void)name;` — laundering a named status local.
      if (toks[j].kind == Token::Kind::kIdent && j + 1 < toks.size() &&
          toks[j + 1].text == ";" &&
          status_locals.count(toks[j].text) > 0) {
        out.push_back(
            {name(), file.path, toks[j].line,
             "Status/Result local '" + toks[j].text +
                 "' laundered with (void); in NDEBUG builds the error "
                 "vanishes silently",
             "handle the status (log / propagate / fold into a counter) or "
             "justify with // wiera-lint: allow(status-discipline) <why>"});
        continue;
      }

      // `(void)a.b->c(...)` — walk the member chain to the callee.
      std::string callee;
      while (j + 1 < toks.size()) {
        if (toks[j].kind == Token::Kind::kIdent) {
          callee = toks[j].text;
          j++;
          continue;
        }
        if (toks[j].text == "." || toks[j].text == "->" ||
            toks[j].text == "::") {
          j++;
          continue;
        }
        break;
      }
      if (toks[j].text != "(" || callee.empty()) continue;
      if (project.status_functions.count(callee) == 0) continue;
      out.push_back(
          {name(), file.path, toks[i].line,
           "result of '" + callee +
               "' (returns Status/Result) discarded via (void) cast",
           "handle the status (log / propagate / fold into a counter) or "
           "justify with // wiera-lint: allow(status-discipline) <why>"});
    }
  }
};

}  // namespace

std::unique_ptr<Check> make_status_check() {
  return std::make_unique<StatusDisciplineCheck>();
}

}  // namespace wiera::lint
