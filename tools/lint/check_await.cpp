// await-hazard: a reference, pointer, or iterator into shared member state —
// or a RAII lock guard — live across a co_await suspension point.
//
// While a coroutine is suspended, any other task may run: a concurrent
// put/quarantine/adopt_policy can rehash or erase the container the pointer
// aims at, and the resumed coroutine dereferences freed memory that ASan
// only catches if a chaos seed happens to interleave the mutation
// (docs/FAULTS.md). The rule the codebase already follows by convention —
// "re-fetch after resuming, or copy what you need before the await" — is
// enforced here mechanically.
//
// Three shapes are flagged, all scoped to the enclosing function or lambda
// body (a co_await inside a nested lambda suspends the lambda's coroutine,
// not the enclosing function):
//   1. A std::lock_guard / unique_lock / scoped_lock / shared_lock local
//      with any later co_await in scope (OS mutexes have no place in
//      single-threaded sim code at all, let alone across suspension).
//   2. A pointer/reference local initialized from member state (an
//      identifier ending in `_`, or derived from another armed local), or
//      an `auto it = member_.find(...)`-style iterator, *used after* a
//      later co_await in the same scope. The expression the co_await itself
//      awaits is evaluated before suspension, so `co_await ptr->op()` is
//      fine; `ptr` on the next line is not. Reassignment after the await
//      re-arms the variable safely.
//   3. A range-for directly over a member container whose loop body
//      contains a co_await (mutation during suspension invalidates the
//      loop's iterator). Iterate a copy instead.
//
// The scan is flow-insensitive (token order approximates program order), so
// mutually exclusive branches can produce conservative positives; those are
// exactly the places where a copied value is cheaper than an argument about
// interleavings.
#include "lint.h"

namespace wiera::lint {

namespace {

bool is_member_ident(const std::string& t) {
  return t.size() > 1 && t.back() == '_';
}

bool is_guard_type(const std::string& t) {
  return t == "lock_guard" || t == "unique_lock" || t == "scoped_lock" ||
         t == "shared_lock";
}

struct ArmedVar {
  std::string name;
  int decl_line = 0;
  bool is_guard = false;
  bool suspended = false;  // a co_await completed since (re)binding
  bool reported = false;
};

struct Scope {
  bool barrier = false;  // function/lambda body: co_await stops here
  std::vector<ArmedVar> vars;
};

// End of the statement containing token i: the first `;`, `{`, `}` at the
// current paren depth, or the `)` that closes an enclosing paren group.
size_t statement_end(const std::vector<Token>& toks, size_t i) {
  int depth = 0;
  for (size_t j = i; j < toks.size(); ++j) {
    const std::string& t = toks[j].text;
    if (t == "(") depth++;
    else if (t == ")") {
      if (depth == 0) return j;
      depth--;
    } else if (depth == 0 && (t == ";" || t == "{" || t == "}")) {
      return j;
    }
  }
  return toks.size();
}

class AwaitHazardCheck : public Check {
 public:
  std::string name() const override { return "await-hazard"; }
  std::string description() const override {
    return "no lock guard or reference into shared state live across a "
           "co_await";
  }

  void run(const SourceFile& file, const Project&,
           std::vector<Finding>& out) const override {
    if (file.module.empty()) return;  // src/ only
    const auto& toks = file.tokens;

    std::vector<Scope> scopes;
    scopes.push_back(Scope{});  // file scope

    auto find_armed = [&](const std::string& ident) -> ArmedVar* {
      for (auto s = scopes.rbegin(); s != scopes.rend(); ++s) {
        for (ArmedVar& v : s->vars) {
          if (v.name == ident) return &v;
        }
        if (s->barrier) break;  // other functions' locals are out of reach
      }
      return nullptr;
    };

    // Suspension takes effect at the end of the awaiting statement (the
    // awaited expression itself is evaluated before the coroutine suspends).
    std::vector<size_t> pending_suspends;
    // Tokens of a just-armed declaration's initializer: no use-checking.
    size_t skip_uses_until = 0;

    for (size_t i = 0; i < toks.size(); ++i) {
      if (!pending_suspends.empty()) {
        bool fire = false;
        for (size_t k = 0; k < pending_suspends.size();) {
          if (i >= pending_suspends[k]) {
            fire = true;
            pending_suspends.erase(pending_suspends.begin() + k);
          } else {
            ++k;
          }
        }
        if (fire) {
          for (auto s = scopes.rbegin(); s != scopes.rend(); ++s) {
            for (ArmedVar& v : s->vars) v.suspended = true;
            if (s->barrier) break;
          }
        }
      }

      const std::string& t = toks[i].text;

      if (t == "{") {
        Scope s;
        s.barrier = is_function_body_brace(toks, i);
        scopes.push_back(std::move(s));
        continue;
      }
      if (t == "}") {
        if (scopes.size() > 1) scopes.pop_back();
        continue;
      }

      if (t == "co_await") {
        for (auto s = scopes.rbegin(); s != scopes.rend(); ++s) {
          for (ArmedVar& v : s->vars) {
            if (v.is_guard && !v.reported) {
              v.reported = true;
              out.push_back(
                  {name(), file.path, toks[i].line,
                   "lock guard '" + v.name + "' (declared line " +
                       std::to_string(v.decl_line) +
                       ") is held across this co_await",
                   "the simulation is single-threaded: drop the OS lock, "
                   "or release the guard before suspending"});
            }
          }
          if (s->barrier) break;
        }
        pending_suspends.push_back(statement_end(toks, i));
        continue;
      }

      // RAII guard declaration: lock_guard<...> name(...);
      if (toks[i].kind == Token::Kind::kIdent && is_guard_type(t) &&
          i + 1 < toks.size()) {
        size_t j = i + 1;
        if (toks[j].text == "<") {
          const size_t close = match_angle(toks, j, toks.size());
          if (close == j) continue;
          j = close + 1;
        }
        if (j < toks.size() && toks[j].kind == Token::Kind::kIdent) {
          scopes.back().vars.push_back(
              ArmedVar{toks[j].text, toks[j].line, /*is_guard=*/true});
          skip_uses_until = statement_end(toks, j);
        }
        continue;
      }

      // Pointer/reference/iterator declarations and rebindings at `=`.
      if (t == "=" && i >= 2 && toks[i - 1].kind == Token::Kind::kIdent) {
        const std::string& var = toks[i - 1].text;
        const std::string& p2 = toks[i - 2].text;
        const bool is_ptr_decl = (p2 == "*" || p2 == "&");
        const bool is_auto_decl = (p2 == "auto");
        if (!is_ptr_decl && !is_auto_decl) continue;

        // Scan the initializer for a member-state source.
        bool memberish = false;
        bool iterator_source = false;
        int paren = 0;
        size_t end = i + 1;
        for (; end < toks.size(); ++end) {
          const std::string& e = toks[end].text;
          if (e == "(") paren++;
          else if (e == ")") {
            if (--paren < 0) break;
          } else if ((e == ";" || e == ",") && paren == 0) {
            break;
          }
          if (toks[end].kind == Token::Kind::kIdent) {
            if (is_member_ident(e)) memberish = true;
            if (ArmedVar* src = find_armed(e);
                src != nullptr && !src->is_guard) {
              memberish = true;
            }
            if (e == "find" || e == "begin" || e == "end" ||
                e == "lower_bound" || e == "upper_bound" || e == "rbegin") {
              iterator_source = true;
            }
          }
        }
        if (!memberish) continue;
        if (is_auto_decl && !iterator_source) continue;  // value copy
        if (ArmedVar* existing = find_armed(var)) {
          existing->suspended = false;  // re-fetched: safe again
        } else {
          scopes.back().vars.push_back(
              ArmedVar{var, toks[i - 1].line, /*is_guard=*/false});
        }
        skip_uses_until = end;
        continue;
      }

      // Identifier use of an armed variable.
      if (toks[i].kind != Token::Kind::kIdent || i < skip_uses_until) {
        continue;
      }
      ArmedVar* v = find_armed(t);
      if (v == nullptr || v->is_guard) continue;
      if (i + 1 < toks.size() && toks[i + 1].text == "=") {
        v->suspended = false;  // rebinding handled above or plain overwrite
        continue;
      }
      if (!v->suspended || v->reported) continue;
      v->reported = true;
      out.push_back(
          {name(), file.path, toks[i].line,
           "'" + t + "' (bound to shared state at line " +
               std::to_string(v->decl_line) +
               ") is used after a co_await; the suspension can invalidate "
               "it",
           "re-fetch '" + t +
               "' after the co_await, or copy the needed fields into "
               "locals before suspending"});
    }

    flag_member_range_for(file, out);
  }

 private:
  // Range-for directly over a member container with a co_await in the body.
  void flag_member_range_for(const SourceFile& file,
                             std::vector<Finding>& out) const {
    const auto& toks = file.tokens;
    for (size_t i = 0; i + 2 < toks.size(); ++i) {
      if (toks[i].text != "for" || toks[i + 1].text != "(") continue;
      int depth = 0;
      size_t colon = 0, close = 0;
      for (size_t j = i + 1; j < toks.size(); ++j) {
        const std::string& t = toks[j].text;
        if (t == "(") depth++;
        else if (t == ")") {
          if (--depth == 0) { close = j; break; }
        } else if (t == ":" && depth == 1 && colon == 0) {
          colon = j;
        } else if (t == ";" && depth == 1) {
          break;  // classic for loop
        }
      }
      if (colon == 0 || close == 0) continue;
      std::string member;
      bool is_call = false;
      for (size_t j = colon + 1; j < close; ++j) {
        // A call in the range expression (`meta_.keys()`) yields a prvalue
        // whose lifetime extends over the whole loop — iterating that
        // temporary is safe even if the member mutates meanwhile.
        if (toks[j].text == "(") is_call = true;
        if (toks[j].kind == Token::Kind::kIdent &&
            is_member_ident(toks[j].text)) {
          member = toks[j].text;
        }
      }
      if (member.empty() || is_call) continue;
      if (close + 1 >= toks.size() || toks[close + 1].text != "{") continue;
      const size_t body_end = match_brace(toks, close + 1);
      // Look for co_await in the body, skipping nested lambda bodies (their
      // co_awaits suspend the lambda's coroutine, not this loop).
      for (size_t j = close + 2; j < body_end && j < toks.size(); ++j) {
        if (toks[j].text == "{" && is_function_body_brace(toks, j)) {
          j = match_brace(toks, j);
          continue;
        }
        if (toks[j].text != "co_await") continue;
        out.push_back(
            {name(), file.path, toks[i].line,
             "range-for over member container '" + member +
                 "' with a co_await in the loop body; a concurrent "
                 "mutation during the suspension invalidates the iterator",
             "iterate a copy (e.g. `auto snapshot = " + member +
                 ";`) or collect keys first and look each up after "
                 "resuming"});
        break;
      }
    }
  }
};

}  // namespace

std::unique_ptr<Check> make_await_check() {
  return std::make_unique<AwaitHazardCheck>();
}

}  // namespace wiera::lint
