// wiera-lint: a project-specific static analyzer for the Wiera codebase.
//
// Enforces, at analysis time, the invariants the runtime substrate (sanitizer,
// chaos oracle, integrity, telemetry — PRs 1–5) only catches after the fact:
//
//   determinism-source   no wall clocks / OS randomness in sim-reachable code
//   unordered-iteration  no range-for over unordered containers (hash order
//                        leaks into rendered output / hashed / replicated
//                        state)
//   status-discipline    no (void)-laundered Status / Result<T>
//   await-hazard         no reference into shared (member) state, and no RAII
//                        lock guard, live across a co_await suspension point
//   span-pairing         every opened trace span is closed or escapes
//   layering             include edges respect the module DAG
//
// Deliberately token-based (no libclang): a hand-rolled lexer plus an include
// walker is enough for these shapes, builds with the stock toolchain, and
// keeps the analyzer a ~1s no-dependency step in CI. The trade-off is
// documented per check in docs/STATIC_ANALYSIS.md: the checks are
// flow-insensitive approximations with suppression comments
// (`// wiera-lint: allow(<check>) <reason>`) as the escape hatch.
#pragma once

#include <map>
#include <memory>
#include <set>
#include <string>
#include <vector>

namespace wiera::lint {

// ------------------------------------------------------------------ tokens

struct Token {
  enum class Kind { kIdent, kNumber, kString, kChar, kPunct, kEof };
  Kind kind = Kind::kEof;
  std::string text;
  int line = 0;
};

// Lex C++ source. Comments and preprocessor line structure are dropped
// (suppressions and includes are extracted from raw lines instead); raw
// strings, escapes and multi-char punctuation (`::`, `->`, ...) are handled.
std::vector<Token> lex(const std::string& text);

// Index of the token matching an opening `<` at `open` (treats `>>` as two
// closers). Returns `open` when no match is found before `limit`.
size_t match_angle(const std::vector<Token>& toks, size_t open, size_t limit);

// Index of the `}` matching the `{` at `open`; toks.size() when unmatched.
size_t match_brace(const std::vector<Token>& toks, size_t open);

// True when the `{` at index i opens a function or lambda body (i.e. a
// coroutine-suspension barrier), as opposed to a control-flow block,
// class/namespace body, or braced initializer.
bool is_function_body_brace(const std::vector<Token>& toks, size_t i);

// ---------------------------------------------------------------- findings

struct Finding {
  std::string check;
  std::string file;  // path as given on the command line
  int line = 0;
  std::string message;
  std::string hint;  // printed under --fix-hints

  bool operator<(const Finding& o) const {
    if (file != o.file) return file < o.file;
    if (line != o.line) return line < o.line;
    if (check != o.check) return check < o.check;
    return message < o.message;
  }
};

// ------------------------------------------------------------ source files

struct Suppression {
  int target_line = 0;  // line whose findings this comment suppresses
  std::string check;
  std::string reason;
  int comment_line = 0;
};

struct SourceFile {
  std::string path;    // as passed (repo-relative in normal runs)
  std::string module;  // "sim" for src/sim/...; "" outside src/
  bool is_header = false;
  std::string text;
  std::vector<Token> tokens;
  std::vector<Suppression> suppressions;
  std::vector<std::pair<int, std::string>> includes;  // line, quoted path
};

// ---------------------------------------------------------------- project

// Cross-file symbol knowledge the per-file checks consult.
class Project {
 public:
  std::vector<SourceFile> files;

  // Function names declared (anywhere in the scanned tree) to return Status,
  // Result<T>, Task<Status> or Task<Result<T>>.
  std::set<std::string> status_functions;

  // Variable name -> container kinds seen for that name across the tree.
  // A name declared both ordered and unordered somewhere is ambiguous and
  // skipped by unordered-iteration (tier.h deliberately names both kinds
  // `entries_`).
  enum ContainerKind { kUnordered = 1, kOrdered = 2 };
  std::map<std::string, int> container_vars;

  // Module layering DAG: module -> direct sanctioned dependencies.
  // `allowed_deps` is the transitive closure used to admit include edges.
  std::map<std::string, std::set<std::string>> module_deps;
  std::map<std::string, std::set<std::string>> allowed_deps;

  bool is_unordered_var(const std::string& name) const {
    auto it = container_vars.find(name);
    return it != container_vars.end() && it->second == kUnordered;
  }
};

// ------------------------------------------------------------------ checks

class Check {
 public:
  virtual ~Check() = default;
  virtual std::string name() const = 0;
  virtual std::string description() const = 0;
  virtual void run(const SourceFile& file, const Project& project,
                   std::vector<Finding>& out) const = 0;
};

std::vector<std::unique_ptr<Check>> make_all_checks();

// ------------------------------------------------------------------ driver

struct Options {
  std::vector<std::string> paths;  // files or directories, root-relative
  std::string root = ".";
  std::string baseline_path;        // grandfathered findings ("" = none)
  std::string write_baseline_path;  // emit current findings and exit
  bool fix_hints = false;
  std::set<std::string> only;  // restrict to these checks ("" = all)
};

struct RunResult {
  std::vector<Finding> findings;   // new findings (not suppressed/baselined)
  int suppressed = 0;
  int baselined = 0;
  int files_scanned = 0;
};

// Load → lex → table-build → check → suppress → baseline-filter.
// Returns the surviving findings sorted by file/line.
RunResult run_lint(const Options& options);

// Exposed for tests: build a Project from in-memory or on-disk files.
SourceFile load_source(const std::string& path, std::string virtual_path,
                       std::vector<Finding>& out);
void build_tables(Project& project);

std::string render(const Finding& f, bool fix_hints);

}  // namespace wiera::lint
