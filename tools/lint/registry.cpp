#include "lint.h"

namespace wiera::lint {

std::unique_ptr<Check> make_determinism_check();
std::unique_ptr<Check> make_unordered_check();
std::unique_ptr<Check> make_status_check();
std::unique_ptr<Check> make_await_check();
std::unique_ptr<Check> make_span_check();
std::unique_ptr<Check> make_layering_check();

std::vector<std::unique_ptr<Check>> make_all_checks() {
  std::vector<std::unique_ptr<Check>> checks;
  checks.push_back(make_determinism_check());
  checks.push_back(make_unordered_check());
  checks.push_back(make_status_check());
  checks.push_back(make_await_check());
  checks.push_back(make_span_check());
  checks.push_back(make_layering_check());
  return checks;
}

}  // namespace wiera::lint
