// layering: enforce the module DAG.
//
//              common
//             /   |  .
//          obs  policy .
//           |       .   .
//          sim ------+----+---  (sim: common, obs)
//         /   .                 net, store: common, sim
//       net   store             rpc: common, net, obs, sim
//        |   /    .             metadb: common, rpc  ·  coord: common, rpc, sim
//       rpc       cost          cost: common, net, store
//      /    .                   tiera: common, metadb, obs, policy, sim, store
//   metadb  coord               wiera: + coord, net, rpc, tiera
//       .    |                  ycsb, vfs: common, wiera  ·  apps: common, vfs
//        tiera
//          |
//        wiera
//        / | .
//     ycsb vfs ...
//           |
//         apps
//
// An include edge src/<A>/x includes "B/y.h" is admissible iff B == A or B
// is in the transitive closure of A's sanctioned deps (the table in
// project.cpp — the *measured* structure of the tree, frozen as policy).
// Upward or sideways includes are how layering erodes one convenience
// #include at a time; the big refactors queued in ROADMAP items 1–2 rely on
// the low layers staying ignorant of the high ones. The sanctioned-deps
// table itself is cycle-checked on every run.
#include "lint.h"

namespace wiera::lint {

namespace {

class LayeringCheck : public Check {
 public:
  std::string name() const override { return "layering"; }
  std::string description() const override {
    return "include edges respect the module DAG (no upward or sideways "
           "includes)";
  }

  void run(const SourceFile& file, const Project& project,
           std::vector<Finding>& out) const override {
    // Tests, benches, tools and examples may include anything.
    if (file.module.empty()) return;

    // Cycle check of the sanctioned table: a module must never appear in
    // its own closure (the closure construction would have pulled it in).
    bool table_ok = true;
    for (const auto& [mod, closure] : project.allowed_deps) {
      if (closure.count(mod) > 0) table_ok = false;
    }
    if (!table_ok) {
      out.push_back({name(), file.path, 1,
                     "the sanctioned module-dependency table in "
                     "tools/lint/project.cpp contains a cycle",
                     "break the cycle in the table before trusting any "
                     "layering result"});
      return;
    }

    auto closure_it = project.allowed_deps.find(file.module);
    const std::set<std::string>* closure =
        closure_it == project.allowed_deps.end() ? nullptr
                                                 : &closure_it->second;

    for (const auto& [line, inc] : file.includes) {
      const size_t slash = inc.find('/');
      if (slash == std::string::npos) continue;  // same-directory include
      const std::string target = inc.substr(0, slash);
      if (project.module_deps.count(target) == 0) continue;  // not a module
      if (target == file.module) continue;
      if (closure == nullptr) {
        out.push_back({name(), file.path, line,
                       "module '" + file.module +
                           "' is not in the sanctioned module table but "
                           "includes \"" + inc + "\"",
                       "add the new module and its deps to the table in "
                       "tools/lint/project.cpp and docs/STATIC_ANALYSIS.md"});
        continue;
      }
      if (closure->count(target) > 0) continue;
      out.push_back(
          {name(), file.path, line,
           "layering violation: module '" + file.module + "' includes \"" +
               inc + "\" but '" + target +
               "' is not among its sanctioned dependencies",
           "invert the dependency (callback/interface in the lower "
           "module), or — if the edge is a deliberate design change — add "
           "it to the table in tools/lint/project.cpp and document it in "
           "docs/STATIC_ANALYSIS.md"});
    }
  }
};

}  // namespace

std::unique_ptr<Check> make_layering_check() {
  return std::make_unique<LayeringCheck>();
}

}  // namespace wiera::lint
