// wiera-lint fixture suite: exact finding counts per check over the seeded
// fixture tree, suppression semantics, and the baseline round trip.
#include <gtest/gtest.h>

#include <cstdio>
#include <map>
#include <string>

#include "lint.h"

namespace wiera::lint {
namespace {

Options fixture_options() {
  Options options;
  options.root = WIERA_LINT_FIXTURE_DIR;
  options.paths = {"src"};
  return options;
}

std::map<std::string, int> count_by_check(const RunResult& result) {
  std::map<std::string, int> counts;
  for (const Finding& f : result.findings) counts[f.check]++;
  return counts;
}

TEST(LintFixtures, ExactFindingCountsPerCheck) {
  const RunResult result = run_lint(fixture_options());
  const auto counts = count_by_check(result);

  EXPECT_EQ(counts.at("determinism-source"), 5);
  EXPECT_EQ(counts.at("unordered-iteration"), 1);
  EXPECT_EQ(counts.at("status-discipline"), 3);
  EXPECT_EQ(counts.at("await-hazard"), 3);
  EXPECT_EQ(counts.at("span-pairing"), 2);
  EXPECT_EQ(counts.at("layering"), 2);
  EXPECT_EQ(counts.at("bad-suppression"), 2);
  EXPECT_EQ(result.findings.size(), 18u);
  EXPECT_EQ(result.files_scanned, 19);
}

TEST(LintFixtures, NegativeFixturesStaySilent) {
  const RunResult result = run_lint(fixture_options());
  for (const Finding& f : result.findings) {
    EXPECT_EQ(f.file.find("_ok.cpp"), std::string::npos)
        << "negative fixture fired: " << render(f, false);
  }
}

TEST(LintFixtures, ReasonedSuppressionsAreHonored) {
  const RunResult result = run_lint(fixture_options());
  // One reasoned allow(...) per check except bad-suppression: determinism,
  // unordered, status, await, span, layering.
  EXPECT_EQ(result.suppressed, 6);
  for (const Finding& f : result.findings) {
    EXPECT_EQ(f.file.find("_suppressed.cpp"), std::string::npos)
        << "suppressed fixture leaked a finding: " << render(f, false);
  }
}

TEST(LintFixtures, AllowWithoutReasonIsBadSuppressionAndDoesNotSuppress) {
  const RunResult result = run_lint(fixture_options());
  bool saw_no_reason = false, saw_unknown_check = false,
       status_still_fires = false;
  for (const Finding& f : result.findings) {
    if (f.file != "src/rpc/bad_suppression.cpp") continue;
    if (f.check == "bad-suppression") {
      if (f.message.find("no reason") != std::string::npos) {
        saw_no_reason = true;
      }
      if (f.message.find("unknown check") != std::string::npos) {
        saw_unknown_check = true;
      }
    }
    if (f.check == "status-discipline") status_still_fires = true;
  }
  EXPECT_TRUE(saw_no_reason);
  EXPECT_TRUE(saw_unknown_check);
  EXPECT_TRUE(status_still_fires)
      << "a reason-less allow() must not suppress its line";
}

TEST(LintFixtures, OnlyFilterRestrictsChecks) {
  Options options = fixture_options();
  options.only = {"layering"};
  const RunResult result = run_lint(options);
  for (const Finding& f : result.findings) {
    // bad-suppression findings come from parsing, not from a check, so
    // they survive any --only filter.
    EXPECT_TRUE(f.check == "layering" || f.check == "bad-suppression")
        << render(f, false);
  }
  EXPECT_EQ(count_by_check(result).at("layering"), 2);
}

TEST(LintFixtures, BaselineRoundTripSilencesEverything) {
  const std::string baseline =
      testing::TempDir() + "/wiera_lint_fixture_baseline.txt";

  Options write_options = fixture_options();
  write_options.write_baseline_path = baseline;
  const RunResult first = run_lint(write_options);
  ASSERT_EQ(first.findings.size(), 18u);

  Options read_options = fixture_options();
  read_options.baseline_path = baseline;
  const RunResult second = run_lint(read_options);
  EXPECT_EQ(second.findings.size(), 0u);
  EXPECT_EQ(second.baselined, 18);

  std::remove(baseline.c_str());
}

TEST(LintFixtures, FindingsAreSortedAndCarryHints) {
  const RunResult result = run_lint(fixture_options());
  for (size_t i = 1; i < result.findings.size(); ++i) {
    EXPECT_FALSE(result.findings[i] < result.findings[i - 1]);
  }
  for (const Finding& f : result.findings) {
    EXPECT_FALSE(f.hint.empty()) << render(f, false);
    const std::string rendered = render(f, true);
    EXPECT_NE(rendered.find("fix-hint:"), std::string::npos);
  }
}

TEST(LintRegistry, SixChecksRegistered) {
  const auto checks = make_all_checks();
  ASSERT_EQ(checks.size(), 6u);
  std::set<std::string> names;
  for (const auto& check : checks) {
    EXPECT_FALSE(check->description().empty());
    names.insert(check->name());
  }
  const std::set<std::string> expected = {
      "determinism-source", "unordered-iteration", "status-discipline",
      "await-hazard",       "span-pairing",        "layering"};
  EXPECT_EQ(names, expected);
}

}  // namespace
}  // namespace wiera::lint
