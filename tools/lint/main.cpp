// wiera-lint CLI. Exit status: 0 clean, 1 new findings, 2 usage error.
#include <cstdio>
#include <cstring>
#include <string>

#include "lint.h"

namespace {

void usage() {
  std::fprintf(stderr,
               "usage: wiera-lint [options] [path...]\n"
               "\n"
               "Paths are files or directories, relative to --root; default: "
               "src bench tests.\n"
               "\n"
               "  --root <dir>            repo root (default: .)\n"
               "  --baseline <file>       ignore findings listed in <file>\n"
               "  --write-baseline <file> write current findings as a new "
               "baseline\n"
               "  --only <check>[,...]    run only the named checks\n"
               "  --fix-hints             print a suggested fix under each "
               "finding\n"
               "  --list-checks           list registered checks and exit\n");
}

}  // namespace

int main(int argc, char** argv) {
  using wiera::lint::Options;
  Options options;

  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    auto value = [&](const char* flag) -> const char* {
      if (i + 1 >= argc) {
        std::fprintf(stderr, "wiera-lint: %s needs a value\n", flag);
        std::exit(2);
      }
      return argv[++i];
    };
    if (arg == "--root") {
      options.root = value("--root");
    } else if (arg == "--baseline") {
      options.baseline_path = value("--baseline");
    } else if (arg == "--write-baseline") {
      options.write_baseline_path = value("--write-baseline");
    } else if (arg == "--only") {
      std::string list = value("--only");
      size_t pos = 0;
      while (pos < list.size()) {
        const size_t comma = list.find(',', pos);
        const size_t end = comma == std::string::npos ? list.size() : comma;
        if (end > pos) options.only.insert(list.substr(pos, end - pos));
        pos = end + 1;
      }
    } else if (arg == "--fix-hints") {
      options.fix_hints = true;
    } else if (arg == "--list-checks") {
      for (const auto& check : wiera::lint::make_all_checks()) {
        std::printf("%-20s %s\n", check->name().c_str(),
                    check->description().c_str());
      }
      return 0;
    } else if (arg == "--help" || arg == "-h") {
      usage();
      return 0;
    } else if (arg.rfind("--", 0) == 0) {
      std::fprintf(stderr, "wiera-lint: unknown option %s\n", arg.c_str());
      usage();
      return 2;
    } else {
      options.paths.push_back(arg);
    }
  }
  if (options.paths.empty()) {
    options.paths = {"src", "bench", "tests"};
  }

  const wiera::lint::RunResult result = wiera::lint::run_lint(options);
  for (const auto& finding : result.findings) {
    std::printf("%s", wiera::lint::render(finding, options.fix_hints).c_str());
  }
  std::printf(
      "wiera-lint: %zu finding%s (%d suppressed, %d baselined) in %d files\n",
      result.findings.size(), result.findings.size() == 1 ? "" : "s",
      result.suppressed, result.baselined, result.files_scanned);
  if (!options.write_baseline_path.empty()) {
    std::printf("wiera-lint: baseline written to %s\n",
                options.write_baseline_path.c_str());
    return 0;
  }
  return result.findings.empty() ? 0 : 1;
}
