// unordered-iteration: flag range-for loops over std::unordered_{map,set}
// variables. Hash-table iteration order is implementation- and
// size-history-dependent; when such a loop feeds rendered diagnostics, the
// determinism trace hash, or replication fan-out, the output silently varies
// across platforms and across runs that grew the table differently
// (docs/DETERMINISM.md). Collect-and-sort, or use std::map, instead.
//
// A name declared as an unordered container in one place and an ordered one
// in another (tier.h names both kinds `entries_`) is ambiguous at token
// level and deliberately skipped — the check under-reports rather than
// cries wolf.
#include "lint.h"

namespace wiera::lint {

namespace {

class UnorderedIterationCheck : public Check {
 public:
  std::string name() const override { return "unordered-iteration"; }
  std::string description() const override {
    return "no range-for over unordered containers (hash order leaks into "
           "rendered / hashed / replicated state)";
  }

  void run(const SourceFile& file, const Project& project,
           std::vector<Finding>& out) const override {
    if (file.module.empty()) return;  // src/ only
    const auto& toks = file.tokens;
    for (size_t i = 0; i + 2 < toks.size(); ++i) {
      if (toks[i].text != "for" || toks[i + 1].text != "(") continue;
      // Find the matching close paren and the range-for colon at depth 1.
      int depth = 0;
      size_t colon = 0, close = 0;
      for (size_t j = i + 1; j < toks.size(); ++j) {
        const std::string& t = toks[j].text;
        if (t == "(") depth++;
        else if (t == ")") {
          if (--depth == 0) { close = j; break; }
        } else if (t == ":" && depth == 1 && colon == 0) {
          colon = j;
        } else if (t == ";" && depth == 1) {
          break;  // classic for loop
        }
      }
      if (colon == 0 || close == 0) continue;
      for (size_t j = colon + 1; j < close; ++j) {
        if (toks[j].kind != Token::Kind::kIdent) continue;
        if (!project.is_unordered_var(toks[j].text)) continue;
        out.push_back(
            {name(), file.path, toks[i].line,
             "range-for over unordered container '" + toks[j].text +
                 "': iteration order is hash-dependent",
             "copy the keys/values into a vector and sort before use, or "
             "declare the member as std::map/std::set if order matters"});
        break;  // one finding per loop
      }
    }
  }
};

}  // namespace

std::unique_ptr<Check> make_unordered_check() {
  return std::make_unique<UnorderedIterationCheck>();
}

}  // namespace wiera::lint
