#include "sim/attribution.h"

#include <algorithm>

#include "common/strings.h"

namespace wiera::sim {

void AttributionReport::set_context(std::string suite, std::string name,
                                    uint64_t seed, uint64_t trace_hash) {
  suite_ = std::move(suite);
  name_ = std::move(name);
  seed_ = seed;
  trace_hash_ = trace_hash;
}

void AttributionReport::set_window(TimePoint start, TimePoint end) {
  has_window_ = true;
  window_start_ = start;
  window_end_ = end;
}

void AttributionReport::add_violation(const SloViolation& v) {
  violations_.push_back(v);
}

void AttributionReport::add_violations(const std::vector<SloViolation>& vs) {
  violations_.insert(violations_.end(), vs.begin(), vs.end());
}

void AttributionReport::add_violation(std::string check, std::string message,
                                      TimePoint at, uint64_t trace_id) {
  SloViolation v;
  v.check = std::move(check);
  v.message = std::move(message);
  v.trace_id = trace_id;
  v.at = at;
  violations_.push_back(std::move(v));
}

void AttributionReport::set_fault_timeline(
    const std::vector<FaultEvent>& timeline) {
  faults_ = timeline;
}

void AttributionReport::set_scenario_timeline(
    const std::vector<std::pair<TimePoint, std::string>>& timeline) {
  scenario_events_ = timeline;
}

void AttributionReport::set_alerts(const obs::AlertRules& alerts) {
  alerts_ = alerts.firings();
}

void AttributionReport::add_key_stats(const std::string& instance,
                                      const obs::KeyStats& stats,
                                      TimePoint now) {
  if (!stats.enabled() || stats.total_accesses() == 0) return;
  for (const obs::KeyStats::Entry& e : stats.top_keys(5, now)) {
    hot_.push_back({instance, e, /*is_tenant=*/false});
  }
  for (const obs::KeyStats::Entry& e : stats.top_tenants(3, now)) {
    hot_.push_back({instance, e, /*is_tenant=*/true});
  }
}

void AttributionReport::set_tracer(const obs::Tracer& tracer, size_t keep) {
  const auto [w_start, w_end] = effective_window();
  std::vector<WorstSpan> candidates;
  tracer.for_each_span([&](const obs::Span& s) {
    if (s.open()) return;
    if (s.end < w_start || s.start > w_end) return;
    candidates.push_back({s.name, s.host, s.status, s.trace_id, s.start,
                          s.duration()});
  });
  // Error spans first, then longest; start time then name break ties so the
  // selection is deterministic.
  std::sort(candidates.begin(), candidates.end(),
            [](const WorstSpan& a, const WorstSpan& b) {
              const bool a_err = a.status != "ok";
              const bool b_err = b.status != "ok";
              if (a_err != b_err) return a_err;
              if (a.duration != b.duration) return a.duration > b.duration;
              if (a.start != b.start) return a.start < b.start;
              return a.name < b.name;
            });
  if (candidates.size() > keep) candidates.resize(keep);
  worst_spans_ = std::move(candidates);
}

std::pair<TimePoint, TimePoint> AttributionReport::effective_window() const {
  if (has_window_) return {window_start_, window_end_};
  if (violations_.empty()) return {TimePoint::origin(), TimePoint::max()};
  TimePoint lo = TimePoint::max();
  TimePoint hi = TimePoint::origin();
  for (const SloViolation& v : violations_) {
    lo = std::min(lo, v.at);
    hi = std::max(hi, v.at);
  }
  // A single evidence instant still deserves context around it.
  return {lo - sec(2), hi + sec(2)};
}

std::vector<const FaultEvent*> AttributionReport::overlapping_faults() const {
  const auto [w_start, w_end] = effective_window();
  std::vector<const FaultEvent*> out;
  for (const FaultEvent& e : faults_) {
    const TimePoint until = e.until > e.at ? e.until : e.at;
    if (e.at <= w_end && until >= w_start) out.push_back(&e);
  }
  return out;
}

std::string AttributionReport::render_text() const {
  const auto [w_start, w_end] = effective_window();
  std::string out = str_format(
      "ATTRIBUTION-REPORT suite=%s name=%s seed=%llu hash=0x%016llx "
      "window=[%lldus,%lldus]\n",
      suite_.c_str(), name_.c_str(),
      static_cast<unsigned long long>(seed_),
      static_cast<unsigned long long>(trace_hash_),
      static_cast<long long>(w_start.us()),
      static_cast<long long>(w_end.us()));

  out += "violations:\n";
  for (const SloViolation& v : violations_) {
    out += "  [" + v.check + "] " + v.message;
    out += " at=" + std::to_string(v.at.us()) + "us";
    if (v.trace_id != 0) {
      out += str_format(" trace=0x%016llx",
                        static_cast<unsigned long long>(v.trace_id));
    }
    out += "\n";
  }

  out += "alerts:\n";
  for (const obs::AlertFiring& f : alerts_) {
    out += str_format("  %lldus %s clause=%s long=%.2fx short=%.2fx\n",
                      static_cast<long long>(f.at.us()), f.rule.c_str(),
                      f.clause.c_str(), f.long_burn, f.short_burn);
  }

  const std::vector<const FaultEvent*> overlap = overlapping_faults();
  out += "overlapping-faults:\n";
  for (const FaultEvent* e : overlap) {
    out += "  " + e->describe() + "\n";
  }
  if (faults_.size() > overlap.size()) {
    out += str_format("  (+%zu applied fault(s) outside the window)\n",
                      faults_.size() - overlap.size());
  }

  if (!scenario_events_.empty()) {
    out += "scenario-events:\n";
    for (const auto& [at, desc] : scenario_events_) {
      out += "  " + std::to_string(at.us()) + "us " + desc + "\n";
    }
  }

  out += "hot-keys:\n";
  for (const HotEntry& h : hot_) {
    out += str_format("  %s %s=%s count=%lld rate=%.2f/s\n",
                      h.instance.c_str(), h.is_tenant ? "tenant" : "key",
                      h.entry.id.c_str(),
                      static_cast<long long>(h.entry.count),
                      h.entry.rate_per_sec);
  }

  out += "worst-spans:\n";
  for (const WorstSpan& s : worst_spans_) {
    out += str_format("  [%s] %s host=%s start=%lldus dur=%lldus "
                      "trace=0x%016llx\n",
                      s.status.c_str(), s.name.c_str(), s.host.c_str(),
                      static_cast<long long>(s.start.us()),
                      static_cast<long long>(s.duration.us()),
                      static_cast<unsigned long long>(s.trace_id));
  }
  out += "END-ATTRIBUTION-REPORT\n";
  return out;
}

std::string AttributionReport::render_json() const {
  const auto [w_start, w_end] = effective_window();
  std::string out = str_format(
      "{\"suite\":\"%s\",\"name\":\"%s\",\"seed\":%llu,"
      "\"hash\":\"0x%016llx\",\"window_us\":[%lld,%lld]",
      json_escape(suite_).c_str(), json_escape(name_).c_str(),
      static_cast<unsigned long long>(seed_),
      static_cast<unsigned long long>(trace_hash_),
      static_cast<long long>(w_start.us()),
      static_cast<long long>(w_end.us()));

  out += ",\"violations\":[";
  for (size_t i = 0; i < violations_.size(); ++i) {
    const SloViolation& v = violations_[i];
    if (i > 0) out += ",";
    out += str_format("{\"check\":\"%s\",\"message\":\"%s\",\"at_us\":%lld}",
                      json_escape(v.check).c_str(),
                      json_escape(v.message).c_str(),
                      static_cast<long long>(v.at.us()));
  }

  out += "],\"alerts\":[";
  for (size_t i = 0; i < alerts_.size(); ++i) {
    const obs::AlertFiring& f = alerts_[i];
    if (i > 0) out += ",";
    out += str_format("{\"rule\":\"%s\",\"clause\":\"%s\",\"at_us\":%lld}",
                      json_escape(f.rule).c_str(),
                      json_escape(f.clause).c_str(),
                      static_cast<long long>(f.at.us()));
  }

  const std::vector<const FaultEvent*> overlap = overlapping_faults();
  out += "],\"overlapping_faults\":[";
  for (size_t i = 0; i < overlap.size(); ++i) {
    if (i > 0) out += ",";
    out += "\"" + json_escape(overlap[i]->describe()) + "\"";
  }

  out += "],\"scenario_events\":[";
  for (size_t i = 0; i < scenario_events_.size(); ++i) {
    if (i > 0) out += ",";
    out += str_format("{\"at_us\":%lld,\"event\":\"%s\"}",
                      static_cast<long long>(scenario_events_[i].first.us()),
                      json_escape(scenario_events_[i].second).c_str());
  }

  out += "],\"hot\":[";
  for (size_t i = 0; i < hot_.size(); ++i) {
    const HotEntry& h = hot_[i];
    if (i > 0) out += ",";
    out += str_format(
        "{\"instance\":\"%s\",\"kind\":\"%s\",\"id\":\"%s\","
        "\"count\":%lld,\"rate_per_sec\":%g}",
        json_escape(h.instance).c_str(), h.is_tenant ? "tenant" : "key",
        json_escape(h.entry.id).c_str(),
        static_cast<long long>(h.entry.count), h.entry.rate_per_sec);
  }

  out += "],\"worst_spans\":[";
  for (size_t i = 0; i < worst_spans_.size(); ++i) {
    const WorstSpan& s = worst_spans_[i];
    if (i > 0) out += ",";
    out += str_format(
        "{\"name\":\"%s\",\"host\":\"%s\",\"status\":\"%s\","
        "\"start_us\":%lld,\"duration_us\":%lld,\"trace\":\"0x%016llx\"}",
        json_escape(s.name).c_str(), json_escape(s.host).c_str(),
        json_escape(s.status).c_str(), static_cast<long long>(s.start.us()),
        static_cast<long long>(s.duration.us()),
        static_cast<unsigned long long>(s.trace_id));
  }
  out += "]}";
  return out;
}

}  // namespace wiera::sim
