// SimChecker — a sanitizer for the deterministic coroutine simulation.
//
// Classic TSan/helgrind cannot see the "concurrency" inside the simulator:
// every protocol interleaving happens in virtual time on one OS thread, so a
// deadlock between two coroutines, a lost wakeup, or a coroutine leaked on a
// never-signalled primitive all look like an innocently drained event queue.
// The checker instruments the runtime itself:
//
//  * Wait-for graph. Every blocking suspension (Event / SimMutex /
//    SimSemaphore / Channel / Future) records which logical task is blocked
//    on which primitive; SimMutex additionally records its owner. When
//    Simulation::run() drains the queue with blocked waiters left over, the
//    checker reports every stuck task by name and detects lock cycles
//    (classic ABBA deadlocks) in the graph.
//
//  * Lifecycle diagnostics. Misuse that used to be a bare `assert` (which
//    vanishes under NDEBUG, i.e. in the default RelWithDebInfo build) is
//    reported as a structured SimDiagnostic: double unlock, send on a closed
//    channel, a promise fulfilled twice or dropped unfulfilled, a primitive
//    destroyed while coroutines still wait on it, a Task created but never
//    started.
//
//  * Determinism hash. Each executed event folds (virtual time, sequence
//    number) into an FNV-1a running hash; two runs of the same scenario with
//    the same seed must produce identical hashes. Tests compare hashes to
//    catch accidental nondeterminism (unordered containers, address-dependent
//    branches, real-time leakage).
//
// Diagnostics are *recorded* (and echoed to stderr for errors); they do not
// alter simulation semantics. Tests query `checker().diagnostics()`;
// `set_fail_fast(true)` aborts on the first error for fuzz/CI runs.
//
// The whole checker compiles to no-ops when the CMake option
// `WIERA_SIM_CHECKER=OFF` (-DWIERA_SIM_CHECKER_ENABLED=0): the class loses
// its members and every hook is an empty inline function, so the release hot
// path is untouched.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#ifndef WIERA_SIM_CHECKER_ENABLED
#define WIERA_SIM_CHECKER_ENABLED 1
#endif

#if WIERA_SIM_CHECKER_ENABLED
#include <unordered_map>
#endif

namespace wiera::sim {

// What a suspended task is blocked on.
enum class WaitKind : uint8_t {
  kNone = 0,   // runnable / waiting on a scheduled wakeup (timer, RPC)
  kEvent,
  kMutex,
  kSemaphore,
  kChannel,
  kFuture,
  kAdmission,  // queued behind an rpc::Endpoint admission limit
};

const char* wait_kind_name(WaitKind kind);

struct SimDiagnostic {
  enum class Kind : uint8_t {
    // Errors — API misuse or a certain bug.
    kDeadlock,            // cycle in the wait-for graph at quiescence
    kDoubleUnlock,        // SimMutex::unlock while not locked
    kSendAfterClose,      // Channel::send on a closed channel
    kPromiseDoubleSet,    // Promise::set_value on a fulfilled promise
    kPromiseBroken,       // last Promise handle dropped with waiters pending
    kNegativeRelease,     // SimSemaphore::release with n < 0
    kDroppedTask,         // Task created but destroyed without ever starting
    kDuplicateEndpoint,   // rpc::Registry::add with an already-taken name
    // Warnings — suspicious, surfaced for tests/forensics.
    kStuckTask,           // task still blocked when the event queue drained
    kLostWakeup,          // task alive at quiescence with no pending wakeup
    kDestroyedWithWaiters,// primitive destructed while coroutines wait on it
    kLeakedSpan,          // telemetry span still open at quiescence
  };

  Kind kind;
  bool is_error;
  std::string message;
  std::string task;       // culprit task name ("" when not attributable)
  std::string primitive;  // primitive name ("" when not attributable)
};

const char* diagnostic_kind_name(SimDiagnostic::Kind kind);

#if WIERA_SIM_CHECKER_ENABLED

class SimChecker {
 public:
  SimChecker();
  ~SimChecker();

  SimChecker(const SimChecker&) = delete;
  SimChecker& operator=(const SimChecker&) = delete;

  // ---- configuration -------------------------------------------------
  // Runtime master switch (compile-time switch is WIERA_SIM_CHECKER).
  void set_enabled(bool on) { enabled_ = on; }
  bool enabled() const { return enabled_; }
  // Abort the process on the first *error* diagnostic (asserts upgraded).
  void set_fail_fast(bool on) { fail_fast_ = on; }

  // ---- results -------------------------------------------------------
  const std::vector<SimDiagnostic>& diagnostics() const {
    return diagnostics_;
  }
  size_t error_count() const { return error_count_; }
  size_t warning_count() const { return diagnostics_.size() - error_count_; }
  bool has(SimDiagnostic::Kind kind) const;
  // First diagnostic of `kind`, or nullptr.
  const SimDiagnostic* find(SimDiagnostic::Kind kind) const;
  void clear_diagnostics();

  // Number of logical tasks spawned / completed so far.
  uint64_t tasks_spawned() const { return tasks_spawned_; }
  uint64_t tasks_completed() const { return tasks_completed_; }
  // Names of tasks that are alive (spawned, not yet completed).
  std::vector<std::string> live_task_names() const;

  // FNV-1a hash over the executed (time, seq) event trace. Two runs of the
  // same scenario with the same seed must agree; see docs/DETERMINISM.md.
  uint64_t trace_hash() const { return trace_hash_; }

  // Fold an externally computed value into the trace hash. The fault
  // injector records every applied FaultEvent this way, so a replayed
  // chaos run must apply the identical fault schedule to reproduce a hash.
  void fold_trace(uint64_t value);

  // The checker owning the innermost live Simulation on this thread (used by
  // ~Task to report dropped coroutines, where no Simulation* is reachable).
  static SimChecker* current();
  // True while a Simulation destructor is reclaiming suspended frames;
  // lifecycle reports are suppressed then (expected teardown casualties).
  static bool in_teardown();

  // ---- hooks wired into the runtime (not for user code) --------------
  void on_simulation_created();  // pushes *this as current()
  // Simulation teardown brackets: while active, dropped tasks and
  // primitives destroyed with waiters are expected (frames are being
  // reclaimed) and not reported. end_teardown pops current().
  void begin_teardown();
  void end_teardown();

  // A root task was handed to Simulation::spawn. Returns its task id.
  uint64_t on_task_spawn(const void* root_handle, std::string name);
  void on_task_complete(const void* root_handle);

  // Simulation::step is about to resume / just resumed `handle`.
  void begin_event(const void* handle, int64_t time_us, uint64_t seq);
  void end_event();

  // A handle was pushed on the run queue (timer wakeups, primitive wakeups,
  // spawns). Binds not-yet-known handles to the current task so identity
  // survives arbitrary suspension points.
  void on_scheduled(const void* handle);

  // The current task suspended, blocked on `prim`.
  void on_block(const void* handle, WaitKind kind, const void* prim,
                const char* prim_name);

  // SimMutex ownership tracking (for deadlock cycles).
  void on_mutex_acquired(const void* mutex, const char* name);
  void on_mutex_handoff(const void* mutex, const void* next_handle);
  void on_mutex_released(const void* mutex);

  // A primitive is being destroyed with `waiters` coroutines still blocked.
  void on_primitive_destroyed(WaitKind kind, const void* prim,
                              const char* prim_name, size_t waiters);

  // Structured replacements for the former bare asserts.
  void report_error(SimDiagnostic::Kind kind, const char* prim_name,
                    std::string message);
  // Warning-severity diagnostic from outside the checker (e.g. the
  // span-leak sweep in Simulation::run at quiescence).
  void report_warning(SimDiagnostic::Kind kind, const char* prim_name,
                      std::string message);

  // ~Task saw a coroutine that was created but never started.
  static void report_dropped_task();

  // Simulation::run drained the queue without stop(): analyse the wait-for
  // graph and report stuck tasks / deadlock cycles / lost wakeups.
  void on_quiescent();

 private:
  struct TaskInfo {
    std::string name;
    WaitKind wait_kind = WaitKind::kNone;
    const void* wait_prim = nullptr;
    std::string wait_prim_name;
  };

  static constexpr uint64_t kNoTask = 0;

  TaskInfo* current_info();
  void add(SimDiagnostic diag);
  std::string task_name(uint64_t id) const;
  void mutex_owner_erase_owned(uint64_t id);

  bool enabled_ = true;
  bool fail_fast_ = false;

  uint64_t next_task_id_ = 1;
  uint64_t current_ = kNoTask;
  uint64_t tasks_spawned_ = 0;
  uint64_t tasks_completed_ = 0;
  uint64_t trace_hash_ = 1469598103934665603ull;  // FNV-1a offset basis

  std::unordered_map<uint64_t, TaskInfo> tasks_;          // live tasks
  std::unordered_map<const void*, uint64_t> handle_task_; // suspended → task
  std::unordered_map<const void*, uint64_t> mutex_owner_; // mutex → task
  std::vector<SimDiagnostic> diagnostics_;
  size_t error_count_ = 0;

  SimChecker* prev_current_ = nullptr;  // enclosing Simulation's checker
};

#else  // !WIERA_SIM_CHECKER_ENABLED — every hook is an inline no-op.

class SimChecker {
 public:
  void set_enabled(bool) {}
  bool enabled() const { return false; }
  void set_fail_fast(bool) {}

  const std::vector<SimDiagnostic>& diagnostics() const {
    static const std::vector<SimDiagnostic> kEmpty;
    return kEmpty;
  }
  size_t error_count() const { return 0; }
  size_t warning_count() const { return 0; }
  bool has(SimDiagnostic::Kind) const { return false; }
  const SimDiagnostic* find(SimDiagnostic::Kind) const { return nullptr; }
  void clear_diagnostics() {}
  uint64_t tasks_spawned() const { return 0; }
  uint64_t tasks_completed() const { return 0; }
  std::vector<std::string> live_task_names() const { return {}; }
  uint64_t trace_hash() const { return 0; }
  void fold_trace(uint64_t) {}
  static SimChecker* current() { return nullptr; }
  static bool in_teardown() { return false; }

  void on_simulation_created() {}
  void begin_teardown() {}
  void end_teardown() {}
  uint64_t on_task_spawn(const void*, std::string) { return 0; }
  void on_task_complete(const void*) {}
  void begin_event(const void*, int64_t, uint64_t) {}
  void end_event() {}
  void on_scheduled(const void*) {}
  void on_block(const void*, WaitKind, const void*, const char*) {}
  void on_mutex_acquired(const void*, const char*) {}
  void on_mutex_handoff(const void*, const void*) {}
  void on_mutex_released(const void*) {}
  void on_primitive_destroyed(WaitKind, const void*, const char*, size_t) {}
  void report_error(SimDiagnostic::Kind, const char*, std::string) {}
  void report_warning(SimDiagnostic::Kind, const char*, std::string) {}
  static void report_dropped_task() {}
  void on_quiescent() {}
};

#endif  // WIERA_SIM_CHECKER_ENABLED

}  // namespace wiera::sim
