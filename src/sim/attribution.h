// Failure attribution: correlate an SLO/oracle failure with everything else
// the run recorded (docs/METRICS_PIPELINE.md).
//
// When a clause trips, the evidence is scattered: the violation text names a
// symptom, the fault injector knows what it broke and when, the scenario
// engine knows what load it shaped, KeyStats knows which keys were hot, the
// tracer holds the slow spans and the sampler the time-series shape of the
// window. An AttributionReport gathers all of it into one timeline block —
// the `ATTRIBUTION-REPORT` marker chaos_test/scenario_test print on failure
// and the sweep scripts upload — so a failing seed's artifact answers
// "which injected fault event overlapped the violating window, which
// keys/tenants were affected, and where did the time go?" without replaying
// anything.
//
// Pure rendering over caller-supplied state; nothing here touches the
// simulation or the schedule.
#pragma once

#include <cstdint>
#include <string>
#include <utility>
#include <vector>

#include "common/time.h"
#include "obs/alerts.h"
#include "obs/keystats.h"
#include "obs/trace.h"
#include "sim/faults.h"
#include "sim/slo.h"

namespace wiera::sim {

class AttributionReport {
 public:
  // suite: "scenario" | "chaos"; name: scenario or plan name.
  void set_context(std::string suite, std::string name, uint64_t seed,
                   uint64_t trace_hash);
  // The violating window faults/spans are correlated against (typically the
  // scenario window). Without one, the span of the violations' evidence
  // times is used.
  void set_window(TimePoint start, TimePoint end);

  void add_violation(const SloViolation& v);
  void add_violations(const std::vector<SloViolation>& vs);
  // Free-form violation from suites without an SloOracle (the consistency
  // oracle's line, a gtest expectation).
  void add_violation(std::string check, std::string message, TimePoint at,
                     uint64_t trace_id = 0);

  void set_fault_timeline(const std::vector<FaultEvent>& timeline);
  void set_scenario_timeline(
      const std::vector<std::pair<TimePoint, std::string>>& timeline);
  void set_alerts(const obs::AlertRules& alerts);
  // Snapshot one instance's hot keys/tenants as of `now`.
  void add_key_stats(const std::string& instance, const obs::KeyStats& stats,
                     TimePoint now);
  // Pick the worst spans overlapping the window: error-status spans first,
  // then longest, capped at `keep`.
  void set_tracer(const obs::Tracer& tracer, size_t keep = 5);

  bool empty() const { return violations_.empty(); }

  // Multi-line block bracketed by "ATTRIBUTION-REPORT ..." and
  // "END-ATTRIBUTION-REPORT".
  std::string render_text() const;
  // The same content as one JSON object (sweep artifacts).
  std::string render_json() const;

 private:
  struct HotEntry {
    std::string instance;
    obs::KeyStats::Entry entry;
    bool is_tenant = false;
  };
  struct WorstSpan {
    std::string name;
    std::string host;
    std::string status;
    uint64_t trace_id = 0;
    TimePoint start;
    Duration duration;
  };

  std::pair<TimePoint, TimePoint> effective_window() const;
  // Faults whose [at, until] window intersects the violating window.
  std::vector<const FaultEvent*> overlapping_faults() const;

  std::string suite_;
  std::string name_;
  uint64_t seed_ = 0;
  uint64_t trace_hash_ = 0;
  bool has_window_ = false;
  TimePoint window_start_;
  TimePoint window_end_;
  std::vector<SloViolation> violations_;
  std::vector<FaultEvent> faults_;
  std::vector<std::pair<TimePoint, std::string>> scenario_events_;
  std::vector<obs::AlertFiring> alerts_;
  std::vector<HotEntry> hot_;
  std::vector<WorstSpan> worst_spans_;
};

}  // namespace wiera::sim
