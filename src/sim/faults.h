// Deterministic fault injection for chaos testing (Jepsen-style nemesis).
//
// A FaultPlan is a schedule of typed fault events — node crash/restart,
// network partitions (bidirectional or asymmetric), probabilistic message
// chaos (drop/duplicate/random extra delay = reordering), latency spikes,
// and storage-tier faults (slowdown / ENOSPC). Plans are either scripted by
// a test or sampled from a seeded RNG, so every chaos run is reproducible
// from its seed.
//
// The sim layer knows nothing about the network or storage stacks (they
// link *against* wiera_sim), so the plan is applied through the abstract
// FaultSurface interface; the wiera layer provides the concrete adapter
// (geo::ChaosHost) that maps events onto net::Topology / net::Network /
// store::StorageTier / WieraPeer hooks. The FaultInjector walks the plan on
// virtual time and folds every applied event into the SimChecker
// determinism trace hash, so a replay that diverges in its fault schedule
// is immediately visible as a hash mismatch (docs/FAULTS.md).
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "common/rng.h"
#include "common/time.h"
#include "sim/simulation.h"
#include "sim/task.h"

namespace wiera::sim {

// Which way an isolation-style fault cuts traffic relative to the node.
enum class PartitionDirection {
  kBoth,      // full isolation
  kInbound,   // nobody can reach the node; its own packets get out
  kOutbound,  // the node's packets are lost; it still hears the world
};

std::string_view partition_direction_name(PartitionDirection d);

struct FaultEvent {
  enum class Kind {
    kCrash,         // node dies at `at`, loses volatile state, restarts at `until`
    kRestart,       // node is back (paired with a kCrash; informational)
    kPartition,     // node cut off from every other node during [at, until)
    kMessageChaos,  // probabilistic drop/duplicate/extra-delay window
    kLatencySpike,  // +extra_delay on every message touching node
    kTierFault,     // storage-tier slowdown and/or ENOSPC window
    kBitRot,        // flip a byte of object_key's stored copy on node at `at`
    kTornWrite,     // crash whose window tears in-flight durable-tier writes
    kMsgCorrupt,    // probabilistic payload-corrupting message window
    // Gray-failure classes (docs/HEALTH.md): the node stays "alive" —
    // answers pings eventually, loses no state — but degrades service.
    kStutter,       // process freeze during [at, until): queued work runs late
    kFlakyLink,     // intermittent loss/latency on the node↔peer_node link
    kSlowNode,      // slow_factor multiplier on all of node's processing
  };

  Kind kind = Kind::kCrash;
  TimePoint at;           // when the fault begins
  TimePoint until;        // when it ends (restart time for kCrash)
  std::string node;       // affected node ("" = all, kMessageChaos only)
  PartitionDirection direction = PartitionDirection::kBoth;

  // kMessageChaos knobs.
  double drop_prob = 0.0;
  double dup_prob = 0.0;
  Duration max_extra_delay = Duration::zero();

  // kLatencySpike knob.
  Duration extra_delay = Duration::zero();

  // kTierFault knobs. Empty tier_label = every tier on the node.
  std::string tier_label;
  double slowdown = 1.0;
  bool enospc = false;

  // kBitRot knob: which object's stored copy to flip.
  std::string object_key;

  // kMsgCorrupt knob.
  double corrupt_prob = 0.0;

  // kFlakyLink knob: the other endpoint of the degraded link (the flaky
  // window reuses drop_prob / max_extra_delay for its loss and jitter).
  std::string peer_node;

  // kSlowNode knob: multiplier on the node's processing + message delays.
  double slow_factor = 1.0;

  std::string describe() const;
  // Stable content hash folded into the determinism trace when applied.
  uint64_t hash() const;
};

// Receiver of fault events — implemented by the wiera layer (geo::ChaosHost)
// or by unit tests. Handlers run on the injector's coroutine at the event's
// scheduled virtual time.
class FaultSurface {
 public:
  virtual ~FaultSurface() = default;
  virtual void on_node_crash(const FaultEvent& e) = 0;
  virtual void on_node_restart(const FaultEvent& e) = 0;
  virtual void on_partition(const FaultEvent& e) = 0;
  virtual void on_message_chaos(const FaultEvent& e) = 0;
  virtual void on_latency_spike(const FaultEvent& e) = 0;
  virtual void on_tier_fault(const FaultEvent& e) = 0;
  // Integrity faults (docs/INTEGRITY.md). Default no-op so pre-existing
  // surfaces (unit-test fakes) keep compiling unchanged.
  virtual void on_bit_rot(const FaultEvent& /*e*/) {}
  virtual void on_torn_write(const FaultEvent& /*e*/) {}
  virtual void on_message_corrupt(const FaultEvent& /*e*/) {}
  // Gray-failure faults (docs/HEALTH.md). Default no-op for the same
  // reason.
  virtual void on_stutter(const FaultEvent& /*e*/) {}
  virtual void on_flaky_link(const FaultEvent& /*e*/) {}
  virtual void on_slow_node(const FaultEvent& /*e*/) {}
};

class FaultPlan {
 public:
  // ---- scripted construction ----
  // Crash at `at`, restart at `restart_at` (emits kCrash + kRestart).
  FaultPlan& crash(std::string node, TimePoint at, TimePoint restart_at);
  // Isolate `node` from every other node during [at, until).
  FaultPlan& partition(std::string node, TimePoint at, TimePoint until,
                       PartitionDirection direction = PartitionDirection::kBoth);
  // Probabilistic message chaos on messages touching `node` ("" = all).
  FaultPlan& message_chaos(std::string node, TimePoint at, TimePoint until,
                           double drop_prob, double dup_prob,
                           Duration max_extra_delay = Duration::zero());
  FaultPlan& latency_spike(std::string node, Duration extra, TimePoint at,
                           TimePoint until);
  FaultPlan& tier_fault(std::string node, std::string tier_label,
                        double slowdown, bool enospc, TimePoint at,
                        TimePoint until);
  // Flip one byte of `key`'s stored copy on `node` at `at` (silent bit-rot).
  FaultPlan& bit_rot(std::string node, std::string key, TimePoint at);
  // Crash at `at` whose outage window tears durable-tier writes that were
  // in flight when the node died (emits kTornWrite + kRestart).
  FaultPlan& torn_write(std::string node, TimePoint at, TimePoint restart_at);
  // Probabilistic payload corruption on messages touching `node` ("" = all).
  FaultPlan& corrupting_chaos(std::string node, TimePoint at, TimePoint until,
                              double corrupt_prob);
  // Gray failures (docs/HEALTH.md): the node keeps answering pings but
  // degrades. Freeze `node`'s processing during [at, until) without losing
  // state (queued work executes late).
  FaultPlan& stutter(std::string node, TimePoint at, TimePoint until);
  // Intermittent loss + jitter confined to the node↔peer link.
  FaultPlan& flaky_link(std::string node, std::string peer, TimePoint at,
                        TimePoint until, double drop_prob,
                        Duration max_extra_delay);
  // Multiply all of `node`'s processing/message delays by `factor`.
  FaultPlan& slow_node(std::string node, double factor, TimePoint at,
                       TimePoint until);
  FaultPlan& add(FaultEvent event);

  // ---- random generation ----
  // Knobs for FaultPlan::random. Counts say how many windows of each fault
  // class to sample; windows land inside [earliest, latest] with durations
  // in [min_window, max_window]. Nodes are drawn from `nodes` (typically
  // only storage nodes — crashing the coordinator is a different test).
  struct RandomOptions {
    std::vector<std::string> nodes;
    TimePoint earliest = TimePoint::origin() + sec(2);
    TimePoint latest = TimePoint::origin() + sec(30);
    Duration min_window = sec(1);
    Duration max_window = sec(4);
    int crashes = 0;
    int partitions = 0;
    int chaos_windows = 0;
    int latency_spikes = 0;
    int tier_faults = 0;
    double drop_prob = 0.2;
    double dup_prob = 0.1;
    Duration max_extra_delay = msec(80);
    Duration max_spike = msec(400);
    double tier_slowdown = 8.0;
    bool tier_enospc = false;
    // Integrity fault classes (all default 0 so pre-existing seeds keep
    // drawing the identical RNG sequence and plans stay byte-identical).
    std::vector<std::string> keys;  // bit-rot targets
    int bit_rots = 0;
    int torn_writes = 0;
    int corrupt_windows = 0;
    double corrupt_prob = 0.3;
    // Gray-failure fault classes (docs/HEALTH.md). Also default 0 and
    // sampled after the integrity classes, preserving every earlier seed's
    // RNG draw sequence.
    int stutters = 0;
    int flaky_links = 0;
    int slow_nodes = 0;
    double flaky_drop_prob = 0.4;
    Duration flaky_extra_delay = msec(60);
    double slow_factor = 8.0;
  };
  static FaultPlan random(uint64_t seed, const RandomOptions& options);

  const std::vector<FaultEvent>& events() const { return events_; }
  bool empty() const { return events_.empty(); }
  std::string describe() const;

 private:
  std::vector<FaultEvent> events_;
};

// Walks a FaultPlan on virtual time: sleeps to each event's `at`, folds the
// event's hash into the determinism trace, and dispatches it to the surface.
class FaultInjector {
 public:
  FaultInjector(Simulation& sim, FaultSurface& surface)
      : sim_(&sim), surface_(&surface) {}

  // Spawn the driver task for `plan`. Call once per plan; the driver exits
  // after the last event fires.
  void arm(FaultPlan plan);

  int64_t events_applied() const { return events_applied_; }

  // Applied events in apply order — the fault timeline an attribution
  // report (sim/attribution.h) correlates an SLO-violating window against.
  // Symmetric with ScenarioEngine::timeline(), but keeps the full typed
  // event so overlap checks can use [at, until) windows.
  const std::vector<FaultEvent>& timeline() const { return timeline_; }
  std::string render_timeline() const;

 private:
  Task<void> drive(std::vector<FaultEvent> events);
  void apply(const FaultEvent& e);

  Simulation* sim_;
  FaultSurface* surface_;
  int64_t events_applied_ = 0;
  std::vector<FaultEvent> timeline_;
};

}  // namespace wiera::sim
