#include "sim/simulation.h"

#include <cassert>

#include "common/logging.h"

namespace wiera::sim {

namespace {

// Wrapper coroutine that owns a detached Task<void>. It unregisters itself
// from the simulation's root list when the task completes; if the simulation
// dies first, destroying this frame destroys the task (and transitively any
// child task frames it is awaiting).
struct RootTask {
  struct promise_type {
    Simulation* sim = nullptr;
    std::list<std::coroutine_handle<>>::iterator registry_it;
    bool registered = false;

    RootTask get_return_object() {
      return RootTask{
          std::coroutine_handle<promise_type>::from_promise(*this)};
    }
    std::suspend_always initial_suspend() noexcept { return {}; }
    // No final suspension: after unregistering (in return_void) the frame
    // destroys itself when it runs off the end.
    std::suspend_never final_suspend() noexcept { return {}; }
    void return_void() noexcept;
    [[noreturn]] void unhandled_exception() noexcept {
      std::fprintf(stderr, "wiera::sim: exception escaped a root task\n");
      std::abort();
    }
  };
  std::coroutine_handle<promise_type> handle;
};

RootTask run_root(Task<void> task) { co_await std::move(task); }

}  // namespace

struct Simulation::RootRegistry {
  static void register_root(Simulation& sim,
                            std::coroutine_handle<RootTask::promise_type> h) {
    sim.roots_.push_back(h);
    h.promise().sim = &sim;
    h.promise().registry_it = std::prev(sim.roots_.end());
    h.promise().registered = true;
  }
  static void unregister_root(RootTask::promise_type& p) {
    if (p.registered && p.sim != nullptr) {
      p.sim->checker_.on_task_complete(
          std::coroutine_handle<RootTask::promise_type>::from_promise(p)
              .address());
      p.sim->roots_.erase(p.registry_it);
      p.registered = false;
    }
  }
};

namespace {
void RootTask::promise_type::return_void() noexcept {
  Simulation::RootRegistry::unregister_root(*this);
}
}  // namespace

Simulation::Simulation(uint64_t seed)
    : seed_(seed), rng_(seed), telemetry_(seed) {
  checker_.on_simulation_created();
  telemetry_.set_clock([this] { return now_; });
}

Simulation::~Simulation() {
  // Destroy anything still suspended. Root frames own their child task
  // frames, so destroying roots reclaims entire await chains. Queue entries
  // whose frames were already destroyed via a root chain would dangle — but
  // queued handles are exactly the *resumable leaves* of chains, and each
  // leaf belongs to one root chain, so destroy roots only.
  // (Leaves suspended on sync primitives are also reclaimed this way.)
  stopped_ = true;
  checker_.begin_teardown();
  while (!roots_.empty()) {
    auto h = roots_.front();
    roots_.pop_front();
    h.destroy();
  }
  checker_.end_teardown();
}

void Simulation::schedule_at(TimePoint t, std::coroutine_handle<> h) {
  assert(h);
  if (t < now_) t = now_;  // never schedule into the past
  checker_.on_scheduled(h.address());
  queue_.push(QueueItem{t, next_seq_++, h});
}

void Simulation::spawn(Task<void> task, std::string name) {
  if (!task.valid()) return;
  RootTask root = run_root(std::move(task));
  RootRegistry::register_root(*this, root.handle);
  checker_.on_task_spawn(root.handle.address(), std::move(name));
  schedule_at(now_, root.handle);
}

bool Simulation::step() {
  if (stopped_ || queue_.empty()) return false;
  QueueItem item = queue_.top();
  queue_.pop();
  assert(item.time >= now_);
  now_ = item.time;
  events_executed_++;
  checker_.begin_event(item.handle.address(), item.time.us(), item.seq);
  item.handle.resume();
  checker_.end_event();
  return true;
}

void Simulation::run() {
  stopped_ = false;
  while (step()) {
  }
  if (!stopped_ && queue_.empty()) {
    checker_.on_quiescent();
    // Span-leak check: at quiescence every request has completed, so any
    // retained span still open was started and never ended — a missing
    // end_span on some path (e.g. an early return). A warning, not an
    // error: telemetry bugs must not fail otherwise-correct runs.
    if (telemetry_.tracer().open_count() > 0) {
      std::string names;
      for (const std::string& n : telemetry_.tracer().open_span_names()) {
        if (!names.empty()) names += ", ";
        names += n;
      }
      checker_.report_warning(
          SimDiagnostic::Kind::kLeakedSpan, "obs.tracer",
          std::to_string(telemetry_.tracer().open_count()) +
              " span(s) still open at quiescence: " + names);
    }
  }
}

void Simulation::run_until(TimePoint t) {
  stopped_ = false;
  while (!stopped_ && !queue_.empty() && queue_.top().time <= t) {
    step();
  }
  if (now_ < t) now_ = t;
}

void Simulation::attach_logger() {
  Logger::instance().set_time_source([this] { return now_; });
}

}  // namespace wiera::sim
