// Coroutine Task<T> for the discrete-event simulator.
//
// Tasks are *lazy*: creating one does not run any code; it starts when a
// parent co_awaits it (symmetric transfer, same virtual instant) or when it
// is handed to Simulation::spawn(). Completion resumes the awaiting parent
// at the same virtual time. This lets middleware code read like ordinary
// blocking code while the scheduler interleaves thousands of logical
// activities deterministically.
//
// Error handling: the codebase returns Status/Result<T> instead of throwing;
// an exception escaping a task aborts the simulation (see unhandled_exception).
#pragma once

#include <cassert>
#include <coroutine>
#include <cstdio>
#include <cstdlib>
#include <optional>
#include <utility>

#include "sim/checker.h"

namespace wiera::sim {

template <typename T>
class Task;

namespace detail {

struct TaskPromiseBase {
  std::coroutine_handle<> continuation;
  // Set when the task is first awaited (i.e. actually started). A Task
  // destroyed with this still false was created and dropped without ever
  // running — the checker reports it as a leaked coroutine.
  bool started = false;

  std::suspend_always initial_suspend() noexcept { return {}; }

  struct FinalAwaiter {
    bool await_ready() noexcept { return false; }
    template <typename Promise>
    std::coroutine_handle<> await_suspend(
        std::coroutine_handle<Promise> h) noexcept {
      // Hand control back to whoever awaited us; if nobody did (detached
      // spawn path wraps tasks, so this is rare), just stop.
      auto cont = h.promise().continuation;
      return cont ? cont : std::noop_coroutine();
    }
    void await_resume() noexcept {}
  };
  FinalAwaiter final_suspend() noexcept { return {}; }

  [[noreturn]] void unhandled_exception() noexcept {
    std::fprintf(stderr,
                 "wiera::sim: exception escaped a Task; simulation state is "
                 "unrecoverable, aborting\n");
    std::abort();
  }
};

template <typename T>
struct TaskPromise : TaskPromiseBase {
  std::optional<T> value;

  Task<T> get_return_object();
  void return_value(T v) { value.emplace(std::move(v)); }
};

template <>
struct TaskPromise<void> : TaskPromiseBase {
  Task<void> get_return_object();
  void return_void() {}
};

}  // namespace detail

template <typename T = void>
class [[nodiscard]] Task {
 public:
  using promise_type = detail::TaskPromise<T>;
  using handle_type = std::coroutine_handle<promise_type>;

  Task() = default;
  explicit Task(handle_type h) : handle_(h) {}
  Task(Task&& o) noexcept : handle_(std::exchange(o.handle_, nullptr)) {}
  Task& operator=(Task&& o) noexcept {
    if (this != &o) {
      destroy();
      handle_ = std::exchange(o.handle_, nullptr);
    }
    return *this;
  }
  Task(const Task&) = delete;
  Task& operator=(const Task&) = delete;
  ~Task() { destroy(); }

  bool valid() const { return handle_ != nullptr; }
  bool done() const { return handle_ && handle_.done(); }

  // Awaiting a task starts it (symmetric transfer) and resumes the awaiter
  // when the task completes.
  auto operator co_await() && noexcept {
    struct Awaiter {
      handle_type handle;
      bool await_ready() const noexcept { return !handle || handle.done(); }
      std::coroutine_handle<> await_suspend(
          std::coroutine_handle<> awaiting) noexcept {
        handle.promise().continuation = awaiting;
        handle.promise().started = true;
        return handle;
      }
      T await_resume() {
        if constexpr (!std::is_void_v<T>) {
          assert(handle.promise().value.has_value());
          return std::move(*handle.promise().value);
        }
      }
    };
    return Awaiter{handle_};
  }

  // Used by Simulation::spawn to drive a task it owns.
  handle_type release() { return std::exchange(handle_, nullptr); }
  handle_type handle() const { return handle_; }

 private:
  void destroy() {
    if (handle_) {
      if (!handle_.done() && !handle_.promise().started) {
        SimChecker::report_dropped_task();
      }
      handle_.destroy();
      handle_ = nullptr;
    }
  }
  handle_type handle_ = nullptr;
};

namespace detail {

template <typename T>
Task<T> TaskPromise<T>::get_return_object() {
  return Task<T>(std::coroutine_handle<TaskPromise<T>>::from_promise(*this));
}

inline Task<void> TaskPromise<void>::get_return_object() {
  return Task<void>(
      std::coroutine_handle<TaskPromise<void>>::from_promise(*this));
}

}  // namespace detail

}  // namespace wiera::sim
