// Consistency oracle: records a timestamped history of client operations
// and checks it against the invariant of the consistency mode under test
// (docs/FAULTS.md lists the exact invariants).
//
//   * kLinearizable — Wing & Gong style exhaustive linearizability check
//     per key over the small op alphabet (multi-primary locking mode).
//     Failed writes are "maybe" ops: they may take effect at any point
//     after invocation or never (a crashed replication fan-out can leave
//     the value behind).
//   * kPrimaryOrder — primary-backup (sync/async): committed versions
//     respect real-time order, reads never see values from the future, and
//     each server's reads are version-monotonic.
//   * kEventual — after quiescence every replica agrees on each key's
//     (version, origin, value) and the winner is a value some client
//     actually wrote (LWW agreement).
//
// The oracle is pure bookkeeping: callers stamp operations with virtual
// times from the Simulation. It depends on nothing above the sim layer, so
// it can also check histories produced by unit tests or future protocols.
#pragma once

#include <cstdint>
#include <map>
#include <string>
#include <vector>

#include "common/time.h"

namespace wiera::sim {

enum class CheckMode { kLinearizable, kPrimaryOrder, kEventual };

std::string_view check_mode_name(CheckMode mode);

struct OracleViolation {
  std::string key;
  std::string message;
  // Trace id of the client operation that witnessed the violation (0 when
  // no single op is implicated). Reassemble with obs::TraceView to see the
  // exact hop sequence behind the bad read/write (docs/OBSERVABILITY.md).
  uint64_t trace_id = 0;
};

class ConsistencyOracle {
 public:
  // ---- history recording ----
  // begin_* returns an op id; pass it to the matching end_* with the
  // completion time and outcome. An op whose end_* never arrives counts as
  // a "maybe" write / ignored read (client never learned the outcome).
  int64_t begin_put(const std::string& client, const std::string& key,
                    const std::string& value, TimePoint invoked,
                    uint64_t trace_id = 0);
  void end_put(int64_t op_id, TimePoint completed, bool ok, int64_t version);
  int64_t begin_get(const std::string& client, const std::string& key,
                    TimePoint invoked, uint64_t trace_id = 0);
  // `value` empty = not found; `served_by` is the instance that answered.
  void end_get(int64_t op_id, TimePoint completed, bool ok,
               const std::string& value, int64_t version,
               const std::string& served_by);
  // Attach a distributed-trace id to an op after the fact. Workloads call
  // begin_* before issuing the client op (the invoke time must precede the
  // RPC), but the trace id is only known once the op returns — so it is
  // stamped here, before end_*.
  void set_op_trace(int64_t op_id, uint64_t trace_id) {
    ops_.at(static_cast<size_t>(op_id)).trace_id = trace_id;
  }
  // Trace id of the first successfully completed put in the history
  // (0 = none). Used by telemetry dumps to pick a representative write
  // whose span tree is worth rendering.
  uint64_t sample_put_trace() const {
    for (const Op& op : ops_) {
      if (op.type == Op::Type::kPut && op.done && op.ok && op.trace_id != 0)
        return op.trace_id;
    }
    return 0;
  }

  // ---- final replica states (kEventual convergence check) ----
  void record_replica_value(const std::string& replica, const std::string& key,
                            int64_t version, TimePoint last_modified,
                            const std::string& origin,
                            const std::string& value);

  // ---- checking ----
  std::vector<OracleViolation> check(CheckMode mode) const;
  // Mode-independent replica-convergence check over the recorded finals
  // (docs/INTEGRITY.md): after a scrub/repair pass every replica holding a
  // key must report the identical (version, origin, value), and that value
  // must be one a client actually wrote. Used by the corruption chaos suite
  // in all three consistency modes — a scrub that "converges" replicas onto
  // a bit-rotted payload is a violation, not a repair.
  std::vector<OracleViolation> check_convergence() const;
  static std::string describe(const std::vector<OracleViolation>& violations);

  int64_t op_count() const { return static_cast<int64_t>(ops_.size()); }
  int64_t completed_ok_count() const;

  // Linearizability is exponential in ops-per-key; histories above this
  // bound per key are rejected with a violation rather than checked.
  static constexpr size_t kMaxOpsPerKey = 62;

 private:
  struct Op {
    enum class Type { kPut, kGet };
    Type type = Type::kPut;
    std::string client;
    std::string key;
    std::string value;  // put: written value; get: returned ("" = absent)
    int64_t version = 0;
    std::string served_by;
    TimePoint invoked;
    TimePoint completed = TimePoint::max();
    bool done = false;
    bool ok = false;
    uint64_t trace_id = 0;  // distributed trace of the client op (0 = none)
  };

  struct ReplicaFinal {
    int64_t version = 0;
    TimePoint last_modified;
    std::string origin;
    std::string value;
  };

  std::map<std::string, std::vector<const Op*>> ops_by_key() const;

  void check_key_linearizable(const std::string& key,
                              const std::vector<const Op*>& ops,
                              std::vector<OracleViolation>& out) const;
  void check_key_primary_order(const std::string& key,
                               const std::vector<const Op*>& ops,
                               std::vector<OracleViolation>& out) const;
  void check_key_eventual(const std::string& key,
                          const std::vector<const Op*>& ops,
                          std::vector<OracleViolation>& out) const;

  std::vector<Op> ops_;
  // key -> replica -> final observed state
  std::map<std::string, std::map<std::string, ReplicaFinal>> finals_;
};

}  // namespace wiera::sim
