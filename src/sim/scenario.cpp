#include "sim/scenario.h"

#include <algorithm>
#include <cmath>

#include "common/logging.h"

namespace wiera::sim {

namespace {

constexpr double kPi = 3.14159265358979323846;
// A diurnal trough never stalls a workload driver outright; drivers divide
// their inter-op gap by the multiplier, so the floor bounds the slowdown.
constexpr double kMinRateMultiplier = 0.2;

uint64_t fnv1a(uint64_t hash, uint64_t v) {
  for (int i = 0; i < 8; ++i) {
    hash ^= (v >> (8 * i)) & 0xFF;
    hash *= 0x100000001B3ull;
  }
  return hash;
}

uint64_t fnv1a_str(uint64_t hash, const std::string& s) {
  for (const char c : s) {
    hash ^= static_cast<uint8_t>(c);
    hash *= 0x100000001B3ull;
  }
  return hash;
}

}  // namespace

std::string_view scenario_kind_name(ScenarioEvent::Kind k) {
  switch (k) {
    case ScenarioEvent::Kind::kDiurnalLoad: return "diurnal-load";
    case ScenarioEvent::Kind::kZipfShift: return "zipf-shift";
    case ScenarioEvent::Kind::kFlashCrowd: return "flash-crowd";
    case ScenarioEvent::Kind::kTenantMix: return "tenant-mix";
    case ScenarioEvent::Kind::kDrainRegion: return "drain-region";
    case ScenarioEvent::Kind::kAddRegion: return "add-region";
    case ScenarioEvent::Kind::kRollingRestart: return "rolling-restart";
  }
  return "?";
}

std::string ScenarioEvent::describe() const {
  std::string out = std::string(scenario_kind_name(kind)) +
                    " target=" + (target.empty() ? "*" : target) +
                    " at=" + std::to_string(at.us()) + "us";
  if (until > at) out += " until=" + std::to_string(until.us()) + "us";
  switch (kind) {
    case Kind::kDiurnalLoad:
      out += " amplitude=" + std::to_string(amplitude) +
             " period=" + std::to_string(period.us()) + "us";
      break;
    case Kind::kZipfShift:
      out += " exponent=" + std::to_string(exponent);
      break;
    case Kind::kFlashCrowd:
      out += " hot=[" + std::to_string(hot_lo) + "," + std::to_string(hot_hi) +
             "] boost=" + std::to_string(boost);
      break;
    case Kind::kTenantMix:
      out += " mix=" + std::to_string(mix_fraction);
      break;
    default:
      break;
  }
  return out;
}

uint64_t ScenarioEvent::hash() const {
  uint64_t h = 0xCBF29CE484222325ull;
  // Distinguish scenario events from fault events at identical payloads: the
  // two families fold into the same trace hash stream.
  h = fnv1a_str(h, "scenario");
  h = fnv1a(h, static_cast<uint64_t>(kind));
  h = fnv1a(h, static_cast<uint64_t>(at.us()));
  h = fnv1a(h, static_cast<uint64_t>(until.us()));
  h = fnv1a_str(h, target);
  h = fnv1a(h, static_cast<uint64_t>(amplitude * 1e6));
  h = fnv1a(h, static_cast<uint64_t>(period.us()));
  h = fnv1a(h, static_cast<uint64_t>(exponent * 1e6));
  h = fnv1a(h, static_cast<uint64_t>(hot_lo));
  h = fnv1a(h, static_cast<uint64_t>(hot_hi));
  h = fnv1a(h, static_cast<uint64_t>(boost * 1e6));
  h = fnv1a(h, static_cast<uint64_t>(mix_fraction * 1e6));
  return h;
}

double LoadModel::rate_multiplier(const std::string& region,
                                  TimePoint now) const {
  double m = 1.0;
  for (const DiurnalWindow& w : diurnal_) {
    if (!w.region.empty() && w.region != region) continue;
    if (now < w.at || now >= w.until || w.period <= Duration::zero()) continue;
    const double phase = static_cast<double>((now - w.at).us()) /
                         static_cast<double>(w.period.us());
    m *= 1.0 + w.amplitude * std::sin(2.0 * kPi * phase);
  }
  return std::max(m, kMinRateMultiplier);
}

int LoadModel::pick_key(Rng& rng, TimePoint now) const {
  for (const CrowdWindow& w : crowds_) {
    if (now < w.at || now >= w.until) continue;
    if (!rng.bernoulli(w.boost)) continue;
    const int lo = std::clamp(w.hot_lo, 0, key_count_ - 1);
    const int hi = std::clamp(w.hot_hi, lo, key_count_ - 1);
    return lo + static_cast<int>(rng.next_below(
                    static_cast<uint64_t>(hi - lo) + 1));
  }
  if (exponent_ <= 0.0) {
    return static_cast<int>(rng.next_below(static_cast<uint64_t>(key_count_)));
  }
  // Zipfian inverse-CDF over a handful of keys; O(key_count) per draw.
  double total = 0.0;
  for (int k = 0; k < key_count_; ++k) {
    total += std::pow(static_cast<double>(k + 1), -exponent_);
  }
  double u = rng.next_double() * total;
  for (int k = 0; k < key_count_; ++k) {
    u -= std::pow(static_cast<double>(k + 1), -exponent_);
    if (u <= 0.0) return k;
  }
  return key_count_ - 1;
}

int LoadModel::pick_tenant(Rng& rng) const {
  if (mix_ <= 0.0) return 0;
  return rng.bernoulli(mix_) ? 1 : 0;
}

void LoadModel::apply(const ScenarioEvent& e) {
  switch (e.kind) {
    case ScenarioEvent::Kind::kDiurnalLoad:
      diurnal_.push_back(
          {e.target, e.at, e.until, e.amplitude, e.period});
      break;
    case ScenarioEvent::Kind::kZipfShift:
      exponent_ = e.exponent;
      break;
    case ScenarioEvent::Kind::kFlashCrowd:
      crowds_.push_back({e.at, e.until, e.hot_lo, e.hot_hi, e.boost});
      break;
    case ScenarioEvent::Kind::kTenantMix:
      mix_ = e.mix_fraction;
      break;
    default:
      break;  // operational events don't shape load
  }
}

ScenarioPlan& ScenarioPlan::diurnal(std::string region, TimePoint at,
                                    TimePoint until, double amplitude,
                                    Duration period) {
  ScenarioEvent e;
  e.kind = ScenarioEvent::Kind::kDiurnalLoad;
  e.target = std::move(region);
  e.at = at;
  e.until = until;
  e.amplitude = amplitude;
  e.period = period;
  events_.push_back(std::move(e));
  return *this;
}

ScenarioPlan& ScenarioPlan::zipf_shift(double exponent, TimePoint at) {
  ScenarioEvent e;
  e.kind = ScenarioEvent::Kind::kZipfShift;
  e.at = at;
  e.until = at;
  e.exponent = exponent;
  events_.push_back(std::move(e));
  return *this;
}

ScenarioPlan& ScenarioPlan::flash_crowd(int hot_lo, int hot_hi, double boost,
                                        TimePoint at, TimePoint until) {
  ScenarioEvent e;
  e.kind = ScenarioEvent::Kind::kFlashCrowd;
  e.at = at;
  e.until = until;
  e.hot_lo = hot_lo;
  e.hot_hi = hot_hi;
  e.boost = boost;
  events_.push_back(std::move(e));
  return *this;
}

ScenarioPlan& ScenarioPlan::tenant_mix(double fraction, TimePoint at) {
  ScenarioEvent e;
  e.kind = ScenarioEvent::Kind::kTenantMix;
  e.at = at;
  e.until = at;
  e.mix_fraction = fraction;
  events_.push_back(std::move(e));
  return *this;
}

ScenarioPlan& ScenarioPlan::drain_region(std::string node, TimePoint at,
                                         TimePoint deadline) {
  ScenarioEvent e;
  e.kind = ScenarioEvent::Kind::kDrainRegion;
  e.target = std::move(node);
  e.at = at;
  e.until = deadline;
  events_.push_back(std::move(e));
  return *this;
}

ScenarioPlan& ScenarioPlan::add_region(std::string node, TimePoint at) {
  ScenarioEvent e;
  e.kind = ScenarioEvent::Kind::kAddRegion;
  e.target = std::move(node);
  e.at = at;
  e.until = at;
  events_.push_back(std::move(e));
  return *this;
}

ScenarioPlan& ScenarioPlan::rolling_restart(TimePoint at) {
  ScenarioEvent e;
  e.kind = ScenarioEvent::Kind::kRollingRestart;
  e.at = at;
  e.until = at;
  events_.push_back(std::move(e));
  return *this;
}

ScenarioPlan& ScenarioPlan::add(ScenarioEvent event) {
  events_.push_back(std::move(event));
  return *this;
}

const std::vector<std::string>& ScenarioPlan::builtin_names() {
  static const std::vector<std::string> names = {
      "diurnal",   "zipfshift",  "flashcrowd", "tenantmix", "evacuation",
      "addregion", "rolling",    "grayprimary", "graylink"};
  return names;
}

Result<ScenarioPlan> ScenarioPlan::builtin(const std::string& name,
                                           uint64_t seed,
                                           const BuiltinOptions& options) {
  ScenarioPlan plan;
  Rng rng(seed);
  const TimePoint start = options.earliest;
  const int64_t span =
      std::max<int64_t>(options.latest.us() - options.earliest.us(), 1);
  const auto pick_node = [&](const std::vector<std::string>& nodes) {
    return nodes[static_cast<size_t>(
        rng.next_below(static_cast<uint64_t>(nodes.size())))];
  };

  if (name == "diurnal") {
    if (options.regions.empty()) {
      return invalid_argument("diurnal scenario needs client regions");
    }
    for (const std::string& region : options.regions) {
      const TimePoint at = start + usec(rng.uniform_int(0, span / 4));
      plan.diurnal(region, at, options.latest,
                   /*amplitude=*/0.4 + 0.4 * rng.next_double(),
                   /*period=*/sec(6) + usec(rng.uniform_int(0, sec(6).us())));
    }
  } else if (name == "zipfshift") {
    const TimePoint hot_at = start + usec(rng.uniform_int(0, span / 3));
    const TimePoint cool_at =
        hot_at + usec(rng.uniform_int(span / 4, span / 2));
    plan.zipf_shift(0.9 + 0.6 * rng.next_double(), hot_at);
    plan.zipf_shift(0.2 + 0.3 * rng.next_double(),
                    std::min(cool_at, options.latest));
  } else if (name == "flashcrowd") {
    const TimePoint at = start + usec(rng.uniform_int(span / 6, span / 2));
    const Duration dur = usec(rng.uniform_int(sec(4).us(), sec(8).us()));
    const int hot =
        static_cast<int>(rng.uniform_int(0, options.key_count - 1));
    plan.flash_crowd(hot, std::min(hot + 1, options.key_count - 1),
                     /*boost=*/0.8, at, at + dur);
  } else if (name == "tenantmix") {
    const TimePoint surge_at = start + usec(rng.uniform_int(0, span / 3));
    const TimePoint ebb_at =
        surge_at + usec(rng.uniform_int(span / 4, span / 2));
    plan.tenant_mix(0.35 + 0.3 * rng.next_double(), surge_at);
    plan.tenant_mix(0.05 + 0.1 * rng.next_double(),
                    std::min(ebb_at, options.latest));
  } else if (name == "evacuation") {
    if (options.nodes.empty()) {
      return invalid_argument("evacuation scenario needs member nodes");
    }
    const TimePoint at =
        start + usec(rng.uniform_int(sec(2).us(), sec(6).us()));
    // Generous hand-off deadline: a composed crash/partition window can
    // stall replication for its whole span and the drain must still finish.
    plan.drain_region(pick_node(options.nodes), at, at + sec(25));
  } else if (name == "addregion") {
    if (options.nodes.empty() || options.spare_nodes.empty()) {
      return invalid_argument(
          "addregion scenario needs member nodes and spare nodes");
    }
    const TimePoint drain_at =
        start + usec(rng.uniform_int(sec(2).us(), sec(5).us()));
    plan.drain_region(pick_node(options.nodes), drain_at,
                      drain_at + sec(25));
    plan.add_region(pick_node(options.spare_nodes),
                    drain_at + usec(rng.uniform_int(sec(3).us(), sec(6).us())));
  } else if (name == "rolling") {
    plan.rolling_restart(start +
                         usec(rng.uniform_int(sec(1).us(), sec(4).us())));
  } else if (name == "grayprimary") {
    // Gray primary under diurnal load (docs/HEALTH.md): per-region diurnal
    // sines that begin only after a quiet head of several seconds, so the
    // SLO p99-inflation clause always has an out-of-window baseline to hold
    // the gray window against. The gray fault itself (slow node / stutter
    // on one peer) is composed by the test harness the same way partitions
    // and crashes compose with the other built-ins.
    if (options.regions.empty()) {
      return invalid_argument("grayprimary scenario needs client regions");
    }
    for (const std::string& region : options.regions) {
      const TimePoint at =
          start + sec(4) + usec(rng.uniform_int(0, sec(2).us()));
      plan.diurnal(region, at, options.latest,
                   /*amplitude=*/0.3 + 0.3 * rng.next_double(),
                   /*period=*/sec(5) + usec(rng.uniform_int(0, sec(5).us())));
    }
  } else if (name == "graylink") {
    // Flaky inter-region link during a flash crowd: hot-range traffic surge
    // while one tiera<->tiera replication link drops and jitters. Same
    // deliberate quiet head as grayprimary for the inflation baseline.
    if (options.key_count < 1) {
      return invalid_argument("graylink scenario needs keys");
    }
    const TimePoint at =
        start + sec(4) + usec(rng.uniform_int(0, sec(3).us()));
    const Duration dur = usec(rng.uniform_int(sec(6).us(), sec(10).us()));
    const int hot =
        static_cast<int>(rng.uniform_int(0, options.key_count - 1));
    plan.flash_crowd(hot, std::min(hot + 1, options.key_count - 1),
                     /*boost=*/0.8, at, at + dur);
  } else {
    return not_found("unknown scenario: " + name);
  }
  return plan;
}

std::pair<TimePoint, TimePoint> ScenarioPlan::window() const {
  if (events_.empty()) return {TimePoint::origin(), TimePoint::origin()};
  TimePoint lo = TimePoint::max();
  TimePoint hi = TimePoint::origin();
  for (const ScenarioEvent& e : events_) {
    lo = std::min(lo, e.at);
    hi = std::max(hi, std::max(e.at, e.until));
  }
  return {lo, hi};
}

std::string ScenarioPlan::describe() const {
  std::string out;
  for (const ScenarioEvent& e : events_) {
    if (!out.empty()) out += "\n";
    out += e.describe();
  }
  return out;
}

void ScenarioEngine::arm(ScenarioPlan plan) {
  std::vector<ScenarioEvent> events = plan.events();
  // Stable sort: events at the same instant apply in insertion order.
  std::stable_sort(events.begin(), events.end(),
                   [](const ScenarioEvent& a, const ScenarioEvent& b) {
                     return a.at < b.at;
                   });
  sim_->spawn(drive(std::move(events)), "scenario.driver");
}

Task<void> ScenarioEngine::drive(std::vector<ScenarioEvent> events) {
  for (const ScenarioEvent& e : events) {
    if (e.at > sim_->now()) co_await sim_->at(e.at);
    apply(e);
  }
}

void ScenarioEngine::apply(const ScenarioEvent& e) {
  // Every applied scenario event perturbs the determinism trace: two runs
  // only hash equal if they walked the identical scenario schedule.
  sim_->checker().fold_trace(e.hash());
  WLOG_INFO("scenario") << "applying scenario event: " << e.describe();
  events_applied_++;
  timeline_.emplace_back(sim_->now(), e.describe());
  switch (e.kind) {
    case ScenarioEvent::Kind::kDiurnalLoad:
    case ScenarioEvent::Kind::kZipfShift:
    case ScenarioEvent::Kind::kFlashCrowd:
    case ScenarioEvent::Kind::kTenantMix:
      load_.apply(e);
      surface_->on_load_change(e);
      break;
    case ScenarioEvent::Kind::kDrainRegion:
      surface_->on_drain_region(e);
      break;
    case ScenarioEvent::Kind::kAddRegion:
      surface_->on_add_region(e);
      break;
    case ScenarioEvent::Kind::kRollingRestart:
      surface_->on_rolling_restart(e);
      break;
  }
}

std::string ScenarioEngine::render_timeline() const {
  std::string out = "scenario timeline (" +
                    std::to_string(timeline_.size()) + " events):";
  for (const auto& [at, line] : timeline_) {
    out += "\n  t=" + std::to_string(at.us()) + "us " + line;
  }
  return out;
}

}  // namespace wiera::sim
