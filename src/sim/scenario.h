// Deterministic scenario engine: the workload twin of the fault injector
// (docs/SCENARIOS.md).
//
// A ScenarioPlan is a schedule of typed *scenario events* — load shapes
// (per-region diurnal sine, zipf-shift of the key popularity exponent, a
// flash crowd on a key range, tenant-mix churn) and operational events
// (drain-and-evacuate a region, add a region live, a controlled rolling
// restart of the peer set). Plans are either scripted by a test or derived
// from a named built-in plus a seed, so every scenario run is reproducible
// from `--seed N --scenario NAME`.
//
// Like faults.h, the sim layer knows nothing about the cluster above it:
// operational events are applied through the abstract ScenarioSurface (the
// wiera layer provides geo::ScenarioHost, which maps them onto the
// controller's cooperative drain / live-add / rolling-restart machinery),
// while load shapes fold into the engine's own LoadModel, which workload
// drivers query for per-op key choice, tenant class and rate multipliers.
// The ScenarioEngine walks the plan on virtual time and folds every applied
// event into the SimChecker determinism trace hash, so a replay that
// diverges in its scenario schedule is immediately visible as a hash
// mismatch (docs/DETERMINISM.md).
#pragma once

#include <cstdint>
#include <string>
#include <string_view>
#include <utility>
#include <vector>

#include "common/rng.h"
#include "common/status.h"
#include "common/time.h"
#include "sim/simulation.h"
#include "sim/task.h"

namespace wiera::sim {

struct ScenarioEvent {
  enum class Kind {
    // ---- load shapes ----
    kDiurnalLoad,  // sinusoidal rate multiplier on `target` region [at,until)
    kZipfShift,    // key popularity exponent becomes `exponent` at `at`
    kFlashCrowd,   // key range [hot_lo,hot_hi] absorbs `boost` of traffic
    kTenantMix,    // class-B tenant fraction becomes `mix_fraction` at `at`
    // ---- operational events ----
    kDrainRegion,     // cooperatively evacuate peer `target`; `until` is the
                      // hand-off deadline
    kAddRegion,       // bring a peer up live on node `target` at `at`
    kRollingRestart,  // controlled one-at-a-time restart of the peer set
  };

  Kind kind = Kind::kDiurnalLoad;
  TimePoint at;     // when the event begins / fires
  TimePoint until;  // window end (drain: hand-off deadline)
  // Affected region/node: a client region for kDiurnalLoad ("" = every
  // region), a peer node for kDrainRegion/kAddRegion.
  std::string target;

  // kDiurnalLoad knobs: multiplier = 1 + amplitude * sin(2*pi*t/period).
  double amplitude = 0.0;
  Duration period = Duration::zero();

  // kZipfShift knob.
  double exponent = 0.0;

  // kFlashCrowd knobs: while active, `boost` of key picks land uniformly in
  // [hot_lo, hot_hi].
  int hot_lo = 0;
  int hot_hi = 0;
  double boost = 0.0;

  // kTenantMix knob: fraction of ops issued by the class-B tenant.
  double mix_fraction = 0.0;

  std::string describe() const;
  // Stable content hash folded into the determinism trace when applied.
  uint64_t hash() const;
};

std::string_view scenario_kind_name(ScenarioEvent::Kind k);

// Receiver of *operational* scenario events — implemented by the wiera
// layer (geo::ScenarioHost) or by unit tests. Handlers run on the engine's
// coroutine at the event's scheduled virtual time; default no-ops keep
// pre-existing surfaces compiling when new kinds are added.
class ScenarioSurface {
 public:
  virtual ~ScenarioSurface() = default;
  virtual void on_drain_region(const ScenarioEvent& /*e*/) {}
  virtual void on_add_region(const ScenarioEvent& /*e*/) {}
  virtual void on_rolling_restart(const ScenarioEvent& /*e*/) {}
  // Informational: a load-shape event was applied to the LoadModel.
  virtual void on_load_change(const ScenarioEvent& /*e*/) {}
};

// The live traffic model workload drivers sample from. Scenario events
// mutate it (through ScenarioEngine::apply) at their virtual-time instants;
// between events it is pure state, so sampling is deterministic given a
// deterministic Rng.
class LoadModel {
 public:
  void set_key_count(int n) { key_count_ = n > 0 ? n : 1; }
  int key_count() const { return key_count_; }

  // Product of every active diurnal window touching `region`, clamped to
  // [0.2, inf) so a deep trough never stalls the workload entirely.
  double rate_multiplier(const std::string& region, TimePoint now) const;
  // Key index in [0, key_count): flash-crowd boost first, then a zipfian
  // draw with the current popularity exponent (0 = uniform).
  int pick_key(Rng& rng, TimePoint now) const;
  // Tenant class for the next op: 1 (class B) with the current mix
  // fraction, else 0 (class A).
  int pick_tenant(Rng& rng) const;

  double zipf_exponent() const { return exponent_; }
  double tenant_mix() const { return mix_; }

  void apply(const ScenarioEvent& e);

 private:
  struct DiurnalWindow {
    std::string region;
    TimePoint at;
    TimePoint until;
    double amplitude = 0.0;
    Duration period = Duration::zero();
  };
  struct CrowdWindow {
    TimePoint at;
    TimePoint until;
    int hot_lo = 0;
    int hot_hi = 0;
    double boost = 0.0;
  };

  int key_count_ = 1;
  double exponent_ = 0.0;
  double mix_ = 0.0;
  std::vector<DiurnalWindow> diurnal_;
  std::vector<CrowdWindow> crowds_;
};

class ScenarioPlan {
 public:
  // ---- scripted construction ----
  ScenarioPlan& diurnal(std::string region, TimePoint at, TimePoint until,
                        double amplitude, Duration period);
  ScenarioPlan& zipf_shift(double exponent, TimePoint at);
  ScenarioPlan& flash_crowd(int hot_lo, int hot_hi, double boost, TimePoint at,
                            TimePoint until);
  ScenarioPlan& tenant_mix(double fraction, TimePoint at);
  // Cooperatively drain peer `node`; the hand-off must finish by `deadline`.
  ScenarioPlan& drain_region(std::string node, TimePoint at,
                             TimePoint deadline);
  ScenarioPlan& add_region(std::string node, TimePoint at);
  ScenarioPlan& rolling_restart(TimePoint at);
  ScenarioPlan& add(ScenarioEvent event);

  // ---- named built-ins (seed-derived) ----
  // Inputs for ScenarioPlan::builtin. Every built-in draws its free choices
  // (which peer drains, window offsets, hot ranges) from Rng(seed), so a
  // (name, seed) pair names exactly one plan.
  struct BuiltinOptions {
    std::vector<std::string> nodes;        // instance members (drain targets)
    std::vector<std::string> spare_nodes;  // addable capacity (kAddRegion)
    std::vector<std::string> regions;      // client regions (kDiurnalLoad)
    int key_count = 6;
    TimePoint earliest = TimePoint::origin() + sec(4);
    TimePoint latest = TimePoint::origin() + sec(30);
  };
  // diurnal | zipfshift | flashcrowd | tenantmix | evacuation | addregion |
  // rolling | grayprimary | graylink (docs/SCENARIOS.md describes each; the
  // gray pair is the load-shape half of the gray-failure scenarios in
  // docs/HEALTH.md — the degraded peer/link is composed as a FaultPlan).
  static const std::vector<std::string>& builtin_names();
  static Result<ScenarioPlan> builtin(const std::string& name, uint64_t seed,
                                      const BuiltinOptions& options);

  const std::vector<ScenarioEvent>& events() const { return events_; }
  bool empty() const { return events_.empty(); }
  // [first `at`, last `until`] over every event; origin..origin when empty.
  std::pair<TimePoint, TimePoint> window() const;
  std::string describe() const;

 private:
  std::vector<ScenarioEvent> events_;
};

// Walks a ScenarioPlan on virtual time: sleeps to each event's `at`, folds
// the event's hash into the determinism trace, applies load shapes to the
// LoadModel and dispatches operational events to the surface. Symmetric
// with FaultInjector; the applied-event timeline is kept for SLO-violation
// dumps.
class ScenarioEngine {
 public:
  ScenarioEngine(Simulation& sim, ScenarioSurface& surface)
      : sim_(&sim), surface_(&surface) {}

  // Spawn the driver task for `plan`. Call once per plan; the driver exits
  // after the last event fires.
  void arm(ScenarioPlan plan);

  LoadModel& load() { return load_; }
  const LoadModel& load() const { return load_; }
  int64_t events_applied() const { return events_applied_; }

  // Applied events with their virtual apply times, in order — the scenario
  // timeline an SLO violation dump prints next to the span trees.
  const std::vector<std::pair<TimePoint, std::string>>& timeline() const {
    return timeline_;
  }
  std::string render_timeline() const;

 private:
  Task<void> drive(std::vector<ScenarioEvent> events);
  void apply(const ScenarioEvent& e);

  Simulation* sim_;
  ScenarioSurface* surface_;
  LoadModel load_;
  int64_t events_applied_ = 0;
  std::vector<std::pair<TimePoint, std::string>> timeline_;
};

}  // namespace wiera::sim
