#include "sim/slo.h"

#include <algorithm>
#include <cstdio>
#include <map>
#include <utility>

namespace wiera::sim {

namespace {

// Client-side integrity counters that must stay zero under no_corrupt_reads:
// payload checksum mismatches surfaced to a client, and wire-level frame
// corruption it detected (docs/INTEGRITY.md).
constexpr const char* kCorruptionCounters[] = {
    "wiera_client_checksum_failures_total",
    "wiera_wire_checksum_failures_total",
};

std::string time_str(TimePoint t) { return std::to_string(t.us()) + "us"; }

}  // namespace

std::string SloContract::describe() const {
  std::string out = "contract[" + scenario + "]";
  if (max_put_p99 > Duration::zero()) {
    out += " put_p99<=" + std::to_string(max_put_p99.us()) + "us";
  }
  if (max_get_p99 > Duration::zero()) {
    out += " get_p99<=" + std::to_string(max_get_p99.us()) + "us";
  }
  if (max_shed_fraction >= 0.0) {
    out += " shed<=" + std::to_string(max_shed_fraction);
  }
  if (no_failed_ops) out += " no-failed-ops";
  if (no_corrupt_reads) out += " no-corrupt-reads";
  if (max_availability_gap > Duration::zero()) {
    out += " gap<=" + std::to_string(max_availability_gap.us()) + "us";
  }
  if (session_reads) out += " session-reads";
  if (max_get_p99_inflation > 0.0) {
    out += " get_p99_inflation<=" + std::to_string(max_get_p99_inflation) +
           "x";
  }
  if (require_detection) {
    out += " detection-required[";
    for (size_t i = 0; i < guarded_clauses.size(); ++i) {
      if (i > 0) out += ",";
      out += guarded_clauses[i];
    }
    out += "]";
  }
  return out;
}

void SloOracle::record_alert(const std::string& clause, TimePoint at) {
  alerts_.emplace_back(clause, at);
}

void SloOracle::set_window(TimePoint start, TimePoint end) {
  has_window_ = true;
  window_start_ = start;
  window_end_ = end;
}

void SloOracle::record(OpRec rec) {
  switch (rec.code) {
    case StatusCode::kOk: ok_++; break;
    case StatusCode::kNotFound: not_found_++; break;
    case StatusCode::kResourceExhausted: shed_++; break;
    default: failed_++; break;
  }
  ops_.push_back(std::move(rec));
}

void SloOracle::record_put(const std::string& client, const std::string& key,
                           const std::string& value, TimePoint start,
                           TimePoint end, StatusCode code, uint64_t trace_id) {
  OpRec rec;
  rec.is_put = true;
  rec.client = client;
  rec.key = key;
  rec.value = value;
  rec.start = start;
  rec.end = end;
  rec.code = code;
  rec.trace_id = trace_id;
  record(std::move(rec));
}

void SloOracle::record_get(const std::string& client, const std::string& key,
                           const std::string& value, TimePoint start,
                           TimePoint end, StatusCode code, uint64_t trace_id) {
  OpRec rec;
  rec.client = client;
  rec.key = key;
  rec.value = value;
  rec.start = start;
  rec.end = end;
  rec.code = code;
  rec.trace_id = trace_id;
  record(std::move(rec));
}

std::vector<SloViolation> SloOracle::check(
    const SloContract& contract, const obs::Registry& registry,
    const std::vector<std::string>& clients) const {
  std::vector<SloViolation> out;
  const bool sheds_tolerated = contract.max_shed_fraction >= 0.0;

  // ---- failed ops (whole run, not just the window) ----
  if (contract.no_failed_ops) {
    for (const OpRec& op : ops_) {
      const bool shed_ok =
          sheds_tolerated && op.code == StatusCode::kResourceExhausted;
      if (op.code == StatusCode::kOk || op.code == StatusCode::kNotFound ||
          shed_ok) {
        continue;
      }
      out.push_back({"no-failed-ops",
                     std::string(op.is_put ? "put" : "get") + " by " +
                         op.client + " on " + op.key + " failed with " +
                         std::string(status_code_name(op.code)) + " at " +
                         time_str(op.end),
                     op.trace_id, op.end});
      break;  // first failure is evidence enough; counters carry the total
    }
  }

  // ---- shed fraction over the scenario window ----
  if (sheds_tolerated && has_window_) {
    int64_t in_window = 0;
    int64_t shed_in_window = 0;
    for (const OpRec& op : ops_) {
      if (op.end < window_start_ || op.end > window_end_) continue;
      in_window++;
      if (op.code == StatusCode::kResourceExhausted) shed_in_window++;
    }
    const double fraction =
        in_window == 0 ? 0.0
                       : static_cast<double>(shed_in_window) /
                             static_cast<double>(in_window);
    if (fraction > contract.max_shed_fraction) {
      out.push_back({"shed-fraction",
                     "shed " + std::to_string(shed_in_window) + "/" +
                         std::to_string(in_window) + " in-window ops (" +
                         std::to_string(fraction) + " > " +
                         std::to_string(contract.max_shed_fraction) + ")",
                     0, window_end_});
    }
  }

  // ---- p99 latency from the registry's per-client histograms ----
  const auto check_p99 = [&](const char* family, Duration bound,
                             const char* check) {
    if (bound <= Duration::zero()) return;
    for (const std::string& client : clients) {
      const obs::Histogram* hist =
          registry.find_histogram(family, {{"client", client}});
      if (hist == nullptr || hist->count() == 0) continue;
      const Duration p99 = hist->percentile(0.99);
      if (p99 > bound) {
        out.push_back({check,
                       std::string(family) + "{client=" + client +
                           "} p99=" + std::to_string(p99.us()) + "us > " +
                           std::to_string(bound.us()) + "us over " +
                           std::to_string(hist->count()) + " ops",
                       0, has_window_ ? window_end_ : TimePoint()});
      }
    }
  };
  check_p99("wiera_client_put_latency_us", contract.max_put_p99, "put-p99");
  check_p99("wiera_client_get_latency_us", contract.max_get_p99, "get-p99");

  // ---- corrupt reads ----
  if (contract.no_corrupt_reads) {
    for (const char* family : kCorruptionCounters) {
      const int64_t seen = registry.counter_sum(family);
      if (seen > 0) {
        out.push_back({"no-corrupt-reads",
                       std::string(family) + " = " + std::to_string(seen),
                       0, has_window_ ? window_end_ : TimePoint()});
      }
    }
  }

  // ---- availability gap across the scenario window ----
  if (contract.max_availability_gap > Duration::zero() && has_window_) {
    std::vector<TimePoint> successes;
    for (const OpRec& op : ops_) {
      if (op.code != StatusCode::kOk && op.code != StatusCode::kNotFound) {
        continue;
      }
      if (op.end < window_start_ || op.end > window_end_) continue;
      successes.push_back(op.end);
    }
    std::sort(successes.begin(), successes.end());
    TimePoint prev = window_start_;
    Duration worst = Duration::zero();
    TimePoint worst_at = window_start_;
    for (const TimePoint t : successes) {
      if (t - prev > worst) {
        worst = t - prev;
        worst_at = prev;
      }
      prev = t;
    }
    if (window_end_ - prev > worst) {
      worst = window_end_ - prev;
      worst_at = prev;
    }
    if (worst > contract.max_availability_gap) {
      out.push_back({"availability-gap",
                     "no successful op for " + std::to_string(worst.us()) +
                         "us (> " +
                         std::to_string(contract.max_availability_gap.us()) +
                         "us) starting at " + time_str(worst_at),
                     0, worst_at + worst});
    }
  }

  // ---- in-window GET p99 inflation vs the quiet baseline ----
  if (contract.max_get_p99_inflation > 0.0 && has_window_) {
    // The shared exact-percentile primitive (common/histogram.h) with a cap
    // past any realistic op count, so p99 stays exact nearest-rank —
    // byte-identical to the hand-rolled sorted-vector version it replaced.
    constexpr int64_t kAlwaysExact = int64_t{1} << 40;
    LatencyHistogram inside(kAlwaysExact);
    LatencyHistogram outside(kAlwaysExact);
    for (const OpRec& op : ops_) {
      if (op.is_put) continue;
      if (op.code != StatusCode::kOk && op.code != StatusCode::kNotFound) {
        continue;
      }
      if (op.end >= window_start_ && op.end <= window_end_) {
        inside.record(op.end - op.start);
      } else {
        outside.record(op.end - op.start);
      }
    }
    const int64_t min_samples =
        std::max<int64_t>(contract.min_inflation_samples, 1);
    if (inside.count() >= min_samples && outside.count() >= min_samples) {
      const Duration in_p99 = inside.p99();
      const Duration out_p99 = outside.p99();
      if (out_p99 > Duration::zero() &&
          static_cast<double>(in_p99.us()) >
              contract.max_get_p99_inflation *
                  static_cast<double>(out_p99.us())) {
        out.push_back(
            {"get-p99-inflation",
             "in-window get p99=" + std::to_string(in_p99.us()) + "us over " +
                 std::to_string(inside.count()) + " ops vs baseline p99=" +
                 std::to_string(out_p99.us()) + "us over " +
                 std::to_string(outside.count()) + " ops (" +
                 std::to_string(static_cast<double>(in_p99.us()) /
                                static_cast<double>(out_p99.us())) +
                 "x > " + std::to_string(contract.max_get_p99_inflation) +
                 "x)",
             0, window_end_});
      }
    }
  }

  // ---- session read-your-writes ----
  if (contract.session_reads) {
    // Acked puts per (client, key), in completion order. ops_ is already in
    // record order, which is completion order for a single-threaded driver;
    // sort by end time anyway so interleaved drivers stay correct.
    std::map<std::pair<std::string, std::string>, std::vector<const OpRec*>>
        acked;
    for (const OpRec& op : ops_) {
      if (op.is_put && op.code == StatusCode::kOk) {
        acked[{op.client, op.key}].push_back(&op);
      }
    }
    for (auto& [who, puts] : acked) {
      std::sort(puts.begin(), puts.end(),
                [](const OpRec* a, const OpRec* b) { return a->end < b->end; });
    }
    for (const OpRec& op : ops_) {
      if (op.is_put) continue;
      if (op.code != StatusCode::kOk && op.code != StatusCode::kNotFound) {
        continue;
      }
      const auto it = acked.find({op.client, op.key});
      if (it == acked.end()) continue;
      // Own writes acked before this read started.
      const OpRec* last = nullptr;
      bool is_earlier_own = false;
      for (const OpRec* put : it->second) {
        if (put->end > op.start) break;
        if (last != nullptr && last->value == op.value) is_earlier_own = true;
        last = put;
      }
      if (last == nullptr) continue;
      if (op.code == StatusCode::kNotFound) {
        out.push_back({"session-reads",
                       op.client + " read nothing from " + op.key + " at " +
                           time_str(op.end) + " after its own write '" +
                           last->value + "' was acked at " +
                           time_str(last->end),
                       op.trace_id, op.end});
        continue;
      }
      if (op.value != last->value && is_earlier_own) {
        out.push_back({"session-reads",
                       op.client + " read its own stale value '" + op.value +
                           "' from " + op.key + " at " + time_str(op.end) +
                           " after acking '" + last->value + "' at " +
                           time_str(last->end),
                       op.trace_id, op.end});
      }
    }
  }

  // ---- detection precedes violation ----
  if (contract.require_detection) {
    std::vector<SloViolation> gaps;
    for (const SloViolation& v : out) {
      bool guarded = false;
      for (const std::string& clause : contract.guarded_clauses) {
        if (clause == v.check) {
          guarded = true;
          break;
        }
      }
      if (!guarded) continue;
      bool detected = false;
      for (const auto& [clause, at] : alerts_) {
        if (clause == v.check && at < v.at) {
          detected = true;
          break;
        }
      }
      if (detected) continue;
      gaps.push_back({"detection-gap",
                      "clause " + v.check + " tripped at " + time_str(v.at) +
                          " with no earlier " + v.check +
                          " alert firing (" + std::to_string(alerts_.size()) +
                          " firings recorded)",
                      0, v.at});
    }
    out.insert(out.end(), gaps.begin(), gaps.end());
  }

  return out;
}

std::string SloOracle::describe(const std::vector<SloViolation>& violations) {
  std::string out;
  for (const SloViolation& v : violations) {
    if (!out.empty()) out += "\n";
    out += "[" + v.check + "] " + v.message;
    if (v.trace_id != 0) {
      char buf[32];
      std::snprintf(buf, sizeof(buf), " trace=0x%016llx",
                    static_cast<unsigned long long>(v.trace_id));
      out += buf;
    }
  }
  return out;
}

}  // namespace wiera::sim
