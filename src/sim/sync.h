// Synchronization primitives for simulation coroutines.
//
// All primitives wake waiters by *scheduling* them at the current virtual
// time rather than resuming inline. This keeps the call stack flat and makes
// wake order deterministic (FIFO, after already-queued same-time events).
//
// None of these are thread-safe — the simulation is single-threaded.
//
// Every primitive takes an optional `name` (a pointer that must outlive the
// primitive, typically a string literal) used by the SimChecker to label
// stuck-task / deadlock / misuse diagnostics. API misuse that used to be a
// bare `assert` (double unlock, send on a closed channel, double-fulfilled
// promise, negative release) is reported as a structured checker error and
// then handled gracefully, so the diagnostics survive NDEBUG builds.
#pragma once

#include <cassert>
#include <coroutine>
#include <deque>
#include <memory>
#include <optional>
#include <string>
#include <vector>

#include "sim/checker.h"
#include "sim/simulation.h"

// Fallback for builds with the checker compiled out: keep the original
// assert so misuse still trips in debug binaries.
#if WIERA_SIM_CHECKER_ENABLED
#define WIERA_SIM_FALLBACK_ASSERT(cond) ((void)0)
#else
#define WIERA_SIM_FALLBACK_ASSERT(cond) assert(cond)
#endif

namespace wiera::sim {

// Manual-reset event: wait() suspends until set() is called; once set, all
// current and future waiters pass through until reset().
class Event {
 public:
  explicit Event(Simulation& sim, const char* name = "")
      : sim_(&sim), name_(name) {}

  ~Event() {
    if (!waiters_.empty()) {
      sim_->checker().on_primitive_destroyed(WaitKind::kEvent, this, name_,
                                             waiters_.size());
    }
  }

  Event(const Event&) = delete;
  Event& operator=(const Event&) = delete;

  bool is_set() const { return set_; }

  void set() {
    if (set_) return;
    set_ = true;
    for (auto h : waiters_) sim_->schedule_at(sim_->now(), h);
    waiters_.clear();
  }

  void reset() { set_ = false; }

  auto wait() {
    struct Awaiter {
      Event* event;
      bool await_ready() const noexcept { return event->set_; }
      void await_suspend(std::coroutine_handle<> h) {
        event->waiters_.push_back(h);
        event->sim_->checker().on_block(h.address(), WaitKind::kEvent, event,
                                        event->name_);
      }
      void await_resume() const noexcept {}
    };
    return Awaiter{this};
  }

 private:
  Simulation* sim_;
  const char* name_;
  bool set_ = false;
  std::vector<std::coroutine_handle<>> waiters_;
};

// FIFO mutex. Models exclusive critical sections in virtual time (e.g. the
// serialization a single-writer store imposes). The checker tracks the
// owning task, which is what makes ABBA deadlock cycles reportable by name.
class SimMutex {
 public:
  explicit SimMutex(Simulation& sim, const char* name = "")
      : sim_(&sim), name_(name) {}

  ~SimMutex() {
    if (!waiters_.empty()) {
      sim_->checker().on_primitive_destroyed(WaitKind::kMutex, this, name_,
                                             waiters_.size());
    }
  }

  SimMutex(const SimMutex&) = delete;
  SimMutex& operator=(const SimMutex&) = delete;

  bool locked() const { return locked_; }

  auto lock() {
    struct Awaiter {
      SimMutex* m;
      bool await_ready() const noexcept {
        if (!m->locked_) {
          m->locked_ = true;
          m->sim_->checker().on_mutex_acquired(m, m->name_);
          return true;
        }
        return false;
      }
      void await_suspend(std::coroutine_handle<> h) {
        m->waiters_.push_back(h);
        m->sim_->checker().on_block(h.address(), WaitKind::kMutex, m,
                                    m->name_);
      }
      void await_resume() const noexcept {}
    };
    return Awaiter{this};
  }

  void unlock() {
    if (!locked_) {
      WIERA_SIM_FALLBACK_ASSERT(locked_);
      sim_->checker().report_error(
          SimDiagnostic::Kind::kDoubleUnlock, name_,
          std::string("SimMutex '") + display_name() +
              "' unlocked while not locked");
      return;
    }
    if (waiters_.empty()) {
      locked_ = false;
      sim_->checker().on_mutex_released(this);
      return;
    }
    // Hand the lock to the next waiter; it stays logically locked.
    auto h = waiters_.front();
    waiters_.pop_front();
    sim_->checker().on_mutex_handoff(this, h.address());
    sim_->schedule_at(sim_->now(), h);
  }

 private:
  const char* display_name() const {
    return name_[0] == '\0' ? "<unnamed>" : name_;
  }

  Simulation* sim_;
  const char* name_;
  bool locked_ = false;
  std::deque<std::coroutine_handle<>> waiters_;
};

// Counting semaphore; models bounded resources (IOPS tokens, connection
// slots).
class SimSemaphore {
 public:
  SimSemaphore(Simulation& sim, int64_t initial, const char* name = "")
      : sim_(&sim), name_(name), count_(initial) {
    assert(initial >= 0);
  }

  ~SimSemaphore() {
    if (!waiters_.empty()) {
      sim_->checker().on_primitive_destroyed(WaitKind::kSemaphore, this,
                                             name_, waiters_.size());
    }
  }

  SimSemaphore(const SimSemaphore&) = delete;
  SimSemaphore& operator=(const SimSemaphore&) = delete;

  int64_t available() const { return count_; }

  auto acquire() {
    struct Awaiter {
      SimSemaphore* s;
      bool await_ready() const noexcept {
        if (s->count_ > 0) {
          s->count_--;
          return true;
        }
        return false;
      }
      void await_suspend(std::coroutine_handle<> h) {
        s->waiters_.push_back(h);
        s->sim_->checker().on_block(h.address(), WaitKind::kSemaphore, s,
                                    s->name_);
      }
      void await_resume() const noexcept {}
    };
    return Awaiter{this};
  }

  // release(0) is an explicit no-op; a negative n is reported and ignored.
  void release(int64_t n = 1) {
    if (n < 0) {
      WIERA_SIM_FALLBACK_ASSERT(n >= 0);
      sim_->checker().report_error(
          SimDiagnostic::Kind::kNegativeRelease, name_,
          std::string("SimSemaphore released with negative count ") +
              std::to_string(n));
      return;
    }
    while (n > 0 && !waiters_.empty()) {
      auto h = waiters_.front();
      waiters_.pop_front();
      sim_->schedule_at(sim_->now(), h);
      n--;
    }
    count_ += n;
  }

 private:
  Simulation* sim_;
  const char* name_;
  int64_t count_;
  std::deque<std::coroutine_handle<>> waiters_;
};

// Unbounded MPSC/MPMC channel. Used for the `queue` response (asynchronous
// update propagation) and actor mailboxes. recv() returns nullopt once the
// channel is closed and drained.
template <typename T>
class Channel {
 public:
  explicit Channel(Simulation& sim, const char* name = "")
      : sim_(&sim), name_(name) {}

  ~Channel() {
    if (!waiters_.empty()) {
      sim_->checker().on_primitive_destroyed(WaitKind::kChannel, this, name_,
                                             waiters_.size());
    }
  }

  Channel(const Channel&) = delete;
  Channel& operator=(const Channel&) = delete;

  void send(T item) {
    if (closed_) {
      WIERA_SIM_FALLBACK_ASSERT(!closed_ && "send on closed channel");
      sim_->checker().report_error(
          SimDiagnostic::Kind::kSendAfterClose, name_,
          std::string("send on closed Channel '") +
              (name_[0] == '\0' ? "<unnamed>" : name_) + "'");
      // Fall through: deliver anyway so release builds keep their historic
      // best-effort behaviour.
    }
    items_.push_back(std::move(item));
    wake_one();
  }

  void close() {
    closed_ = true;
    // Wake everyone; drained receivers observe nullopt.
    while (!waiters_.empty()) {
      auto h = waiters_.front();
      waiters_.pop_front();
      sim_->schedule_at(sim_->now(), h);
    }
  }

  bool closed() const { return closed_; }
  size_t size() const { return items_.size(); }
  bool empty() const { return items_.empty(); }

  auto recv() {
    struct Awaiter {
      Channel* ch;
      bool await_ready() const noexcept {
        return !ch->items_.empty() || ch->closed_;
      }
      void await_suspend(std::coroutine_handle<> h) {
        ch->waiters_.push_back(h);
        ch->sim_->checker().on_block(h.address(), WaitKind::kChannel, ch,
                                     ch->name_);
      }
      std::optional<T> await_resume() {
        if (ch->items_.empty()) return std::nullopt;  // closed & drained
        T item = std::move(ch->items_.front());
        ch->items_.pop_front();
        return item;
      }
    };
    return Awaiter{this};
  }

  // Non-blocking receive.
  std::optional<T> try_recv() {
    if (items_.empty()) return std::nullopt;
    T item = std::move(items_.front());
    items_.pop_front();
    return item;
  }

 private:
  void wake_one() {
    if (waiters_.empty()) return;
    auto h = waiters_.front();
    waiters_.pop_front();
    sim_->schedule_at(sim_->now(), h);
  }

  Simulation* sim_;
  const char* name_;
  bool closed_ = false;
  std::deque<T> items_;
  std::deque<std::coroutine_handle<>> waiters_;
};

// One-shot future/promise pair, the RPC completion mechanism. Multiple
// awaiters are allowed; the value is copied out to each.
template <typename T>
class Future;

template <typename T>
struct FutureState {
  FutureState(Simulation& sim, const char* name)
      : sim(&sim), name(name) {}

  ~FutureState() {
    if (!waiters.empty()) {
      sim->checker().on_primitive_destroyed(WaitKind::kFuture, this, name,
                                            waiters.size());
    }
  }

  Simulation* sim;
  const char* name;
  std::optional<T> value;
  std::vector<std::coroutine_handle<>> waiters;
  // Live Promise handles over this state; when the last one drops without
  // fulfilling while coroutines wait, those waiters can never wake — the
  // checker reports a broken promise.
  int promise_refs = 0;
};

template <typename T>
class Promise {
 public:
  explicit Promise(Simulation& sim, const char* name = "")
      : state_(std::make_shared<FutureState<T>>(sim, name)) {
    state_->promise_refs++;
  }

  Promise(const Promise& o) : state_(o.state_) { state_->promise_refs++; }
  Promise& operator=(const Promise& o) {
    if (this != &o) {
      drop();
      state_ = o.state_;
      state_->promise_refs++;
    }
    return *this;
  }
  Promise(Promise&& o) noexcept : state_(std::move(o.state_)) {}
  Promise& operator=(Promise&& o) noexcept {
    if (this != &o) {
      drop();
      state_ = std::move(o.state_);
    }
    return *this;
  }
  ~Promise() { drop(); }

  Future<T> future() const;

  // Fulfilling twice is a structured checker error; the first value wins.
  void set_value(T value) {
    if (state_->value.has_value()) {
      WIERA_SIM_FALLBACK_ASSERT(!state_->value.has_value() &&
                                "promise fulfilled twice");
      state_->sim->checker().report_error(
          SimDiagnostic::Kind::kPromiseDoubleSet, state_->name,
          std::string("Promise '") +
              (state_->name[0] == '\0' ? "<unnamed>" : state_->name) +
              "' fulfilled twice; keeping the first value");
      return;
    }
    state_->value.emplace(std::move(value));
    for (auto h : state_->waiters) {
      state_->sim->schedule_at(state_->sim->now(), h);
    }
    state_->waiters.clear();
  }

  bool fulfilled() const { return state_->value.has_value(); }

 private:
  void drop() {
    if (state_ == nullptr) return;
    if (--state_->promise_refs == 0 && !state_->value.has_value() &&
        !state_->waiters.empty() && !SimChecker::in_teardown()) {
      state_->sim->checker().report_error(
          SimDiagnostic::Kind::kPromiseBroken, state_->name,
          std::string("last Promise '") +
              (state_->name[0] == '\0' ? "<unnamed>" : state_->name) +
              "' dropped unfulfilled with " +
              std::to_string(state_->waiters.size()) +
              " waiter(s); they can never be woken");
    }
    state_ = nullptr;
  }

  std::shared_ptr<FutureState<T>> state_;
};

template <typename T>
class Future {
 public:
  explicit Future(std::shared_ptr<FutureState<T>> state)
      : state_(std::move(state)) {}

  bool ready() const { return state_->value.has_value(); }

  auto operator co_await() const {
    struct Awaiter {
      std::shared_ptr<FutureState<T>> state;
      bool await_ready() const noexcept { return state->value.has_value(); }
      void await_suspend(std::coroutine_handle<> h) {
        state->waiters.push_back(h);
        state->sim->checker().on_block(h.address(), WaitKind::kFuture,
                                       state.get(), state->name);
      }
      T await_resume() {
        assert(state->value.has_value());
        // Deliberately a copy, not a move: a Future may be co_awaited by
        // several tasks (fan-in on one RPC completion) and can be awaited
        // again after it is ready, so the stored value must stay intact.
        // Callers needing a cheap transfer should wrap T in shared_ptr.
        return *state->value;
      }
    };
    return Awaiter{state_};
  }

 private:
  std::shared_ptr<FutureState<T>> state_;
};

template <typename T>
Future<T> Promise<T>::future() const {
  return Future<T>(state_);
}

namespace detail {

template <typename T>
struct WhenAllState {
  explicit WhenAllState(Simulation& sim, size_t n)
      : remaining(n), done(sim, "when_all.done") {
    results.resize(n);
  }
  std::vector<std::optional<T>> results;
  size_t remaining;
  Event done;
};

template <typename T>
Task<void> when_all_runner(std::shared_ptr<WhenAllState<T>> state, size_t i,
                           Task<T> task) {
  state->results[i] = co_await std::move(task);
  if (--state->remaining == 0) state->done.set();
}

}  // namespace detail

// Run all tasks concurrently (in virtual time) and collect their results in
// input order. This is the fan-out primitive used for synchronous update
// broadcast in the MultiPrimaries / PrimaryBackup protocols.
template <typename T>
Task<std::vector<T>> when_all(Simulation& sim, std::vector<Task<T>> tasks) {
  auto state =
      std::make_shared<detail::WhenAllState<T>>(sim, tasks.size());
  for (size_t i = 0; i < tasks.size(); ++i) {
    sim.spawn(detail::when_all_runner<T>(state, i, std::move(tasks[i])));
  }
  if (!state->results.empty()) {
    co_await state->done.wait();
  }
  std::vector<T> out;
  out.reserve(state->results.size());
  for (auto& r : state->results) out.push_back(std::move(*r));
  co_return out;
}

namespace detail {

struct WhenAllVoidState {
  explicit WhenAllVoidState(Simulation& sim, size_t n)
      : remaining(n), done(sim, "when_all.done") {}
  size_t remaining;
  Event done;
};

inline Task<void> when_all_void_runner(
    std::shared_ptr<WhenAllVoidState> state, Task<void> task) {
  co_await std::move(task);
  if (--state->remaining == 0) state->done.set();
}

}  // namespace detail

// Void overload: join a batch of side-effect tasks.
inline Task<void> when_all(Simulation& sim, std::vector<Task<void>> tasks) {
  auto state =
      std::make_shared<detail::WhenAllVoidState>(sim, tasks.size());
  const bool empty = tasks.empty();
  for (auto& task : tasks) {
    sim.spawn(detail::when_all_void_runner(state, std::move(task)));
  }
  if (!empty) {
    co_await state->done.wait();
  }
}

}  // namespace wiera::sim
