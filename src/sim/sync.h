// Synchronization primitives for simulation coroutines.
//
// All primitives wake waiters by *scheduling* them at the current virtual
// time rather than resuming inline. This keeps the call stack flat and makes
// wake order deterministic (FIFO, after already-queued same-time events).
//
// None of these are thread-safe — the simulation is single-threaded.
#pragma once

#include <cassert>
#include <coroutine>
#include <deque>
#include <memory>
#include <optional>
#include <vector>

#include "sim/simulation.h"

namespace wiera::sim {

// Manual-reset event: wait() suspends until set() is called; once set, all
// current and future waiters pass through until reset().
class Event {
 public:
  explicit Event(Simulation& sim) : sim_(&sim) {}

  bool is_set() const { return set_; }

  void set() {
    if (set_) return;
    set_ = true;
    for (auto h : waiters_) sim_->schedule_at(sim_->now(), h);
    waiters_.clear();
  }

  void reset() { set_ = false; }

  auto wait() {
    struct Awaiter {
      Event* event;
      bool await_ready() const noexcept { return event->set_; }
      void await_suspend(std::coroutine_handle<> h) {
        event->waiters_.push_back(h);
      }
      void await_resume() const noexcept {}
    };
    return Awaiter{this};
  }

 private:
  Simulation* sim_;
  bool set_ = false;
  std::vector<std::coroutine_handle<>> waiters_;
};

// FIFO mutex. Models exclusive critical sections in virtual time (e.g. the
// serialization a single-writer store imposes).
class SimMutex {
 public:
  explicit SimMutex(Simulation& sim) : sim_(&sim) {}

  bool locked() const { return locked_; }

  auto lock() {
    struct Awaiter {
      SimMutex* m;
      bool await_ready() const noexcept {
        if (!m->locked_) {
          m->locked_ = true;
          return true;
        }
        return false;
      }
      void await_suspend(std::coroutine_handle<> h) {
        m->waiters_.push_back(h);
      }
      void await_resume() const noexcept {}
    };
    return Awaiter{this};
  }

  void unlock() {
    assert(locked_);
    if (waiters_.empty()) {
      locked_ = false;
      return;
    }
    // Hand the lock to the next waiter; it stays logically locked.
    auto h = waiters_.front();
    waiters_.pop_front();
    sim_->schedule_at(sim_->now(), h);
  }

 private:
  Simulation* sim_;
  bool locked_ = false;
  std::deque<std::coroutine_handle<>> waiters_;
};

// Counting semaphore; models bounded resources (IOPS tokens, connection
// slots).
class SimSemaphore {
 public:
  SimSemaphore(Simulation& sim, int64_t initial) : sim_(&sim), count_(initial) {
    assert(initial >= 0);
  }

  int64_t available() const { return count_; }

  auto acquire() {
    struct Awaiter {
      SimSemaphore* s;
      bool await_ready() const noexcept {
        if (s->count_ > 0) {
          s->count_--;
          return true;
        }
        return false;
      }
      void await_suspend(std::coroutine_handle<> h) {
        s->waiters_.push_back(h);
      }
      void await_resume() const noexcept {}
    };
    return Awaiter{this};
  }

  void release(int64_t n = 1) {
    assert(n >= 0);
    while (n > 0 && !waiters_.empty()) {
      auto h = waiters_.front();
      waiters_.pop_front();
      sim_->schedule_at(sim_->now(), h);
      n--;
    }
    count_ += n;
  }

 private:
  Simulation* sim_;
  int64_t count_;
  std::deque<std::coroutine_handle<>> waiters_;
};

// Unbounded MPSC/MPMC channel. Used for the `queue` response (asynchronous
// update propagation) and actor mailboxes. recv() returns nullopt once the
// channel is closed and drained.
template <typename T>
class Channel {
 public:
  explicit Channel(Simulation& sim) : sim_(&sim) {}

  void send(T item) {
    assert(!closed_ && "send on closed channel");
    items_.push_back(std::move(item));
    wake_one();
  }

  void close() {
    closed_ = true;
    // Wake everyone; drained receivers observe nullopt.
    while (!waiters_.empty()) {
      auto h = waiters_.front();
      waiters_.pop_front();
      sim_->schedule_at(sim_->now(), h);
    }
  }

  bool closed() const { return closed_; }
  size_t size() const { return items_.size(); }
  bool empty() const { return items_.empty(); }

  auto recv() {
    struct Awaiter {
      Channel* ch;
      bool await_ready() const noexcept {
        return !ch->items_.empty() || ch->closed_;
      }
      void await_suspend(std::coroutine_handle<> h) {
        ch->waiters_.push_back(h);
      }
      std::optional<T> await_resume() {
        if (ch->items_.empty()) return std::nullopt;  // closed & drained
        T item = std::move(ch->items_.front());
        ch->items_.pop_front();
        return item;
      }
    };
    return Awaiter{this};
  }

  // Non-blocking receive.
  std::optional<T> try_recv() {
    if (items_.empty()) return std::nullopt;
    T item = std::move(items_.front());
    items_.pop_front();
    return item;
  }

 private:
  void wake_one() {
    if (waiters_.empty()) return;
    auto h = waiters_.front();
    waiters_.pop_front();
    sim_->schedule_at(sim_->now(), h);
  }

  Simulation* sim_;
  bool closed_ = false;
  std::deque<T> items_;
  std::deque<std::coroutine_handle<>> waiters_;
};

// One-shot future/promise pair, the RPC completion mechanism. Multiple
// awaiters are allowed; the value is copied out to each.
template <typename T>
class Future;

template <typename T>
struct FutureState {
  explicit FutureState(Simulation& sim) : sim(&sim) {}
  Simulation* sim;
  std::optional<T> value;
  std::vector<std::coroutine_handle<>> waiters;
};

template <typename T>
class Promise {
 public:
  explicit Promise(Simulation& sim)
      : state_(std::make_shared<FutureState<T>>(sim)) {}

  Future<T> future() const;

  void set_value(T value) {
    assert(!state_->value.has_value() && "promise fulfilled twice");
    state_->value.emplace(std::move(value));
    for (auto h : state_->waiters) {
      state_->sim->schedule_at(state_->sim->now(), h);
    }
    state_->waiters.clear();
  }

  bool fulfilled() const { return state_->value.has_value(); }

 private:
  std::shared_ptr<FutureState<T>> state_;
};

template <typename T>
class Future {
 public:
  explicit Future(std::shared_ptr<FutureState<T>> state)
      : state_(std::move(state)) {}

  bool ready() const { return state_->value.has_value(); }

  auto operator co_await() const {
    struct Awaiter {
      std::shared_ptr<FutureState<T>> state;
      bool await_ready() const noexcept { return state->value.has_value(); }
      void await_suspend(std::coroutine_handle<> h) {
        state->waiters.push_back(h);
      }
      T await_resume() {
        assert(state->value.has_value());
        return *state->value;  // copy: future may have several awaiters
      }
    };
    return Awaiter{state_};
  }

 private:
  std::shared_ptr<FutureState<T>> state_;
};

template <typename T>
Future<T> Promise<T>::future() const {
  return Future<T>(state_);
}

namespace detail {

template <typename T>
struct WhenAllState {
  explicit WhenAllState(Simulation& sim, size_t n)
      : remaining(n), done(sim) {
    results.resize(n);
  }
  std::vector<std::optional<T>> results;
  size_t remaining;
  Event done;
};

template <typename T>
Task<void> when_all_runner(std::shared_ptr<WhenAllState<T>> state, size_t i,
                           Task<T> task) {
  state->results[i] = co_await std::move(task);
  if (--state->remaining == 0) state->done.set();
}

}  // namespace detail

// Run all tasks concurrently (in virtual time) and collect their results in
// input order. This is the fan-out primitive used for synchronous update
// broadcast in the MultiPrimaries / PrimaryBackup protocols.
template <typename T>
Task<std::vector<T>> when_all(Simulation& sim, std::vector<Task<T>> tasks) {
  auto state =
      std::make_shared<detail::WhenAllState<T>>(sim, tasks.size());
  for (size_t i = 0; i < tasks.size(); ++i) {
    sim.spawn(detail::when_all_runner<T>(state, i, std::move(tasks[i])));
  }
  if (!state->results.empty()) {
    co_await state->done.wait();
  }
  std::vector<T> out;
  out.reserve(state->results.size());
  for (auto& r : state->results) out.push_back(std::move(*r));
  co_return out;
}

namespace detail {

struct WhenAllVoidState {
  explicit WhenAllVoidState(Simulation& sim, size_t n)
      : remaining(n), done(sim) {}
  size_t remaining;
  Event done;
};

inline Task<void> when_all_void_runner(
    std::shared_ptr<WhenAllVoidState> state, Task<void> task) {
  co_await std::move(task);
  if (--state->remaining == 0) state->done.set();
}

}  // namespace detail

// Void overload: join a batch of side-effect tasks.
inline Task<void> when_all(Simulation& sim, std::vector<Task<void>> tasks) {
  auto state =
      std::make_shared<detail::WhenAllVoidState>(sim, tasks.size());
  const bool empty = tasks.empty();
  for (auto& task : tasks) {
    sim.spawn(detail::when_all_void_runner(state, std::move(task)));
  }
  if (!empty) {
    co_await state->done.wait();
  }
}

}  // namespace wiera::sim
