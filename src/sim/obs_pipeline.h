// Sim-time driver of the obs metrics pipeline (docs/METRICS_PIPELINE.md).
//
// The obs layer owns the pure machinery — Sampler ring buffers and AlertRules
// burn-rate evaluation — but cannot touch the simulation (sim links against
// obs, not the other way around). This driver closes the loop: arm() spawns a
// coroutine that scrapes the sim's Registry into the Sampler on a fixed
// virtual-time interval and evaluates the alert rules after every scrape.
//
// Default-off contract: an ObsPipeline that is never armed spawns no task and
// schedules nothing, so default runs keep byte-identical determinism trace
// hashes. An armed pipeline adds timer events to the schedule (its hash
// legitimately differs from an unarmed run's) but is itself fully
// deterministic per seed, and scraping never feeds back into cluster
// behavior — it only reads the registry.
#pragma once

#include <cstdint>
#include <memory>

#include "obs/alerts.h"
#include "obs/sampler.h"
#include "sim/simulation.h"
#include "sim/slo.h"
#include "sim/task.h"

namespace wiera::sim {

class ObsPipeline {
 public:
  struct Config {
    // Virtual-time scrape interval.
    Duration interval = msec(10);
    // Stop scraping at this virtual time; the driver task exits. Keep this
    // at or before the run horizon so a run-to-quiescence is not extended.
    TimePoint until = TimePoint::origin() + sec(40);
    // Ring capacity per series.
    size_t keep = 512;
  };

  explicit ObsPipeline(Simulation& sim) : sim_(&sim) {}

  // Register a burn-rate rule (before or after arm()).
  void add_rule(obs::AlertRule rule) { alerts_.add(std::move(rule)); }

  // Spawn the scrape task. Call at most once.
  void arm(Config config);
  bool armed() const { return sampler_ != nullptr; }

  // nullptr until armed.
  const obs::Sampler* sampler() const { return sampler_.get(); }
  obs::AlertRules& alerts() { return alerts_; }
  const obs::AlertRules& alerts() const { return alerts_; }

  // Replay every alert firing into the oracle so its contract can check
  // "detection preceded violation".
  void feed(SloOracle& oracle) const;

 private:
  Task<void> drive(Config config);

  Simulation* sim_;
  std::unique_ptr<obs::Sampler> sampler_;
  obs::AlertRules alerts_;
};

}  // namespace wiera::sim
