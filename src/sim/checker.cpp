#include "sim/checker.h"

#include <algorithm>
#include <cstdio>
#include <cstdlib>

#include "common/logging.h"

namespace wiera::sim {

const char* wait_kind_name(WaitKind kind) {
  switch (kind) {
    case WaitKind::kNone: return "none";
    case WaitKind::kEvent: return "Event";
    case WaitKind::kMutex: return "SimMutex";
    case WaitKind::kSemaphore: return "SimSemaphore";
    case WaitKind::kChannel: return "Channel";
    case WaitKind::kFuture: return "Future";
    case WaitKind::kAdmission: return "Admission";
  }
  return "?";
}

const char* diagnostic_kind_name(SimDiagnostic::Kind kind) {
  switch (kind) {
    case SimDiagnostic::Kind::kDeadlock: return "deadlock";
    case SimDiagnostic::Kind::kDoubleUnlock: return "double-unlock";
    case SimDiagnostic::Kind::kSendAfterClose: return "send-after-close";
    case SimDiagnostic::Kind::kPromiseDoubleSet: return "promise-double-set";
    case SimDiagnostic::Kind::kPromiseBroken: return "promise-broken";
    case SimDiagnostic::Kind::kNegativeRelease: return "negative-release";
    case SimDiagnostic::Kind::kDroppedTask: return "dropped-task";
    case SimDiagnostic::Kind::kDuplicateEndpoint: return "duplicate-endpoint";
    case SimDiagnostic::Kind::kStuckTask: return "stuck-task";
    case SimDiagnostic::Kind::kLostWakeup: return "lost-wakeup";
    case SimDiagnostic::Kind::kDestroyedWithWaiters:
      return "destroyed-with-waiters";
    case SimDiagnostic::Kind::kLeakedSpan: return "leaked-span";
  }
  return "?";
}

#if WIERA_SIM_CHECKER_ENABLED

namespace {

// Innermost live Simulation's checker on this thread. The simulation is
// single-threaded; a stack (via prev_current_) supports tests that nest
// Simulation lifetimes in one scope.
thread_local SimChecker* g_current = nullptr;
thread_local int g_teardown = 0;

uint64_t fnv1a(uint64_t hash, uint64_t v) {
  for (int i = 0; i < 8; ++i) {
    hash ^= (v >> (i * 8)) & 0xff;
    hash *= 1099511628211ull;
  }
  return hash;
}

}  // namespace

SimChecker::SimChecker() = default;
SimChecker::~SimChecker() = default;

SimChecker* SimChecker::current() { return g_current; }

bool SimChecker::in_teardown() { return g_teardown > 0; }

void SimChecker::on_simulation_created() {
  prev_current_ = g_current;
  g_current = this;
}

void SimChecker::begin_teardown() { g_teardown++; }

void SimChecker::end_teardown() {
  g_teardown--;
  if (g_current == this) g_current = prev_current_;
}

bool SimChecker::has(SimDiagnostic::Kind kind) const {
  return find(kind) != nullptr;
}

const SimDiagnostic* SimChecker::find(SimDiagnostic::Kind kind) const {
  for (const auto& d : diagnostics_) {
    if (d.kind == kind) return &d;
  }
  return nullptr;
}

void SimChecker::clear_diagnostics() {
  diagnostics_.clear();
  error_count_ = 0;
}

std::vector<std::string> SimChecker::live_task_names() const {
  std::vector<std::string> names;
  names.reserve(tasks_.size());
  // wiera-lint: allow(unordered-iteration) names are sorted before returning
  for (const auto& [id, info] : tasks_) names.push_back(info.name);
  std::sort(names.begin(), names.end());
  return names;
}

std::string SimChecker::task_name(uint64_t id) const {
  auto it = tasks_.find(id);
  return it == tasks_.end() ? std::string("<unknown>") : it->second.name;
}

SimChecker::TaskInfo* SimChecker::current_info() {
  if (current_ == kNoTask) return nullptr;
  auto it = tasks_.find(current_);
  return it == tasks_.end() ? nullptr : &it->second;
}

void SimChecker::add(SimDiagnostic diag) {
  if (diag.is_error) {
    error_count_++;
    std::fprintf(stderr, "wiera-sim-checker: ERROR [%s] %s\n",
                 diagnostic_kind_name(diag.kind), diag.message.c_str());
  } else {
    WLOG_WARN("sim.checker")
        << "[" << diagnostic_kind_name(diag.kind) << "] " << diag.message;
  }
  const bool fatal = diag.is_error && fail_fast_;
  diagnostics_.push_back(std::move(diag));
  if (fatal) {
    std::fprintf(stderr,
                 "wiera-sim-checker: fail-fast enabled, aborting on first "
                 "error\n");
    std::abort();
  }
}

uint64_t SimChecker::on_task_spawn(const void* root_handle, std::string name) {
  if (!enabled_) return kNoTask;
  const uint64_t id = next_task_id_++;
  if (name.empty()) name = "task#" + std::to_string(id);
  tasks_.emplace(id, TaskInfo{std::move(name), WaitKind::kNone, nullptr, {}});
  handle_task_[root_handle] = id;
  tasks_spawned_++;
  return id;
}

void SimChecker::on_task_complete(const void* root_handle) {
  if (!enabled_) return;
  // Completion happens inside the event chain that resumed the task, so
  // current_ names it; the handle lookup covers a root that never ran.
  uint64_t id = current_;
  if (auto it = handle_task_.find(root_handle); it != handle_task_.end()) {
    id = it->second;
    handle_task_.erase(it);
  }
  if (id == kNoTask) return;
  tasks_.erase(id);
  mutex_owner_erase_owned(id);
  tasks_completed_++;
  if (id == current_) current_ = kNoTask;
}

void SimChecker::fold_trace(uint64_t value) {
  if (!enabled_) return;
  trace_hash_ = fnv1a(trace_hash_, value);
}

void SimChecker::begin_event(const void* handle, int64_t time_us,
                             uint64_t seq) {
  if (!enabled_) return;
  trace_hash_ = fnv1a(fnv1a(trace_hash_, static_cast<uint64_t>(time_us)), seq);
  auto it = handle_task_.find(handle);
  if (it == handle_task_.end()) {
    current_ = kNoTask;
    return;
  }
  current_ = it->second;
  handle_task_.erase(it);
  if (TaskInfo* info = current_info()) {
    info->wait_kind = WaitKind::kNone;
    info->wait_prim = nullptr;
    info->wait_prim_name.clear();
  }
}

void SimChecker::end_event() { current_ = kNoTask; }

void SimChecker::on_scheduled(const void* handle) {
  if (!enabled_) return;
  // Bind unknown handles (timer wakeups and other raw schedule_at uses) to
  // the task that is suspending right now, so identity flows through every
  // suspension point. Handles already bound (roots, primitive waiters) keep
  // their task.
  if (current_ == kNoTask) return;
  handle_task_.emplace(handle, current_);
}

void SimChecker::on_block(const void* handle, WaitKind kind, const void* prim,
                          const char* prim_name) {
  if (!enabled_) return;
  uint64_t id = current_;
  if (id == kNoTask) {
    // Suspension outside any tracked event (shouldn't happen in practice);
    // synthesize a task so the report still names something.
    id = on_task_spawn(handle, {});
  }
  handle_task_[handle] = id;
  auto it = tasks_.find(id);
  if (it == tasks_.end()) return;
  it->second.wait_kind = kind;
  it->second.wait_prim = prim;
  it->second.wait_prim_name = prim_name == nullptr ? "" : prim_name;
}

void SimChecker::on_mutex_acquired(const void* mutex, const char* /*name*/) {
  if (!enabled_) return;
  mutex_owner_[mutex] = current_;
}

void SimChecker::on_mutex_handoff(const void* mutex,
                                  const void* next_handle) {
  if (!enabled_) return;
  auto it = handle_task_.find(next_handle);
  mutex_owner_[mutex] = it == handle_task_.end() ? kNoTask : it->second;
}

void SimChecker::on_mutex_released(const void* mutex) {
  if (!enabled_) return;
  mutex_owner_.erase(mutex);
}

void SimChecker::mutex_owner_erase_owned(uint64_t id) {
  for (auto it = mutex_owner_.begin(); it != mutex_owner_.end();) {
    if (it->second == id) {
      it = mutex_owner_.erase(it);
    } else {
      ++it;
    }
  }
}

void SimChecker::on_primitive_destroyed(WaitKind kind, const void* prim,
                                        const char* prim_name,
                                        size_t waiters) {
  if (!enabled_ || g_teardown > 0) return;
  // Collect-and-sort: the waiter list renders into the diagnostic text, so
  // hash order would leak into user-visible (and test-asserted) output.
  std::vector<std::string> waiter_names;
  // wiera-lint: allow(unordered-iteration) names are sorted before rendering
  for (const auto& [id, info] : tasks_) {
    if (info.wait_prim == prim) waiter_names.push_back(info.name);
  }
  std::sort(waiter_names.begin(), waiter_names.end());
  std::string who;
  for (const std::string& n : waiter_names) {
    if (!who.empty()) who += ", ";
    who += "'" + n + "'";
  }
  std::string name = prim_name == nullptr || prim_name[0] == '\0'
                         ? "<unnamed>"
                         : prim_name;
  add(SimDiagnostic{
      SimDiagnostic::Kind::kDestroyedWithWaiters, /*is_error=*/false,
      std::string(wait_kind_name(kind)) + " '" + name + "' destroyed with " +
          std::to_string(waiters) + " waiter(s) still blocked" +
          (who.empty() ? "" : " (" + who + ")") +
          "; they can never be woken",
      who, name});
}

void SimChecker::report_error(SimDiagnostic::Kind kind, const char* prim_name,
                              std::string message) {
  if (!enabled_) return;
  std::string task = current_ == kNoTask ? "" : task_name(current_);
  if (!task.empty()) message += " (in task '" + task + "')";
  add(SimDiagnostic{kind, /*is_error=*/true, std::move(message), task,
                    prim_name == nullptr ? "" : prim_name});
}

void SimChecker::report_warning(SimDiagnostic::Kind kind,
                                const char* prim_name, std::string message) {
  if (!enabled_) return;
  add(SimDiagnostic{kind, /*is_error=*/false, std::move(message), "",
                    prim_name == nullptr ? "" : prim_name});
}

void SimChecker::report_dropped_task() {
  SimChecker* c = g_current;
  if (c == nullptr || !c->enabled_ || g_teardown > 0) return;
  std::string task = c->current_ == kNoTask ? "" : c->task_name(c->current_);
  c->add(SimDiagnostic{
      SimDiagnostic::Kind::kDroppedTask, /*is_error=*/true,
      "Task destroyed without ever starting (created but never co_awaited "
      "or spawned)" +
          (task.empty() ? std::string()
                        : " while task '" + task + "' was running"),
      task, ""});
}

void SimChecker::on_quiescent() {
  if (!enabled_) return;
  // The event queue drained without stop(): every live task is either
  // blocked on a primitive (stuck; possibly a deadlock cycle) or has no
  // pending wakeup at all (lost wakeup / leak).
  std::vector<uint64_t> ids;
  ids.reserve(tasks_.size());
  // wiera-lint: allow(unordered-iteration) ids are sorted before reporting
  for (const auto& [id, info] : tasks_) ids.push_back(id);
  std::sort(ids.begin(), ids.end());  // deterministic report order

  for (uint64_t id : ids) {
    const TaskInfo& info = tasks_.at(id);
    if (info.wait_kind == WaitKind::kNone) {
      add(SimDiagnostic{
          SimDiagnostic::Kind::kLostWakeup, /*is_error=*/false,
          "task '" + info.name +
              "' is alive at quiescence with no pending wakeup (lost "
              "wakeup or leaked coroutine)",
          info.name, ""});
      continue;
    }
    std::string prim = info.wait_prim_name.empty() ? "<unnamed>"
                                                   : info.wait_prim_name;
    std::string msg = "task '" + info.name + "' still blocked on " +
                      wait_kind_name(info.wait_kind) + " '" + prim +
                      "' when the event queue drained";
    if (info.wait_kind == WaitKind::kMutex) {
      auto owner = mutex_owner_.find(info.wait_prim);
      if (owner != mutex_owner_.end() && owner->second != kNoTask) {
        msg += " (held by '" + task_name(owner->second) + "')";
      }
    } else if (info.wait_kind == WaitKind::kEvent ||
               info.wait_kind == WaitKind::kChannel ||
               info.wait_kind == WaitKind::kFuture) {
      msg += " (never signalled: lost wakeup?)";
    }
    add(SimDiagnostic{SimDiagnostic::Kind::kStuckTask, /*is_error=*/false,
                      std::move(msg), info.name, prim});
  }

  // Deadlock cycles: follow task --waits-on--> mutex --held-by--> task.
  std::vector<uint64_t> seen;  // tasks already reported in a cycle
  for (uint64_t start : ids) {
    if (std::find(seen.begin(), seen.end(), start) != seen.end()) continue;
    std::vector<uint64_t> path;
    uint64_t t = start;
    while (true) {
      auto it = tasks_.find(t);
      if (it == tasks_.end() || it->second.wait_kind != WaitKind::kMutex) {
        break;
      }
      auto owner = mutex_owner_.find(it->second.wait_prim);
      if (owner == mutex_owner_.end() || owner->second == kNoTask) break;
      path.push_back(t);
      t = owner->second;
      auto cyc = std::find(path.begin(), path.end(), t);
      if (cyc != path.end()) {
        std::string msg = "deadlock cycle: ";
        for (auto p = cyc; p != path.end(); ++p) {
          const TaskInfo& info = tasks_.at(*p);
          std::string prim = info.wait_prim_name.empty()
                                 ? "<unnamed>"
                                 : info.wait_prim_name;
          msg += "task '" + info.name + "' waits on SimMutex '" + prim +
                 "' -> ";
          seen.push_back(*p);
        }
        msg += "task '" + tasks_.at(*cyc).name + "'";
        add(SimDiagnostic{SimDiagnostic::Kind::kDeadlock, /*is_error=*/true,
                          std::move(msg), tasks_.at(*cyc).name, ""});
        break;
      }
      if (path.size() > tasks_.size()) break;  // safety bound
    }
  }
}

#endif  // WIERA_SIM_CHECKER_ENABLED

}  // namespace wiera::sim
