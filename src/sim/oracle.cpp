#include "sim/oracle.h"

#include <algorithm>
#include <cstdio>
#include <set>
#include <utility>

namespace wiera::sim {

std::string_view check_mode_name(CheckMode mode) {
  switch (mode) {
    case CheckMode::kLinearizable: return "linearizable";
    case CheckMode::kPrimaryOrder: return "primary-order";
    case CheckMode::kEventual: return "eventual";
  }
  return "?";
}

int64_t ConsistencyOracle::begin_put(const std::string& client,
                                     const std::string& key,
                                     const std::string& value,
                                     TimePoint invoked, uint64_t trace_id) {
  Op op;
  op.type = Op::Type::kPut;
  op.client = client;
  op.key = key;
  op.value = value;
  op.invoked = invoked;
  op.trace_id = trace_id;
  ops_.push_back(std::move(op));
  return static_cast<int64_t>(ops_.size()) - 1;
}

void ConsistencyOracle::end_put(int64_t op_id, TimePoint completed, bool ok,
                                int64_t version) {
  Op& op = ops_.at(static_cast<size_t>(op_id));
  op.completed = completed;
  op.done = true;
  op.ok = ok;
  op.version = version;
}

int64_t ConsistencyOracle::begin_get(const std::string& client,
                                     const std::string& key,
                                     TimePoint invoked, uint64_t trace_id) {
  Op op;
  op.type = Op::Type::kGet;
  op.client = client;
  op.key = key;
  op.invoked = invoked;
  op.trace_id = trace_id;
  ops_.push_back(std::move(op));
  return static_cast<int64_t>(ops_.size()) - 1;
}

void ConsistencyOracle::end_get(int64_t op_id, TimePoint completed, bool ok,
                                const std::string& value, int64_t version,
                                const std::string& served_by) {
  Op& op = ops_.at(static_cast<size_t>(op_id));
  op.completed = completed;
  op.done = true;
  op.ok = ok;
  op.value = value;
  op.version = version;
  op.served_by = served_by;
}

void ConsistencyOracle::record_replica_value(const std::string& replica,
                                             const std::string& key,
                                             int64_t version,
                                             TimePoint last_modified,
                                             const std::string& origin,
                                             const std::string& value) {
  finals_[key][replica] = ReplicaFinal{version, last_modified, origin, value};
}

int64_t ConsistencyOracle::completed_ok_count() const {
  int64_t n = 0;
  for (const auto& op : ops_) {
    if (op.done && op.ok) n++;
  }
  return n;
}

std::map<std::string, std::vector<const ConsistencyOracle::Op*>>
ConsistencyOracle::ops_by_key() const {
  std::map<std::string, std::vector<const Op*>> by_key;
  for (const auto& op : ops_) by_key[op.key].push_back(&op);
  return by_key;
}

std::vector<OracleViolation> ConsistencyOracle::check(CheckMode mode) const {
  std::vector<OracleViolation> out;
  const auto by_key = ops_by_key();
  std::set<std::string> keys;
  for (const auto& [key, _] : by_key) keys.insert(key);
  for (const auto& [key, _] : finals_) keys.insert(key);

  static const std::vector<const Op*> kNoOps;
  for (const auto& key : keys) {
    auto it = by_key.find(key);
    const auto& key_ops = it == by_key.end() ? kNoOps : it->second;
    switch (mode) {
      case CheckMode::kLinearizable:
        check_key_linearizable(key, key_ops, out);
        break;
      case CheckMode::kPrimaryOrder:
        check_key_primary_order(key, key_ops, out);
        break;
      case CheckMode::kEventual:
        check_key_eventual(key, key_ops, out);
        break;
    }
  }
  return out;
}

std::vector<OracleViolation> ConsistencyOracle::check_convergence() const {
  std::vector<OracleViolation> out;
  std::set<std::string> written;
  for (const auto& op : ops_) {
    if (op.type == Op::Type::kPut) written.insert(op.value);
  }
  for (const auto& [key, replicas] : finals_) {
    if (replicas.empty()) continue;
    const ReplicaFinal& first = replicas.begin()->second;
    for (const auto& [replica, state] : replicas) {
      if (state.version != first.version || state.origin != first.origin ||
          state.value != first.value) {
        out.push_back(
            {key, "replicas diverged after scrub: " +
                      replicas.begin()->first + " has v" +
                      std::to_string(first.version) + " from " + first.origin +
                      " ('" + first.value + "') but " + replica + " has v" +
                      std::to_string(state.version) + " from " + state.origin +
                      " ('" + state.value + "')"});
      }
    }
    if (!first.value.empty() && written.count(first.value) == 0) {
      out.push_back({key, "replicas converged on a value nobody wrote: '" +
                              first.value + "'"});
    }
  }
  return out;
}

std::string ConsistencyOracle::describe(
    const std::vector<OracleViolation>& violations) {
  std::string out;
  char trace_buf[32];
  for (const auto& v : violations) {
    if (!out.empty()) out += "\n";
    out += "[" + v.key + "] " + v.message;
    if (v.trace_id != 0) {
      std::snprintf(trace_buf, sizeof(trace_buf), " (trace %016llx)",
                    static_cast<unsigned long long>(v.trace_id));
      out += trace_buf;
    }
  }
  return out;
}

namespace {

// One entry in the per-key linearizability search. A failed or unresolved
// write is a "maybe" op: it may take effect at any point after invocation
// (complete = infinity) or never (it can stay unchosen).
struct LinEntry {
  bool is_put = false;
  bool maybe = false;
  std::string value;
  TimePoint invoked;
  TimePoint complete = TimePoint::max();
  uint64_t trace_id = 0;
};

struct LinSearch {
  std::vector<LinEntry> entries;
  uint64_t definite_mask = 0;
  std::set<std::pair<uint64_t, int>> visited;

  bool dfs(uint64_t chosen, int last_write) {
    if ((chosen & definite_mask) == definite_mask) return true;
    if (!visited.insert({chosen, last_write}).second) return false;

    TimePoint min_complete = TimePoint::max();
    for (size_t i = 0; i < entries.size(); ++i) {
      if (chosen & (1ull << i)) continue;
      min_complete = std::min(min_complete, entries[i].complete);
    }
    for (size_t i = 0; i < entries.size(); ++i) {
      if (chosen & (1ull << i)) continue;
      const LinEntry& e = entries[i];
      // e may linearize next only if no other pending op already completed
      // before e was even invoked (real-time order must be respected).
      if (e.invoked > min_complete) continue;
      if (e.is_put) {
        if (dfs(chosen | (1ull << i), static_cast<int>(i))) return true;
      } else {
        const std::string& current =
            last_write < 0 ? std::string() : entries[static_cast<size_t>(last_write)].value;
        if (e.value == current &&
            dfs(chosen | (1ull << i), last_write)) {
          return true;
        }
      }
    }
    return false;
  }
};

}  // namespace

void ConsistencyOracle::check_key_linearizable(
    const std::string& key, const std::vector<const Op*>& ops,
    std::vector<OracleViolation>& out) const {
  LinSearch search;
  std::set<std::string> written;
  for (const Op* op : ops) {
    if (op->type == Op::Type::kPut) {
      written.insert(op->value);
      LinEntry e;
      e.is_put = true;
      e.value = op->value;
      e.invoked = op->invoked;
      e.trace_id = op->trace_id;
      if (op->done && op->ok) {
        e.complete = op->completed;
      } else {
        e.maybe = true;  // complete stays at infinity
      }
      search.entries.push_back(std::move(e));
    } else {
      if (!op->done || !op->ok) continue;  // failed reads observe nothing
      LinEntry e;
      e.value = op->value;
      e.invoked = op->invoked;
      e.complete = op->completed;
      e.trace_id = op->trace_id;
      search.entries.push_back(std::move(e));
    }
  }

  if (search.entries.size() > kMaxOpsPerKey) {
    out.push_back({key, "history too large for linearizability check (" +
                            std::to_string(search.entries.size()) + " ops)"});
    return;
  }

  // Fast sanity check with a readable message before the full search.
  for (const LinEntry& e : search.entries) {
    if (!e.is_put && !e.value.empty() && written.count(e.value) == 0) {
      out.push_back({key,
                     "read returned a value nobody wrote: '" + e.value + "'",
                     e.trace_id});
      return;
    }
  }

  for (size_t i = 0; i < search.entries.size(); ++i) {
    if (!search.entries[i].maybe) search.definite_mask |= 1ull << i;
  }
  if (!search.dfs(0, -1)) {
    out.push_back({key,
                   "no valid linearization of " +
                       std::to_string(search.entries.size()) + " ops"});
  }
}

void ConsistencyOracle::check_key_primary_order(
    const std::string& key, const std::vector<const Op*>& ops,
    std::vector<OracleViolation>& out) const {
  std::vector<const Op*> committed_puts;
  std::set<std::string> written;  // all put values, incl. failed (maybe) ones
  std::map<std::string, TimePoint> value_invoked;
  for (const Op* op : ops) {
    if (op->type != Op::Type::kPut) continue;
    written.insert(op->value);
    auto [it, fresh] = value_invoked.try_emplace(op->value, op->invoked);
    if (!fresh) it->second = std::min(it->second, op->invoked);
    if (op->done && op->ok) committed_puts.push_back(op);
  }
  std::sort(committed_puts.begin(), committed_puts.end(),
            [](const Op* a, const Op* b) { return a->completed < b->completed; });

  // Committed versions must be distinct and respect real-time order: the
  // primary serializes writes, so a put that finished before another began
  // must carry the smaller version.
  for (size_t i = 0; i < committed_puts.size(); ++i) {
    for (size_t j = i + 1; j < committed_puts.size(); ++j) {
      const Op* a = committed_puts[i];
      const Op* b = committed_puts[j];
      if (a->version == b->version) {
        out.push_back({key, "two committed puts share version " +
                                std::to_string(a->version)});
      }
      if (a->completed < b->invoked && a->version >= b->version) {
        out.push_back({key,
                       "primary order violated: put v" +
                           std::to_string(a->version) +
                           " finished before put v" +
                           std::to_string(b->version) + " began",
                       b->trace_id});
      }
    }
  }

  // Reads: no phantom values, no values from the future, and per-server
  // version monotonicity (a backup never rolls back what it served).
  std::map<std::string, std::vector<const Op*>> by_server;
  for (const Op* op : ops) {
    if (op->type != Op::Type::kGet || !op->done || !op->ok) continue;
    if (!op->value.empty()) {
      if (written.count(op->value) == 0) {
        out.push_back({key,
                       "read returned a value nobody wrote: '" + op->value +
                           "'",
                       op->trace_id});
        continue;
      }
      if (value_invoked.at(op->value) > op->completed) {
        out.push_back({key,
                       "read from the future: value '" + op->value +
                           "' observed before its put was invoked",
                       op->trace_id});
      }
    }
    by_server[op->served_by].push_back(op);
  }
  for (auto& [server, reads] : by_server) {
    std::sort(reads.begin(), reads.end(),
              [](const Op* a, const Op* b) { return a->completed < b->completed; });
    for (size_t i = 0; i + 1 < reads.size(); ++i) {
      const Op* a = reads[i];
      const Op* b = reads[i + 1];
      if (a->completed < b->invoked && b->version < a->version) {
        out.push_back({key,
                       "monotonic reads violated at " + server + ": served v" +
                           std::to_string(a->version) + " then v" +
                           std::to_string(b->version),
                       b->trace_id});
      }
    }
  }
}

void ConsistencyOracle::check_key_eventual(
    const std::string& key, const std::vector<const Op*>& ops,
    std::vector<OracleViolation>& out) const {
  std::set<std::string> written;
  for (const Op* op : ops) {
    if (op->type == Op::Type::kPut) written.insert(op->value);
  }

  // Reads may be stale but never corrupt.
  for (const Op* op : ops) {
    if (op->type != Op::Type::kGet || !op->done || !op->ok) continue;
    if (!op->value.empty() && written.count(op->value) == 0) {
      out.push_back({key,
                     "read returned a value nobody wrote: '" + op->value + "'",
                     op->trace_id});
    }
  }

  // After quiescence every replica must agree (convergence) and the agreed
  // winner must be something a client actually wrote (LWW agreement).
  auto it = finals_.find(key);
  if (it == finals_.end()) return;
  const auto& replicas = it->second;
  if (replicas.empty()) return;
  const ReplicaFinal& first = replicas.begin()->second;
  for (const auto& [replica, state] : replicas) {
    if (state.version != first.version || state.origin != first.origin ||
        state.value != first.value) {
      out.push_back(
          {key, "divergence after quiescence: " + replicas.begin()->first +
                    " has v" + std::to_string(first.version) + " from " +
                    first.origin + " ('" + first.value + "') but " + replica +
                    " has v" + std::to_string(state.version) + " from " +
                    state.origin + " ('" + state.value + "')"});
    }
  }
  if (!first.value.empty() && written.count(first.value) == 0) {
    out.push_back({key, "converged winner was never written: '" +
                            first.value + "'"});
  }
}

}  // namespace wiera::sim
