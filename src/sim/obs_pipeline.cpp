#include "sim/obs_pipeline.h"

namespace wiera::sim {

void ObsPipeline::arm(Config config) {
  sampler_ = std::make_unique<obs::Sampler>(
      obs::Sampler::Config{config.keep});
  sim_->spawn(drive(config), "obs.pipeline");
}

Task<void> ObsPipeline::drive(Config config) {
  while (sim_->now() + config.interval <= config.until) {
    co_await sim_->delay(config.interval);
    sampler_->scrape(sim_->telemetry().registry(), sim_->now());
    alerts_.evaluate(*sampler_, sim_->now());
  }
}

void ObsPipeline::feed(SloOracle& oracle) const {
  for (const obs::AlertFiring& f : alerts_.firings()) {
    oracle.record_alert(f.clause, f.at);
  }
}

}  // namespace wiera::sim
