// Deterministic discrete-event simulation kernel.
//
// A Simulation owns a virtual clock and a priority queue of scheduled
// coroutine resumptions. Everything in the Wiera reproduction — WAN message
// delivery, storage-tier service times, timers, monitor threads — is a
// coroutine suspended on this queue. Single-threaded by design: given the
// same seed, every run is bit-identical, which makes the paper's timeline
// experiments (Fig. 7) and all tests reproducible.
//
// Tie-breaking: events at the same virtual time run in schedule order
// (monotonic sequence number), so the interleaving is fully specified.
#pragma once

#include <coroutine>
#include <cstdint>
#include <functional>
#include <list>
#include <queue>
#include <string>
#include <vector>

#include "common/rng.h"
#include "common/time.h"
#include "obs/telemetry.h"
#include "sim/checker.h"
#include "sim/task.h"

namespace wiera::sim {

class Simulation {
 public:
  explicit Simulation(uint64_t seed = 1);
  ~Simulation();

  Simulation(const Simulation&) = delete;
  Simulation& operator=(const Simulation&) = delete;

  TimePoint now() const { return now_; }
  Rng& rng() { return rng_; }
  uint64_t seed() const { return seed_; }

  // Per-sim telemetry: metrics registry, tracer and event journal on the
  // virtual clock. Always usable; obs::Telemetry::set_enabled gates only
  // span retention and journal IO, never metric recording, so disabling it
  // cannot change any component's behavior (docs/OBSERVABILITY.md).
  obs::Telemetry& telemetry() { return telemetry_; }
  const obs::Telemetry& telemetry() const { return telemetry_; }

  // The simulation sanitizer (wait-for graph, lifecycle diagnostics,
  // determinism hash). Compiles to a no-op stub when WIERA_SIM_CHECKER=OFF.
  SimChecker& checker() { return checker_; }
  const SimChecker& checker() const { return checker_; }

  // Low-level: schedule a bare coroutine resumption.
  void schedule_at(TimePoint t, std::coroutine_handle<> h);
  void schedule_after(Duration d, std::coroutine_handle<> h) {
    schedule_at(now_ + d, h);
  }

  // co_await sim.delay(d): suspend for d of virtual time.
  auto delay(Duration d) {
    struct Awaiter {
      Simulation* sim;
      Duration d;
      bool await_ready() const noexcept { return d <= Duration::zero(); }
      void await_suspend(std::coroutine_handle<> h) {
        sim->schedule_after(d, h);
      }
      void await_resume() const noexcept {}
    };
    return Awaiter{this, d};
  }

  // co_await sim.at(t): suspend until virtual time t (no-op if in the past).
  auto at(TimePoint t) { return delay(t - now_); }

  // Launch a detached root task. It starts at the current virtual time, in
  // FIFO order with other same-time events. The simulation owns the task:
  // if the Simulation is destroyed first, suspended frames are destroyed too.
  // `name` labels the task in checker diagnostics (stuck/deadlock reports);
  // unnamed tasks are reported as "task#N".
  void spawn(Task<void> task, std::string name = {});

  // Run until the event queue drains (or stop() is called).
  void run();
  // Run until the given virtual time; the clock lands exactly on `t` even if
  // the queue drains earlier. Events scheduled at exactly `t` DO run.
  void run_until(TimePoint t);
  void run_for(Duration d) { run_until(now_ + d); }
  // Stop the run loop after the current event completes.
  void stop() { stopped_ = true; }

  // Number of events executed so far (for tests / micro-benchmarks).
  uint64_t events_executed() const { return events_executed_; }

  // Route the global logger's timestamps through this sim's clock.
  void attach_logger();

  // Implementation detail of spawn(): bookkeeping for detached root frames.
  struct RootRegistry;

 private:
  struct QueueItem {
    TimePoint time;
    uint64_t seq;
    std::coroutine_handle<> handle;
    bool operator>(const QueueItem& o) const {
      if (time != o.time) return time > o.time;
      return seq > o.seq;
    }
  };

  bool step();  // execute one event; false if queue empty/stopped

  TimePoint now_ = TimePoint::origin();
  uint64_t seed_ = 0;
  uint64_t next_seq_ = 0;
  uint64_t events_executed_ = 0;
  bool stopped_ = false;
  std::priority_queue<QueueItem, std::vector<QueueItem>, std::greater<>>
      queue_;
  std::list<std::coroutine_handle<>> roots_;  // live detached root frames
  Rng rng_;
  obs::Telemetry telemetry_;
  SimChecker checker_;
};

}  // namespace wiera::sim
