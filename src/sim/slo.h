// SLO acceptance oracle for scenario runs (docs/SCENARIOS.md).
//
// ConsistencyOracle answers "did the cluster ever lie?"; SloOracle answers
// "did the cluster hold its service level while the scenario played out?".
// A test feeds it every client op (like the consistency oracle's begin/end
// pairs) and then checks a per-scenario SloContract: p99 latency bounds read
// from obs::Registry histograms, a bounded shed fraction through a flash
// crowd, zero failed or corrupt reads and a bounded availability gap through
// an evacuation, and session read-your-writes — the check that catches a
// drain protocol that detaches a peer without handing its accepted writes
// off (the remaining replicas then serve the client its own stale value,
// which no convergence check can see).
//
// Pure bookkeeping: nothing here touches the simulation. On violation the
// caller dumps span trees and the ScenarioEngine timeline, exactly like
// consistency-oracle failures do today.
#pragma once

#include <cstdint>
#include <string>
#include <utility>
#include <vector>

#include "common/status.h"
#include "common/time.h"
#include "obs/metrics.h"

namespace wiera::sim {

// What a scenario promises its clients. Zero / negative values mean
// "unchecked" so contracts stay sparse.
struct SloContract {
  std::string scenario;
  // p99 bounds over the per-client latency histograms
  // (wiera_client_{put,get}_latency_us); zero = unchecked. Histograms only
  // record successful ops, so this bounds the served tail, while failures
  // are covered by no_failed_ops.
  Duration max_put_p99 = Duration::zero();
  Duration max_get_p99 = Duration::zero();
  // Max fraction of in-window ops shed with kResourceExhausted; negative =
  // unchecked (sheds then count as plain failures under no_failed_ops).
  double max_shed_fraction = -1.0;
  // Every op must end kOk / kNotFound (kResourceExhausted tolerated only
  // when max_shed_fraction admits sheds).
  bool no_failed_ops = false;
  // Client-visible checksum failure counters must stay zero.
  bool no_corrupt_reads = false;
  // Max gap between successful op completions inside the scenario window,
  // including the window edges; zero = unchecked.
  Duration max_availability_gap = Duration::zero();
  // Read-your-writes per client: an ok GET must never return an *earlier*
  // own acked value (or nothing) once a later own write was acked.
  bool session_reads = false;
  // Gray-degradation bound (docs/HEALTH.md): the p99 of successful GET
  // latencies completing *inside* the scenario window may exceed the p99 of
  // those completing *outside* it by at most this factor. Catches the
  // failure mode absolute p99 bounds miss — a degraded-but-alive replica
  // quietly inflating the tail for the whole gray window. Requires a
  // window; <= 0 = unchecked. Both sides need min_inflation_samples
  // successful GETs or the clause passes vacuously.
  double max_get_p99_inflation = 0.0;
  int min_inflation_samples = 20;
  // Detection precedes violation (docs/METRICS_PIPELINE.md): when set,
  // every violation of a clause named here must be preceded by a recorded
  // burn-rate alert firing for that clause (SloOracle::record_alert,
  // strictly earlier than the violation's evidence time) — otherwise a
  // "detection-gap" violation is appended. An empty list with
  // require_detection keeps the contract sparse: no clause is guarded.
  bool require_detection = false;
  std::vector<std::string> guarded_clauses;

  std::string describe() const;
};

struct SloViolation {
  std::string check;    // which contract clause fired
  std::string message;  // human-readable evidence
  uint64_t trace_id = 0;  // offending op's distributed trace, if any
  // Evidence time: when the clause demonstrably tripped (an offending op's
  // completion, the availability gap's start, else the window end). The
  // detection-precedes-violation check compares alert firings against this.
  TimePoint at;
};

class SloOracle {
 public:
  // The scenario window availability/shed checks apply to. Ops outside the
  // window still count for no_failed_ops and session_reads.
  void set_window(TimePoint start, TimePoint end);

  // Record a burn-rate alert firing that guards `clause` (obs::AlertRules
  // firings carry the clause name). Feed these before check(): the
  // require_detection contract clause compares their times against each
  // violation's evidence time.
  void record_alert(const std::string& clause, TimePoint at);
  int64_t alerts() const { return static_cast<int64_t>(alerts_.size()); }

  void record_put(const std::string& client, const std::string& key,
                  const std::string& value, TimePoint start, TimePoint end,
                  StatusCode code, uint64_t trace_id);
  // `value` is the returned payload for kOk, ignored otherwise.
  void record_get(const std::string& client, const std::string& key,
                  const std::string& value, TimePoint start, TimePoint end,
                  StatusCode code, uint64_t trace_id);

  std::vector<SloViolation> check(const SloContract& contract,
                                  const obs::Registry& registry,
                                  const std::vector<std::string>& clients) const;

  int64_t ops() const { return static_cast<int64_t>(ops_.size()); }
  int64_t ok() const { return ok_; }
  int64_t not_found() const { return not_found_; }
  int64_t shed() const { return shed_; }
  int64_t failed() const { return failed_; }

  static std::string describe(const std::vector<SloViolation>& violations);

 private:
  struct OpRec {
    bool is_put = false;
    std::string client;
    std::string key;
    std::string value;
    TimePoint start;
    TimePoint end;
    StatusCode code = StatusCode::kOk;
    uint64_t trace_id = 0;
  };

  void record(OpRec rec);

  bool has_window_ = false;
  TimePoint window_start_;
  TimePoint window_end_;
  std::vector<OpRec> ops_;
  std::vector<std::pair<std::string, TimePoint>> alerts_;
  int64_t ok_ = 0;
  int64_t not_found_ = 0;
  int64_t shed_ = 0;
  int64_t failed_ = 0;
};

}  // namespace wiera::sim
