#include "sim/faults.h"

#include <algorithm>

#include "common/logging.h"

namespace wiera::sim {

namespace {

const char* kind_name(FaultEvent::Kind k) {
  switch (k) {
    case FaultEvent::Kind::kCrash: return "crash";
    case FaultEvent::Kind::kRestart: return "restart";
    case FaultEvent::Kind::kPartition: return "partition";
    case FaultEvent::Kind::kMessageChaos: return "message-chaos";
    case FaultEvent::Kind::kLatencySpike: return "latency-spike";
    case FaultEvent::Kind::kTierFault: return "tier-fault";
    case FaultEvent::Kind::kBitRot: return "bit-rot";
    case FaultEvent::Kind::kTornWrite: return "torn-write";
    case FaultEvent::Kind::kMsgCorrupt: return "msg-corrupt";
    case FaultEvent::Kind::kStutter: return "stutter";
    case FaultEvent::Kind::kFlakyLink: return "flaky-link";
    case FaultEvent::Kind::kSlowNode: return "slow-node";
  }
  return "?";
}

uint64_t fnv1a(uint64_t hash, uint64_t v) {
  for (int i = 0; i < 8; ++i) {
    hash ^= (v >> (8 * i)) & 0xFF;
    hash *= 0x100000001B3ull;
  }
  return hash;
}

uint64_t fnv1a_str(uint64_t hash, const std::string& s) {
  for (const char c : s) {
    hash ^= static_cast<uint8_t>(c);
    hash *= 0x100000001B3ull;
  }
  return hash;
}

}  // namespace

std::string_view partition_direction_name(PartitionDirection d) {
  switch (d) {
    case PartitionDirection::kBoth: return "both";
    case PartitionDirection::kInbound: return "inbound";
    case PartitionDirection::kOutbound: return "outbound";
  }
  return "?";
}

std::string FaultEvent::describe() const {
  std::string out = std::string(kind_name(kind)) + " node=" +
                    (node.empty() ? "*" : node) +
                    " at=" + std::to_string(at.us()) + "us";
  if (until > at) out += " until=" + std::to_string(until.us()) + "us";
  switch (kind) {
    case Kind::kPartition:
      out += " dir=" + std::string(partition_direction_name(direction));
      break;
    case Kind::kMessageChaos:
      out += " drop=" + std::to_string(drop_prob) +
             " dup=" + std::to_string(dup_prob) +
             " jitter=" + std::to_string(max_extra_delay.us()) + "us";
      break;
    case Kind::kLatencySpike:
      out += " extra=" + std::to_string(extra_delay.us()) + "us";
      break;
    case Kind::kTierFault:
      out += " tier=" + (tier_label.empty() ? "*" : tier_label) +
             " slowdown=" + std::to_string(slowdown) +
             (enospc ? " enospc" : "");
      break;
    case Kind::kBitRot:
      out += " key=" + object_key;
      break;
    case Kind::kMsgCorrupt:
      out += " corrupt=" + std::to_string(corrupt_prob);
      break;
    case Kind::kFlakyLink:
      out += " peer=" + peer_node + " drop=" + std::to_string(drop_prob) +
             " jitter=" + std::to_string(max_extra_delay.us()) + "us";
      break;
    case Kind::kSlowNode:
      out += " factor=" + std::to_string(slow_factor);
      break;
    default:
      break;
  }
  return out;
}

uint64_t FaultEvent::hash() const {
  uint64_t h = 0xCBF29CE484222325ull;
  h = fnv1a(h, static_cast<uint64_t>(kind));
  h = fnv1a(h, static_cast<uint64_t>(at.us()));
  h = fnv1a(h, static_cast<uint64_t>(until.us()));
  h = fnv1a_str(h, node);
  h = fnv1a(h, static_cast<uint64_t>(direction));
  h = fnv1a(h, static_cast<uint64_t>(drop_prob * 1e6));
  h = fnv1a(h, static_cast<uint64_t>(dup_prob * 1e6));
  h = fnv1a(h, static_cast<uint64_t>(max_extra_delay.us()));
  h = fnv1a(h, static_cast<uint64_t>(extra_delay.us()));
  h = fnv1a_str(h, tier_label);
  h = fnv1a(h, static_cast<uint64_t>(slowdown * 1e6));
  h = fnv1a(h, enospc ? 1 : 0);
  h = fnv1a_str(h, object_key);
  h = fnv1a(h, static_cast<uint64_t>(corrupt_prob * 1e6));
  // Gray-failure fields fold only when set: fnv1a_str over "" is a no-op
  // already, and slow_factor folds conditionally so every pre-existing
  // event (slow_factor == 1.0) keeps its exact historical hash.
  h = fnv1a_str(h, peer_node);
  if (slow_factor != 1.0) {
    h = fnv1a(h, static_cast<uint64_t>(slow_factor * 1e6));
  }
  return h;
}

FaultPlan& FaultPlan::crash(std::string node, TimePoint at,
                            TimePoint restart_at) {
  FaultEvent down;
  down.kind = FaultEvent::Kind::kCrash;
  down.node = node;
  down.at = at;
  down.until = restart_at;
  events_.push_back(down);

  FaultEvent up;
  up.kind = FaultEvent::Kind::kRestart;
  up.node = std::move(node);
  up.at = restart_at;
  up.until = restart_at;
  events_.push_back(std::move(up));
  return *this;
}

FaultPlan& FaultPlan::partition(std::string node, TimePoint at, TimePoint until,
                                PartitionDirection direction) {
  FaultEvent e;
  e.kind = FaultEvent::Kind::kPartition;
  e.node = std::move(node);
  e.at = at;
  e.until = until;
  e.direction = direction;
  events_.push_back(std::move(e));
  return *this;
}

FaultPlan& FaultPlan::message_chaos(std::string node, TimePoint at,
                                    TimePoint until, double drop_prob,
                                    double dup_prob,
                                    Duration max_extra_delay) {
  FaultEvent e;
  e.kind = FaultEvent::Kind::kMessageChaos;
  e.node = std::move(node);
  e.at = at;
  e.until = until;
  e.drop_prob = drop_prob;
  e.dup_prob = dup_prob;
  e.max_extra_delay = max_extra_delay;
  events_.push_back(std::move(e));
  return *this;
}

FaultPlan& FaultPlan::latency_spike(std::string node, Duration extra,
                                    TimePoint at, TimePoint until) {
  FaultEvent e;
  e.kind = FaultEvent::Kind::kLatencySpike;
  e.node = std::move(node);
  e.at = at;
  e.until = until;
  e.extra_delay = extra;
  events_.push_back(std::move(e));
  return *this;
}

FaultPlan& FaultPlan::tier_fault(std::string node, std::string tier_label,
                                 double slowdown, bool enospc, TimePoint at,
                                 TimePoint until) {
  FaultEvent e;
  e.kind = FaultEvent::Kind::kTierFault;
  e.node = std::move(node);
  e.tier_label = std::move(tier_label);
  e.at = at;
  e.until = until;
  e.slowdown = slowdown;
  e.enospc = enospc;
  events_.push_back(std::move(e));
  return *this;
}

FaultPlan& FaultPlan::bit_rot(std::string node, std::string key,
                              TimePoint at) {
  FaultEvent e;
  e.kind = FaultEvent::Kind::kBitRot;
  e.node = std::move(node);
  e.object_key = std::move(key);
  e.at = at;
  e.until = at;
  events_.push_back(std::move(e));
  return *this;
}

FaultPlan& FaultPlan::torn_write(std::string node, TimePoint at,
                                 TimePoint restart_at) {
  FaultEvent down;
  down.kind = FaultEvent::Kind::kTornWrite;
  down.node = node;
  down.at = at;
  down.until = restart_at;
  events_.push_back(down);

  FaultEvent up;
  up.kind = FaultEvent::Kind::kRestart;
  up.node = std::move(node);
  up.at = restart_at;
  up.until = restart_at;
  events_.push_back(std::move(up));
  return *this;
}

FaultPlan& FaultPlan::corrupting_chaos(std::string node, TimePoint at,
                                       TimePoint until, double corrupt_prob) {
  FaultEvent e;
  e.kind = FaultEvent::Kind::kMsgCorrupt;
  e.node = std::move(node);
  e.at = at;
  e.until = until;
  e.corrupt_prob = corrupt_prob;
  events_.push_back(std::move(e));
  return *this;
}

FaultPlan& FaultPlan::stutter(std::string node, TimePoint at, TimePoint until) {
  FaultEvent e;
  e.kind = FaultEvent::Kind::kStutter;
  e.node = std::move(node);
  e.at = at;
  e.until = until;
  events_.push_back(std::move(e));
  return *this;
}

FaultPlan& FaultPlan::flaky_link(std::string node, std::string peer,
                                 TimePoint at, TimePoint until,
                                 double drop_prob, Duration max_extra_delay) {
  FaultEvent e;
  e.kind = FaultEvent::Kind::kFlakyLink;
  e.node = std::move(node);
  e.peer_node = std::move(peer);
  e.at = at;
  e.until = until;
  e.drop_prob = drop_prob;
  e.max_extra_delay = max_extra_delay;
  events_.push_back(std::move(e));
  return *this;
}

FaultPlan& FaultPlan::slow_node(std::string node, double factor, TimePoint at,
                                TimePoint until) {
  FaultEvent e;
  e.kind = FaultEvent::Kind::kSlowNode;
  e.node = std::move(node);
  e.at = at;
  e.until = until;
  e.slow_factor = factor;
  events_.push_back(std::move(e));
  return *this;
}

FaultPlan& FaultPlan::add(FaultEvent event) {
  events_.push_back(std::move(event));
  return *this;
}

FaultPlan FaultPlan::random(uint64_t seed, const RandomOptions& options) {
  FaultPlan plan;
  if (options.nodes.empty()) return plan;
  Rng rng(seed);

  const auto pick_node = [&]() -> const std::string& {
    return options.nodes[static_cast<size_t>(rng.uniform_int(
        0, static_cast<int64_t>(options.nodes.size()) - 1))];
  };
  const auto pick_window = [&](TimePoint& at, TimePoint& until) {
    const int64_t span = options.latest.us() - options.earliest.us();
    at = options.earliest + usec(rng.uniform_int(0, std::max<int64_t>(span, 0)));
    until = at + usec(rng.uniform_int(options.min_window.us(),
                                      options.max_window.us()));
  };

  TimePoint at, until;
  for (int i = 0; i < options.crashes; ++i) {
    pick_window(at, until);
    plan.crash(pick_node(), at, until);
  }
  for (int i = 0; i < options.partitions; ++i) {
    pick_window(at, until);
    const int64_t dir = rng.uniform_int(0, 2);
    plan.partition(pick_node(), at, until,
                   static_cast<PartitionDirection>(dir));
  }
  for (int i = 0; i < options.chaos_windows; ++i) {
    pick_window(at, until);
    // Half the windows are node-scoped, half global.
    const std::string node = rng.bernoulli(0.5) ? pick_node() : std::string();
    plan.message_chaos(node, at, until, options.drop_prob, options.dup_prob,
                       options.max_extra_delay);
  }
  for (int i = 0; i < options.latency_spikes; ++i) {
    pick_window(at, until);
    plan.latency_spike(pick_node(),
                       usec(rng.uniform_int(options.max_spike.us() / 4,
                                            options.max_spike.us())),
                       at, until);
  }
  for (int i = 0; i < options.tier_faults; ++i) {
    pick_window(at, until);
    plan.tier_fault(pick_node(), /*tier_label=*/"", options.tier_slowdown,
                    options.tier_enospc, at, until);
  }
  // Integrity fault classes sample last: pre-existing seeds (all counts 0)
  // consume the identical RNG draw sequence and stay byte-identical.
  if (!options.keys.empty()) {
    for (int i = 0; i < options.bit_rots; ++i) {
      pick_window(at, until);
      const std::string& key = options.keys[static_cast<size_t>(
          rng.uniform_int(0, static_cast<int64_t>(options.keys.size()) - 1))];
      plan.bit_rot(pick_node(), key, at);
    }
  }
  for (int i = 0; i < options.torn_writes; ++i) {
    pick_window(at, until);
    plan.torn_write(pick_node(), at, until);
  }
  for (int i = 0; i < options.corrupt_windows; ++i) {
    pick_window(at, until);
    const std::string node = rng.bernoulli(0.5) ? pick_node() : std::string();
    plan.corrupting_chaos(node, at, until, options.corrupt_prob);
  }
  // Gray-failure classes sample after the integrity classes for the same
  // reason those sample after the availability classes: all counts default
  // 0, so earlier seeds draw the identical RNG sequence.
  for (int i = 0; i < options.stutters; ++i) {
    pick_window(at, until);
    plan.stutter(pick_node(), at, until);
  }
  if (options.nodes.size() >= 2) {
    for (int i = 0; i < options.flaky_links; ++i) {
      pick_window(at, until);
      const auto a = static_cast<size_t>(rng.uniform_int(
          0, static_cast<int64_t>(options.nodes.size()) - 1));
      // Draw the peer from the remaining nodes so the link endpoints differ.
      auto b = static_cast<size_t>(rng.uniform_int(
          0, static_cast<int64_t>(options.nodes.size()) - 2));
      if (b >= a) ++b;
      plan.flaky_link(options.nodes[a], options.nodes[b], at, until,
                      options.flaky_drop_prob, options.flaky_extra_delay);
    }
  }
  for (int i = 0; i < options.slow_nodes; ++i) {
    pick_window(at, until);
    plan.slow_node(pick_node(), options.slow_factor, at, until);
  }
  return plan;
}

std::string FaultPlan::describe() const {
  std::string out;
  for (const auto& e : events_) {
    if (!out.empty()) out += "\n";
    out += e.describe();
  }
  return out;
}

std::string FaultInjector::render_timeline() const {
  std::string out;
  for (const FaultEvent& e : timeline_) {
    out += "  " + std::to_string(e.at.us()) + "us " + e.describe() + "\n";
  }
  return out;
}

void FaultInjector::arm(FaultPlan plan) {
  std::vector<FaultEvent> events = plan.events();
  // Stable sort: events at the same instant apply in insertion order.
  std::stable_sort(events.begin(), events.end(),
                   [](const FaultEvent& a, const FaultEvent& b) {
                     return a.at < b.at;
                   });
  sim_->spawn(drive(std::move(events)), "chaos.fault-driver");
}

Task<void> FaultInjector::drive(std::vector<FaultEvent> events) {
  for (const FaultEvent& e : events) {
    if (e.at > sim_->now()) co_await sim_->at(e.at);
    apply(e);
  }
}

void FaultInjector::apply(const FaultEvent& e) {
  // Every applied fault perturbs the determinism trace: two runs only hash
  // equal if they applied the identical fault schedule.
  sim_->checker().fold_trace(e.hash());
  WLOG_INFO("chaos") << "applying fault: " << e.describe();
  events_applied_++;
  timeline_.push_back(e);
  switch (e.kind) {
    case FaultEvent::Kind::kCrash: surface_->on_node_crash(e); break;
    case FaultEvent::Kind::kRestart: surface_->on_node_restart(e); break;
    case FaultEvent::Kind::kPartition: surface_->on_partition(e); break;
    case FaultEvent::Kind::kMessageChaos: surface_->on_message_chaos(e); break;
    case FaultEvent::Kind::kLatencySpike: surface_->on_latency_spike(e); break;
    case FaultEvent::Kind::kTierFault: surface_->on_tier_fault(e); break;
    case FaultEvent::Kind::kBitRot: surface_->on_bit_rot(e); break;
    case FaultEvent::Kind::kTornWrite: surface_->on_torn_write(e); break;
    case FaultEvent::Kind::kMsgCorrupt: surface_->on_message_corrupt(e); break;
    case FaultEvent::Kind::kStutter: surface_->on_stutter(e); break;
    case FaultEvent::Kind::kFlakyLink: surface_->on_flaky_link(e); break;
    case FaultEvent::Kind::kSlowNode: surface_->on_slow_node(e); break;
  }
}

}  // namespace wiera::sim
