// Small-size-optimized containers for hot metadata paths.
//
// The per-op structures on the PUT/GET hot path are tiny in practice — a
// key has a handful of versions, a fan-out targets 2–4 peers, a message
// body has 1–3 segments — but the std containers they used (std::map,
// std::set, std::vector) pay a heap allocation per node or per element.
// SmallVec keeps up to N elements inline; FlatMap/FlatSet are sorted
// SmallVecs with map/set semantics. Iteration order is the key order, so
// swapping std::map/std::set for these is determinism-neutral.
//
// Invalidation: unlike std::map/std::set, *any* insert or erase may move
// elements (and an insert past capacity reallocates), so pointers and
// iterators into a FlatMap/FlatSet do not survive mutation. Callers that
// held long-lived node pointers must re-find after mutating.
#pragma once

#include <algorithm>
#include <cassert>
#include <cstddef>
#include <iterator>
#include <new>
#include <utility>

namespace wiera {

template <typename T, size_t N>
class SmallVec {
  static_assert(N > 0, "inline capacity must be non-zero");

 public:
  using value_type = T;
  using iterator = T*;
  using const_iterator = const T*;
  using reverse_iterator = std::reverse_iterator<iterator>;
  using const_reverse_iterator = std::reverse_iterator<const_iterator>;

  SmallVec() = default;

  SmallVec(const SmallVec& other) { append_range(other.begin(), other.end()); }

  SmallVec(SmallVec&& other) noexcept { move_from(std::move(other)); }

  SmallVec& operator=(const SmallVec& other) {
    if (this != &other) {
      clear();
      append_range(other.begin(), other.end());
    }
    return *this;
  }

  SmallVec& operator=(SmallVec&& other) noexcept {
    if (this != &other) {
      destroy_all();
      move_from(std::move(other));
    }
    return *this;
  }

  ~SmallVec() { destroy_all(); }

  iterator begin() { return data_; }
  iterator end() { return data_ + size_; }
  const_iterator begin() const { return data_; }
  const_iterator end() const { return data_ + size_; }
  reverse_iterator rbegin() { return reverse_iterator(end()); }
  reverse_iterator rend() { return reverse_iterator(begin()); }
  const_reverse_iterator rbegin() const {
    return const_reverse_iterator(end());
  }
  const_reverse_iterator rend() const {
    return const_reverse_iterator(begin());
  }

  size_t size() const { return size_; }
  bool empty() const { return size_ == 0; }
  size_t capacity() const { return cap_; }
  static constexpr size_t inline_capacity() { return N; }
  bool is_inline() const { return data_ == inline_data(); }

  T& operator[](size_t i) { return data_[i]; }
  const T& operator[](size_t i) const { return data_[i]; }
  T& front() { return data_[0]; }
  const T& front() const { return data_[0]; }
  T& back() { return data_[size_ - 1]; }
  const T& back() const { return data_[size_ - 1]; }

  void reserve(size_t want) {
    if (want > cap_) grow_to(want);
  }

  void push_back(const T& v) { emplace_back(v); }
  void push_back(T&& v) { emplace_back(std::move(v)); }

  template <typename... Args>
  T& emplace_back(Args&&... args) {
    if (size_ == cap_) grow_to(cap_ * 2);
    T* slot = data_ + size_;
    ::new (static_cast<void*>(slot)) T(std::forward<Args>(args)...);
    size_++;
    return *slot;
  }

  void pop_back() {
    assert(size_ > 0);
    size_--;
    data_[size_].~T();
  }

  void clear() {
    for (size_t i = 0; i < size_; ++i) data_[i].~T();
    size_ = 0;
  }

  // Insert before `pos`; shifts the tail right. Returns the new element.
  iterator insert(const_iterator pos, T value) {
    const size_t idx = static_cast<size_t>(pos - data_);
    assert(idx <= size_);
    if (size_ == cap_) grow_to(cap_ * 2);
    if (idx == size_) {
      emplace_back(std::move(value));
      return data_ + idx;
    }
    // Move-construct the last element into the new back slot, then shift.
    ::new (static_cast<void*>(data_ + size_)) T(std::move(data_[size_ - 1]));
    for (size_t i = size_ - 1; i > idx; --i) data_[i] = std::move(data_[i - 1]);
    data_[idx] = std::move(value);
    size_++;
    return data_ + idx;
  }

  iterator erase(const_iterator pos) {
    const size_t idx = static_cast<size_t>(pos - data_);
    assert(idx < size_);
    for (size_t i = idx; i + 1 < size_; ++i) data_[i] = std::move(data_[i + 1]);
    pop_back();
    return data_ + idx;
  }

  friend bool operator==(const SmallVec& a, const SmallVec& b) {
    return std::equal(a.begin(), a.end(), b.begin(), b.end());
  }

 private:
  T* inline_data() {
    return std::launder(reinterpret_cast<T*>(inline_storage_));
  }
  const T* inline_data() const {
    return std::launder(reinterpret_cast<const T*>(inline_storage_));
  }

  void grow_to(size_t want) {
    const size_t new_cap = std::max(want, cap_ * 2);
    T* fresh = static_cast<T*>(::operator new(new_cap * sizeof(T),
                                              std::align_val_t(alignof(T))));
    for (size_t i = 0; i < size_; ++i) {
      ::new (static_cast<void*>(fresh + i)) T(std::move(data_[i]));
      data_[i].~T();
    }
    release_heap();
    data_ = fresh;
    cap_ = new_cap;
  }

  void append_range(const T* first, const T* last) {
    reserve(size_ + static_cast<size_t>(last - first));
    for (const T* p = first; p != last; ++p) emplace_back(*p);
  }

  // Leaves `other` empty. Assumes *this holds no live elements.
  void move_from(SmallVec&& other) {
    if (!other.is_inline()) {
      // Steal the heap block outright.
      data_ = other.data_;
      cap_ = other.cap_;
      size_ = other.size_;
      other.data_ = other.inline_data();
      other.cap_ = N;
      other.size_ = 0;
      return;
    }
    data_ = inline_data();
    cap_ = N;
    size_ = 0;
    for (size_t i = 0; i < other.size_; ++i) emplace_back(std::move(other[i]));
    other.clear();
  }

  void release_heap() {
    if (!is_inline()) {
      ::operator delete(data_, std::align_val_t(alignof(T)));
    }
  }

  void destroy_all() {
    clear();
    release_heap();
    data_ = inline_data();
    cap_ = N;
  }

  alignas(T) unsigned char inline_storage_[N * sizeof(T)];
  T* data_ = inline_data();
  size_t size_ = 0;
  size_t cap_ = N;
};

// Sorted-vector map: std::map surface over SmallVec storage. Ordered
// iteration (begin..end ascending by key, rbegin = highest key), O(log n)
// find, O(n) insert/erase — the right trade for the per-key version lists
// and per-target tables this replaces, which hold a handful of entries.
template <typename K, typename V, size_t N = 4>
class FlatMap {
 public:
  using value_type = std::pair<K, V>;
  using iterator = value_type*;
  using const_iterator = const value_type*;
  using reverse_iterator = std::reverse_iterator<iterator>;
  using const_reverse_iterator = std::reverse_iterator<const_iterator>;

  iterator begin() { return entries_.begin(); }
  iterator end() { return entries_.end(); }
  const_iterator begin() const { return entries_.begin(); }
  const_iterator end() const { return entries_.end(); }
  reverse_iterator rbegin() { return entries_.rbegin(); }
  reverse_iterator rend() { return entries_.rend(); }
  const_reverse_iterator rbegin() const { return entries_.rbegin(); }
  const_reverse_iterator rend() const { return entries_.rend(); }

  size_t size() const { return entries_.size(); }
  bool empty() const { return entries_.empty(); }
  void clear() { entries_.clear(); }

  iterator lower_bound(const K& key) {
    return std::lower_bound(begin(), end(), key, KeyLess{});
  }
  const_iterator lower_bound(const K& key) const {
    return std::lower_bound(begin(), end(), key, KeyLess{});
  }

  iterator find(const K& key) {
    iterator it = lower_bound(key);
    return (it != end() && it->first == key) ? it : end();
  }
  const_iterator find(const K& key) const {
    const_iterator it = lower_bound(key);
    return (it != end() && it->first == key) ? it : end();
  }

  size_t count(const K& key) const { return find(key) != end() ? 1 : 0; }
  bool contains(const K& key) const { return count(key) > 0; }

  V& operator[](const K& key) {
    iterator it = lower_bound(key);
    if (it != end() && it->first == key) return it->second;
    return entries_.insert(it, value_type(key, V{}))->second;
  }

  std::pair<iterator, bool> insert_or_assign(const K& key, V value) {
    iterator it = lower_bound(key);
    if (it != end() && it->first == key) {
      it->second = std::move(value);
      return {it, false};
    }
    return {entries_.insert(it, value_type(key, std::move(value))), true};
  }

  size_t erase(const K& key) {
    iterator it = find(key);
    if (it == end()) return 0;
    entries_.erase(it);
    return 1;
  }

  iterator erase(const_iterator pos) { return entries_.erase(pos); }

 private:
  struct KeyLess {
    bool operator()(const value_type& e, const K& k) const {
      return e.first < k;
    }
  };
  SmallVec<value_type, N> entries_;
};

// Sorted-vector set, same trade-offs as FlatMap.
template <typename K, size_t N = 4>
class FlatSet {
 public:
  using iterator = K*;
  using const_iterator = const K*;

  iterator begin() { return entries_.begin(); }
  iterator end() { return entries_.end(); }
  const_iterator begin() const { return entries_.begin(); }
  const_iterator end() const { return entries_.end(); }

  size_t size() const { return entries_.size(); }
  bool empty() const { return entries_.empty(); }
  void clear() { entries_.clear(); }

  std::pair<iterator, bool> insert(K key) {
    iterator it = std::lower_bound(begin(), end(), key);
    if (it != end() && *it == key) return {it, false};
    return {entries_.insert(it, std::move(key)), true};
  }

  size_t count(const K& key) const {
    const_iterator it = std::lower_bound(begin(), end(), key);
    return (it != end() && *it == key) ? 1 : 0;
  }
  bool contains(const K& key) const { return count(key) > 0; }

  size_t erase(const K& key) {
    iterator it = std::lower_bound(begin(), end(), key);
    if (it == end() || *it != key) return 0;
    entries_.erase(it);
    return 1;
  }

 private:
  SmallVec<K, N> entries_;
};

}  // namespace wiera
