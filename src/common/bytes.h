// Byte-buffer types and helpers for object payloads and message bodies.
//
// Objects in Wiera are uninterpreted byte sequences (§2.2 of the paper).
// Payloads can be large and are shared between replicas inside one process,
// so the canonical representations are reference-counted:
//
//  * Buffer — a (storage, offset, len) view into shared immutable bytes.
//    Copying or slicing a Buffer never copies bytes, only bumps refcounts.
//  * Blob — an object payload; a thin semantic wrapper over one Buffer.
//  * BodyView — an RPC message body: logically one contiguous byte string,
//    physically a short list of Buffer segments. Wire encoders append blob
//    payloads as shared segments instead of memcpying them into the body,
//    and decoders hand out Blobs that alias the body's storage — so on the
//    PUT/GET hot path a payload is copied at most once per node (into the
//    original Bytes) no matter how many RPC hops or replicas it crosses.
//  * BufferArena — recycles byte-vector capacity across messages so the
//    encode path reuses allocations instead of hitting the allocator per
//    message.
#pragma once

#include <cassert>
#include <cstdint>
#include <cstring>
#include <memory>
#include <string>
#include <string_view>
#include <utility>
#include <vector>

#include "common/small_vec.h"

namespace wiera {

using Bytes = std::vector<uint8_t>;

// Ref-counted view into shared immutable byte storage. Copy/slice are O(1)
// refcount operations; the underlying bytes are freed when the last view
// drops. A Buffer's bytes are always contiguous.
class Buffer {
 public:
  Buffer() = default;
  explicit Buffer(Bytes bytes)
      : storage_(std::make_shared<const Bytes>(std::move(bytes))),
        offset_(0),
        len_(storage_->size()) {}
  explicit Buffer(std::string_view s) : Buffer(Bytes(s.begin(), s.end())) {}
  Buffer(std::shared_ptr<const Bytes> storage, size_t offset, size_t len)
      : storage_(std::move(storage)), offset_(offset), len_(len) {
    assert(storage_ != nullptr && offset_ + len_ <= storage_->size());
  }

  static Buffer zeros(size_t size) { return Buffer(Bytes(size, 0)); }

  size_t size() const { return len_; }
  bool empty() const { return len_ == 0; }
  const uint8_t* data() const {
    return storage_ ? storage_->data() + offset_ : nullptr;
  }
  std::string_view view() const {
    return {reinterpret_cast<const char*>(data()), len_};
  }

  // A sub-view sharing this buffer's storage; clamps to the buffer's end.
  Buffer slice(size_t offset, size_t len) const {
    if (!storage_ || offset >= len_) return {};
    return Buffer(storage_, offset_ + offset, std::min(len, len_ - offset));
  }

  bool shares_storage_with(const Buffer& other) const {
    return storage_ != nullptr && storage_ == other.storage_;
  }
  // Live references to the storage block (tests assert lifetime behavior).
  long use_count() const { return storage_.use_count(); }

  friend bool operator==(const Buffer& a, const Buffer& b) {
    if (a.len_ != b.len_) return false;
    if (a.storage_ == b.storage_ && a.offset_ == b.offset_) return true;
    return a.len_ == 0 || std::memcmp(a.data(), b.data(), a.len_) == 0;
  }

 private:
  std::shared_ptr<const Bytes> storage_;
  size_t offset_ = 0;
  size_t len_ = 0;
};

// Recycles byte-vector capacity across messages. acquire() hands out an
// empty Bytes that reuses a previously released block's capacity; seal()
// wraps filled bytes in a Buffer whose storage returns to this arena when
// the last reference drops. The arena must outlive every Buffer sealed
// through it. Single-threaded by design, like the simulation it serves.
class BufferArena {
 public:
  Bytes acquire(size_t reserve_hint = 0) {
    Bytes out;
    if (!free_.empty()) {
      out = std::move(free_.back());
      free_.pop_back();
      out.clear();
    }
    if (out.capacity() < reserve_hint) out.reserve(reserve_hint);
    return out;
  }

  void release(Bytes bytes) {
    if (free_.size() < kMaxPooled && bytes.capacity() > 0) {
      free_.push_back(std::move(bytes));
    }
  }

  Buffer seal(Bytes bytes) {
    const size_t len = bytes.size();
    // One fused allocation (control block + block) via allocate_shared,
    // aliased down to the Bytes member — and even that allocation is
    // recycled through the slab freelist below. A naive `new Bytes` +
    // custom-deleter control block costs two malloc/free pairs per sealed
    // message, which IS most of the work on the small-RPC hot path.
    auto block = std::allocate_shared<ArenaBlock>(BlockAlloc<ArenaBlock>(this),
                                                  this, std::move(bytes));
    std::shared_ptr<const Bytes> storage(block, &block->bytes);
    return Buffer(std::move(storage), 0, len);
  }

  size_t pooled() const { return free_.size(); }

  ~BufferArena() {
    for (void* slab : slabs_) ::operator delete(slab);
  }
  BufferArena() = default;
  BufferArena(const BufferArena&) = delete;
  BufferArena& operator=(const BufferArena&) = delete;

 private:
  struct ArenaBlock {
    ArenaBlock(BufferArena* a, Bytes b) : arena(a), bytes(std::move(b)) {}
    ~ArenaBlock() { arena->release(std::move(bytes)); }
    BufferArena* arena;
    Bytes bytes;
  };

  // Fixed-size slab recycling for the shared_ptr control block + ArenaBlock
  // node that allocate_shared fuses into one piece. Every sealed message
  // needs exactly one such node, so round-tripping them through a freelist
  // makes the steady-state encode path allocation-free. Slabs only serve
  // single-object allocations that fit kSlabBytes; anything else falls
  // through to plain operator new.
  template <typename T>
  struct BlockAlloc {
    using value_type = T;
    explicit BlockAlloc(BufferArena* a) : arena(a) {}
    template <typename U>
    BlockAlloc(const BlockAlloc<U>& other) : arena(other.arena) {}

    T* allocate(size_t n) {
      if (n == 1 && sizeof(T) <= kSlabBytes &&
          alignof(T) <= __STDCPP_DEFAULT_NEW_ALIGNMENT__ &&
          !arena->slabs_.empty()) {
        void* slab = arena->slabs_.back();
        arena->slabs_.pop_back();
        return static_cast<T*>(slab);
      }
      return static_cast<T*>(::operator new(
          n == 1 && sizeof(T) <= kSlabBytes ? kSlabBytes : n * sizeof(T)));
    }
    void deallocate(T* p, size_t n) {
      if (n == 1 && sizeof(T) <= kSlabBytes &&
          alignof(T) <= __STDCPP_DEFAULT_NEW_ALIGNMENT__ &&
          arena->slabs_.size() < kMaxPooled) {
        arena->slabs_.push_back(p);
        return;
      }
      ::operator delete(p);
    }
    template <typename U>
    bool operator==(const BlockAlloc<U>& other) const {
      return arena == other.arena;
    }

    BufferArena* arena;
  };

  static constexpr size_t kMaxPooled = 64;
  static constexpr size_t kSlabBytes = 128;
  std::vector<Bytes> free_;
  std::vector<void*> slabs_;
};

// Immutable, cheaply copyable payload. A put() captures the bytes once;
// replication/copy responses then share the buffer instead of duplicating
// multi-megabyte values per replica.
class Blob {
 public:
  Blob() = default;
  explicit Blob(Bytes data) : buf_(std::move(data)) {}
  explicit Blob(std::string_view s) : buf_(s) {}
  explicit Blob(Buffer buffer) : buf_(std::move(buffer)) {}

  // A zero-filled payload of the given size (workload generators use this;
  // content does not matter, size drives transfer and storage costs).
  static Blob zeros(size_t size) { return Blob(Buffer::zeros(size)); }

  size_t size() const { return buf_.size(); }
  bool empty() const { return buf_.empty(); }
  const uint8_t* data() const { return buf_.data(); }

  std::string_view view() const { return buf_.view(); }
  std::string to_string() const { return std::string(view()); }

  const Buffer& buffer() const { return buf_; }

  friend bool operator==(const Blob& a, const Blob& b) {
    return a.buf_ == b.buf_;
  }

 private:
  Buffer buf_;
};

// Segmented RPC message body. Logically one contiguous byte string (size(),
// at(), flatten() all address the concatenation); physically a short inline
// list of ref-counted segments, so appending a payload is a refcount bump.
// Wire layout is identical to the flat encoding — segmentation is invisible
// on the (simulated) wire, and wire_size/transfer costs are unchanged.
class BodyView {
 public:
  BodyView() = default;
  // Implicit: most messages are a single owned segment of header fields.
  BodyView(Bytes bytes) {  // NOLINT(google-explicit-constructor)
    append(Buffer(std::move(bytes)));
  }
  explicit BodyView(Buffer segment) { append(std::move(segment)); }

  BodyView(const BodyView&) = default;
  BodyView& operator=(const BodyView&) = default;
  BodyView(BodyView&& other) noexcept
      : segments_(std::move(other.segments_)), size_(other.size_) {
    other.size_ = 0;
  }
  BodyView& operator=(BodyView&& other) noexcept {
    segments_ = std::move(other.segments_);
    size_ = other.size_;
    other.size_ = 0;
    return *this;
  }

  void append(Buffer segment) {
    if (segment.empty()) return;
    size_ += segment.size();
    segments_.push_back(std::move(segment));
  }

  size_t size() const { return size_; }
  bool empty() const { return size_ == 0; }

  size_t segment_count() const { return segments_.size(); }
  const Buffer& segment(size_t i) const { return segments_[i]; }

  uint8_t at(size_t logical) const {
    assert(logical < size_);
    for (const Buffer& seg : segments_) {
      if (logical < seg.size()) return seg.data()[logical];
      logical -= seg.size();
    }
    return 0;
  }

  // Copy-on-write byte flip (chaos message corruption). Only the segment
  // containing the byte is cloned: with zero-copy bodies the payload
  // storage is shared with the sender's tiers and any sibling messages, so
  // flipping in place would corrupt every holder, not just this delivery.
  void flip_byte(size_t logical) {
    assert(logical < size_);
    for (size_t i = 0; i < segments_.size(); ++i) {
      Buffer& seg = segments_[i];
      if (logical >= seg.size()) {
        logical -= seg.size();
        continue;
      }
      Bytes copy(seg.data(), seg.data() + seg.size());
      copy[logical] ^= 0x01;
      seg = Buffer(std::move(copy));
      return;
    }
  }

  // The full logical byte string, copied out (tests / legacy comparisons).
  Bytes flatten() const {
    Bytes out;
    out.reserve(size_);
    for (const Buffer& seg : segments_) {
      out.insert(out.end(), seg.data(), seg.data() + seg.size());
    }
    return out;
  }

  friend bool operator==(const BodyView& a, const BodyView& b) {
    if (a.size_ != b.size_) return false;
    for (size_t i = 0; i < a.size_; ++i) {
      if (a.at(i) != b.at(i)) return false;
    }
    return true;
  }

 private:
  SmallVec<Buffer, 3> segments_;
  size_t size_ = 0;
};

// FNV-1a 64-bit — stable content hash for dedup checks and key scrambling.
inline uint64_t fnv1a64(const void* data, size_t len) {
  const auto* p = static_cast<const uint8_t*>(data);
  uint64_t h = 0xCBF29CE484222325ull;
  for (size_t i = 0; i < len; ++i) {
    h ^= p[i];
    h *= 0x100000001B3ull;
  }
  return h;
}

inline uint64_t fnv1a64(std::string_view s) {
  return fnv1a64(s.data(), s.size());
}

}  // namespace wiera
