// Byte-buffer type and helpers for object payloads.
//
// Objects in Wiera are uninterpreted byte sequences (§2.2 of the paper).
// Payloads can be large and are shared between replicas inside one process,
// so the canonical representation is a shared immutable buffer.
#pragma once

#include <cstdint>
#include <cstring>
#include <memory>
#include <string>
#include <string_view>
#include <vector>

namespace wiera {

using Bytes = std::vector<uint8_t>;

// Immutable, cheaply copyable payload. A put() captures the bytes once;
// replication/copy responses then share the buffer instead of duplicating
// multi-megabyte values per replica.
class Blob {
 public:
  Blob() = default;
  explicit Blob(Bytes data)
      : data_(std::make_shared<const Bytes>(std::move(data))) {}
  explicit Blob(std::string_view s)
      : Blob(Bytes(s.begin(), s.end())) {}

  // A zero-filled payload of the given size (workload generators use this;
  // content does not matter, size drives transfer and storage costs).
  static Blob zeros(size_t size) { return Blob(Bytes(size, 0)); }

  size_t size() const { return data_ ? data_->size() : 0; }
  bool empty() const { return size() == 0; }
  const uint8_t* data() const { return data_ ? data_->data() : nullptr; }

  std::string_view view() const {
    return {reinterpret_cast<const char*>(data()), size()};
  }
  std::string to_string() const { return std::string(view()); }

  friend bool operator==(const Blob& a, const Blob& b) {
    if (a.size() != b.size()) return false;
    if (a.data_ == b.data_) return true;
    return a.size() == 0 ||
           std::memcmp(a.data(), b.data(), a.size()) == 0;
  }

 private:
  std::shared_ptr<const Bytes> data_;
};

// FNV-1a 64-bit — stable content hash for dedup checks and key scrambling.
inline uint64_t fnv1a64(const void* data, size_t len) {
  const auto* p = static_cast<const uint8_t*>(data);
  uint64_t h = 0xCBF29CE484222325ull;
  for (size_t i = 0; i < len; ++i) {
    h ^= p[i];
    h *= 0x100000001B3ull;
  }
  return h;
}

inline uint64_t fnv1a64(std::string_view s) {
  return fnv1a64(s.data(), s.size());
}

}  // namespace wiera
