// Latency histogram with log-spaced buckets and exact percentile support
// for the value ranges experiments care about (1 µs .. ~100 s).
#pragma once

#include <algorithm>
#include <array>
#include <cstdint>
#include <string>
#include <vector>

#include "common/time.h"

namespace wiera {

// Records durations; reports count/mean/min/max and percentiles. Buckets are
// log1.12-spaced which keeps percentile error under ~6% across the range —
// plenty for comparing hundreds-of-ms WAN latencies against sub-ms memory
// hits.
class LatencyHistogram {
 public:
  LatencyHistogram() { counts_.fill(0); }
  // Override the exact-sample retention cap. The default keeps small-n
  // percentiles exact and flips to the bucketed approximation past
  // kExactSamples; an analysis-side consumer (e.g. the SLO oracle's
  // windowed p99 comparison) can pass a cap larger than any realistic
  // sample count to stay exact nearest-rank throughout.
  explicit LatencyHistogram(int64_t exact_cap) : exact_cap_(exact_cap) {
    counts_.fill(0);
  }

  void record(Duration d);

  int64_t count() const { return total_count_; }
  Duration sum() const { return Duration(sum_us_); }
  Duration min() const { return total_count_ ? min_ : Duration::zero(); }
  Duration max() const { return max_; }
  Duration mean() const {
    return total_count_ ? Duration(sum_us_ / total_count_) : Duration::zero();
  }
  // q in [0,1]. Exact (nearest-rank over retained raw samples) while the
  // histogram holds <= kExactSamples recordings; bucket-upper-bound
  // approximation beyond that. The old always-bucketed path had an
  // interpolation edge at n=1,2: with two samples 1ms and 100ms, p50
  // reported the 1ms sample's *bucket upper bound* clamped into [min,max] —
  // ~1.08ms rather than 1ms — and tiny-n hedge/threshold triggers keyed off
  // that drift. Nearest-rank on the raw samples makes small-n percentiles
  // exact: n=1 reports the sample at every q; n=2 reports the lower sample
  // for q<=0.5 and the upper one above.
  Duration percentile(double q) const;
  Duration p50() const { return percentile(0.50); }
  Duration p95() const { return percentile(0.95); }
  Duration p99() const { return percentile(0.99); }

  void merge(const LatencyHistogram& other);
  // The recordings made since `earlier` was copied from this same
  // instrument (a windowed delta of a cumulative histogram): bucket counts,
  // count and sum subtract. While both sides are still exact, `earlier`'s
  // raw samples are a prefix of ours (record() only appends), so the delta
  // keeps the exact suffix and its percentiles are exact nearest-rank over
  // just the window; after the bucketed flip the delta is bucket-resolution
  // with min/max clamped to the full-run envelope. Returns an empty
  // histogram if `earlier` is not a plausible prefix (more recordings than
  // this).
  LatencyHistogram delta_since(const LatencyHistogram& earlier) const;
  void reset();

  // e.g. "n=1000 mean=12.3ms p50=10ms p95=40ms p99=80ms max=120ms"
  std::string summary() const;

 private:
  static constexpr int kBuckets = 256;
  // Raw samples retained for exact percentiles until the histogram grows
  // past this; beyond it the log-bucketed approximation (<~6% error) takes
  // over and the raw buffer is dropped.
  static constexpr int kExactSamples = 64;
  static int bucket_for(int64_t us);
  static int64_t bucket_upper_us(int bucket);

  std::array<int64_t, kBuckets> counts_{};
  int64_t total_count_ = 0;
  int64_t sum_us_ = 0;
  int64_t exact_cap_ = kExactSamples;
  Duration min_ = Duration::max();
  Duration max_ = Duration::zero();
  bool exact_ = true;
  std::vector<int64_t> raw_;  // sorted lazily at percentile() time
};

// Simple time-series recorder: (time, value) samples for timeline figures
// (e.g. Fig. 7's put-latency-over-time plot).
class TimeSeries {
 public:
  void record(TimePoint t, double value) { samples_.push_back({t, value}); }
  struct Sample {
    TimePoint time;
    double value;
  };
  const std::vector<Sample>& samples() const { return samples_; }
  void clear() { samples_.clear(); }

 private:
  std::vector<Sample> samples_;
};

}  // namespace wiera
