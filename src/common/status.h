// Status / Result<T> error-handling primitives used across the Wiera codebase.
//
// We avoid exceptions on data paths (the simulator resumes coroutines from a
// scheduler loop where an escaping exception would tear down the whole
// simulation); operations that can fail return Status or Result<T> instead.
#pragma once

#include <cassert>
#include <optional>
#include <string>
#include <string_view>
#include <utility>
#include <variant>

namespace wiera {

// Canonical error space, loosely modelled on absl::StatusCode but trimmed to
// what a storage middleware needs.
enum class StatusCode {
  kOk = 0,
  kNotFound,
  kAlreadyExists,
  kInvalidArgument,
  kFailedPrecondition,
  kOutOfRange,
  kResourceExhausted,  // tier full, quota exceeded
  kUnavailable,        // node down, network outage
  kDeadlineExceeded,
  kAborted,            // e.g. lost a conflict-resolution race
  kUnimplemented,
  kInternal,
  kDataLoss,  // checksum mismatch, torn write, unrecoverable corruption
};

std::string_view status_code_name(StatusCode code);

// A success-or-error value. Cheap to copy on success (message empty).
class [[nodiscard]] Status {
 public:
  Status() : code_(StatusCode::kOk) {}
  Status(StatusCode code, std::string message)
      : code_(code), message_(std::move(message)) {
    assert(code != StatusCode::kOk && "use Status() / ok_status() for OK");
  }

  bool ok() const { return code_ == StatusCode::kOk; }
  StatusCode code() const { return code_; }
  const std::string& message() const { return message_; }

  // "CODE: message" rendering for logs and test failures.
  std::string to_string() const;

  friend bool operator==(const Status& a, const Status& b) {
    return a.code_ == b.code_;
  }

 private:
  StatusCode code_;
  std::string message_;
};

inline Status ok_status() { return Status(); }
Status not_found(std::string_view what);
Status already_exists(std::string_view what);
Status invalid_argument(std::string_view what);
Status failed_precondition(std::string_view what);
Status out_of_range(std::string_view what);
Status resource_exhausted(std::string_view what);
Status unavailable(std::string_view what);
Status deadline_exceeded(std::string_view what);
Status aborted(std::string_view what);
Status unimplemented(std::string_view what);
Status internal_error(std::string_view what);
Status data_loss(std::string_view what);

// Result<T>: either a value or a non-OK Status.
template <typename T>
class [[nodiscard]] Result {
 public:
  Result(T value) : rep_(std::move(value)) {}  // NOLINT(google-explicit-constructor)
  Result(Status status) : rep_(std::move(status)) {  // NOLINT
    assert(!std::get<Status>(rep_).ok() &&
           "Result<T> must not be constructed from an OK status");
  }

  bool ok() const { return std::holds_alternative<T>(rep_); }

  const T& value() const& {
    assert(ok());
    return std::get<T>(rep_);
  }
  T& value() & {
    assert(ok());
    return std::get<T>(rep_);
  }
  T&& value() && {
    assert(ok());
    return std::get<T>(std::move(rep_));
  }

  // Status of the result; OK when a value is held.
  Status status() const {
    if (ok()) return Status();
    return std::get<Status>(rep_);
  }

  const T& value_or(const T& fallback) const {
    return ok() ? std::get<T>(rep_) : fallback;
  }

  const T* operator->() const {
    assert(ok());
    return &std::get<T>(rep_);
  }
  T* operator->() {
    assert(ok());
    return &std::get<T>(rep_);
  }
  const T& operator*() const { return value(); }
  T& operator*() { return value(); }

 private:
  std::variant<T, Status> rep_;
};

// Propagation helpers (statement-expression free, usable in coroutines).
#define WIERA_RETURN_IF_ERROR(expr)                   \
  do {                                                \
    ::wiera::Status _st = (expr);                     \
    if (!_st.ok()) return _st;                        \
  } while (0)

// Coroutine variant: co_return instead of return.
#define WIERA_CO_RETURN_IF_ERROR(expr)                \
  do {                                                \
    ::wiera::Status _st = (expr);                     \
    if (!_st.ok()) co_return _st;                     \
  } while (0)

#define WIERA_CONCAT_INNER_(a, b) a##b
#define WIERA_CONCAT_(a, b) WIERA_CONCAT_INNER_(a, b)

#define WIERA_ASSIGN_OR_RETURN_IMPL_(var, lhs, rexpr) \
  auto var = (rexpr);                                 \
  if (!var.ok()) return var.status();                 \
  lhs = std::move(var).value()

#define WIERA_ASSIGN_OR_RETURN(lhs, rexpr) \
  WIERA_ASSIGN_OR_RETURN_IMPL_(WIERA_CONCAT_(_wiera_res_, __LINE__), lhs, rexpr)

}  // namespace wiera
