#include "common/logging.h"

#include <cstdlib>
#include <cstring>

#include "common/strings.h"

namespace wiera {

namespace {
LogLevel level_from_env() {
  const char* env = std::getenv("WIERA_LOG");
  if (env == nullptr) return LogLevel::kOff;
  if (std::strcmp(env, "debug") == 0) return LogLevel::kDebug;
  if (std::strcmp(env, "info") == 0) return LogLevel::kInfo;
  if (std::strcmp(env, "warn") == 0) return LogLevel::kWarn;
  if (std::strcmp(env, "error") == 0) return LogLevel::kError;
  return LogLevel::kOff;
}

const char* level_tag(LogLevel level) {
  switch (level) {
    case LogLevel::kDebug: return "D";
    case LogLevel::kInfo: return "I";
    case LogLevel::kWarn: return "W";
    case LogLevel::kError: return "E";
    case LogLevel::kOff: return "?";
  }
  return "?";
}
}  // namespace

Logger::Logger() : level_(level_from_env()) {
  const char* json = std::getenv("WIERA_LOG_JSON");
  json_ = json != nullptr && std::strcmp(json, "1") == 0;
}

Logger& Logger::instance() {
  static Logger logger;
  return logger;
}

void Logger::write(LogLevel level, std::string_view component,
                   std::string_view msg) {
  if (!enabled(level)) return;
  if (json_) {
    // Machine-parseable JSONL variant of the log stream (WIERA_LOG_JSON=1);
    // same schema family as the obs journal (docs/OBSERVABILITY.md).
    const int64_t ts =
        time_source_ ? (time_source_() - TimePoint::origin()).us() : -1;
    std::fprintf(stderr,
                 "{\"ts_us\":%lld,\"level\":\"%s\",\"component\":\"%s\","
                 "\"msg\":\"%s\"}\n",
                 static_cast<long long>(ts), level_tag(level),
                 json_escape(component).c_str(), json_escape(msg).c_str());
    return;
  }
  if (time_source_) {
    std::fprintf(stderr, "[%s %s %.*s] %.*s\n", level_tag(level),
                 time_source_().to_string().c_str(),
                 static_cast<int>(component.size()), component.data(),
                 static_cast<int>(msg.size()), msg.data());
  } else {
    std::fprintf(stderr, "[%s %.*s] %.*s\n", level_tag(level),
                 static_cast<int>(component.size()), component.data(),
                 static_cast<int>(msg.size()), msg.data());
  }
}

}  // namespace wiera
