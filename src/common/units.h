// Data-size units. Storage-tier capacities and object sizes are plain
// int64 byte counts; these helpers keep call sites readable ("5 * GiB").
#pragma once

#include <cstdint>

namespace wiera {

inline constexpr int64_t KiB = 1024;
inline constexpr int64_t MiB = 1024 * KiB;
inline constexpr int64_t GiB = 1024 * MiB;
inline constexpr int64_t TiB = 1024 * GiB;

// Decimal GB, used by the pricing model (cloud providers bill decimal GB).
inline constexpr int64_t GB = 1000LL * 1000 * 1000;

inline constexpr double bytes_to_gb(int64_t bytes) {
  return static_cast<double>(bytes) / static_cast<double>(GB);
}

}  // namespace wiera
