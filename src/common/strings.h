// Small string helpers shared by the policy parser, config handling and
// report printers. Kept header-only; all functions are pure.
#pragma once

#include <cstdarg>
#include <cstdio>
#include <string>
#include <string_view>
#include <vector>

namespace wiera {

inline std::string_view trim(std::string_view s) {
  const char* ws = " \t\r\n";
  const auto b = s.find_first_not_of(ws);
  if (b == std::string_view::npos) return {};
  const auto e = s.find_last_not_of(ws);
  return s.substr(b, e - b + 1);
}

inline std::vector<std::string> split(std::string_view s, char sep) {
  std::vector<std::string> out;
  size_t start = 0;
  while (true) {
    const auto pos = s.find(sep, start);
    if (pos == std::string_view::npos) {
      out.emplace_back(s.substr(start));
      return out;
    }
    out.emplace_back(s.substr(start, pos - start));
    start = pos + 1;
  }
}

inline bool starts_with(std::string_view s, std::string_view prefix) {
  return s.size() >= prefix.size() && s.substr(0, prefix.size()) == prefix;
}

inline std::string to_lower(std::string_view s) {
  std::string out(s);
  for (char& c : out) {
    if (c >= 'A' && c <= 'Z') c = static_cast<char>(c - 'A' + 'a');
  }
  return out;
}

// Minimal JSON string escaping (quotes, backslash, control chars) for the
// event journal and registry snapshots; no unicode handling beyond passing
// UTF-8 bytes through untouched.
inline std::string json_escape(std::string_view s) {
  std::string out;
  out.reserve(s.size());
  for (char c : s) {
    switch (c) {
      case '"': out += "\\\""; break;
      case '\\': out += "\\\\"; break;
      case '\n': out += "\\n"; break;
      case '\r': out += "\\r"; break;
      case '\t': out += "\\t"; break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          char buf[8];
          std::snprintf(buf, sizeof(buf), "\\u%04x",
                        static_cast<unsigned char>(c));
          out += buf;
        } else {
          out += c;
        }
    }
  }
  return out;
}

// printf-style formatting into std::string.
inline std::string str_format(const char* fmt, ...)
    __attribute__((format(printf, 1, 2)));

inline std::string str_format(const char* fmt, ...) {
  va_list args;
  va_start(args, fmt);
  va_list args2;
  va_copy(args2, args);
  const int n = std::vsnprintf(nullptr, 0, fmt, args);
  va_end(args);
  std::string out;
  if (n > 0) {
    out.resize(static_cast<size_t>(n));
    std::vsnprintf(out.data(), out.size() + 1, fmt, args2);
  }
  va_end(args2);
  return out;
}

}  // namespace wiera
