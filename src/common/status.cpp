#include "common/status.h"

namespace wiera {

std::string_view status_code_name(StatusCode code) {
  switch (code) {
    case StatusCode::kOk: return "OK";
    case StatusCode::kNotFound: return "NOT_FOUND";
    case StatusCode::kAlreadyExists: return "ALREADY_EXISTS";
    case StatusCode::kInvalidArgument: return "INVALID_ARGUMENT";
    case StatusCode::kFailedPrecondition: return "FAILED_PRECONDITION";
    case StatusCode::kOutOfRange: return "OUT_OF_RANGE";
    case StatusCode::kResourceExhausted: return "RESOURCE_EXHAUSTED";
    case StatusCode::kUnavailable: return "UNAVAILABLE";
    case StatusCode::kDeadlineExceeded: return "DEADLINE_EXCEEDED";
    case StatusCode::kAborted: return "ABORTED";
    case StatusCode::kUnimplemented: return "UNIMPLEMENTED";
    case StatusCode::kInternal: return "INTERNAL";
    case StatusCode::kDataLoss: return "DATA_LOSS";
  }
  return "UNKNOWN";
}

std::string Status::to_string() const {
  if (ok()) return "OK";
  std::string out(status_code_name(code_));
  if (!message_.empty()) {
    out += ": ";
    out += message_;
  }
  return out;
}

namespace {
Status make(StatusCode code, std::string_view what) {
  return Status(code, std::string(what));
}
}  // namespace

Status not_found(std::string_view what) { return make(StatusCode::kNotFound, what); }
Status already_exists(std::string_view what) { return make(StatusCode::kAlreadyExists, what); }
Status invalid_argument(std::string_view what) { return make(StatusCode::kInvalidArgument, what); }
Status failed_precondition(std::string_view what) { return make(StatusCode::kFailedPrecondition, what); }
Status out_of_range(std::string_view what) { return make(StatusCode::kOutOfRange, what); }
Status resource_exhausted(std::string_view what) { return make(StatusCode::kResourceExhausted, what); }
Status unavailable(std::string_view what) { return make(StatusCode::kUnavailable, what); }
Status deadline_exceeded(std::string_view what) { return make(StatusCode::kDeadlineExceeded, what); }
Status aborted(std::string_view what) { return make(StatusCode::kAborted, what); }
Status unimplemented(std::string_view what) { return make(StatusCode::kUnimplemented, what); }
Status internal_error(std::string_view what) { return make(StatusCode::kInternal, what); }
Status data_loss(std::string_view what) { return make(StatusCode::kDataLoss, what); }

}  // namespace wiera
