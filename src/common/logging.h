// Minimal leveled logger. Simulation components log with virtual timestamps
// (set via set_time_source) so traces line up with experiment timelines.
// Logging is off by default in tests/benches; enable with WIERA_LOG=debug.
#pragma once

#include <cstdio>
#include <functional>
#include <sstream>
#include <string>

#include "common/time.h"

namespace wiera {

enum class LogLevel { kDebug = 0, kInfo, kWarn, kError, kOff };

class Logger {
 public:
  static Logger& instance();

  void set_level(LogLevel level) { level_ = level; }
  LogLevel level() const { return level_; }
  bool enabled(LogLevel level) const { return level >= level_; }

  // Virtual-clock hook; when unset, messages carry no timestamp.
  void set_time_source(std::function<TimePoint()> source) {
    time_source_ = std::move(source);
  }
  void clear_time_source() { time_source_ = nullptr; }

  void write(LogLevel level, std::string_view component, std::string_view msg);

  // JSONL output mode (WIERA_LOG_JSON=1): one JSON object per line instead
  // of the human-format prefix; see docs/OBSERVABILITY.md.
  void set_json(bool on) { json_ = on; }
  bool json() const { return json_; }

 private:
  Logger();
  LogLevel level_;
  bool json_ = false;
  std::function<TimePoint()> time_source_;
};

namespace log_internal {
struct Message {
  Message(LogLevel level, std::string_view component)
      : level_(level), component_(component) {}
  ~Message() {
    Logger::instance().write(level_, component_, stream_.str());
  }
  template <typename T>
  Message& operator<<(const T& v) {
    stream_ << v;
    return *this;
  }
  LogLevel level_;
  std::string component_;
  std::ostringstream stream_;
};
}  // namespace log_internal

#define WIERA_LOG(level, component)                                  \
  if (!::wiera::Logger::instance().enabled(level)) {                 \
  } else                                                             \
    ::wiera::log_internal::Message(level, component)

#define WLOG_DEBUG(component) WIERA_LOG(::wiera::LogLevel::kDebug, component)
#define WLOG_INFO(component) WIERA_LOG(::wiera::LogLevel::kInfo, component)
#define WLOG_WARN(component) WIERA_LOG(::wiera::LogLevel::kWarn, component)
#define WLOG_ERROR(component) WIERA_LOG(::wiera::LogLevel::kError, component)

}  // namespace wiera
