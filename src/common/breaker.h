// Per-target circuit breaker (closed / open / half-open).
//
// Gates traffic to a peer that keeps failing: after `failure_threshold`
// consecutive failures the breaker opens and callers fail fast instead of
// paying the unreachable-timeout on every attempt; after `open_for` of
// virtual time one probe is admitted (half-open) and its outcome decides
// between closing again and re-opening. Time is passed in explicitly so the
// breaker is simulation-agnostic and unit-testable without a Simulation.
#pragma once

#include <cstdint>
#include <functional>
#include <string>

#include "common/time.h"

namespace wiera {

class CircuitBreaker {
 public:
  enum class State : uint8_t { kClosed, kOpen, kHalfOpen };

  struct Options {
    int failure_threshold = 5;        // consecutive failures to open
    Duration open_for = sec(1);       // how long to fail fast before probing
  };

  CircuitBreaker() = default;
  explicit CircuitBreaker(Options options) : options_(options) {}

  // True when a call may be attempted now. In the open state this flips to
  // half-open once `open_for` elapsed and admits exactly one probe; further
  // callers keep failing fast until the probe reports back.
  bool allow(TimePoint now);

  void record_success();
  void record_failure(TimePoint now);

  State state() const { return state_; }
  int64_t opens() const { return opens_; }
  int consecutive_failures() const { return consecutive_failures_; }

  // Invoked on every state transition (old, new). The peer folds these into
  // the determinism trace hash, so a replayed chaos run must trip the same
  // breakers at the same virtual times.
  void set_transition_hook(std::function<void(State, State)> hook) {
    transition_ = std::move(hook);
  }

  static const char* state_name(State state);

 private:
  void transition(State to);

  Options options_;
  State state_ = State::kClosed;
  int consecutive_failures_ = 0;
  TimePoint opened_at_;
  bool probe_in_flight_ = false;
  int64_t opens_ = 0;
  std::function<void(State, State)> transition_;
};

}  // namespace wiera
