// Request-lifecycle context: a deadline plus a shared cancellation flag,
// carried by value along a request path (client -> RPC -> peer -> tiers).
//
// The context does not enforce anything by itself; each layer checks
// `expired()` / `cancelled()` at its own suspension points and returns
// kDeadlineExceeded, so cancellation is cooperative and every abandoned
// continuation stays visible to the SimChecker (no detached leaks).
#pragma once

#include <algorithm>
#include <memory>

#include "common/time.h"
#include "common/trace.h"

namespace wiera {

class Context {
 public:
  // Default: no deadline, never cancelled, zero allocation.
  Context() = default;

  static Context with_deadline(TimePoint deadline) {
    Context ctx;
    ctx.deadline_ = deadline;
    ctx.cancel_ = std::make_shared<CancelState>();
    return ctx;
  }

  // Trace identity for this request: copied across layers with the context
  // and stamped onto outgoing RPC frames. Inactive (all-zero) when the
  // request is untraced; plain data, so carrying it costs nothing.
  TraceContext trace;

  TimePoint deadline() const { return deadline_; }
  bool has_deadline() const { return deadline_ != TimePoint::max(); }
  bool expired(TimePoint now) const { return now >= deadline_; }
  // Time left before the deadline; Duration::max() when there is none.
  Duration remaining(TimePoint now) const {
    if (!has_deadline()) return Duration::max();
    return deadline_ > now ? deadline_ - now : Duration::zero();
  }

  // Cooperative cancellation: every copy of this context observes it.
  void cancel() const {
    if (cancel_ != nullptr) cancel_->cancelled = true;
  }
  bool cancelled() const { return cancel_ != nullptr && cancel_->cancelled; }

 private:
  struct CancelState {
    bool cancelled = false;
  };

  TimePoint deadline_ = TimePoint::max();
  std::shared_ptr<CancelState> cancel_;  // null until a deadline is attached
};

// Token-bucket retry budget: retries (client failovers, replication
// re-sends) spend a token; the bucket refills at `tokens_per_sec` up to
// `capacity`. Under a brownout the first retries go through and the rest are
// denied, so backoff loops cannot amplify the overload into a retry storm.
// A default-constructed budget is disabled and always allows.
class RetryBudget {
 public:
  RetryBudget() = default;
  RetryBudget(double tokens_per_sec, double capacity)
      : rate_(tokens_per_sec), capacity_(capacity), tokens_(capacity) {}

  bool enabled() const { return rate_ > 0; }

  bool try_spend(TimePoint now) {
    if (!enabled()) return true;
    tokens_ = std::min(capacity_,
                       tokens_ + rate_ * (now - last_).seconds());
    last_ = now;
    if (tokens_ >= 1.0) {
      tokens_ -= 1.0;
      return true;
    }
    denied_++;
    return false;
  }

  int64_t denied() const { return denied_; }

 private:
  double rate_ = 0;
  double capacity_ = 0;
  double tokens_ = 0;
  TimePoint last_;
  int64_t denied_ = 0;
};

}  // namespace wiera
