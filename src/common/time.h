// Virtual-time types for the discrete-event simulation.
//
// All latencies and timestamps in the system are expressed in these strong
// types. The unit is microseconds: fine enough for memory-tier service times
// (hundreds of µs) and wide enough (int64) for months of simulated time,
// which the cost model needs.
#pragma once

#include <cstdint>
#include <string>

namespace wiera {

class Duration {
 public:
  constexpr Duration() : us_(0) {}
  constexpr explicit Duration(int64_t microseconds) : us_(microseconds) {}

  static constexpr Duration zero() { return Duration(0); }
  static constexpr Duration max() { return Duration(INT64_MAX); }

  constexpr int64_t us() const { return us_; }
  constexpr double ms() const { return static_cast<double>(us_) / 1e3; }
  constexpr double seconds() const { return static_cast<double>(us_) / 1e6; }
  constexpr double hours() const { return static_cast<double>(us_) / 3.6e9; }

  constexpr Duration operator+(Duration o) const { return Duration(us_ + o.us_); }
  constexpr Duration operator-(Duration o) const { return Duration(us_ - o.us_); }
  constexpr Duration operator*(double k) const {
    return Duration(static_cast<int64_t>(static_cast<double>(us_) * k));
  }
  constexpr Duration operator/(int64_t k) const { return Duration(us_ / k); }
  Duration& operator+=(Duration o) { us_ += o.us_; return *this; }
  Duration& operator-=(Duration o) { us_ -= o.us_; return *this; }

  constexpr auto operator<=>(const Duration&) const = default;

  std::string to_string() const;  // human-readable, e.g. "12.5ms"

 private:
  int64_t us_;
};

constexpr Duration usec(int64_t v) { return Duration(v); }
constexpr Duration msec(double v) { return Duration(static_cast<int64_t>(v * 1e3)); }
constexpr Duration sec(double v) { return Duration(static_cast<int64_t>(v * 1e6)); }
constexpr Duration minutes(double v) { return Duration(static_cast<int64_t>(v * 6e7)); }
constexpr Duration hoursd(double v) { return Duration(static_cast<int64_t>(v * 3.6e9)); }

// A point in virtual time, measured from simulation start.
class TimePoint {
 public:
  constexpr TimePoint() : us_(0) {}
  constexpr explicit TimePoint(int64_t microseconds) : us_(microseconds) {}

  static constexpr TimePoint origin() { return TimePoint(0); }
  static constexpr TimePoint max() { return TimePoint(INT64_MAX); }

  constexpr int64_t us() const { return us_; }
  constexpr double seconds() const { return static_cast<double>(us_) / 1e6; }

  constexpr TimePoint operator+(Duration d) const { return TimePoint(us_ + d.us()); }
  constexpr TimePoint operator-(Duration d) const { return TimePoint(us_ - d.us()); }
  constexpr Duration operator-(TimePoint o) const { return Duration(us_ - o.us_); }

  constexpr auto operator<=>(const TimePoint&) const = default;

  std::string to_string() const;

 private:
  int64_t us_;
};

}  // namespace wiera
