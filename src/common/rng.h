// Deterministic random number generation for simulations.
//
// xoshiro256** seeded via SplitMix64 — fast, high quality, and most
// importantly *stable across platforms and standard libraries* (std::
// distributions are not guaranteed to produce identical streams everywhere,
// which would break bit-reproducible experiments). All distributions here
// are implemented by hand for that reason.
#pragma once

#include <cassert>
#include <cmath>
#include <cstdint>

namespace wiera {

class Rng {
 public:
  explicit Rng(uint64_t seed = 0x9E3779B97F4A7C15ull) { reseed(seed); }

  void reseed(uint64_t seed) {
    // SplitMix64 expansion of the seed into the xoshiro state.
    uint64_t x = seed;
    for (auto& s : state_) {
      x += 0x9E3779B97F4A7C15ull;
      uint64_t z = x;
      z = (z ^ (z >> 30)) * 0xBF58476D1CE4E5B9ull;
      z = (z ^ (z >> 27)) * 0x94D049BB133111EBull;
      s = z ^ (z >> 31);
    }
    has_cached_gaussian_ = false;
  }

  // Core generator: xoshiro256**.
  uint64_t next_u64() {
    const uint64_t result = rotl(state_[1] * 5, 7) * 9;
    const uint64_t t = state_[1] << 17;
    state_[2] ^= state_[0];
    state_[3] ^= state_[1];
    state_[1] ^= state_[2];
    state_[0] ^= state_[3];
    state_[2] ^= t;
    state_[3] = rotl(state_[3], 45);
    return result;
  }

  // Uniform double in [0, 1).
  double next_double() {
    return static_cast<double>(next_u64() >> 11) * 0x1.0p-53;
  }

  // Uniform integer in [0, bound) without modulo bias (Lemire's method).
  uint64_t next_below(uint64_t bound) {
    assert(bound > 0);
    __uint128_t m = static_cast<__uint128_t>(next_u64()) * bound;
    auto lo = static_cast<uint64_t>(m);
    if (lo < bound) {
      const uint64_t threshold = (0 - bound) % bound;
      while (lo < threshold) {
        m = static_cast<__uint128_t>(next_u64()) * bound;
        lo = static_cast<uint64_t>(m);
      }
    }
    return static_cast<uint64_t>(m >> 64);
  }

  // Uniform integer in [lo, hi] inclusive.
  int64_t uniform_int(int64_t lo, int64_t hi) {
    assert(lo <= hi);
    return lo + static_cast<int64_t>(
                    next_below(static_cast<uint64_t>(hi - lo) + 1));
  }

  double uniform(double lo, double hi) {
    return lo + (hi - lo) * next_double();
  }

  bool bernoulli(double p) { return next_double() < p; }

  // Standard normal via Marsaglia polar method (deterministic given stream).
  double gaussian() {
    if (has_cached_gaussian_) {
      has_cached_gaussian_ = false;
      return cached_gaussian_;
    }
    double u, v, s;
    do {
      u = uniform(-1.0, 1.0);
      v = uniform(-1.0, 1.0);
      s = u * u + v * v;
    } while (s >= 1.0 || s == 0.0);
    const double mul = std::sqrt(-2.0 * std::log(s) / s);
    cached_gaussian_ = v * mul;
    has_cached_gaussian_ = true;
    return u * mul;
  }

  double gaussian(double mean, double stddev) {
    return mean + stddev * gaussian();
  }

  // Exponential with the given mean (inter-arrival style jitter).
  double exponential(double mean) {
    assert(mean > 0);
    double u;
    do { u = next_double(); } while (u <= 0.0);
    return -mean * std::log(u);
  }

  // Derive an independent child stream (for per-node/per-client RNGs).
  Rng fork() { return Rng(next_u64() ^ 0xD1B54A32D192ED03ull); }

 private:
  static uint64_t rotl(uint64_t x, int k) {
    return (x << k) | (x >> (64 - k));
  }

  uint64_t state_[4] = {};
  bool has_cached_gaussian_ = false;
  double cached_gaussian_ = 0.0;
};

}  // namespace wiera
