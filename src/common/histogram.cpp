#include "common/histogram.h"

#include <cmath>
#include <cstddef>
#include <cstdio>

namespace wiera {

namespace {
// Geometric bucket growth factor. Bucket 0 covers [0, 1] µs.
constexpr double kGrowth = 1.12;
}  // namespace

int LatencyHistogram::bucket_for(int64_t us) {
  if (us <= 1) return 0;
  const int b = static_cast<int>(std::log(static_cast<double>(us)) /
                                 std::log(kGrowth)) + 1;
  return std::min(b, kBuckets - 1);
}

int64_t LatencyHistogram::bucket_upper_us(int bucket) {
  if (bucket <= 0) return 1;
  return static_cast<int64_t>(std::pow(kGrowth, bucket));
}

void LatencyHistogram::record(Duration d) {
  const int64_t us = std::max<int64_t>(d.us(), 0);
  counts_[static_cast<size_t>(bucket_for(us))]++;
  total_count_++;
  sum_us_ += us;
  if (d < min_) min_ = d;
  if (d > max_) max_ = d;
  if (exact_) {
    if (total_count_ <= exact_cap_) {
      raw_.push_back(us);
    } else {
      exact_ = false;
      raw_.clear();
      raw_.shrink_to_fit();
    }
  }
}

Duration LatencyHistogram::percentile(double q) const {
  if (total_count_ == 0) return Duration::zero();
  q = std::clamp(q, 0.0, 1.0);
  if (exact_) {
    // Exact nearest-rank: rank max(1, ceil(q*n)) in the sorted samples.
    std::vector<int64_t> sorted = raw_;
    std::sort(sorted.begin(), sorted.end());
    const auto rank = std::max<int64_t>(
        1, static_cast<int64_t>(
               std::ceil(q * static_cast<double>(total_count_))));
    return Duration(sorted[static_cast<size_t>(rank - 1)]);
  }
  // target >= 1: p0 means "the smallest sample", not "before any sample"
  // (a target of 0 would match bucket 0 and report 1µs even when every
  // sample is far larger).
  const auto target = std::max<int64_t>(
      1, static_cast<int64_t>(
             std::ceil(q * static_cast<double>(total_count_))));
  int64_t seen = 0;
  for (int b = 0; b < kBuckets; ++b) {
    seen += counts_[static_cast<size_t>(b)];
    if (seen >= target) {
      // Bucket upper bounds are coarse; the true samples all lie within
      // [min_, max_], so clamp into that range (single-sample histograms
      // then report the exact value at every percentile).
      return Duration(std::clamp(bucket_upper_us(b), min_.us(), max_.us()));
    }
  }
  return max_;
}

void LatencyHistogram::merge(const LatencyHistogram& other) {
  for (int b = 0; b < kBuckets; ++b) {
    counts_[static_cast<size_t>(b)] += other.counts_[static_cast<size_t>(b)];
  }
  total_count_ += other.total_count_;
  sum_us_ += other.sum_us_;
  if (other.total_count_ > 0) {
    min_ = std::min(min_, other.min_);
    max_ = std::max(max_, other.max_);
  }
  // Stay exact only if both sides are and the union still fits.
  if (exact_ && other.exact_ && total_count_ <= exact_cap_) {
    raw_.insert(raw_.end(), other.raw_.begin(), other.raw_.end());
  } else {
    exact_ = false;
    raw_.clear();
    raw_.shrink_to_fit();
  }
}

LatencyHistogram LatencyHistogram::delta_since(
    const LatencyHistogram& earlier) const {
  LatencyHistogram out(exact_cap_);
  if (earlier.total_count_ > total_count_) return out;  // not a prefix
  for (int b = 0; b < kBuckets; ++b) {
    out.counts_[static_cast<size_t>(b)] =
        counts_[static_cast<size_t>(b)] -
        earlier.counts_[static_cast<size_t>(b)];
  }
  out.total_count_ = total_count_ - earlier.total_count_;
  out.sum_us_ = sum_us_ - earlier.sum_us_;
  if (out.total_count_ == 0) return LatencyHistogram(exact_cap_);
  if (exact_ && earlier.exact_) {
    // record() appends raw samples in arrival order, so the snapshot's
    // samples are a prefix and the window's samples are exactly the suffix.
    out.raw_.assign(raw_.begin() +
                        static_cast<ptrdiff_t>(earlier.total_count_),
                    raw_.end());
    out.min_ = Duration::max();
    out.max_ = Duration::zero();
    for (const int64_t us : out.raw_) {
      if (Duration(us) < out.min_) out.min_ = Duration(us);
      if (Duration(us) > out.max_) out.max_ = Duration(us);
    }
  } else {
    // Bucket resolution only: the window's true min/max are unknowable, so
    // keep the full-run envelope for percentile clamping.
    out.exact_ = false;
    out.min_ = total_count_ ? min_ : Duration::zero();
    out.max_ = max_;
  }
  return out;
}

void LatencyHistogram::reset() {
  counts_.fill(0);
  total_count_ = 0;
  sum_us_ = 0;
  min_ = Duration::max();
  max_ = Duration::zero();
  exact_ = true;
  raw_.clear();
}

std::string LatencyHistogram::summary() const {
  char buf[256];
  std::snprintf(buf, sizeof(buf),
                "n=%lld mean=%s p50=%s p95=%s p99=%s max=%s",
                static_cast<long long>(total_count_),
                mean().to_string().c_str(), p50().to_string().c_str(),
                p95().to_string().c_str(), p99().to_string().c_str(),
                max().to_string().c_str());
  return buf;
}

}  // namespace wiera
