#include "common/time.h"

#include <cmath>
#include <cstdio>

namespace wiera {

std::string Duration::to_string() const {
  char buf[64];
  const double abs_us = std::abs(static_cast<double>(us_));
  if (abs_us < 1e3) {
    std::snprintf(buf, sizeof(buf), "%lldus", static_cast<long long>(us_));
  } else if (abs_us < 1e6) {
    std::snprintf(buf, sizeof(buf), "%.3gms", static_cast<double>(us_) / 1e3);
  } else if (abs_us < 6e7) {
    std::snprintf(buf, sizeof(buf), "%.4gs", static_cast<double>(us_) / 1e6);
  } else {
    std::snprintf(buf, sizeof(buf), "%.5gmin", static_cast<double>(us_) / 6e7);
  }
  return buf;
}

std::string TimePoint::to_string() const {
  char buf[64];
  std::snprintf(buf, sizeof(buf), "t+%.6fs", static_cast<double>(us_) / 1e6);
  return buf;
}

}  // namespace wiera
