#include "common/breaker.h"

namespace wiera {

const char* CircuitBreaker::state_name(State state) {
  switch (state) {
    case State::kClosed: return "closed";
    case State::kOpen: return "open";
    case State::kHalfOpen: return "half-open";
  }
  return "?";
}

void CircuitBreaker::transition(State to) {
  if (state_ == to) return;
  const State from = state_;
  state_ = to;
  if (to == State::kOpen) opens_++;
  if (transition_) transition_(from, to);
}

bool CircuitBreaker::allow(TimePoint now) {
  switch (state_) {
    case State::kClosed:
      return true;
    case State::kOpen:
      if (now - opened_at_ >= options_.open_for) {
        transition(State::kHalfOpen);
        probe_in_flight_ = true;
        return true;
      }
      return false;
    case State::kHalfOpen:
      // One probe at a time; everyone else keeps failing fast.
      if (!probe_in_flight_) {
        probe_in_flight_ = true;
        return true;
      }
      return false;
  }
  return true;
}

void CircuitBreaker::record_success() {
  consecutive_failures_ = 0;
  probe_in_flight_ = false;
  transition(State::kClosed);
}

void CircuitBreaker::record_failure(TimePoint now) {
  consecutive_failures_++;
  if (state_ == State::kHalfOpen) {
    // The probe failed: back to fully open for another window.
    probe_in_flight_ = false;
    opened_at_ = now;
    transition(State::kOpen);
    return;
  }
  if (state_ == State::kClosed &&
      consecutive_failures_ >= options_.failure_threshold) {
    opened_at_ = now;
    transition(State::kOpen);
  }
}

}  // namespace wiera
