// Object checksums (docs/INTEGRITY.md).
//
// Every stored/replicated object version carries a 64-bit FNV-1a checksum
// bound to (key, version, payload). Binding the key and version — not just
// the payload — means a checksum cannot validate a payload that was swapped
// between keys or replayed under a different version, only the exact object
// version it was computed for.
#pragma once

#include <cstdint>
#include <string_view>

#include "common/bytes.h"

namespace wiera {

// Checksum of one object version. `version` is 0 for a fresh client PUT
// (the version is not yet allocated); the storing replica recomputes the
// binding checksum once the version is known.
inline uint64_t object_checksum(std::string_view key, int64_t version,
                                std::string_view payload) {
  uint64_t h = 0xCBF29CE484222325ull;
  auto mix = [&h](const void* data, size_t len) {
    const auto* p = static_cast<const uint8_t*>(data);
    for (size_t i = 0; i < len; ++i) {
      h ^= p[i];
      h *= 0x100000001B3ull;
    }
  };
  mix(key.data(), key.size());
  // Separator keeps ("ab", "c") distinct from ("a", "bc").
  const uint8_t sep = 0xFF;
  mix(&sep, 1);
  mix(&version, sizeof(version));
  mix(payload.data(), payload.size());
  return h;
}

inline uint64_t object_checksum(std::string_view key, int64_t version,
                                const Blob& payload) {
  return object_checksum(key, version, payload.view());
}

}  // namespace wiera
