// Dapper-style trace identity carried by value along a request path
// (client -> RPC frame -> peer handler -> replication fan-out -> tier).
//
// Lives in common/ (not obs/) so the RPC frame and the wiera message structs
// can carry it without depending on the telemetry library. Ids are assigned
// by obs::Tracer from a dedicated RNG stream seeded from the simulation seed,
// so traces are deterministic and replayable; an all-zero context means "not
// traced" and is ignored by every consumer.
#pragma once

#include <cstdint>

namespace wiera {

struct TraceContext {
  uint64_t trace_id = 0;        // whole-request identity, shared by all spans
  uint64_t span_id = 0;         // this hop's span
  uint64_t parent_span_id = 0;  // 0 for the root span

  bool active() const { return trace_id != 0 && span_id != 0; }
};

}  // namespace wiera
