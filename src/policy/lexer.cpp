#include "policy/lexer.h"

#include <cctype>

#include "common/strings.h"

namespace wiera::policy {

std::string_view token_kind_name(TokenKind kind) {
  switch (kind) {
    case TokenKind::kIdent: return "identifier";
    case TokenKind::kNumber: return "number";
    case TokenKind::kString: return "string";
    case TokenKind::kLBrace: return "'{'";
    case TokenKind::kRBrace: return "'}'";
    case TokenKind::kLParen: return "'('";
    case TokenKind::kRParen: return "')'";
    case TokenKind::kColon: return "':'";
    case TokenKind::kSemicolon: return "';'";
    case TokenKind::kComma: return "','";
    case TokenKind::kDot: return "'.'";
    case TokenKind::kAssign: return "'='";
    case TokenKind::kEq: return "'=='";
    case TokenKind::kNe: return "'!='";
    case TokenKind::kLt: return "'<'";
    case TokenKind::kLe: return "'<='";
    case TokenKind::kGt: return "'>'";
    case TokenKind::kGe: return "'>='";
    case TokenKind::kAnd: return "'&&'";
    case TokenKind::kOr: return "'||'";
    case TokenKind::kEof: return "end of input";
  }
  return "?";
}

namespace {

class Lexer {
 public:
  explicit Lexer(std::string_view src) : src_(src) {}

  Result<std::vector<Token>> run() {
    std::vector<Token> tokens;
    while (true) {
      skip_whitespace_and_comments();
      if (at_end()) break;
      auto tok = next_token();
      if (!tok.ok()) return tok.status();
      tokens.push_back(std::move(tok).value());
    }
    Token eof;
    eof.kind = TokenKind::kEof;
    eof.line = line_;
    eof.column = col_;
    tokens.push_back(eof);
    return tokens;
  }

 private:
  bool at_end() const { return pos_ >= src_.size(); }
  char peek(size_t ahead = 0) const {
    return pos_ + ahead < src_.size() ? src_[pos_ + ahead] : '\0';
  }
  char advance() {
    const char c = src_[pos_++];
    if (c == '\n') {
      line_++;
      col_ = 1;
    } else {
      col_++;
    }
    return c;
  }

  void skip_whitespace_and_comments() {
    while (!at_end()) {
      const char c = peek();
      if (c == ' ' || c == '\t' || c == '\r' || c == '\n') {
        advance();
      } else if (c == '%') {
        // Comment to end of line ('%' after a number is handled inside
        // number lexing, so a bare '%' here is always a comment).
        while (!at_end() && peek() != '\n') advance();
      } else {
        break;
      }
    }
  }

  Token start_token(TokenKind kind) const {
    Token t;
    t.kind = kind;
    t.line = line_;
    t.column = col_;
    return t;
  }

  Result<Token> next_token() {
    const char c = peek();
    if (std::isdigit(static_cast<unsigned char>(c))) return lex_number();
    if (std::isalpha(static_cast<unsigned char>(c)) || c == '_') {
      return lex_ident();
    }
    if (c == '"') return lex_string();
    return lex_symbol();
  }

  Result<Token> lex_number() {
    Token t = start_token(TokenKind::kNumber);
    std::string digits;
    while (std::isdigit(static_cast<unsigned char>(peek())) || peek() == '.') {
      // A dot is part of the number only when followed by a digit
      // (protects dotted paths that begin with digits — not expected, but
      // cheap to guard).
      if (peek() == '.' &&
          !std::isdigit(static_cast<unsigned char>(peek(1)))) {
        break;
      }
      digits.push_back(advance());
    }
    t.number = std::strtod(digits.c_str(), nullptr);
    // Attached suffix: "5G", "40KB/s", "50%", "800ms".
    if (peek() == '%') {
      advance();
      t.suffix = "%";
    } else if (std::isalpha(static_cast<unsigned char>(peek()))) {
      std::string suffix;
      while (std::isalpha(static_cast<unsigned char>(peek()))) {
        suffix.push_back(advance());
      }
      if (peek() == '/' && std::isalpha(static_cast<unsigned char>(peek(1)))) {
        suffix.push_back(advance());
        while (std::isalpha(static_cast<unsigned char>(peek()))) {
          suffix.push_back(advance());
        }
      }
      t.suffix = std::move(suffix);
    }
    return t;
  }

  Result<Token> lex_ident() {
    Token t = start_token(TokenKind::kIdent);
    std::string text;
    while (true) {
      const char c = peek();
      if (std::isalnum(static_cast<unsigned char>(c)) || c == '_') {
        text.push_back(advance());
      } else if (c == '-' &&
                 std::isalnum(static_cast<unsigned char>(peek(1)))) {
        // Dashes inside identifiers: US-West-1, S3-IA.
        text.push_back(advance());
      } else {
        break;
      }
    }
    t.text = std::move(text);
    return t;
  }

  Result<Token> lex_string() {
    Token t = start_token(TokenKind::kString);
    advance();  // opening quote
    std::string text;
    while (!at_end() && peek() != '"') text.push_back(advance());
    if (at_end()) {
      return invalid_argument(
          str_format("unterminated string at line %d", t.line));
    }
    advance();  // closing quote
    t.text = std::move(text);
    return t;
  }

  Result<Token> lex_symbol() {
    Token t = start_token(TokenKind::kEof);
    const int line = line_;
    const char c = advance();
    switch (c) {
      case '{': t.kind = TokenKind::kLBrace; return t;
      case '}': t.kind = TokenKind::kRBrace; return t;
      case '(': t.kind = TokenKind::kLParen; return t;
      case ')': t.kind = TokenKind::kRParen; return t;
      case ':': t.kind = TokenKind::kColon; return t;
      case ';': t.kind = TokenKind::kSemicolon; return t;
      case ',': t.kind = TokenKind::kComma; return t;
      case '.': t.kind = TokenKind::kDot; return t;
      case '=':
        if (peek() == '=') {
          advance();
          t.kind = TokenKind::kEq;
        } else {
          t.kind = TokenKind::kAssign;
        }
        return t;
      case '!':
        if (peek() == '=') {
          advance();
          t.kind = TokenKind::kNe;
          return t;
        }
        break;
      case '<':
        if (peek() == '=') {
          advance();
          t.kind = TokenKind::kLe;
        } else {
          t.kind = TokenKind::kLt;
        }
        return t;
      case '>':
        if (peek() == '=') {
          advance();
          t.kind = TokenKind::kGe;
        } else {
          t.kind = TokenKind::kGt;
        }
        return t;
      case '&':
        if (peek() == '&') {
          advance();
          t.kind = TokenKind::kAnd;
          return t;
        }
        break;
      case '|':
        if (peek() == '|') {
          advance();
          t.kind = TokenKind::kOr;
          return t;
        }
        break;
      default:
        break;
    }
    return invalid_argument(
        str_format("unexpected character '%c' at line %d", c, line));
  }

  std::string_view src_;
  size_t pos_ = 0;
  int line_ = 1;
  int col_ = 1;
};

}  // namespace

Result<std::vector<Token>> tokenize(std::string_view source) {
  return Lexer(source).run();
}

}  // namespace wiera::policy
