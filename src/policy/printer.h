// Pretty-printer: PolicyDoc -> DSL source.
//
// Renders an AST back into the paper's concise notation, such that
// parse(print(doc)) reproduces the same structure. Used to ship policies
// over the wire (policies are data), to display the effective policy of a
// running instance, and as a round-trip oracle in tests.
#pragma once

#include <string>

#include "policy/ast.h"

namespace wiera::policy {

// Render a whole document.
std::string to_source(const PolicyDoc& doc);

// Render fragments (useful in logs/UIs).
std::string to_source(const TierDecl& tier);
std::string to_source(const RegionDecl& region);
std::string to_source(const EventRule& rule);
std::string value_to_source(const Value& value);

}  // namespace wiera::policy
