#include "policy/builtin_policies.h"

#include <cassert>

#include "policy/parser.h"

namespace wiera::policy::builtin {

std::string_view low_latency_instance() {
  return R"(
Tiera LowLatencyInstance(time t) {
   % two tiers specified with initial sizes
   tier1: {name: Memcached, size: 5G};
   tier2: {name: EBS, size: 5G};
   % action event defined to always store data into Memcached
   event(insert.into) : response {
      insert.object.dirty = true;
      store(what:insert.object, to:tier1);
   }
   % write back policy: copying data to persistent store on a timer event
   event(time=t) : response {
      copy(what: object.location == tier1 &&
                 object.dirty == true,
           to:tier2);
   }
}
)";
}

std::string_view persistent_instance() {
  return R"(
Tiera PersistentInstance(time t) {
   tier1: {name: Memcached, size: 5G};
   tier2: {name: EBS, size: 5G};
   tier3: {name: S3, size: 10G};
   % write-through policy using action event data and copy response
   event(insert.into == tier1) : response {
      copy(what:insert.object, to:tier2);
   }
   % simple backup policy
   event(tier2.filled == 50%) : response {
      copy(what:object.location == tier2,
           to:tier3, bandwidth:40KB/s);
   }
}
)";
}

std::string_view multi_primaries_consistency() {
  return R"(
Wiera MultiPrimariesConsistency() {
   Region1 = {name:LowLatencyInstance, region:US-West,
      tier1 = {name:LocalMemory, size=5G},
      tier2 = {name:LocalDisk, size=5G} }
   Region2 = {name:LowLatencyInstance, region:US-East,
      tier1 = {name:LocalMemory, size=5G},
      tier2 = {name:LocalDisk, size=5G} }
   Region3 = {name:LowLatencyInstance, region:EU-West,
      tier1 = {name:LocalMemory, size=5G},
      tier2 = {name:LocalDisk, size=5G} }
   Region4 = {name:LowLatencyInstance, region:Asia-East,
      tier1 = {name:LocalMemory, size=5G},
      tier2 = {name:LocalDisk, size=5G} }

   %MultiPrimaries Consistency
   event(insert.into) : response {
      lock(what:insert.key)
      store(what:insert.object, to:local_instance)
      copy(what:insert.object, to:all_regions)
      release(what:insert.key)
   }
}
)";
}

std::string_view primary_backup_consistency() {
  return R"(
Wiera PrimaryBackupConsistency() {
   % Primary instance is running on Region1
   Region1 = {name:LowLatencyInstance, region:US-West, primary:True,
      tier1 = {name:LocalMemory, size=5G},
      tier2 = {name:LocalDisk, size=5G} }
   Region2 = {name:LowLatencyInstance, region:US-East,
      tier1 = {name:LocalMemory, size=5G},
      tier2 = {name:LocalDisk, size=5G} }
   Region3 = {name:LowLatencyInstance, region:EU-West,
      tier1 = {name:LocalMemory, size=5G},
      tier2 = {name:LocalDisk, size=5G} }

   %PrimaryBackup Consistency
   event(insert.into) : response {
      if(local_instance.isPrimary == True)
         store(what:insert.object, to:local_instance)
         copy(what:insert.object, to:all_regions)
      else
         forward(what:insert.object, to:primary_instance)
   }
}
)";
}

std::string_view eventual_consistency() {
  return R"(
Wiera EventualConsistency() {
   Region1 = {name:LowLatencyInstance, region:US-West,
      tier1 = {name:LocalMemory, size=5G},
      tier2 = {name:LocalDisk, size=5G} }
   Region2 = {name:LowLatencyInstance, region:US-East,
      tier1 = {name:LocalMemory, size=5G},
      tier2 = {name:LocalDisk, size=5G} }
   Region3 = {name:LowLatencyInstance, region:EU-West,
      tier1 = {name:LocalMemory, size=5G},
      tier2 = {name:LocalDisk, size=5G} }
   Region4 = {name:LowLatencyInstance, region:Asia-East,
      tier1 = {name:LocalMemory, size=5G},
      tier2 = {name:LocalDisk, size=5G} }

   %Eventual Consistency
   event(insert.into) : response {
      store(what:insert.object, to:local_instance)
      queue(what:insert.object, to:all_regions)
   }
}
)";
}

std::string_view dynamic_consistency() {
  return R"(
Wiera DynamicConsistency() {
   % In Multiple-Primaries Consistency
   % Put operation spends more time than
   % threshold required for specific amount of time
   event(threshold.type == put) : response {
      if(threshold.latency > 800 ms
         && threshold.period > 30 seconds)
         change_policy(what:consistency,
                       to:EventualConsistency);
      else if (threshold.latency <= 800 ms
               && threshold.period > 30 seconds)
         change_policy(what:consistency,
                       to:MultiPrimariesConsistency);
   }
}
)";
}

std::string_view change_primary() {
  return R"(
Wiera ChangePrimary() {
   % In Primary-Backup Consistency
   % If there is an instance which received more
   % requests than primary received from application.
   event(threshold.type == primary) : response {
      if(forwarded_requests_per_each_instance
            >= updates_from_primary
         && threshold.period >= 15 seconds)
         change_policy(what:primary_instance,
                       to:instance_forward_most)
   }
}
)";
}

std::string_view reduced_cost_policy() {
  return R"(
Wiera ReducedCostPolicy() {
   Region1 = {name:PersistentInstance, region:US-West,
      tier1 = {name:LocalDisk, size=5G},
      tier2 = {name:CheapestArchival, size=5G} }

   %Data is getting cold
   event(object.lastAccessedTime > 120 hours) : response {
      move(what:object.location == tier1,
           to:tier2, bandwidth:100KB/s);
   }
}
)";
}

std::string_view simpler_consistency() {
  return R"(
Wiera SimplerConsistency() {
   Region1 = {name:LowLatencyInstance, region:US-West-1, primary:True,
      tier1 = {name:LocalMemory, size=30G},
      tier2 = {name:LocalDisk, size=30G} }
   Region2 = {name:ForwardingInstance, region:US-West-2}
   Region3 = {name:ForwardingInstance, region:US-West-3}

   %PrimaryBackup Consistency
   event(insert.into) : response {
      if(local_instance.isPrimary == True)
         store(what:insert.object, to:local_instance)
      else
         forward(what:insert.object, to:primary_instance)
   }
}
)";
}

std::string_view bounded_staleness() {
  return R"(
Wiera BoundedStaleness() {
   % Overload degradation: a replica that cannot prove freshness (lease
   % lapsed, primary unreachable) may keep answering reads from its local
   % copy -- marked stale -- while that copy is younger than the bound.
   event(threshold.type == get) : response {
      if(threshold.staleness <= 10 seconds)
         change_policy(what:degradation, to:StaleReads);
   }
}
)";
}

std::vector<PolicyDoc> all_parsed() {
  std::vector<PolicyDoc> docs;
  for (std::string_view src :
       {low_latency_instance(), persistent_instance(),
        multi_primaries_consistency(), primary_backup_consistency(),
        eventual_consistency(), dynamic_consistency(), change_primary(),
        reduced_cost_policy(), simpler_consistency(), bounded_staleness()}) {
    auto doc = parse_policy(src);
    assert(doc.ok() && "built-in policy failed to parse");
    docs.push_back(std::move(doc).value());
  }
  return docs;
}

Result<PolicyDoc> by_name(std::string_view name) {
  for (auto& doc : all_parsed()) {
    if (doc.name == name) return std::move(doc);
  }
  return not_found("no built-in policy named " + std::string(name));
}

}  // namespace wiera::policy::builtin
