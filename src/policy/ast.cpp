#include "policy/ast.h"

#include "common/strings.h"

namespace wiera::policy {

std::string Value::to_string() const {
  switch (kind) {
    case Kind::kNumber: return str_format("%g", number);
    case Kind::kBool: return boolean ? "true" : "false";
    case Kind::kString: return text;
    case Kind::kDuration: return duration.to_string();
    case Kind::kSize: return str_format("%lldB", static_cast<long long>(size_bytes));
    case Kind::kPercent: return str_format("%g%%", number);
    case Kind::kRate: return str_format("%gB/s", number);
  }
  return "?";
}

std::string_view binary_op_name(BinaryOp op) {
  switch (op) {
    case BinaryOp::kEq: return "==";
    case BinaryOp::kNe: return "!=";
    case BinaryOp::kLt: return "<";
    case BinaryOp::kLe: return "<=";
    case BinaryOp::kGt: return ">";
    case BinaryOp::kGe: return ">=";
    case BinaryOp::kAnd: return "&&";
    case BinaryOp::kOr: return "||";
  }
  return "?";
}

std::string PathExpr::dotted() const {
  std::string out;
  for (size_t i = 0; i < parts.size(); ++i) {
    if (i > 0) out += '.';
    out += parts[i];
  }
  return out;
}

std::string Expr::to_string() const {
  if (is_path()) return path().dotted();
  if (is_literal()) return literal().value.to_string();
  const BinaryExpr& b = binary();
  return "(" + b.lhs->to_string() + " " +
         std::string(binary_op_name(b.op)) + " " + b.rhs->to_string() + ")";
}

ExprPtr make_path(std::vector<std::string> parts) {
  auto e = std::make_unique<Expr>();
  e->node = PathExpr{std::move(parts)};
  return e;
}

ExprPtr make_literal(Value v) {
  auto e = std::make_unique<Expr>();
  e->node = LiteralExpr{std::move(v)};
  return e;
}

ExprPtr make_binary(BinaryOp op, ExprPtr lhs, ExprPtr rhs) {
  auto e = std::make_unique<Expr>();
  e->node = BinaryExpr{op, std::move(lhs), std::move(rhs)};
  return e;
}

namespace {
ExprPtr clone_or_null(const ExprPtr& e) {
  return e == nullptr ? nullptr : clone_expr(*e);
}
}  // namespace

ActionStmt::ActionStmt(const ActionStmt& o) : name(o.name) {
  args.reserve(o.args.size());
  for (const auto& [arg_name, expr] : o.args) {
    args.emplace_back(arg_name, clone_or_null(expr));
  }
}

ActionStmt& ActionStmt::operator=(const ActionStmt& o) {
  if (this != &o) *this = ActionStmt(o);
  return *this;
}

AssignStmt::AssignStmt(const AssignStmt& o)
    : target(o.target), value(clone_or_null(o.value)) {}

AssignStmt& AssignStmt::operator=(const AssignStmt& o) {
  if (this != &o) *this = AssignStmt(o);
  return *this;
}

IfStmt::Branch::Branch(const Branch& o)
    : condition(clone_or_null(o.condition)), body(o.body) {}

IfStmt::Branch& IfStmt::Branch::operator=(const Branch& o) {
  if (this != &o) *this = Branch(o);
  return *this;
}

EventRule::EventRule(const EventRule& o)
    : trigger(clone_or_null(o.trigger)), response(o.response) {}

EventRule& EventRule::operator=(const EventRule& o) {
  if (this != &o) *this = EventRule(o);
  return *this;
}

ExprPtr clone_expr(const Expr& e) {
  if (e.is_path()) return make_path(e.path().parts);
  if (e.is_literal()) return make_literal(e.literal().value);
  const BinaryExpr& b = e.binary();
  return make_binary(b.op, clone_expr(*b.lhs), clone_expr(*b.rhs));
}

}  // namespace wiera::policy
