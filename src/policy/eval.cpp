#include "policy/eval.h"

#include <cmath>

namespace wiera::policy {

namespace {

// Comparable scalar magnitude for ordered comparisons. Durations compare in
// microseconds, sizes in bytes, rates in bytes/s, percents as numbers.
Result<double> magnitude(const Value& v) {
  switch (v.kind) {
    case Value::Kind::kNumber:
    case Value::Kind::kPercent:
    case Value::Kind::kRate:
      return v.number;
    case Value::Kind::kDuration:
      return static_cast<double>(v.duration.us());
    case Value::Kind::kSize:
      return static_cast<double>(v.size_bytes);
    case Value::Kind::kBool:
      return v.boolean ? 1.0 : 0.0;
    case Value::Kind::kString:
      return invalid_argument("cannot order-compare string value '" + v.text +
                              "'");
  }
  return internal_error("bad value kind");
}

Result<bool> values_equal(const Value& a, const Value& b) {
  if (a.kind == Value::Kind::kString || b.kind == Value::Kind::kString) {
    if (a.kind != b.kind) {
      return invalid_argument("comparing string with non-string");
    }
    return a.text == b.text;
  }
  if (a.kind == Value::Kind::kBool || b.kind == Value::Kind::kBool) {
    if (a.kind != b.kind) {
      return invalid_argument("comparing bool with non-bool");
    }
    return a.boolean == b.boolean;
  }
  WIERA_ASSIGN_OR_RETURN(const double ma, magnitude(a));
  WIERA_ASSIGN_OR_RETURN(const double mb, magnitude(b));
  return ma == mb;
}

Result<bool> coerce_bool(const Value& v) {
  if (v.kind == Value::Kind::kBool) return v.boolean;
  return invalid_argument("expected boolean, got " + v.to_string());
}

}  // namespace

Result<Value> evaluate(const Expr& expr, const EvalContext& ctx) {
  if (expr.is_literal()) return expr.literal().value;

  if (expr.is_path()) {
    auto resolved = ctx.lookup(expr.path());
    if (resolved.has_value()) return *resolved;
    // Bare words act as string enums (e.g. `put`, `EventualConsistency`).
    if (expr.path().parts.size() == 1) {
      return Value::string_of(expr.path().parts[0]);
    }
    return invalid_argument("unresolved path: " + expr.path().dotted());
  }

  const BinaryExpr& bin = expr.binary();

  if (bin.op == BinaryOp::kAnd || bin.op == BinaryOp::kOr) {
    WIERA_ASSIGN_OR_RETURN(const Value lv, evaluate(*bin.lhs, ctx));
    WIERA_ASSIGN_OR_RETURN(const bool lb, coerce_bool(lv));
    // Short-circuit.
    if (bin.op == BinaryOp::kAnd && !lb) return Value::bool_of(false);
    if (bin.op == BinaryOp::kOr && lb) return Value::bool_of(true);
    WIERA_ASSIGN_OR_RETURN(const Value rv, evaluate(*bin.rhs, ctx));
    WIERA_ASSIGN_OR_RETURN(const bool rb, coerce_bool(rv));
    return Value::bool_of(rb);
  }

  WIERA_ASSIGN_OR_RETURN(const Value lhs, evaluate(*bin.lhs, ctx));
  WIERA_ASSIGN_OR_RETURN(const Value rhs, evaluate(*bin.rhs, ctx));

  switch (bin.op) {
    case BinaryOp::kEq: {
      WIERA_ASSIGN_OR_RETURN(const bool eq, values_equal(lhs, rhs));
      return Value::bool_of(eq);
    }
    case BinaryOp::kNe: {
      WIERA_ASSIGN_OR_RETURN(const bool eq, values_equal(lhs, rhs));
      return Value::bool_of(!eq);
    }
    case BinaryOp::kLt:
    case BinaryOp::kLe:
    case BinaryOp::kGt:
    case BinaryOp::kGe: {
      WIERA_ASSIGN_OR_RETURN(const double ml, magnitude(lhs));
      WIERA_ASSIGN_OR_RETURN(const double mr, magnitude(rhs));
      bool result = false;
      if (bin.op == BinaryOp::kLt) result = ml < mr;
      if (bin.op == BinaryOp::kLe) result = ml <= mr;
      if (bin.op == BinaryOp::kGt) result = ml > mr;
      if (bin.op == BinaryOp::kGe) result = ml >= mr;
      return Value::bool_of(result);
    }
    case BinaryOp::kAnd:
    case BinaryOp::kOr:
      break;  // handled above
  }
  return internal_error("unhandled operator");
}

Result<bool> evaluate_condition(const Expr& expr, const EvalContext& ctx) {
  WIERA_ASSIGN_OR_RETURN(const Value v, evaluate(expr, ctx));
  if (v.kind != Value::Kind::kBool) {
    return invalid_argument("condition did not evaluate to bool: " +
                            expr.to_string());
  }
  return v.boolean;
}

// ---------------------------------------------------------------- triggers

std::string_view trigger_kind_name(TriggerKind kind) {
  switch (kind) {
    case TriggerKind::kInsert: return "insert";
    case TriggerKind::kInsertInto: return "insert-into";
    case TriggerKind::kTimer: return "timer";
    case TriggerKind::kTierFilled: return "tier-filled";
    case TriggerKind::kColdData: return "cold-data";
    case TriggerKind::kLatencyThreshold: return "latency-threshold";
    case TriggerKind::kRequestsThreshold: return "requests-threshold";
  }
  return "?";
}

namespace {

Result<Value> resolve_trigger_operand(const Expr& expr,
                                      const std::map<std::string, Value>& params) {
  if (expr.is_literal()) return expr.literal().value;
  if (expr.is_path() && expr.path().parts.size() == 1) {
    const std::string& name = expr.path().parts[0];
    auto it = params.find(name);
    if (it != params.end()) return it->second;
    return Value::string_of(name);
  }
  return invalid_argument("unsupported trigger operand: " + expr.to_string());
}

}  // namespace

Result<Trigger> classify_trigger(const Expr& expr,
                                 const std::map<std::string, Value>& params) {
  Trigger trigger;

  // Bare `insert.into` — fires on every put.
  if (expr.is_path()) {
    if (expr.path().dotted() == "insert.into") {
      trigger.kind = TriggerKind::kInsert;
      return trigger;
    }
    return invalid_argument("unrecognized trigger: " + expr.path().dotted());
  }

  if (!expr.is_binary()) {
    return invalid_argument("unrecognized trigger: " + expr.to_string());
  }
  const BinaryExpr& bin = expr.binary();
  if (!bin.lhs->is_path()) {
    return invalid_argument("trigger must start with a path: " +
                            expr.to_string());
  }
  const std::string lhs = bin.lhs->path().dotted();

  if (lhs == "insert.into" && bin.op == BinaryOp::kEq) {
    if (!bin.rhs->is_path() || bin.rhs->path().parts.size() != 1) {
      return invalid_argument("insert.into must compare to a tier label");
    }
    trigger.kind = TriggerKind::kInsertInto;
    trigger.tier = bin.rhs->path().parts[0];
    return trigger;
  }

  if (lhs == "time" && bin.op == BinaryOp::kEq) {
    WIERA_ASSIGN_OR_RETURN(const Value v,
                           resolve_trigger_operand(*bin.rhs, params));
    if (v.kind != Value::Kind::kDuration) {
      return invalid_argument("timer trigger needs a duration, got " +
                              v.to_string());
    }
    trigger.kind = TriggerKind::kTimer;
    trigger.period = v.duration;
    return trigger;
  }

  // tierN.filled == 50%
  if (bin.lhs->path().parts.size() == 2 &&
      bin.lhs->path().parts[1] == "filled" && bin.op == BinaryOp::kEq) {
    WIERA_ASSIGN_OR_RETURN(const Value v,
                           resolve_trigger_operand(*bin.rhs, params));
    if (v.kind != Value::Kind::kPercent) {
      return invalid_argument("filled trigger needs a percentage");
    }
    trigger.kind = TriggerKind::kTierFilled;
    trigger.tier = bin.lhs->path().parts[0];
    trigger.fill_percent = v.number;
    return trigger;
  }

  // object.lastAccessedTime > 120 hours
  if (lhs == "object.lastAccessedTime" &&
      (bin.op == BinaryOp::kGt || bin.op == BinaryOp::kGe)) {
    WIERA_ASSIGN_OR_RETURN(const Value v,
                           resolve_trigger_operand(*bin.rhs, params));
    if (v.kind != Value::Kind::kDuration) {
      return invalid_argument("cold-data trigger needs a duration");
    }
    trigger.kind = TriggerKind::kColdData;
    trigger.cold_after = v.duration;
    return trigger;
  }

  // threshold.type == put | primary
  if (lhs == "threshold.type" && bin.op == BinaryOp::kEq) {
    WIERA_ASSIGN_OR_RETURN(const Value v,
                           resolve_trigger_operand(*bin.rhs, params));
    if (v.kind != Value::Kind::kString) {
      return invalid_argument("threshold.type must compare to a word");
    }
    if (v.text == "put" || v.text == "get" || v.text == "operation") {
      trigger.kind = TriggerKind::kLatencyThreshold;
      return trigger;
    }
    if (v.text == "primary" || v.text == "requests") {
      trigger.kind = TriggerKind::kRequestsThreshold;
      return trigger;
    }
    return invalid_argument("unknown threshold.type: " + v.text);
  }

  return invalid_argument("unrecognized trigger: " + expr.to_string());
}

}  // namespace wiera::policy
