// The policy specifications printed in the paper's figures, shipped as DSL
// source. Benches and examples launch instances from these exact texts (the
// "rich specification with concise notation" claim is exercised, not
// re-implemented by hand). Obvious typos in the paper's listings
// (chage_policy, forwarded_regeusts, insert.oject) are corrected.
#pragma once

#include <string_view>
#include <vector>

#include "common/status.h"
#include "policy/ast.h"

namespace wiera::policy::builtin {

// Fig. 1(a): two tiers, write into memory, write-back dirty data on a timer.
std::string_view low_latency_instance();
// Fig. 1(b): write-through memory->disk, backup to S3 at 50% fill.
std::string_view persistent_instance();
// Fig. 3(a): global lock, synchronous broadcast.
std::string_view multi_primaries_consistency();
// Fig. 3(b): single primary, synchronous copy, non-primaries forward.
std::string_view primary_backup_consistency();
// Fig. 4: local write + queued background propagation.
std::string_view eventual_consistency();
// Fig. 5(a): switch MultiPrimaries <-> Eventual on an 800ms/30s threshold.
std::string_view dynamic_consistency();
// Fig. 5(b): migrate the primary to the instance forwarding the most puts.
std::string_view change_primary();
// Fig. 6(a): demote data idle for 120 hours to the cheap archival tier.
std::string_view reduced_cost_policy();
// Fig. 6(b): one primary with fast tiers, forwarding instances elsewhere.
std::string_view simpler_consistency();
// Graceful degradation under overload (docs/OVERLOAD.md): when the primary
// is unreachable, replicas may serve their local copy — flagged stale — as
// long as it is younger than the staleness bound.
std::string_view bounded_staleness();

// All of the above, parsed and validated (asserts on internal error —
// these are compiled-in texts).
std::vector<PolicyDoc> all_parsed();

// Parse one built-in by policy name (e.g. "MultiPrimariesConsistency").
Result<PolicyDoc> by_name(std::string_view name);

}  // namespace wiera::policy::builtin
