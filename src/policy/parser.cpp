#include "policy/parser.h"

#include <set>

#include "common/strings.h"
#include "common/units.h"
#include "policy/lexer.h"

namespace wiera::policy {

namespace {

// Unit classification for numeric literals.
Result<Value> apply_unit(double number, const std::string& unit) {
  const std::string u = to_lower(unit);
  if (u.empty()) return Value::number_of(number);
  if (u == "%") return Value::percent_of(number);
  if (u == "ms" || u == "millis" || u == "milliseconds") {
    return Value::duration_of(msec(number));
  }
  if (u == "s" || u == "sec" || u == "second" || u == "seconds") {
    return Value::duration_of(sec(number));
  }
  if (u == "min" || u == "minute" || u == "minutes") {
    return Value::duration_of(minutes(number));
  }
  if (u == "h" || u == "hour" || u == "hours") {
    return Value::duration_of(hoursd(number));
  }
  if (u == "kb/s") return Value::rate_of(number * 1024);
  if (u == "mb/s") return Value::rate_of(number * 1024 * 1024);
  if (u == "gb/s") return Value::rate_of(number * 1024 * 1024 * 1024);
  if (u == "b") return Value::size_of(static_cast<int64_t>(number));
  if (u == "k" || u == "kb") {
    return Value::size_of(static_cast<int64_t>(number * KiB));
  }
  if (u == "m" || u == "mb") {
    return Value::size_of(static_cast<int64_t>(number * MiB));
  }
  if (u == "g" || u == "gb") {
    return Value::size_of(static_cast<int64_t>(number * GiB));
  }
  if (u == "t" || u == "tb") {
    return Value::size_of(static_cast<int64_t>(number * TiB));
  }
  return invalid_argument("unknown unit suffix: " + unit);
}

bool is_unit_ident(const std::string& text) {
  static const std::set<std::string> kUnits = {
      "ms",  "millis", "milliseconds", "s",      "sec",    "second",
      "seconds", "min", "minute",      "minutes", "h",     "hour",
      "hours"};
  return kUnits.count(to_lower(text)) > 0;
}

class Parser {
 public:
  explicit Parser(std::vector<Token> tokens) : tokens_(std::move(tokens)) {}

  Result<PolicyDoc> parse() {
    PolicyDoc doc;
    const Token& kind_tok = peek();
    if (!match_ident("Tiera") && !match_ident("Wiera")) {
      return error("expected 'Tiera' or 'Wiera' at document start");
    }
    doc.is_wiera = (kind_tok.text == "Wiera");

    if (peek().kind != TokenKind::kIdent) return error("expected policy name");
    doc.name = advance().text;

    WIERA_RETURN_IF_ERROR(expect(TokenKind::kLParen));
    while (peek().kind == TokenKind::kIdent) {
      std::string type = advance().text;
      if (peek().kind != TokenKind::kIdent) {
        return error("expected parameter name after type '" + type + "'");
      }
      std::string name = advance().text;
      doc.params.emplace_back(std::move(type), std::move(name));
      if (!match(TokenKind::kComma)) break;
    }
    WIERA_RETURN_IF_ERROR(expect(TokenKind::kRParen));
    WIERA_RETURN_IF_ERROR(expect(TokenKind::kLBrace));

    while (!check(TokenKind::kRBrace)) {
      if (check(TokenKind::kEof)) return error("unterminated policy body");
      if (peek().kind == TokenKind::kIdent && peek().text == "event") {
        auto rule = parse_event();
        if (!rule.ok()) return rule.status();
        doc.events.push_back(std::move(rule).value());
      } else {
        WIERA_RETURN_IF_ERROR(parse_declaration(doc));
      }
    }
    WIERA_RETURN_IF_ERROR(expect(TokenKind::kRBrace));
    return doc;
  }

 private:
  // ---- token helpers ----
  const Token& peek(size_t ahead = 0) const {
    const size_t i = std::min(pos_ + ahead, tokens_.size() - 1);
    return tokens_[i];
  }
  const Token& advance() { return tokens_[std::min(pos_++, tokens_.size() - 1)]; }
  bool check(TokenKind kind) const { return peek().kind == kind; }
  bool match(TokenKind kind) {
    if (!check(kind)) return false;
    advance();
    return true;
  }
  bool match_ident(std::string_view text) {
    if (peek().kind == TokenKind::kIdent && peek().text == text) {
      advance();
      return true;
    }
    return false;
  }
  Status expect(TokenKind kind) {
    if (match(kind)) return ok_status();
    return error(str_format("expected %.*s, found %.*s",
                            static_cast<int>(token_kind_name(kind).size()),
                            token_kind_name(kind).data(),
                            static_cast<int>(token_kind_name(peek().kind).size()),
                            token_kind_name(peek().kind).data()));
  }
  Status error(const std::string& what) const {
    return invalid_argument(
        str_format("line %d: %s", peek().line, what.c_str()));
  }

  // ---- declarations ----

  // LABEL (":"|"=") "{" ... "}" [";"]
  Status parse_declaration(PolicyDoc& doc) {
    if (peek().kind != TokenKind::kIdent) {
      return error("expected declaration label");
    }
    std::string label = advance().text;
    if (!match(TokenKind::kColon) && !match(TokenKind::kAssign)) {
      return error("expected ':' or '=' after '" + label + "'");
    }
    std::map<std::string, Value> attrs;
    std::vector<TierDecl> nested;
    WIERA_RETURN_IF_ERROR(parse_attr_block(attrs, nested, /*allow_nested=*/true));
    match(TokenKind::kSemicolon);

    const bool is_region = attrs.count("region") > 0 || !nested.empty();
    if (is_region) {
      RegionDecl region;
      region.label = std::move(label);
      region.attrs = std::move(attrs);
      region.tiers = std::move(nested);
      doc.regions.push_back(std::move(region));
    } else {
      if (!nested.empty()) return error("tier declarations cannot nest");
      TierDecl tier;
      tier.label = std::move(label);
      tier.attrs = std::move(attrs);
      doc.tiers.push_back(std::move(tier));
    }
    return ok_status();
  }

  // "{" kv {"," kv} "}" where a kv value may itself be a brace block
  // (nested tier within a region).
  Status parse_attr_block(std::map<std::string, Value>& attrs,
                          std::vector<TierDecl>& nested, bool allow_nested) {
    WIERA_RETURN_IF_ERROR(expect(TokenKind::kLBrace));
    while (!check(TokenKind::kRBrace)) {
      if (peek().kind != TokenKind::kIdent) {
        return error("expected attribute name");
      }
      std::string key = advance().text;
      if (!match(TokenKind::kColon) && !match(TokenKind::kAssign)) {
        return error("expected ':' or '=' after attribute '" + key + "'");
      }
      if (check(TokenKind::kLBrace)) {
        if (!allow_nested) return error("unexpected nested block");
        TierDecl tier;
        tier.label = std::move(key);
        std::vector<TierDecl> deeper;
        WIERA_RETURN_IF_ERROR(
            parse_attr_block(tier.attrs, deeper, /*allow_nested=*/false));
        nested.push_back(std::move(tier));
      } else {
        auto value = parse_value();
        if (!value.ok()) return value.status();
        attrs[key] = std::move(value).value();
      }
      if (!match(TokenKind::kComma)) break;
    }
    return expect(TokenKind::kRBrace);
  }

  // A scalar attribute value: number (with units), bool, or bare identifier.
  Result<Value> parse_value() {
    if (check(TokenKind::kNumber)) {
      const Token t = advance();
      std::string unit = t.suffix;
      if (unit.empty() && peek().kind == TokenKind::kIdent &&
          is_unit_ident(peek().text)) {
        unit = advance().text;
      }
      return apply_unit(t.number, unit);
    }
    if (check(TokenKind::kString)) return Value::string_of(advance().text);
    if (check(TokenKind::kIdent)) {
      const std::string text = advance().text;
      const std::string lower = to_lower(text);
      if (lower == "true") return Value::bool_of(true);
      if (lower == "false") return Value::bool_of(false);
      return Value::string_of(text);
    }
    return Result<Value>(error("expected a value"));
  }

  // ---- events ----

  Result<EventRule> parse_event() {
    advance();  // 'event'
    WIERA_RETURN_IF_ERROR(expect(TokenKind::kLParen));
    auto trigger = parse_expr();
    if (!trigger.ok()) return trigger.status();
    WIERA_RETURN_IF_ERROR(expect(TokenKind::kRParen));
    WIERA_RETURN_IF_ERROR(expect(TokenKind::kColon));
    if (!match_ident("response")) return Result<EventRule>(error("expected 'response'"));
    WIERA_RETURN_IF_ERROR(expect(TokenKind::kLBrace));
    EventRule rule;
    rule.trigger = std::move(trigger).value();
    while (!check(TokenKind::kRBrace)) {
      if (check(TokenKind::kEof)) return Result<EventRule>(error("unterminated response"));
      auto stmt = parse_stmt();
      if (!stmt.ok()) return stmt.status();
      rule.response.push_back(std::move(stmt).value());
    }
    WIERA_RETURN_IF_ERROR(expect(TokenKind::kRBrace));
    return rule;
  }

  Result<Stmt> parse_stmt() {
    if (peek().kind == TokenKind::kIdent && peek().text == "if") {
      return parse_if();
    }
    // Disambiguate assignment (path = expr) vs action (name(args)).
    if (peek().kind == TokenKind::kIdent &&
        peek(1).kind == TokenKind::kLParen) {
      return parse_action();
    }
    return parse_assign();
  }

  Result<Stmt> parse_if() {
    advance();  // 'if'
    IfStmt node;
    while (true) {
      WIERA_RETURN_IF_ERROR(expect(TokenKind::kLParen));
      auto cond = parse_expr();
      if (!cond.ok()) return cond.status();
      WIERA_RETURN_IF_ERROR(expect(TokenKind::kRParen));
      IfStmt::Branch branch;
      branch.condition = std::move(cond).value();
      WIERA_RETURN_IF_ERROR(parse_branch_body(branch.body));
      node.branches.push_back(std::move(branch));

      if (!match_ident("else")) break;
      if (peek().kind == TokenKind::kIdent && peek().text == "if") {
        advance();  // chained 'else if'
        continue;
      }
      IfStmt::Branch else_branch;  // condition stays null
      WIERA_RETURN_IF_ERROR(parse_branch_body(else_branch.body));
      node.branches.push_back(std::move(else_branch));
      break;
    }
    Stmt stmt;
    stmt.node = std::move(node);
    return stmt;
  }

  // A branch body: braced block, or (paper style) statements up to
  // 'else' / '}' .
  Status parse_branch_body(std::vector<Stmt>& body) {
    if (match(TokenKind::kLBrace)) {
      while (!check(TokenKind::kRBrace)) {
        if (check(TokenKind::kEof)) return error("unterminated block");
        auto stmt = parse_stmt();
        if (!stmt.ok()) return stmt.status();
        body.push_back(std::move(stmt).value());
      }
      return expect(TokenKind::kRBrace);
    }
    while (!check(TokenKind::kRBrace) && !check(TokenKind::kEof) &&
           !(peek().kind == TokenKind::kIdent && peek().text == "else")) {
      auto stmt = parse_stmt();
      if (!stmt.ok()) return stmt.status();
      body.push_back(std::move(stmt).value());
    }
    if (body.empty()) return error("empty if/else branch");
    return ok_status();
  }

  Result<Stmt> parse_action() {
    ActionStmt action;
    action.name = advance().text;
    WIERA_RETURN_IF_ERROR(expect(TokenKind::kLParen));
    while (!check(TokenKind::kRParen)) {
      if (peek().kind != TokenKind::kIdent) {
        return Result<Stmt>(error("expected argument name in " + action.name + "()"));
      }
      std::string arg_name = advance().text;
      WIERA_RETURN_IF_ERROR(expect(TokenKind::kColon));
      auto value = parse_expr();
      if (!value.ok()) return value.status();
      action.args.emplace_back(std::move(arg_name), std::move(value).value());
      if (!match(TokenKind::kComma)) break;
    }
    WIERA_RETURN_IF_ERROR(expect(TokenKind::kRParen));
    match(TokenKind::kSemicolon);
    Stmt stmt;
    stmt.node = std::move(action);
    return stmt;
  }

  Result<Stmt> parse_assign() {
    auto target = parse_path();
    if (!target.ok()) return target.status();
    WIERA_RETURN_IF_ERROR(expect(TokenKind::kAssign));
    auto value = parse_expr();
    if (!value.ok()) return value.status();
    match(TokenKind::kSemicolon);
    AssignStmt assign;
    assign.target = std::move(target).value();
    assign.value = std::move(value).value();
    Stmt stmt;
    stmt.node = std::move(assign);
    return stmt;
  }

  // ---- expressions ----

  Result<ExprPtr> parse_expr() { return parse_or(); }

  Result<ExprPtr> parse_or() {
    auto lhs = parse_and();
    if (!lhs.ok()) return lhs;
    while (match(TokenKind::kOr)) {
      auto rhs = parse_and();
      if (!rhs.ok()) return rhs;
      lhs = make_binary(BinaryOp::kOr, std::move(lhs).value(),
                        std::move(rhs).value());
    }
    return lhs;
  }

  Result<ExprPtr> parse_and() {
    auto lhs = parse_cmp();
    if (!lhs.ok()) return lhs;
    while (match(TokenKind::kAnd)) {
      auto rhs = parse_cmp();
      if (!rhs.ok()) return rhs;
      lhs = make_binary(BinaryOp::kAnd, std::move(lhs).value(),
                        std::move(rhs).value());
    }
    return lhs;
  }

  Result<ExprPtr> parse_cmp() {
    auto lhs = parse_primary();
    if (!lhs.ok()) return lhs;
    BinaryOp op;
    switch (peek().kind) {
      case TokenKind::kEq: op = BinaryOp::kEq; break;
      // Single '=' is equality in expression position: event(time=t).
      case TokenKind::kAssign: op = BinaryOp::kEq; break;
      case TokenKind::kNe: op = BinaryOp::kNe; break;
      case TokenKind::kLt: op = BinaryOp::kLt; break;
      case TokenKind::kLe: op = BinaryOp::kLe; break;
      case TokenKind::kGt: op = BinaryOp::kGt; break;
      case TokenKind::kGe: op = BinaryOp::kGe; break;
      default:
        return lhs;
    }
    advance();
    auto rhs = parse_primary();
    if (!rhs.ok()) return rhs;
    return make_binary(op, std::move(lhs).value(), std::move(rhs).value());
  }

  Result<ExprPtr> parse_primary() {
    if (match(TokenKind::kLParen)) {
      auto inner = parse_expr();
      if (!inner.ok()) return inner;
      WIERA_RETURN_IF_ERROR(expect(TokenKind::kRParen));
      return inner;
    }
    if (check(TokenKind::kNumber) || check(TokenKind::kString)) {
      auto value = parse_value();
      if (!value.ok()) return value.status();
      return make_literal(std::move(value).value());
    }
    if (check(TokenKind::kIdent)) {
      const std::string lower = to_lower(peek().text);
      if (lower == "true" || lower == "false") {
        advance();
        return make_literal(Value::bool_of(lower == "true"));
      }
      auto path = parse_path();
      if (!path.ok()) return path.status();
      return make_path(std::move(path).value().parts);
    }
    return Result<ExprPtr>(error("expected expression"));
  }

  Result<PathExpr> parse_path() {
    if (peek().kind != TokenKind::kIdent) {
      return Result<PathExpr>(error("expected identifier"));
    }
    PathExpr path;
    path.parts.push_back(advance().text);
    while (match(TokenKind::kDot)) {
      if (peek().kind != TokenKind::kIdent) {
        return Result<PathExpr>(error("expected identifier after '.'"));
      }
      path.parts.push_back(advance().text);
    }
    return path;
  }

  std::vector<Token> tokens_;
  size_t pos_ = 0;
};

const std::set<std::string>& known_actions() {
  static const std::set<std::string> kActions = {
      // Tiera responses (§2.1)
      "store", "retrieve", "copy", "move", "encrypt", "compress", "delete",
      "grow",
      // Wiera additions (§3.2.3) and the lock/release pair used by
      // MultiPrimariesConsistency (Fig. 3a)
      "forward", "queue", "change_consistency", "change_policy", "lock",
      "release",
  };
  return kActions;
}

const std::set<std::string>& known_action_args() {
  static const std::set<std::string> kArgs = {"what", "to", "from",
                                              "bandwidth"};
  return kArgs;
}

// Symbolic targets resolvable at run time rather than declared in the doc.
bool is_symbolic_target(const std::string& name) {
  static const std::set<std::string> kSymbolic = {
      "local_instance", "all_regions", "primary_instance",
      "instance_forward_most", "all_instances"};
  return kSymbolic.count(name) > 0;
}

Status validate_stmts(const PolicyDoc& doc, const std::vector<Stmt>& stmts);

Status validate_action(const PolicyDoc& doc, const ActionStmt& action) {
  if (!is_known_action(action.name)) {
    return invalid_argument("unknown action: " + action.name);
  }
  for (const auto& [arg_name, expr] : action.args) {
    if (known_action_args().count(arg_name) == 0) {
      return invalid_argument("unknown argument '" + arg_name + "' in " +
                              action.name + "()");
    }
    (void)expr;
  }
  // `to:` targets must be a declared tier/region, a symbolic target, or (for
  // change_policy) a policy name we cannot check here.
  const Expr* to = action.arg("to");
  if (to != nullptr && to->is_path() && to->path().parts.size() == 1 &&
      action.name != "change_policy" && action.name != "change_consistency") {
    const std::string& target = to->path().parts[0];
    bool declared = doc.tier(target) != nullptr ||
                    doc.region_decl(target) != nullptr ||
                    is_symbolic_target(target);
    // Wiera policies declare tiers nested inside region blocks.
    for (const auto& region : doc.regions) {
      if (declared) break;
      for (const auto& tier : region.tiers) {
        if (tier.label == target) {
          declared = true;
          break;
        }
      }
    }
    if (!declared) {
      return invalid_argument("action '" + action.name +
                              "' targets undeclared tier/region: " + target);
    }
  }
  return ok_status();
}

Status validate_stmt(const PolicyDoc& doc, const Stmt& stmt) {
  if (stmt.is_action()) return validate_action(doc, stmt.action());
  if (stmt.is_if()) {
    for (const auto& branch : stmt.if_stmt().branches) {
      WIERA_RETURN_IF_ERROR(validate_stmts(doc, branch.body));
    }
  }
  return ok_status();
}

Status validate_stmts(const PolicyDoc& doc, const std::vector<Stmt>& stmts) {
  for (const Stmt& stmt : stmts) {
    WIERA_RETURN_IF_ERROR(validate_stmt(doc, stmt));
  }
  return ok_status();
}

}  // namespace

bool is_known_action(std::string_view name) {
  return known_actions().count(std::string(name)) > 0;
}

Result<PolicyDoc> parse_policy(std::string_view source) {
  auto tokens = tokenize(source);
  if (!tokens.ok()) return tokens.status();
  return Parser(std::move(tokens).value()).parse();
}

Status validate(const PolicyDoc& doc) {
  if (doc.name.empty()) return invalid_argument("policy has no name");
  for (const auto& rule : doc.events) {
    if (rule.trigger == nullptr) {
      return invalid_argument("event rule without trigger");
    }
    if (rule.response.empty()) {
      return invalid_argument("event rule with empty response");
    }
    WIERA_RETURN_IF_ERROR(validate_stmts(doc, rule.response));
  }
  for (const auto& region : doc.regions) {
    if (region.instance_name().empty()) {
      return invalid_argument("region " + region.label +
                              " missing instance name");
    }
  }
  return ok_status();
}

}  // namespace wiera::policy
