// Run-time evaluation of policy expressions and classification of event
// triggers into the typed events the engine implements.
#pragma once

#include <map>
#include <optional>
#include <string>

#include "common/status.h"
#include "policy/ast.h"

namespace wiera::policy {

// Name resolution for dotted paths during evaluation. The policy engine
// provides contexts populated with runtime facts, e.g.
//   threshold.latency -> Duration, threshold.period -> Duration,
//   local_instance.isPrimary -> bool, insert.into -> tier name, ...
class EvalContext {
 public:
  virtual ~EvalContext() = default;
  virtual std::optional<Value> lookup(const PathExpr& path) const = 0;
};

// Simple map-backed context keyed on the dotted path string.
class MapContext : public EvalContext {
 public:
  MapContext& set(const std::string& dotted_path, Value v) {
    values_[dotted_path] = std::move(v);
    return *this;
  }
  std::optional<Value> lookup(const PathExpr& path) const override {
    auto it = values_.find(path.dotted());
    if (it == values_.end()) return std::nullopt;
    return it->second;
  }

 private:
  std::map<std::string, Value> values_;
};

// Evaluate an expression. Unresolvable single-segment paths evaluate to
// their own name as a string (the DSL writes enum-ish bare words:
// `to:EventualConsistency`, `threshold.type == put`).
Result<Value> evaluate(const Expr& expr, const EvalContext& ctx);

// Evaluate and coerce to bool (non-bool scalar results are an error).
Result<bool> evaluate_condition(const Expr& expr, const EvalContext& ctx);

// ---------------------------------------------------------------- triggers

// The typed event catalog (§2.1 Tiera events + §3.2.3 Wiera additions).
enum class TriggerKind {
  kInsert,             // event(insert.into)            — action event on put
  kInsertInto,         // event(insert.into == tier1)   — put landing in tier
  kTimer,              // event(time = t)               — periodic
  kTierFilled,         // event(tier2.filled == 50%)    — threshold
  kColdData,           // event(object.lastAccessedTime > 120 hours)
  kLatencyThreshold,   // event(threshold.type == put)  — LatencyMonitoring
  kRequestsThreshold,  // event(threshold.type == primary) — RequestsMonitoring
};

std::string_view trigger_kind_name(TriggerKind kind);

struct Trigger {
  TriggerKind kind = TriggerKind::kInsert;
  std::string tier;         // kInsertInto, kTierFilled
  Duration period;          // kTimer interval
  double fill_percent = 0;  // kTierFilled
  Duration cold_after;      // kColdData idle threshold
};

// Classify an event(...) trigger expression. `params` resolves policy
// formal parameters (e.g. `t` in `event(time=t)` for `Tiera Low...(time t)`).
Result<Trigger> classify_trigger(const Expr& expr,
                                 const std::map<std::string, Value>& params);

}  // namespace wiera::policy
