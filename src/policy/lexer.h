// Lexer for the policy DSL.
//
// Notable quirks inherited from the paper's notation:
//  * '%' starts a line comment ("% two tiers specified ...") EXCEPT when it
//    immediately follows a number, where it is the percent sign ("50%").
//  * Identifiers may contain '-' (region names: US-West-1) when the dash is
//    followed by an alphanumeric.
//  * Numbers may carry an attached unit suffix ("5G", "40KB/s"); detached
//    units ("800 ms") surface as a number token followed by an identifier
//    and are merged by the parser.
#pragma once

#include <string>
#include <string_view>
#include <vector>

#include "common/status.h"

namespace wiera::policy {

enum class TokenKind {
  kIdent,
  kNumber,   // numeric literal; may carry a suffix ("G", "KB/s", "%")
  kString,   // "quoted"
  kLBrace,
  kRBrace,
  kLParen,
  kRParen,
  kColon,
  kSemicolon,
  kComma,
  kDot,
  kAssign,   // =
  kEq,       // ==
  kNe,       // !=
  kLt,
  kLe,
  kGt,
  kGe,
  kAnd,      // &&
  kOr,       // ||
  kEof,
};

std::string_view token_kind_name(TokenKind kind);

struct Token {
  TokenKind kind = TokenKind::kEof;
  std::string text;    // identifier text / string contents
  double number = 0;   // numeric value for kNumber
  std::string suffix;  // attached unit for kNumber ("G", "ms", "KB/s", "%")
  int line = 0;
  int column = 0;
};

// Tokenize the whole input; returns an error with line info on bad input.
Result<std::vector<Token>> tokenize(std::string_view source);

}  // namespace wiera::policy
