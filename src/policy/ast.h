// AST for the Tiera/Wiera policy specification language.
//
// The grammar is exactly what the paper's figures write (Figs. 1, 3, 4, 5,
// 6): a policy header (`Tiera Name(params) { ... }` or `Wiera Name() {...}`),
// tier declarations (`tier1: {name: Memcached, size: 5G};`), region
// declarations (`Region1 = {name:LowLatencyInstance, region:US-West,
// primary:True, tier1 = {...}}`), and event/response rules
// (`event(insert.into) : response { store(what:insert.object, to:tier1); }`).
#pragma once

#include <map>
#include <memory>
#include <string>
#include <variant>
#include <vector>

#include "common/status.h"
#include "common/time.h"

namespace wiera::policy {

// ---------------------------------------------------------------- values

// A literal in the DSL: numbers can carry units (5G, 800 ms, 50%, 40KB/s).
struct Value {
  enum class Kind {
    kNumber,    // bare number
    kBool,      // True / False / true / false
    kString,    // identifier-ish value: US-West, EventualConsistency
    kDuration,  // 800 ms, 30 seconds, 120 hours
    kSize,      // 5G, 30G, 128KB
    kPercent,   // 50%
    kRate,      // 40KB/s, 100KB/s
  };

  Kind kind = Kind::kNumber;
  double number = 0;       // kNumber / kPercent (0..100) / kRate (bytes/s)
  bool boolean = false;    // kBool
  std::string text;        // kString
  Duration duration;       // kDuration
  int64_t size_bytes = 0;  // kSize

  static Value number_of(double v) {
    Value out;
    out.kind = Kind::kNumber;
    out.number = v;
    return out;
  }
  static Value bool_of(bool v) {
    Value out;
    out.kind = Kind::kBool;
    out.boolean = v;
    return out;
  }
  static Value string_of(std::string s) {
    Value out;
    out.kind = Kind::kString;
    out.text = std::move(s);
    return out;
  }
  static Value duration_of(Duration d) {
    Value out;
    out.kind = Kind::kDuration;
    out.duration = d;
    return out;
  }
  static Value size_of(int64_t bytes) {
    Value out;
    out.kind = Kind::kSize;
    out.size_bytes = bytes;
    return out;
  }
  static Value percent_of(double pct) {
    Value out;
    out.kind = Kind::kPercent;
    out.number = pct;
    return out;
  }
  static Value rate_of(double bytes_per_sec) {
    Value out;
    out.kind = Kind::kRate;
    out.number = bytes_per_sec;
    return out;
  }

  std::string to_string() const;
};

// ---------------------------------------------------------------- expressions

enum class BinaryOp {
  kEq,   // == (and single '=' inside event(...), as in event(time=t))
  kNe,
  kLt,
  kLe,
  kGt,
  kGe,
  kAnd,
  kOr,
};

std::string_view binary_op_name(BinaryOp op);

struct Expr;
using ExprPtr = std::unique_ptr<Expr>;

// A dotted path such as `insert.into`, `object.location`,
// `threshold.latency`, `local_instance.isPrimary`.
struct PathExpr {
  std::vector<std::string> parts;
  std::string dotted() const;
};

struct LiteralExpr {
  Value value;
};

struct BinaryExpr {
  BinaryOp op;
  ExprPtr lhs;
  ExprPtr rhs;
};

struct Expr {
  std::variant<PathExpr, LiteralExpr, BinaryExpr> node;

  bool is_path() const { return std::holds_alternative<PathExpr>(node); }
  bool is_literal() const { return std::holds_alternative<LiteralExpr>(node); }
  bool is_binary() const { return std::holds_alternative<BinaryExpr>(node); }
  const PathExpr& path() const { return std::get<PathExpr>(node); }
  const LiteralExpr& literal() const { return std::get<LiteralExpr>(node); }
  const BinaryExpr& binary() const { return std::get<BinaryExpr>(node); }

  std::string to_string() const;
};

ExprPtr make_path(std::vector<std::string> parts);
ExprPtr make_literal(Value v);
ExprPtr make_binary(BinaryOp op, ExprPtr lhs, ExprPtr rhs);
ExprPtr clone_expr(const Expr& e);

// ---------------------------------------------------------------- statements

struct Stmt;

// Named-argument action call: store(what:insert.object, to:tier1,
// bandwidth:40KB/s). Argument order is preserved for diagnostics.
struct ActionStmt {
  ActionStmt() = default;
  ActionStmt(const ActionStmt& o);             // deep copy
  ActionStmt& operator=(const ActionStmt& o);
  ActionStmt(ActionStmt&&) = default;
  ActionStmt& operator=(ActionStmt&&) = default;

  std::string name;
  std::vector<std::pair<std::string, ExprPtr>> args;

  const Expr* arg(std::string_view arg_name) const {
    for (const auto& [n, e] : args) {
      if (n == arg_name) return e.get();
    }
    return nullptr;
  }
};

// insert.object.dirty = true;
struct AssignStmt {
  AssignStmt() = default;
  AssignStmt(const AssignStmt& o);             // deep copy
  AssignStmt& operator=(const AssignStmt& o);
  AssignStmt(AssignStmt&&) = default;
  AssignStmt& operator=(AssignStmt&&) = default;

  PathExpr target;
  ExprPtr value;
};

// if (...) {...} else if (...) {...} else {...}
struct IfStmt {
  struct Branch {
    Branch() = default;
    Branch(const Branch& o);                   // deep copy
    Branch& operator=(const Branch& o);
    Branch(Branch&&) = default;
    Branch& operator=(Branch&&) = default;

    ExprPtr condition;  // null for the final else
    std::vector<Stmt> body;
  };
  std::vector<Branch> branches;
};

struct Stmt {
  std::variant<ActionStmt, AssignStmt, IfStmt> node;

  bool is_action() const { return std::holds_alternative<ActionStmt>(node); }
  bool is_assign() const { return std::holds_alternative<AssignStmt>(node); }
  bool is_if() const { return std::holds_alternative<IfStmt>(node); }
  const ActionStmt& action() const { return std::get<ActionStmt>(node); }
  const AssignStmt& assign() const { return std::get<AssignStmt>(node); }
  const IfStmt& if_stmt() const { return std::get<IfStmt>(node); }
};

// ---------------------------------------------------------------- declarations

// event(<trigger>) : response { <stmts> }
struct EventRule {
  EventRule() = default;
  EventRule(const EventRule& o);               // deep copy
  EventRule& operator=(const EventRule& o);
  EventRule(EventRule&&) = default;
  EventRule& operator=(EventRule&&) = default;

  ExprPtr trigger;
  std::vector<Stmt> response;
};

// tier1: {name: Memcached, size: 5G};
struct TierDecl {
  std::string label;                    // tier1, tier2, ...
  std::map<std::string, Value> attrs;   // name, size, ...

  const Value* attr(const std::string& key) const {
    auto it = attrs.find(key);
    return it == attrs.end() ? nullptr : &it->second;
  }
};

// Region1 = {name:LowLatencyInstance, region:US-West, primary:True,
//            tier1 = {name:LocalMemory, size=5G}, ...}
struct RegionDecl {
  std::string label;                    // Region1, Region2, ...
  std::map<std::string, Value> attrs;   // name, region, primary, ...
  std::vector<TierDecl> tiers;          // nested tier blocks

  const Value* attr(const std::string& key) const {
    auto it = attrs.find(key);
    return it == attrs.end() ? nullptr : &it->second;
  }
  std::string instance_name() const {
    const Value* v = attr("name");
    return v == nullptr ? "" : v->text;
  }
  std::string region() const {
    const Value* v = attr("region");
    return v == nullptr ? "" : v->text;
  }
  bool primary() const {
    const Value* v = attr("primary");
    return v != nullptr && v->kind == Value::Kind::kBool && v->boolean;
  }
};

// A whole policy document.
struct PolicyDoc {
  bool is_wiera = false;  // "Wiera Name() {...}" vs "Tiera Name(...) {...}"
  std::string name;
  // Formal parameters, e.g. (time t) — a type/name pair each.
  std::vector<std::pair<std::string, std::string>> params;
  std::vector<TierDecl> tiers;      // Tiera-style tier declarations
  std::vector<RegionDecl> regions;  // Wiera-style region declarations
  std::vector<EventRule> events;

  const TierDecl* tier(const std::string& label) const {
    for (const auto& t : tiers) {
      if (t.label == label) return &t;
    }
    return nullptr;
  }
  const RegionDecl* region_decl(const std::string& label) const {
    for (const auto& r : regions) {
      if (r.label == label) return &r;
    }
    return nullptr;
  }
};

}  // namespace wiera::policy
