#include "policy/printer.h"

#include <cmath>

#include "common/strings.h"
#include "common/units.h"

namespace wiera::policy {

namespace {

// Render a duration with the largest unit that divides it exactly.
std::string duration_to_source(Duration d) {
  const int64_t us = d.us();
  if (us % 3600000000LL == 0 && us != 0) {
    return str_format("%lld hours", static_cast<long long>(us / 3600000000LL));
  }
  if (us % 60000000LL == 0 && us != 0) {
    return str_format("%lld minutes", static_cast<long long>(us / 60000000LL));
  }
  if (us % 1000000LL == 0) {
    return str_format("%lld seconds", static_cast<long long>(us / 1000000LL));
  }
  if (us % 1000LL == 0) {
    return str_format("%lld ms", static_cast<long long>(us / 1000LL));
  }
  // Sub-millisecond durations round up to ms (the grammar has no µs unit).
  return str_format("%lld ms", static_cast<long long>((us + 999) / 1000));
}

std::string size_to_source(int64_t bytes) {
  if (bytes % TiB == 0 && bytes != 0) {
    return str_format("%lldT", static_cast<long long>(bytes / TiB));
  }
  if (bytes % GiB == 0 && bytes != 0) {
    return str_format("%lldG", static_cast<long long>(bytes / GiB));
  }
  if (bytes % MiB == 0 && bytes != 0) {
    return str_format("%lldM", static_cast<long long>(bytes / MiB));
  }
  if (bytes % KiB == 0 && bytes != 0) {
    return str_format("%lldK", static_cast<long long>(bytes / KiB));
  }
  return str_format("%lldB", static_cast<long long>(bytes));
}

std::string rate_to_source(double bytes_per_sec) {
  const double kb = bytes_per_sec / 1024.0;
  if (kb >= 1024.0 && std::fmod(kb, 1024.0) == 0.0) {
    return str_format("%gMB/s", kb / 1024.0);
  }
  return str_format("%gKB/s", kb);
}

std::string expr_to_source(const Expr& expr);

std::string binary_to_source(const BinaryExpr& bin) {
  // Parenthesize nested logical operands to preserve associativity on
  // re-parse; comparisons never nest in this grammar.
  auto operand = [](const Expr& e) {
    if (e.is_binary() && (e.binary().op == BinaryOp::kAnd ||
                          e.binary().op == BinaryOp::kOr)) {
      return "(" + expr_to_source(e) + ")";
    }
    return expr_to_source(e);
  };
  return operand(*bin.lhs) + " " + std::string(binary_op_name(bin.op)) +
         " " + operand(*bin.rhs);
}

std::string expr_to_source(const Expr& expr) {
  if (expr.is_path()) return expr.path().dotted();
  if (expr.is_literal()) return value_to_source(expr.literal().value);
  return binary_to_source(expr.binary());
}

void stmt_to_source(const Stmt& stmt, std::string& out, int indent);

void stmts_to_source(const std::vector<Stmt>& stmts, std::string& out,
                     int indent) {
  for (const Stmt& stmt : stmts) stmt_to_source(stmt, out, indent);
}

void stmt_to_source(const Stmt& stmt, std::string& out, int indent) {
  const std::string pad(static_cast<size_t>(indent), ' ');
  if (stmt.is_assign()) {
    out += pad + stmt.assign().target.dotted() + " = " +
           expr_to_source(*stmt.assign().value) + ";\n";
    return;
  }
  if (stmt.is_action()) {
    const ActionStmt& action = stmt.action();
    out += pad + action.name + "(";
    for (size_t i = 0; i < action.args.size(); ++i) {
      if (i > 0) out += ", ";
      out += action.args[i].first + ":" +
             expr_to_source(*action.args[i].second);
    }
    out += ");\n";
    return;
  }
  // if / else if / else — always braced on output (unambiguous to re-parse).
  const IfStmt& if_stmt = stmt.if_stmt();
  for (size_t i = 0; i < if_stmt.branches.size(); ++i) {
    const auto& branch = if_stmt.branches[i];
    if (i == 0) {
      out += pad + "if (" + expr_to_source(*branch.condition) + ") {\n";
    } else if (branch.condition != nullptr) {
      out += pad + "else if (" + expr_to_source(*branch.condition) + ") {\n";
    } else {
      out += pad + "else {\n";
    }
    stmts_to_source(branch.body, out, indent + 3);
    out += pad + "}\n";
  }
}

void attrs_to_source(const std::map<std::string, Value>& attrs,
                     std::string& out, bool& first) {
  for (const auto& [key, value] : attrs) {
    if (!first) out += ", ";
    first = false;
    out += key + ": " + value_to_source(value);
  }
}

}  // namespace

std::string value_to_source(const Value& value) {
  switch (value.kind) {
    case Value::Kind::kNumber: return str_format("%g", value.number);
    case Value::Kind::kBool: return value.boolean ? "True" : "False";
    case Value::Kind::kString: return value.text;
    case Value::Kind::kDuration: return duration_to_source(value.duration);
    case Value::Kind::kSize: return size_to_source(value.size_bytes);
    case Value::Kind::kPercent: return str_format("%g%%", value.number);
    case Value::Kind::kRate: return rate_to_source(value.number);
  }
  return "?";
}

std::string to_source(const TierDecl& tier) {
  std::string out = tier.label + ": {";
  bool first = true;
  attrs_to_source(tier.attrs, out, first);
  out += "};";
  return out;
}

std::string to_source(const RegionDecl& region) {
  std::string out = region.label + " = {";
  bool first = true;
  attrs_to_source(region.attrs, out, first);
  for (const TierDecl& tier : region.tiers) {
    if (!first) out += ", ";
    first = false;
    out += tier.label + " = {";
    bool tier_first = true;
    attrs_to_source(tier.attrs, out, tier_first);
    out += "}";
  }
  out += " }";
  return out;
}

std::string to_source(const EventRule& rule) {
  std::string out = "event(" + (rule.trigger != nullptr
                                    ? expr_to_source(*rule.trigger)
                                    : std::string()) +
                    ") : response {\n";
  stmts_to_source(rule.response, out, 6);
  out += "   }";
  return out;
}

std::string to_source(const PolicyDoc& doc) {
  std::string out = doc.is_wiera ? "Wiera " : "Tiera ";
  out += doc.name + "(";
  for (size_t i = 0; i < doc.params.size(); ++i) {
    if (i > 0) out += ", ";
    out += doc.params[i].first + " " + doc.params[i].second;
  }
  out += ") {\n";
  for (const TierDecl& tier : doc.tiers) {
    out += "   " + to_source(tier) + "\n";
  }
  for (const RegionDecl& region : doc.regions) {
    out += "   " + to_source(region) + "\n";
  }
  for (const EventRule& rule : doc.events) {
    out += "   " + to_source(rule) + "\n";
  }
  out += "}\n";
  return out;
}

}  // namespace wiera::policy
