// Recursive-descent parser for the policy DSL, plus a semantic validator.
//
// Grammar (as written in the paper's figures):
//   policy  := ("Tiera" | "Wiera") NAME "(" [TYPE NAME {"," TYPE NAME}] ")"
//              "{" { tier_decl | region_decl | event_rule } "}"
//   tier    := LABEL ":" "{" kv {"," kv} "}" [";"]
//   region  := LABEL "=" "{" kv-or-tier {"," kv-or-tier} "}" [";"]
//   event   := "event" "(" expr ")" ":" "response" "{" { stmt } "}"
//   stmt    := if | assign | action
//   if      := "if" "(" expr ")" stmts ["else" (if | stmts)]
//              (bodies may be braced or run until else/})
//   assign  := path "=" expr [";"]
//   action  := NAME "(" [NAME ":" expr {"," NAME ":" expr}] ")" [";"]
//   expr    := and { "||" and } ; and := cmp { "&&" cmp }
//   cmp     := prim [("=="|"="|"!="|"<"|"<="|">"|">=") prim]
//   prim    := "(" expr ")" | literal | path
//
// A declaration block is classified as a region when it has a `region`
// attribute or nested tier blocks, otherwise as a tier.
#pragma once

#include <string_view>

#include "common/status.h"
#include "policy/ast.h"

namespace wiera::policy {

// Parse one policy document. Errors carry line numbers.
Result<PolicyDoc> parse_policy(std::string_view source);

// Semantic checks: known action names, known argument names, tier targets
// either declared in the doc or well-known symbolic targets
// (local_instance, all_regions, primary_instance, ...).
Status validate(const PolicyDoc& doc);

// Known response/action names (Tiera §2.1 + Wiera §3.2.3).
bool is_known_action(std::string_view name);

}  // namespace wiera::policy
