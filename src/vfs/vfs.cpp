#include "vfs/vfs.h"

#include <algorithm>
#include <cstring>

namespace wiera::vfs {

WieraVfs::WieraVfs(sim::Simulation& sim, geo::WieraPeer& peer,
                   Options options)
    : sim_(&sim), peer_(&peer), options_(options) {}

std::string WieraVfs::block_key(const std::string& path, int64_t index) {
  return path + ":blk:" + std::to_string(index);
}

Result<int> WieraVfs::open(const std::string& path, OpenFlags flags) {
  auto it = files_.find(path);
  if (it == files_.end()) {
    if (!flags.create) return not_found("vfs: " + path);
    it = files_.emplace(path, FileState{path, 0, 0}).first;
  }
  if (flags.truncate) it->second.size = 0;
  it->second.open_count++;
  const int fd = next_fd_++;
  fds_[fd] = FdState{path, flags.direct};
  return fd;
}

Status WieraVfs::close(int fd) {
  auto it = fds_.find(fd);
  if (it == fds_.end()) return invalid_argument("vfs: bad fd");
  auto file = files_.find(it->second.path);
  if (file != files_.end()) file->second.open_count--;
  fds_.erase(it);
  return ok_status();
}

Result<int64_t> WieraVfs::size(const std::string& path) const {
  auto it = files_.find(path);
  if (it == files_.end()) return not_found("vfs: " + path);
  return it->second.size;
}

bool WieraVfs::exists(const std::string& path) const {
  return files_.count(path) > 0;
}

std::vector<std::string> WieraVfs::list(const std::string& prefix) const {
  std::vector<std::string> out;
  for (const auto& [path, _] : files_) {
    if (path.rfind(prefix, 0) == 0) out.push_back(path);
  }
  return out;
}

sim::Task<Status> WieraVfs::unlink(std::string path) {
  auto it = files_.find(path);
  if (it == files_.end()) co_return not_found("vfs: " + path);
  const int64_t blocks =
      (it->second.size + options_.block_size - 1) / options_.block_size;
  files_.erase(it);
  for (int64_t i = 0; i < blocks; ++i) {
    // Best effort: remove the blocks from the local instance.
    co_await peer_->local().remove(block_key(path, i));
  }
  co_return ok_status();
}

sim::Task<Result<Blob>> WieraVfs::read_block(const std::string& path,
                                             int64_t index, bool direct) {
  geo::GetRequest req;
  req.key = block_key(path, index);
  req.client = "vfs";
  req.direct = direct;
  auto resp = co_await peer_->client_get(std::move(req));
  if (!resp.ok()) co_return resp.status();
  co_return std::move(resp).value().value;
}

sim::Task<Status> WieraVfs::write_block(const std::string& path,
                                        int64_t index, Blob data,
                                        bool direct) {
  geo::PutRequest req;
  req.key = block_key(path, index);
  req.value = std::move(data);
  req.client = "vfs";
  req.direct = direct;
  auto resp = co_await peer_->client_put(std::move(req));
  if (!resp.ok()) co_return resp.status();
  co_return ok_status();
}

sim::Task<Result<int64_t>> WieraVfs::pread(int fd, int64_t offset,
                                           int64_t length, Bytes* out) {
  auto fd_it = fds_.find(fd);
  if (fd_it == fds_.end()) co_return invalid_argument("vfs: bad fd");
  const FdState fd_state = fd_it->second;
  auto file_it = files_.find(fd_state.path);
  if (file_it == files_.end()) co_return not_found("vfs: file gone");
  const int64_t file_size = file_it->second.size;

  if (offset >= file_size) co_return static_cast<int64_t>(0);  // EOF
  length = std::min(length, file_size - offset);
  if (out != nullptr) {
    out->assign(static_cast<size_t>(length), 0);
  }

  const int64_t bs = options_.block_size;
  int64_t done = 0;
  while (done < length) {
    const int64_t pos = offset + done;
    const int64_t block = pos / bs;
    const int64_t in_block = pos % bs;
    const int64_t chunk = std::min(bs - in_block, length - done);

    auto data = co_await read_block(fd_state.path, block, fd_state.direct);
    if (data.ok() && out != nullptr) {
      const int64_t avail =
          std::min<int64_t>(static_cast<int64_t>(data->size()) - in_block,
                            chunk);
      if (avail > 0) {
        std::memcpy(out->data() + done, data->data() + in_block,
                    static_cast<size_t>(avail));
      }
    }
    // A missing block reads as zeros (sparse file semantics).
    done += chunk;
    reads_++;
  }
  co_return length;
}

sim::Task<Result<int64_t>> WieraVfs::pwrite(int fd, int64_t offset,
                                            Blob data) {
  auto fd_it = fds_.find(fd);
  if (fd_it == fds_.end()) co_return invalid_argument("vfs: bad fd");
  const FdState fd_state = fd_it->second;
  auto file_it = files_.find(fd_state.path);
  if (file_it == files_.end()) co_return not_found("vfs: file gone");

  const int64_t bs = options_.block_size;
  const auto length = static_cast<int64_t>(data.size());
  int64_t done = 0;
  while (done < length) {
    const int64_t pos = offset + done;
    const int64_t block = pos / bs;
    const int64_t in_block = pos % bs;
    const int64_t chunk = std::min(bs - in_block, length - done);

    Blob block_data;
    if (in_block == 0 && chunk == bs) {
      // Full-block overwrite.
      block_data = Blob(Bytes(data.data() + done, data.data() + done + bs));
    } else {
      // Read-modify-write for partial blocks.
      Bytes merged(static_cast<size_t>(bs), 0);
      auto existing =
          co_await read_block(fd_state.path, block, fd_state.direct);
      if (existing.ok()) {
        std::memcpy(merged.data(), existing->data(),
                    std::min<size_t>(existing->size(),
                                     static_cast<size_t>(bs)));
      }
      std::memcpy(merged.data() + in_block, data.data() + done,
                  static_cast<size_t>(chunk));
      block_data = Blob(std::move(merged));
    }
    Status st = co_await write_block(fd_state.path, block,
                                     std::move(block_data), fd_state.direct);
    if (!st.ok()) co_return st;
    done += chunk;
    writes_++;
  }

  // Re-find after the write loop: a concurrent unlink can erase the entry
  // while a block write is suspended, leaving file_it dangling.
  file_it = files_.find(fd_state.path);
  if (file_it == files_.end()) co_return not_found("vfs: file gone");
  file_it->second.size = std::max(file_it->second.size, offset + length);
  co_return length;
}

sim::Task<Status> WieraVfs::fsync(int fd) {
  if (fds_.count(fd) == 0) co_return invalid_argument("vfs: bad fd");
  co_await sim_->delay(usec(20));  // syscall + barrier cost
  co_return ok_status();
}

}  // namespace wiera::vfs
