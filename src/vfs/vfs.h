// WieraVfs — POSIX-style file layer over a Wiera instance (FUSE stand-in).
//
// §5.4: "we have built our own POSIX-compliant file system using FUSE to
// run applications that require a POSIX interface to Wiera, so that all
// application requests are forwarded to Wiera through FUSE. Thus,
// applications that require a POSIX interface can run on top of Wiera
// without any modification."
//
// Files are chunked into fixed-size blocks; block i of file /p is the Wiera
// object "/p:blk:i". Partial-block writes read-modify-write the block.
// O_DIRECT is honoured end to end: the flag travels with each Wiera request
// down to the block tier, bypassing its buffer cache (what MySQL and
// SysBench set in §5.4 to defeat double caching).
#pragma once

#include <cstdint>
#include <map>
#include <memory>
#include <string>
#include <vector>

#include "common/units.h"
#include "wiera/peer.h"

namespace wiera::vfs {

// Open-file flags (the subset the experiments use).
struct OpenFlags {
  bool create = false;
  bool direct = false;    // O_DIRECT
  bool truncate = false;  // O_TRUNC
};

class WieraVfs {
 public:
  struct Options {
    int64_t block_size = 16 * KiB;  // SysBench/InnoDB default page scale
  };

  // The VFS talks to the co-located Wiera peer (FUSE daemon runs on the
  // same VM as the instance).
  WieraVfs(sim::Simulation& sim, geo::WieraPeer& peer, Options options);
  WieraVfs(sim::Simulation& sim, geo::WieraPeer& peer)
      : WieraVfs(sim, peer, Options{}) {}

  int64_t block_size() const { return options_.block_size; }

  // ---- POSIX-ish surface ----
  Result<int> open(const std::string& path, OpenFlags flags);
  Status close(int fd);
  Result<int64_t> size(const std::string& path) const;
  bool exists(const std::string& path) const;
  std::vector<std::string> list(const std::string& prefix) const;
  sim::Task<Status> unlink(std::string path);

  // pread/pwrite: return bytes transferred. Reads past EOF are truncated;
  // writes extend the file.
  sim::Task<Result<int64_t>> pread(int fd, int64_t offset, int64_t length,
                                   Bytes* out = nullptr);
  sim::Task<Result<int64_t>> pwrite(int fd, int64_t offset, Blob data);
  // Durability barrier. Writes here are synchronous through the Wiera
  // protocol already, so this only models the syscall cost.
  sim::Task<Status> fsync(int fd);

  // ---- stats ----
  int64_t reads() const { return reads_; }
  int64_t writes() const { return writes_; }

 private:
  struct FileState {
    std::string path;
    int64_t size = 0;
    int open_count = 0;
  };
  struct FdState {
    std::string path;
    bool direct = false;
  };

  static std::string block_key(const std::string& path, int64_t index);
  sim::Task<Result<Blob>> read_block(const std::string& path, int64_t index,
                                     bool direct);
  sim::Task<Status> write_block(const std::string& path, int64_t index,
                                Blob data, bool direct);

  sim::Simulation* sim_;
  geo::WieraPeer* peer_;
  Options options_;
  std::map<std::string, FileState> files_;
  std::map<int, FdState> fds_;
  int next_fd_ = 3;  // 0..2 taken, as tradition demands
  int64_t reads_ = 0;
  int64_t writes_ = 0;
};

}  // namespace wiera::vfs
