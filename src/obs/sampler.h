// Registry scraper for the metrics pipeline (docs/METRICS_PIPELINE.md).
//
// A Sampler turns the Registry's instantaneous instruments into ring-buffer
// time series (obs::TimeSeries): each scrape() appends one sample per
// counter/gauge series and three per histogram series (cumulative count,
// cumulative sum in µs, and the instantaneous p99). Series ids are the
// registry's own "name{labels}" keys, with "#count" / "#sum_us" / "#p99_us"
// suffixes for the histogram-derived series, so a series id in a dump maps
// straight back to the instrument it came from.
//
// The Sampler owns no timer: a sim-layer driver (sim::ObsPipeline) calls
// scrape() on the virtual clock. Scraping is a pure read of the registry
// plus ring-buffer writes — it schedules nothing and perturbs nothing — and
// a Sampler that is never scraped holds no series at all, which is what
// keeps the pipeline default-off and byte-invariant.
#pragma once

#include <cstdint>
#include <map>
#include <string>
#include <vector>

#include "obs/metrics.h"
#include "obs/timeseries.h"

namespace wiera::obs {

class Sampler {
 public:
  struct Config {
    // Ring capacity of every series created by this sampler.
    size_t keep = 512;
  };

  Sampler() = default;
  explicit Sampler(Config config) : config_(config) {}
  Sampler(const Sampler&) = delete;
  Sampler& operator=(const Sampler&) = delete;

  // Append one sample per registry series at virtual time `now`. Series are
  // created on first sight; a series that disappears from the registry
  // (never happens today — instruments are immortal) just stops growing.
  void scrape(const Registry& registry, TimePoint now);

  int64_t scrapes() const { return scrapes_; }
  TimePoint last_scrape() const { return last_scrape_; }
  size_t series_count() const { return series_.size(); }

  // nullptr when the id was never scraped. Ids: "name{labels}" for counters
  // and gauges, "name{labels}#count|#sum_us|#p99_us" for histograms.
  const TimeSeries* series(const std::string& id) const;
  // All ids in deterministic (sorted) order.
  std::vector<std::string> series_ids() const;

  // {"scrapes":N,"series":{"id":{...TimeSeries...},...}} — sorted ids, the
  // shape sweep artifacts store next to the telemetry snapshot.
  std::string render_json() const;

 private:
  TimeSeries& upsert(const std::string& id);

  Config config_;
  int64_t scrapes_ = 0;
  TimePoint last_scrape_;
  std::map<std::string, TimeSeries> series_;
};

}  // namespace wiera::obs
