#include "obs/sampler.h"

#include "common/strings.h"

namespace wiera::obs {

TimeSeries& Sampler::upsert(const std::string& id) {
  auto it = series_.find(id);
  if (it == series_.end()) {
    it = series_.emplace(id, TimeSeries(config_.keep)).first;
  }
  return it->second;
}

void Sampler::scrape(const Registry& registry, TimePoint now) {
  registry.for_each_counter(
      [&](const std::string& name, const std::string& labels,
          const Counter& c) {
        upsert(name + labels).record(now, static_cast<double>(c.value()));
      });
  registry.for_each_gauge([&](const std::string& name,
                              const std::string& labels, const Gauge& g) {
    upsert(name + labels).record(now, g.value());
  });
  registry.for_each_histogram(
      [&](const std::string& name, const std::string& labels,
          const Histogram& h) {
        const std::string id = name + labels;
        upsert(id + "#count").record(now, static_cast<double>(h.count()));
        upsert(id + "#sum_us").record(now, static_cast<double>(h.sum().us()));
        upsert(id + "#p99_us")
            .record(now, static_cast<double>(h.percentile(0.99).us()));
      });
  scrapes_++;
  last_scrape_ = now;
}

const TimeSeries* Sampler::series(const std::string& id) const {
  auto it = series_.find(id);
  return it == series_.end() ? nullptr : &it->second;
}

std::vector<std::string> Sampler::series_ids() const {
  std::vector<std::string> out;
  out.reserve(series_.size());
  for (const auto& [id, ts] : series_) out.push_back(id);
  return out;
}

std::string Sampler::render_json() const {
  std::string out =
      str_format("{\"scrapes\":%lld,\"series\":{",
                 static_cast<long long>(scrapes_));
  bool first = true;
  for (const auto& [id, ts] : series_) {
    if (!first) out += ",";
    first = false;
    out += "\"" + json_escape(id) + "\":" + ts.render_json();
  }
  out += "}}";
  return out;
}

}  // namespace wiera::obs
