#include "obs/journal.h"

#include <cstdlib>
#include <cstring>

#include "common/strings.h"

namespace wiera::obs {

Event::~Event() {
  if (journal_ == nullptr) return;
  line_ += "}";
  journal_->write_line(line_);
}

Event& Event::str(std::string_view key, std::string_view value) {
  if (journal_ == nullptr) return *this;
  line_ += ",\"" + json_escape(key) + "\":\"" + json_escape(value) + "\"";
  return *this;
}

Event& Event::num(std::string_view key, int64_t value) {
  if (journal_ == nullptr) return *this;
  line_ += ",\"" + json_escape(key) +
           "\":" + str_format("%lld", static_cast<long long>(value));
  return *this;
}

Event& Event::boolean(std::string_view key, bool value) {
  if (journal_ == nullptr) return *this;
  line_ += ",\"" + json_escape(key) + "\":" + (value ? "true" : "false");
  return *this;
}

Event& Event::trace(const TraceContext& ctx) {
  if (journal_ == nullptr || !ctx.active()) return *this;
  line_ += str_format(",\"trace\":\"0x%016llx\",\"span\":\"0x%016llx\"",
                      static_cast<unsigned long long>(ctx.trace_id),
                      static_cast<unsigned long long>(ctx.span_id));
  return *this;
}

Journal::Journal() {
  const char* env = std::getenv("WIERA_JOURNAL");
  if (env == nullptr || env[0] == '\0') return;
  if (std::strcmp(env, "stderr") == 0 || std::strcmp(env, "-") == 0) {
    sink_ = stderr;
  } else {
    // Append so several simulations in one process (gtest) share the file.
    sink_ = std::fopen(env, "ae");
    owns_sink_ = sink_ != nullptr;
  }
}

Journal::~Journal() {
  if (owns_sink_ && sink_ != nullptr) std::fclose(sink_);
}

Event Journal::event(std::string_view component, std::string_view name) {
  if (!enabled()) return Event();
  const int64_t ts =
      clock_ ? (clock_() - TimePoint::origin()).us() : 0;
  std::string line = str_format("{\"ts_us\":%lld,\"component\":\"",
                                static_cast<long long>(ts));
  line += json_escape(component);
  line += "\",\"event\":\"";
  line += json_escape(name);
  line += "\"";
  return Event(this, std::move(line));
}

void Journal::write_line(const std::string& line) {
  std::fprintf(sink_, "%s\n", line.c_str());
  events_written_++;
}

}  // namespace wiera::obs
