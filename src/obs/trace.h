// Distributed tracing: Dapper-style spans over the simulation's virtual
// clock, collected in a bounded in-memory buffer and reassembled on demand
// into per-request trees with hop-latency breakdowns (TraceView).
//
// Determinism contract (docs/DETERMINISM.md): trace ids come from a
// *dedicated* RNG stream seeded from the simulation seed — never from the
// shared sim RNG — and span ids from a sequential counter, so the same seed
// always yields the same ids and telemetry can never perturb the schedule.
// Id generation runs whether or not retention is enabled; `set_retain(false)`
// only stops the collector from storing spans (pure memory, schedules
// nothing), which is what keeps the determinism trace hash byte-identical
// with telemetry on vs. off.
#pragma once

#include <cstdint>
#include <deque>
#include <functional>
#include <map>
#include <string>
#include <string_view>
#include <vector>

#include "common/rng.h"
#include "common/time.h"
#include "common/trace.h"

namespace wiera::obs {

struct Span {
  uint64_t trace_id = 0;
  uint64_t span_id = 0;
  uint64_t parent_span_id = 0;  // 0 for a root span
  std::string name;             // e.g. "client.put", "rpc.server peer.client_put"
  std::string host;             // emitting instance/node, e.g. "NYC"
  TimePoint start;
  TimePoint end = TimePoint::max();  // max() while the span is open
  std::string status = "ok";
  std::vector<std::string> annotations;  // "key=value" strings, in order

  bool open() const { return end == TimePoint::max(); }
  Duration duration() const {
    return open() ? Duration::zero() : end - start;
  }
};

class Tracer {
 public:
  explicit Tracer(uint64_t seed);

  // Virtual-clock hook for span start/end stamps.
  void set_clock(std::function<TimePoint()> clock) {
    clock_ = std::move(clock);
  }
  // Retention gate: when off, ids are still generated (see header comment)
  // but nothing is stored.
  void set_retain(bool on) { retain_ = on; }
  bool retain() const { return retain_; }

  // New root span; trace id drawn from the dedicated id RNG.
  TraceContext start_trace(std::string_view name, std::string_view host);
  // Child span. An inactive parent returns an inactive context without
  // consuming the span counter (the untraced state of a request is decided
  // by its call path, not by the schedule, so this stays deterministic).
  TraceContext start_span(std::string_view name, std::string_view host,
                          const TraceContext& parent);
  void end_span(const TraceContext& ctx, std::string_view status = "ok");
  // Attach a "key=value" annotation to an open or closed retained span.
  void annotate(const TraceContext& ctx, std::string annotation);
  void annotate(uint64_t span_id, std::string annotation);

  // Leak detection (SimChecker hooks into this at quiescence).
  int64_t open_count() const { return open_count_; }
  std::vector<std::string> open_span_names() const;

  int64_t dropped() const { return dropped_; }
  size_t span_count() const { return spans_.size(); }
  // Deterministic oldest-to-newest visitation of every retained span — the
  // attribution reporter's scan surface for worst-span selection.
  void for_each_span(const std::function<void(const Span&)>& fn) const {
    for (const Span& s : spans_) fn(s);
  }
  const Span* find_span(uint64_t span_id) const;
  // All retained spans of one trace, in creation order.
  std::vector<const Span*> trace_spans(uint64_t trace_id) const;
  void clear();

 private:
  // Bounded collector: drop-oldest keeps the tail of a long run — the spans
  // a failure report actually wants — while capping memory.
  static constexpr size_t kCapacity = 16384;

  TimePoint now() const { return clock_ ? clock_() : TimePoint::origin(); }
  void retain_span(Span span);

  Rng id_rng_;
  uint64_t span_seq_ = 0;
  bool retain_ = true;
  std::function<TimePoint()> clock_;

  // deque: stable element addresses under push_back/pop_front, so the id
  // index can hold raw pointers.
  std::deque<Span> spans_;
  std::map<uint64_t, Span*> by_id_;
  int64_t open_count_ = 0;
  int64_t dropped_ = 0;
};

// Reassembles one trace's spans into a tree and renders the hop-latency
// breakdown. Built lazily from the tracer's collector; cheap to construct.
class TraceView {
 public:
  TraceView(const Tracer& tracer, uint64_t trace_id);

  bool empty() const { return spans_.empty(); }
  size_t span_count() const { return spans_.size(); }
  const std::vector<const Span*>& spans() const { return spans_; }
  // The root span (parent_span_id == 0), or nullptr when the root was
  // dropped from the bounded collector.
  const Span* root() const;
  // Exactly one root and every non-root parent resolves to a retained span
  // (no orphans); duplicate span ids are impossible by construction.
  bool well_formed() const;
  // ASCII tree: one line per span with start offset from the trace root,
  // duration, host, status and annotations. Children sorted by start time.
  std::string render() const;

 private:
  void render_node(const Span* span, int depth, TimePoint origin,
                   std::string& out) const;

  uint64_t trace_id_;
  std::vector<const Span*> spans_;
  std::map<uint64_t, std::vector<const Span*>> children_;
};

}  // namespace wiera::obs
