// Hot-key / workload analytics: a space-saving top-K sketch per peer
// (docs/METRICS_PIPELINE.md).
//
// Metwally's space-saving algorithm tracks the K most frequent ids in a
// stream with bounded memory and a per-entry overestimate bound: an untracked
// id evicts the current minimum and inherits its count as `overestimate`, so
// `count - overestimate` is a guaranteed lower bound on the id's true
// frequency. Two sketches run side by side — one over keys, one over tenants
// (the requesting client id) — and both rotate on a sliding window of two
// epochs aligned to the virtual clock, so top_keys() reports recent access
// rates rather than lifetime totals. That windowed skew signal is what
// Anna-style hot-key promotion and the placement planner consume
// (ROADMAP items 1 and 3).
//
// Default-off: a disabled KeyStats records nothing and registers no metrics,
// leaving registry dumps and bench figures byte-identical. Everything is
// driven by caller-supplied virtual timestamps — no wall clock, no
// scheduling — so an enabled sketch is still deterministic per seed.
#pragma once

#include <cstdint>
#include <map>
#include <string>
#include <vector>

#include "common/time.h"
#include "obs/metrics.h"

namespace wiera::obs {

class KeyStats {
 public:
  struct Config {
    bool enabled = false;
    // Tracked ids per sketch (keys and tenants each get their own budget).
    size_t top_k = 32;
    // Sliding-window epoch length; rates cover the current + previous epoch.
    Duration window = sec(5);
  };

  struct Entry {
    std::string id;
    int64_t count = 0;         // observed occurrences (upper bound)
    int64_t overestimate = 0;  // count - overestimate lower-bounds the truth
    double rate_per_sec = 0.0;
  };

  KeyStats() = default;
  explicit KeyStats(Config config) : config_(config) {}

  void configure(Config config) { config_ = config; }
  bool enabled() const { return config_.enabled; }
  const Config& config() const { return config_; }

  // Attach registry exposure: wiera_keystats_* instruments labeled
  // {instance=...}, created lazily on the first recorded access so a bound
  // but never-exercised (or disabled) KeyStats adds no series.
  void bind(Registry* registry, std::string instance);

  // Record one access of `key` by `tenant` at virtual time `now`.
  // No-op while disabled.
  void record_access(const std::string& key, const std::string& tenant,
                     TimePoint now, bool is_put);

  int64_t total_accesses() const { return total_; }
  int64_t put_accesses() const { return puts_; }

  // Top-n entries by windowed count (current + previous epoch), count then
  // id as tie-break — a deterministic order for dumps and tests.
  std::vector<Entry> top_keys(size_t n, TimePoint now) const;
  std::vector<Entry> top_tenants(size_t n, TimePoint now) const;

  // {"window_us":...,"total":N,"keys":[{"id":..,"count":..,...}],
  //  "tenants":[...]} — the snapshot-dump shape.
  std::string render_json(TimePoint now) const;

 private:
  struct Slot {
    int64_t count = 0;
    int64_t overestimate = 0;
  };
  // One space-saving sketch: map keeps iteration (and min tie-break)
  // deterministic.
  using Sketch = std::map<std::string, Slot>;

  void rotate(TimePoint now);
  static void sketch_record(Sketch& sketch, const std::string& id,
                            size_t cap);
  std::vector<Entry> merged_top(const Sketch& cur, const Sketch& prev,
                                size_t n, TimePoint now) const;

  Config config_;
  Registry* registry_ = nullptr;
  std::string instance_;
  Counter* accesses_ = nullptr;
  Gauge* tracked_keys_ = nullptr;
  Gauge* hot_key_rate_ = nullptr;

  TimePoint epoch_start_;
  Sketch keys_cur_, keys_prev_;
  Sketch tenants_cur_, tenants_prev_;
  int64_t total_ = 0;
  int64_t puts_ = 0;
};

}  // namespace wiera::obs
