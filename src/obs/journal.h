// Structured event journal: machine-parseable JSONL alongside (not instead
// of) the human-oriented WIERA_LOG stream.
//
// One JSON object per line, flat schema (docs/OBSERVABILITY.md):
//   {"ts_us":<virtual µs>,"component":"peer","event":"repair",
//    "trace":"0x<trace_id>","span":"0x<span_id>", ...free-form fields...}
// ts_us/component/event are always present; trace/span appear when the
// emitting code had an active TraceContext, so a chaos failure can be
// diagnosed by grepping a single seed's journal for its trace id.
//
// Sink selection is via the WIERA_JOURNAL env var: "stderr" (or "-") writes
// to stderr, any other value is opened as a file path, unset disables the
// journal entirely. Emission is pure IO — it never touches the simulation
// schedule, so enabling it cannot perturb the determinism trace hash.
#pragma once

#include <cstdint>
#include <cstdio>
#include <functional>
#include <string>
#include <string_view>

#include "common/time.h"
#include "common/trace.h"

namespace wiera::obs {

class Journal;

// Builder for one JSONL line; emits on destruction. Cheap no-op when the
// journal is disabled.
class Event {
 public:
  Event(Event&& other) noexcept
      : journal_(other.journal_), line_(std::move(other.line_)) {
    other.journal_ = nullptr;
  }
  Event(const Event&) = delete;
  Event& operator=(const Event&) = delete;
  ~Event();

  Event& str(std::string_view key, std::string_view value);
  Event& num(std::string_view key, int64_t value);
  Event& num(std::string_view key, uint64_t value) {
    return num(key, static_cast<int64_t>(value));
  }
  Event& boolean(std::string_view key, bool value);
  Event& trace(const TraceContext& ctx);

 private:
  friend class Journal;
  Event() = default;  // disabled event
  Event(Journal* journal, std::string line)
      : journal_(journal), line_(std::move(line)) {}

  Journal* journal_ = nullptr;  // null => every call is a no-op
  std::string line_;
};

class Journal {
 public:
  // Reads WIERA_JOURNAL to pick the sink (see header comment).
  Journal();
  ~Journal();
  Journal(const Journal&) = delete;
  Journal& operator=(const Journal&) = delete;

  bool enabled() const { return enabled_ && sink_ != nullptr; }
  // Master gate (telemetry on/off); the sink still has to be configured.
  void set_enabled(bool on) { enabled_ = on; }
  void set_clock(std::function<TimePoint()> clock) {
    clock_ = std::move(clock);
  }

  // Start an event line; fields chain, the line is written when the Event
  // goes out of scope.
  Event event(std::string_view component, std::string_view name);

  int64_t events_written() const { return events_written_; }

 private:
  friend class Event;
  void write_line(const std::string& line);

  bool enabled_ = true;
  std::FILE* sink_ = nullptr;
  bool owns_sink_ = false;
  std::function<TimePoint()> clock_;
  int64_t events_written_ = 0;
};

}  // namespace wiera::obs
