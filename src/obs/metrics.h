// Metrics registry: labeled Counter/Gauge/Histogram families with
// deterministic iteration order, a Prometheus-style text exposition and a
// JSON snapshot.
//
// Naming conventions (docs/OBSERVABILITY.md): metric names are
// snake_case with a subsystem prefix (wiera_, rpc_, tiera_) and a unit
// suffix where one applies (_total for counters, _us for histograms of
// virtual-clock durations). Labels identify the emitting instance
// ({instance="NYC"}) and, where a metric is per-target, the far end
// ({target="Paris"}).
//
// The registry is single-threaded like the simulation itself ("lock-free in
// sim" means there is nothing to lock); families are std::map-backed so
// render_text() output is byte-stable across runs — bench snapshots diff
// cleanly and CI can assert on exact lines. Instruments are owned by the
// registry and handed out as stable pointers: a migrated component stores
// `obs::Counter* repairs_` and its legacy accessor becomes a thin view
// (`return repairs_->value();`).
#pragma once

#include <cstdint>
#include <functional>
#include <map>
#include <memory>
#include <string>
#include <vector>

#include "common/histogram.h"
#include "common/time.h"

namespace wiera::obs {

// Ordered label set; rendered as {k1="v1",k2="v2"} with keys sorted, so two
// call sites naming labels in different orders hit the same instrument.
using LabelSet = std::map<std::string, std::string>;

class Counter {
 public:
  void inc(int64_t delta = 1) { value_ += delta; }
  int64_t value() const { return value_; }

 private:
  int64_t value_ = 0;
};

class Gauge {
 public:
  void set(double v) { value_ = v; }
  void add(double delta) { value_ += delta; }
  double value() const { return value_; }

 private:
  double value_ = 0;
};

// Thin wrapper over LatencyHistogram so percentile logic lives in exactly one
// place (the satellite dedupe): obs::Histogram adds nothing but the registry
// identity. Values are virtual-clock durations in microseconds.
class Histogram {
 public:
  void record(Duration d) { hist_.record(d); }
  int64_t count() const { return hist_.count(); }
  Duration sum() const { return hist_.sum(); }
  Duration mean() const { return hist_.mean(); }
  Duration percentile(double q) const { return hist_.percentile(q); }
  const LatencyHistogram& latency() const { return hist_; }

  // Windowed-delta support (docs/METRICS_PIPELINE.md): copy the cumulative
  // state at a window boundary, then diff against a later state to get a
  // histogram of just the recordings in between — exact nearest-rank
  // percentiles while the instrument is still in its exact regime.
  LatencyHistogram snapshot() const { return hist_; }
  LatencyHistogram diff(const LatencyHistogram& earlier) const {
    return hist_.delta_since(earlier);
  }

 private:
  LatencyHistogram hist_;
};

class Registry {
 public:
  Registry() = default;
  Registry(const Registry&) = delete;
  Registry& operator=(const Registry&) = delete;

  // Get-or-create. Pointers are stable for the registry's lifetime.
  Counter* counter(const std::string& name, const LabelSet& labels = {});
  Gauge* gauge(const std::string& name, const LabelSet& labels = {});
  Histogram* histogram(const std::string& name, const LabelSet& labels = {});

  // Read-only lookups for tests/tooling; 0 when the series does not exist.
  int64_t counter_value(const std::string& name,
                        const LabelSet& labels = {}) const;
  // Sum over every label combination of the family (e.g. total shed calls
  // across all endpoints).
  int64_t counter_sum(const std::string& name) const;
  const Histogram* find_histogram(const std::string& name,
                                  const LabelSet& labels = {}) const;

  // Deterministic read-only visitation (families sorted by name, series by
  // label string) — the obs::Sampler's scrape surface. The label argument is
  // the rendered label string ('{k="v"}' or "").
  void for_each_counter(
      const std::function<void(const std::string& name,
                               const std::string& labels, const Counter&)>& fn)
      const;
  void for_each_gauge(
      const std::function<void(const std::string& name,
                               const std::string& labels, const Gauge&)>& fn)
      const;
  void for_each_histogram(
      const std::function<void(const std::string& name,
                               const std::string& labels, const Histogram&)>&
          fn) const;

  // Prometheus-style text exposition: families sorted by name, series by
  // label string. Histograms render count/sum plus p50/p95/p99 gauge lines
  // (the sim has no scrape loop, so quantiles beat +Inf bucket dumps).
  std::string render_text() const;
  // Same content as a single JSON object keyed by "name{labels}".
  std::string render_json() const;

 private:
  template <typename T>
  struct Family {
    // label-string -> instrument; map keeps series order deterministic.
    std::map<std::string, std::unique_ptr<T>> series;
  };

  static std::string label_string(const LabelSet& labels);

  std::map<std::string, Family<Counter>> counters_;
  std::map<std::string, Family<Gauge>> gauges_;
  std::map<std::string, Family<Histogram>> histograms_;
};

}  // namespace wiera::obs
