#include "obs/trace.h"

#include <algorithm>

#include "common/strings.h"

namespace wiera::obs {

namespace {
// Keep the tracer's id stream independent of everything else derived from
// the seed (sim RNG, workload RNGs) so adding a trace never shifts them.
constexpr uint64_t kTracerSeedSalt = 0x7261636572696457ull;  // "WieraTrace"
}  // namespace

Tracer::Tracer(uint64_t seed) : id_rng_(seed ^ kTracerSeedSalt) {}

TraceContext Tracer::start_trace(std::string_view name,
                                 std::string_view host) {
  TraceContext ctx;
  do {
    ctx.trace_id = id_rng_.next_u64();
  } while (ctx.trace_id == 0);
  ctx.span_id = ++span_seq_;
  ctx.parent_span_id = 0;
  if (retain_) {
    Span span;
    span.trace_id = ctx.trace_id;
    span.span_id = ctx.span_id;
    span.name = std::string(name);
    span.host = std::string(host);
    span.start = now();
    retain_span(std::move(span));
  }
  return ctx;
}

TraceContext Tracer::start_span(std::string_view name, std::string_view host,
                                const TraceContext& parent) {
  if (!parent.active()) return {};
  TraceContext ctx;
  ctx.trace_id = parent.trace_id;
  ctx.span_id = ++span_seq_;
  ctx.parent_span_id = parent.span_id;
  if (retain_) {
    Span span;
    span.trace_id = ctx.trace_id;
    span.span_id = ctx.span_id;
    span.parent_span_id = ctx.parent_span_id;
    span.name = std::string(name);
    span.host = std::string(host);
    span.start = now();
    retain_span(std::move(span));
  }
  return ctx;
}

void Tracer::end_span(const TraceContext& ctx, std::string_view status) {
  auto it = by_id_.find(ctx.span_id);
  if (it == by_id_.end() || !it->second->open()) return;
  it->second->end = now();
  it->second->status = std::string(status);
  open_count_--;
}

void Tracer::annotate(const TraceContext& ctx, std::string annotation) {
  annotate(ctx.span_id, std::move(annotation));
}

void Tracer::annotate(uint64_t span_id, std::string annotation) {
  auto it = by_id_.find(span_id);
  if (it == by_id_.end()) return;
  it->second->annotations.push_back(std::move(annotation));
}

std::vector<std::string> Tracer::open_span_names() const {
  std::vector<std::string> out;
  for (const Span& span : spans_) {
    if (span.open()) out.push_back(span.name + " (" + span.host + ")");
  }
  return out;
}

const Span* Tracer::find_span(uint64_t span_id) const {
  auto it = by_id_.find(span_id);
  return it == by_id_.end() ? nullptr : it->second;
}

std::vector<const Span*> Tracer::trace_spans(uint64_t trace_id) const {
  std::vector<const Span*> out;
  for (const Span& span : spans_) {
    if (span.trace_id == trace_id) out.push_back(&span);
  }
  return out;
}

void Tracer::clear() {
  spans_.clear();
  by_id_.clear();
  open_count_ = 0;
  dropped_ = 0;
}

void Tracer::retain_span(Span span) {
  if (spans_.size() >= kCapacity) {
    const Span& oldest = spans_.front();
    if (oldest.open()) open_count_--;
    by_id_.erase(oldest.span_id);
    spans_.pop_front();
    dropped_++;
  }
  spans_.push_back(std::move(span));
  by_id_[spans_.back().span_id] = &spans_.back();
  open_count_++;
}

// ---------------------------------------------------------------- TraceView

TraceView::TraceView(const Tracer& tracer, uint64_t trace_id)
    : trace_id_(trace_id), spans_(tracer.trace_spans(trace_id)) {
  for (const Span* span : spans_) {
    children_[span->parent_span_id].push_back(span);
  }
  for (auto& [parent, kids] : children_) {
    std::sort(kids.begin(), kids.end(), [](const Span* a, const Span* b) {
      if (a->start != b->start) return a->start < b->start;
      return a->span_id < b->span_id;
    });
  }
}

const Span* TraceView::root() const {
  auto it = children_.find(0);
  if (it == children_.end() || it->second.size() != 1) return nullptr;
  return it->second.front();
}

bool TraceView::well_formed() const {
  if (root() == nullptr) return false;
  for (const Span* span : spans_) {
    if (span->parent_span_id == 0) continue;
    bool found = false;
    for (const Span* other : spans_) {
      if (other->span_id == span->parent_span_id) {
        found = true;
        break;
      }
    }
    if (!found) return false;
  }
  return true;
}

std::string TraceView::render() const {
  std::string out = str_format("trace %016llx: %zu span(s)\n",
                               static_cast<unsigned long long>(trace_id_),
                               spans_.size());
  if (spans_.empty()) return out;
  // Render every parentless subtree (a single root in the well-formed case;
  // orphans still render rather than vanish when the collector dropped
  // their ancestors).
  const Span* r = root();
  const TimePoint origin = r != nullptr ? r->start : spans_.front()->start;
  for (const auto& [parent, kids] : children_) {
    for (const Span* span : kids) {
      bool parent_present = false;
      for (const Span* other : spans_) {
        if (other->span_id == span->parent_span_id) {
          parent_present = true;
          break;
        }
      }
      if (span->parent_span_id != 0 && parent_present) continue;
      render_node(span, 1, origin, out);
    }
  }
  return out;
}

void TraceView::render_node(const Span* span, int depth, TimePoint origin,
                            std::string& out) const {
  out.append(static_cast<size_t>(depth) * 2, ' ');
  out += str_format(
      "+%-9s %-9s %s [%s] %s", (span->start - origin).to_string().c_str(),
      span->open() ? "open" : span->duration().to_string().c_str(),
      span->name.c_str(), span->host.c_str(), span->status.c_str());
  for (const std::string& a : span->annotations) {
    out += " {" + a + "}";
  }
  out += "\n";
  auto it = children_.find(span->span_id);
  if (it == children_.end()) return;
  for (const Span* child : it->second) {
    render_node(child, depth + 1, origin, out);
  }
}

}  // namespace wiera::obs
