// SLO burn-rate alerting over sampled time series
// (docs/METRICS_PIPELINE.md).
//
// Rules follow the SRE multi-window burn-rate recipe: a rule fires only when
// its condition holds over BOTH a long and a short window — the long window
// proves the budget is really burning (not one blip), the short window
// proves it is burning *now* (the alert clears quickly once the cause
// stops). Three rule kinds cover the SLO clauses scenario contracts check:
//
//   kBurnRate   bad-counter delta / total-counter delta, divided by the
//               budget fraction: burn >= threshold on both windows fires
//               (guards shed-fraction style clauses).
//   kValueAbove sampled value (e.g. a histogram's #p99_us series) whose
//               window mean exceeds budget * threshold on both windows
//               (guards latency-bound clauses).
//   kStall      a progress counter that stops increasing across both fully
//               covered windows (guards availability-gap clauses).
//
// evaluate() is called after each scrape by the sim-layer driver; it reads
// ring buffers and appends firings — pure memory, nothing scheduled. Each
// rule fires once per breach episode (edge-triggered) and re-arms when the
// condition clears. Firings carry the guarded SLO clause name so
// sim::SloOracle can check "detection preceded violation".
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "common/time.h"
#include "obs/sampler.h"

namespace wiera::obs {

struct AlertRule {
  enum class Kind { kBurnRate, kValueAbove, kStall };

  std::string name;    // e.g. "shed-burn"
  std::string clause;  // SLO contract clause this rule guards
  Kind kind = Kind::kBurnRate;
  // Sampler series ids. `series` is the bad/progress/value series;
  // `denominator` the total-ops counter (kBurnRate only).
  std::string series;
  std::string denominator;
  // kBurnRate: the SLO's allowed bad fraction. kValueAbove: the bound on
  // the sampled value. Unused by kStall.
  double budget = 0.01;
  // Fire at burn >= threshold (burn = fraction/budget or value/budget).
  double burn_threshold = 1.0;
  Duration long_window = sec(4);
  Duration short_window = sec(1);

  std::string describe() const;
};

struct AlertFiring {
  std::string rule;
  std::string clause;
  TimePoint at;
  double long_burn = 0.0;
  double short_burn = 0.0;
  std::string message;
};

class AlertRules {
 public:
  void add(AlertRule rule);
  size_t rule_count() const { return rules_.size(); }

  // Evaluate every rule against the sampler's series at virtual time `now`
  // (deterministic: rules in add order). Call after each scrape.
  void evaluate(const Sampler& sampler, TimePoint now);

  const std::vector<AlertFiring>& firings() const { return firings_; }
  int64_t evaluations() const { return evaluations_; }
  bool fired(const std::string& clause) const;
  // Earliest firing guarding `clause`; TimePoint::max() when none.
  TimePoint first_firing(const std::string& clause) const;

  // One "ALERT ..." line per firing, in firing order.
  std::string render_text() const;
  std::string render_json() const;

 private:
  struct RuleState {
    AlertRule rule;
    bool active = false;  // currently breaching (edge-trigger latch)
  };

  // Burn of one window; sets *ready when the series data suffices to judge
  // the window (coverage + enough samples).
  static double window_burn(const AlertRule& rule, const Sampler& sampler,
                            Duration window, TimePoint now, bool* ready);

  std::vector<RuleState> rules_;
  std::vector<AlertFiring> firings_;
  int64_t evaluations_ = 0;
};

}  // namespace wiera::obs
