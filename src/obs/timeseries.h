// Fixed-capacity ring-buffer time series for the metrics pipeline
// (docs/METRICS_PIPELINE.md).
//
// The Sampler scrapes obs::Registry instruments on the virtual clock and
// appends one (time, value) sample per series per scrape. Capacity is fixed
// at construction: once full the ring drops the oldest sample, so a series
// always holds the tail of the run — the window an alert rule or a failure
// report actually wants — at bounded memory. Everything here is pure
// bookkeeping on caller-supplied virtual timestamps; nothing reads a wall
// clock or schedules sim events, so an armed sampler stays deterministic and
// an unarmed one is invisible.
//
// Distinct from wiera::TimeSeries (common/histogram.h), the unbounded
// recorder used for figure plots: this one is a ring with windowed queries.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "common/time.h"

namespace wiera::obs {

class TimeSeries {
 public:
  struct Sample {
    TimePoint time;
    double value = 0.0;
  };

  explicit TimeSeries(size_t capacity = kDefaultCapacity);

  // Append a sample. Timestamps must be non-decreasing (the sampler's scrape
  // loop guarantees this); a stale timestamp is recorded as-is but windowed
  // queries assume order. Drops the oldest sample when full.
  void record(TimePoint t, double value);

  size_t size() const { return size_; }
  size_t capacity() const { return buf_.size(); }
  bool empty() const { return size_ == 0; }
  // Samples evicted by the ring so far.
  int64_t dropped() const { return dropped_; }

  // i in [0, size): oldest to newest — deterministic iteration order.
  const Sample& at(size_t i) const;
  const Sample& latest() const { return at(size_ - 1); }
  const Sample& oldest() const { return at(0); }

  // ---- windowed queries over samples with time in [now - window, now] ----
  // All return 0 (or zero-duration rate) when fewer than the required
  // samples fall inside the window.

  // Newest minus oldest in-window value: the increase of a cumulative
  // counter over the window. Needs >= 2 in-window samples.
  double delta_over(Duration window, TimePoint now) const;
  // delta_over divided by the in-window time span, per second.
  double rate_over(Duration window, TimePoint now) const;
  // Nearest-rank percentile (q in [0,1]) of the in-window sample *values*
  // (e.g. the sampled p99 gauge over the last 500ms). Needs >= 1 sample.
  double percentile_over(Duration window, TimePoint now, double q) const;
  double max_over(Duration window, TimePoint now) const;
  double mean_over(Duration window, TimePoint now) const;
  // Number of samples inside the window.
  size_t samples_in(Duration window, TimePoint now) const;
  // True when the retained samples span the whole window, i.e. the oldest
  // retained sample is at or before now - window. Burn-rate rules require
  // coverage so a half-filled window cannot fire (or mask) an alert.
  bool covers(Duration window, TimePoint now) const;

  // {"n":3,"dropped":0,"samples":[[t_us,v],...]} with deterministic order.
  std::string render_json() const;

 private:
  static constexpr size_t kDefaultCapacity = 512;

  // First index (in logical oldest-to-newest order) with time >= t.
  size_t lower_bound(TimePoint t) const;

  std::vector<Sample> buf_;
  size_t head_ = 0;  // index of the oldest sample
  size_t size_ = 0;
  int64_t dropped_ = 0;
};

}  // namespace wiera::obs
