#include "obs/metrics.h"

#include "common/strings.h"

namespace wiera::obs {

std::string Registry::label_string(const LabelSet& labels) {
  if (labels.empty()) return {};
  std::string out = "{";
  bool first = true;
  for (const auto& [k, v] : labels) {
    if (!first) out += ",";
    first = false;
    out += k;
    out += "=\"";
    out += v;
    out += "\"";
  }
  out += "}";
  return out;
}

Counter* Registry::counter(const std::string& name, const LabelSet& labels) {
  auto& slot = counters_[name].series[label_string(labels)];
  if (slot == nullptr) slot = std::make_unique<Counter>();
  return slot.get();
}

Gauge* Registry::gauge(const std::string& name, const LabelSet& labels) {
  auto& slot = gauges_[name].series[label_string(labels)];
  if (slot == nullptr) slot = std::make_unique<Gauge>();
  return slot.get();
}

Histogram* Registry::histogram(const std::string& name,
                               const LabelSet& labels) {
  auto& slot = histograms_[name].series[label_string(labels)];
  if (slot == nullptr) slot = std::make_unique<Histogram>();
  return slot.get();
}

int64_t Registry::counter_value(const std::string& name,
                                const LabelSet& labels) const {
  auto fam = counters_.find(name);
  if (fam == counters_.end()) return 0;
  auto it = fam->second.series.find(label_string(labels));
  return it == fam->second.series.end() ? 0 : it->second->value();
}

int64_t Registry::counter_sum(const std::string& name) const {
  auto fam = counters_.find(name);
  if (fam == counters_.end()) return 0;
  int64_t sum = 0;
  for (const auto& [labels, c] : fam->second.series) sum += c->value();
  return sum;
}

const Histogram* Registry::find_histogram(const std::string& name,
                                          const LabelSet& labels) const {
  auto fam = histograms_.find(name);
  if (fam == histograms_.end()) return nullptr;
  auto it = fam->second.series.find(label_string(labels));
  return it == fam->second.series.end() ? nullptr : it->second.get();
}

void Registry::for_each_counter(
    const std::function<void(const std::string&, const std::string&,
                             const Counter&)>& fn) const {
  for (const auto& [name, fam] : counters_) {
    for (const auto& [labels, c] : fam.series) fn(name, labels, *c);
  }
}

void Registry::for_each_gauge(
    const std::function<void(const std::string&, const std::string&,
                             const Gauge&)>& fn) const {
  for (const auto& [name, fam] : gauges_) {
    for (const auto& [labels, g] : fam.series) fn(name, labels, *g);
  }
}

void Registry::for_each_histogram(
    const std::function<void(const std::string&, const std::string&,
                             const Histogram&)>& fn) const {
  for (const auto& [name, fam] : histograms_) {
    for (const auto& [labels, h] : fam.series) fn(name, labels, *h);
  }
}

std::string Registry::render_text() const {
  std::string out;
  for (const auto& [name, fam] : counters_) {
    out += "# TYPE " + name + " counter\n";
    for (const auto& [labels, c] : fam.series) {
      out += str_format("%s%s %lld\n", name.c_str(), labels.c_str(),
                        static_cast<long long>(c->value()));
    }
  }
  for (const auto& [name, fam] : gauges_) {
    out += "# TYPE " + name + " gauge\n";
    for (const auto& [labels, g] : fam.series) {
      out += str_format("%s%s %g\n", name.c_str(), labels.c_str(), g->value());
    }
  }
  for (const auto& [name, fam] : histograms_) {
    out += "# TYPE " + name + " histogram\n";
    for (const auto& [labels, h] : fam.series) {
      out += str_format("%s_count%s %lld\n", name.c_str(), labels.c_str(),
                        static_cast<long long>(h->count()));
      out += str_format("%s_sum%s %lld\n", name.c_str(), labels.c_str(),
                        static_cast<long long>(h->sum().us()));
      // Splice the quantile label into the existing label string:
      // "" -> {quantile="x"}, {a="b"} -> {a="b",quantile="x"}.
      std::string prefix = labels.empty()
                               ? "{"
                               : labels.substr(0, labels.size() - 1) + ",";
      for (const auto& [q, tag] :
           {std::pair<double, const char*>{0.50, "0.5"},
            {0.95, "0.95"},
            {0.99, "0.99"}}) {
        out += str_format("%s%squantile=\"%s\"} %lld\n", name.c_str(),
                          prefix.c_str(), tag,
                          static_cast<long long>(h->percentile(q).us()));
      }
    }
  }
  return out;
}

std::string Registry::render_json() const {
  std::string out = "{";
  bool first = true;
  auto emit = [&](const std::string& key, const std::string& value) {
    if (!first) out += ",";
    first = false;
    out += "\"" + json_escape(key) + "\":" + value;
  };
  for (const auto& [name, fam] : counters_) {
    for (const auto& [labels, c] : fam.series) {
      emit(name + labels, str_format("%lld",
                                     static_cast<long long>(c->value())));
    }
  }
  for (const auto& [name, fam] : gauges_) {
    for (const auto& [labels, g] : fam.series) {
      emit(name + labels, str_format("%g", g->value()));
    }
  }
  for (const auto& [name, fam] : histograms_) {
    for (const auto& [labels, h] : fam.series) {
      emit(name + labels,
           str_format("{\"count\":%lld,\"sum_us\":%lld,\"p50_us\":%lld,"
                      "\"p95_us\":%lld,\"p99_us\":%lld}",
                      static_cast<long long>(h->count()),
                      static_cast<long long>(h->sum().us()),
                      static_cast<long long>(h->percentile(0.50).us()),
                      static_cast<long long>(h->percentile(0.95).us()),
                      static_cast<long long>(h->percentile(0.99).us())));
    }
  }
  out += "}";
  return out;
}

}  // namespace wiera::obs
