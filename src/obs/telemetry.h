// Aggregate telemetry facade owned by the simulation: one metrics registry,
// one tracer and one event journal per sim, all on the virtual clock.
//
// The enabled flag gates only what telemetry *keeps* (span retention) and
// *emits* (journal IO). Metrics always record and trace/span ids are always
// generated — both are pure memory operations that schedule nothing — so
// flipping telemetry on or off can never change the determinism trace hash
// (docs/DETERMINISM.md) while legacy counter accessors, now thin views over
// the registry, keep working regardless.
#pragma once

#include <cstdint>
#include <cstdlib>
#include <cstring>
#include <functional>

#include "common/time.h"
#include "obs/journal.h"
#include "obs/metrics.h"
#include "obs/trace.h"

namespace wiera::obs {

class Telemetry {
 public:
  explicit Telemetry(uint64_t seed) : tracer_(seed) {
    const char* env = std::getenv("WIERA_TELEMETRY");
    if (env != nullptr && std::strcmp(env, "0") == 0) set_enabled(false);
  }
  Telemetry(const Telemetry&) = delete;
  Telemetry& operator=(const Telemetry&) = delete;

  Registry& registry() { return registry_; }
  const Registry& registry() const { return registry_; }
  Tracer& tracer() { return tracer_; }
  const Tracer& tracer() const { return tracer_; }
  Journal& journal() { return journal_; }

  void set_clock(std::function<TimePoint()> clock) {
    tracer_.set_clock(clock);
    journal_.set_clock(std::move(clock));
  }

  bool enabled() const { return enabled_; }
  void set_enabled(bool on) {
    enabled_ = on;
    tracer_.set_retain(on);
    journal_.set_enabled(on);
  }

 private:
  bool enabled_ = true;
  Registry registry_;
  Tracer tracer_;
  Journal journal_;
};

}  // namespace wiera::obs
