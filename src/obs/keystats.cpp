#include "obs/keystats.h"

#include <algorithm>

#include "common/strings.h"

namespace wiera::obs {

void KeyStats::bind(Registry* registry, std::string instance) {
  registry_ = registry;
  instance_ = std::move(instance);
}

void KeyStats::rotate(TimePoint now) {
  const Duration window = config_.window;
  if (window <= Duration::zero()) return;
  if (now < epoch_start_ + window) return;
  // Jump epoch_start_ forward in whole windows (aligned, so two runs that
  // touch the sketch at different moments inside the same epoch agree).
  const int64_t elapsed = (now - epoch_start_).us();
  const int64_t steps = elapsed / window.us();
  if (steps == 1) {
    keys_prev_ = std::move(keys_cur_);
    tenants_prev_ = std::move(tenants_cur_);
  } else {
    // Skipped at least one full epoch: nothing recent survives.
    keys_prev_.clear();
    tenants_prev_.clear();
  }
  keys_cur_.clear();
  tenants_cur_.clear();
  epoch_start_ = epoch_start_ + Duration(window.us() * steps);
}

void KeyStats::sketch_record(Sketch& sketch, const std::string& id,
                             size_t cap) {
  auto it = sketch.find(id);
  if (it != sketch.end()) {
    it->second.count++;
    return;
  }
  if (sketch.size() < cap) {
    sketch.emplace(id, Slot{1, 0});
    return;
  }
  // Evict the minimum-count entry (first in map order on ties — a
  // deterministic choice) and inherit its count as the overestimate.
  auto min_it = sketch.begin();
  for (auto cand = sketch.begin(); cand != sketch.end(); ++cand) {
    if (cand->second.count < min_it->second.count) min_it = cand;
  }
  const int64_t floor = min_it->second.count;
  sketch.erase(min_it);
  sketch.emplace(id, Slot{floor + 1, floor});
}

void KeyStats::record_access(const std::string& key, const std::string& tenant,
                             TimePoint now, bool is_put) {
  if (!config_.enabled) return;
  if (total_ == 0) {
    epoch_start_ = now;
    if (registry_ != nullptr) {
      accesses_ = registry_->counter("wiera_keystats_accesses_total",
                                     {{"instance", instance_}});
      tracked_keys_ = registry_->gauge("wiera_keystats_tracked_keys",
                                       {{"instance", instance_}});
      hot_key_rate_ = registry_->gauge("wiera_keystats_hot_key_rate",
                                       {{"instance", instance_}});
    }
  }
  rotate(now);
  sketch_record(keys_cur_, key, config_.top_k);
  sketch_record(tenants_cur_, tenant, config_.top_k);
  total_++;
  if (is_put) puts_++;
  if (accesses_ != nullptr) {
    accesses_->inc();
    tracked_keys_->set(static_cast<double>(keys_cur_.size()));
    const std::vector<Entry> top = top_keys(1, now);
    hot_key_rate_->set(top.empty() ? 0.0 : top[0].rate_per_sec);
  }
}

std::vector<KeyStats::Entry> KeyStats::merged_top(const Sketch& cur,
                                                  const Sketch& prev,
                                                  size_t n,
                                                  TimePoint now) const {
  // Window the rate covers: from the previous epoch's start (when one is
  // retained) to now. Guard against a zero span right at the first access.
  TimePoint span_start = epoch_start_;
  if (!prev.empty()) span_start = epoch_start_ - config_.window;
  const double span_sec =
      std::max((now - span_start).seconds(), 1e-6);

  std::map<std::string, Slot> merged = cur;
  for (const auto& [id, slot] : prev) {
    auto& m = merged[id];
    m.count += slot.count;
    m.overestimate += slot.overestimate;
  }
  std::vector<Entry> out;
  out.reserve(merged.size());
  for (const auto& [id, slot] : merged) {
    out.push_back({id, slot.count, slot.overestimate,
                   static_cast<double>(slot.count) / span_sec});
  }
  std::sort(out.begin(), out.end(), [](const Entry& a, const Entry& b) {
    if (a.count != b.count) return a.count > b.count;
    return a.id < b.id;
  });
  if (out.size() > n) out.resize(n);
  return out;
}

std::vector<KeyStats::Entry> KeyStats::top_keys(size_t n,
                                                TimePoint now) const {
  return merged_top(keys_cur_, keys_prev_, n, now);
}

std::vector<KeyStats::Entry> KeyStats::top_tenants(size_t n,
                                                   TimePoint now) const {
  return merged_top(tenants_cur_, tenants_prev_, n, now);
}

std::string KeyStats::render_json(TimePoint now) const {
  const auto render_entries = [](const std::vector<Entry>& entries) {
    std::string out = "[";
    bool first = true;
    for (const Entry& e : entries) {
      if (!first) out += ",";
      first = false;
      out += str_format("{\"id\":\"%s\",\"count\":%lld,\"overestimate\":%lld,"
                        "\"rate_per_sec\":%g}",
                        json_escape(e.id).c_str(),
                        static_cast<long long>(e.count),
                        static_cast<long long>(e.overestimate),
                        e.rate_per_sec);
    }
    out += "]";
    return out;
  };
  std::string out = str_format(
      "{\"window_us\":%lld,\"total\":%lld,\"puts\":%lld,\"keys\":",
      static_cast<long long>(config_.window.us()),
      static_cast<long long>(total_), static_cast<long long>(puts_));
  out += render_entries(top_keys(config_.top_k, now));
  out += ",\"tenants\":";
  out += render_entries(top_tenants(config_.top_k, now));
  out += "}";
  return out;
}

}  // namespace wiera::obs
