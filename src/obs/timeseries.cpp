#include "obs/timeseries.h"

#include <algorithm>
#include <cmath>

#include "common/strings.h"

namespace wiera::obs {

TimeSeries::TimeSeries(size_t capacity) {
  buf_.resize(std::max<size_t>(capacity, 2));
}

void TimeSeries::record(TimePoint t, double value) {
  const size_t slot = (head_ + size_) % buf_.size();
  buf_[slot] = Sample{t, value};
  if (size_ < buf_.size()) {
    size_++;
  } else {
    head_ = (head_ + 1) % buf_.size();
    dropped_++;
  }
}

const TimeSeries::Sample& TimeSeries::at(size_t i) const {
  return buf_[(head_ + i) % buf_.size()];
}

size_t TimeSeries::lower_bound(TimePoint t) const {
  // Samples are time-ordered, so binary search over logical indices.
  size_t lo = 0;
  size_t hi = size_;
  while (lo < hi) {
    const size_t mid = lo + (hi - lo) / 2;
    if (at(mid).time < t) {
      lo = mid + 1;
    } else {
      hi = mid;
    }
  }
  return lo;
}

double TimeSeries::delta_over(Duration window, TimePoint now) const {
  const size_t first = lower_bound(now - window);
  if (size_ - first < 2) return 0.0;
  return at(size_ - 1).value - at(first).value;
}

double TimeSeries::rate_over(Duration window, TimePoint now) const {
  const size_t first = lower_bound(now - window);
  if (size_ - first < 2) return 0.0;
  const Duration span = at(size_ - 1).time - at(first).time;
  if (span <= Duration::zero()) return 0.0;
  return (at(size_ - 1).value - at(first).value) / span.seconds();
}

double TimeSeries::percentile_over(Duration window, TimePoint now,
                                   double q) const {
  const size_t first = lower_bound(now - window);
  if (first >= size_) return 0.0;
  std::vector<double> values;
  values.reserve(size_ - first);
  for (size_t i = first; i < size_; ++i) values.push_back(at(i).value);
  std::sort(values.begin(), values.end());
  q = std::clamp(q, 0.0, 1.0);
  // Nearest-rank, matching LatencyHistogram's exact path.
  const auto rank = std::max<int64_t>(
      1, static_cast<int64_t>(
             std::ceil(q * static_cast<double>(values.size()))));
  return values[static_cast<size_t>(rank - 1)];
}

double TimeSeries::max_over(Duration window, TimePoint now) const {
  const size_t first = lower_bound(now - window);
  double best = 0.0;
  for (size_t i = first; i < size_; ++i) best = std::max(best, at(i).value);
  return best;
}

double TimeSeries::mean_over(Duration window, TimePoint now) const {
  const size_t first = lower_bound(now - window);
  if (first >= size_) return 0.0;
  double sum = 0.0;
  for (size_t i = first; i < size_; ++i) sum += at(i).value;
  return sum / static_cast<double>(size_ - first);
}

size_t TimeSeries::samples_in(Duration window, TimePoint now) const {
  return size_ - lower_bound(now - window);
}

bool TimeSeries::covers(Duration window, TimePoint now) const {
  return size_ > 0 && at(0).time <= now - window;
}

std::string TimeSeries::render_json() const {
  std::string out = str_format("{\"n\":%zu,\"dropped\":%lld,\"samples\":[",
                               size_, static_cast<long long>(dropped_));
  for (size_t i = 0; i < size_; ++i) {
    if (i > 0) out += ",";
    out += str_format("[%lld,%g]", static_cast<long long>(at(i).time.us()),
                      at(i).value);
  }
  out += "]}";
  return out;
}

}  // namespace wiera::obs
