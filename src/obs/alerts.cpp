#include "obs/alerts.h"

#include <algorithm>

#include "common/strings.h"

namespace wiera::obs {

namespace {

const char* kind_name(AlertRule::Kind k) {
  switch (k) {
    case AlertRule::Kind::kBurnRate: return "burn-rate";
    case AlertRule::Kind::kValueAbove: return "value-above";
    case AlertRule::Kind::kStall: return "stall";
  }
  return "?";
}

}  // namespace

std::string AlertRule::describe() const {
  return str_format("%s[%s] guards=%s series=%s%s%s budget=%g threshold=%g "
                    "windows=%lldus/%lldus",
                    name.c_str(), kind_name(kind), clause.c_str(),
                    series.c_str(), denominator.empty() ? "" : " over ",
                    denominator.c_str(), budget, burn_threshold,
                    static_cast<long long>(long_window.us()),
                    static_cast<long long>(short_window.us()));
}

void AlertRules::add(AlertRule rule) {
  rules_.push_back({std::move(rule), false});
}

double AlertRules::window_burn(const AlertRule& rule, const Sampler& sampler,
                               Duration window, TimePoint now, bool* ready) {
  *ready = false;
  const TimeSeries* ts = sampler.series(rule.series);
  if (ts == nullptr || !ts->covers(window, now)) return 0.0;
  switch (rule.kind) {
    case AlertRule::Kind::kBurnRate: {
      const TimeSeries* den = sampler.series(rule.denominator);
      if (den == nullptr || !den->covers(window, now)) return 0.0;
      if (ts->samples_in(window, now) < 2 ||
          den->samples_in(window, now) < 2) {
        return 0.0;
      }
      *ready = true;
      const double total = den->delta_over(window, now);
      if (total <= 0.0) return 0.0;
      const double bad = std::max(0.0, ts->delta_over(window, now));
      const double fraction = bad / total;
      if (rule.budget <= 0.0) return fraction > 0.0 ? 1e9 : 0.0;
      return fraction / rule.budget;
    }
    case AlertRule::Kind::kValueAbove: {
      if (ts->samples_in(window, now) < 1) return 0.0;
      *ready = true;
      const double value = ts->mean_over(window, now);
      if (rule.budget <= 0.0) return value > 0.0 ? 1e9 : 0.0;
      return value / rule.budget;
    }
    case AlertRule::Kind::kStall: {
      if (ts->samples_in(window, now) < 2) return 0.0;
      *ready = true;
      // Burn is binary for a stall: 1 when the progress counter made no
      // progress across the window, 0 otherwise.
      return ts->delta_over(window, now) <= 0.0 ? 1.0 : 0.0;
    }
  }
  return 0.0;
}

void AlertRules::evaluate(const Sampler& sampler, TimePoint now) {
  evaluations_++;
  for (RuleState& state : rules_) {
    const AlertRule& rule = state.rule;
    bool long_ready = false;
    bool short_ready = false;
    const double long_burn =
        window_burn(rule, sampler, rule.long_window, now, &long_ready);
    const double short_burn =
        window_burn(rule, sampler, rule.short_window, now, &short_ready);
    const double trigger =
        rule.kind == AlertRule::Kind::kStall ? 1.0 : rule.burn_threshold;
    const bool breach = long_ready && short_ready && long_burn >= trigger &&
                        short_burn >= trigger;
    if (breach && !state.active) {
      AlertFiring firing;
      firing.rule = rule.name;
      firing.clause = rule.clause;
      firing.at = now;
      firing.long_burn = long_burn;
      firing.short_burn = short_burn;
      firing.message = str_format(
          "%s burning at %.2fx/%.2fx (long/short) of budget %g on %s",
          rule.name.c_str(), long_burn, short_burn, rule.budget,
          rule.series.c_str());
      firings_.push_back(std::move(firing));
    }
    state.active = breach;
  }
}

bool AlertRules::fired(const std::string& clause) const {
  for (const AlertFiring& f : firings_) {
    if (f.clause == clause) return true;
  }
  return false;
}

TimePoint AlertRules::first_firing(const std::string& clause) const {
  for (const AlertFiring& f : firings_) {
    if (f.clause == clause) return f.at;  // firings_ is in time order
  }
  return TimePoint::max();
}

std::string AlertRules::render_text() const {
  std::string out;
  for (const AlertFiring& f : firings_) {
    out += str_format("ALERT %s clause=%s at=%lldus long=%.2fx short=%.2fx\n",
                      f.rule.c_str(), f.clause.c_str(),
                      static_cast<long long>(f.at.us()), f.long_burn,
                      f.short_burn);
  }
  return out;
}

std::string AlertRules::render_json() const {
  std::string out = "[";
  bool first = true;
  for (const AlertFiring& f : firings_) {
    if (!first) out += ",";
    first = false;
    out += str_format(
        "{\"rule\":\"%s\",\"clause\":\"%s\",\"at_us\":%lld,"
        "\"long_burn\":%g,\"short_burn\":%g}",
        json_escape(f.rule).c_str(), json_escape(f.clause).c_str(),
        static_cast<long long>(f.at.us()), f.long_burn, f.short_burn);
  }
  out += "]";
  return out;
}

}  // namespace wiera::obs
