#include "apps/table_store.h"

#include <cstring>

namespace wiera::apps {

TableStore::TableStore(sim::Simulation& sim, vfs::WieraVfs& fs,
                       Options options)
    : sim_(&sim), fs_(&fs), options_(options) {}

Status TableStore::create_table(const std::string& name, int64_t row_size) {
  if (tables_.count(name) > 0) return already_exists("table " + name);
  if (row_size <= 0 || row_size > options_.page_size) {
    return invalid_argument("row size must fit a page");
  }
  Table table;
  table.name = name;
  table.row_size = row_size;
  vfs::OpenFlags flags;
  flags.create = true;
  flags.direct = options_.direct;
  auto fd = fs_->open("/db/" + name + ".ibd", flags);
  if (!fd.ok()) return fd.status();
  table.fd = *fd;
  tables_[name] = table;
  return ok_status();
}

int64_t TableStore::row_count(const std::string& name) const {
  auto it = tables_.find(name);
  return it == tables_.end() ? 0 : it->second.rows;
}

const Blob* TableStore::pool_lookup(const PageKey& key) {
  auto it = pool_.find(key);
  if (it == pool_.end()) return nullptr;
  pool_lru_.erase(it->second.lru_it);
  pool_lru_.push_front(key);
  it->second.lru_it = pool_lru_.begin();
  return &it->second.data;
}

void TableStore::pool_touch(const PageKey& key, Blob data) {
  auto it = pool_.find(key);
  if (it != pool_.end()) {
    pool_bytes_ -= static_cast<int64_t>(it->second.data.size());
    pool_lru_.erase(it->second.lru_it);
    pool_.erase(it);
  }
  pool_bytes_ += static_cast<int64_t>(data.size());
  pool_lru_.push_front(key);
  pool_[key] = PoolEntry{std::move(data), pool_lru_.begin()};
  pool_evict_to_fit();
}

void TableStore::pool_evict_to_fit() {
  while (pool_bytes_ > options_.buffer_pool_bytes && !pool_lru_.empty()) {
    const PageKey victim = pool_lru_.back();
    pool_lru_.pop_back();
    auto it = pool_.find(victim);
    pool_bytes_ -= static_cast<int64_t>(it->second.data.size());
    pool_.erase(it);
  }
}

sim::Task<Result<Blob>> TableStore::read_page(Table& table, int64_t page) {
  const PageKey key{table.name, page};
  if (const Blob* cached = pool_lookup(key)) {
    pool_hits_++;
    // Copy before suspending: a concurrent client's pool_touch may evict
    // this entry while we model the access latency (Blob copies share the
    // underlying buffer, so this is cheap).
    Blob data = *cached;
    co_await sim_->delay(usec(5));  // in-memory page access
    co_return data;
  }
  pool_misses_++;
  Bytes data;
  auto read = co_await fs_->pread(table.fd, page * options_.page_size,
                                  options_.page_size, &data);
  if (!read.ok()) co_return read.status();
  data.resize(static_cast<size_t>(options_.page_size), 0);
  Blob blob(std::move(data));
  pool_touch(key, blob);
  co_return blob;
}

sim::Task<Status> TableStore::write_page(Table& table, int64_t page,
                                         Blob data) {
  const PageKey key{table.name, page};
  pool_touch(key, data);
  auto written = co_await fs_->pwrite(table.fd, page * options_.page_size,
                                      std::move(data));
  if (!written.ok()) co_return written.status();
  co_return ok_status();
}

sim::Task<Result<int64_t>> TableStore::insert(std::string table_name,
                                              Blob row) {
  auto it = tables_.find(table_name);
  if (it == tables_.end()) co_return not_found("table " + table_name);
  Table& table = it->second;
  if (static_cast<int64_t>(row.size()) > table.row_size) {
    co_return invalid_argument("row too large");
  }
  const int64_t row_id = table.rows;
  Status st = co_await update(table_name, row_id, std::move(row));
  if (!st.ok()) co_return st;
  // wiera-lint: allow(await-hazard) tables_ is an insert-only std::map; node references are stable
  table.rows = row_id + 1;
  co_return row_id;
}

sim::Task<Result<Blob>> TableStore::select(std::string table_name,
                                           int64_t row_id) {
  auto it = tables_.find(table_name);
  if (it == tables_.end()) co_return not_found("table " + table_name);
  Table& table = it->second;
  if (row_id < 0 || row_id >= table.rows) {
    co_return not_found("row " + std::to_string(row_id));
  }
  const int64_t rows_per_page = options_.page_size / table.row_size;
  const int64_t page = row_id / rows_per_page;
  const int64_t in_page = (row_id % rows_per_page) * table.row_size;

  auto page_data = co_await read_page(table, page);
  if (!page_data.ok()) co_return page_data.status();
  Bytes row(page_data->data() + in_page,
            // wiera-lint: allow(await-hazard) tables_ is an insert-only std::map; node references are stable
            page_data->data() + in_page + table.row_size);
  co_return Blob(std::move(row));
}

sim::Task<Status> TableStore::update(std::string table_name, int64_t row_id,
                                     Blob row) {
  auto it = tables_.find(table_name);
  if (it == tables_.end()) co_return not_found("table " + table_name);
  Table& table = it->second;
  if (row_id < 0) co_return invalid_argument("bad row id");
  const int64_t rows_per_page = options_.page_size / table.row_size;
  const int64_t page = row_id / rows_per_page;
  const int64_t in_page = (row_id % rows_per_page) * table.row_size;

  // Read-modify-write the page.
  auto page_data = co_await read_page(table, page);
  Bytes merged(static_cast<size_t>(options_.page_size), 0);
  if (page_data.ok()) {
    std::memcpy(merged.data(), page_data->data(),
                std::min<size_t>(page_data->size(), merged.size()));
  }
  std::memcpy(merged.data() + in_page, row.data(),
              std::min<size_t>(row.size(),
                               // wiera-lint: allow(await-hazard) tables_ is an insert-only std::map; node references are stable
                               static_cast<size_t>(table.row_size)));
  co_return co_await write_page(table, page, Blob(std::move(merged)));
}

}  // namespace wiera::apps
