#include "apps/rubis.h"

namespace wiera::apps {

sim::Task<Status> RubisApp::populate() {
  WIERA_CO_RETURN_IF_ERROR(db_->create_table("users", kUserRow));
  WIERA_CO_RETURN_IF_ERROR(db_->create_table("items", kItemRow));
  WIERA_CO_RETURN_IF_ERROR(db_->create_table("bids", kBidRow));
  WIERA_CO_RETURN_IF_ERROR(db_->create_table("comments", kCommentRow));

  for (int64_t i = 0; i < options_.users; ++i) {
    auto id = co_await db_->insert(
        "users", Blob::zeros(static_cast<size_t>(kUserRow)));
    if (!id.ok()) co_return id.status();
  }
  for (int64_t i = 0; i < options_.items; ++i) {
    auto id = co_await db_->insert(
        "items", Blob::zeros(static_cast<size_t>(kItemRow)));
    if (!id.ok()) co_return id.status();
  }
  co_return ok_status();
}

sim::Task<Status> RubisApp::browse(Rng& rng) {
  // Category browse: a handful of item selects.
  for (int i = 0; i < 3; ++i) {
    auto row = co_await db_->select(
        "items", rng.uniform_int(0, db_->row_count("items") - 1));
    if (!row.ok()) co_return row.status();
  }
  co_return ok_status();
}

sim::Task<Status> RubisApp::view_item(Rng& rng) {
  auto item = co_await db_->select(
      "items", rng.uniform_int(0, db_->row_count("items") - 1));
  if (!item.ok()) co_return item.status();
  // Seller profile lookup.
  auto seller = co_await db_->select(
      "users", rng.uniform_int(0, db_->row_count("users") - 1));
  co_return seller.status();
}

sim::Task<Status> RubisApp::place_bid(Rng& rng) {
  auto item = co_await db_->select(
      "items", rng.uniform_int(0, db_->row_count("items") - 1));
  if (!item.ok()) co_return item.status();
  auto bid = co_await db_->insert(
      "bids", Blob::zeros(static_cast<size_t>(kBidRow)));
  co_return bid.status();
}

sim::Task<Status> RubisApp::sell_item(Rng& /*rng*/) {
  auto item = co_await db_->insert(
      "items", Blob::zeros(static_cast<size_t>(kItemRow)));
  co_return item.status();
}

sim::Task<Status> RubisApp::view_user(Rng& rng) {
  auto user = co_await db_->select(
      "users", rng.uniform_int(0, db_->row_count("users") - 1));
  co_return user.status();
}

sim::Task<Status> RubisApp::comment(Rng& rng) {
  auto user = co_await db_->select(
      "users", rng.uniform_int(0, db_->row_count("users") - 1));
  if (!user.ok()) co_return user.status();
  auto row = co_await db_->insert(
      "comments", Blob::zeros(static_cast<size_t>(kCommentRow)));
  co_return row.status();
}

sim::Task<void> RubisApp::client_loop(uint64_t seed) {
  Rng rng(seed);
  while (!stop_) {
    // RUBiS bidding mix: mostly reads with ~15% writing interactions.
    const double roll = rng.next_double();
    Status st = ok_status();
    if (roll < 0.30) {
      st = co_await browse(rng);
    } else if (roll < 0.60) {
      st = co_await view_item(rng);
    } else if (roll < 0.70) {
      st = co_await view_user(rng);
    } else if (roll < 0.80) {
      st = co_await place_bid(rng);
    } else if (roll < 0.85) {
      st = co_await sell_item(rng);
    } else if (roll < 0.90) {
      st = co_await comment(rng);
    } else {
      st = co_await view_item(rng);
    }
    if (!st.ok()) failed_requests_++;  // failed page load; session continues
    total_requests_++;
    if (measuring_) measured_requests_++;
    co_await sim_->delay(options_.think_time);
  }
}

sim::Task<Result<RubisResult>> RubisApp::run() {
  stop_ = false;
  for (int c = 0; c < options_.clients; ++c) {
    sim_->spawn(client_loop(options_.seed * 7919 + static_cast<uint64_t>(c)),
                "rubis.client-" + std::to_string(c));
  }

  co_await sim_->delay(options_.ramp_up);
  measuring_ = true;
  measured_requests_ = 0;
  const TimePoint measure_start = sim_->now();
  co_await sim_->delay(options_.measure);
  measuring_ = false;
  RubisResult result;
  result.requests_measured = measured_requests_;
  result.measure_window = sim_->now() - measure_start;
  co_await sim_->delay(options_.ramp_down);
  stop_ = true;
  co_return result;
}

}  // namespace wiera::apps
