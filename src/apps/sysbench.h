// SysBench fileio stand-in (§5.4.1).
//
// Random-I/O benchmark over the WieraVfs: prepare a test file, then issue a
// random read/write mix with O_DIRECT (as the paper configures to avoid
// double caching) and report IOPS.
#pragma once

#include "vfs/vfs.h"

namespace wiera::apps {

struct SysbenchOptions {
  int64_t file_size = 64 * MiB;
  int64_t block_size = 16 * KiB;
  int64_t operations = 500;     // total across all threads
  int threads = 1;              // sysbench --num-threads
  double read_fraction = 0.5;   // rndrw default mix
  bool direct = true;           // O_DIRECT
  uint64_t seed = 1;
};

struct SysbenchResult {
  int64_t reads = 0;
  int64_t writes = 0;
  Duration elapsed;
  double iops() const {
    const double s = elapsed.seconds();
    return s <= 0 ? 0 : static_cast<double>(reads + writes) / s;
  }
};

class SysbenchFileIo {
 public:
  SysbenchFileIo(sim::Simulation& sim, vfs::WieraVfs& fs,
                 SysbenchOptions options)
      : sim_(&sim), fs_(&fs), options_(options) {}

  // Write the test file sequentially (sysbench `prepare`).
  sim::Task<Status> prepare();
  // Random r/w phase (sysbench `run` with fileio rndrw).
  sim::Task<Result<SysbenchResult>> run();

 private:
  sim::Simulation* sim_;
  vfs::WieraVfs* fs_;
  SysbenchOptions options_;
  static constexpr const char* kPath = "/sysbench/testfile";
};

}  // namespace wiera::apps
