// RUBiS stand-in — the auction-site web benchmark used in §5.4.2.
//
// Models the RUBiS "bidding" interaction mix against the page-based table
// store (MySQL stand-in): browsing, item views, bidding, selling, user
// views and comments. N simulated clients run closed loops with think
// time; throughput (requests/s) is measured between ramp-up and ramp-down,
// exactly like the paper's 300 s run with 120 s up / 60 s down.
#pragma once

#include "apps/table_store.h"
#include "common/rng.h"

namespace wiera::apps {

struct RubisOptions {
  int64_t items = 50000;  // paper: 50,000 items
  int64_t users = 50000;  // paper: 50,000 customers
  int clients = 300;      // paper: 300 simulated clients
  Duration ramp_up = sec(120);
  Duration measure = sec(120);
  Duration ramp_down = sec(60);
  Duration think_time = msec(350);
  uint64_t seed = 1;
};

struct RubisResult {
  int64_t requests_measured = 0;
  Duration measure_window;
  double throughput_rps() const {
    const double s = measure_window.seconds();
    return s <= 0 ? 0 : static_cast<double>(requests_measured) / s;
  }
};

class RubisApp {
 public:
  RubisApp(sim::Simulation& sim, TableStore& db, RubisOptions options)
      : sim_(&sim), db_(&db), options_(options), rng_(options.seed) {}

  // Create tables and load users/items (the paper's populated DB).
  sim::Task<Status> populate();
  // Run the full benchmark (ramp-up, measurement, ramp-down).
  sim::Task<Result<RubisResult>> run();

  int64_t total_requests() const { return total_requests_; }
  int64_t failed_requests() const { return failed_requests_; }

 private:
  // One client session: repeats weighted interactions until told to stop.
  sim::Task<void> client_loop(uint64_t seed);
  // The interactions (each returns ok or logs-and-continues).
  sim::Task<Status> browse(Rng& rng);
  sim::Task<Status> view_item(Rng& rng);
  sim::Task<Status> place_bid(Rng& rng);
  sim::Task<Status> sell_item(Rng& rng);
  sim::Task<Status> view_user(Rng& rng);
  sim::Task<Status> comment(Rng& rng);

  static constexpr int64_t kUserRow = 256;
  static constexpr int64_t kItemRow = 512;
  static constexpr int64_t kBidRow = 128;
  static constexpr int64_t kCommentRow = 256;

  sim::Simulation* sim_;
  TableStore* db_;
  RubisOptions options_;
  Rng rng_;
  bool stop_ = false;
  bool measuring_ = false;
  int64_t total_requests_ = 0;
  int64_t failed_requests_ = 0;
  int64_t measured_requests_ = 0;
};

}  // namespace wiera::apps
