#include "apps/sysbench.h"

#include "common/rng.h"

namespace wiera::apps {

sim::Task<Status> SysbenchFileIo::prepare() {
  vfs::OpenFlags flags;
  flags.create = true;
  flags.truncate = true;
  flags.direct = options_.direct;
  auto fd = fs_->open(kPath, flags);
  if (!fd.ok()) co_return fd.status();

  const int64_t bs = options_.block_size;
  for (int64_t offset = 0; offset < options_.file_size; offset += bs) {
    Blob block = Blob::zeros(static_cast<size_t>(bs));
    auto written = co_await fs_->pwrite(*fd, offset, std::move(block));
    if (!written.ok()) co_return written.status();
  }
  co_return fs_->close(*fd);
}

sim::Task<Result<SysbenchResult>> SysbenchFileIo::run() {
  vfs::OpenFlags flags;
  flags.direct = options_.direct;
  auto fd = fs_->open(kPath, flags);
  if (!fd.ok()) co_return fd.status();

  const int64_t bs = options_.block_size;
  const int64_t blocks = options_.file_size / bs;
  SysbenchResult result;
  const TimePoint start = sim_->now();

  // Worker threads share one remaining-op counter (sysbench --num-threads).
  struct Shared {
    int64_t remaining;
    int pending_threads;
    SysbenchResult* result;
  };
  Shared shared{options_.operations, std::max(options_.threads, 1), &result};
  sim::Event done(*sim_, "sysbench.done");

  auto worker = [](SysbenchFileIo* self, Shared* sh, sim::Event* finished,
                   int fd_num, int64_t block_count,
                   uint64_t seed) -> sim::Task<void> {
    Rng rng(seed);
    const int64_t block_size = self->options_.block_size;
    while (sh->remaining > 0) {
      sh->remaining--;
      const int64_t block = rng.uniform_int(0, block_count - 1);
      const int64_t offset = block * block_size;
      if (rng.bernoulli(self->options_.read_fraction)) {
        auto r = co_await self->fs_->pread(fd_num, offset, block_size);
        if (r.ok()) sh->result->reads++;
      } else {
        Blob data = Blob::zeros(static_cast<size_t>(block_size));
        auto w = co_await self->fs_->pwrite(fd_num, offset, std::move(data));
        if (w.ok()) sh->result->writes++;
      }
    }
    if (--sh->pending_threads == 0) finished->set();
  };

  for (int t = 0; t < std::max(options_.threads, 1); ++t) {
    sim_->spawn(worker(this, &shared, &done, *fd, blocks,
                       options_.seed * 1301 + static_cast<uint64_t>(t)),
                "sysbench.worker-" + std::to_string(t));
  }
  co_await done.wait();

  result.elapsed = sim_->now() - start;
  Status st = fs_->close(*fd);
  if (!st.ok()) co_return st;
  co_return result;
}

}  // namespace wiera::apps
