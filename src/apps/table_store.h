// Minimal page-based table storage engine — the MySQL/InnoDB stand-in for
// the RUBiS experiment (§5.4.2).
//
// Rows live in fixed-size pages stored in one VFS file per table; a small
// LRU buffer pool fronts page reads. The paper configures MySQL with
// O_DIRECT and a 16 MB InnoDB buffer (the minimum), so almost every page
// touch hits the backing store — either the throttled local disk or the
// remote memory tier through Wiera. That storage path is exactly what
// Fig. 12 measures.
#pragma once

#include <list>
#include <map>
#include <string>
#include <unordered_map>

#include "vfs/vfs.h"

namespace wiera::apps {

class TableStore {
 public:
  struct Options {
    int64_t page_size = 16 * KiB;          // InnoDB page size
    int64_t buffer_pool_bytes = 16 * MiB;  // paper: minimum 16MB buffer
    bool direct = true;                    // O_DIRECT
  };

  TableStore(sim::Simulation& sim, vfs::WieraVfs& fs, Options options);
  TableStore(sim::Simulation& sim, vfs::WieraVfs& fs)
      : TableStore(sim, fs, Options{}) {}

  Status create_table(const std::string& name, int64_t row_size);
  bool has_table(const std::string& name) const {
    return tables_.count(name) > 0;
  }
  int64_t row_count(const std::string& name) const;

  // Row operations. Rows are addressed by id; insert appends at the next
  // id and returns it.
  sim::Task<Result<int64_t>> insert(std::string table, Blob row);
  sim::Task<Result<Blob>> select(std::string table, int64_t row_id);
  sim::Task<Status> update(std::string table, int64_t row_id, Blob row);

  // Stats for the benchmark report.
  int64_t buffer_pool_hits() const { return pool_hits_; }
  int64_t buffer_pool_misses() const { return pool_misses_; }

 private:
  struct Table {
    std::string name;
    int64_t row_size = 0;
    int64_t rows = 0;
    int fd = -1;
  };

  struct PageKey {
    std::string table;
    int64_t page;
    bool operator==(const PageKey& o) const {
      return page == o.page && table == o.table;
    }
  };
  struct PageKeyHash {
    size_t operator()(const PageKey& k) const {
      return std::hash<std::string>()(k.table) ^
             std::hash<int64_t>()(k.page) * 1099511628211ull;
    }
  };

  sim::Task<Result<Blob>> read_page(Table& table, int64_t page);
  sim::Task<Status> write_page(Table& table, int64_t page, Blob data);
  void pool_touch(const PageKey& key, Blob data);
  const Blob* pool_lookup(const PageKey& key);
  void pool_evict_to_fit();

  sim::Simulation* sim_;
  vfs::WieraVfs* fs_;
  Options options_;
  std::map<std::string, Table> tables_;

  // Buffer pool: LRU over pages.
  struct PoolEntry {
    Blob data;
    std::list<PageKey>::iterator lru_it;
  };
  std::unordered_map<PageKey, PoolEntry, PageKeyHash> pool_;
  std::list<PageKey> pool_lru_;
  int64_t pool_bytes_ = 0;
  int64_t pool_hits_ = 0;
  int64_t pool_misses_ = 0;
};

}  // namespace wiera::apps
