// Binary wire format — the Thrift stand-in's serialization layer.
//
// Little-endian fixed-width integers, length-prefixed strings/blobs. Every
// RPC payload in the system is produced by WireWriter and consumed by
// WireReader; the serialized size feeds the network model, so message sizes
// (and therefore transfer times and egress bills) are realistic.
#pragma once

#include <cstdint>
#include <cstring>
#include <string>
#include <string_view>

#include "common/bytes.h"
#include "common/status.h"

namespace wiera::rpc {

class WireWriter {
 public:
  void put_u8(uint8_t v) { buf_.push_back(v); }
  void put_bool(bool v) { put_u8(v ? 1 : 0); }
  void put_u32(uint32_t v) { put_raw(&v, sizeof(v)); }
  void put_u64(uint64_t v) { put_raw(&v, sizeof(v)); }
  void put_i64(int64_t v) { put_raw(&v, sizeof(v)); }
  void put_double(double v) { put_raw(&v, sizeof(v)); }

  void put_string(std::string_view s) {
    put_u32(static_cast<uint32_t>(s.size()));
    put_raw(s.data(), s.size());
  }

  void put_blob(const Blob& b) {
    put_u32(static_cast<uint32_t>(b.size()));
    put_raw(b.data(), b.size());
  }

  size_t size() const { return buf_.size(); }
  Bytes take() { return std::move(buf_); }
  const Bytes& bytes() const { return buf_; }

 private:
  void put_raw(const void* data, size_t len) {
    const auto* p = static_cast<const uint8_t*>(data);
    buf_.insert(buf_.end(), p, p + len);
  }
  Bytes buf_;
};

// Bounds-checked reader. Reads return false / default on truncation and
// latch an error flag; callers check ok() once at the end (Thrift-style).
class WireReader {
 public:
  explicit WireReader(const Bytes& data) : data_(data.data()), size_(data.size()) {}
  WireReader(const uint8_t* data, size_t size) : data_(data), size_(size) {}

  bool ok() const { return !failed_; }
  size_t remaining() const { return size_ - pos_; }

  uint8_t get_u8() {
    uint8_t v = 0;
    get_raw(&v, sizeof(v));
    return v;
  }
  bool get_bool() { return get_u8() != 0; }
  uint32_t get_u32() {
    uint32_t v = 0;
    get_raw(&v, sizeof(v));
    return v;
  }
  uint64_t get_u64() {
    uint64_t v = 0;
    get_raw(&v, sizeof(v));
    return v;
  }
  int64_t get_i64() {
    int64_t v = 0;
    get_raw(&v, sizeof(v));
    return v;
  }
  double get_double() {
    double v = 0;
    get_raw(&v, sizeof(v));
    return v;
  }

  std::string get_string() {
    const uint32_t len = get_u32();
    if (failed_ || len > remaining()) {
      failed_ = true;
      return {};
    }
    std::string s(reinterpret_cast<const char*>(data_ + pos_), len);
    pos_ += len;
    return s;
  }

  Blob get_blob() {
    const uint32_t len = get_u32();
    if (failed_ || len > remaining()) {
      failed_ = true;
      return {};
    }
    Blob b(Bytes(data_ + pos_, data_ + pos_ + len));
    pos_ += len;
    return b;
  }

  Status status() const {
    return failed_ ? invalid_argument("truncated or malformed wire data")
                   : ok_status();
  }

 private:
  void get_raw(void* out, size_t len) {
    if (failed_ || len > remaining()) {
      failed_ = true;
      std::memset(out, 0, len);
      return;
    }
    std::memcpy(out, data_ + pos_, len);
    pos_ += len;
  }

  const uint8_t* data_;
  size_t size_;
  size_t pos_ = 0;
  bool failed_ = false;
};

}  // namespace wiera::rpc
