// Binary wire format — the Thrift stand-in's serialization layer.
//
// Little-endian fixed-width integers, length-prefixed strings/blobs. Every
// RPC payload in the system is produced by WireWriter and consumed by
// WireReader; the serialized size feeds the network model, so message sizes
// (and therefore transfer times and egress bills) are realistic.
//
// Zero-copy path: blob payloads at or above kZeroCopyThreshold are not
// memcpy'd into the scratch buffer — the writer seals the scratch as one
// segment and appends the blob's ref-counted Buffer as the next, and
// take_body() hands the segments to rpc::Message without flattening. The
// segmented body's logical byte string is identical to the flat encoding
// (take() still produces it), so wire sizes, transfer times, and every
// determinism trace are unchanged. Readers constructed over a BodyView
// alias blob bytes out of the body's storage instead of copying.
#pragma once

#include <algorithm>
#include <cassert>
#include <cstdint>
#include <cstring>
#include <string>
#include <string_view>

#include "common/bytes.h"
#include "common/status.h"

namespace wiera::rpc {

// Blobs shorter than this are cheaper to memcpy inline than to carry as a
// separate ref-counted segment (segment = shared_ptr bump + vector slot).
inline constexpr size_t kZeroCopyThreshold = 64;

class WireWriter {
 public:
  WireWriter() : arena_(default_arena()), buf_(arena_->acquire()) {}
  explicit WireWriter(BufferArena* arena)
      : arena_(arena), buf_(arena_->acquire()) {}

  void put_u8(uint8_t v) { buf_.push_back(v); }
  void put_bool(bool v) { put_u8(v ? 1 : 0); }
  void put_u32(uint32_t v) { put_raw(&v, sizeof(v)); }
  void put_u64(uint64_t v) { put_raw(&v, sizeof(v)); }
  void put_i64(int64_t v) { put_raw(&v, sizeof(v)); }
  void put_double(double v) { put_raw(&v, sizeof(v)); }

  void put_string(std::string_view s) {
    put_u32(static_cast<uint32_t>(s.size()));
    put_raw(s.data(), s.size());
  }

  void put_blob(const Blob& b) {
    put_u32(static_cast<uint32_t>(b.size()));
    if (b.size() >= kZeroCopyThreshold) {
      seal_scratch();
      body_.append(b.buffer());
    } else {
      put_raw(b.data(), b.size());
    }
  }

  size_t size() const { return body_.size() + buf_.size(); }

  // Flat encoding, always a fresh copy when blobs were segmented. The
  // metadata snapshot and tests use this; the RPC path uses take_body().
  Bytes take() {
    if (body_.segment_count() == 0) return std::move(buf_);
    Bytes out = body_.flatten();
    out.insert(out.end(), buf_.begin(), buf_.end());
    body_ = BodyView();
    buf_.clear();
    return out;
  }

  // The segmented body: blob payloads ride as shared segments, everything
  // else in arena-recycled scratch segments. Logical bytes == take().
  BodyView take_body() {
    seal_scratch();
    return std::move(body_);
  }

  // Only meaningful while no blob has been segmented (the scratch holds the
  // whole encoding); the metadata checksum path uses this.
  const Bytes& bytes() const {
    assert(body_.segment_count() == 0 &&
           "bytes() is invalid after a zero-copy put_blob; use take()");
    return buf_;
  }

 private:
  void put_raw(const void* data, size_t len) {
    const auto* p = static_cast<const uint8_t*>(data);
    buf_.insert(buf_.end(), p, p + len);
  }

  void seal_scratch() {
    if (buf_.empty()) return;
    body_.append(arena_->seal(std::move(buf_)));
    buf_ = arena_->acquire();
  }

  // Encoders are free functions with no per-simulation handle, so the
  // recycling pool is process-wide. The simulation is single-threaded and
  // buffer reuse is invisible to program logic (contents are fully
  // rewritten, sizes unchanged), so determinism is unaffected.
  static BufferArena* default_arena() {
    static BufferArena arena;
    return &arena;
  }

  BufferArena* arena_;
  BodyView body_;
  Bytes buf_;
};

// Bounds-checked reader. Reads return false / default on truncation and
// latch an error flag; callers check ok() once at the end (Thrift-style).
// Constructed over a BodyView it reads the logical byte string across
// segments; get_blob then aliases the body's storage (zero copy) whenever
// the blob does not straddle a segment boundary — which it never does for
// writer-produced bodies, only for corrupted length fields.
class WireReader {
 public:
  explicit WireReader(const Bytes& data)
      : data_(data.data()), size_(data.size()) {}
  WireReader(const uint8_t* data, size_t size) : data_(data), size_(size) {}
  explicit WireReader(const BodyView& body)
      : body_(&body), size_(body.size()) {}

  bool ok() const { return !failed_; }
  size_t remaining() const { return size_ - pos_; }

  uint8_t get_u8() {
    uint8_t v = 0;
    get_raw(&v, sizeof(v));
    return v;
  }
  bool get_bool() { return get_u8() != 0; }
  uint32_t get_u32() {
    uint32_t v = 0;
    get_raw(&v, sizeof(v));
    return v;
  }
  uint64_t get_u64() {
    uint64_t v = 0;
    get_raw(&v, sizeof(v));
    return v;
  }
  int64_t get_i64() {
    int64_t v = 0;
    get_raw(&v, sizeof(v));
    return v;
  }
  double get_double() {
    double v = 0;
    get_raw(&v, sizeof(v));
    return v;
  }

  std::string get_string() {
    const uint32_t len = get_u32();
    if (failed_ || len > remaining()) {
      failed_ = true;
      return {};
    }
    std::string s(len, '\0');
    copy_out(s.data(), len);
    return s;
  }

  Blob get_blob() {
    const uint32_t len = get_u32();
    if (failed_ || len > remaining()) {
      failed_ = true;
      return {};
    }
    if (len == 0) return {};
    if (body_ != nullptr) {
      const Buffer& seg = body_->segment(seg_);
      if (len <= seg.size() - seg_off_) {
        // Fast path: the payload sits inside one segment — hand out a view
        // of the body's storage instead of copying.
        Buffer alias = seg.slice(seg_off_, len);
        advance(len);
        return Blob(std::move(alias));
      }
      Bytes out(len);
      copy_out(out.data(), len);
      return Blob(std::move(out));
    }
    Blob b(Bytes(data_ + pos_, data_ + pos_ + len));
    pos_ += len;
    return b;
  }

  Status status() const {
    return failed_ ? invalid_argument("truncated or malformed wire data")
                   : ok_status();
  }

 private:
  void get_raw(void* out, size_t len) {
    if (failed_ || len > remaining()) {
      failed_ = true;
      std::memset(out, 0, len);
      return;
    }
    copy_out(out, len);
  }

  // Copies `len` logical bytes (possibly across segments) and advances.
  // Caller has already bounds-checked.
  void copy_out(void* out, size_t len) {
    if (body_ == nullptr) {
      std::memcpy(out, data_ + pos_, len);
      pos_ += len;
      return;
    }
    auto* dst = static_cast<uint8_t*>(out);
    while (len > 0) {
      const Buffer& seg = body_->segment(seg_);
      const size_t take = std::min(len, seg.size() - seg_off_);
      std::memcpy(dst, seg.data() + seg_off_, take);
      dst += take;
      len -= take;
      advance(take);
    }
  }

  void advance(size_t n) {
    pos_ += n;
    if (body_ == nullptr) return;
    seg_off_ += n;
    while (seg_ < body_->segment_count() &&
           seg_off_ >= body_->segment(seg_).size()) {
      seg_off_ -= body_->segment(seg_).size();
      seg_++;
    }
  }

  const uint8_t* data_ = nullptr;
  const BodyView* body_ = nullptr;
  size_t size_;
  size_t pos_ = 0;
  size_t seg_ = 0;     // segmented mode: current segment index
  size_t seg_off_ = 0;  // ... and offset within it
  bool failed_ = false;
};

}  // namespace wiera::rpc
