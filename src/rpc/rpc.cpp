#include "rpc/rpc.h"

namespace wiera::rpc {

sim::Task<Result<Message>> Endpoint::call(std::string target_node,
                                          std::string method,
                                          Message request) {
  calls_sent_++;

  if (target_node == node_name_) {
    // Loopback: no network hop.
    co_return co_await dispatch(method, std::move(request));
  }

  const int64_t request_size = request.wire_size();
  Status st = co_await network_->transfer(node_name_, target_node,
                                          request_size);
  if (!st.ok()) co_return st;

  Endpoint* target = registry_->find(target_node);
  if (target == nullptr) {
    co_return unavailable("no endpoint registered at " + target_node);
  }

  if (network_->chaos_duplicate(node_name_, target_node)) {
    // The request packet was duplicated in transit: the handler runs twice,
    // the duplicate's response is discarded. Handlers must be idempotent.
    Message duplicate{request.body};
    network_->sim().spawn(
        target->dispatch_discard(method, std::move(duplicate)),
        "rpc.chaos-duplicate");
  }

  Result<Message> response = co_await target->dispatch(method,
                                                       std::move(request));
  if (!response.ok()) co_return response.status();

  st = co_await network_->transfer(target_node, node_name_,
                                   response->wire_size());
  if (!st.ok()) co_return st;

  co_return std::move(response).value();
}

sim::Task<void> Endpoint::dispatch_discard(std::string method,
                                           Message request) {
  Result<Message> discarded = co_await dispatch(method, std::move(request));
  (void)discarded;
}

sim::Task<Result<Message>> Endpoint::dispatch(const std::string& method,
                                              Message request) {
  calls_handled_++;
  auto it = handlers_.find(method);
  if (it == handlers_.end()) {
    co_return unimplemented("method " + method + " on " + node_name_);
  }
  co_return co_await it->second(std::move(request));
}

}  // namespace wiera::rpc
