#include "rpc/rpc.h"

#include "sim/checker.h"
#include "sim/simulation.h"

namespace wiera::rpc {

bool Registry::add(const std::string& node_name, Endpoint* endpoint) {
  auto [it, inserted] = endpoints_.try_emplace(node_name, endpoint);
  (void)it;
  if (!inserted) {
    if (sim::SimChecker* checker = sim::SimChecker::current()) {
      checker->report_error(
          sim::SimDiagnostic::Kind::kDuplicateEndpoint, node_name.c_str(),
          "Registry::add: endpoint name '" + node_name +
              "' already registered; keeping the existing endpoint");
    }
  }
  return inserted;
}

Endpoint::~Endpoint() {
  // Only the endpoint that owns the registration may remove it: a rejected
  // duplicate must not unhook the original on destruction.
  if (registered_) registry_->remove(node_name_);
  if (!adm_queue_.empty()) {
    network_->sim().checker().on_primitive_destroyed(
        sim::WaitKind::kAdmission, this, "rpc.admission", adm_queue_.size());
  }
}

// ------------------------------------------------------------- call (client)

sim::Task<Result<Message>> Endpoint::call(std::string target_node,
                                          std::string method, Message request,
                                          Context ctx) {
  // Client span: one per call attempt, child of the caller's span. The
  // request frame carries this span's identity so the server span chains
  // under it. Ends with the final status even when the deadline timer wins
  // the race (the span closes here, not in the abandoned body).
  const TraceContext span =
      tracer().start_span("rpc.call " + method, node_name_, ctx.trace);
  if (span.active()) {
    request.trace_id = span.trace_id;
    request.span_id = span.span_id;
  }
  Result<Message> response = co_await call_impl(
      std::move(target_node), std::move(method), std::move(request), ctx);
  const std::string_view status =
      response.ok() ? "ok" : status_code_name(response.status().code());
  tracer().end_span(span, status);
  co_return response;
}

sim::Task<Result<Message>> Endpoint::call_impl(std::string target_node,
                                               std::string method,
                                               Message request, Context ctx) {
  if (!ctx.has_deadline()) {
    co_return co_await call_inner(std::move(target_node), std::move(method),
                                  std::move(request));
  }
  if (ctx.cancelled() || ctx.expired(network_->sim().now())) {
    calls_expired_->inc();
    co_return deadline_exceeded("rpc " + method + " to " + target_node +
                                ": deadline expired before send");
  }
  request.deadline = ctx.deadline();
  // Race the real call against a sim-clock timer sharing one promise. The
  // loser keeps running (cooperatively cancelled, SimChecker-visible) but
  // the caller resumes no later than the deadline.
  auto promise = std::make_shared<sim::Promise<Result<Message>>>(
      network_->sim(), "rpc.call-deadline");
  network_->sim().spawn(call_body(std::move(target_node), method,
                                  std::move(request), promise),
                        node_name_ + "/rpc-call-body");
  network_->sim().spawn(call_timer(ctx, std::move(method), promise),
                        node_name_ + "/rpc-call-timer");
  Result<Message> response = co_await promise->future();
  co_return response;
}

sim::Task<void> Endpoint::call_body(
    std::string target_node, std::string method, Message request,
    std::shared_ptr<sim::Promise<Result<Message>>> promise) {
  Result<Message> response = co_await call_inner(
      std::move(target_node), std::move(method), std::move(request));
  if (!promise->fulfilled()) promise->set_value(std::move(response));
}

sim::Task<void> Endpoint::call_timer(
    Context ctx, std::string method,
    std::shared_ptr<sim::Promise<Result<Message>>> promise) {
  co_await network_->sim().delay(ctx.remaining(network_->sim().now()));
  if (promise->fulfilled()) co_return;
  ctx.cancel();
  calls_expired_->inc();
  promise->set_value(deadline_exceeded("rpc " + method + " from " +
                                       node_name_ + ": deadline exceeded"));
}

sim::Task<Result<Message>> Endpoint::call_inner(std::string target_node,
                                                std::string method,
                                                Message request) {
  calls_sent_->inc();

  if (target_node == node_name_) {
    // Loopback: no network hop.
    co_return co_await dispatch(method, std::move(request));
  }

  const int64_t request_size = request.wire_size();
  Status st = co_await network_->transfer(node_name_, target_node,
                                          request_size, request.deadline);
  if (!st.ok()) co_return st;

  Endpoint* target = registry_->find(target_node);
  if (target == nullptr) {
    co_return unavailable("no endpoint registered at " + target_node);
  }

  if (network_->chaos_corrupt(node_name_, target_node) &&
      !request.body.empty()) {
    // The request payload arrives with a flipped byte. The frame itself
    // still parses (headers are modeled out of band), so only end-to-end
    // checksums can catch this. Copy-on-write: the body's storage is shared
    // with the sender, so only this delivery's view may change.
    request.body.flip_byte(request.body.size() / 2);
  }

  if (network_->chaos_duplicate(node_name_, target_node)) {
    // The request packet was duplicated in transit: the handler runs twice,
    // the duplicate's response is discarded. Handlers must be idempotent.
    // The duplicate keeps the original frame's trace identity (it IS the
    // same packet), so its handler span appears as a second child of the
    // same client span — exactly what a duplicated delivery looks like.
    Message duplicate{request.body, request.deadline, request.trace_id,
                      request.span_id};
    network_->sim().spawn(
        target->dispatch_discard(method, std::move(duplicate)),
        "rpc.chaos-duplicate");
  }

  const TimePoint deadline = request.deadline;
  Result<Message> response = co_await target->dispatch(method,
                                                       std::move(request));
  if (!response.ok()) co_return response.status();

  st = co_await network_->transfer(target_node, node_name_,
                                   response->wire_size(), deadline);
  if (!st.ok()) co_return st;

  if (network_->chaos_corrupt(target_node, node_name_) &&
      !response->body.empty()) {
    response->body.flip_byte(response->body.size() / 2);
  }

  co_return std::move(response).value();
}

// ---------------------------------------------------------- admission (server)

struct Endpoint::AdmissionAwaiter {
  Endpoint* ep;
  AdmissionWaiter waiter;

  bool await_ready() {
    if (ep->adm_inflight_ < ep->adm_max_inflight_) {
      ep->adm_inflight_++;
      return true;
    }
    if (ep->adm_max_queue_ <= 0) {
      // No queue configured at all: shed immediately without suspending.
      waiter.shed = true;
      return true;
    }
    return false;
  }

  void await_suspend(std::coroutine_handle<> h) {
    if (static_cast<int>(ep->adm_queue_.size()) >= ep->adm_max_queue_) {
      // Queue full: shed the *oldest* waiter to make room (LIFO shedding —
      // the request that waited longest is the least likely to still meet
      // its caller's deadline, so it is the one to drop).
      AdmissionWaiter* oldest = ep->adm_queue_.front();
      ep->adm_queue_.pop_front();
      oldest->shed = true;
      ep->network_->sim().schedule_at(ep->network_->sim().now(),
                                      oldest->handle);
    }
    waiter.handle = h;
    ep->adm_queue_.push_back(&waiter);
    ep->network_->sim().checker().on_block(
        h.address(), sim::WaitKind::kAdmission, ep, "rpc.admission");
  }

  // True = admitted (an inflight slot is held); false = shed.
  bool await_resume() const { return !waiter.shed; }
};

Endpoint::AdmissionAwaiter Endpoint::admission_enter() {
  return AdmissionAwaiter{this, {}};
}

void Endpoint::admission_exit() {
  adm_inflight_--;
  if (!adm_queue_.empty()) {
    // LIFO service: admit the newest waiter.
    AdmissionWaiter* next = adm_queue_.back();
    adm_queue_.pop_back();
    adm_inflight_++;
    network_->sim().schedule_at(network_->sim().now(), next->handle);
  }
}

// ----------------------------------------------------------- dispatch (server)

sim::Task<void> Endpoint::dispatch_discard(std::string method,
                                           Message request) {
  Result<Message> discarded = co_await dispatch(method, std::move(request));
  // wiera-lint: allow(status-discipline) chaos-duplicate delivery: the duplicate's response is dropped by design
  (void)discarded;
}

sim::Task<Result<Message>> Endpoint::dispatch(const std::string& method,
                                              Message request) {
  calls_handled_->inc();
  // Server span: child of the frame's (client) span. The request's trace
  // identity is rewritten to this span before the handler runs, so any RPCs
  // the handler issues chain under the server span — that is what turns a
  // fan-out into a tree.
  const TraceContext span =
      tracer().start_span("rpc.server " + method, node_name_,
                          request.trace());
  if (span.active()) {
    request.trace_id = span.trace_id;
    request.span_id = span.span_id;
  }
  Result<Message> response =
      co_await dispatch_inner(method, std::move(request), span);
  const std::string_view status =
      response.ok() ? "ok" : status_code_name(response.status().code());
  tracer().end_span(span, status);
  co_return response;
}

sim::Task<Result<Message>> Endpoint::dispatch_inner(const std::string& method,
                                                    Message request,
                                                    TraceContext span) {
  auto it = handlers_.find(method);
  if (it == handlers_.end()) {
    co_return unimplemented("method " + method + " on " + node_name_);
  }
  // A request whose deadline already passed in transit is dead on arrival:
  // the caller's timer has (or will have) fired, so running the handler
  // would be pure wasted work during an overload.
  if (request.deadline != TimePoint::max() &&
      network_->sim().now() >= request.deadline) {
    calls_expired_->inc();
    tracer().annotate(span, "expired=in-transit");
    co_return deadline_exceeded("rpc " + method + " on " + node_name_ +
                                ": expired in transit");
  }
  if (!admission_enabled()) {
    co_return co_await it->second(std::move(request));
  }

  const bool admitted = co_await admission_enter();
  if (!admitted) {
    calls_shed_->inc();
    tracer().annotate(span, "shed=true");
    network_->sim().telemetry().journal()
        .event("rpc", "shed")
        .str("node", node_name_)
        .str("method", method)
        .trace(span);
    co_return resource_exhausted("rpc " + method + " on " + node_name_ +
                                 ": shed by admission control");
  }
  // Re-check the deadline: it may have expired while queued.
  if (request.deadline != TimePoint::max() &&
      network_->sim().now() >= request.deadline) {
    calls_expired_->inc();
    admission_exit();
    tracer().annotate(span, "expired=in-queue");
    co_return deadline_exceeded("rpc " + method + " on " + node_name_ +
                                ": expired in admission queue");
  }
  // wiera-lint: allow(await-hazard) handlers_ is a setup-time-only std::map; never mutated during dispatch
  Result<Message> response = co_await it->second(std::move(request));
  admission_exit();
  co_return response;
}

}  // namespace wiera::rpc
