// Typed request/response RPC over the simulated network (Thrift stand-in).
//
// Each node hosts one Endpoint; handlers are registered per method name and
// are coroutines (they can perform storage work / further RPCs before
// responding). A call pays: request transfer -> handler execution ->
// response transfer. Failures (outages) surface as non-OK Status.
//
// Request-lifecycle defenses (see docs/OVERLOAD.md):
//  * Deadlines — a call issued with a Context deadline races the RPC
//    against a sim-clock timer: the caller resumes with kDeadlineExceeded
//    at the deadline even if the peer or the network stalls, and the
//    deadline travels in the message frame so the server sheds work whose
//    caller has already given up.
//  * Admission control — `set_admission` bounds concurrently-executing
//    handlers plus a wait queue. The queue is served LIFO (the newest
//    request is the most likely to still meet its deadline) and sheds the
//    oldest waiter with kResourceExhausted when full.
#pragma once

#include <cassert>
#include <deque>
#include <functional>
#include <map>
#include <memory>
#include <string>

#include "common/bytes.h"
#include "common/context.h"
#include "common/status.h"
#include "common/trace.h"
#include "net/network.h"
#include "obs/metrics.h"
#include "sim/sync.h"
#include "sim/task.h"

namespace wiera::rpc {

// A serialized message body plus a small framing overhead that models
// headers on the wire. The body is a segmented view over ref-counted
// buffers (common/bytes.h): copying a Message shares payload storage, and
// wire_size() reflects the logical byte string exactly as if it were flat.
struct Message {
  BodyView body;
  // Absolute deadline carried in the frame header (gRPC-style metadata, not
  // part of the serialized body). TimePoint::max() = no deadline.
  TimePoint deadline = TimePoint::max();
  // Trace identity, also frame metadata: the caller's span, which becomes
  // the parent of the server-side span. Both zero when untraced. Covered by
  // kFrameOverhead, so tracing never changes transfer times.
  uint64_t trace_id = 0;
  uint64_t span_id = 0;
  static constexpr int64_t kFrameOverhead = 32;
  int64_t wire_size() const {
    return static_cast<int64_t>(body.size()) + kFrameOverhead;
  }
  TraceContext trace() const {
    TraceContext t;
    t.trace_id = trace_id;
    t.span_id = span_id;
    return t;
  }
};

class Endpoint;

// Name -> endpoint routing; one per simulation.
class Registry {
 public:
  // Registers the endpoint; returns false (keeping the existing entry) when
  // the name is already taken. A duplicate used to be a bare assert, which
  // vanishes under NDEBUG — now it is a structured SimChecker diagnostic.
  bool add(const std::string& node_name, Endpoint* endpoint);
  void remove(const std::string& node_name) { endpoints_.erase(node_name); }
  Endpoint* find(const std::string& node_name) const {
    auto it = endpoints_.find(node_name);
    return it == endpoints_.end() ? nullptr : it->second;
  }

 private:
  std::map<std::string, Endpoint*> endpoints_;
};

class Endpoint {
 public:
  // A handler consumes the request body and produces a response body.
  using Handler = std::function<sim::Task<Result<Message>>(Message)>;

  Endpoint(net::Network& network, Registry& registry, std::string node_name)
      : network_(&network),
        registry_(&registry),
        node_name_(std::move(node_name)) {
    assert(network_->topology().has_node(node_name_) &&
           "endpoint node must exist in the topology");
    registered_ = registry_->add(node_name_, this);
    obs::Registry& metrics = network_->sim().telemetry().registry();
    const obs::LabelSet labels{{"node", node_name_}};
    calls_handled_ = metrics.counter("rpc_calls_handled_total", labels);
    calls_sent_ = metrics.counter("rpc_calls_sent_total", labels);
    calls_shed_ = metrics.counter("rpc_calls_shed_total", labels);
    calls_expired_ = metrics.counter("rpc_calls_expired_total", labels);
  }

  ~Endpoint();

  Endpoint(const Endpoint&) = delete;
  Endpoint& operator=(const Endpoint&) = delete;

  const std::string& node_name() const { return node_name_; }

  void register_handler(const std::string& method, Handler handler) {
    handlers_[method] = std::move(handler);
  }

  // Bound concurrent handler execution: at most `max_inflight` handlers run
  // at once and at most `max_queue` requests wait behind them; beyond that
  // the *oldest* waiter is shed with kResourceExhausted (LIFO service).
  // max_inflight <= 0 disables admission control (the default).
  void set_admission(int max_inflight, int max_queue) {
    adm_max_inflight_ = max_inflight;
    adm_max_queue_ = max_queue;
  }

  // Issue an RPC. Completes with the response, or kUnavailable /
  // kUnimplemented / kResourceExhausted on failure. With a Context deadline
  // the call completes no later than the deadline (kDeadlineExceeded); the
  // in-flight work is cancelled cooperatively and remains checker-visible.
  // Calling a method on one's own node skips the network (loopback).
  sim::Task<Result<Message>> call(std::string target_node, std::string method,
                                  Message request, Context ctx = {});

  // Per-endpoint counters: thin views over the sim-wide metrics registry
  // (rpc_calls_*_total{node=...}); the workload monitor and tests read
  // these.
  int64_t calls_handled() const { return calls_handled_->value(); }
  int64_t calls_sent() const { return calls_sent_->value(); }
  int64_t calls_shed() const { return calls_shed_->value(); }
  int64_t calls_expired() const { return calls_expired_->value(); }
  int adm_inflight() const { return adm_inflight_; }

 private:
  struct AdmissionWaiter {
    std::coroutine_handle<> handle;
    bool shed = false;
  };
  struct AdmissionAwaiter;

  obs::Tracer& tracer() { return network_->sim().telemetry().tracer(); }

  // call() minus the client-span bracket (deadline race / direct path).
  sim::Task<Result<Message>> call_impl(std::string target_node,
                                       std::string method, Message request,
                                       Context ctx);
  // The un-raced call path (request transfer -> dispatch -> response).
  sim::Task<Result<Message>> call_inner(std::string target_node,
                                        std::string method, Message request);
  // Deadline race: `call_body` runs the real call and fulfills the shared
  // promise; `call_timer` fulfills it with kDeadlineExceeded at the
  // deadline and cancels the context so downstream layers stop early.
  sim::Task<void> call_body(
      std::string target_node, std::string method, Message request,
      std::shared_ptr<sim::Promise<Result<Message>>> promise);
  sim::Task<void> call_timer(
      Context ctx, std::string method,
      std::shared_ptr<sim::Promise<Result<Message>>> promise);

  sim::Task<Result<Message>> dispatch(const std::string& method,
                                      Message request);
  // dispatch() minus the server-span bracket.
  sim::Task<Result<Message>> dispatch_inner(const std::string& method,
                                            Message request,
                                            TraceContext span);
  // Chaos duplicate delivery: run the handler a second time with a copy of
  // the request and discard the result — the duplicate's response is lost.
  // Exercises handler idempotency (replication dedup, LWW).
  sim::Task<void> dispatch_discard(std::string method, Message request);

  bool admission_enabled() const { return adm_max_inflight_ > 0; }
  AdmissionAwaiter admission_enter();
  void admission_exit();

  net::Network* network_;
  Registry* registry_;
  std::string node_name_;
  bool registered_ = false;
  std::map<std::string, Handler> handlers_;
  obs::Counter* calls_handled_ = nullptr;
  obs::Counter* calls_sent_ = nullptr;
  obs::Counter* calls_shed_ = nullptr;
  obs::Counter* calls_expired_ = nullptr;

  int adm_max_inflight_ = 0;
  int adm_max_queue_ = 0;
  int adm_inflight_ = 0;
  std::deque<AdmissionWaiter*> adm_queue_;  // front = oldest
};

}  // namespace wiera::rpc
