// Typed request/response RPC over the simulated network (Thrift stand-in).
//
// Each node hosts one Endpoint; handlers are registered per method name and
// are coroutines (they can perform storage work / further RPCs before
// responding). A call pays: request transfer -> handler execution ->
// response transfer. Failures (outages) surface as non-OK Status.
#pragma once

#include <cassert>
#include <functional>
#include <map>
#include <memory>
#include <string>

#include "common/bytes.h"
#include "common/status.h"
#include "net/network.h"
#include "sim/task.h"

namespace wiera::rpc {

// A serialized message body plus a small framing overhead that models
// headers on the wire.
struct Message {
  Bytes body;
  static constexpr int64_t kFrameOverhead = 32;
  int64_t wire_size() const {
    return static_cast<int64_t>(body.size()) + kFrameOverhead;
  }
};

class Endpoint;

// Name -> endpoint routing; one per simulation.
class Registry {
 public:
  void add(const std::string& node_name, Endpoint* endpoint) {
    assert(endpoints_.count(node_name) == 0 && "duplicate endpoint");
    endpoints_[node_name] = endpoint;
  }
  void remove(const std::string& node_name) { endpoints_.erase(node_name); }
  Endpoint* find(const std::string& node_name) const {
    auto it = endpoints_.find(node_name);
    return it == endpoints_.end() ? nullptr : it->second;
  }

 private:
  std::map<std::string, Endpoint*> endpoints_;
};

class Endpoint {
 public:
  // A handler consumes the request body and produces a response body.
  using Handler = std::function<sim::Task<Result<Message>>(Message)>;

  Endpoint(net::Network& network, Registry& registry, std::string node_name)
      : network_(&network),
        registry_(&registry),
        node_name_(std::move(node_name)) {
    assert(network_->topology().has_node(node_name_) &&
           "endpoint node must exist in the topology");
    registry_->add(node_name_, this);
  }

  ~Endpoint() { registry_->remove(node_name_); }

  Endpoint(const Endpoint&) = delete;
  Endpoint& operator=(const Endpoint&) = delete;

  const std::string& node_name() const { return node_name_; }

  void register_handler(const std::string& method, Handler handler) {
    handlers_[method] = std::move(handler);
  }

  // Issue an RPC. Completes with the response, or kUnavailable /
  // kUnimplemented on failure. Calling a method on one's own node skips the
  // network (loopback).
  sim::Task<Result<Message>> call(std::string target_node, std::string method,
                                  Message request);

  // Per-endpoint counters (the workload monitor reads these).
  int64_t calls_handled() const { return calls_handled_; }
  int64_t calls_sent() const { return calls_sent_; }

 private:
  sim::Task<Result<Message>> dispatch(const std::string& method,
                                      Message request);
  // Chaos duplicate delivery: run the handler a second time with a copy of
  // the request and discard the result — the duplicate's response is lost.
  // Exercises handler idempotency (replication dedup, LWW).
  sim::Task<void> dispatch_discard(std::string method, Message request);

  net::Network* network_;
  Registry* registry_;
  std::string node_name_;
  std::map<std::string, Handler> handlers_;
  int64_t calls_handled_ = 0;
  int64_t calls_sent_ = 0;
};

}  // namespace wiera::rpc
