#include "metadb/metadb.h"

#include <algorithm>
#include <cstring>

#include "rpc/wire.h"

namespace wiera::metadb {

TimePoint ObjectMeta::last_accessed() const {
  TimePoint latest = TimePoint::origin();
  for (const auto& [_, vm] : versions) {
    latest = std::max(latest, std::max(vm.last_accessed, vm.create_time));
  }
  return latest;
}

VersionMeta& MetaDb::upsert_version(const std::string& key, int64_t version) {
  ObjectMeta& obj = objects_[key];
  obj.key = key;
  obj.max_allocated = std::max(obj.max_allocated, version);
  VersionMeta& vm = obj.versions[version];
  vm.version = version;
  return vm;
}

const ObjectMeta* MetaDb::find(const std::string& key) const {
  auto it = objects_.find(key);
  return it == objects_.end() ? nullptr : &it->second;
}

ObjectMeta* MetaDb::find_mutable(const std::string& key) {
  auto it = objects_.find(key);
  return it == objects_.end() ? nullptr : &it->second;
}

const VersionMeta* MetaDb::find_version(const std::string& key,
                                        int64_t version) const {
  const ObjectMeta* obj = find(key);
  if (obj == nullptr) return nullptr;
  auto it = obj->versions.find(version);
  return it == obj->versions.end() ? nullptr : &it->second;
}

void MetaDb::record_access(const std::string& key, int64_t version,
                           TimePoint now) {
  ObjectMeta* obj = find_mutable(key);
  if (obj == nullptr) return;
  auto it = obj->versions.find(version);
  if (it == obj->versions.end()) return;
  it->second.last_accessed = now;
  it->second.access_count++;
}

Status MetaDb::remove_version(const std::string& key, int64_t version) {
  ObjectMeta* obj = find_mutable(key);
  if (obj == nullptr) return not_found("metadb object: " + key);
  if (obj->versions.erase(version) == 0) {
    return not_found("metadb version of " + key);
  }
  if (obj->versions.empty()) objects_.erase(key);
  return ok_status();
}

Status MetaDb::remove_object(const std::string& key) {
  if (objects_.erase(key) == 0) return not_found("metadb object: " + key);
  return ok_status();
}

Status MetaDb::forget_version(const std::string& key, int64_t version) {
  ObjectMeta* obj = find_mutable(key);
  if (obj == nullptr) return not_found("metadb object: " + key);
  if (obj->versions.erase(version) == 0) {
    return not_found("metadb version of " + key);
  }
  // Deliberately keep the (possibly now version-less) object record: it
  // carries max_allocated, the floor for future version allocation.
  return ok_status();
}

void MetaDb::add_tag(const std::string& key, const std::string& tag) {
  ObjectMeta& obj = objects_[key];
  obj.key = key;
  obj.tags.insert(tag);
}

bool MetaDb::has_tag(const std::string& key, const std::string& tag) const {
  const ObjectMeta* obj = find(key);
  return obj != nullptr && obj->tags.count(tag) > 0;
}

std::vector<std::string> MetaDb::cold_objects(TimePoint now,
                                              Duration threshold) const {
  std::vector<std::string> out;
  for (const auto& [key, obj] : objects_) {
    if (obj.versions.empty()) continue;
    if (now - obj.last_accessed() > threshold) out.push_back(key);
  }
  return out;
}

std::vector<std::string> MetaDb::keys_with_tag(const std::string& tag) const {
  std::vector<std::string> out;
  for (const auto& [key, obj] : objects_) {
    if (obj.tags.count(tag) > 0) out.push_back(key);
  }
  return out;
}

std::vector<std::string> MetaDb::keys() const {
  std::vector<std::string> out;
  out.reserve(objects_.size());
  for (const auto& [key, _] : objects_) out.push_back(key);
  return out;
}

int64_t MetaDb::version_count() const {
  int64_t n = 0;
  for (const auto& [_, obj] : objects_) {
    n += static_cast<int64_t>(obj.versions.size());
  }
  return n;
}

Bytes MetaDb::serialize() const {
  rpc::WireWriter w;
  w.put_u32(static_cast<uint32_t>(objects_.size()));
  for (const auto& [key, obj] : objects_) {
    w.put_string(key);
    w.put_i64(obj.max_allocated);
    w.put_u32(static_cast<uint32_t>(obj.tags.size()));
    for (const auto& tag : obj.tags) w.put_string(tag);
    w.put_u32(static_cast<uint32_t>(obj.versions.size()));
    for (const auto& [ver, vm] : obj.versions) {
      w.put_i64(ver);
      w.put_i64(vm.size);
      w.put_i64(vm.create_time.us());
      w.put_i64(vm.last_modified.us());
      w.put_i64(vm.last_accessed.us());
      w.put_i64(vm.access_count);
      w.put_bool(vm.dirty);
      w.put_bool(vm.committed);
      w.put_string(vm.tier);
      w.put_string(vm.origin);
      w.put_u64(vm.checksum);
    }
  }
  // Snapshot checksum: a torn or bit-flipped metadata file must fail to
  // load, never half-load (docs/INTEGRITY.md).
  const uint64_t body_sum = fnv1a64(w.bytes().data(), w.bytes().size());
  w.put_u64(body_sum);
  return w.take();
}

Status MetaDb::deserialize(const Bytes& data) {
  if (data.size() < sizeof(uint64_t)) {
    return data_loss("metadb snapshot truncated below checksum footer");
  }
  const size_t body_size = data.size() - sizeof(uint64_t);
  uint64_t stored_sum = 0;
  std::memcpy(&stored_sum, data.data() + body_size, sizeof(stored_sum));
  if (stored_sum != fnv1a64(data.data(), body_size)) {
    return data_loss("metadb snapshot checksum mismatch");
  }
  rpc::WireReader r(data.data(), body_size);
  std::map<std::string, ObjectMeta> loaded;
  const uint32_t n_objects = r.get_u32();
  for (uint32_t i = 0; i < n_objects && r.ok(); ++i) {
    ObjectMeta obj;
    obj.key = r.get_string();
    obj.max_allocated = r.get_i64();
    const uint32_t n_tags = r.get_u32();
    for (uint32_t t = 0; t < n_tags && r.ok(); ++t) {
      obj.tags.insert(r.get_string());
    }
    const uint32_t n_versions = r.get_u32();
    for (uint32_t v = 0; v < n_versions && r.ok(); ++v) {
      VersionMeta vm;
      vm.version = r.get_i64();
      vm.size = r.get_i64();
      vm.create_time = TimePoint(r.get_i64());
      vm.last_modified = TimePoint(r.get_i64());
      vm.last_accessed = TimePoint(r.get_i64());
      vm.access_count = r.get_i64();
      vm.dirty = r.get_bool();
      vm.committed = r.get_bool();
      vm.tier = r.get_string();
      vm.origin = r.get_string();
      vm.checksum = r.get_u64();
      obj.versions[vm.version] = vm;
    }
    loaded[obj.key] = std::move(obj);
  }
  if (!r.ok()) return r.status();
  if (r.remaining() != 0) {
    return invalid_argument("metadb snapshot has trailing bytes");
  }
  objects_ = std::move(loaded);
  return ok_status();
}

}  // namespace wiera::metadb
