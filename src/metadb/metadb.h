// Versioned object-metadata store — the BerkeleyDB stand-in (§4.2).
//
// Each Tiera instance persists, per object: tags plus per-version metadata
// (version number, create time, last modified/accessed time, access count,
// dirty bit, tier location, origin instance). The Wiera conflict-resolution
// logic (last-write-wins) and the policy engine's metadata-driven events
// (ColdDataMonitoring, dirty-object write-back) all read this store.
//
// Metadata operations are in-memory and instantaneous in virtual time (the
// paper persists metadata via BerkeleyDB off the data path); serialize()/
// deserialize() provide the durability round-trip.
#pragma once

#include <cstdint>
#include <map>
#include <set>
#include <string>
#include <vector>

#include "common/bytes.h"
#include "common/small_vec.h"
#include "common/status.h"
#include "common/time.h"

namespace wiera::metadb {

struct VersionMeta {
  int64_t version = 0;
  int64_t size = 0;
  TimePoint create_time;
  TimePoint last_modified;
  TimePoint last_accessed;
  int64_t access_count = 0;
  bool dirty = false;        // not yet written back to a persistent tier
  // A version becomes visible to readers only once its payload landed in a
  // tier; in-flight writes must not be served (they would read as missing).
  bool committed = false;
  std::string tier;          // which tier currently holds this version
  std::string origin;        // instance that created this version
  // object_checksum(key, version, payload) — verified on every tier read
  // and identical across replicas holding the same version (scrub digest).
  uint64_t checksum = 0;
};

struct ObjectMeta {
  std::string key;
  std::set<std::string> tags;
  // version number -> metadata; ordered so *rbegin() is the latest. A key
  // holds a handful of versions (max_versions caps it), so this is a flat
  // sorted map with inline storage — no heap node per version on the PUT
  // hot path. Unlike std::map, mutating it moves rows: VersionMeta
  // pointers/references must not be held across an upsert/remove of the
  // same key (the await-hazard lint already forbids holding them across
  // suspension points, where concurrent mutation could bite either way).
  FlatMap<int64_t, VersionMeta, 4> versions;
  // Highest version number ever recorded for this key. Never decremented:
  // forget_version() may drop the latest version's row (quarantined copy,
  // lost durable payload) but allocation must stay monotonic — reusing a
  // burned number would let two distinct committed payloads share one
  // version id (docs/INTEGRITY.md).
  int64_t max_allocated = 0;

  bool has_version(int64_t v) const { return versions.count(v) > 0; }
  // Highest version number, committed or not (used to allocate the next).
  int64_t latest_version() const {
    return versions.empty() ? 0 : versions.rbegin()->first;
  }
  const VersionMeta* latest() const {
    return versions.empty() ? nullptr : &versions.rbegin()->second;
  }
  // Highest *readable* version (payload fully written). Null when none.
  const VersionMeta* latest_committed() const {
    for (auto it = versions.rbegin(); it != versions.rend(); ++it) {
      if (it->second.committed) return &it->second;
    }
    return nullptr;
  }
  // Most recent access across versions (drives cold-data detection).
  TimePoint last_accessed() const;
};

class MetaDb {
 public:
  // Record (or update) a version's metadata. Creates the object record on
  // first use.
  VersionMeta& upsert_version(const std::string& key, int64_t version);

  // Lookup. Null when absent.
  const ObjectMeta* find(const std::string& key) const;
  ObjectMeta* find_mutable(const std::string& key);
  const VersionMeta* find_version(const std::string& key,
                                  int64_t version) const;

  // Bump access statistics for a version.
  void record_access(const std::string& key, int64_t version, TimePoint now);

  Status remove_version(const std::string& key, int64_t version);
  Status remove_object(const std::string& key);
  // Drop a version's row but keep the object record (tags + max_allocated)
  // even when no versions remain. Integrity paths use this when a payload
  // is quarantined or lost: the row must go (so a peer's repair of the same
  // version is not LWW-rejected as a stale duplicate) but the allocation
  // high-water mark must survive.
  Status forget_version(const std::string& key, int64_t version);

  void add_tag(const std::string& key, const std::string& tag);
  bool has_tag(const std::string& key, const std::string& tag) const;

  // Objects whose most recent access is older than `threshold` at `now`.
  // Used by ColdDataMonitoring events (Fig. 6a).
  std::vector<std::string> cold_objects(TimePoint now,
                                        Duration threshold) const;
  // Keys whose tag set contains `tag` (object-class policies, §2.2).
  std::vector<std::string> keys_with_tag(const std::string& tag) const;

  std::vector<std::string> keys() const;
  size_t object_count() const { return objects_.size(); }
  int64_t version_count() const;

  // Durability round-trip (BerkeleyDB role). The format is the project wire
  // format plus a trailing FNV-1a checksum of the body; deserialize replaces
  // current contents only after the whole snapshot validates (truncated,
  // bit-flipped, or trailing-garbage input returns a non-OK Status and
  // leaves the store untouched).
  Bytes serialize() const;
  Status deserialize(const Bytes& data);

 private:
  std::map<std::string, ObjectMeta> objects_;
};

}  // namespace wiera::metadb
