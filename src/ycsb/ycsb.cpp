#include "ycsb/ycsb.h"

#include <cmath>

namespace wiera::ycsb {

// ---------------------------------------------------------------- zipfian

ZipfianGenerator::ZipfianGenerator(uint64_t n, double theta)
    : n_(n), theta_(theta) {
  zetan_ = zeta(n, theta);
  const double zeta2 = zeta(2, theta);
  alpha_ = 1.0 / (1.0 - theta);
  eta_ = (1.0 - std::pow(2.0 / static_cast<double>(n), 1.0 - theta)) /
         (1.0 - zeta2 / zetan_);
}

double ZipfianGenerator::zeta(uint64_t n, double theta) {
  double sum = 0;
  for (uint64_t i = 1; i <= n; ++i) {
    sum += 1.0 / std::pow(static_cast<double>(i), theta);
  }
  return sum;
}

uint64_t ZipfianGenerator::next(Rng& rng) {
  const double u = rng.next_double();
  const double uz = u * zetan_;
  if (uz < 1.0) return 0;
  if (uz < 1.0 + std::pow(0.5, theta_)) return 1;
  const auto rank = static_cast<uint64_t>(
      static_cast<double>(n_) * std::pow(eta_ * u - eta_ + 1.0, alpha_));
  return std::min(rank, n_ - 1);
}

// ---------------------------------------------------------------- workloads

namespace {
WorkloadSpec base(std::string name) {
  WorkloadSpec spec;
  spec.name = std::move(name);
  return spec;
}
}  // namespace

WorkloadSpec WorkloadSpec::a() {
  WorkloadSpec s = base("A");
  s.read_proportion = 0.5;
  s.update_proportion = 0.5;
  return s;
}

WorkloadSpec WorkloadSpec::b() {
  WorkloadSpec s = base("B");
  s.read_proportion = 0.95;
  s.update_proportion = 0.05;
  return s;
}

WorkloadSpec WorkloadSpec::c() {
  WorkloadSpec s = base("C");
  s.read_proportion = 1.0;
  return s;
}

WorkloadSpec WorkloadSpec::d() {
  WorkloadSpec s = base("D");
  s.read_proportion = 0.95;
  s.insert_proportion = 0.05;
  s.distribution = Distribution::kLatest;
  return s;
}

WorkloadSpec WorkloadSpec::e() {
  WorkloadSpec s = base("E");
  s.scan_proportion = 0.95;
  s.insert_proportion = 0.05;
  return s;
}

WorkloadSpec WorkloadSpec::f() {
  WorkloadSpec s = base("F");
  s.read_proportion = 0.5;
  s.rmw_proportion = 0.5;
  return s;
}

WorkloadGenerator::WorkloadGenerator(WorkloadSpec spec, uint64_t seed)
    : spec_(std::move(spec)),
      rng_(seed),
      zipfian_(static_cast<uint64_t>(std::max<int64_t>(spec_.record_count, 1))),
      latest_(static_cast<uint64_t>(std::max<int64_t>(spec_.record_count, 1))),
      insert_cursor_(spec_.record_count) {}

int64_t WorkloadGenerator::next_key_id() {
  switch (spec_.distribution) {
    case Distribution::kZipfian:
      return static_cast<int64_t>(zipfian_.next(rng_));
    case Distribution::kUniform:
      return rng_.uniform_int(0, spec_.record_count - 1);
    case Distribution::kLatest:
      return static_cast<int64_t>(latest_.next(rng_));
  }
  return 0;
}

WorkloadGenerator::Op WorkloadGenerator::next() {
  const double roll = rng_.next_double();
  double acc = spec_.read_proportion;
  if (roll < acc) return {OpType::kRead, key_name(next_key_id())};
  acc += spec_.update_proportion;
  if (roll < acc) return {OpType::kUpdate, key_name(next_key_id())};
  acc += spec_.insert_proportion;
  if (roll < acc) {
    const int64_t id = insert_cursor_++;
    latest_.observe_insert(static_cast<uint64_t>(insert_cursor_));
    return {OpType::kInsert, key_name(id)};
  }
  acc += spec_.scan_proportion;
  if (roll < acc) return {OpType::kScan, key_name(next_key_id())};
  return {OpType::kReadModifyWrite, key_name(next_key_id())};
}

// ---------------------------------------------------------------- driver

sim::Task<Status> ClientDriver::load() {
  const auto size = static_cast<size_t>(generator_.spec().value_size);
  for (int64_t i = 0; i < generator_.spec().record_count; ++i) {
    std::string key = WorkloadGenerator::key_name(i);
    auto result = co_await client_->put(std::move(key), Blob::zeros(size));
    if (!result.ok()) co_return result.status();
  }
  co_return ok_status();
}

sim::Task<Status> ClientDriver::run(Options options) {
  for (int64_t i = 0; i < options.operations; ++i) {
    if (options.should_stop && options.should_stop()) break;
    WorkloadGenerator::Op op = generator_.next();
    const TimePoint start = sim_->now();
    switch (op.type) {
      case OpType::kRead:
      case OpType::kScan: {  // scans map to reads against the KV interface
        auto result = co_await client_->get(op.key);
        if (result.ok()) {
          read_hist_.record(sim_->now() - start);
          if (options.on_read) options.on_read(op.key, result->version);
        } else {
          errors_++;
        }
        break;
      }
      case OpType::kUpdate:
      case OpType::kInsert: {
        auto result = co_await client_->put(
            op.key,
            Blob::zeros(static_cast<size_t>(generator_.spec().value_size)));
        if (result.ok()) {
          update_hist_.record(sim_->now() - start);
          if (options.on_write) options.on_write(op.key, result->version);
        } else {
          errors_++;
        }
        break;
      }
      case OpType::kReadModifyWrite: {
        auto read = co_await client_->get(op.key);
        if (read.ok() && options.on_read) {
          options.on_read(op.key, read->version);
        }
        auto write = co_await client_->put(
            op.key,
            Blob::zeros(static_cast<size_t>(generator_.spec().value_size)));
        if (write.ok()) {
          update_hist_.record(sim_->now() - start);
          if (options.on_write) options.on_write(op.key, write->version);
        } else {
          errors_++;
        }
        break;
      }
    }
    ops_completed_++;
    if (options.think_time > Duration::zero()) {
      co_await sim_->delay(options.think_time);
    }
  }
  co_return ok_status();
}

}  // namespace wiera::ycsb
