// YCSB — Yahoo! Cloud Serving Benchmark stand-in (Cooper et al., SoCC'10).
//
// Implements the pieces the paper's evaluation uses: the core workload
// definitions A–F, the request-distribution generators (zipfian,
// scrambled-zipfian, latest, uniform), and a closed-loop client driver that
// runs a workload against a Wiera client and records per-operation
// latencies.
#pragma once

#include <cstdint>
#include <functional>
#include <string>

#include "common/histogram.h"
#include "common/rng.h"
#include "wiera/client.h"

namespace wiera::ycsb {

// ---------------------------------------------------------------- generators

// Zipfian over [0, n); theta = 0.99 like YCSB's default. Uses the
// Gray et al. incremental method (same as YCSB's ZipfianGenerator).
class ZipfianGenerator {
 public:
  explicit ZipfianGenerator(uint64_t n, double theta = kDefaultTheta);

  uint64_t next(Rng& rng);
  uint64_t n() const { return n_; }

  static constexpr double kDefaultTheta = 0.99;

 private:
  static double zeta(uint64_t n, double theta);

  uint64_t n_;
  double theta_;
  double alpha_;
  double zetan_;
  double eta_;
};

// Zipfian with the popular items scattered across the keyspace (YCSB's
// ScrambledZipfianGenerator): avoids hotspots being adjacent keys.
class ScrambledZipfianGenerator {
 public:
  explicit ScrambledZipfianGenerator(uint64_t n)
      : n_(n), zipf_(n) {}

  uint64_t next(Rng& rng) {
    const uint64_t raw = zipf_.next(rng);
    return fnv1a64(&raw, sizeof(raw)) % n_;
  }

 private:
  uint64_t n_;
  ZipfianGenerator zipf_;
};

// "Latest" distribution: most requests go to recently inserted records.
class LatestGenerator {
 public:
  explicit LatestGenerator(uint64_t n) : zipf_(n), max_(n) {}

  void observe_insert(uint64_t new_max) {
    max_ = new_max;
    if (max_ > zipf_.n()) zipf_ = ZipfianGenerator(max_);
  }

  uint64_t next(Rng& rng) {
    const uint64_t offset = zipf_.next(rng);
    return max_ - 1 - offset;
  }

 private:
  ZipfianGenerator zipf_;
  uint64_t max_;
};

// ---------------------------------------------------------------- workloads

enum class OpType { kRead, kUpdate, kInsert, kScan, kReadModifyWrite };

enum class Distribution { kZipfian, kUniform, kLatest };

// A YCSB core-workload mix.
struct WorkloadSpec {
  std::string name;
  double read_proportion = 0;
  double update_proportion = 0;
  double insert_proportion = 0;
  double scan_proportion = 0;
  double rmw_proportion = 0;
  Distribution distribution = Distribution::kZipfian;
  int64_t record_count = 1000;
  int64_t value_size = 1024;  // 1 KB fields total by default

  // The six core workloads (YCSB wiki definitions).
  static WorkloadSpec a();  // update heavy: 50/50 read/update, zipfian
  static WorkloadSpec b();  // read mostly: 95/5 read/update, zipfian
  static WorkloadSpec c();  // read only: 100 read, zipfian
  static WorkloadSpec d();  // read latest: 95/5 read/insert, latest
  static WorkloadSpec e();  // short ranges: 95/5 scan/insert, zipfian
  static WorkloadSpec f();  // read-modify-write: 50/50 read/rmw, zipfian

  // §5.2's description of its client mix ("Read mostly workload (5% put
  // and 95% get)") — workload B's mix.
  static WorkloadSpec read_mostly() { return b(); }
};

// Chooses the next operation + key for a workload.
class WorkloadGenerator {
 public:
  WorkloadGenerator(WorkloadSpec spec, uint64_t seed);

  struct Op {
    OpType type;
    std::string key;
  };
  Op next();

  const WorkloadSpec& spec() const { return spec_; }
  static std::string key_name(int64_t id) {
    return "user" + std::to_string(id);
  }

 private:
  int64_t next_key_id();

  WorkloadSpec spec_;
  Rng rng_;
  ScrambledZipfianGenerator zipfian_;
  LatestGenerator latest_;
  int64_t insert_cursor_;
};

// ---------------------------------------------------------------- driver

// Closed-loop client: issues ops back-to-back (optionally with think time),
// records latencies split by op class.
class ClientDriver {
 public:
  struct Options {
    int64_t operations = 1000;
    Duration think_time = Duration::zero();
    // Called after each get with (key, returned version) — benches use it
    // for staleness accounting (Fig. 8).
    std::function<void(const std::string& key, int64_t version)> on_read;
    // Called after each successful put with (key, new version).
    std::function<void(const std::string& key, int64_t version)> on_write;
    // Abort the loop early when set (e.g. phase-driven benches).
    std::function<bool()> should_stop;
  };

  ClientDriver(sim::Simulation& sim, geo::WieraClient& client,
               WorkloadSpec spec, uint64_t seed)
      : sim_(&sim), client_(&client), generator_(std::move(spec), seed) {}

  // Load phase: insert all records.
  sim::Task<Status> load();
  // Run phase.
  sim::Task<Status> run(Options options);

  const LatencyHistogram& read_latency() const { return read_hist_; }
  const LatencyHistogram& update_latency() const { return update_hist_; }
  int64_t ops_completed() const { return ops_completed_; }
  int64_t errors() const { return errors_; }

 private:
  sim::Simulation* sim_;
  geo::WieraClient* client_;
  WorkloadGenerator generator_;
  LatencyHistogram read_hist_;
  LatencyHistogram update_hist_;
  int64_t ops_completed_ = 0;
  int64_t errors_ = 0;
};

}  // namespace wiera::ycsb
