// Storage tier abstraction and concrete tier models.
//
// A Tiera instance composes several of these (§2.1): a volatile memory tier
// (Memcached/ElastiCache), block devices (EBS SSD/HDD), and object stores
// (S3 / S3-IA / Glacier). Each model reproduces the characteristics the
// paper's evaluation depends on:
//   * MemoryTier  — sub-ms service time, volatile, LRU eviction when full.
//   * BlockTier   — device latency + OS buffer cache (<1 ms hits unless
//                   O_DIRECT or memory pressure) + provider IOPS throttle
//                   (Azure caps attached disks at 500 IOPS, Fig. 11).
//   * ObjectTier  — tens-of-ms request latency, unbounded capacity,
//                   per-request billing (Table 4).
// All operations take virtual time on the owning Simulation.
#pragma once

#include <cstdint>
#include <list>
#include <map>
#include <memory>
#include <string>
#include <unordered_map>
#include <vector>

#include "common/bytes.h"
#include "common/rng.h"
#include "common/status.h"
#include "common/time.h"
#include "sim/simulation.h"
#include "sim/task.h"

namespace wiera::store {

enum class TierKind {
  kMemory,      // Memcached / ElastiCache
  kBlockSsd,    // EBS gp2 / local SSD
  kBlockHdd,    // EBS magnetic
  kObjectS3,    // S3 standard
  kObjectS3IA,  // S3 infrequent access
  kGlacier,     // archival
  kForward,     // another Tiera instance used as a tier (§3.2.2)
};

std::string_view tier_kind_name(TierKind kind);
// Parse "Memcached" / "LocalMemory" / "EBS-SSD" / "LocalDisk" / "S3" /
// "S3-IA" / "Glacier" / "CheapestArchival" etc. (the names used in the
// paper's policy specs) into a TierKind.
Result<TierKind> tier_kind_from_name(std::string_view name);

// Per-operation options threaded down from the VFS layer.
struct IoOptions {
  bool direct = false;  // O_DIRECT: bypass the buffer cache
  // Absolute deadline for the operation (request-lifecycle propagation,
  // docs/OVERLOAD.md): tier operations check it on entry and return
  // kDeadlineExceeded instead of starting work the caller abandoned.
  // TimePoint::max() = none.
  TimePoint deadline = TimePoint::max();
};

// True when `opts` carries a deadline that has already passed at `now`.
inline bool io_deadline_expired(const IoOptions& opts, TimePoint now) {
  return opts.deadline != TimePoint::max() && now >= opts.deadline;
}

struct TierStats {
  int64_t puts = 0;
  int64_t gets = 0;
  int64_t removes = 0;
  int64_t get_misses = 0;
  int64_t bytes_written = 0;
  int64_t bytes_read = 0;
  int64_t evictions = 0;
  int64_t cache_hits = 0;   // buffer-cache hits (block tiers)
  int64_t cache_misses = 0;
  int64_t torn_writes = 0;     // writes whose commit landed in a torn window
  int64_t torn_discards = 0;   // journalled torn writes discarded by recover()
  int64_t corruptions = 0;     // injected bit-rot flips
};

struct TierSpec {
  std::string name;  // instance-local tier name, e.g. "tier1"
  TierKind kind = TierKind::kMemory;
  int64_t capacity_bytes = 0;  // 0 = unbounded (object tiers)

  // Latency model (defaults filled by make_tier from calibrated constants).
  Duration read_base = Duration::zero();
  Duration write_base = Duration::zero();
  double bandwidth_mbps = 0;  // payload streaming rate
  double jitter_fraction = 0.05;

  // Block-tier extras.
  int64_t iops_limit = 0;          // 0 = unlimited
  bool buffer_cache = false;       // OS page cache in front of the device
  int64_t buffer_cache_bytes = 0;  // 0 with buffer_cache => unlimited cache

  // Durable tiers commit via a shadow journal (docs/INTEGRITY.md): a write
  // torn by a crash is staged, detected on recover() and discarded instead
  // of served. Disabling this models a legacy in-place write path where a
  // torn write silently publishes a truncated payload.
  bool crash_consistent = true;
};

class StorageTier {
 public:
  StorageTier(sim::Simulation& sim, TierSpec spec)
      : sim_(&sim), spec_(std::move(spec)), rng_(sim.rng().fork()) {}
  virtual ~StorageTier() = default;

  StorageTier(const StorageTier&) = delete;
  StorageTier& operator=(const StorageTier&) = delete;

  const TierSpec& spec() const { return spec_; }
  const TierStats& stats() const { return stats_; }
  sim::Simulation& sim() { return *sim_; }

  virtual sim::Task<Status> put(std::string key, Blob value,
                                IoOptions opts = {}) = 0;
  virtual sim::Task<Result<Blob>> get(std::string key, IoOptions opts = {}) = 0;
  virtual sim::Task<Status> remove(std::string key) = 0;

  virtual bool contains(const std::string& key) const = 0;
  virtual int64_t used_bytes() const = 0;
  virtual int64_t object_count() const = 0;

  double fill_fraction() const {
    if (spec_.capacity_bytes <= 0) return 0.0;
    return static_cast<double>(used_bytes()) /
           static_cast<double>(spec_.capacity_bytes);
  }

  // Capacity growth — the Tiera `grow` response. Rejects negative growth
  // and additions that would overflow capacity_bytes.
  Status grow(int64_t additional_bytes);

  // Post-restart crash-consistency pass: durable tiers discard journalled
  // torn writes here. Default: nothing to recover.
  virtual void recover() {}

  // Bit-rot injection: flip one byte of the stored copy of `key` in place.
  // Returns false when the tier holds no such key (volatile tiers after a
  // wipe, forward tiers). Metadata is untouched — only checksum
  // verification can tell.
  virtual bool corrupt_object(const std::string& /*key*/) { return false; }

  // ---- fault injection (chaos harness) ----
  // Multiply every service time by `factor` during [from, until) — a
  // degraded device or noisy neighbor.
  void inject_slowdown(double factor, TimePoint from, TimePoint until);
  // Writes fail with kResourceExhausted (ENOSPC) during [from, until);
  // reads keep working.
  void inject_write_errors(TimePoint from, TimePoint until);
  // Writes whose commit lands in [from, until) are torn mid-payload — the
  // crash window of a node outage (docs/INTEGRITY.md).
  void inject_torn_writes(TimePoint from, TimePoint until);
  void clear_faults() { faults_.clear(); }

 protected:
  // Sampled service time: base + payload/bandwidth, with multiplicative
  // jitter and any active injected slowdown.
  Duration service_time(Duration base, int64_t bytes);

  // Non-OK while a write-error window is active; every put checks this.
  Status write_fault() const;

  // True while a torn-write window is active at the commit instant.
  bool torn_fault() const;

  struct FaultWindow {
    double slowdown = 1.0;
    bool write_error = false;
    bool torn_write = false;
    TimePoint from;
    TimePoint until;
  };

  sim::Simulation* sim_;
  TierSpec spec_;
  TierStats stats_;
  Rng rng_;
  std::vector<FaultWindow> faults_;
};

// ---------------------------------------------------------------- MemoryTier

class MemoryTier final : public StorageTier {
 public:
  MemoryTier(sim::Simulation& sim, TierSpec spec)
      : StorageTier(sim, std::move(spec)) {}

  sim::Task<Status> put(std::string key, Blob value, IoOptions opts) override;
  sim::Task<Result<Blob>> get(std::string key, IoOptions opts) override;
  sim::Task<Status> remove(std::string key) override;

  bool contains(const std::string& key) const override {
    return entries_.count(key) > 0;
  }
  int64_t used_bytes() const override { return used_bytes_; }
  int64_t object_count() const override {
    return static_cast<int64_t>(entries_.size());
  }

  // Volatility: a crash wipes a memory tier.
  void wipe() {
    entries_.clear();
    lru_.clear();
    used_bytes_ = 0;
  }

  bool corrupt_object(const std::string& key) override;

 private:
  void touch(const std::string& key);
  void evict_until_fits(int64_t incoming_bytes);

  struct Entry {
    Blob value;
    std::list<std::string>::iterator lru_it;
  };
  std::unordered_map<std::string, Entry> entries_;
  std::list<std::string> lru_;  // front = most recent
  int64_t used_bytes_ = 0;
};

// ---------------------------------------------------------------- BlockTier

class BlockTier final : public StorageTier {
 public:
  BlockTier(sim::Simulation& sim, TierSpec spec)
      : StorageTier(sim, std::move(spec)) {}

  sim::Task<Status> put(std::string key, Blob value, IoOptions opts) override;
  sim::Task<Result<Blob>> get(std::string key, IoOptions opts) override;
  sim::Task<Status> remove(std::string key) override;

  bool contains(const std::string& key) const override {
    return entries_.count(key) > 0;
  }
  int64_t used_bytes() const override { return used_bytes_; }
  int64_t object_count() const override {
    return static_cast<int64_t>(entries_.size());
  }

  // Models "running a memory-intensive application" (paper §5.3): the page
  // cache is effectively gone.
  void set_memory_pressure(bool pressure) { memory_pressure_ = pressure; }

  // A host crash empties the OS page cache (data on the device survives).
  void drop_cache() {
    cache_.clear();
    cache_lru_.clear();
    cache_bytes_ = 0;
  }

  void recover() override;
  bool corrupt_object(const std::string& key) override;

 private:
  // Reserve the next device slot under the IOPS throttle; returns the time
  // the device can start this op.
  TimePoint reserve_device_slot();
  bool cache_lookup(const std::string& key);
  void cache_insert(const std::string& key, int64_t bytes);
  void cache_erase(const std::string& key);

  std::unordered_map<std::string, Blob> entries_;
  // Shadow journal: torn writes staged here instead of entries_ when the
  // tier is crash-consistent; recover() discards them.
  std::unordered_map<std::string, Blob> journal_;
  int64_t used_bytes_ = 0;
  bool memory_pressure_ = false;
  TimePoint next_device_slot_ = TimePoint::origin();

  struct CacheEntry {
    int64_t bytes;
    std::list<std::string>::iterator lru_it;
  };
  std::unordered_map<std::string, CacheEntry> cache_;
  std::list<std::string> cache_lru_;
  int64_t cache_bytes_ = 0;
};

// ---------------------------------------------------------------- ObjectTier

class ObjectTier final : public StorageTier {
 public:
  ObjectTier(sim::Simulation& sim, TierSpec spec)
      : StorageTier(sim, std::move(spec)) {}

  sim::Task<Status> put(std::string key, Blob value, IoOptions opts) override;
  sim::Task<Result<Blob>> get(std::string key, IoOptions opts) override;
  sim::Task<Status> remove(std::string key) override;

  bool contains(const std::string& key) const override {
    return entries_.count(key) > 0;
  }
  int64_t used_bytes() const override { return used_bytes_; }
  int64_t object_count() const override {
    return static_cast<int64_t>(entries_.size());
  }

  void recover() override;
  bool corrupt_object(const std::string& key) override;

 private:
  std::map<std::string, Blob> entries_;
  std::unordered_map<std::string, Blob> journal_;  // staged torn writes
  int64_t used_bytes_ = 0;
};

// Calibrated 4 KB service times (Fig. 9 / DESIGN.md §5) and a factory that
// fills TierSpec defaults from them.
namespace calibration {
inline constexpr int64_t kMemoryReadUs = 200;
inline constexpr int64_t kMemoryWriteUs = 250;
inline constexpr int64_t kSsdReadUs = 1000;
inline constexpr int64_t kSsdWriteUs = 1200;
inline constexpr int64_t kHddReadUs = 8000;
inline constexpr int64_t kHddWriteUs = 9000;
inline constexpr int64_t kCacheHitUs = 60;  // page-cache hit (<1 ms, paper)
inline constexpr int64_t kS3ReadUs = 15000;
inline constexpr int64_t kS3WriteUs = 25000;
inline constexpr int64_t kS3IAReadUs = 30000;
inline constexpr int64_t kS3IAWriteUs = 40000;
inline constexpr int64_t kGlacierReadUs = 3600LL * 1000 * 1000;  // hours
inline constexpr int64_t kGlacierWriteUs = 50000;

inline constexpr double kMemoryMbps = 250.0;
inline constexpr double kSsdMbps = 160.0;
inline constexpr double kHddMbps = 90.0;
inline constexpr double kObjectMbps = 50.0;

inline constexpr int64_t kAzureDiskIops = 500;  // Fig. 11 throttle
}  // namespace calibration

// Build a tier with calibrated defaults for its kind. Fields explicitly set
// in `spec` (non-zero latencies/bandwidth) are kept.
std::unique_ptr<StorageTier> make_tier(sim::Simulation& sim, TierSpec spec);

}  // namespace wiera::store
