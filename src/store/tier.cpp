#include "store/tier.h"

#include <algorithm>
#include <cassert>
#include <limits>

#include "common/strings.h"

namespace wiera::store {

std::string_view tier_kind_name(TierKind kind) {
  switch (kind) {
    case TierKind::kMemory: return "memory";
    case TierKind::kBlockSsd: return "block-ssd";
    case TierKind::kBlockHdd: return "block-hdd";
    case TierKind::kObjectS3: return "s3";
    case TierKind::kObjectS3IA: return "s3-ia";
    case TierKind::kGlacier: return "glacier";
    case TierKind::kForward: return "forward";
  }
  return "?";
}

Result<TierKind> tier_kind_from_name(std::string_view name) {
  const std::string n = to_lower(name);
  if (n == "memcached" || n == "localmemory" || n == "memory" ||
      n == "elasticache") {
    return TierKind::kMemory;
  }
  if (n == "ebs" || n == "ebs-ssd" || n == "localdisk" || n == "ssd") {
    return TierKind::kBlockSsd;
  }
  if (n == "ebs-hdd" || n == "hdd" || n == "magnetic") {
    return TierKind::kBlockHdd;
  }
  if (n == "s3") return TierKind::kObjectS3;
  if (n == "s3-ia" || n == "s3ia") return TierKind::kObjectS3IA;
  if (n == "glacier" || n == "cheapestarchival" || n == "archival") {
    return TierKind::kGlacier;
  }
  if (n == "forward" || n == "instance") return TierKind::kForward;
  return invalid_argument("unknown storage tier name: " + std::string(name));
}

Duration StorageTier::service_time(Duration base, int64_t bytes) {
  Duration t = base;
  if (bytes > 0 && spec_.bandwidth_mbps > 0) {
    t += sec(static_cast<double>(bytes) / (spec_.bandwidth_mbps * 1e6));
  }
  if (spec_.jitter_fraction > 0) {
    const double k = std::max(0.5, 1.0 + spec_.jitter_fraction * rng_.gaussian());
    t = t * k;
  }
  const TimePoint now = sim_->now();
  for (const auto& f : faults_) {
    if (f.slowdown > 1.0 && now >= f.from && now < f.until) {
      t = t * f.slowdown;
    }
  }
  return t;
}

void StorageTier::inject_slowdown(double factor, TimePoint from,
                                  TimePoint until) {
  FaultWindow w;
  w.slowdown = factor;
  w.from = from;
  w.until = until;
  faults_.push_back(w);
}

void StorageTier::inject_write_errors(TimePoint from, TimePoint until) {
  FaultWindow w;
  w.write_error = true;
  w.from = from;
  w.until = until;
  faults_.push_back(w);
}

void StorageTier::inject_torn_writes(TimePoint from, TimePoint until) {
  FaultWindow w;
  w.torn_write = true;
  w.from = from;
  w.until = until;
  faults_.push_back(w);
}

Status StorageTier::write_fault() const {
  const TimePoint now = sim_->now();
  for (const auto& f : faults_) {
    if (f.write_error && now >= f.from && now < f.until) {
      return resource_exhausted("injected ENOSPC on tier " + spec_.name);
    }
  }
  return ok_status();
}

bool StorageTier::torn_fault() const {
  const TimePoint now = sim_->now();
  for (const auto& f : faults_) {
    if (f.torn_write && now >= f.from && now < f.until) return true;
  }
  return false;
}

Status StorageTier::grow(int64_t additional_bytes) {
  if (additional_bytes < 0) {
    return invalid_argument("tier grow: negative growth on " + spec_.name);
  }
  if (additional_bytes >
      std::numeric_limits<int64_t>::max() - spec_.capacity_bytes) {
    return out_of_range("tier grow: capacity overflow on " + spec_.name);
  }
  spec_.capacity_bytes += additional_bytes;
  return ok_status();
}

namespace {
// One flipped byte mid-payload: invisible to size checks, fatal to the
// object checksum.
Blob flip_middle_byte(const Blob& value) {
  Bytes mutated(value.data(), value.data() + value.size());
  mutated[mutated.size() / 2] ^= 0x01;
  return Blob(std::move(mutated));
}

// A torn write publishes only the first half of the payload.
Blob torn_prefix(const Blob& value) {
  return Blob(Bytes(value.data(), value.data() + value.size() / 2));
}
}  // namespace

// ---------------------------------------------------------------- MemoryTier

void MemoryTier::touch(const std::string& key) {
  auto it = entries_.find(key);
  assert(it != entries_.end());
  lru_.erase(it->second.lru_it);
  lru_.push_front(key);
  it->second.lru_it = lru_.begin();
}

void MemoryTier::evict_until_fits(int64_t incoming_bytes) {
  if (spec_.capacity_bytes <= 0) return;
  while (used_bytes_ + incoming_bytes > spec_.capacity_bytes &&
         !lru_.empty()) {
    const std::string victim = lru_.back();
    lru_.pop_back();
    auto it = entries_.find(victim);
    used_bytes_ -= static_cast<int64_t>(it->second.value.size());
    entries_.erase(it);
    stats_.evictions++;
  }
}

sim::Task<Status> MemoryTier::put(std::string key, Blob value,
                                  IoOptions /*opts*/) {
  if (Status fault = write_fault(); !fault.ok()) co_return fault;
  const auto bytes = static_cast<int64_t>(value.size());
  if (spec_.capacity_bytes > 0 && bytes > spec_.capacity_bytes) {
    co_return resource_exhausted("object larger than memory tier");
  }
  co_await sim_->delay(service_time(spec_.write_base, bytes));

  auto it = entries_.find(key);
  if (it != entries_.end()) {
    used_bytes_ -= static_cast<int64_t>(it->second.value.size());
    lru_.erase(it->second.lru_it);
    entries_.erase(it);
  }
  evict_until_fits(bytes);  // memcached-style LRU eviction
  lru_.push_front(key);
  entries_[key] = Entry{std::move(value), lru_.begin()};
  used_bytes_ += bytes;
  stats_.puts++;
  stats_.bytes_written += bytes;
  co_return ok_status();
}

sim::Task<Result<Blob>> MemoryTier::get(std::string key, IoOptions /*opts*/) {
  auto it = entries_.find(key);
  if (it == entries_.end()) {
    stats_.gets++;
    stats_.get_misses++;
    co_await sim_->delay(service_time(spec_.read_base, 0));
    co_return not_found("memory tier: " + key);
  }
  // wiera-lint: allow(await-hazard) the await above is in a co_returning miss branch; the hit path re-fetches below
  const auto bytes = static_cast<int64_t>(it->second.value.size());
  co_await sim_->delay(service_time(spec_.read_base, bytes));
  // Entry may have been evicted while this op was "in flight".
  it = entries_.find(key);
  if (it == entries_.end()) {
    stats_.gets++;
    stats_.get_misses++;
    co_return not_found("memory tier (evicted): " + key);
  }
  touch(key);
  stats_.gets++;
  stats_.bytes_read += bytes;
  co_return it->second.value;
}

bool MemoryTier::corrupt_object(const std::string& key) {
  auto it = entries_.find(key);
  if (it == entries_.end() || it->second.value.empty()) return false;
  it->second.value = flip_middle_byte(it->second.value);
  stats_.corruptions++;
  return true;
}

sim::Task<Status> MemoryTier::remove(std::string key) {
  co_await sim_->delay(service_time(spec_.write_base / 2, 0));
  auto it = entries_.find(key);
  if (it == entries_.end()) co_return not_found("memory tier: " + key);
  used_bytes_ -= static_cast<int64_t>(it->second.value.size());
  lru_.erase(it->second.lru_it);
  entries_.erase(it);
  stats_.removes++;
  co_return ok_status();
}

// ---------------------------------------------------------------- BlockTier

TimePoint BlockTier::reserve_device_slot() {
  if (spec_.iops_limit <= 0) return sim_->now();
  const Duration slot_interval = usec(1000000 / spec_.iops_limit);
  const TimePoint start = std::max(sim_->now(), next_device_slot_);
  next_device_slot_ = start + slot_interval;
  return start;
}

bool BlockTier::cache_lookup(const std::string& key) {
  if (!spec_.buffer_cache || memory_pressure_) return false;
  auto it = cache_.find(key);
  if (it == cache_.end()) return false;
  cache_lru_.erase(it->second.lru_it);
  cache_lru_.push_front(key);
  it->second.lru_it = cache_lru_.begin();
  return true;
}

void BlockTier::cache_insert(const std::string& key, int64_t bytes) {
  if (!spec_.buffer_cache || memory_pressure_) return;
  cache_erase(key);
  if (spec_.buffer_cache_bytes > 0) {
    while (cache_bytes_ + bytes > spec_.buffer_cache_bytes &&
           !cache_lru_.empty()) {
      const std::string victim = cache_lru_.back();
      cache_lru_.pop_back();
      auto it = cache_.find(victim);
      cache_bytes_ -= it->second.bytes;
      cache_.erase(it);
    }
  }
  cache_lru_.push_front(key);
  cache_[key] = CacheEntry{bytes, cache_lru_.begin()};
  cache_bytes_ += bytes;
}

void BlockTier::cache_erase(const std::string& key) {
  auto it = cache_.find(key);
  if (it == cache_.end()) return;
  cache_bytes_ -= it->second.bytes;
  cache_lru_.erase(it->second.lru_it);
  cache_.erase(it);
}

sim::Task<Status> BlockTier::put(std::string key, Blob value, IoOptions opts) {
  if (io_deadline_expired(opts, sim_->now())) {
    co_return deadline_exceeded("block tier put: " + spec_.name);
  }
  if (Status fault = write_fault(); !fault.ok()) co_return fault;
  const auto bytes = static_cast<int64_t>(value.size());
  const bool had = contains(key);
  const int64_t old_bytes =
      had ? static_cast<int64_t>(entries_[key].size()) : 0;
  if (spec_.capacity_bytes > 0 &&
      used_bytes_ - old_bytes + bytes > spec_.capacity_bytes) {
    co_return resource_exhausted("block tier full: " + spec_.name);
  }

  const bool cached_write =
      !opts.direct && spec_.buffer_cache && !memory_pressure_;
  if (cached_write) {
    // Write-back: lands in the page cache; device flush is asynchronous and
    // not modelled per-op.
    co_await sim_->delay(service_time(usec(calibration::kCacheHitUs), bytes));
    cache_insert(key, bytes);
    stats_.cache_hits++;
  } else {
    const TimePoint slot = reserve_device_slot();
    co_await sim_->at(slot);
    co_await sim_->delay(service_time(spec_.write_base, bytes));
    stats_.cache_misses++;
  }

  if (torn_fault()) {
    stats_.torn_writes++;
    cache_erase(key);
    if (spec_.crash_consistent) {
      // Shadow commit: the partial write stays staged in the journal and is
      // discarded by recover(); the previous committed copy is untouched.
      journal_[key] = torn_prefix(value);
      co_return data_loss("torn write staged on tier " + spec_.name);
    }
    // Legacy in-place write: the torn prefix silently replaces the object.
    // Size checks can't tell (metadata records the intended size); only the
    // object checksum can.
    Blob torn = torn_prefix(value);
    const auto torn_bytes = static_cast<int64_t>(torn.size());
    used_bytes_ += torn_bytes - old_bytes;
    entries_[key] = std::move(torn);
    stats_.puts++;
    stats_.bytes_written += torn_bytes;
    co_return ok_status();
  }

  used_bytes_ += bytes - old_bytes;
  entries_[key] = std::move(value);
  stats_.puts++;
  stats_.bytes_written += bytes;
  co_return ok_status();
}

void BlockTier::recover() {
  stats_.torn_discards += static_cast<int64_t>(journal_.size());
  journal_.clear();
}

bool BlockTier::corrupt_object(const std::string& key) {
  auto it = entries_.find(key);
  if (it == entries_.end() || it->second.empty()) return false;
  it->second = flip_middle_byte(it->second);
  stats_.corruptions++;
  return true;
}

sim::Task<Result<Blob>> BlockTier::get(std::string key, IoOptions opts) {
  if (io_deadline_expired(opts, sim_->now())) {
    co_return deadline_exceeded("block tier get: " + spec_.name);
  }
  auto it = entries_.find(key);
  stats_.gets++;
  if (it == entries_.end()) {
    stats_.get_misses++;
    co_await sim_->delay(service_time(usec(calibration::kCacheHitUs), 0));
    co_return not_found("block tier: " + key);
  }
  // wiera-lint: allow(await-hazard) the await above is in a co_returning miss branch; the device path re-fetches below
  const auto bytes = static_cast<int64_t>(it->second.size());

  if (!opts.direct && cache_lookup(key)) {
    stats_.cache_hits++;
    co_await sim_->delay(service_time(usec(calibration::kCacheHitUs), bytes));
  } else {
    stats_.cache_misses++;
    const TimePoint slot = reserve_device_slot();
    co_await sim_->at(slot);
    co_await sim_->delay(service_time(spec_.read_base, bytes));
    if (!opts.direct) cache_insert(key, bytes);
  }

  it = entries_.find(key);
  if (it == entries_.end()) co_return not_found("block tier (removed): " + key);
  stats_.bytes_read += bytes;
  co_return it->second;
}

sim::Task<Status> BlockTier::remove(std::string key) {
  co_await sim_->delay(service_time(usec(calibration::kCacheHitUs), 0));
  auto it = entries_.find(key);
  if (it == entries_.end()) co_return not_found("block tier: " + key);
  used_bytes_ -= static_cast<int64_t>(it->second.size());
  entries_.erase(it);
  cache_erase(key);
  stats_.removes++;
  co_return ok_status();
}

// ---------------------------------------------------------------- ObjectTier

sim::Task<Status> ObjectTier::put(std::string key, Blob value,
                                  IoOptions opts) {
  if (io_deadline_expired(opts, sim_->now())) {
    co_return deadline_exceeded("object tier put: " + spec_.name);
  }
  if (Status fault = write_fault(); !fault.ok()) co_return fault;
  const auto bytes = static_cast<int64_t>(value.size());
  co_await sim_->delay(service_time(spec_.write_base, bytes));
  if (torn_fault()) {
    stats_.torn_writes++;
    if (spec_.crash_consistent) {
      // Staged in the journal, discarded by recover(); the previous
      // committed copy is untouched.
      journal_[key] = torn_prefix(value);
      co_return data_loss("torn write staged on tier " + spec_.name);
    }
    value = torn_prefix(value);
  }
  const auto stored = static_cast<int64_t>(value.size());
  auto it = entries_.find(key);
  if (it != entries_.end()) {
    used_bytes_ -= static_cast<int64_t>(it->second.size());
  }
  entries_[key] = std::move(value);
  used_bytes_ += stored;
  stats_.puts++;
  stats_.bytes_written += stored;
  co_return ok_status();
}

void ObjectTier::recover() {
  stats_.torn_discards += static_cast<int64_t>(journal_.size());
  journal_.clear();
}

bool ObjectTier::corrupt_object(const std::string& key) {
  auto it = entries_.find(key);
  if (it == entries_.end() || it->second.empty()) return false;
  it->second = flip_middle_byte(it->second);
  stats_.corruptions++;
  return true;
}

sim::Task<Result<Blob>> ObjectTier::get(std::string key, IoOptions opts) {
  if (io_deadline_expired(opts, sim_->now())) {
    co_return deadline_exceeded("object tier get: " + spec_.name);
  }
  stats_.gets++;
  auto it = entries_.find(key);
  if (it == entries_.end()) {
    stats_.get_misses++;
    co_await sim_->delay(service_time(spec_.read_base, 0));
    co_return not_found("object tier: " + key);
  }
  // wiera-lint: allow(await-hazard) the await above is in a co_returning miss branch; re-fetched below
  const auto bytes = static_cast<int64_t>(it->second.size());
  co_await sim_->delay(service_time(spec_.read_base, bytes));
  it = entries_.find(key);
  if (it == entries_.end()) co_return not_found("object tier (removed): " + key);
  stats_.bytes_read += bytes;
  co_return it->second;
}

sim::Task<Status> ObjectTier::remove(std::string key) {
  co_await sim_->delay(service_time(spec_.write_base / 4, 0));
  auto it = entries_.find(key);
  if (it == entries_.end()) co_return not_found("object tier: " + key);
  used_bytes_ -= static_cast<int64_t>(it->second.size());
  entries_.erase(it);
  stats_.removes++;
  co_return ok_status();
}

// ---------------------------------------------------------------- factory

std::unique_ptr<StorageTier> make_tier(sim::Simulation& sim, TierSpec spec) {
  using namespace calibration;
  auto defaults = [&](int64_t read_us, int64_t write_us, double mbps) {
    if (spec.read_base == Duration::zero()) spec.read_base = usec(read_us);
    if (spec.write_base == Duration::zero()) spec.write_base = usec(write_us);
    if (spec.bandwidth_mbps == 0) spec.bandwidth_mbps = mbps;
  };

  switch (spec.kind) {
    case TierKind::kMemory:
      defaults(kMemoryReadUs, kMemoryWriteUs, kMemoryMbps);
      return std::make_unique<MemoryTier>(sim, std::move(spec));
    case TierKind::kBlockSsd:
      defaults(kSsdReadUs, kSsdWriteUs, kSsdMbps);
      return std::make_unique<BlockTier>(sim, std::move(spec));
    case TierKind::kBlockHdd:
      defaults(kHddReadUs, kHddWriteUs, kHddMbps);
      return std::make_unique<BlockTier>(sim, std::move(spec));
    case TierKind::kObjectS3:
      defaults(kS3ReadUs, kS3WriteUs, kObjectMbps);
      return std::make_unique<ObjectTier>(sim, std::move(spec));
    case TierKind::kObjectS3IA:
      defaults(kS3IAReadUs, kS3IAWriteUs, kObjectMbps);
      return std::make_unique<ObjectTier>(sim, std::move(spec));
    case TierKind::kGlacier:
      defaults(kGlacierReadUs, kGlacierWriteUs, kObjectMbps);
      return std::make_unique<ObjectTier>(sim, std::move(spec));
    case TierKind::kForward:
      assert(false && "forward tiers are built by the tiera module");
      return nullptr;
  }
  return nullptr;
}

}  // namespace wiera::store
