#include "coord/lock_service.h"

#include "rpc/wire.h"

namespace wiera::coord {

namespace {

struct LockRequest {
  std::string lock_name;
  std::string requester;
};

rpc::Message encode_request(const LockRequest& req) {
  rpc::WireWriter w;
  w.put_string(req.lock_name);
  w.put_string(req.requester);
  return rpc::Message{w.take()};
}

Result<LockRequest> decode_request(const rpc::Message& msg) {
  rpc::WireReader r(msg.body);
  LockRequest req;
  req.lock_name = r.get_string();
  req.requester = r.get_string();
  if (!r.ok()) return r.status();
  return req;
}

rpc::Message encode_status(const Status& st) {
  rpc::WireWriter w;
  w.put_bool(st.ok());
  w.put_u32(static_cast<uint32_t>(st.code()));
  w.put_string(st.message());
  return rpc::Message{w.take()};
}

Status decode_status(const rpc::Message& msg) {
  rpc::WireReader r(msg.body);
  const bool ok = r.get_bool();
  const auto code = static_cast<StatusCode>(r.get_u32());
  std::string message = r.get_string();
  if (!r.ok()) return r.status();
  if (ok) return ok_status();
  return Status(code, std::move(message));
}

}  // namespace

LockService::~LockService() { reaping_ = false; }

void LockService::start_lease_reaper(Duration check_interval) {
  if (reaping_) return;
  reaping_ = true;
  sim_->spawn(lease_reaper_loop(check_interval), "lock.lease-reaper");
}

sim::Task<void> LockService::lease_reaper_loop(Duration check_interval) {
  while (reaping_) {
    co_await sim_->delay(check_interval);
    if (!reaping_) break;
    for (auto& [name, lock] : locks_) {
      if (lock->holder.empty()) continue;
      if (sim_->now() - lock->granted_at > lease_) {
        // The holder exceeded its lease (crashed or wedged): evict it so
        // queued writers make progress. A late release from the old holder
        // will fail with a holder mismatch, like an expired ZK session.
        lock->holder.clear();
        lock->mutex.unlock();
        leases_expired_++;
      }
    }
  }
}

LockService::LockService(sim::Simulation& sim, rpc::Endpoint& endpoint)
    : sim_(&sim), endpoint_(&endpoint) {
  endpoint_->register_handler(
      kAcquireMethod, [this](rpc::Message req) { return handle_acquire(std::move(req)); });
  endpoint_->register_handler(
      kReleaseMethod, [this](rpc::Message req) { return handle_release(std::move(req)); });
}

LockService::LockState& LockService::state_for(const std::string& lock_name) {
  auto it = locks_.find(lock_name);
  if (it == locks_.end()) {
    it = locks_.emplace(lock_name, std::make_unique<LockState>(*sim_)).first;
  }
  return *it->second;
}

std::string LockService::holder(const std::string& lock_name) const {
  auto it = locks_.find(lock_name);
  return it == locks_.end() ? "" : it->second->holder;
}

int64_t LockService::waiting(const std::string& lock_name) const {
  auto it = locks_.find(lock_name);
  return it == locks_.end() ? 0 : it->second->waiting;
}

sim::Task<Result<rpc::Message>> LockService::handle_acquire(
    rpc::Message request) {
  auto req = decode_request(request);
  if (!req.ok()) co_return req.status();

  LockState& lock = state_for(req->lock_name);
  if (lock.holder == req->requester) {
    co_return encode_status(
        failed_precondition("lock already held by requester (not reentrant)"));
  }
  lock.waiting++;
  co_await lock.mutex.lock();
  lock.waiting--;
  lock.holder = req->requester;
  lock.granted_at = sim_->now();
  acquires_served_++;
  co_return encode_status(ok_status());
}

sim::Task<Result<rpc::Message>> LockService::handle_release(
    rpc::Message request) {
  auto req = decode_request(request);
  if (!req.ok()) co_return req.status();

  auto it = locks_.find(req->lock_name);
  if (it == locks_.end() || it->second->holder.empty()) {
    co_return encode_status(
        failed_precondition("release of unheld lock " + req->lock_name));
  }
  if (it->second->holder != req->requester) {
    co_return encode_status(failed_precondition(
        "lock " + req->lock_name + " held by " + it->second->holder +
        ", not " + req->requester));
  }
  it->second->holder.clear();
  it->second->mutex.unlock();
  co_return encode_status(ok_status());
}

// NOTE: request messages are built into named locals before the co_await.
// Building temporaries inside the co_await expression trips a GCC coroutine
// frame-lifetime bug (double destruction of aggregate temporaries).
sim::Task<Status> LockClient::acquire(std::string lock_name) {
  rpc::Message request =
      encode_request({std::move(lock_name), client_->node_name()});
  auto resp = co_await client_->call(
      service_node_, LockService::kAcquireMethod, std::move(request));
  if (!resp.ok()) co_return resp.status();
  co_return decode_status(*resp);
}

sim::Task<Status> LockClient::release(std::string lock_name) {
  rpc::Message request =
      encode_request({std::move(lock_name), client_->node_name()});
  auto resp = co_await client_->call(
      service_node_, LockService::kReleaseMethod, std::move(request));
  if (!resp.ok()) co_return resp.status();
  co_return decode_status(*resp);
}

}  // namespace wiera::coord
