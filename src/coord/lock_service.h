// Global lock service — the ZooKeeper/Curator stand-in (§4.2).
//
// One LockService runs on a designated node (the paper co-locates ZooKeeper
// with Wiera in US East); clients acquire named locks over RPC, so a lock
// acquisition from another region pays the WAN round trip — exactly the
// cost that makes MultiPrimaries puts expensive in Fig. 7.
//
// Semantics: per-name FIFO queues, at most one holder, holder identified by
// node name. Acquire blocks (server side) until granted; release by a
// non-holder is rejected. wait-free reads of holder state are available for
// tests and monitoring.
#pragma once

#include <cstdint>
#include <deque>
#include <map>
#include <memory>
#include <string>

#include "rpc/rpc.h"
#include "sim/sync.h"

namespace wiera::coord {

class LockService {
 public:
  // Hosts the service on `node_name`; registers RPC handlers on `endpoint`
  // (which must live on that node).
  LockService(sim::Simulation& sim, rpc::Endpoint& endpoint);
  ~LockService();

  const std::string& node_name() const { return endpoint_->node_name(); }

  // Current holder of a lock ("" when free).
  std::string holder(const std::string& lock_name) const;
  int64_t waiting(const std::string& lock_name) const;
  int64_t acquires_served() const { return acquires_served_; }
  int64_t leases_expired() const { return leases_expired_; }

  // ---- leases (ZooKeeper ephemeral-node semantics) ----
  // A grant is held at most `lease`; a holder that neither releases nor
  // re-acquires within the lease (e.g. it crashed mid-critical-section) is
  // forcibly evicted so waiters make progress. Call start_lease_reaper()
  // to activate; without it locks are held indefinitely (the paper's
  // prototype behaviour).
  void set_lease(Duration lease) { lease_ = lease; }
  void start_lease_reaper(Duration check_interval = sec(1));
  void stop_lease_reaper() { reaping_ = false; }

  static constexpr const char* kAcquireMethod = "lock.acquire";
  static constexpr const char* kReleaseMethod = "lock.release";

 private:
  struct LockState {
    explicit LockState(sim::Simulation& sim) : mutex(sim, "lock.state") {}
    sim::SimMutex mutex;
    std::string holder;
    int64_t waiting = 0;
    TimePoint granted_at;
  };

  sim::Task<void> lease_reaper_loop(Duration check_interval);

  sim::Task<Result<rpc::Message>> handle_acquire(rpc::Message request);
  sim::Task<Result<rpc::Message>> handle_release(rpc::Message request);

  LockState& state_for(const std::string& lock_name);

  sim::Simulation* sim_;
  rpc::Endpoint* endpoint_;
  std::map<std::string, std::unique_ptr<LockState>> locks_;
  int64_t acquires_served_ = 0;
  int64_t leases_expired_ = 0;
  Duration lease_ = sec(30);
  bool reaping_ = false;
};

// Client-side helpers: issue acquire/release RPCs from `client` to the lock
// service at `service_node`. Acquire resolves once the lock is held.
class LockClient {
 public:
  LockClient(rpc::Endpoint& client, std::string service_node)
      : client_(&client), service_node_(std::move(service_node)) {}

  sim::Task<Status> acquire(std::string lock_name);
  sim::Task<Status> release(std::string lock_name);

 private:
  rpc::Endpoint* client_;
  std::string service_node_;
};

}  // namespace wiera::coord
