#include "tiera/instance.h"

#include <algorithm>
#include <cassert>
#include <set>

#include "common/checksum.h"
#include "common/logging.h"
#include "common/strings.h"
#include "policy/parser.h"

namespace wiera::tiera {

namespace {
constexpr char kComponent[] = "tiera";
}  // namespace

std::string TieraInstance::versioned_key(const std::string& key,
                                         int64_t version) {
  return key + "#" + std::to_string(version);
}

TieraInstance::TieraInstance(sim::Simulation& sim, Config config)
    : sim_(&sim), config_(std::move(config)) {
  metrics_ = &sim.telemetry().registry();
  const obs::LabelSet inst{{"instance", config_.instance_id}};
  put_hist_ = metrics_->histogram("tiera_put_latency_us", inst);
  get_hist_ = metrics_->histogram("tiera_get_latency_us", inst);
  cold_moves_ = metrics_->counter("tiera_cold_moves_total", inst);
  checksum_failures_ =
      metrics_->counter("tiera_checksum_failures_total", inst);
  quarantined_copies_ =
      metrics_->counter("tiera_quarantined_copies_total", inst);
  build_tiers();
  const Status st = compile_rules();
  assert(st.ok() && "unclassifiable trigger in local policy");
  if (!st.ok()) {
    // NDEBUG builds must not swallow a bad policy silently: record why every
    // rule loop for this instance is missing.
    sim.telemetry().journal()
        .event("tiera", "policy_compile_failed")
        .str("instance", config_.instance_id)
        .str("error", st.to_string());
  }
}

TieraInstance::~TieraInstance() { stop(); }

void TieraInstance::build_tiers() {
  for (const policy::TierDecl& decl : config_.policy.tiers) {
    store::TierSpec spec;
    spec.name = decl.label;
    const policy::Value* name_attr = decl.attr("name");
    assert(name_attr != nullptr && "tier declaration needs a name");
    auto kind = store::tier_kind_from_name(name_attr->text);
    assert(kind.ok() && "unknown tier kind in policy");
    spec.kind = kind.value();
    if (const policy::Value* size = decl.attr("size");
        size != nullptr && size->kind == policy::Value::Kind::kSize) {
      spec.capacity_bytes = size->size_bytes;
    }
    if (config_.tier_tweak) config_.tier_tweak(decl.label, spec);
    tiers_[decl.label] = store::make_tier(*sim_, std::move(spec));
    tier_order_.push_back(decl.label);
  }
}

Status TieraInstance::compile_rules() {
  std::vector<std::shared_ptr<CompiledRule>> compiled_rules;
  for (const policy::EventRule& rule : config_.policy.events) {
    auto trigger = policy::classify_trigger(*rule.trigger, config_.params);
    if (!trigger.ok()) return trigger.status();
    auto compiled = std::make_shared<CompiledRule>();
    compiled->trigger = std::move(trigger).value();
    compiled->rule = rule;  // deep copy: owned by the compiled rule
    compiled_rules.push_back(std::move(compiled));
  }
  rules_ = std::move(compiled_rules);
  return ok_status();
}

void TieraInstance::start() {
  if (started_) return;
  started_ = true;
  stopping_ = false;
  start_rule_loops();
}

void TieraInstance::start_rule_loops() {
  for (const std::shared_ptr<CompiledRule>& rule : rules_) {
    if (rule->trigger.kind == policy::TriggerKind::kTimer) {
      sim_->spawn(timer_loop(rule, policy_generation_),
                  config_.instance_id + "/policy-timer");
    } else if (rule->trigger.kind == policy::TriggerKind::kColdData) {
      sim_->spawn(cold_scan_loop(rule, policy_generation_),
                  config_.instance_id + "/cold-scan");
    }
  }
}

Status TieraInstance::adopt_policy(
    policy::PolicyDoc new_policy,
    std::map<std::string, policy::Value> params) {
  WIERA_RETURN_IF_ERROR(policy::validate(new_policy));
  // Tier declarations in the new policy must refer to tiers that already
  // exist (declared-compatible replacement); the tier set itself changes
  // through mount_tier/unmount_tier.
  for (const policy::TierDecl& decl : new_policy.tiers) {
    if (tiers_.count(decl.label) == 0) {
      return failed_precondition("adopt_policy: policy declares tier " +
                                 decl.label + " which is not mounted");
    }
  }

  // Trial-compile against the new params before committing anything.
  Config trial = config_;
  trial.policy = new_policy;
  trial.params = params;
  std::swap(config_, trial);
  Status st = compile_rules();
  if (!st.ok()) {
    std::swap(config_, trial);  // roll back; rules_ recompile below
    Status rollback = compile_rules();
    assert(rollback.ok());
    if (!rollback.ok()) {
      // The old policy compiled once already, so this cannot fail; if it
      // somehow does, journal it instead of dropping the error in NDEBUG.
      sim_->telemetry().journal()
          .event("tiera", "policy_rollback_failed")
          .str("instance", config_.instance_id)
          .str("error", rollback.to_string());
    }
    return st;
  }

  // Old periodic loops exit at their next wake-up; new ones start now.
  policy_generation_++;
  if (started_) start_rule_loops();
  return ok_status();
}

void TieraInstance::stop() {
  stopping_ = true;
  started_ = false;
}

store::StorageTier* TieraInstance::tier_by_label(const std::string& label) {
  auto it = tiers_.find(label);
  return it == tiers_.end() ? nullptr : it->second.get();
}

Status TieraInstance::mount_tier(const std::string& label,
                                 std::unique_ptr<store::StorageTier> tier) {
  if (tier == nullptr) return invalid_argument("null tier");
  if (tiers_.count(label) > 0) {
    return already_exists("tier " + label + " on " + config_.instance_id);
  }
  tiers_[label] = std::move(tier);
  tier_order_.push_back(label);
  return ok_status();
}

Status TieraInstance::unmount_tier(const std::string& label) {
  auto it = tiers_.find(label);
  if (it == tiers_.end()) return not_found("tier " + label);
  tiers_.erase(it);
  tier_order_.erase(
      std::remove(tier_order_.begin(), tier_order_.end(), label),
      tier_order_.end());
  return ok_status();
}

// ---------------------------------------------------------------- data path

sim::Task<Result<PutResult>> TieraInstance::put(std::string key, Blob value,
                                                store::IoOptions opts) {
  // Deadline check before any metadata side effect: an already-expired
  // request must not leave an uncommitted version behind.
  if (store::io_deadline_expired(opts, sim_->now())) {
    co_return deadline_exceeded("tiera put: " + key);
  }
  const TimePoint start = sim_->now();
  const metadb::ObjectMeta* existing = meta_.find(key);
  // Allocate past the high-water mark, not past the latest surviving row:
  // a quarantine may have dropped the latest version's metadata, and
  // reusing its number would commit two distinct payloads under one id.
  const int64_t version =
      existing == nullptr
          ? 1
          : std::max(existing->latest_version(), existing->max_allocated) + 1;

  metadb::VersionMeta& vm = meta_.upsert_version(key, version);
  vm.size = static_cast<int64_t>(value.size());
  vm.create_time = sim_->now();
  vm.last_modified = sim_->now();
  vm.origin = config_.instance_id;
  vm.checksum = object_checksum(key, version, value);

  InsertCtx ctx;
  ctx.key = key;
  ctx.version = version;
  ctx.value = std::move(value);
  ctx.opts = opts;
  Status st = co_await run_insert_rules(ctx);
  if (!st.ok()) {
    // Roll back the uncommitted upsert; NotFound just means a concurrent
    // remove already dropped it.
    // wiera-lint: allow(status-discipline) rollback of an uncommitted version; only a benign NotFound is possible
    (void)meta_.remove_version(key, version);
    co_return st;
  }
  meta_.upsert_version(key, version).committed = true;

  prune_versions(key);
  co_await check_fill_thresholds();
  put_hist_->record(sim_->now() - start);
  co_return PutResult{version};
}

sim::Task<Result<GetResult>> TieraInstance::get(std::string key,
                                                store::IoOptions opts) {
  const metadb::ObjectMeta* obj = meta_.find(key);
  if (obj == nullptr || obj->versions.empty()) {
    co_return not_found("no object: " + key);
  }
  // Serve the latest *committed* version: a concurrent put's version is
  // invisible until its payload landed in a tier.
  const metadb::VersionMeta* readable = obj->latest_committed();
  if (readable == nullptr) co_return not_found("no committed version: " + key);
  co_return co_await get_version(std::move(key), readable->version, opts);
}

sim::Task<Result<GetResult>> TieraInstance::get_version(
    std::string key, int64_t version, store::IoOptions opts) {
  if (store::io_deadline_expired(opts, sim_->now())) {
    co_return deadline_exceeded("tiera get: " + key);
  }
  const TimePoint start = sim_->now();
  const metadb::VersionMeta* vm = meta_.find_version(key, version);
  if (vm == nullptr || !vm->committed) {
    co_return not_found("no version " + std::to_string(version) + " of " +
                        key);
  }
  Result<Blob> value = co_await read_version(key, version, opts);
  if (!value.ok()) co_return value.status();
  meta_.record_access(key, version, sim_->now());
  get_hist_->record(sim_->now() - start);
  co_return GetResult{std::move(value).value(), version};
}

std::vector<int64_t> TieraInstance::get_version_list(
    const std::string& key) const {
  std::vector<int64_t> out;
  const metadb::ObjectMeta* obj = meta_.find(key);
  if (obj == nullptr) return out;
  out.reserve(obj->versions.size());
  for (const auto& [version, _] : obj->versions) out.push_back(version);
  return out;
}

sim::Task<Status> TieraInstance::update(std::string key, int64_t version,
                                        Blob value, store::IoOptions opts) {
  if (store::io_deadline_expired(opts, sim_->now())) {
    co_return deadline_exceeded("tiera update: " + key);
  }
  metadb::VersionMeta& vm = meta_.upsert_version(key, version);
  vm.size = static_cast<int64_t>(value.size());
  if (vm.create_time == TimePoint::origin()) vm.create_time = sim_->now();
  vm.last_modified = sim_->now();
  vm.origin = config_.instance_id;
  vm.checksum = object_checksum(key, version, value);

  InsertCtx ctx;
  ctx.key = std::move(key);
  ctx.version = version;
  ctx.value = std::move(value);
  ctx.opts = opts;
  Status st = co_await run_insert_rules(ctx);
  if (st.ok()) {
    meta_.upsert_version(ctx.key, version).committed = true;
    prune_versions(ctx.key);
  }
  co_return st;
}

sim::Task<Status> TieraInstance::remove(std::string key) {
  const metadb::ObjectMeta* obj = meta_.find(key);
  if (obj == nullptr) co_return not_found("no object: " + key);
  std::vector<int64_t> versions;
  for (const auto& [version, _] : obj->versions) versions.push_back(version);
  for (int64_t version : versions) {
    co_await erase_version_everywhere(key, version);
  }
  // wiera-lint: allow(status-discipline) a concurrent remove may have emptied the object while we awaited; NotFound is benign
  (void)meta_.remove_object(key);
  co_return ok_status();
}

sim::Task<Status> TieraInstance::remove_version(std::string key,
                                                int64_t version) {
  if (meta_.find_version(key, version) == nullptr) {
    co_return not_found("no version");
  }
  co_await erase_version_everywhere(key, version);
  co_return meta_.remove_version(key, version);
}

void TieraInstance::wipe_volatile() {
  std::set<std::string> wiped;
  for (auto& [label, tier] : tiers_) {
    if (auto* mem = dynamic_cast<store::MemoryTier*>(tier.get())) {
      mem->wipe();
      wiped.insert(label);
    } else if (auto* blk = dynamic_cast<store::BlockTier*>(tier.get())) {
      blk->drop_cache();
    }
  }
  if (wiped.empty()) return;
  // Versions whose recorded location was a wiped tier are gone: drop their
  // metadata so a catch-up resync can re-apply them (a surviving metadata
  // row would make LWW reject the re-sent payload as a stale duplicate).
  for (const std::string& key : meta_.keys()) {
    const metadb::ObjectMeta* obj = meta_.find(key);
    if (obj == nullptr) continue;
    std::vector<int64_t> lost;
    for (const auto& [version, vm] : obj->versions) {
      if (wiped.count(vm.tier) > 0) lost.push_back(version);
    }
    for (int64_t version : lost) {
      // wiera-lint: allow(status-discipline) version was enumerated from the same map just above; cannot fail
      (void)meta_.remove_version(key, version);
    }
  }
}

void TieraInstance::recover_tiers() {
  for (auto& [label, tier] : tiers_) tier->recover();
}

bool TieraInstance::corrupt_stored_copy(const std::string& key) {
  const metadb::ObjectMeta* obj = meta_.find(key);
  if (obj == nullptr) return false;
  const metadb::VersionMeta* vm = obj->latest_committed();
  if (vm == nullptr) return false;
  const std::string vkey = versioned_key(key, vm->version);
  std::vector<std::string> order;
  if (!vm->tier.empty()) order.push_back(vm->tier);
  for (const std::string& label : tier_order_) {
    if (std::find(order.begin(), order.end(), label) == order.end()) {
      order.push_back(label);
    }
  }
  for (const std::string& label : order) {
    store::StorageTier* tier = tier_by_label(label);
    if (tier != nullptr && tier->corrupt_object(vkey)) return true;
  }
  return false;
}

sim::Task<std::vector<std::string>> TieraInstance::scrub_local() {
  std::vector<std::string> lost;
  for (const std::string& key : meta_.keys()) {
    const metadb::ObjectMeta* obj = meta_.find(key);
    if (obj == nullptr) continue;
    const metadb::VersionMeta* vm = obj->latest_committed();
    if (vm == nullptr) continue;
    const int64_t version = vm->version;
    Result<Blob> value = co_await read_version(key, version, {});
    if (value.ok()) continue;
    const StatusCode code = value.status().code();
    if (code == StatusCode::kDataLoss) {
      // read_version already quarantined the copies and dropped metadata.
      lost.push_back(key);
    } else if (code == StatusCode::kNotFound) {
      // Committed but gone from every tier (e.g. lost durable copy): drop
      // the metadata row so a peer's repair is not LWW-rejected, keeping
      // the allocation high-water mark.
      // wiera-lint: allow(status-discipline) a concurrent remove beating us to the drop is the desired end state
      (void)meta_.forget_version(key, version);
      lost.push_back(key);
    }
  }
  co_return lost;
}

bool TieraInstance::lww_wins(const LwwSample& incoming,
                             const LwwSample& local) {
  if (incoming.version != local.version) {
    return incoming.version > local.version;
  }
  if (incoming.last_modified != local.last_modified) {
    return incoming.last_modified > local.last_modified;
  }
  return incoming.origin > local.origin;
}

sim::Task<Result<bool>> TieraInstance::apply_remote_update(
    RemoteUpdate update) {
  // Last-write-wins (§4.2): accept when the incoming version is newer, or
  // when versions tie and the incoming write is more recent. Exact
  // timestamp ties (possible with concurrent writers on a discrete clock)
  // break deterministically on origin id so all replicas pick one winner.
  const metadb::ObjectMeta* obj = meta_.find(update.key);
  if (obj != nullptr && !obj->versions.empty()) {
    const metadb::VersionMeta* local = obj->latest();
    const LwwSample incoming{update.version, update.last_modified,
                             update.origin};
    const LwwSample current{obj->latest_version(), local->last_modified,
                            local->origin};
    const bool wins = config_.lww_override
                          ? config_.lww_override(incoming, current)
                          : lww_wins(incoming, current);
    if (!wins) co_return false;
  }

  metadb::VersionMeta& vm = meta_.upsert_version(update.key, update.version);
  vm.size = static_cast<int64_t>(update.value.size());
  if (vm.create_time == TimePoint::origin()) vm.create_time = sim_->now();
  vm.last_modified = update.last_modified;
  vm.origin = update.origin;
  // Recomputed locally (not trusted from the wire): replicas holding the
  // same (key, version, payload) record the same checksum, which is what
  // the scrubber's digest exchange compares.
  vm.checksum = object_checksum(update.key, update.version, update.value);

  InsertCtx ctx;
  ctx.key = update.key;
  ctx.version = update.version;
  ctx.value = std::move(update.value);
  Status st = co_await run_insert_rules(ctx);
  if (!st.ok()) co_return st;
  metadb::VersionMeta& committed = meta_.upsert_version(update.key,
                                                        update.version);
  committed.committed = true;
  // run_insert_rules may have touched timestamps; restore the replicated
  // last_modified (LWW must compare the origin's value everywhere).
  committed.last_modified = update.last_modified;
  prune_versions(update.key);
  co_return true;
}

// ---------------------------------------------------------------- rules

sim::Task<Status> TieraInstance::run_insert_rules(InsertCtx& ctx) {
  bool any_insert_rule = false;
  // Copy the rule set: adopt_policy may swap rules_ while we're suspended.
  std::vector<std::shared_ptr<CompiledRule>> rules = rules_;
  for (const std::shared_ptr<CompiledRule>& rule : rules) {
    if (rule->trigger.kind == policy::TriggerKind::kInsert) {
      any_insert_rule = true;
      Status st = co_await exec_insert_stmts(rule->rule.response, ctx);
      if (!st.ok()) co_return st;
    }
  }
  if (!any_insert_rule) {
    // Default behaviour: store into the first declared tier.
    if (tier_order_.empty()) {
      co_return failed_precondition("instance " + config_.instance_id +
                                    " has no tiers and no insert rule");
    }
    Status st = co_await write_to_tier(tier_order_[0], ctx.key, ctx.version,
                                       ctx.value, ctx.opts,
                                       /*set_location=*/true);
    if (!st.ok()) co_return st;
    ctx.stored_tiers.push_back(tier_order_[0]);
  }
  // Write-through rules: event(insert.into == tierX) fires for each tier
  // the object just landed in.
  for (const std::shared_ptr<CompiledRule>& rule : rules) {
    if (rule->trigger.kind != policy::TriggerKind::kInsertInto) continue;
    const bool landed =
        std::find(ctx.stored_tiers.begin(), ctx.stored_tiers.end(),
                  rule->trigger.tier) != ctx.stored_tiers.end();
    if (!landed) continue;
    Status st = co_await exec_insert_stmts(rule->rule.response, ctx);
    if (!st.ok()) co_return st;
  }
  co_return ok_status();
}

sim::Task<Status> TieraInstance::exec_insert_stmts(
    const std::vector<policy::Stmt>& stmts, InsertCtx& ctx) {
  for (const policy::Stmt& stmt : stmts) {
    if (stmt.is_assign()) {
      // insert.object.<attr> = <literal>
      const policy::AssignStmt& assign = stmt.assign();
      const std::string target = assign.target.dotted();
      if (target == "insert.object.dirty" && assign.value->is_literal()) {
        metadb::VersionMeta& vm = meta_.upsert_version(ctx.key, ctx.version);
        vm.dirty = assign.value->literal().value.boolean;
        continue;
      }
      co_return invalid_argument("unsupported assignment: " + target);
    }
    if (stmt.is_action()) {
      Status st = co_await exec_insert_action(stmt.action(), ctx);
      if (!st.ok()) co_return st;
      continue;
    }
    // if-statements in local insert rules are not used by the paper's local
    // policies (they appear in global policies, handled by wiera).
    co_return unimplemented("if-statement in local insert rule");
  }
  co_return ok_status();
}

sim::Task<Status> TieraInstance::exec_insert_action(
    const policy::ActionStmt& action, InsertCtx& ctx) {
  const policy::Expr* to = action.arg("to");
  if (action.name == "store" || action.name == "copy" ||
      action.name == "move") {
    if (to == nullptr || !to->is_path()) {
      co_return invalid_argument(action.name + " needs a to: tier");
    }
    const std::string target = to->path().parts[0];
    if (tiers_.count(target) == 0) {
      co_return invalid_argument("unknown tier in insert rule: " + target);
    }
    const bool set_location = action.name == "store" || action.name == "move";
    Status st = co_await write_to_tier(target, ctx.key, ctx.version,
                                       ctx.value, ctx.opts, set_location);
    if (!st.ok()) co_return st;
    ctx.stored_tiers.push_back(target);
    co_return ok_status();
  }
  co_return unimplemented("local insert action: " + action.name);
}

sim::Task<Status> TieraInstance::exec_maintenance_stmts(
    const std::vector<policy::Stmt>& stmts,
    const std::vector<std::string>& keys) {
  for (const policy::Stmt& stmt : stmts) {
    if (!stmt.is_action()) {
      co_return unimplemented("non-action statement in maintenance rule");
    }
    Status st = co_await exec_maintenance_action(stmt.action(), keys);
    if (!st.ok()) co_return st;
  }
  co_return ok_status();
}

sim::Task<Status> TieraInstance::exec_maintenance_action(
    const policy::ActionStmt& action, const std::vector<std::string>& keys) {
  const policy::Expr* what = action.arg("what");
  if (what == nullptr) co_return invalid_argument("action needs what:");
  auto selector = compile_selector(*what);
  if (!selector.ok()) co_return selector.status();

  // Pacing: `bandwidth:40KB/s` throttles the copy/move stream.
  double rate_bytes_per_sec = 0;
  if (const policy::Expr* bw = action.arg("bandwidth");
      bw != nullptr && bw->is_literal() &&
      bw->literal().value.kind == policy::Value::Kind::kRate) {
    rate_bytes_per_sec = bw->literal().value.number;
  }

  std::string target;
  if (const policy::Expr* to = action.arg("to");
      to != nullptr && to->is_path()) {
    target = to->path().parts[0];
  }

  // grow is a tier-level response: it fires once per event, not per
  // matching object.
  if (action.name == "grow") {
    store::StorageTier* tier = tier_by_label(target);
    if (tier != nullptr && tier->spec().capacity_bytes > 0) {
      Status st = tier->grow(tier->spec().capacity_bytes);  // double it
      if (!st.ok()) co_return st;
    }
    co_return ok_status();
  }

  for (const std::string& key : keys) {
    const metadb::ObjectMeta* obj = meta_.find(key);
    if (obj == nullptr || obj->versions.empty()) continue;
    if (!selector->matches(*obj)) continue;
    const int64_t version = obj->latest_version();
    const metadb::VersionMeta* vm = obj->latest();
    // Copy what later branches need: vm points into meta_, and every branch
    // below suspends, so the entry may be rewritten before we resume.
    const std::string source = vm->tier;
    const int64_t vm_size = vm->size;

    if (action.name == "delete") {
      co_await erase_version_everywhere(key, version);
      // wiera-lint: allow(status-discipline) the version may already be gone after the erase fan-out; NotFound is benign
      (void)meta_.remove_version(key, version);
      continue;
    }

    if (action.name == "copy" || action.name == "move" ||
        action.name == "retrieve") {
      if (tiers_.count(target) == 0) {
        co_return invalid_argument("unknown target tier: " + target);
      }
      Result<Blob> value = co_await read_version(key, version, {});
      if (!value.ok()) continue;  // e.g. evicted from a volatile tier
      if (rate_bytes_per_sec > 0) {
        const double seconds =
            static_cast<double>(value->size()) / rate_bytes_per_sec;
        co_await sim_->delay(sec(seconds));
      }
      const bool relocate = action.name == "move";
      Status st = co_await write_to_tier(target, key, version, *value, {},
                                         /*set_location=*/relocate);
      if (!st.ok()) co_return st;
      if (relocate) cold_moves_->inc();
      metadb::VersionMeta& mut = meta_.upsert_version(key, version);
      mut.dirty = false;  // persisted copy exists now
      if (relocate && !source.empty() && source != target) {
        store::StorageTier* src_tier = tier_by_label(source);
        if (src_tier != nullptr) {
          // Best effort: the move already committed at the target tier.
          // wiera-lint: allow(status-discipline) stale source copy; the scrub pass reclaims it if this remove loses a race
          (void)co_await src_tier->remove(versioned_key(key, version));
        }
      }
      continue;
    }

    if (action.name == "compress" || action.name == "encrypt") {
      // Modelled as metadata-only transforms with a small CPU cost.
      co_await sim_->delay(usec(50 + vm_size / 2048));
      meta_.add_tag(key, action.name == "compress" ? "compressed"
                                                   : "encrypted");
      continue;
    }

    co_return unimplemented("maintenance action: " + action.name);
  }
  co_return ok_status();
}

sim::Task<void> TieraInstance::timer_loop(std::shared_ptr<CompiledRule> rule,
                                          uint64_t generation) {
  const Duration period = rule->trigger.period;
  while (!stopping_ && generation == policy_generation_) {
    co_await sim_->delay(period);
    if (stopping_ || generation != policy_generation_) break;
    std::vector<std::string> keys = meta_.keys();
    Status st = co_await exec_maintenance_stmts(rule->rule.response, keys);
    if (!st.ok()) {
      WLOG_WARN(kComponent) << id() << " timer rule failed: "
                            << st.to_string();
    }
  }
}

sim::Task<void> TieraInstance::cold_scan_loop(
    std::shared_ptr<CompiledRule> rule, uint64_t generation) {
  const Duration interval =
      std::min(config_.cold_scan_interval, rule->trigger.cold_after);
  while (!stopping_ && generation == policy_generation_) {
    co_await sim_->delay(interval);
    if (stopping_ || generation != policy_generation_) break;
    std::vector<std::string> cold =
        meta_.cold_objects(sim_->now(), rule->trigger.cold_after);
    if (cold.empty()) continue;
    // Give the global policy a chance to intercept (centralized cold tier).
    std::vector<std::string> local_cold;
    for (const std::string& key : cold) {
      bool handled = false;
      if (hooks_ != nullptr) {
        handled = co_await hooks_->on_cold_object(key);
      }
      if (!handled) local_cold.push_back(key);
    }
    Status st =
        co_await exec_maintenance_stmts(rule->rule.response, local_cold);
    if (!st.ok()) {
      WLOG_WARN(kComponent) << id() << " cold rule failed: " << st.to_string();
    }
  }
}

sim::Task<void> TieraInstance::check_fill_thresholds() {
  std::vector<std::shared_ptr<CompiledRule>> rules = rules_;
  for (const std::shared_ptr<CompiledRule>& rule : rules) {
    if (rule->trigger.kind != policy::TriggerKind::kTierFilled) continue;
    store::StorageTier* tier = tier_by_label(rule->trigger.tier);
    if (tier == nullptr) continue;
    const double fill = tier->fill_fraction() * 100.0;
    if (fill >= rule->trigger.fill_percent) {
      if (rule->armed) {
        rule->armed = false;  // edge-triggered
        std::vector<std::string> keys = meta_.keys();
        Status st =
            co_await exec_maintenance_stmts(rule->rule.response, keys);
        if (!st.ok()) {
          WLOG_WARN(kComponent)
              << id() << " threshold rule failed: " << st.to_string();
        }
      }
    } else {
      rule->armed = true;  // re-arm once below the threshold again
    }
  }
}

// ---------------------------------------------------------------- tier io

sim::Task<Status> TieraInstance::write_to_tier(
    const std::string& tier_label, const std::string& key, int64_t version,
    const Blob& value, store::IoOptions opts, bool set_location) {
  store::StorageTier* tier = tier_by_label(tier_label);
  assert(tier != nullptr);
  std::string vkey = versioned_key(key, version);
  Status st = co_await tier->put(std::move(vkey), value, opts);
  if (!st.ok()) co_return st;
  if (set_location) {
    metadb::VersionMeta& vm = meta_.upsert_version(key, version);
    vm.tier = tier_label;
  }
  co_return ok_status();
}

sim::Task<Result<Blob>> TieraInstance::read_version(const std::string& key,
                                                    int64_t version,
                                                    store::IoOptions opts) {
  const metadb::VersionMeta* vm = meta_.find_version(key, version);
  const uint64_t expected = vm == nullptr ? 0 : vm->checksum;
  const std::string vkey = versioned_key(key, version);

  // Preferred tier first (the recorded location), then the rest in
  // declaration order — a copy response may have placed replicas in several
  // tiers, and volatile tiers may have evicted theirs.
  std::vector<std::string> order;
  if (vm != nullptr && !vm->tier.empty()) order.push_back(vm->tier);
  for (const std::string& label : tier_order_) {
    if (std::find(order.begin(), order.end(), label) == order.end()) {
      order.push_back(label);
    }
  }

  bool saw_corrupt = false;
  for (const std::string& label : order) {
    store::StorageTier* tier = tier_by_label(label);
    if (tier == nullptr || !tier->contains(vkey)) continue;
    Result<Blob> value = co_await tier->get(vkey, opts);
    if (!value.ok()) continue;
    if (config_.verify_checksums && expected != 0 &&
        object_checksum(key, version, *value) != expected) {
      // Quarantine: a corrupt copy must never be served (or scrubbed
      // outward) — drop it and fall through to the next tier; a healthy
      // tier or replica supplies the repair.
      checksum_failures_->inc();
      quarantined_copies_->inc();
      sim_->telemetry().journal()
          .event("tiera", "quarantine")
          .str("instance", config_.instance_id)
          .str("key", key)
          .num("version", version)
          .str("tier", label);
      saw_corrupt = true;
      WLOG_WARN(kComponent) << id() << " checksum mismatch on " << vkey
                            << " in tier " << label << " (quarantined)";
      // wiera-lint: allow(status-discipline) the copy is already journaled as quarantined; dropping it is best-effort
      (void)co_await tier->remove(vkey);
      continue;
    }
    co_return value;
  }
  if (saw_corrupt) {
    // Every local copy was corrupt: drop the version's metadata so a repair
    // re-applied from a healthy replica is not rejected by LWW as a stale
    // duplicate (same rationale as wipe_volatile). forget_version keeps the
    // allocation high-water mark so the burned number is never reused.
    // wiera-lint: allow(status-discipline) a concurrent remove beating us to the drop is the desired end state
    (void)meta_.forget_version(key, version);
    co_return data_loss("all local copies of " + vkey + " corrupt");
  }
  co_return not_found("no tier holds " + vkey);
}

sim::Task<void> TieraInstance::erase_version_everywhere(
    const std::string& key, int64_t version) {
  const std::string vkey = versioned_key(key, version);
  // Snapshot the tier list: mount/unmount can resize tier_order_ while a
  // remove is in flight, which would invalidate this loop's iterator.
  const std::vector<std::string> tiers = tier_order_;
  for (const std::string& label : tiers) {
    store::StorageTier* tier = tier_by_label(label);
    if (tier != nullptr && tier->contains(vkey)) {
      // wiera-lint: allow(status-discipline) erase is best-effort per tier; a copy that vanished meanwhile is already gone
      (void)co_await tier->remove(vkey);
    }
  }
}

void TieraInstance::prune_versions(const std::string& key) {
  if (config_.max_versions <= 0) return;
  const metadb::ObjectMeta* obj = meta_.find(key);
  if (obj == nullptr) return;
  while (static_cast<int64_t>(obj->versions.size()) > config_.max_versions) {
    const int64_t oldest = obj->versions.begin()->first;
    // Tier cleanup is asynchronous fire-and-forget: GC must not slow the
    // data path.
    const std::string vkey = versioned_key(key, oldest);
    for (const std::string& label : tier_order_) {
      store::StorageTier* tier = tier_by_label(label);
      if (tier != nullptr && tier->contains(vkey)) {
        sim_->spawn([](store::StorageTier* t, std::string k) -> sim::Task<void> {
          // wiera-lint: allow(status-discipline) fire-and-forget GC; the data path must not stall on tier cleanup
          (void)co_await t->remove(std::move(k));
        }(tier, vkey),
                    "tiera.version-gc");
      }
    }
    // wiera-lint: allow(status-discipline) oldest was read from the same map in the loop condition; cannot fail
    (void)meta_.remove_version(key, oldest);
  }
}

}  // namespace wiera::tiera
