// Object selectors — the `what:` argument of copy/move/delete responses.
//
// The DSL writes selectors like
//     what: insert.object                     (the object being inserted)
//     what: insert.key
//     what: object.location == tier1 && object.dirty == true
//     what: object.tag == tmp
// This module compiles such expressions into a predicate over object
// metadata that the policy engine evaluates against the MetaDb.
#pragma once

#include <optional>
#include <string>

#include "common/status.h"
#include "metadb/metadb.h"
#include "policy/ast.h"

namespace wiera::tiera {

struct ObjectSelector {
  enum class Kind {
    kInsertObject,  // the object of the current insert event
    kInsertKey,     // the key of the current insert event (lock/release)
    kQuery,         // metadata predicate over all stored objects
  };

  Kind kind = Kind::kQuery;
  // Conjunctive predicate (all set fields must match). Applied to the
  // *latest* version of each object.
  std::optional<std::string> location_equals;
  std::optional<bool> dirty_equals;
  std::optional<std::string> tag_equals;

  bool matches(const metadb::ObjectMeta& meta) const;
};

// Compile a `what:` expression. Fails on selectors the engine cannot
// evaluate (disjunctions, unknown attributes).
Result<ObjectSelector> compile_selector(const policy::Expr& expr);

}  // namespace wiera::tiera
