// TieraInstance: a policy-driven multi-tier storage instance inside one
// datacenter (§2 of the paper).
//
// An instance is constructed from a parsed Tiera policy document: the tier
// declarations become StorageTier models and the event/response rules drive
// the data path —
//   * insert events run on every put (store/copy into tiers, dirty marking),
//   * timer events run periodically (write-back of dirty objects),
//   * threshold events fire when a tier crosses a fill fraction (backup),
//   * cold-data events demote idle objects to cheaper tiers.
// Objects are immutable and versioned (§3.2.1): each put creates version
// latest+1; explicit versions arrive via update()/apply_remote_update()
// (replication), which resolves write-write conflicts last-write-wins
// (§4.2).
//
// A TieraInstance is purely local: replication, forwarding and global locks
// live in the wiera module, which drives instances through this API.
#pragma once

#include <cstdint>
#include <functional>
#include <map>
#include <memory>
#include <string>
#include <vector>

#include "common/histogram.h"
#include "metadb/metadb.h"
#include "obs/metrics.h"
#include "policy/ast.h"
#include "policy/eval.h"
#include "sim/simulation.h"
#include "sim/sync.h"
#include "store/tier.h"
#include "tiera/selector.h"

namespace wiera::tiera {

struct PutResult {
  int64_t version = 0;
};

// The three fields last-write-wins compares (§4.2); see
// TieraInstance::lww_wins.
struct LwwSample {
  int64_t version = 0;
  TimePoint last_modified;
  std::string origin;
};

struct GetResult {
  Blob value;
  int64_t version = 0;
};

// Extension point used by the wiera layer. on_cold_object lets a global
// policy intercept cold data (e.g. §5.3's shared centralized cold tier);
// returning true suppresses the local response for that object.
class InstanceHooks {
 public:
  virtual ~InstanceHooks() = default;
  virtual sim::Task<bool> on_cold_object(const std::string& /*key*/) {
    co_return false;
  }
};

class TieraInstance {
 public:
  struct Config {
    std::string instance_id;  // unique, e.g. "tiera-us-west"
    std::string region;
    policy::PolicyDoc policy;  // Tiera-style doc: tiers + local events
    std::map<std::string, policy::Value> params;  // policy parameter binding
    int64_t max_versions = 0;  // 0 = unlimited; otherwise GC oldest
    // Interval for the cold-data monitoring thread (paper: dedicated thread
    // scanning metadata).
    Duration cold_scan_interval = hoursd(1);
    // Per-tier spec customization (IOPS throttles, cache flags, ...),
    // applied after defaults, keyed by tier label.
    std::function<void(const std::string& label, store::TierSpec&)>
        tier_tweak;
    // Test-only override of the LWW comparator. The chaos suite's mutation
    // test installs a deliberately broken comparator on one replica and
    // asserts the consistency oracle notices the divergence. Null = use
    // lww_wins.
    std::function<bool(const LwwSample& incoming, const LwwSample& local)>
        lww_override;
    // Verify the object checksum on every tier read; a corrupt copy is
    // quarantined (removed) instead of served (docs/INTEGRITY.md). The
    // chaos suite's mutation test disables this on one replica and asserts
    // the oracle observes the served corruption.
    bool verify_checksums = true;
  };

  TieraInstance(sim::Simulation& sim, Config config);
  ~TieraInstance();

  TieraInstance(const TieraInstance&) = delete;
  TieraInstance& operator=(const TieraInstance&) = delete;

  const std::string& id() const { return config_.instance_id; }
  const std::string& region() const { return config_.region; }

  // Begin policy execution (timers, cold-data scans). Idempotent.
  void start();
  // Stop periodic policy tasks (instance remains readable).
  void stop();

  // Replace the instance's event/response rules at run time — the paper's
  // headline flexibility claim ("replacing data/storage policies
  // externalized at run-time"). Tier declarations must match tiers that
  // already exist (use mount_tier/unmount_tier to change the tier set);
  // stored data is untouched. Periodic rules from the old policy stop and
  // the new policy's rules take over.
  Status adopt_policy(policy::PolicyDoc new_policy,
                      std::map<std::string, policy::Value> params = {});
  const policy::PolicyDoc& current_policy() const { return config_.policy; }

  void set_hooks(InstanceHooks* hooks) { hooks_ = hooks; }

  // ---- application API (Table 2, local semantics) ----
  sim::Task<Result<PutResult>> put(std::string key, Blob value,
                                   store::IoOptions opts = {});
  sim::Task<Result<GetResult>> get(std::string key,
                                   store::IoOptions opts = {});
  sim::Task<Result<GetResult>> get_version(std::string key, int64_t version,
                                           store::IoOptions opts = {});
  std::vector<int64_t> get_version_list(const std::string& key) const;
  // Write an explicit version (update API / replication path).
  sim::Task<Status> update(std::string key, int64_t version, Blob value,
                           store::IoOptions opts = {});
  sim::Task<Status> remove(std::string key);
  sim::Task<Status> remove_version(std::string key, int64_t version);

  void add_tag(const std::string& key, const std::string& tag) {
    meta_.add_tag(key, tag);
  }

  // ---- replication support (§4.2) ----
  struct RemoteUpdate {
    std::string key;
    int64_t version = 0;
    Blob value;
    TimePoint last_modified;
    std::string origin;
  };
  // Apply an update received from another instance. Returns true if
  // accepted, false if rejected by last-write-wins.
  sim::Task<Result<bool>> apply_remote_update(RemoteUpdate update);

  // Last-write-wins (§4.2): true when `incoming` beats `local`. Higher
  // version wins; version ties go to the later last_modified; exact
  // timestamp ties break deterministically on origin id so every replica
  // picks the same winner.
  static bool lww_wins(const LwwSample& incoming, const LwwSample& local);

  // Crash semantics: volatile (memory) tier contents are lost and block-tier
  // page caches are dropped; metadata and durable-tier payloads survive (the
  // paper persists metadata in BerkeleyDB). Versions whose only copy lived
  // in memory become unreadable until catch-up resync restores them.
  void wipe_volatile();

  // Post-restart crash-consistency pass: every durable tier discards its
  // journalled torn writes (docs/INTEGRITY.md).
  void recover_tiers();

  // Bit-rot injection (chaos harness): flip one byte of a stored copy of
  // the latest committed version of `key`. Metadata is untouched; only
  // checksum verification can tell. Returns false when no copy was hit.
  bool corrupt_stored_copy(const std::string& key);

  // Local scrub: verify every committed version against its recorded
  // checksum, quarantining corrupt copies. Returns the keys that lost their
  // last good local copy (candidates for repair from a peer).
  sim::Task<std::vector<std::string>> scrub_local();

  // ---- dynamic tier management ----
  // Tiera supports adding/removing tiers at run time (the modular-instance
  // mechanism of §3.2.2 mounts another instance as a tier this way).
  Status mount_tier(const std::string& label,
                    std::unique_ptr<store::StorageTier> tier);
  // Unmounting does not migrate data: objects whose only copy lived in the
  // tier become unreadable (callers move data first if they care).
  Status unmount_tier(const std::string& label);

  // ---- introspection ----
  store::StorageTier* tier_by_label(const std::string& label);
  const std::vector<std::string>& tier_labels() const { return tier_order_; }
  size_t tier_count() const { return tiers_.size(); }
  const metadb::MetaDb& meta() const { return meta_; }
  metadb::MetaDb& meta_mutable() { return meta_; }
  sim::Simulation& sim() { return *sim_; }

  // Thin views over the sim-wide metrics registry
  // (tiera_*{instance=...}; docs/OBSERVABILITY.md).
  const LatencyHistogram& put_latency() const { return put_hist_->latency(); }
  const LatencyHistogram& get_latency() const { return get_hist_->latency(); }
  // Number of objects relocated by `move` responses (cold demotions).
  int64_t cold_moves() const { return cold_moves_->value(); }
  // Integrity counters (docs/INTEGRITY.md).
  int64_t checksum_failures() const { return checksum_failures_->value(); }
  int64_t quarantined_copies() const { return quarantined_copies_->value(); }

  // ---- metadata durability (BerkeleyDB role, §4.2) ----
  // Snapshot/restore the metadata store. The paper persists all object
  // metadata in BerkeleyDB so an instance can restart without losing
  // version history; payloads live in whatever durable tiers the policy
  // placed them in.
  Bytes snapshot_metadata() const { return meta_.serialize(); }
  Status restore_metadata(const Bytes& snapshot) {
    return meta_.deserialize(snapshot);
  }

  // Composite key used inside tiers ("key" + version).
  static std::string versioned_key(const std::string& key, int64_t version);

 private:
  struct CompiledRule {
    policy::Trigger trigger;
    policy::EventRule rule;  // owned copy: survives policy replacement
    bool armed = true;       // edge trigger state for kTierFilled
  };

  // Insert-time rule execution context.
  struct InsertCtx {
    std::string key;
    int64_t version = 0;
    Blob value;
    store::IoOptions opts;
    std::vector<std::string> stored_tiers;
  };

  void build_tiers();
  Status compile_rules();
  void start_rule_loops();

  sim::Task<Status> run_insert_rules(InsertCtx& ctx);
  sim::Task<Status> exec_insert_stmts(const std::vector<policy::Stmt>& stmts,
                                      InsertCtx& ctx);
  sim::Task<Status> exec_insert_action(const policy::ActionStmt& action,
                                       InsertCtx& ctx);

  // Maintenance responses (timer / threshold / cold events).
  sim::Task<Status> exec_maintenance_stmts(
      const std::vector<policy::Stmt>& stmts,
      const std::vector<std::string>& keys);
  sim::Task<Status> exec_maintenance_action(const policy::ActionStmt& action,
                                            const std::vector<std::string>& keys);

  sim::Task<void> timer_loop(std::shared_ptr<CompiledRule> rule,
                             uint64_t generation);
  sim::Task<void> cold_scan_loop(std::shared_ptr<CompiledRule> rule,
                                 uint64_t generation);
  sim::Task<void> check_fill_thresholds();

  sim::Task<Status> write_to_tier(const std::string& tier_label,
                                  const std::string& key, int64_t version,
                                  const Blob& value, store::IoOptions opts,
                                  bool set_location);
  sim::Task<Result<Blob>> read_version(const std::string& key,
                                       int64_t version,
                                       store::IoOptions opts);
  sim::Task<void> erase_version_everywhere(const std::string& key,
                                           int64_t version);
  void prune_versions(const std::string& key);

  sim::Simulation* sim_;
  Config config_;
  metadb::MetaDb meta_;
  std::map<std::string, std::unique_ptr<store::StorageTier>> tiers_;
  std::vector<std::string> tier_order_;
  std::vector<std::shared_ptr<CompiledRule>> rules_;
  InstanceHooks* hooks_ = nullptr;
  bool started_ = false;
  bool stopping_ = false;
  // Bumped by adopt_policy; periodic loops from older generations exit.
  uint64_t policy_generation_ = 0;

  // Registry-backed instruments (created in the constructor).
  obs::Registry* metrics_ = nullptr;
  obs::Histogram* put_hist_ = nullptr;
  obs::Histogram* get_hist_ = nullptr;
  obs::Counter* cold_moves_ = nullptr;
  obs::Counter* checksum_failures_ = nullptr;
  obs::Counter* quarantined_copies_ = nullptr;
};

}  // namespace wiera::tiera
