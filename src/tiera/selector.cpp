#include "tiera/selector.h"

namespace wiera::tiera {

bool ObjectSelector::matches(const metadb::ObjectMeta& meta) const {
  const metadb::VersionMeta* latest = meta.latest();
  if (latest == nullptr) return false;
  if (location_equals && latest->tier != *location_equals) return false;
  if (dirty_equals && latest->dirty != *dirty_equals) return false;
  if (tag_equals && meta.tags.count(*tag_equals) == 0) return false;
  return true;
}

namespace {

Status apply_clause(ObjectSelector& sel, const policy::Expr& expr) {
  using policy::BinaryOp;
  if (!expr.is_binary()) {
    return invalid_argument("unsupported selector clause: " +
                            expr.to_string());
  }
  const auto& bin = expr.binary();

  if (bin.op == BinaryOp::kAnd) {
    WIERA_RETURN_IF_ERROR(apply_clause(sel, *bin.lhs));
    WIERA_RETURN_IF_ERROR(apply_clause(sel, *bin.rhs));
    return ok_status();
  }
  if (bin.op != BinaryOp::kEq) {
    return invalid_argument("selectors support only '==' and '&&': " +
                            expr.to_string());
  }
  if (!bin.lhs->is_path() || bin.lhs->path().parts.size() != 2 ||
      bin.lhs->path().parts[0] != "object") {
    return invalid_argument("selector clauses must test object.<attr>: " +
                            expr.to_string());
  }
  const std::string& attr = bin.lhs->path().parts[1];

  if (attr == "location") {
    if (!bin.rhs->is_path() || bin.rhs->path().parts.size() != 1) {
      return invalid_argument("object.location must equal a tier label");
    }
    sel.location_equals = bin.rhs->path().parts[0];
    return ok_status();
  }
  if (attr == "dirty") {
    if (bin.rhs->is_literal() &&
        bin.rhs->literal().value.kind == policy::Value::Kind::kBool) {
      sel.dirty_equals = bin.rhs->literal().value.boolean;
      return ok_status();
    }
    return invalid_argument("object.dirty must equal a boolean");
  }
  if (attr == "tag") {
    if (bin.rhs->is_path() && bin.rhs->path().parts.size() == 1) {
      sel.tag_equals = bin.rhs->path().parts[0];
      return ok_status();
    }
    if (bin.rhs->is_literal() &&
        bin.rhs->literal().value.kind == policy::Value::Kind::kString) {
      sel.tag_equals = bin.rhs->literal().value.text;
      return ok_status();
    }
    return invalid_argument("object.tag must equal a word or string");
  }
  return invalid_argument("unknown object attribute in selector: " + attr);
}

}  // namespace

Result<ObjectSelector> compile_selector(const policy::Expr& expr) {
  ObjectSelector sel;

  if (expr.is_path()) {
    const std::string dotted = expr.path().dotted();
    if (dotted == "insert.object") {
      sel.kind = ObjectSelector::Kind::kInsertObject;
      return sel;
    }
    if (dotted == "insert.key") {
      sel.kind = ObjectSelector::Kind::kInsertKey;
      return sel;
    }
    return invalid_argument("unsupported selector path: " + dotted);
  }

  sel.kind = ObjectSelector::Kind::kQuery;
  WIERA_RETURN_IF_ERROR(apply_clause(sel, expr));
  return sel;
}

}  // namespace wiera::tiera
