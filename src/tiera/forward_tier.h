// ForwardTier — modular instances (§3.2.2): a Tiera instance used as a
// storage tier of another instance.
//
// Lets an application compose containers, e.g. an INTERMEDIATE-DATA
// instance with a local Memcached tier plus RAW-BIG-DATA-INSTANCES mounted
// read-only for raw inputs. Reads/writes delegate to the backing instance's
// public API (so its own policies apply); the backing instance's latest
// version is what a get() observes.
#pragma once

#include "store/tier.h"
#include "tiera/instance.h"

namespace wiera::tiera {

class ForwardTier final : public store::StorageTier {
 public:
  ForwardTier(sim::Simulation& sim, std::string label, TieraInstance& backing,
              bool read_only)
      : store::StorageTier(sim,
                           [&] {
                             store::TierSpec spec;
                             spec.name = std::move(label);
                             spec.kind = store::TierKind::kForward;
                             spec.jitter_fraction = 0;
                             return spec;
                           }()),
        backing_(&backing),
        read_only_(read_only) {}

  bool read_only() const { return read_only_; }
  TieraInstance& backing() { return *backing_; }

  sim::Task<Status> put(std::string key, Blob value,
                        store::IoOptions opts) override {
    if (read_only_) {
      co_return failed_precondition("tier " + spec().name + " is read-only");
    }
    auto result = co_await backing_->put(std::move(key), std::move(value),
                                         opts);
    if (!result.ok()) co_return result.status();
    stats_.puts++;
    co_return ok_status();
  }

  sim::Task<Result<Blob>> get(std::string key,
                              store::IoOptions opts) override {
    auto result = co_await backing_->get(std::move(key), opts);
    stats_.gets++;
    if (!result.ok()) {
      stats_.get_misses++;
      co_return result.status();
    }
    co_return std::move(result).value().value;
  }

  sim::Task<Status> remove(std::string key) override {
    if (read_only_) {
      co_return failed_precondition("tier " + spec().name + " is read-only");
    }
    stats_.removes++;
    co_return co_await backing_->remove(std::move(key));
  }

  bool contains(const std::string& key) const override {
    return backing_->meta().find(key) != nullptr;
  }
  int64_t used_bytes() const override { return 0; }  // owned by backing
  int64_t object_count() const override {
    return static_cast<int64_t>(backing_->meta().object_count());
  }

 private:
  TieraInstance* backing_;
  bool read_only_;
};

}  // namespace wiera::tiera
