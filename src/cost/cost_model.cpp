#include "cost/cost_model.h"

#include "common/units.h"

namespace wiera::cost {

TierPricing pricing_for(store::TierKind kind) {
  switch (kind) {
    case store::TierKind::kMemory:
      // ElastiCache is billed per node-hour, not per GB-month; the paper's
      // Table 4 covers the durable tiers. We approximate memory at the
      // cache.m3.medium effective rate (~$0.09/hr for ~2.8GB usable)
      // normalized to GB-month.
      return {23.0, 0.0, 0.0};
    case store::TierKind::kBlockSsd:
      return {0.10, 0.0, 0.0};
    case store::TierKind::kBlockHdd:
      return {0.05, 0.0005, 0.0005};
    case store::TierKind::kObjectS3:
      return {0.03, 0.05, 0.004};
    case store::TierKind::kObjectS3IA:
      return {0.0125, 0.10, 0.01};
    case store::TierKind::kGlacier:
      return {0.007, 0.05, 0.0};
    case store::TierKind::kForward:
      return {0.0, 0.0, 0.0};  // billed by the backing instance
  }
  return {};
}

double CostModel::storage_cost_per_month(store::TierKind kind,
                                         int64_t bytes) {
  return pricing_for(kind).storage_gb_month * bytes_to_gb(bytes);
}

double CostModel::request_cost(store::TierKind kind, int64_t puts,
                               int64_t gets) {
  const TierPricing p = pricing_for(kind);
  return p.put_per_10k * (static_cast<double>(puts) / 10000.0) +
         p.get_per_10k * (static_cast<double>(gets) / 10000.0);
}

double CostModel::egress_cost_internet(int64_t bytes) {
  return kEgressInternetPerGb * bytes_to_gb(bytes);
}

double CostModel::egress_cost_cross_dc(int64_t bytes) {
  return kCrossDcPerGb * bytes_to_gb(bytes);
}

double CostModel::bill_tier(const store::StorageTier& tier, double months) {
  const store::TierKind kind = tier.spec().kind;
  return storage_cost_per_month(kind, tier.used_bytes()) * months +
         request_cost(kind, tier.stats().puts, tier.stats().gets);
}

double CostModel::bill_traffic(const net::TrafficStats& traffic) {
  return egress_cost_cross_dc(traffic.cross_dc_bytes());
}

ColdDataSavings cold_data_savings(int64_t total_bytes, double cold_fraction,
                                  int regions) {
  const auto cold_bytes =
      static_cast<int64_t>(static_cast<double>(total_bytes) * cold_fraction);
  const int64_t hot_bytes = total_bytes - cold_bytes;

  ColdDataSavings out{};
  out.monthly_cost_hot_ssd = CostModel::storage_cost_per_month(
      store::TierKind::kBlockSsd, total_bytes);
  out.monthly_cost_hot_hdd = CostModel::storage_cost_per_month(
      store::TierKind::kBlockHdd, total_bytes);

  const double cold_on_ia = CostModel::storage_cost_per_month(
      store::TierKind::kObjectS3IA, cold_bytes);
  out.monthly_cost_tiered_ssd =
      CostModel::storage_cost_per_month(store::TierKind::kBlockSsd,
                                        hot_bytes) +
      cold_on_ia;
  out.monthly_cost_tiered_hdd =
      CostModel::storage_cost_per_month(store::TierKind::kBlockHdd,
                                        hot_bytes) +
      cold_on_ia;

  out.saving_per_instance_ssd =
      out.monthly_cost_hot_ssd - out.monthly_cost_tiered_ssd;
  out.saving_per_instance_hdd =
      out.monthly_cost_hot_hdd - out.monthly_cost_tiered_hdd;

  // Centralized sharing (§5.3): instead of `regions` S3-IA replicas of the
  // cold data, keep exactly one; every non-central region stops paying the
  // S3-IA storage bill for its replica.
  out.saving_centralized_extra =
      cold_on_ia * static_cast<double>(regions - 1);
  return out;
}

}  // namespace wiera::cost
