// Cloud storage cost model — Table 4 of the paper (AWS US East prices,
// 2016) plus the §5.3 cold-data savings arithmetic.
//
// Prices are per decimal GB (cloud billing convention). Network pricing:
// free within a DC, $0.02/GB between AWS DCs, $0.09/GB to the Internet.
#pragma once

#include <cstdint>
#include <string>

#include "net/network.h"
#include "store/tier.h"

namespace wiera::cost {

struct TierPricing {
  double storage_gb_month = 0;  // $ per GB-month provisioned/stored
  double put_per_10k = 0;       // $ per 10,000 put requests
  double get_per_10k = 0;       // $ per 10,000 get requests
};

// Table 4 (+ Glacier from AWS's 2016 price sheet; the paper references it
// as the archival option).
TierPricing pricing_for(store::TierKind kind);

inline constexpr double kEgressInternetPerGb = 0.09;  // Table 4
inline constexpr double kCrossDcPerGb = 0.02;         // §5.3 "between AWS"

class CostModel {
 public:
  // Monthly cost of storing `bytes` in a tier.
  static double storage_cost_per_month(store::TierKind kind, int64_t bytes);
  // Request charges for an operation mix.
  static double request_cost(store::TierKind kind, int64_t puts,
                             int64_t gets);
  static double egress_cost_internet(int64_t bytes);
  static double egress_cost_cross_dc(int64_t bytes);

  // Bill a live tier: storage (pro-rated to `months`) + its recorded
  // request counters.
  static double bill_tier(const store::StorageTier& tier, double months);

  // Bill the cross-DC traffic a simulation generated.
  static double bill_traffic(const net::TrafficStats& traffic);
};

// The §5.3 worked example: an application holds `total_bytes` per instance,
// `cold_fraction` of which has not been accessed within the policy
// threshold; each of `regions` instances can demote its cold data to
// S3-IA, and optionally share a single centralized S3-IA replica.
struct ColdDataSavings {
  double monthly_cost_hot_ssd;        // everything stays on EBS SSD
  double monthly_cost_hot_hdd;        // everything stays on EBS HDD
  double monthly_cost_tiered_ssd;     // hot on SSD + cold on S3-IA
  double monthly_cost_tiered_hdd;     // hot on HDD + cold on S3-IA
  double saving_per_instance_ssd;     // paper: ~$700/month for 10TB/80%
  double saving_per_instance_hdd;     // paper: ~$300/month
  double saving_centralized_extra;    // paper: ~$300 more across regions
};

ColdDataSavings cold_data_savings(int64_t total_bytes, double cold_fraction,
                                  int regions);

}  // namespace wiera::cost
