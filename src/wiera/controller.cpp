#include "wiera/controller.h"

#include <algorithm>

#include "common/logging.h"
#include "common/strings.h"
#include "policy/builtin_policies.h"
#include "policy/parser.h"

namespace wiera::geo {

namespace {
constexpr char kComponent[] = "wiera";
constexpr char kChangePolicyMethod[] = "wui.change_policy";
constexpr char kChangePrimaryMethod[] = "wui.change_primary";

// Default local-policy resolver: built-ins plus an empty ForwardingInstance
// (Fig. 6b declares regions whose instances only forward).
Result<policy::PolicyDoc> default_resolve(const std::string& name) {
  if (name == "ForwardingInstance") {
    policy::PolicyDoc doc;
    doc.name = "ForwardingInstance";
    return doc;
  }
  // The region declarations say "PersistentInstance"; accept a common
  // misspelling from the paper's Fig. 6a as well.
  if (name == "PersistanceInstance") {
    return policy::builtin::by_name("PersistentInstance");
  }
  return policy::builtin::by_name(name);
}

std::string default_node_for_region(const std::string& region) {
  return "tiera-" + to_lower(region);
}

}  // namespace

// ---------------------------------------------------------------- TieraServer

WieraPeer* TieraServer::spawn_peer(WieraPeer::Config config) {
  const std::string id = config.instance_id;
  auto peer = std::make_unique<WieraPeer>(*sim_, *network_, *registry_,
                                          std::move(config));
  WieraPeer* raw = peer.get();
  peers_[id] = std::move(peer);
  return raw;
}

Status TieraServer::stop_peer(const std::string& instance_id) {
  auto it = peers_.find(instance_id);
  if (it == peers_.end()) return not_found("no peer " + instance_id);
  it->second->stop();
  peers_.erase(it);
  return ok_status();
}

Status TieraServer::retire_peer(const std::string& instance_id) {
  auto it = peers_.find(instance_id);
  if (it == peers_.end()) return not_found("no peer " + instance_id);
  it->second->stop();
  // Keep the object alive: a replicate/ping coroutine already running on it
  // would otherwise use freed frame state, and its endpoint keeps answering
  // straggler clients with a fast "draining" instead of a silent timeout.
  retired_.push_back(std::move(it->second));
  peers_.erase(it);
  return ok_status();
}

WieraPeer* TieraServer::peer(const std::string& instance_id) {
  auto it = peers_.find(instance_id);
  return it == peers_.end() ? nullptr : it->second.get();
}

std::vector<std::string> TieraServer::peer_ids() const {
  std::vector<std::string> out;
  out.reserve(peers_.size());
  for (const auto& [id, _] : peers_) out.push_back(id);
  return out;
}

// ---------------------------------------------------------------- controller

WieraController::WieraController(sim::Simulation& sim, net::Network& network,
                                 rpc::Registry& registry, Config config)
    : sim_(&sim), network_(&network), registry_(&registry),
      config_(std::move(config)),
      health_(sim.telemetry().registry(), config_.health) {
  endpoint_ = std::make_unique<rpc::Endpoint>(network, registry, config_.node);
  // ZooKeeper runs co-located with Wiera (paper §5 setup).
  lock_service_ = std::make_unique<coord::LockService>(sim, *endpoint_);
  register_handlers();
}

void WieraController::register_server(TieraServer* server) {
  servers_.push_back(server);
  node_alive_[server->node()] = true;
}

bool WieraController::server_alive(const std::string& node) const {
  auto it = node_alive_.find(node);
  return it != node_alive_.end() && it->second;
}

Result<std::vector<std::string>> WieraController::start_instances(
    const std::string& wiera_id, StartOptions options) {
  if (instances_.count(wiera_id) > 0) {
    return already_exists("wiera instance " + wiera_id);
  }
  WIERA_RETURN_IF_ERROR(policy::validate(options.global));
  auto mode = derive_consistency_mode(options.global);
  if (!mode.ok()) return mode.status();

  auto resolve = options.resolve_local ? options.resolve_local
                                       : default_resolve;
  auto node_for = options.node_for_region ? options.node_for_region
                                          : default_node_for_region;

  InstanceRecord record;
  record.policy_id = options.global.name;
  record.mode = *mode;

  for (const policy::RegionDecl& region : options.global.regions) {
    auto local_doc = resolve(region.instance_name());
    if (!local_doc.ok()) return local_doc.status();

    // Region tier blocks override the local policy's tier declarations
    // (MultiPrimaries declares LocalMemory/LocalDisk inside each region).
    policy::PolicyDoc local = std::move(local_doc).value();
    if (!region.tiers.empty()) {
      local.tiers = region.tiers;
    }

    // Locally-executable maintenance events declared at the Wiera level
    // (Fig. 6a's cold-data rule, timers, fill thresholds) distribute to
    // every instance; protocol events (insert) and monitoring hooks stay
    // global.
    for (const policy::EventRule& rule : options.global.events) {
      auto trigger =
          policy::classify_trigger(*rule.trigger, options.local_params);
      if (!trigger.ok()) continue;
      if (trigger->kind == policy::TriggerKind::kColdData ||
          trigger->kind == policy::TriggerKind::kTimer ||
          trigger->kind == policy::TriggerKind::kTierFilled) {
        local.events.push_back(rule);
      }
    }

    const std::string node = node_for(region.region());
    TieraServer* server = nullptr;
    for (TieraServer* candidate : servers_) {
      if (candidate->node() == node) {
        server = candidate;
        break;
      }
    }
    if (server == nullptr) {
      return not_found("no Tiera server registered on node " + node +
                       " for region " + region.region());
    }

    WieraPeer::Config peer_config;
    peer_config.instance_id = node;
    peer_config.region = region.region();
    peer_config.local.policy = std::move(local);
    peer_config.local.params = options.local_params;
    peer_config.mode = *mode;
    peer_config.is_primary = region.primary();
    peer_config.lock_service_node = config_.node;
    peer_config.queue_flush_interval = options.queue_flush_interval;
    if (config_.serve_lease > Duration::zero()) {
      peer_config.serve_lease = config_.serve_lease;
      peer_config.lease_authority = config_.node;
    }
    peer_config.forwarding_only =
        region.instance_name() == "ForwardingInstance";
    peer_config.dynamic_consistency_policy = options.dynamic_consistency;
    peer_config.change_primary_policy = options.change_primary;
    peer_config.network_monitor = &network_monitor_;
    peer_config.workload_monitor = &workload_monitor_;
    peer_config.health = &health_;
    if (options.customize) options.customize(peer_config);

    const bool can_store =
        !peer_config.forwarding_only && !peer_config.local.policy.tiers.empty();
    record.templates.push_back(peer_config);  // kept for §4.4 replacement
    WieraPeer* peer = server->spawn_peer(std::move(peer_config));
    record.peer_ids.push_back(peer->id());
    if (can_store) record.storage_peer_ids.push_back(peer->id());
    if (peer->is_primary()) record.primary = peer->id();
  }

  // Default the primary to the first region when the policy names none.
  if (record.primary.empty() && !record.peer_ids.empty()) {
    record.primary = record.peer_ids.front();
  }

  // Propagate membership + primary, wire the control plane, start peers.
  for (const std::string& id : record.peer_ids) {
    lease_seen_[id] = sim_->now();
    WieraPeer* p = peer_by_id_internal(id);
    p->set_peers(record.peer_ids);
    p->set_storage_peers(record.storage_peer_ids);
    p->apply_primary_change(record.primary);
    // apply_primary_change resets is_primary from the id comparison.
    wire_control_plane(wiera_id, p);
    p->start();
  }

  instances_[wiera_id] = record;
  WLOG_INFO(kComponent) << "started " << wiera_id << " ("
                        << record.policy_id << ", "
                        << consistency_mode_name(record.mode) << ", "
                        << record.peer_ids.size() << " peers)";
  return record.peer_ids;
}

WieraPeer* WieraController::peer(const std::string& instance_id) {
  return peer_by_id_internal(instance_id);
}

WieraPeer* WieraController::peer_by_id_internal(
    const std::string& instance_id) {
  for (TieraServer* server : servers_) {
    WieraPeer* p = server->peer(instance_id);
    if (p != nullptr) return p;
  }
  return nullptr;
}

Status WieraController::stop_instances(const std::string& wiera_id) {
  auto it = instances_.find(wiera_id);
  if (it == instances_.end()) return not_found("wiera instance " + wiera_id);
  for (const std::string& id : it->second.peer_ids) {
    for (TieraServer* server : servers_) {
      if (server->peer(id) != nullptr) {
        const Status st = server->stop_peer(id);
        if (!st.ok()) {
          WLOG_WARN(kComponent) << "stop_peer " << id
                                << " failed: " << st.to_string();
        }
        break;
      }
    }
  }
  instances_.erase(it);
  return ok_status();
}

Result<std::vector<std::string>> WieraController::get_instances(
    const std::string& wiera_id) const {
  auto it = instances_.find(wiera_id);
  if (it == instances_.end()) return not_found("wiera instance " + wiera_id);
  return it->second.peer_ids;
}

sim::Task<Status> WieraController::change_consistency(std::string wiera_id,
                                                      ConsistencyMode mode) {
  auto it = instances_.find(wiera_id);
  if (it == instances_.end()) {
    co_return not_found("wiera instance " + wiera_id);
  }
  InstanceRecord& record = it->second;
  if (record.mode == mode) co_return ok_status();
  if (record.change_in_progress) {
    co_return failed_precondition("consistency change already in progress");
  }
  record.change_in_progress = true;

  // Tell every peer to block-drain-switch; pays a WAN RTT per peer,
  // performed concurrently.
  std::vector<sim::Task<Status>> tasks;
  for (const std::string& id : record.peer_ids) {
    SetConsistencyRequest req{mode};
    rpc::Message msg = encode(req);
    tasks.push_back([](rpc::Endpoint* ep, std::string target,
                       rpc::Message m) -> sim::Task<Status> {
      auto resp = co_await ep->call(std::move(target),
                                    method::kSetConsistency, std::move(m));
      if (!resp.ok()) co_return resp.status();
      co_return decode_status(*resp);
    }(endpoint_.get(), id, std::move(msg)));
  }
  std::vector<Status> results = co_await sim::when_all(*sim_, std::move(tasks));
  // Re-find after resuming: stop_instances may have erased this record while
  // the fan-out was in flight, which would leave `record` dangling.
  it = instances_.find(wiera_id);
  if (it == instances_.end()) {
    co_return not_found("wiera instance " + wiera_id +
                        " stopped during consistency change");
  }
  it->second.change_in_progress = false;
  for (const Status& st : results) {
    if (!st.ok()) co_return st;
  }
  it->second.mode = mode;
  consistency_changes_++;
  WLOG_INFO(kComponent) << wiera_id << " now "
                        << consistency_mode_name(mode);
  co_return ok_status();
}

sim::Task<Status> WieraController::change_primary(std::string wiera_id,
                                                  std::string new_primary) {
  auto it = instances_.find(wiera_id);
  if (it == instances_.end()) {
    co_return not_found("wiera instance " + wiera_id);
  }
  InstanceRecord& record = it->second;
  if (record.primary == new_primary) co_return ok_status();
  if (std::find(record.peer_ids.begin(), record.peer_ids.end(),
                new_primary) == record.peer_ids.end()) {
    co_return invalid_argument(new_primary + " is not a member of " +
                               wiera_id);
  }
  if (record.change_in_progress) {
    co_return failed_precondition("change already in progress");
  }
  record.change_in_progress = true;

  std::vector<sim::Task<Status>> tasks;
  for (const std::string& id : record.peer_ids) {
    SetPrimaryRequest req{new_primary};
    rpc::Message msg = encode(req);
    tasks.push_back([](rpc::Endpoint* ep, std::string target,
                       rpc::Message m) -> sim::Task<Status> {
      auto resp = co_await ep->call(std::move(target), method::kSetPrimary,
                                    std::move(m));
      if (!resp.ok()) co_return resp.status();
      co_return decode_status(*resp);
    }(endpoint_.get(), id, std::move(msg)));
  }
  std::vector<Status> results = co_await sim::when_all(*sim_, std::move(tasks));
  // Same re-find discipline as change_consistency: the record may have been
  // erased by stop_instances while the fan-out was suspended.
  it = instances_.find(wiera_id);
  if (it == instances_.end()) {
    co_return not_found("wiera instance " + wiera_id +
                        " stopped during primary change");
  }
  it->second.change_in_progress = false;
  for (const Status& st : results) {
    if (!st.ok()) co_return st;
  }
  it->second.primary = new_primary;
  primary_changes_++;
  WLOG_INFO(kComponent) << wiera_id << " primary -> " << new_primary;
  co_return ok_status();
}

ConsistencyMode WieraController::current_mode(
    const std::string& wiera_id) const {
  auto it = instances_.find(wiera_id);
  return it == instances_.end() ? ConsistencyMode::kEventual
                                : it->second.mode;
}

std::string WieraController::current_primary(
    const std::string& wiera_id) const {
  auto it = instances_.find(wiera_id);
  return it == instances_.end() ? "" : it->second.primary;
}

std::string WieraController::recommend_primary(
    const std::string& wiera_id) const {
  auto it = instances_.find(wiera_id);
  if (it == instances_.end()) return "";
  const std::string busiest = advisor_.recommend_primary(workload_monitor_);
  for (const std::string& id : it->second.peer_ids) {
    if (id == busiest) return busiest;
  }
  return "";
}

std::vector<std::string> WieraController::down_instances(
    const std::string& wiera_id) const {
  std::vector<std::string> out;
  auto it = instances_.find(wiera_id);
  if (it == instances_.end()) return out;
  for (const std::string& id : it->second.peer_ids) {
    if (network_->topology().node_down(id, sim_->now())) out.push_back(id);
  }
  return out;
}

void WieraController::wire_control_plane(const std::string& wiera_id,
                                         WieraPeer* peer) {
  WieraPeer::ControlPlane control;
  // Monitor callbacks issue an RPC from the peer to the controller's WUI
  // (so the request itself pays a WAN hop), then the controller
  // orchestrates the change. Fire-and-forget from the peer's view.
  control.request_policy_change = [this, wiera_id, peer](
                                      const std::string& to_policy) {
    sim_->spawn([](WieraController* self, std::string wid, WieraPeer* p,
                   std::string target) -> sim::Task<void> {
      rpc::WireWriter w;
      w.put_string(wid);
      w.put_string(target);
      rpc::Message msg{w.take()};
      auto resp = co_await p->endpoint().call(
          self->config_.node, kChangePolicyMethod, std::move(msg));
      if (!resp.ok()) {
        WLOG_WARN(kComponent) << "change_policy request failed: "
                              << resp.status().to_string();
      }
    }(this, wiera_id, peer, to_policy),
                "controller.change-policy-rpc");
  };
  control.request_primary_change = [this, wiera_id, peer](
                                       const std::string& new_primary) {
    sim_->spawn([](WieraController* self, std::string wid, WieraPeer* p,
                   std::string target) -> sim::Task<void> {
      rpc::WireWriter w;
      w.put_string(wid);
      w.put_string(target);
      rpc::Message msg{w.take()};
      auto resp = co_await p->endpoint().call(
          self->config_.node, kChangePrimaryMethod, std::move(msg));
      if (!resp.ok()) {
        WLOG_WARN(kComponent) << "change_primary request failed: "
                              << resp.status().to_string();
      }
    }(this, wiera_id, peer, new_primary),
                "controller.change-primary-rpc");
  };
  peer->set_control_plane(std::move(control));
}

void WieraController::register_handlers() {
  endpoint_->register_handler(
      kChangePolicyMethod,
      [this](rpc::Message msg) -> sim::Task<Result<rpc::Message>> {
        rpc::WireReader r(msg.body);
        std::string wiera_id = r.get_string();
        std::string to_policy = r.get_string();
        if (!r.ok()) co_return r.status();
        auto mode = consistency_mode_from_name(to_policy);
        if (!mode.ok()) co_return mode.status();
        Status st = co_await change_consistency(std::move(wiera_id), *mode);
        co_return encode_status(st);
      });
  // Serve-lease renewal: record when each peer last proved round-trip
  // reachability. The renewal time gates membership narrowing: because the
  // controller's record is always at least as fresh as the peer's own
  // (the response can be lost after the handler runs, never the reverse),
  // "lease stale here" implies "lease lapsed at the peer".
  endpoint_->register_handler(
      method::kLeaseRenew,
      [this](rpc::Message msg) -> sim::Task<Result<rpc::Message>> {
        rpc::WireReader r(msg.body);
        std::string instance_id = r.get_string();
        if (!r.ok()) co_return r.status();
        lease_seen_[instance_id] = sim_->now();
        co_return encode_status(ok_status());
      });
  endpoint_->register_handler(
      method::kPing,
      [](rpc::Message) -> sim::Task<Result<rpc::Message>> {
        co_return encode_status(ok_status());
      });
  endpoint_->register_handler(
      kChangePrimaryMethod,
      [this](rpc::Message msg) -> sim::Task<Result<rpc::Message>> {
        rpc::WireReader r(msg.body);
        std::string wiera_id = r.get_string();
        std::string new_primary = r.get_string();
        if (!r.ok()) co_return r.status();
        Status st = co_await change_primary(std::move(wiera_id),
                                            std::move(new_primary));
        co_return encode_status(st);
      });
}

sim::Task<void> WieraController::heartbeat_loop() {
  while (running_) {
    co_await sim_->delay(config_.heartbeat_interval);
    if (!running_) break;
    // Snapshot the membership: add_server can grow servers_ (and a server's
    // peer set) while a ping is in flight, invalidating these iterators.
    const std::vector<TieraServer*> servers = servers_;
    for (TieraServer* server : servers) {
      for (const std::string& id : server->peer_ids()) {
        rpc::Message ping;
        Context ping_ctx;
        if (config_.ping_deadline > Duration::zero()) {
          ping_ctx =
              Context::with_deadline(sim_->now() + config_.ping_deadline);
        }
        auto resp = co_await endpoint_->call(id, method::kPing,
                                             std::move(ping), ping_ctx);
        auto prev = node_alive_.find(id);
        const bool was_alive = prev == node_alive_.end() || prev->second;
        const bool ping_ok = resp.ok();
        health_.record_ping(id, ping_ok, sim_->now());
        // Flap damping (docs/HEALTH.md): liveness flips only after
        // ping_failure_threshold *consecutive* failures, so one
        // chaos-dropped ping cannot trigger failover. Threshold 1 is the
        // seed behaviour (the first failure counts).
        if (ping_ok) {
          ping_failures_.erase(id);
        } else {
          ping_failures_[id]++;
        }
        const bool alive =
            ping_ok ||
            ping_failures_[id] < std::max(config_.ping_failure_threshold, 1);
        node_alive_[id] = alive;
        if (alive) {
          down_handled_.erase(id);
        } else if (down_handled_.count(id) == 0 &&
                   draining_.count(id) == 0) {
          // (A draining peer's drain task owns its membership transition;
          // down-handling — say a fault partitions it mid-drain — must not
          // race that. The drain's own deadline bounds the deferral.)
          // Narrowing membership around an unreachable peer is only safe
          // once its serve lease has provably lapsed: lease_seen_ upper-
          // bounds the peer's own last renewal, so waiting one heartbeat
          // past the lease guarantees the peer is already refusing
          // strong-mode reads before anyone stops replicating to it.
          bool lease_lapsed = true;
          if (config_.serve_lease > Duration::zero()) {
            auto seen = lease_seen_.find(id);
            lease_lapsed = seen == lease_seen_.end() ||
                           sim_->now() - seen->second >
                               config_.serve_lease + config_.heartbeat_interval;
          }
          if (lease_lapsed) {
            down_handled_.insert(id);
            handle_peer_down(id);
          }
        }
        // A peer that answers but is recovering (crash restart, lapsed
        // serve lease) gets a controller-driven catch-up before it rejoins.
        WieraPeer* p = peer_by_id_internal(id);
        const bool needs_recovery =
            alive && p != nullptr && (!was_alive || p->recovering());
        if (needs_recovery && catching_up_.insert(id).second) {
          for (auto& [wiera_id, record] : instances_) {
            if (std::find(record.peer_ids.begin(), record.peer_ids.end(),
                          id) == record.peer_ids.end()) {
              continue;
            }
            sim_->spawn(recover_peer(wiera_id, id),
                        "controller.recover/" + id);
            break;
          }
        }
      }
    }
    if (config_.min_replicas > 0) maintain_replicas();
  }
}

void WieraController::handle_peer_down(const std::string& peer_id) {
  for (auto& [wiera_id, record] : instances_) {
    if (std::find(record.peer_ids.begin(), record.peer_ids.end(), peer_id) ==
        record.peer_ids.end()) {
      continue;
    }
    if (record.primary == peer_id) {
      // §4.4 failover: promote the first live storage peer, preferring one
      // that is not in health probation (docs/HEALTH.md).
      const std::string successor = pick_successor(record, peer_id);
      if (!successor.empty()) {
        record.primary = successor;
        primary_changes_++;
        WLOG_INFO(kComponent) << wiera_id << " primary failover: " << peer_id
                              << " -> " << successor;
      }
    }
    push_membership(wiera_id, record);
  }
}

std::string WieraController::pick_successor(const InstanceRecord& record,
                                            const std::string& excluding) const {
  std::string fallback;
  for (const std::string& candidate : record.storage_peer_ids) {
    if (candidate == excluding || draining_.count(candidate) > 0) continue;
    auto alive = node_alive_.find(candidate);
    if (alive != node_alive_.end() && !alive->second) continue;
    if (health_.in_probation(candidate)) {
      if (fallback.empty()) fallback = candidate;
      continue;
    }
    return candidate;
  }
  return fallback;
}

void WieraController::push_membership(const std::string& wiera_id,
                                      InstanceRecord& record) {
  // Narrow replication to the live storage peers so strong-mode puts stop
  // waiting on the dead node; a recovered peer is restored to the set by
  // the next push after its catch-up.
  std::vector<std::string> live_storage;
  for (const std::string& id : record.storage_peer_ids) {
    // A draining peer stops receiving new placements the moment the drain
    // starts: everything it already holds is being handed off, so routing
    // fresh updates to it would only grow the hand-off (docs/SCENARIOS.md).
    if (draining_.count(id) > 0) continue;
    auto alive = node_alive_.find(id);
    if (alive == node_alive_.end() || alive->second) live_storage.push_back(id);
  }
  for (const std::string& id : record.peer_ids) {
    auto alive = node_alive_.find(id);
    if (alive != node_alive_.end() && !alive->second) continue;
    WieraPeer* p = peer_by_id_internal(id);
    if (p == nullptr) continue;
    p->set_peers(record.peer_ids);
    p->set_storage_peers(live_storage);
    p->apply_primary_change(record.primary);
  }
  WLOG_INFO(kComponent) << wiera_id << " membership pushed ("
                        << live_storage.size() << "/"
                        << record.storage_peer_ids.size()
                        << " storage peers live, primary " << record.primary
                        << ")";
}

sim::Task<void> WieraController::recover_peer(std::string wiera_id,
                                              std::string peer_id) {
  WieraPeer* p = peer_by_id_internal(peer_id);
  auto it = instances_.find(wiera_id);
  if (p == nullptr || it == instances_.end()) {
    catching_up_.erase(peer_id);
    co_return;
  }
  p->begin_recovery();

  // Cluster-wide lease lapse (control-plane brownout): every candidate
  // source may itself be recovering, which would deadlock — each peer waits
  // for a settled source that never appears. In primary-backup modes a
  // lapsed-but-uncrashed primary lost no data (every committed write flowed
  // through it, and nothing commits while it is refusing writes), so it is
  // the source of truth: rejoin it directly, and the next heartbeat uses it
  // as the catch-up source for everyone else. Multi-primaries writes commit
  // at *any* lock holder, so there this shortcut would resurrect a peer
  // that really did miss writes — it must catch up like everyone else.
  const bool single_write_path =
      it->second.mode == ConsistencyMode::kPrimaryBackupSync ||
      it->second.mode == ConsistencyMode::kPrimaryBackupAsync;
  if (single_write_path && peer_id == it->second.primary &&
      !p->data_suspect()) {
    p->finish_recovery();
    recoveries_completed_++;
    WLOG_INFO(kComponent) << peer_id
                          << " (primary, data intact) rejoined " << wiera_id
                          << " without catch-up";
    catching_up_.erase(peer_id);
    co_return;
  }

  // Catch-up sources: the primary first (in primary-backup modes it has
  // every committed write), then the other live, settled storage peers.
  std::vector<std::string> sources;
  auto add_source = [&](const std::string& candidate) {
    if (candidate.empty() || candidate == peer_id) return;
    if (std::find(sources.begin(), sources.end(), candidate) !=
        sources.end()) {
      return;
    }
    auto alive = node_alive_.find(candidate);
    if (alive != node_alive_.end() && !alive->second) return;
    WieraPeer* src = peer_by_id_internal(candidate);
    if (src == nullptr || src->recovering()) return;
    sources.push_back(candidate);
  };
  add_source(it->second.primary);
  for (const std::string& candidate : it->second.storage_peer_ids) {
    add_source(candidate);
  }

  Status st = co_await p->catch_up(sources);
  if (!st.ok()) {
    // Leave the peer recovering; the next heartbeat retries.
    WLOG_WARN(kComponent) << peer_id << " catch-up failed: "
                          << st.to_string();
    catching_up_.erase(peer_id);
    co_return;
  }
  // Re-find the record: the instance may have been stopped while we were
  // pulling state.
  auto post = instances_.find(wiera_id);
  if (post != instances_.end()) {
    push_membership(wiera_id, post->second);
  }
  // Second pull, after rejoining the replication membership: a put whose
  // fan-out was computed before the rejoin may have committed at the source
  // after the first snapshot was taken. Every such put has fully committed
  // by now (its membership check preceded the rejoin), so this snapshot
  // closes the gap; puts fanning out after the rejoin reach this peer
  // directly (replicate_to_all re-checks membership before completing).
  Status delta = co_await p->catch_up(sources);
  if (!delta.ok()) {
    WLOG_WARN(kComponent) << peer_id << " delta catch-up failed: "
                          << delta.to_string();
    catching_up_.erase(peer_id);
    co_return;
  }
  p->finish_recovery();
  recoveries_completed_++;
  WLOG_INFO(kComponent) << peer_id << " recovered and rejoined " << wiera_id;
  catching_up_.erase(peer_id);
}

void WieraController::maintain_replicas() {
  for (auto& [wiera_id, record] : instances_) {
    std::vector<std::string> live;
    for (const std::string& id : record.peer_ids) {
      auto it = node_alive_.find(id);
      if (it == node_alive_.end() || it->second) live.push_back(id);
    }
    if (static_cast<int>(live.size()) >= config_.min_replicas) continue;

    // Find a spare server: registered, alive, not already hosting a peer
    // of this instance.
    TieraServer* spare = nullptr;
    for (TieraServer* server : servers_) {
      const bool hosting =
          std::find(record.peer_ids.begin(), record.peer_ids.end(),
                    server->node()) != record.peer_ids.end();
      auto alive = node_alive_.find(server->node());
      const bool up = alive == node_alive_.end() || alive->second;
      // An evacuated node's endpoint belongs to its retired peer object:
      // re-spawning there would double-register it.
      if (!hosting && up && evacuated_.count(server->node()) == 0) {
        spare = server;
        break;
      }
    }
    if (spare == nullptr || record.templates.empty()) continue;

    // Clone the config of a live peer (or the first template) onto the
    // spare node. The new replica starts empty; replication fills it as
    // updates flow (data backfill is future work, as in the paper §4.4).
    WieraPeer::Config config = record.templates.front();
    config.instance_id = spare->node();
    config.is_primary = false;
    const bool replacement_stores =
        !record.templates.front().forwarding_only &&
        !record.templates.front().local.policy.tiers.empty();
    WieraPeer* replacement = spare->spawn_peer(std::move(config));
    record.peer_ids.push_back(replacement->id());
    if (replacement_stores) {
      record.storage_peer_ids.push_back(replacement->id());
    }
    record.templates.push_back(record.templates.front());
    replacements_spawned_++;
    WLOG_INFO(kComponent) << wiera_id << " spawned replacement replica on "
                          << replacement->id();

    // Primary failover: if the down peer was the primary, promote the
    // closest live peer (preferring one not in health probation).
    auto primary_alive = node_alive_.find(record.primary);
    if (primary_alive != node_alive_.end() && !primary_alive->second) {
      std::string successor = pick_successor(record, record.primary);
      if (successor.empty() && !live.empty()) successor = live.front();
      if (!successor.empty()) {
        record.primary = successor;
        primary_changes_++;
      }
    }

    // Propagate membership + primary to every live peer and the newcomer.
    for (const std::string& id : record.peer_ids) {
      WieraPeer* p = peer_by_id_internal(id);
      if (p == nullptr) continue;
      p->set_peers(record.peer_ids);
      p->set_storage_peers(record.storage_peer_ids);
      p->apply_primary_change(record.primary);
      wire_control_plane(wiera_id, p);
    }
    replacement->start();
  }
}

// ------------------------------------------- operational events (scenarios)

sim::Task<Status> WieraController::drain_peer(std::string wiera_id,
                                              std::string peer_id,
                                              TimePoint deadline) {
  auto it = instances_.find(wiera_id);
  if (it == instances_.end()) {
    co_return not_found("wiera instance " + wiera_id);
  }
  if (std::find(it->second.peer_ids.begin(), it->second.peer_ids.end(),
                peer_id) == it->second.peer_ids.end()) {
    co_return not_found(peer_id + " is not a member of " + wiera_id);
  }
  WieraPeer* p = peer_by_id_internal(peer_id);
  if (p == nullptr) {
    co_return not_found("no peer object for " + peer_id);
  }
  if (!draining_.insert(peer_id).second) {
    co_return failed_precondition(peer_id + " is already draining");
  }
  sim_->telemetry()
      .journal()
      .event("controller", "drain_begin")
      .str("instance", peer_id);
  WLOG_INFO(kComponent) << wiera_id << " draining " << peer_id;

  // 1. Move primary-ship off the draining peer. Local promotion (the §4.4
  //    failover path), not change_primary's all-peer ack fan-out: a third
  //    peer partitioned away must not block an evacuation, and it learns
  //    the new primary through its own recovery push when it heals.
  if (it->second.primary == peer_id) {
    const std::string successor = pick_successor(it->second, peer_id);
    if (successor.empty()) {
      draining_.erase(peer_id);
      co_return failed_precondition(
          "no live successor to take primary-ship from " + peer_id);
    }
    it->second.primary = successor;
    primary_changes_++;
    WLOG_INFO(kComponent) << wiera_id << " primary handed off: " << peer_id
                          << " -> " << successor;
  }

  // 2. Stop admitting new placements: with peer_id in draining_, this push
  //    drops it from every live peer's replication set.
  push_membership(wiera_id, it->second);

  // 3. Hand off. enter_draining *before* the final flush: the gate refuses
  //    new client ops from here on (clients fail over within their retry
  //    budget), so nothing can land between the last flush and the detach.
  p->enter_draining();
  if (config_.drain_handoff) {
    const Status handoff = co_await p->drain(deadline);
    it = instances_.find(wiera_id);
    p = peer_by_id_internal(peer_id);
    if (it == instances_.end() || p == nullptr) {
      draining_.erase(peer_id);
      co_return not_found(wiera_id + " stopped during drain of " + peer_id);
    }
    if (!handoff.ok()) {
      // Abort: restore full membership and keep serving. Nothing was lost —
      // the peer still holds everything it ever acked.
      p->exit_draining();
      draining_.erase(peer_id);
      push_membership(wiera_id, it->second);
      WLOG_WARN(kComponent) << wiera_id << " drain of " << peer_id
                            << " aborted: " << handoff.to_string();
      co_return handoff;
    }
  }

  // 4. Detach without tripping the failure detector: out of the membership
  //    record first, then retire the object so the heartbeat stops pinging
  //    it while stragglers still get a fast "draining" answer.
  InstanceRecord& record = it->second;
  std::erase(record.peer_ids, peer_id);
  std::erase(record.storage_peer_ids, peer_id);
  for (auto t = record.templates.begin(); t != record.templates.end(); ++t) {
    if (t->instance_id == peer_id) {
      record.templates.erase(t);
      break;
    }
  }
  draining_.erase(peer_id);
  evacuated_.insert(peer_id);
  node_alive_.erase(peer_id);
  lease_seen_.erase(peer_id);
  down_handled_.erase(peer_id);
  push_membership(wiera_id, record);
  for (TieraServer* server : servers_) {
    if (server->peer(peer_id) == nullptr) continue;
    const Status retired = server->retire_peer(peer_id);
    if (!retired.ok()) {
      WLOG_WARN(kComponent) << "retiring " << peer_id
                            << " failed: " << retired.to_string();
    }
    break;
  }
  drains_completed_++;
  sim_->telemetry()
      .journal()
      .event("controller", "drain_complete")
      .str("instance", peer_id);
  WLOG_INFO(kComponent) << wiera_id << " evacuated " << peer_id;
  co_return ok_status();
}

sim::Task<Status> WieraController::add_peer_live(std::string wiera_id,
                                                 std::string node) {
  auto it = instances_.find(wiera_id);
  if (it == instances_.end()) {
    co_return not_found("wiera instance " + wiera_id);
  }
  if (std::find(it->second.peer_ids.begin(), it->second.peer_ids.end(),
                node) != it->second.peer_ids.end()) {
    co_return already_exists(node + " is already a member of " + wiera_id);
  }
  if (evacuated_.count(node) > 0) {
    // The retired peer still owns this node's rpc endpoint; spawning a new
    // one there would double-register it. Capacity returns on fresh nodes.
    co_return failed_precondition(node +
                                  " was evacuated; add a fresh node instead");
  }
  if (draining_.count(node) > 0) {
    co_return failed_precondition(node + " is draining");
  }
  TieraServer* server = nullptr;
  for (TieraServer* candidate : servers_) {
    if (candidate->node() == node) {
      server = candidate;
      break;
    }
  }
  if (server == nullptr) {
    co_return not_found("no Tiera server registered on node " + node);
  }
  auto alive = node_alive_.find(node);
  if (alive != node_alive_.end() && !alive->second) {
    co_return unavailable(node + " is down");
  }
  InstanceRecord& record = it->second;
  if (record.templates.empty()) {
    co_return failed_precondition("no peer template to clone for " + wiera_id);
  }

  WieraPeer::Config config = record.templates.front();
  config.instance_id = node;
  config.is_primary = false;
  const bool stores =
      !config.forwarding_only && !config.local.policy.tiers.empty();
  record.templates.push_back(config);
  WieraPeer* added = server->spawn_peer(std::move(config));
  record.peer_ids.push_back(added->id());
  if (stores) record.storage_peer_ids.push_back(added->id());
  node_alive_[node] = true;
  lease_seen_[node] = sim_->now();
  wire_control_plane(wiera_id, added);
  // The newcomer starts empty: recover it like a restarted peer — catch up
  // from the live sources while replication already flows to it.
  added->begin_recovery();
  push_membership(wiera_id, record);
  added->start();
  peers_added_++;
  sim_->telemetry()
      .journal()
      .event("controller", "peer_added")
      .str("instance", node);
  WLOG_INFO(kComponent) << wiera_id << " added live peer " << node;
  if (catching_up_.insert(node).second) {
    co_await recover_peer(wiera_id, node);
  }
  co_return ok_status();
}

sim::Task<Status> WieraController::rolling_restart(std::string wiera_id) {
  auto it = instances_.find(wiera_id);
  if (it == instances_.end()) {
    co_return not_found("wiera instance " + wiera_id);
  }
  // Snapshot the walk order: drains or replacements may edit the record
  // while a bounce is suspended.
  const std::vector<std::string> ids = it->second.storage_peer_ids;
  Status first_error = ok_status();
  for (const std::string& id : ids) {
    it = instances_.find(wiera_id);
    if (it == instances_.end()) {
      co_return not_found(wiera_id + " stopped during rolling restart");
    }
    if (draining_.count(id) > 0 || evacuated_.count(id) > 0) continue;
    auto alive = node_alive_.find(id);
    if (alive != node_alive_.end() && !alive->second) continue;  // down anyway
    WieraPeer* p = peer_by_id_internal(id);
    if (p == nullptr) continue;
    // A controlled restart must not trip a failover: primary-ship moves off
    // the peer before it bounces (same local promotion as drain_peer).
    if (it->second.primary == id) {
      const std::string successor = pick_successor(it->second, id);
      if (!successor.empty()) {
        it->second.primary = successor;
        primary_changes_++;
        WLOG_INFO(kComponent) << wiera_id << " primary handed off: " << id
                              << " -> " << successor;
      }
      push_membership(wiera_id, it->second);
    }
    // Flush the outbound queue so the bounce loses nothing; tolerate a
    // flush that cannot finish (a partitioned sibling) and bounce anyway —
    // the queue survives a clean stop/start, only crashes drop it.
    const Status flushed = co_await p->drain(
        sim_->now() + config_.heartbeat_interval * 4, /*flush_only=*/true);
    if (!flushed.ok() && first_error.ok()) first_error = flushed;
    it = instances_.find(wiera_id);
    p = peer_by_id_internal(id);
    if (it == instances_.end() || p == nullptr) continue;
    p->begin_recovery();
    p->stop();
    co_await sim_->delay(config_.restart_pause);
    p = peer_by_id_internal(id);
    if (p == nullptr) continue;
    p->start();
    sim_->telemetry()
        .journal()
        .event("controller", "peer_restarted")
        .str("instance", id);
    // Recover before bouncing the next peer: at most one member is ever
    // out of full service.
    if (catching_up_.insert(id).second) {
      co_await recover_peer(wiera_id, id);
    } else {
      // The heartbeat already owns this peer's recovery; give it a beat.
      co_await sim_->delay(config_.heartbeat_interval);
    }
  }
  rolling_restarts_++;
  WLOG_INFO(kComponent) << wiera_id << " rolling restart complete";
  co_return first_error;
}

void WieraController::start() {
  if (running_) return;
  running_ = true;
  if (config_.lock_lease > Duration::zero()) {
    lock_service_->set_lease(config_.lock_lease);
    lock_service_->start_lease_reaper(config_.heartbeat_interval);
  }
  sim_->spawn(heartbeat_loop(), "controller.heartbeat");
}

void WieraController::stop() { running_ = false; }

}  // namespace wiera::geo
