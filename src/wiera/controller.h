// WieraController: the management plane (§3.1, §4.1).
//
// Combines the paper's components:
//   * WUI  — startInstances / stopInstances / getInstances (Table 1);
//   * GPM  — stores each Wiera instance's global policy and instantiates
//            the protocol it derives;
//   * TSM  — registry of Tiera servers, heartbeat health checks, and
//            replacement of crashed replicas (§4.4);
//   * TIM  — propagates peer membership and orchestrates run-time changes
//            (consistency switch, primary migration) requested by the
//            monitoring events.
//
// The controller lives on its own node (the paper runs it in US East with
// ZooKeeper co-located), so peers pay a WAN round trip to request policy
// changes and the controller pays WAN RTTs to apply them.
#pragma once

#include <functional>
#include <map>
#include <memory>
#include <optional>
#include <set>
#include <string>
#include <vector>

#include "coord/lock_service.h"
#include "wiera/health.h"
#include "wiera/monitors.h"
#include "wiera/peer.h"

namespace wiera::geo {

// A Tiera server: one per node, spawns/stops instances in-process (§4.1
// notes instances run within the server process).
class TieraServer {
 public:
  TieraServer(sim::Simulation& sim, net::Network& network,
              rpc::Registry& registry, std::string node)
      : sim_(&sim), network_(&network), registry_(&registry),
        node_(std::move(node)) {}

  const std::string& node() const { return node_; }

  // Spawns a peer whose instance_id must equal a topology node co-located
  // with (or equal to) this server's node.
  WieraPeer* spawn_peer(WieraPeer::Config config);
  Status stop_peer(const std::string& instance_id);
  // Detach a peer without destroying it: the object (and its registered
  // rpc endpoint) moves to a retired list where it stays alive, so
  // in-flight handler coroutines and straggler RPCs land on a live object
  // that answers fast — but it leaves peer_ids(), so the heartbeat stops
  // pinging it and the failure detector never trips (docs/SCENARIOS.md).
  Status retire_peer(const std::string& instance_id);
  WieraPeer* peer(const std::string& instance_id);
  std::vector<std::string> peer_ids() const;

 private:
  sim::Simulation* sim_;
  net::Network* network_;
  rpc::Registry* registry_;
  std::string node_;
  std::map<std::string, std::unique_ptr<WieraPeer>> peers_;
  std::vector<std::unique_ptr<WieraPeer>> retired_;
};

class WieraController {
 public:
  struct Config {
    std::string node = "wiera-controller";
    Duration heartbeat_interval = sec(1);
    // Minimum live replicas per Wiera instance; 0 disables maintenance.
    int min_replicas = 0;
    // When nonzero, locks are leased: a holder that crashes mid-critical-
    // section is evicted after this long so waiters make progress
    // (ZooKeeper ephemeral-node semantics). Zero keeps locks indefinite.
    Duration lock_lease = Duration::zero();
    // When nonzero, every launched peer gets this serve lease (it refuses
    // strong-mode client ops once it has gone this long without a
    // successful lease renewal against this controller). The controller in
    // turn narrows replication membership around an unreachable peer only
    // after the peer's lease has provably lapsed — that ordering guarantees
    // an isolated replica is refusing reads before anyone stops
    // replicating to it. Zero disables both sides (seed behaviour).
    Duration serve_lease = Duration::zero();
    // Deadline on each heartbeat ping (docs/OVERLOAD.md). Without one, a
    // ping to a partitioned node blocks the heartbeat loop for the full
    // unreachable timeout; with one, failure detection keeps its cadence
    // under brownouts. Zero = no deadline (seed behaviour).
    Duration ping_deadline = Duration::zero();
    // Heartbeat flap damping (docs/HEALTH.md): a peer is declared down only
    // after this many *consecutive* failed pings, so one chaos-dropped ping
    // cannot trigger failover. 1 = seed behaviour (first failure counts).
    int ping_failure_threshold = 1;
    // Health-scored failure detection (docs/HEALTH.md). Disabled by
    // default: the tracker records nothing and every peer ranks neutral.
    HealthTracker::Config health = {};
    // ---- operational events (docs/SCENARIOS.md) ----
    // Hand the draining peer's queued + committed state off to the
    // remaining replicas before detaching it. Disabling this is the SLO
    // oracle's mutation knob: the drain then detaches with whatever the
    // flusher had not pushed yet, and the session read-your-writes
    // contract catches the loss.
    bool drain_handoff = true;
    // Pause between stop and restart of each peer in a rolling restart.
    Duration restart_pause = msec(500);
  };

  // How to launch a Wiera instance from a global policy document.
  struct StartOptions {
    policy::PolicyDoc global;  // Wiera doc (regions + insert protocol rule)
    // Resolves region instance names (LowLatencyInstance, ...) to local
    // Tiera docs; defaults to the built-in catalog (+ an empty
    // ForwardingInstance).
    std::function<Result<policy::PolicyDoc>(const std::string&)>
        resolve_local;
    std::map<std::string, policy::Value> local_params;
    // Maps a policy region name (e.g. "US-West") to a topology node where
    // a Tiera server runs. Defaults to "tiera-" + lowercased region.
    std::function<std::string(const std::string& region)> node_for_region;
    std::optional<policy::PolicyDoc> dynamic_consistency;  // Fig. 5a
    std::optional<policy::PolicyDoc> change_primary;       // Fig. 5b
    Duration queue_flush_interval = msec(100);
    // Final per-peer adjustment (tier tweaks, get-forward targets, ...).
    std::function<void(WieraPeer::Config&)> customize;
  };

  WieraController(sim::Simulation& sim, net::Network& network,
                  rpc::Registry& registry, Config config);

  const std::string& node() const { return config_.node; }
  coord::LockService& lock_service() { return *lock_service_; }

  // ---- TSM ----
  void register_server(TieraServer* server);
  bool server_alive(const std::string& node) const;
  std::vector<std::string> down_instances(const std::string& wiera_id) const;

  // ---- WUI (Table 1) ----
  Result<std::vector<std::string>> start_instances(const std::string& wiera_id,
                                                   StartOptions options);
  Status stop_instances(const std::string& wiera_id);
  Result<std::vector<std::string>> get_instances(
      const std::string& wiera_id) const;

  // ---- dynamic reconfiguration ----
  sim::Task<Status> change_consistency(std::string wiera_id,
                                       ConsistencyMode mode);
  sim::Task<Status> change_primary(std::string wiera_id,
                                   std::string new_primary);

  // ---- operational events (docs/SCENARIOS.md) ----
  // Cooperatively evacuate `peer_id` from `wiera_id`: move primary-ship off
  // it, stop admitting new placements (membership pushed without it), hand
  // off its queued + committed state over the normal replication path, then
  // detach it without tripping the failure detector. On hand-off failure
  // the peer is restored to full membership and the error returned.
  sim::Task<Status> drain_peer(std::string wiera_id, std::string peer_id,
                               TimePoint deadline);
  // Bring a new replica up live on `node` (a registered Tiera server that
  // is not yet a member) and catch it up like a recovered peer. Evacuated
  // node ids stay retired for the life of the cluster — capacity comes back
  // on a fresh node, never by re-registering a retired endpoint.
  sim::Task<Status> add_peer_live(std::string wiera_id, std::string node);
  // Controlled one-at-a-time restart of the storage peers: primary-ship is
  // moved off each peer, its queue flushed, and the peer recovered before
  // the next one bounces — at most one member is ever out of full service.
  sim::Task<Status> rolling_restart(std::string wiera_id);
  bool draining(const std::string& peer_id) const {
    return draining_.count(peer_id) > 0;
  }
  int64_t drains_completed() const { return drains_completed_; }
  int64_t peers_added() const { return peers_added_; }
  int64_t rolling_restarts_completed() const { return rolling_restarts_; }

  ConsistencyMode current_mode(const std::string& wiera_id) const;
  std::string current_primary(const std::string& wiera_id) const;
  int64_t consistency_changes() const { return consistency_changes_; }
  int64_t primary_changes() const { return primary_changes_; }
  int64_t replacements_spawned() const { return replacements_spawned_; }
  int64_t recoveries_completed() const { return recoveries_completed_; }

  // §3.1 monitors, fed by every peer this controller launches, and the
  // placement advisor built on them.
  NetworkMonitor& network_monitor() { return network_monitor_; }
  WorkloadMonitor& workload_monitor() { return workload_monitor_; }
  // Health-scored failure detection (docs/HEALTH.md): fed by the heartbeat
  // loop here and by client/peer latency observations.
  HealthTracker& health() { return health_; }
  const HealthTracker& health() const { return health_; }
  // Recommended primary for a Wiera instance based on observed workload
  // ("" when there is not enough signal).
  std::string recommend_primary(const std::string& wiera_id) const;

  WieraPeer* peer(const std::string& instance_id);

  // Begin heartbeat monitoring.
  void start();
  void stop();

 private:
  struct InstanceRecord {
    std::string policy_id;
    std::vector<std::string> peer_ids;
    ConsistencyMode mode = ConsistencyMode::kEventual;
    std::string primary;
    bool change_in_progress = false;
    // Peer configs as launched, for §4.4 replica replacement.
    std::vector<WieraPeer::Config> templates;
    // Subset of peer_ids that can store data (not forwarding-only).
    std::vector<std::string> storage_peer_ids;
  };

  void wire_control_plane(const std::string& wiera_id, WieraPeer* peer);
  void register_handlers();
  sim::Task<void> heartbeat_loop();
  WieraPeer* peer_by_id_internal(const std::string& instance_id);
  // §4.4: if an instance has fewer than min_replicas live peers, spawn a
  // replacement on a spare Tiera server.
  void maintain_replicas();
  // Liveness transitions driven by the heartbeat: a peer went down (primary
  // failover + membership narrowed to live nodes) or came back (catch-up
  // resync, then rejoin).
  void handle_peer_down(const std::string& peer_id);
  // Probation-aware primary successor choice (docs/HEALTH.md): the first
  // live, non-draining storage peer that is not in probation; falls back to
  // a probation peer when no healthy candidate exists (a slow primary still
  // beats none). Empty when there is no candidate at all.
  std::string pick_successor(const InstanceRecord& record,
                             const std::string& excluding) const;
  void push_membership(const std::string& wiera_id, InstanceRecord& record);
  sim::Task<void> recover_peer(std::string wiera_id, std::string peer_id);

  sim::Simulation* sim_;
  net::Network* network_;
  rpc::Registry* registry_;
  Config config_;
  std::unique_ptr<rpc::Endpoint> endpoint_;
  std::unique_ptr<coord::LockService> lock_service_;
  std::vector<TieraServer*> servers_;
  std::map<std::string, InstanceRecord> instances_;
  std::map<std::string, bool> node_alive_;
  // Consecutive failed pings per peer (flap damping; docs/HEALTH.md).
  std::map<std::string, int> ping_failures_;
  bool running_ = false;
  // Peers with a recovery task in flight (one at a time per peer).
  std::set<std::string> catching_up_;
  // Last lease renewal received per peer (conservative upper bound on the
  // peer's own view of its lease).
  std::map<std::string, TimePoint> lease_seen_;
  // Peers whose down-transition has been handled (failover + narrowing);
  // cleared when the peer answers pings again.
  std::set<std::string> down_handled_;
  // Peers mid-drain: excluded from replication membership pushes, and the
  // heartbeat's down-handling defers to the drain in progress.
  std::set<std::string> draining_;
  // Node ids already evacuated: never re-added (their rpc endpoint stays
  // registered to the retired object) and never picked as spares.
  std::set<std::string> evacuated_;
  int64_t drains_completed_ = 0;
  int64_t peers_added_ = 0;
  int64_t rolling_restarts_ = 0;
  int64_t consistency_changes_ = 0;
  int64_t primary_changes_ = 0;
  int64_t replacements_spawned_ = 0;
  int64_t recoveries_completed_ = 0;
  NetworkMonitor network_monitor_;
  WorkloadMonitor workload_monitor_;
  HealthTracker health_;
  PlacementAdvisor advisor_;
};

}  // namespace wiera::geo
