// WieraPeer: one geo-replicated member of a Wiera instance.
//
// A peer couples a local TieraInstance (multi-tier storage + local policy)
// with the global protocol machinery of §3.3/§4:
//   * consistency protocols — MultiPrimaries (global lock + synchronous
//     broadcast), PrimaryBackup (sync `copy` or async `queue`), Eventual
//     (local write + queued background propagation, LWW on conflict);
//   * request forwarding (non-primary puts, ForwardingInstance regions,
//     get-forwarding to a remote fast tier as in §5.4);
//   * monitoring events — LatencyMonitoring drives DynamicConsistency
//     (Fig. 5a), RequestsMonitoring drives ChangePrimary (Fig. 5b); both
//     evaluate the *parsed policy rules* at run time;
//   * centralized cold data (§5.3) via the InstanceHooks interception.
//
// Consistency changes block-and-queue (§3.3.2): while a switch is in
// progress new client operations wait; in-flight operations and queued
// updates drain first.
#pragma once

#include <deque>
#include <functional>
#include <map>
#include <memory>
#include <optional>
#include <set>
#include <string>
#include <vector>

#include "common/breaker.h"
#include "common/context.h"
#include "obs/keystats.h"
#include "obs/metrics.h"
#include "coord/lock_service.h"
#include "sim/sync.h"
#include "tiera/instance.h"
#include "wiera/health.h"
#include "wiera/messages.h"
#include "wiera/monitors.h"
#include "wiera/types.h"

namespace wiera::geo {

class WieraPeer : public tiera::InstanceHooks {
 public:
  struct Config {
    std::string instance_id;  // globally unique; equals the topology node
    std::string region;
    // Local Tiera policy (instance_id/region fields are overwritten).
    tiera::TieraInstance::Config local;
    ConsistencyMode mode = ConsistencyMode::kEventual;
    bool is_primary = false;
    std::string primary_instance;            // current primary's id
    std::string lock_service_node;           // ZooKeeper stand-in location
    Duration queue_flush_interval = msec(100);
    // ---- replication coalescing (docs/PERFORMANCE.md) ----
    // Max queued updates coalesced into one kReplicateBatch wire message
    // per target per flush round. 1 = no coalescing (seed behaviour: one
    // kReplicate message per update per target). With coalescing on, a
    // flush also triggers as soon as the queue reaches this size — batches
    // flush on size or deadline, whichever comes first. Breaker, retry
    // budget, and per-op trace spans behave exactly as in the per-op path;
    // op outcomes are returned per-op so a failed op is requeued without
    // re-sending its accepted batch-mates.
    int replicate_batch_max = 1;
    // ---- fault recovery (chaos harness) ----
    // Retry budget for replication sends that fail kUnavailable (dropped
    // messages, transient partitions). 0 = fail fast (seed behaviour).
    int replicate_retries = 0;
    Duration replicate_backoff = msec(100);  // doubles per attempt
    // Serve lease: when nonzero, the peer pings the lease authority every
    // serve_lease/3 and — in the strong consistency modes — refuses client
    // operations once the lease lapses, so a partitioned replica cannot
    // serve stale data. Zero disables the lease (seed behaviour).
    Duration serve_lease = Duration::zero();
    // Node pinged to refresh the serve lease (the controller's node).
    // Empty = fall back to lock_service_node.
    std::string lease_authority;
    // §5.4: forward all gets to this instance (remote fast tier). Empty =
    // serve locally.
    std::string get_forward_target;
    // Fig. 6b: instance with no tiers that forwards everything.
    bool forwarding_only = false;
    // §5.3 centralized cold data: when set (to another peer's id), cold
    // objects are shipped there instead of being demoted locally.
    std::string centralized_cold_target;
    std::string cold_tier_label;  // tier that receives kColdStore objects
    // Aggregation sinks for the §3.1 network/workload monitors (owned by
    // the controller; null disables recording).
    NetworkMonitor* network_monitor = nullptr;
    WorkloadMonitor* workload_monitor = nullptr;
    // Health-scored failure detection (docs/HEALTH.md; owned by the
    // controller, wired like the monitors). When set and enabled,
    // replication fan-outs order probation targets last and successful
    // replication acks feed the per-target latency EWMA. Null = disabled.
    HealthTracker* health = nullptr;
    // Hot-key / workload analytics (docs/METRICS_PIPELINE.md): a space-
    // saving top-K sketch over client accesses, windowed on the virtual
    // clock. Default-off: a disabled sketch records nothing and registers
    // no metrics, so default telemetry dumps stay byte-identical.
    obs::KeyStats::Config key_stats;
    // Optional parsed dynamic policies evaluated by the monitors.
    std::optional<policy::PolicyDoc> dynamic_consistency_policy;  // Fig. 5a
    std::optional<policy::PolicyDoc> change_primary_policy;       // Fig. 5b
    Duration requests_monitor_window = sec(30);  // put history (§5.2)
    Duration requests_monitor_check = sec(5);
    // ---- overload robustness (docs/OVERLOAD.md) ----
    // Admission control on this peer's endpoint: at most max_inflight
    // handlers run concurrently, max_queue wait behind them (LIFO service,
    // oldest-waiter shedding). 0 = unlimited (seed behaviour).
    int max_inflight = 0;
    int max_queue = 0;
    // Per-target circuit breaker on replication / forwarding sends: after
    // breaker_failures consecutive failures the target is failed fast for
    // breaker_open_for, then probed (half-open). 0 = disabled.
    int breaker_failures = 0;
    Duration breaker_open_for = sec(1);
    // Token-bucket budget for replication *retries* (the PR-2 backoff
    // loop): refills at retry_budget_per_sec up to retry_budget_capacity;
    // a denied retry fails the send with its last error instead of piling
    // more traffic onto a browned-out peer. 0 = unlimited.
    double retry_budget_per_sec = 0;
    double retry_budget_capacity = 10;
    // Bounded-staleness escape hatch: a parsed BoundedStaleness policy
    // (policy::builtin::bounded_staleness()). When set, a replica whose
    // serve lease lapsed — or whose forward target is unreachable — may
    // answer GETs from its local copy, flagged `stale`, while its last
    // authority contact is younger than the policy's staleness bound.
    std::optional<policy::PolicyDoc> degradation_policy;
    // ---- data integrity (docs/INTEGRITY.md) ----
    // Periodic self-healing scrub: verify every local copy against its
    // recorded checksum, exchange per-key digest summaries with the storage
    // peers, and repair divergence through kRepairFetch + LWW merge.
    // Zero disables the scrubber (seed behaviour).
    Duration scrub_interval = Duration::zero();
    // Wire/tier checksum verification on this peer is gated by
    // local.verify_checksums (the mutation test flips it on one replica).
  };

  // Callbacks to the controller (wired by WieraController; RPC is used for
  // data-plane paths, these are issued as controller RPCs by the caller).
  struct ControlPlane {
    // Ask Wiera to change the global consistency model.
    std::function<void(const std::string& to_policy)> request_policy_change;
    // Ask Wiera to migrate the primary.
    std::function<void(const std::string& new_primary)> request_primary_change;
  };

  WieraPeer(sim::Simulation& sim, net::Network& network,
            rpc::Registry& registry, Config config);
  ~WieraPeer() override;

  const std::string& id() const { return config_.instance_id; }
  const std::string& region() const { return config_.region; }
  ConsistencyMode mode() const { return config_.mode; }
  bool is_primary() const { return config_.is_primary; }
  const std::string& primary_instance() const {
    return config_.primary_instance;
  }
  tiera::TieraInstance& local() { return *local_; }
  rpc::Endpoint& endpoint() { return *endpoint_; }

  // Wire up sibling peers (ids include this peer; it is skipped on sends).
  // Replication defaults to all siblings; set_storage_peers narrows it to
  // the peers that can actually store (Fig. 6b's forwarding instances hold
  // no tiers and receive no update traffic).
  void set_peers(std::vector<std::string> peer_ids);
  void set_storage_peers(std::vector<std::string> storage_peer_ids);
  void set_control_plane(ControlPlane control) { control_ = std::move(control); }

  // Start background tasks (queue flusher, monitors, local policy timers).
  void start();
  void stop();

  // ---- data plane (also reachable via RPC) ----
  sim::Task<Result<PutResponse>> client_put(PutRequest request);
  sim::Task<Result<GetResponse>> client_get(GetRequest request);

  // Table 2 versioning surface (local list; removes propagate to the
  // storage peers so all replicas drop the object).
  std::vector<int64_t> version_list(const std::string& key) const;
  sim::Task<Status> remove_key(RemoveRequest request);

  // ---- management (invoked via RPC from the controller) ----
  // Block new ops, drain in-flight + queued updates, switch mode.
  sim::Task<Status> apply_consistency_change(ConsistencyMode mode);
  void apply_primary_change(const std::string& new_primary);

  // ---- crash / recovery (chaos harness) ----
  // Crash semantics at the instant of failure: volatile tier contents are
  // lost, the outbound replication queue is dropped, and the peer restarts
  // in recovering state (client ops refused in strong modes until catch-up
  // completes).
  void on_crash();
  bool recovering() const { return recovering_; }
  // True after a crash until catch-up completes: volatile tiers may have
  // lost committed data, so this peer can neither serve stale reads nor act
  // as a catch-up source of truth.
  bool data_suspect() const { return data_suspect_; }
  // Mark the peer recovering without a crash (controller-driven, e.g. when
  // the serve lease lapsed during a partition).
  void begin_recovery() { recovering_ = true; }
  // Pull every key's latest committed version from the first reachable
  // source and LWW-merge it, then enqueue our own latest committed versions
  // so the flusher pushes back out whatever durable writes the outage kept
  // local (bidirectional anti-entropy).
  sim::Task<Status> catch_up(std::vector<std::string> sources);
  // Clear recovering state and refresh the serve lease.
  void finish_recovery();

  // ---- cooperative drain (controller-driven; docs/SCENARIOS.md) ----
  // While draining, the availability gate refuses new client ops in every
  // mode (clients fail over within their retry budget) but replication and
  // sync handlers keep answering so the hand-off can finish.
  void enter_draining();
  // Abort path: resume serving after a failed hand-off.
  void exit_draining();
  bool draining() const { return draining_; }
  // Hand this peer's data off to the remaining replicas: flush the outbound
  // queue to empty, then (unless flush_only) enqueue the latest committed
  // version of every local key — catch_up's push-back half — and flush
  // again, so nothing this peer acked exists only here. Flush failures back
  // off and retry until `deadline`, riding the replication path's breaker /
  // retry-budget machinery underneath.
  sim::Task<Status> drain(TimePoint deadline, bool flush_only = false);
  // All remaining counter accessors are thin views over the sim-wide
  // metrics registry (wiera_*_total{instance=<id>}; docs/OBSERVABILITY.md).
  int64_t catch_ups_completed() const { return catch_ups_completed_->value(); }
  int64_t replication_retries() const {
    return replication_retries_->value();
  }

  // ---- data-integrity state (read by tests/benches) ----
  // Wire-level checksum rejections (put / replicate / repair payloads that
  // arrived corrupt). Tier-level failures live on the TieraInstance.
  int64_t wire_checksum_failures() const {
    return wire_checksum_failures_->value();
  }
  // Read-repairs served inline after a local kDataLoss.
  int64_t repairs() const { return repairs_->value(); }
  // Repairs applied by the periodic scrubber (local re-verify + digest
  // exchange), and completed scrub rounds.
  int64_t scrub_repairs() const { return scrub_repairs_->value(); }
  int64_t scrub_rounds() const { return scrub_rounds_->value(); }

  // ---- overload-robustness state (read by tests/benches) ----
  int64_t stale_serves() const { return stale_serves_->value(); }
  int64_t breaker_fast_fails() const { return breaker_fast_fails_->value(); }
  int64_t retry_budget_denials() const { return retry_budget_.denied(); }
  // nullptr when breakers are disabled or no traffic went to `target` yet.
  const CircuitBreaker* breaker(const std::string& target) const;

  // ---- hot-key analytics (docs/METRICS_PIPELINE.md) ----
  // Disabled unless config_.key_stats.enabled; fed by client_put/client_get
  // with the request's key and originating client (tenant).
  const obs::KeyStats& key_stats() const { return key_stats_; }

  // ---- monitor state (read by tests/benches) ----
  const LatencyHistogram& put_latency() const { return put_hist_->latency(); }
  const LatencyHistogram& get_latency() const { return get_hist_->latency(); }
  int64_t direct_puts() const { return direct_puts_->value(); }
  int64_t forwarded_puts_from(const std::string& origin) const;
  int64_t queue_depth() const { return static_cast<int64_t>(queue_->size()); }
  int64_t replications_sent() const { return replications_sent_->value(); }
  // Zero (not registered) unless config_.replicate_batch_max > 1.
  int64_t replication_batches() const {
    return replication_batches_ ? replication_batches_->value() : 0;
  }
  int64_t replication_batched_ops() const {
    return replication_batched_ops_ ? replication_batched_ops_->value() : 0;
  }
  int64_t replications_accepted() const {
    return replications_accepted_->value();
  }

  // InstanceHooks (§5.3 centralized cold data).
  sim::Task<bool> on_cold_object(const std::string& key) override;

 private:
  struct QueuedUpdate {
    ReplicateRequest update;
  };

  void register_handlers();

  sim::Task<Result<PutResponse>> put_multi_primaries(PutRequest& request);
  sim::Task<Result<PutResponse>> put_primary_backup(PutRequest& request);
  sim::Task<Result<PutResponse>> put_eventual(PutRequest& request);
  sim::Task<Result<PutResponse>> put_local_and_replicate(PutRequest& request,
                                                         bool synchronous);

  sim::Task<Status> replicate_to_all(ReplicateRequest update,
                                     TimePoint deadline = TimePoint::max(),
                                     TraceContext trace = {});
  sim::Task<Status> send_replicate(std::string peer_id, ReplicateRequest update,
                                   TimePoint deadline, TraceContext trace);
  // send_replicate minus the span bracket (one span covers all retries).
  sim::Task<Status> send_replicate_impl(std::string peer_id,
                                        ReplicateRequest update,
                                        TimePoint deadline, TraceContext span);

  // Telemetry shorthands (sim-wide tracer / event journal).
  obs::Tracer& tracer() { return sim_->telemetry().tracer(); }
  obs::Journal& journal() { return sim_->telemetry().journal(); }

  // Overload robustness helpers.
  // Breaker for a send target; nullptr when breakers are disabled.
  CircuitBreaker* breaker_for(const std::string& target);
  // Probation-last fan-out ordering (docs/HEALTH.md): stable-partition
  // healthy targets first so a slow peer's sends queue behind the healthy
  // acks on the shared NIC instead of ahead of them. No-op when health
  // detection is off.
  void order_targets_by_health(std::vector<std::string>& targets) const;
  // Context carrying `deadline` plus the current trace identity.
  static Context ctx_for(TimePoint deadline, TraceContext trace = {});
  // Whether a stale local read may substitute for an unreachable
  // primary/forward-target right now (degradation policy present, local
  // data not wiped by a crash, authority contact within the bound).
  bool stale_read_allowed() const;
  // Local read for the bounded-staleness path; flags the response stale.
  sim::Task<Result<GetResponse>> stale_local_get(const GetRequest& request);
  sim::Task<void> queue_flusher();
  sim::Task<Status> flush_queue();
  // ---- replication coalescing (docs/PERFORMANCE.md) ----
  // Batched flush body: drains up to `budget` queued updates in chunks of
  // replicate_batch_max, one wire message per target per chunk. Failed ops
  // are requeued individually.
  sim::Task<Status> flush_batched(size_t budget, TraceContext flush_trace);
  // One coalesced fan-out: `chunk` to every storage peer (membership may
  // widen mid-flight, same loop as replicate_to_all). op_status[i] is the
  // worst outcome of chunk[i] across targets.
  sim::Task<Status> replicate_batch_to_all(std::vector<QueuedUpdate>& chunk,
                                           std::vector<Status>& op_status,
                                           TraceContext flush_trace);
  // One batch message to one target, with the send_replicate_impl retry/
  // breaker/budget semantics; returns per-op status (size == chunk size).
  sim::Task<std::vector<Status>> send_replicate_batch(
      std::string peer_id, const std::vector<QueuedUpdate>& chunk,
      TraceContext flush_trace);
  // Size-based flush trigger: when coalescing is on and the queue reached
  // replicate_batch_max, flush now instead of waiting for the timer.
  void maybe_trigger_size_flush();
  sim::Task<void> size_triggered_flush();

  // ---- integrity: read-repair and scrub (docs/INTEGRITY.md) ----
  // Inline read-repair: every local copy of the requested object failed its
  // checksum (and was quarantined), so re-fetch from a healthy replica,
  // LWW-merge it back, and serve the repaired payload.
  sim::Task<Result<GetResponse>> repair_get(GetRequest request);
  // Fetch (key, version; 0 = latest) from `source`, verify the payload
  // checksum, and LWW-merge it locally. ok = merged or already newer.
  sim::Task<Status> fetch_and_merge(std::string source, std::string key,
                                    int64_t version, bool from_scrub,
                                    TraceContext trace = {});
  sim::Task<void> scrub_loop();
  sim::Task<void> run_scrub();

  // Block-and-queue support.
  sim::Task<void> wait_if_blocked();
  void op_started() { in_flight_++; }
  void op_finished();

  // Serve-lease enforcement: non-ok when this peer must refuse client
  // operations (recovering, or the lease lapsed in a strong mode).
  Status availability_gate();
  sim::Task<void> availability_loop();

  // Monitors.
  void observe_put_latency(Duration latency);
  void record_put_source(const std::string& origin, bool forwarded);
  sim::Task<void> requests_monitor_loop();
  void evaluate_requests_monitor();

  sim::Simulation* sim_;
  net::Network* network_;
  Config config_;
  std::unique_ptr<rpc::Endpoint> endpoint_;
  std::unique_ptr<tiera::TieraInstance> local_;
  std::unique_ptr<coord::LockClient> lock_client_;
  std::vector<std::string> peer_ids_;          // excludes self
  std::vector<std::string> storage_peer_ids_;  // replication targets
  ControlPlane control_;

  std::unique_ptr<sim::Channel<QueuedUpdate>> queue_;
  bool started_ = false;
  bool stopping_ = false;

  // Crash/recovery state.
  bool recovering_ = false;
  TimePoint last_contact_;  // last successful lease-authority round trip

  // Cooperative-drain state: gate refuses client ops while set.
  bool draining_ = false;

  // Registry-backed counters/histograms (set once in the constructor; the
  // instruments live in the sim's obs::Registry and outlive this peer).
  obs::Registry* metrics_ = nullptr;
  obs::Counter* catch_ups_completed_ = nullptr;
  obs::Counter* replication_retries_ = nullptr;

  // Overload-robustness state (docs/OVERLOAD.md).
  std::map<std::string, CircuitBreaker> breakers_;  // per send target
  RetryBudget retry_budget_;
  Duration stale_bound_ = Duration::zero();  // from degradation_policy
  bool allow_stale_ = false;
  // Set on crash, cleared when recovery finishes: a crashed peer lost its
  // volatile tiers, so its local copy must not be served as merely stale.
  bool data_suspect_ = false;
  obs::Counter* stale_serves_ = nullptr;
  obs::Counter* breaker_fast_fails_ = nullptr;
  obs::Counter* breaker_transitions_ = nullptr;

  // Data-integrity state (docs/INTEGRITY.md).
  obs::Counter* wire_checksum_failures_ = nullptr;
  obs::Counter* repairs_ = nullptr;
  obs::Counter* scrub_repairs_ = nullptr;
  obs::Counter* scrub_rounds_ = nullptr;

  // Block-and-queue state for consistency changes.
  bool blocking_ = false;
  int64_t in_flight_ = 0;
  std::unique_ptr<sim::Event> unblocked_;
  std::unique_ptr<sim::Event> drained_;

  // Latency monitor (Fig. 5a) state.
  Duration latency_threshold_ = Duration::max();
  TimePoint streak_start_;
  bool streak_violating_ = false;
  bool streak_valid_ = false;

  // Requests monitor (Fig. 5b) state: put history over a sliding window.
  struct PutEvent {
    TimePoint time;
    std::string origin;
    bool forwarded;
  };
  std::deque<PutEvent> put_history_;
  TimePoint requests_condition_start_;
  bool requests_condition_active_ = false;

  // §5.3 cold index: keys shipped to the centralized cold peer.
  std::set<std::string> cold_remote_keys_;

  // Hot-key analytics sketch (docs/METRICS_PIPELINE.md); no-op when the
  // config leaves it disabled.
  obs::KeyStats key_stats_;

  obs::Histogram* put_hist_ = nullptr;
  obs::Histogram* get_hist_ = nullptr;
  obs::Counter* direct_puts_ = nullptr;
  obs::Counter* replications_sent_ = nullptr;
  obs::Counter* replications_accepted_ = nullptr;
  // Coalescing: wire messages sent / logical ops carried in them.
  obs::Counter* replication_batches_ = nullptr;
  obs::Counter* replication_batched_ops_ = nullptr;
  bool size_flush_inflight_ = false;
};

}  // namespace wiera::geo
