#include "wiera/health.h"

#include <algorithm>
#include <cmath>

#include "common/logging.h"

namespace wiera::geo {

namespace {
constexpr char kComponent[] = "health";
// ln(10): φ-accrual assumes exponentially distributed inter-arrival, so
// φ(Δ) = -log10(exp(-Δ/mean)) = Δ / (mean * ln 10).
constexpr double kLn10 = 2.302585092994046;
}  // namespace

HealthTracker::HealthTracker(obs::Registry& registry, Config config)
    : config_(config) {
  // Lazily registered: a disabled tracker must leave the metrics snapshot
  // byte-identical to the seed (same pattern as the batching counters).
  if (config_.enabled) {
    probation_entries_ =
        registry.counter("wiera_health_probation_entries_total");
    probation_exits_ = registry.counter("wiera_health_probation_exits_total");
  }
}

void HealthTracker::record_ping(const std::string& peer, bool ok,
                                TimePoint now) {
  if (!config_.enabled) return;
  PeerHealth& h = peers_[peer];
  if (ok) {
    if (h.ping_samples > 0) {
      const Duration interval = now - h.last_heard;
      h.interval_ewma =
          h.interval_ewma == Duration::zero()
              ? interval
              : usec(static_cast<int64_t>(
                    config_.ewma_alpha * static_cast<double>(interval.us()) +
                    (1.0 - config_.ewma_alpha) *
                        static_cast<double>(h.interval_ewma.us())));
    }
    h.last_heard = now;
    h.ping_samples++;
    h.consecutive_failures = 0;
  } else {
    h.consecutive_failures++;
  }
  evaluate(peer, h, now);
}

void HealthTracker::record_latency(const std::string& peer, Duration latency,
                                   TimePoint now) {
  if (!config_.enabled) return;
  PeerHealth& h = peers_[peer];
  h.latency_ewma =
      h.latency_samples == 0
          ? latency
          : usec(static_cast<int64_t>(
                config_.ewma_alpha * static_cast<double>(latency.us()) +
                (1.0 - config_.ewma_alpha) *
                    static_cast<double>(h.latency_ewma.us())));
  h.latency_samples++;
  // The baseline is the best EWMA this peer has ever sustained: comparing a
  // peer against itself keeps a far replica's honest distance from reading
  // as degradation.
  if (h.latency_samples >= config_.min_samples &&
      (h.latency_baseline == Duration::zero() ||
       h.latency_ewma < h.latency_baseline)) {
    h.latency_baseline = h.latency_ewma;
  }
  evaluate(peer, h, now);
}

double HealthTracker::phi_of(const PeerHealth& h, TimePoint now) const {
  if (h.ping_samples < config_.min_samples ||
      h.interval_ewma == Duration::zero()) {
    return 0.0;
  }
  const Duration silence = now - h.last_heard;
  if (silence <= Duration::zero()) return 0.0;
  return static_cast<double>(silence.us()) /
         (static_cast<double>(h.interval_ewma.us()) * kLn10);
}

double HealthTracker::ratio_of(const PeerHealth& h) const {
  if (h.latency_samples < config_.min_samples ||
      h.latency_baseline == Duration::zero()) {
    return 1.0;
  }
  return static_cast<double>(h.latency_ewma.us()) /
         static_cast<double>(h.latency_baseline.us());
}

void HealthTracker::evaluate(const std::string& peer, PeerHealth& h,
                             TimePoint now) {
  const double phi_now = phi_of(h, now);
  const double ratio = ratio_of(h);
  const bool ping_suspect = config_.ping_failures_suspect > 0 &&
                            h.consecutive_failures >=
                                config_.ping_failures_suspect;
  if (h.state == State::kHealthy) {
    if (phi_now >= config_.phi_suspect || ratio >= config_.degraded_factor ||
        ping_suspect) {
      h.state = State::kProbation;
      h.probation_since = now;
      if (probation_entries_ != nullptr) probation_entries_->inc();
      WLOG_INFO(kComponent)
          << peer << " enters probation (phi=" << phi_now
          << " latency_ratio=" << ratio
          << " consecutive_ping_failures=" << h.consecutive_failures << ")";
    }
    return;
  }
  // Probation exit needs every signal back under the recovery thresholds
  // (hysteresis) and the minimum dwell served.
  if (now - h.probation_since < config_.probation_min_dwell) return;
  if (phi_now <= config_.phi_recover &&
      ratio < config_.degraded_factor / 2.0 && !ping_suspect) {
    h.state = State::kHealthy;
    if (probation_exits_ != nullptr) probation_exits_->inc();
    WLOG_INFO(kComponent) << peer << " leaves probation";
  }
}

double HealthTracker::phi(const std::string& peer, TimePoint now) const {
  auto it = peers_.find(peer);
  return it == peers_.end() ? 0.0 : phi_of(it->second, now);
}

double HealthTracker::latency_ratio(const std::string& peer) const {
  auto it = peers_.find(peer);
  return it == peers_.end() ? 1.0 : ratio_of(it->second);
}

HealthTracker::State HealthTracker::state(const std::string& peer) const {
  auto it = peers_.find(peer);
  return it == peers_.end() ? State::kHealthy : it->second.state;
}

bool HealthTracker::in_probation(const std::string& peer) const {
  return state(peer) == State::kProbation;
}

int HealthTracker::rank_penalty(const std::string& peer) const {
  if (!config_.enabled) return 0;
  auto it = peers_.find(peer);
  if (it == peers_.end()) return 0;  // never observed: NEUTRAL
  const PeerHealth& h = it->second;
  if (h.state == State::kProbation) return 2;
  // Degraded-but-not-probation: above half the probation threshold.
  if (ratio_of(h) >= config_.degraded_factor / 2.0) return 1;
  return 0;
}

std::vector<std::string> HealthTracker::probation_peers() const {
  std::vector<std::string> out;
  for (const auto& [peer, h] : peers_) {
    if (h.state == State::kProbation) out.push_back(peer);
  }
  return out;
}

}  // namespace wiera::geo
