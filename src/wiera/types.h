// Shared types for the Wiera layer: consistency modes and protocol
// derivation from parsed global policies.
#pragma once

#include <string>
#include <string_view>

#include "common/status.h"
#include "policy/ast.h"

namespace wiera::geo {

// The consistency protocols of §3.3.1. PrimaryBackup comes in two flavours
// depending on how the primary propagates updates: synchronous `copy`
// (consistent reads everywhere) or asynchronous `queue` (better put
// latency; §3.3.1 and the Fig. 8 experiment use this).
enum class ConsistencyMode {
  kMultiPrimaries,
  kPrimaryBackupSync,
  kPrimaryBackupAsync,
  kEventual,
};

std::string_view consistency_mode_name(ConsistencyMode mode);
Result<ConsistencyMode> consistency_mode_from_name(std::string_view name);

// Inspect a Wiera policy document's insert rule and derive which protocol
// it specifies:
//   lock(...) ... copy(to:all_regions)          -> MultiPrimaries
//   store(to:local_instance), queue(all_regions)-> Eventual
//   if(isPrimary) store+copy else forward       -> PrimaryBackupSync
//   if(isPrimary) store+queue else forward      -> PrimaryBackupAsync
//   if(isPrimary) store else forward            -> PrimaryBackupSync with
//                                                  no replication targets
//                                                  (Fig. 6b SimplerConsistency)
Result<ConsistencyMode> derive_consistency_mode(const policy::PolicyDoc& doc);

}  // namespace wiera::geo
