#include "wiera/types.h"

namespace wiera::geo {

std::string_view consistency_mode_name(ConsistencyMode mode) {
  switch (mode) {
    case ConsistencyMode::kMultiPrimaries: return "MultiPrimariesConsistency";
    case ConsistencyMode::kPrimaryBackupSync: return "PrimaryBackupConsistency";
    case ConsistencyMode::kPrimaryBackupAsync:
      return "PrimaryBackupAsyncConsistency";
    case ConsistencyMode::kEventual: return "EventualConsistency";
  }
  return "?";
}

Result<ConsistencyMode> consistency_mode_from_name(std::string_view name) {
  if (name == "MultiPrimariesConsistency" || name == "MultiPrimaries") {
    return ConsistencyMode::kMultiPrimaries;
  }
  if (name == "PrimaryBackupConsistency" || name == "PrimaryBackup") {
    return ConsistencyMode::kPrimaryBackupSync;
  }
  if (name == "PrimaryBackupAsyncConsistency" ||
      name == "PrimaryBackupAsync") {
    return ConsistencyMode::kPrimaryBackupAsync;
  }
  if (name == "EventualConsistency" || name == "Eventual") {
    return ConsistencyMode::kEventual;
  }
  return invalid_argument("unknown consistency mode: " + std::string(name));
}

namespace {

// Does this statement list (recursively) contain an action with this name?
bool contains_action(const std::vector<policy::Stmt>& stmts,
                     std::string_view name) {
  for (const policy::Stmt& stmt : stmts) {
    if (stmt.is_action() && stmt.action().name == name) return true;
    if (stmt.is_if()) {
      for (const auto& branch : stmt.if_stmt().branches) {
        if (contains_action(branch.body, name)) return true;
      }
    }
  }
  return false;
}

bool tests_is_primary(const std::vector<policy::Stmt>& stmts) {
  for (const policy::Stmt& stmt : stmts) {
    if (!stmt.is_if()) continue;
    for (const auto& branch : stmt.if_stmt().branches) {
      if (branch.condition == nullptr) continue;
      const std::string s = branch.condition->to_string();
      if (s.find("local_instance.isPrimary") != std::string::npos) {
        return true;
      }
    }
  }
  return false;
}

}  // namespace

Result<ConsistencyMode> derive_consistency_mode(const policy::PolicyDoc& doc) {
  const policy::EventRule* insert_rule = nullptr;
  for (const auto& rule : doc.events) {
    if (rule.trigger->is_path() &&
        rule.trigger->path().dotted() == "insert.into") {
      insert_rule = &rule;
      break;
    }
  }
  if (insert_rule == nullptr) {
    // No replication protocol specified (e.g. Fig. 6a's single-region
    // ReducedCostPolicy, which only has a cold-data rule): store locally,
    // propagate opportunistically — eventual consistency.
    return ConsistencyMode::kEventual;
  }
  const auto& stmts = insert_rule->response;

  if (contains_action(stmts, "lock")) {
    return ConsistencyMode::kMultiPrimaries;
  }
  if (tests_is_primary(stmts)) {
    return contains_action(stmts, "queue")
               ? ConsistencyMode::kPrimaryBackupAsync
               : ConsistencyMode::kPrimaryBackupSync;
  }
  if (contains_action(stmts, "queue")) {
    return ConsistencyMode::kEventual;
  }
  return invalid_argument("cannot derive a consistency protocol from " +
                          doc.name);
}

}  // namespace wiera::geo
