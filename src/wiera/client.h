// WieraClient: the application-side handle.
//
// An application connects to the closest Tiera instance (the controller
// returns the instance list with the closest first, §4.1 step 8) and issues
// PUT/GET. If the closest instance is down it retries against the next
// closest, and so on (§4.4). Latency is recorded as the application
// perceives it: from issuing the request to receiving the response.
#pragma once

#include <functional>
#include <memory>
#include <string>
#include <vector>

#include "common/histogram.h"
#include "wiera/messages.h"

namespace wiera::geo {

class WieraClient {
 public:
  // `peer_ids` is sorted by proximity automatically (base one-way latency
  // from the client's node).
  WieraClient(sim::Simulation& sim, net::Network& network,
              rpc::Registry& registry, std::string client_id,
              std::string node, std::vector<std::string> peer_ids);

  const std::string& id() const { return client_id_; }
  const std::string& closest_peer() const { return peer_ids_.front(); }
  const std::vector<std::string>& peer_order() const { return peer_ids_; }

  sim::Task<Result<PutResponse>> put(std::string key, Blob value);
  sim::Task<Result<GetResponse>> get(std::string key);
  sim::Task<Result<GetResponse>> get_version(std::string key,
                                             int64_t version);
  // Table 2: update(key, version, object) — write an explicit version.
  sim::Task<Result<PutResponse>> update(std::string key, int64_t version,
                                        Blob value);
  // Table 2: getVersionList / remove / removeVersion. Removes propagate to
  // every replica through the contacted instance.
  sim::Task<Result<std::vector<int64_t>>> get_version_list(std::string key);
  sim::Task<Status> remove(std::string key);
  sim::Task<Status> remove_version(std::string key, int64_t version);

  const LatencyHistogram& put_latency() const { return put_hist_; }
  const LatencyHistogram& get_latency() const { return get_hist_; }
  int64_t failovers() const { return failovers_; }

 private:
  // Issue `rpc_method` against the preferred peer; on kUnavailable demote
  // that peer to the back of the preference order (counting one failover)
  // and try the next, so a crashed primary costs exactly one failover
  // instead of one per subsequent operation (§4.4).
  sim::Task<Result<rpc::Message>> call_any(
      std::string rpc_method, std::function<rpc::Message()> make_request);

  sim::Simulation* sim_;
  std::string client_id_;
  std::unique_ptr<rpc::Endpoint> endpoint_;
  std::vector<std::string> peer_ids_;
  LatencyHistogram put_hist_;
  LatencyHistogram get_hist_;
  int64_t failovers_ = 0;
};

}  // namespace wiera::geo
