// WieraClient: the application-side handle.
//
// An application connects to the closest Tiera instance (the controller
// returns the instance list with the closest first, §4.1 step 8) and issues
// PUT/GET. If the closest instance is down it retries against the next
// closest, and so on (§4.4). Latency is recorded as the application
// perceives it: from issuing the request to receiving the response.
//
// Request lifecycle (docs/OVERLOAD.md): every operation may carry an
// absolute deadline covering the whole attempt sequence — failovers do not
// restart the clock — and failover retries spend a token-bucket budget so a
// browned-out cluster is not hammered by retry storms. GETs can optionally
// be hedged: when the primary attempt is slower than the observed latency
// percentile, one backup request is sent to the second-closest replica and
// whichever answers first wins.
#pragma once

#include <functional>
#include <memory>
#include <string>
#include <vector>

#include "common/context.h"
#include "common/histogram.h"
#include "obs/keystats.h"
#include "sim/simulation.h"
#include "wiera/health.h"
#include "wiera/messages.h"

namespace wiera::geo {

class WieraClient {
 public:
  struct Config {
    // Absolute budget for one client operation including failovers.
    // Zero = no deadline (seed behaviour).
    Duration op_deadline = Duration::zero();
    // Token bucket spent by failover retries. 0 = unlimited.
    double retry_budget_per_sec = 0;
    double retry_budget_capacity = 10;
    // Hedged GETs: after hedge_min_samples observed gets, a get that is
    // still pending past the hedge_percentile latency (never sooner than
    // hedge_min_delay) sends one backup request to the second peer.
    bool hedge_gets = false;
    int hedge_min_samples = 20;
    double hedge_percentile = 0.95;
    Duration hedge_min_delay = msec(10);
    // Per-attempt bound inside the failover loop: an attempt still silent
    // after this long fails over to the next replica (spending a retry-
    // budget token) instead of letting one black-holed or draining peer
    // burn the whole op deadline before the client ever tries a healthy
    // one (docs/SCENARIOS.md). Zero = off (seed behaviour: only the op
    // deadline cuts an attempt short).
    Duration failover_attempt_timeout = Duration::zero();
    // Health-scored replica ranking (docs/HEALTH.md): when set, each
    // operation stable-sorts the replica preference order by the tracker's
    // rank penalty (probation last), successful attempt latencies feed the
    // per-target EWMA, and hedged GETs fire at hedge_min_delay — skipping
    // the percentile wait — when the preferred replica is not clean.
    // Null = seed behaviour.
    HealthTracker* health = nullptr;
    // Client-side hot-key analytics (docs/METRICS_PIPELINE.md): tracks the
    // keys this application touches, windowed on the virtual clock. The
    // tenant dimension is the client's own id. Default-off.
    obs::KeyStats::Config key_stats;
  };

  // `peer_ids` is sorted by proximity automatically (base one-way latency
  // from the client's node).
  WieraClient(sim::Simulation& sim, net::Network& network,
              rpc::Registry& registry, std::string client_id,
              std::string node, std::vector<std::string> peer_ids,
              Config config);
  WieraClient(sim::Simulation& sim, net::Network& network,
              rpc::Registry& registry, std::string client_id,
              std::string node, std::vector<std::string> peer_ids)
      : WieraClient(sim, network, registry, std::move(client_id),
                    std::move(node), std::move(peer_ids), Config()) {}

  const std::string& id() const { return client_id_; }
  const std::string& closest_peer() const { return peer_ids_.front(); }
  const std::vector<std::string>& peer_order() const { return peer_ids_; }

  sim::Task<Result<PutResponse>> put(std::string key, Blob value);
  sim::Task<Result<GetResponse>> get(std::string key);
  sim::Task<Result<GetResponse>> get_version(std::string key,
                                             int64_t version);
  // Table 2: update(key, version, object) — write an explicit version.
  sim::Task<Result<PutResponse>> update(std::string key, int64_t version,
                                        Blob value);
  // Table 2: getVersionList / remove / removeVersion. Removes propagate to
  // every replica through the contacted instance.
  sim::Task<Result<std::vector<int64_t>>> get_version_list(std::string key);
  sim::Task<Status> remove(std::string key);
  sim::Task<Status> remove_version(std::string key, int64_t version);

  // Thin views over the sim-wide metrics registry
  // (wiera_client_*{client=...}; docs/OBSERVABILITY.md).
  const LatencyHistogram& put_latency() const { return put_hist_->latency(); }
  const LatencyHistogram& get_latency() const { return get_hist_->latency(); }
  int64_t failovers() const { return failovers_->value(); }
  // Failovers forced by failover_attempt_timeout (subset of failovers()).
  int64_t attempt_timeouts() const { return attempt_timeouts_->value(); }
  int64_t hedged_gets() const { return hedged_gets_->value(); }
  int64_t hedged_wins() const { return hedged_wins_->value(); }
  int64_t retry_budget_denials() const { return retry_budget_.denied(); }
  // Responses the client rejected because their checksum did not match the
  // delivered bytes (corrupted on the response leg).
  int64_t checksum_failures() const { return checksum_failures_->value(); }
  // Trace id of the most recently *started* operation (the consistency
  // oracle stamps it onto the op it records, so a violation names the trace
  // that can be reassembled with obs::TraceView).
  uint64_t last_trace_id() const { return last_trace_id_; }
  // Hot-key sketch over this client's own accesses (disabled by default).
  const obs::KeyStats& key_stats() const { return key_stats_; }

 private:
  // Issue `rpc_method` against the preferred peer; on kUnavailable (peer
  // down) or kResourceExhausted (peer shedding load) demote that peer to
  // the back of the preference order (counting one failover) and try the
  // next, so a crashed primary costs exactly one failover instead of one
  // per subsequent operation (§4.4). Each failover spends a retry-budget
  // token; kDeadlineExceeded is final — the deadline covers all attempts —
  // but the peer that burned it is still demoted for future operations.
  sim::Task<Result<rpc::Message>> call_any(
      std::string rpc_method, std::function<rpc::Message()> make_request,
      TraceContext trace = {});
  sim::Task<Result<rpc::Message>> call_any_ctx(
      std::string rpc_method, std::function<rpc::Message()> make_request,
      Context ctx);
  // Hedged GET: race the normal failover path against one delayed backup
  // request to the second-closest peer.
  sim::Task<Result<rpc::Message>> call_hedged(GetRequest request,
                                              TraceContext trace);
  bool hedge_ready() const;
  // Stable-sort peer_ids_ by health rank penalty (docs/HEALTH.md): probation
  // peers sink to the back, degraded peers behind clean ones, and peers with
  // insufficient samples keep their existing (proximity / rotation) slot —
  // health never reorders equally-ranked replicas. No-op without a tracker.
  void rank_peers_by_health();
  Context make_ctx(TraceContext trace = {}) const;

  // Root-span bracket around one client operation: begin_op starts a fresh
  // trace (recorded in last_trace_id_), finish_op closes it with the final
  // status and journals failed operations with their trace identity.
  TraceContext begin_op(const char* name);
  void finish_op(std::string_view op_kind, const TraceContext& span,
                 const Status& st);
  // Op bodies minus the root-span bracket.
  sim::Task<Result<PutResponse>> update_impl(std::string key, int64_t version,
                                             Blob value, TraceContext op);
  sim::Task<Result<GetResponse>> get_version_impl(std::string key,
                                                  int64_t version,
                                                  TraceContext op);
  sim::Task<Status> remove_version_impl(std::string key, int64_t version,
                                        TraceContext op);

  obs::Tracer& tracer() { return sim_->telemetry().tracer(); }
  obs::Journal& journal() { return sim_->telemetry().journal(); }

  sim::Simulation* sim_;
  std::string client_id_;
  Config config_;
  std::unique_ptr<rpc::Endpoint> endpoint_;
  std::vector<std::string> peer_ids_;
  // Registry-backed instruments (created in the constructor).
  obs::Registry* metrics_ = nullptr;
  obs::Histogram* put_hist_ = nullptr;
  obs::Histogram* get_hist_ = nullptr;
  obs::Counter* failovers_ = nullptr;
  obs::Counter* attempt_timeouts_ = nullptr;
  obs::Counter* hedged_gets_ = nullptr;
  obs::Counter* hedged_wins_ = nullptr;
  obs::Counter* checksum_failures_ = nullptr;
  RetryBudget retry_budget_;
  obs::KeyStats key_stats_;
  uint64_t last_trace_id_ = 0;
};

}  // namespace wiera::geo
