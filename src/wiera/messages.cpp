#include "wiera/messages.h"

namespace wiera::geo {

rpc::Message encode(const PutRequest& m) {
  rpc::WireWriter w;
  w.put_string(m.key);
  w.put_blob(m.value);
  w.put_string(m.client);
  w.put_bool(m.forwarded);
  w.put_bool(m.direct);
  w.put_i64(m.version);
  w.put_u64(m.checksum);
  return rpc::Message{w.take_body()};
}

Result<PutRequest> decode_put_request(const rpc::Message& msg) {
  rpc::WireReader r(msg.body);
  PutRequest out;
  out.key = r.get_string();
  out.value = r.get_blob();
  out.client = r.get_string();
  out.forwarded = r.get_bool();
  out.direct = r.get_bool();
  out.version = r.get_i64();
  out.checksum = r.get_u64();
  if (!r.ok()) return r.status();
  return out;
}

rpc::Message encode(const PutResponse& m) {
  rpc::WireWriter w;
  w.put_i64(m.version);
  w.put_u64(m.checksum);
  return rpc::Message{w.take_body()};
}

Result<PutResponse> decode_put_response(const rpc::Message& msg) {
  rpc::WireReader r(msg.body);
  PutResponse out;
  out.version = r.get_i64();
  out.checksum = r.get_u64();
  if (!r.ok()) return r.status();
  return out;
}

rpc::Message encode(const GetRequest& m) {
  rpc::WireWriter w;
  w.put_string(m.key);
  w.put_i64(m.version);
  w.put_string(m.client);
  w.put_bool(m.direct);
  w.put_u64(m.checksum);
  return rpc::Message{w.take_body()};
}

Result<GetRequest> decode_get_request(const rpc::Message& msg) {
  rpc::WireReader r(msg.body);
  GetRequest out;
  out.key = r.get_string();
  out.version = r.get_i64();
  out.client = r.get_string();
  out.direct = r.get_bool();
  out.checksum = r.get_u64();
  if (!r.ok()) return r.status();
  return out;
}

rpc::Message encode(const GetResponse& m) {
  rpc::WireWriter w;
  w.put_blob(m.value);
  w.put_i64(m.version);
  w.put_string(m.served_by);
  w.put_bool(m.stale);
  w.put_u64(m.checksum);
  return rpc::Message{w.take_body()};
}

Result<GetResponse> decode_get_response(const rpc::Message& msg) {
  rpc::WireReader r(msg.body);
  GetResponse out;
  out.value = r.get_blob();
  out.version = r.get_i64();
  out.served_by = r.get_string();
  out.stale = r.get_bool();
  out.checksum = r.get_u64();
  if (!r.ok()) return r.status();
  return out;
}

rpc::Message encode(const ReplicateRequest& m) {
  rpc::WireWriter w;
  w.put_string(m.key);
  w.put_i64(m.version);
  w.put_blob(m.value);
  w.put_i64(m.last_modified.us());
  w.put_string(m.origin);
  w.put_u64(m.checksum);
  return rpc::Message{w.take_body()};
}

Result<ReplicateRequest> decode_replicate_request(const rpc::Message& msg) {
  rpc::WireReader r(msg.body);
  ReplicateRequest out;
  out.key = r.get_string();
  out.version = r.get_i64();
  out.value = r.get_blob();
  out.last_modified = TimePoint(r.get_i64());
  out.origin = r.get_string();
  out.checksum = r.get_u64();
  if (!r.ok()) return r.status();
  return out;
}

rpc::Message encode(const ReplicateResponse& m) {
  rpc::WireWriter w;
  w.put_bool(m.accepted);
  return rpc::Message{w.take_body()};
}

Result<ReplicateResponse> decode_replicate_response(const rpc::Message& msg) {
  rpc::WireReader r(msg.body);
  ReplicateResponse out;
  out.accepted = r.get_bool();
  if (!r.ok()) return r.status();
  return out;
}

rpc::Message encode(const ReplicateBatchRequest& m) {
  rpc::WireWriter w;
  w.put_string(m.origin);
  w.put_u32(static_cast<uint32_t>(m.ops.size()));
  for (const ReplicateRequest& e : m.ops) {
    w.put_string(e.key);
    w.put_i64(e.version);
    w.put_blob(e.value);
    w.put_i64(e.last_modified.us());
    w.put_string(e.origin);
    w.put_u64(e.checksum);
  }
  return rpc::Message{w.take_body()};
}

Result<ReplicateBatchRequest> decode_replicate_batch_request(
    const rpc::Message& msg) {
  rpc::WireReader r(msg.body);
  ReplicateBatchRequest out;
  out.origin = r.get_string();
  const uint32_t n = r.get_u32();
  for (uint32_t i = 0; i < n && r.ok(); ++i) {
    ReplicateRequest e;
    e.key = r.get_string();
    e.version = r.get_i64();
    e.value = r.get_blob();
    e.last_modified = TimePoint(r.get_i64());
    e.origin = r.get_string();
    e.checksum = r.get_u64();
    out.ops.push_back(std::move(e));
  }
  if (!r.ok()) return r.status();
  return out;
}

rpc::Message encode(const ReplicateBatchResponse& m) {
  rpc::WireWriter w;
  w.put_u32(static_cast<uint32_t>(m.results.size()));
  for (const ReplicateBatchResult& res : m.results) {
    w.put_u32(static_cast<uint32_t>(res.code));
    w.put_bool(res.accepted);
  }
  return rpc::Message{w.take_body()};
}

Result<ReplicateBatchResponse> decode_replicate_batch_response(
    const rpc::Message& msg) {
  rpc::WireReader r(msg.body);
  ReplicateBatchResponse out;
  const uint32_t n = r.get_u32();
  for (uint32_t i = 0; i < n && r.ok(); ++i) {
    ReplicateBatchResult res;
    res.code = static_cast<StatusCode>(r.get_u32());
    res.accepted = r.get_bool();
    out.results.push_back(res);
  }
  if (!r.ok()) return r.status();
  return out;
}

rpc::Message encode(const SetConsistencyRequest& m) {
  rpc::WireWriter w;
  w.put_u32(static_cast<uint32_t>(m.mode));
  return rpc::Message{w.take_body()};
}

Result<SetConsistencyRequest> decode_set_consistency(const rpc::Message& msg) {
  rpc::WireReader r(msg.body);
  SetConsistencyRequest out;
  out.mode = static_cast<ConsistencyMode>(r.get_u32());
  if (!r.ok()) return r.status();
  return out;
}

rpc::Message encode(const SetPrimaryRequest& m) {
  rpc::WireWriter w;
  w.put_string(m.primary_instance);
  return rpc::Message{w.take_body()};
}

Result<SetPrimaryRequest> decode_set_primary(const rpc::Message& msg) {
  rpc::WireReader r(msg.body);
  SetPrimaryRequest out;
  out.primary_instance = r.get_string();
  if (!r.ok()) return r.status();
  return out;
}

rpc::Message encode(const VersionListResponse& m) {
  rpc::WireWriter w;
  w.put_u32(static_cast<uint32_t>(m.versions.size()));
  for (int64_t v : m.versions) w.put_i64(v);
  return rpc::Message{w.take_body()};
}

Result<VersionListResponse> decode_version_list(const rpc::Message& msg) {
  rpc::WireReader r(msg.body);
  VersionListResponse out;
  const uint32_t n = r.get_u32();
  for (uint32_t i = 0; i < n && r.ok(); ++i) {
    out.versions.push_back(r.get_i64());
  }
  if (!r.ok()) return r.status();
  return out;
}

rpc::Message encode(const RemoveRequest& m) {
  rpc::WireWriter w;
  w.put_string(m.key);
  w.put_i64(m.version);
  w.put_bool(m.propagate);
  return rpc::Message{w.take_body()};
}

Result<RemoveRequest> decode_remove_request(const rpc::Message& msg) {
  rpc::WireReader r(msg.body);
  RemoveRequest out;
  out.key = r.get_string();
  out.version = r.get_i64();
  out.propagate = r.get_bool();
  if (!r.ok()) return r.status();
  return out;
}

rpc::Message encode(const SyncPullRequest& m) {
  rpc::WireWriter w;
  w.put_string(m.requester);
  return rpc::Message{w.take_body()};
}

Result<SyncPullRequest> decode_sync_pull_request(const rpc::Message& msg) {
  rpc::WireReader r(msg.body);
  SyncPullRequest out;
  out.requester = r.get_string();
  if (!r.ok()) return r.status();
  return out;
}

rpc::Message encode(const SyncPullResponse& m) {
  rpc::WireWriter w;
  w.put_u32(static_cast<uint32_t>(m.entries.size()));
  for (const ReplicateRequest& e : m.entries) {
    w.put_string(e.key);
    w.put_i64(e.version);
    w.put_blob(e.value);
    w.put_i64(e.last_modified.us());
    w.put_string(e.origin);
    w.put_u64(e.checksum);
  }
  return rpc::Message{w.take_body()};
}

Result<SyncPullResponse> decode_sync_pull_response(const rpc::Message& msg) {
  rpc::WireReader r(msg.body);
  SyncPullResponse out;
  const uint32_t n = r.get_u32();
  for (uint32_t i = 0; i < n && r.ok(); ++i) {
    ReplicateRequest e;
    e.key = r.get_string();
    e.version = r.get_i64();
    e.value = r.get_blob();
    e.last_modified = TimePoint(r.get_i64());
    e.origin = r.get_string();
    e.checksum = r.get_u64();
    out.entries.push_back(std::move(e));
  }
  if (!r.ok()) return r.status();
  return out;
}

rpc::Message encode(const ScrubDigestRequest& m) {
  rpc::WireWriter w;
  w.put_string(m.requester);
  return rpc::Message{w.take_body()};
}

Result<ScrubDigestRequest> decode_scrub_digest_request(
    const rpc::Message& msg) {
  rpc::WireReader r(msg.body);
  ScrubDigestRequest out;
  out.requester = r.get_string();
  if (!r.ok()) return r.status();
  return out;
}

rpc::Message encode(const ScrubDigestResponse& m) {
  rpc::WireWriter w;
  w.put_u32(static_cast<uint32_t>(m.entries.size()));
  for (const ScrubDigest& d : m.entries) {
    w.put_string(d.key);
    w.put_i64(d.version);
    w.put_u64(d.checksum);
  }
  return rpc::Message{w.take_body()};
}

Result<ScrubDigestResponse> decode_scrub_digest_response(
    const rpc::Message& msg) {
  rpc::WireReader r(msg.body);
  ScrubDigestResponse out;
  const uint32_t n = r.get_u32();
  for (uint32_t i = 0; i < n && r.ok(); ++i) {
    ScrubDigest d;
    d.key = r.get_string();
    d.version = r.get_i64();
    d.checksum = r.get_u64();
    out.entries.push_back(std::move(d));
  }
  if (!r.ok()) return r.status();
  return out;
}

rpc::Message encode(const RepairFetchRequest& m) {
  rpc::WireWriter w;
  w.put_string(m.key);
  w.put_i64(m.version);
  return rpc::Message{w.take_body()};
}

Result<RepairFetchRequest> decode_repair_fetch_request(
    const rpc::Message& msg) {
  rpc::WireReader r(msg.body);
  RepairFetchRequest out;
  out.key = r.get_string();
  out.version = r.get_i64();
  if (!r.ok()) return r.status();
  return out;
}

rpc::Message encode_status(const Status& st) {
  rpc::WireWriter w;
  w.put_bool(st.ok());
  w.put_u32(static_cast<uint32_t>(st.code()));
  w.put_string(st.message());
  return rpc::Message{w.take_body()};
}

Status decode_status(const rpc::Message& msg) {
  rpc::WireReader r(msg.body);
  const bool ok = r.get_bool();
  const auto code = static_cast<StatusCode>(r.get_u32());
  std::string message = r.get_string();
  if (!r.ok()) return r.status();
  if (ok) return ok_status();
  return Status(code, std::move(message));
}

}  // namespace wiera::geo
