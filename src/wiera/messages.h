// Wire codecs for Wiera's RPC surface (peer<->peer and controller<->peer).
//
// Everything crossing the simulated network is serialized through these, so
// message sizes (and thus transfer time and egress cost) reflect payloads.
#pragma once

#include <string>
#include <vector>

#include "common/bytes.h"
#include "common/status.h"
#include "common/time.h"
#include "rpc/rpc.h"
#include "rpc/wire.h"
#include "wiera/types.h"

namespace wiera::geo {

// RPC method names.
namespace method {
inline constexpr char kClientPut[] = "peer.client_put";
inline constexpr char kClientGet[] = "peer.client_get";
inline constexpr char kForwardPut[] = "peer.forward_put";
inline constexpr char kForwardGet[] = "peer.forward_get";
inline constexpr char kReplicate[] = "peer.replicate";
// Coalesced replication (docs/PERFORMANCE.md): one wire message carrying a
// batch of queued updates for one target — flushed on size or deadline.
inline constexpr char kReplicateBatch[] = "peer.replicate_batch";
inline constexpr char kSetConsistency[] = "peer.set_consistency";
inline constexpr char kSetPrimary[] = "peer.set_primary";
inline constexpr char kPing[] = "peer.ping";
inline constexpr char kColdStore[] = "peer.cold_store";
inline constexpr char kColdFetch[] = "peer.cold_fetch";
// Table 2 versioning API.
inline constexpr char kVersionList[] = "peer.version_list";
inline constexpr char kRemove[] = "peer.remove";
inline constexpr char kRemoveVersion[] = "peer.remove_version";
// Catch-up resync after crash/partition recovery: pull every key's latest
// committed version from a healthy peer.
inline constexpr char kSyncPull[] = "peer.sync_pull";
// Integrity scrub (docs/INTEGRITY.md): exchange per-key checksum digests of
// the latest committed versions so replicas can detect silent divergence.
inline constexpr char kScrubDigest[] = "peer.scrub_digest";
// Read-repair / scrub-repair: fetch one (key, version) with its payload and
// checksum from a healthy replica to replace a quarantined local copy.
inline constexpr char kRepairFetch[] = "peer.repair_fetch";
// Serve-lease renewal: a peer proves round-trip reachability to the
// controller (body = instance id). The controller records the renewal time
// and will not narrow replication membership around a peer whose lease
// could still be valid — that ordering is what makes the lease sound.
inline constexpr char kLeaseRenew[] = "wui.lease_renew";
}  // namespace method

struct PutRequest {
  std::string key;
  Blob value;
  std::string client;  // originating client/instance id (for monitors)
  bool forwarded = false;
  bool direct = false;   // O_DIRECT from the VFS layer (§5.4)
  int64_t version = 0;   // Table 2 update(): write this exact version
  // End-to-end payload checksum: object_checksum(key, version, value)
  // computed by the client before the bytes leave it. The serving peer
  // recomputes and rejects the put when they disagree (corrupted in
  // transit) instead of durably storing a bad payload. 0 = not provided.
  uint64_t checksum = 0;
  // Absolute deadline, copied by handlers from the rpc::Message frame (not
  // part of the wire body). TimePoint::max() = none.
  TimePoint deadline = TimePoint::max();
  // Trace identity of the handling server span, copied by handlers from the
  // rpc::Message frame (not wire body); parent for downstream spans.
  TraceContext trace;
};

struct PutResponse {
  int64_t version = 0;
  // object_checksum(key, version, value) as recorded by the serving peer.
  // The client recomputes it over the bytes it sent and the version it was
  // assigned; a mismatch means the response (or its version field) was
  // corrupted in transit. 0 = not provided.
  uint64_t checksum = 0;
};

struct GetRequest {
  std::string key;
  int64_t version = 0;  // 0 = latest
  std::string client;
  bool direct = false;  // O_DIRECT from the VFS layer (§5.4)
  // Request-integrity checksum over (key, version, client). Without it a
  // request whose key was garbled in transit would be answered as a clean
  // miss (or worse, another object's bytes); the serving peer verifies and
  // rejects kDataLoss instead. 0 = not provided (internal forwards).
  uint64_t checksum = 0;
  // Absolute deadline, copied by handlers from the rpc::Message frame (not
  // part of the wire body). TimePoint::max() = none.
  TimePoint deadline = TimePoint::max();
  // Trace identity of the handling server span (frame metadata, see
  // PutRequest::trace).
  TraceContext trace;
};

struct GetResponse {
  Blob value;
  int64_t version = 0;
  std::string served_by;
  // Graceful degradation (docs/OVERLOAD.md): true when the serving instance
  // answered from its local copy while unable to prove freshness (lease
  // lapsed / primary unreachable) under a BoundedStaleness policy. Clients
  // and the consistency oracle must treat such reads as possibly stale.
  bool stale = false;
  // object_checksum(key, version, value) as recorded by the serving peer;
  // the client recomputes it over the delivered bytes (it knows the key it
  // asked for) and surfaces kDataLoss on mismatch. 0 = not provided.
  uint64_t checksum = 0;
};

struct ReplicateRequest {
  std::string key;
  int64_t version = 0;
  Blob value;
  TimePoint last_modified;
  std::string origin;
  // object_checksum(key, version, value) at the sender. Receivers verify
  // before applying and reject kDataLoss on mismatch, so a payload that was
  // bit-flipped in transit never lands in a replica. 0 = not provided.
  uint64_t checksum = 0;
};

struct ReplicateResponse {
  bool accepted = false;
};

// Coalesced replication: every update queued for one target in one flush
// round, in one wire message. Each op carries its own checksum and is
// verified/applied independently on the receiver — a corrupt op must not
// poison its batch-mates.
struct ReplicateBatchRequest {
  std::string origin;
  std::vector<ReplicateRequest> ops;
};

// Parallel to ReplicateBatchRequest::ops: the per-op outcome. The sender
// requeues exactly the ops that failed; wholesale batch retry would
// re-apply (and re-count) updates the receiver already accepted.
struct ReplicateBatchResult {
  StatusCode code = StatusCode::kOk;
  bool accepted = false;
};

struct ReplicateBatchResponse {
  std::vector<ReplicateBatchResult> results;
};

struct SetConsistencyRequest {
  ConsistencyMode mode = ConsistencyMode::kMultiPrimaries;
};

struct SetPrimaryRequest {
  std::string primary_instance;
};

// Table 2: getVersionList / remove / removeVersion.
struct VersionListResponse {
  std::vector<int64_t> versions;
};

struct RemoveRequest {
  std::string key;
  int64_t version = 0;      // 0 = all versions (remove), else removeVersion
  bool propagate = true;    // false on replica-to-replica fan-out
  TimePoint deadline = TimePoint::max();  // frame metadata, not wire body
  TraceContext trace;                     // frame metadata, not wire body
};

// Catch-up resync (recovery after crash/partition): the source answers with
// its latest committed version of every key, as replication entries the
// puller merges through LWW.
struct SyncPullRequest {
  std::string requester;
};

struct SyncPullResponse {
  std::vector<ReplicateRequest> entries;
};

// ---- integrity scrub / repair (docs/INTEGRITY.md) ----

// One digest row: the latest committed version of a key plus its recorded
// checksum. Checksums are recomputed locally at write-apply time, so two
// healthy replicas holding the same (key, version, payload) report the same
// digest — a mismatch means silent divergence (bit rot / torn write).
struct ScrubDigest {
  std::string key;
  int64_t version = 0;
  uint64_t checksum = 0;
};

struct ScrubDigestRequest {
  std::string requester;
};

struct ScrubDigestResponse {
  std::vector<ScrubDigest> entries;
};

// Fetch one (key, version) with payload + checksum from a healthy replica to
// replace a quarantined local copy. version 0 = latest committed. The
// response reuses ReplicateRequest (same fields; merged through LWW).
struct RepairFetchRequest {
  std::string key;
  int64_t version = 0;
};

// ---- encode/decode ----

rpc::Message encode(const PutRequest& m);
Result<PutRequest> decode_put_request(const rpc::Message& msg);
rpc::Message encode(const PutResponse& m);
Result<PutResponse> decode_put_response(const rpc::Message& msg);

rpc::Message encode(const GetRequest& m);
Result<GetRequest> decode_get_request(const rpc::Message& msg);
rpc::Message encode(const GetResponse& m);
Result<GetResponse> decode_get_response(const rpc::Message& msg);

rpc::Message encode(const ReplicateRequest& m);
Result<ReplicateRequest> decode_replicate_request(const rpc::Message& msg);
rpc::Message encode(const ReplicateResponse& m);
Result<ReplicateResponse> decode_replicate_response(const rpc::Message& msg);

rpc::Message encode(const ReplicateBatchRequest& m);
Result<ReplicateBatchRequest> decode_replicate_batch_request(
    const rpc::Message& msg);
rpc::Message encode(const ReplicateBatchResponse& m);
Result<ReplicateBatchResponse> decode_replicate_batch_response(
    const rpc::Message& msg);

rpc::Message encode(const SetConsistencyRequest& m);
Result<SetConsistencyRequest> decode_set_consistency(const rpc::Message& msg);
rpc::Message encode(const SetPrimaryRequest& m);
Result<SetPrimaryRequest> decode_set_primary(const rpc::Message& msg);

rpc::Message encode(const VersionListResponse& m);
Result<VersionListResponse> decode_version_list(const rpc::Message& msg);
rpc::Message encode(const RemoveRequest& m);
Result<RemoveRequest> decode_remove_request(const rpc::Message& msg);

rpc::Message encode(const SyncPullRequest& m);
Result<SyncPullRequest> decode_sync_pull_request(const rpc::Message& msg);
rpc::Message encode(const SyncPullResponse& m);
Result<SyncPullResponse> decode_sync_pull_response(const rpc::Message& msg);

rpc::Message encode(const ScrubDigestRequest& m);
Result<ScrubDigestRequest> decode_scrub_digest_request(const rpc::Message& msg);
rpc::Message encode(const ScrubDigestResponse& m);
Result<ScrubDigestResponse> decode_scrub_digest_response(
    const rpc::Message& msg);
rpc::Message encode(const RepairFetchRequest& m);
Result<RepairFetchRequest> decode_repair_fetch_request(const rpc::Message& msg);

// Status-only payload (acknowledgements / errors carried in-band).
rpc::Message encode_status(const Status& st);
Status decode_status(const rpc::Message& msg);

}  // namespace wiera::geo
