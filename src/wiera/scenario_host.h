// ScenarioHost: binds the sim layer's abstract ScenarioSurface to the
// Wiera management plane (docs/SCENARIOS.md).
//
// The ScenarioEngine fires operational events (drain a region, add a region
// live, rolling restart) at plan-scheduled virtual times; this host turns
// each into the matching WieraController coroutine, spawned as its own task
// so the engine's driver keeps walking the plan while the operation runs.
// Load-shape events never reach the controller — workload drivers sample
// them straight from the engine's LoadModel.
#pragma once

#include <string>

#include "sim/scenario.h"
#include "wiera/controller.h"

namespace wiera::geo {

class ScenarioHost : public sim::ScenarioSurface {
 public:
  ScenarioHost(sim::Simulation& sim, WieraController& controller,
               std::string wiera_id)
      : sim_(&sim), controller_(&controller), wiera_id_(std::move(wiera_id)) {}

  void on_drain_region(const sim::ScenarioEvent& e) override;
  void on_add_region(const sim::ScenarioEvent& e) override;
  void on_rolling_restart(const sim::ScenarioEvent& e) override;

  // Operational events that finished with an error (drain deadline overrun
  // under a composed fault, add on a dead node, ...). The cluster must ride
  // these out — the SLO contract judges the clients, not the operation.
  int64_t failed_operations() const { return failed_operations_; }

 private:
  sim::Task<void> run_drain(std::string target, TimePoint deadline);
  sim::Task<void> run_add(std::string target);
  sim::Task<void> run_rolling_restart();

  sim::Simulation* sim_;
  WieraController* controller_;
  std::string wiera_id_;
  int64_t failed_operations_ = 0;
};

}  // namespace wiera::geo
