#include "wiera/chaos.h"

#include "common/logging.h"

namespace wiera::geo {

namespace {
constexpr char kComponent[] = "chaos";
}  // namespace

void ChaosHost::on_node_crash(const sim::FaultEvent& e) {
  // The node is unreachable until the restart time; in-flight messages
  // touching the outage window are lost (Topology::node_down_during).
  network_->topology().inject_outage(e.node, e.at, e.until);
  WieraPeer* peer = controller_->peer(e.node);
  if (peer != nullptr) {
    peer->on_crash();
  } else {
    WLOG_WARN(kComponent) << "crash of unknown peer " << e.node;
  }
}

void ChaosHost::on_node_restart(const sim::FaultEvent& e) {
  // The outage window installed at crash time expires on its own, and the
  // peer restarted in recovering state; the controller's next heartbeat
  // notices and drives catch-up. Run the crash-consistency pass: durable
  // tiers discard journalled torn writes instead of publishing them.
  WieraPeer* peer = controller_->peer(e.node);
  if (peer != nullptr) peer->local().recover_tiers();
  WLOG_INFO(kComponent) << e.node << " restarting (recovering until catch-up)";
}

void ChaosHost::on_partition(const sim::FaultEvent& e) {
  net::Topology& topo = network_->topology();
  for (const std::string& other : topo.node_names()) {
    if (other == e.node) continue;
    switch (e.direction) {
      case sim::PartitionDirection::kBoth:
        topo.inject_partition(e.node, other, e.at, e.until,
                              /*bidirectional=*/true);
        break;
      case sim::PartitionDirection::kOutbound:
        // The node's own packets are lost; it still hears the world.
        topo.inject_partition(e.node, other, e.at, e.until,
                              /*bidirectional=*/false);
        break;
      case sim::PartitionDirection::kInbound:
        // Nobody can reach the node; its packets get out.
        topo.inject_partition(other, e.node, e.at, e.until,
                              /*bidirectional=*/false);
        break;
    }
  }
}

void ChaosHost::on_message_chaos(const sim::FaultEvent& e) {
  net::ChaosWindow window;
  window.node = e.node;
  window.from = e.at;
  window.until = e.until;
  window.drop_prob = e.drop_prob;
  window.dup_prob = e.dup_prob;
  window.max_extra_delay = e.max_extra_delay;
  network_->inject_chaos(std::move(window));
}

void ChaosHost::on_latency_spike(const sim::FaultEvent& e) {
  network_->topology().inject_node_delay(e.node, e.extra_delay, e.at, e.until);
}

void ChaosHost::on_tier_fault(const sim::FaultEvent& e) {
  WieraPeer* peer = controller_->peer(e.node);
  if (peer == nullptr) {
    WLOG_WARN(kComponent) << "tier fault on unknown peer " << e.node;
    return;
  }
  for (const std::string& label : peer->local().tier_labels()) {
    if (!e.tier_label.empty() && label != e.tier_label) continue;
    store::StorageTier* tier = peer->local().tier_by_label(label);
    if (tier == nullptr) continue;
    if (e.slowdown != 1.0) tier->inject_slowdown(e.slowdown, e.at, e.until);
    if (e.enospc) tier->inject_write_errors(e.at, e.until);
  }
}

void ChaosHost::on_bit_rot(const sim::FaultEvent& e) {
  WieraPeer* peer = controller_->peer(e.node);
  if (peer == nullptr) {
    WLOG_WARN(kComponent) << "bit rot on unknown peer " << e.node;
    return;
  }
  if (peer->local().corrupt_stored_copy(e.object_key)) {
    WLOG_INFO(kComponent) << "bit rot flipped a stored byte of "
                          << e.object_key << " on " << e.node;
  }
}

void ChaosHost::on_torn_write(const sim::FaultEvent& e) {
  // Crash semantics plus: durable-tier puts that are in flight when the
  // node dies land torn instead of vanishing cleanly. The paired kRestart
  // event later runs recover_tiers(), which discards the journalled tears.
  network_->topology().inject_outage(e.node, e.at, e.until);
  WieraPeer* peer = controller_->peer(e.node);
  if (peer == nullptr) {
    WLOG_WARN(kComponent) << "torn-write crash of unknown peer " << e.node;
    return;
  }
  for (const std::string& label : peer->local().tier_labels()) {
    store::StorageTier* tier = peer->local().tier_by_label(label);
    if (tier != nullptr) tier->inject_torn_writes(e.at, e.until);
  }
  peer->on_crash();
}

void ChaosHost::on_message_corrupt(const sim::FaultEvent& e) {
  net::ChaosWindow window;
  window.node = e.node;
  window.from = e.at;
  window.until = e.until;
  window.corrupt_prob = e.corrupt_prob;
  network_->inject_chaos(std::move(window));
}

void ChaosHost::on_stutter(const sim::FaultEvent& e) {
  // The process freezes but loses nothing: every message touching the node
  // during the window completes just after the thaw.
  network_->topology().inject_freeze(e.node, e.at, e.until);
}

void ChaosHost::on_flaky_link(const sim::FaultEvent& e) {
  // Pair-scoped chaos: only the node<->peer link degrades; the rest of the
  // mesh (including pings from the controller) is untouched.
  net::ChaosWindow window;
  window.node = e.node;
  window.node_b = e.peer_node;
  window.from = e.at;
  window.until = e.until;
  window.drop_prob = e.drop_prob;
  window.max_extra_delay = e.max_extra_delay;
  network_->inject_chaos(std::move(window));
}

void ChaosHost::on_slow_node(const sim::FaultEvent& e) {
  // Every message the node touches takes slow_factor longer, and so does
  // every storage-tier access: degraded, not dead.
  network_->topology().inject_node_slow(e.node, e.slow_factor, e.at, e.until);
  WieraPeer* peer = controller_->peer(e.node);
  if (peer == nullptr) {
    WLOG_WARN(kComponent) << "slow-node fault on unknown peer " << e.node;
    return;
  }
  for (const std::string& label : peer->local().tier_labels()) {
    store::StorageTier* tier = peer->local().tier_by_label(label);
    if (tier != nullptr) tier->inject_slowdown(e.slow_factor, e.at, e.until);
  }
}

}  // namespace wiera::geo
