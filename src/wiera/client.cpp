#include "wiera/client.h"

#include <algorithm>

namespace wiera::geo {

WieraClient::WieraClient(sim::Simulation& sim, net::Network& network,
                         rpc::Registry& registry, std::string client_id,
                         std::string node, std::vector<std::string> peer_ids)
    : sim_(&sim), client_id_(std::move(client_id)),
      peer_ids_(std::move(peer_ids)) {
  endpoint_ = std::make_unique<rpc::Endpoint>(network, registry, node);
  // Closest instance first (§4.1 places it at the head of the list).
  std::stable_sort(peer_ids_.begin(), peer_ids_.end(),
                   [&](const std::string& a, const std::string& b) {
                     return network.topology().base_one_way(node, a) <
                            network.topology().base_one_way(node, b);
                   });
}

sim::Task<Result<rpc::Message>> WieraClient::call_any(
    std::string rpc_method, std::function<rpc::Message()> make_request) {
  Result<rpc::Message> resp = internal_error("no peers");
  const size_t attempts = peer_ids_.size();
  for (size_t i = 0; i < attempts; ++i) {
    const std::string peer = peer_ids_.front();
    rpc::Message msg = make_request();
    resp = co_await endpoint_->call(peer, rpc_method, std::move(msg));
    if (resp.ok()) co_return resp;
    if (resp.status().code() != StatusCode::kUnavailable) co_return resp;
    // Preferred instance unreachable (§4.4): one failover, then demote it
    // so subsequent operations go straight to the next-closest peer.
    failovers_++;
    std::rotate(peer_ids_.begin(), peer_ids_.begin() + 1, peer_ids_.end());
  }
  co_return resp;
}

sim::Task<Result<PutResponse>> WieraClient::put(std::string key, Blob value) {
  co_return co_await update(std::move(key), 0, std::move(value));
}

sim::Task<Result<PutResponse>> WieraClient::update(std::string key,
                                                   int64_t version,
                                                   Blob value) {
  const TimePoint start = sim_->now();
  PutRequest req;
  req.key = std::move(key);
  req.value = std::move(value);
  req.client = client_id_;
  req.version = version;

  Result<rpc::Message> resp =
      co_await call_any(method::kClientPut, [&] { return encode(req); });
  if (!resp.ok()) co_return resp.status();
  auto decoded = decode_put_response(*resp);
  if (!decoded.ok()) co_return decoded.status();
  put_hist_.record(sim_->now() - start);
  co_return std::move(decoded).value();
}

sim::Task<Result<GetResponse>> WieraClient::get(std::string key) {
  co_return co_await get_version(std::move(key), 0);
}

sim::Task<Result<GetResponse>> WieraClient::get_version(std::string key,
                                                        int64_t version) {
  const TimePoint start = sim_->now();
  GetRequest req;
  req.key = std::move(key);
  req.version = version;
  req.client = client_id_;

  Result<rpc::Message> resp =
      co_await call_any(method::kClientGet, [&] { return encode(req); });
  if (!resp.ok()) co_return resp.status();
  auto decoded = decode_get_response(*resp);
  if (!decoded.ok()) co_return decoded.status();
  get_hist_.record(sim_->now() - start);
  co_return std::move(decoded).value();
}

sim::Task<Result<std::vector<int64_t>>> WieraClient::get_version_list(
    std::string key) {
  GetRequest req;
  req.key = std::move(key);
  req.client = client_id_;
  Result<rpc::Message> resp =
      co_await call_any(method::kVersionList, [&] { return encode(req); });
  if (!resp.ok()) co_return resp.status();
  auto decoded = decode_version_list(*resp);
  if (!decoded.ok()) co_return decoded.status();
  co_return std::move(decoded).value().versions;
}

sim::Task<Status> WieraClient::remove(std::string key) {
  co_return co_await remove_version(std::move(key), 0);
}

sim::Task<Status> WieraClient::remove_version(std::string key,
                                              int64_t version) {
  RemoveRequest req;
  req.key = std::move(key);
  req.version = version;
  req.propagate = true;
  Result<rpc::Message> resp =
      co_await call_any(method::kRemove, [&] { return encode(req); });
  if (!resp.ok()) co_return resp.status();
  co_return decode_status(*resp);
}

}  // namespace wiera::geo
