#include "wiera/client.h"

#include <algorithm>

#include "common/checksum.h"
#include "sim/sync.h"

namespace wiera::geo {

WieraClient::WieraClient(sim::Simulation& sim, net::Network& network,
                         rpc::Registry& registry, std::string client_id,
                         std::string node, std::vector<std::string> peer_ids,
                         Config config)
    : sim_(&sim), client_id_(std::move(client_id)), config_(config),
      peer_ids_(std::move(peer_ids)),
      retry_budget_(config.retry_budget_per_sec,
                    config.retry_budget_capacity) {
  endpoint_ = std::make_unique<rpc::Endpoint>(network, registry, node);
  metrics_ = &sim.telemetry().registry();
  const obs::LabelSet labels{{"client", client_id_}};
  put_hist_ = metrics_->histogram("wiera_client_put_latency_us", labels);
  get_hist_ = metrics_->histogram("wiera_client_get_latency_us", labels);
  failovers_ = metrics_->counter("wiera_client_failovers_total", labels);
  attempt_timeouts_ =
      metrics_->counter("wiera_client_attempt_timeouts_total", labels);
  hedged_gets_ = metrics_->counter("wiera_client_hedged_gets_total", labels);
  hedged_wins_ = metrics_->counter("wiera_client_hedged_wins_total", labels);
  checksum_failures_ =
      metrics_->counter("wiera_client_checksum_failures_total", labels);
  // Client-side hot-key sketch (docs/METRICS_PIPELINE.md): series register
  // lazily on the first recorded access, so the default (disabled) config
  // leaves telemetry dumps unchanged.
  key_stats_.configure(config_.key_stats);
  key_stats_.bind(metrics_, client_id_);
  // Closest instance first (§4.1 places it at the head of the list).
  std::stable_sort(peer_ids_.begin(), peer_ids_.end(),
                   [&](const std::string& a, const std::string& b) {
                     return network.topology().base_one_way(node, a) <
                            network.topology().base_one_way(node, b);
                   });
}

Context WieraClient::make_ctx(TraceContext trace) const {
  Context ctx;
  if (config_.op_deadline > Duration::zero()) {
    ctx = Context::with_deadline(sim_->now() + config_.op_deadline);
  }
  ctx.trace = trace;
  return ctx;
}

TraceContext WieraClient::begin_op(const char* name) {
  const TraceContext op = tracer().start_trace(name, client_id_);
  last_trace_id_ = op.trace_id;
  return op;
}

void WieraClient::finish_op(std::string_view op_kind, const TraceContext& span,
                            const Status& st) {
  tracer().end_span(span, st.ok() ? "ok" : status_code_name(st.code()));
  if (!st.ok()) {
    // Failed client operations always reach the journal with their trace
    // identity (CI asserts this linkage; docs/OBSERVABILITY.md).
    journal()
        .event("client", "op_failed")
        .str("client", client_id_)
        .str("op", op_kind)
        .str("status", status_code_name(st.code()))
        .trace(span);
  }
}

sim::Task<Result<rpc::Message>> WieraClient::call_any(
    std::string rpc_method, std::function<rpc::Message()> make_request,
    TraceContext trace) {
  co_return co_await call_any_ctx(std::move(rpc_method),
                                  std::move(make_request), make_ctx(trace));
}

void WieraClient::rank_peers_by_health() {
  if (config_.health == nullptr || !config_.health->enabled() ||
      peer_ids_.size() < 2) {
    return;
  }
  std::stable_sort(peer_ids_.begin(), peer_ids_.end(),
                   [this](const std::string& a, const std::string& b) {
                     return config_.health->rank_penalty(a) <
                            config_.health->rank_penalty(b);
                   });
}

sim::Task<Result<rpc::Message>> WieraClient::call_any_ctx(
    std::string rpc_method, std::function<rpc::Message()> make_request,
    Context ctx) {
  rank_peers_by_health();
  Result<rpc::Message> resp = internal_error("no peers");
  const size_t attempts = peer_ids_.size();
  for (size_t i = 0; i < attempts; ++i) {
    const std::string peer = peer_ids_.front();
    const TimePoint attempt_start = sim_->now();
    rpc::Message msg = make_request();
    // With failover_attempt_timeout set (and another replica to try), bound
    // this attempt tighter than the op deadline: a black-holed or draining
    // peer then costs one attempt window, not the whole op budget.
    Context attempt = ctx;
    bool attempt_bounded = false;
    if (config_.failover_attempt_timeout > Duration::zero() &&
        peer_ids_.size() > 1) {
      const TimePoint cut = sim_->now() + config_.failover_attempt_timeout;
      if (!ctx.has_deadline() || cut < ctx.deadline()) {
        attempt = Context::with_deadline(cut);
        attempt.trace = ctx.trace;
        attempt_bounded = true;
      }
    }
    resp = co_await endpoint_->call(peer, rpc_method, std::move(msg),
                                    attempt);
    if (resp.ok()) {
      // Successful exchanges feed the per-target latency EWMA; failures are
      // liveness signals and must not pollute the baseline.
      if (config_.health != nullptr) {
        config_.health->record_latency(peer, sim_->now() - attempt_start,
                                       sim_->now());
      }
      co_return resp;
    }
    const StatusCode code = resp.status().code();
    if (code == StatusCode::kDeadlineExceeded) {
      if (attempt_bounded) {
        // The *attempt* timer fired, not the op deadline (the attempt cut
        // was strictly earlier): the op still has time, so treat the silent
        // peer like an unreachable one and fail over within the budget.
        attempt_timeouts_->inc();
        tracer().annotate(ctx.trace, "attempt_timeout=" + peer);
      } else {
        // kDeadlineExceeded is final: the deadline covers the whole
        // operation, so another replica cannot answer in time either. But a
        // peer slow enough to burn the whole deadline is still demoted —
        // subsequent operations should prefer replicas that answer.
        if (peer_ids_.size() > 1) {
          std::rotate(peer_ids_.begin(), peer_ids_.begin() + 1,
                      peer_ids_.end());
        }
        co_return resp;
      }
    } else if (code != StatusCode::kUnavailable &&
               code != StatusCode::kResourceExhausted) {
      // Any other non-retriable error is the peer's verdict, not a liveness
      // problem.
      co_return resp;
    }
    if (i + 1 == attempts) break;
    // Failovers spend the retry budget: when the bucket is dry the last
    // error stands instead of amplifying an overload (docs/OVERLOAD.md).
    if (!retry_budget_.try_spend(sim_->now())) co_return resp;
    // Preferred instance unreachable (§4.4): one failover, then demote it
    // so subsequent operations go straight to the next-closest peer.
    failovers_->inc();
    tracer().annotate(ctx.trace, "failover_from=" + peer);
    std::rotate(peer_ids_.begin(), peer_ids_.begin() + 1, peer_ids_.end());
  }
  co_return resp;
}

bool WieraClient::hedge_ready() const {
  return config_.hedge_gets && peer_ids_.size() >= 2 &&
         get_hist_->count() >= config_.hedge_min_samples;
}

sim::Task<Result<rpc::Message>> WieraClient::call_hedged(GetRequest request,
                                                         TraceContext trace) {
  // Rank before choosing the trigger so peer_ids_.front() / [1] reflect
  // health: the backup request targets the best non-preferred replica, and
  // a non-clean preferred replica hedges at hedge_min_delay instead of
  // waiting out the latency percentile (docs/HEALTH.md).
  rank_peers_by_health();
  Duration trigger =
      std::max(get_hist_->percentile(config_.hedge_percentile),
               config_.hedge_min_delay);
  if (config_.health != nullptr && config_.health->enabled() &&
      config_.health->rank_penalty(peer_ids_.front()) > 0) {
    trigger = config_.hedge_min_delay;
  }
  auto promise = std::make_shared<sim::Promise<Result<rpc::Message>>>(
      *sim_, "client.hedged-get");
  Context ctx = make_ctx(trace);

  // Primary path: the normal failover sequence; it always reports its
  // outcome (first writer wins — the promise ignores late arrivals).
  sim_->spawn(
      [](WieraClient* self, GetRequest req, Context c,
         std::shared_ptr<sim::Promise<Result<rpc::Message>>> p)
          -> sim::Task<void> {
        auto resp = co_await self->call_any_ctx(
            method::kClientGet, [&] { return encode(req); }, c);
        if (!p->fulfilled()) p->set_value(std::move(resp));
      }(this, request, ctx, promise),
      client_id_ + "/hedge-primary");

  // Backup path: wait for the latency-percentile trigger, then send one
  // request to the second-closest replica. Only a success may win the race
  // — a failed hedge must not mask a primary still in flight.
  sim_->spawn(
      [](WieraClient* self, GetRequest req, Context c, Duration delay,
         std::shared_ptr<sim::Promise<Result<rpc::Message>>> p)
          -> sim::Task<void> {
        co_await self->sim_->delay(delay);
        if (p->fulfilled() || c.cancelled()) co_return;
        self->hedged_gets_->inc();
        self->tracer().annotate(c.trace, "hedged=true");
        const std::string backup = self->peer_ids_[1];
        auto resp = co_await self->endpoint_->call(
            backup, method::kClientGet, encode(req), c);
        if (resp.ok() && !p->fulfilled()) {
          self->hedged_wins_->inc();
          self->tracer().annotate(c.trace, "hedge_won=true");
          p->set_value(std::move(resp));
        }
      }(this, request, ctx, trigger, promise),
      client_id_ + "/hedge-backup");

  Result<rpc::Message> winner = co_await promise->future();
  // The loser keeps running until its own RPC resolves (or the deadline
  // cancels it); it holds the promise alive, so no dangling completion.
  co_return winner;
}

sim::Task<Result<PutResponse>> WieraClient::put(std::string key, Blob value) {
  co_return co_await update(std::move(key), 0, std::move(value));
}

sim::Task<Result<PutResponse>> WieraClient::update(std::string key,
                                                   int64_t version,
                                                   Blob value) {
  const TraceContext op = begin_op("client.put");
  Result<PutResponse> r =
      co_await update_impl(std::move(key), version, std::move(value), op);
  finish_op("put", op, r.ok() ? ok_status() : r.status());
  co_return r;
}

sim::Task<Result<PutResponse>> WieraClient::update_impl(std::string key,
                                                        int64_t version,
                                                        Blob value,
                                                        TraceContext op) {
  const TimePoint start = sim_->now();
  PutRequest req;
  req.key = std::move(key);
  req.value = std::move(value);
  req.client = client_id_;
  req.version = version;
  // Checksum the payload before it leaves the application: every hop to the
  // storing replica re-verifies it (docs/INTEGRITY.md).
  req.checksum = object_checksum(req.key, req.version, req.value);
  key_stats_.record_access(req.key, client_id_, start, /*is_put=*/true);

  Result<rpc::Message> resp =
      co_await call_any(method::kClientPut, [&] { return encode(req); }, op);
  if (!resp.ok()) co_return resp.status();
  auto decoded = decode_put_response(*resp);
  if (!decoded.ok()) co_return decoded.status();
  // The serving peer echoed a checksum bound to (key, allocated version,
  // payload). Recomputing it over the bytes we sent proves the ack — and in
  // particular the version number in it — survived the return leg intact.
  if (decoded->checksum != 0 &&
      object_checksum(req.key, decoded->version, req.value) !=
          decoded->checksum) {
    checksum_failures_->inc();
    co_return data_loss("put " + req.key +
                        ": response corrupted in transit (checksum mismatch)");
  }
  put_hist_->record(sim_->now() - start);
  co_return std::move(decoded).value();
}

sim::Task<Result<GetResponse>> WieraClient::get(std::string key) {
  co_return co_await get_version(std::move(key), 0);
}

sim::Task<Result<GetResponse>> WieraClient::get_version(std::string key,
                                                        int64_t version) {
  const TraceContext op = begin_op("client.get");
  Result<GetResponse> r =
      co_await get_version_impl(std::move(key), version, op);
  finish_op("get", op, r.ok() ? ok_status() : r.status());
  co_return r;
}

sim::Task<Result<GetResponse>> WieraClient::get_version_impl(std::string key,
                                                             int64_t version,
                                                             TraceContext op) {
  const TimePoint start = sim_->now();
  GetRequest req;
  req.key = std::move(key);
  req.version = version;
  req.client = client_id_;
  // Request integrity: binds (key, version, client) so a request garbled in
  // transit is rejected by the peer instead of answered as a clean miss.
  req.checksum = object_checksum(req.key, req.version, req.client);
  key_stats_.record_access(req.key, client_id_, start, /*is_put=*/false);

  // NOTE: no ternary around co_await — GCC 12 miscompiles conditional
  // operators whose branches both await (frame-slot corruption).
  Result<rpc::Message> resp = internal_error("unset");
  if (hedge_ready()) {
    resp = co_await call_hedged(req, op);
  } else {
    resp = co_await call_any(method::kClientGet, [&] { return encode(req); },
                             op);
  }
  if (!resp.ok()) co_return resp.status();
  auto decoded = decode_get_response(*resp);
  if (!decoded.ok()) co_return decoded.status();
  // The serving peer checksummed the payload it sent; a mismatch over the
  // delivered bytes means the response leg corrupted them in transit. The
  // operation fails kDataLoss rather than handing the application a
  // silently-corrupt payload.
  if (decoded->checksum != 0 &&
      object_checksum(req.key, decoded->version, decoded->value) !=
          decoded->checksum) {
    checksum_failures_->inc();
    co_return data_loss("get " + req.key +
                        ": payload corrupted in transit (checksum mismatch)");
  }
  get_hist_->record(sim_->now() - start);
  co_return std::move(decoded).value();
}

sim::Task<Result<std::vector<int64_t>>> WieraClient::get_version_list(
    std::string key) {
  const TraceContext op = begin_op("client.version_list");
  GetRequest req;
  req.key = std::move(key);
  req.client = client_id_;
  Result<rpc::Message> resp = co_await call_any(
      method::kVersionList, [&] { return encode(req); }, op);
  if (!resp.ok()) {
    finish_op("version_list", op, resp.status());
    co_return resp.status();
  }
  auto decoded = decode_version_list(*resp);
  finish_op("version_list", op,
            decoded.ok() ? ok_status() : decoded.status());
  if (!decoded.ok()) co_return decoded.status();
  co_return std::move(decoded).value().versions;
}

sim::Task<Status> WieraClient::remove(std::string key) {
  co_return co_await remove_version(std::move(key), 0);
}

sim::Task<Status> WieraClient::remove_version(std::string key,
                                              int64_t version) {
  const TraceContext op = begin_op("client.remove");
  Status st = co_await remove_version_impl(std::move(key), version, op);
  finish_op("remove", op, st);
  co_return st;
}

sim::Task<Status> WieraClient::remove_version_impl(std::string key,
                                                   int64_t version,
                                                   TraceContext op) {
  RemoveRequest req;
  req.key = std::move(key);
  req.version = version;
  req.propagate = true;
  Result<rpc::Message> resp = co_await call_any(
      method::kRemove, [&] { return encode(req); }, op);
  if (!resp.ok()) co_return resp.status();
  co_return decode_status(*resp);
}

}  // namespace wiera::geo
