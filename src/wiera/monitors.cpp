#include "wiera/monitors.h"

namespace wiera::geo {

std::string NetworkMonitor::slowest_instance() const {
  std::string worst;
  Duration worst_mean = Duration::zero();
  for (const auto& [instance, hist] : request_latency_) {
    if (hist.count() == 0) continue;
    if (hist.mean() > worst_mean) {
      worst_mean = hist.mean();
      worst = instance;
    }
  }
  return worst;
}

std::string WorkloadMonitor::busiest_instance() const {
  std::string busiest;
  int64_t top = 0;
  for (const auto& [instance, counters] : per_instance_) {
    if (counters.requests() > top) {
      top = counters.requests();
      busiest = instance;
    }
  }
  return busiest;
}

double WorkloadMonitor::mean_object_size() const {
  int64_t requests = 0;
  int64_t bytes = 0;
  for (const auto& [_, counters] : per_instance_) {
    requests += counters.requests();
    bytes += counters.bytes;
  }
  return requests == 0 ? 0.0
                       : static_cast<double>(bytes) /
                             static_cast<double>(requests);
}

}  // namespace wiera::geo
