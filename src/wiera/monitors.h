// Network & workload monitors (§3.1) and a data placement advisor.
//
// The paper's architecture includes a network monitor ("aggregates latency
// information for handling requests from each instance and latencies
// between instances") and a workload monitor ("users' locations, access
// patterns, and object sizes"), feeding a data placement manager that the
// paper leaves as future work. This module implements the two monitors and
// a first placement advisor on top of them: it recommends a primary region
// from observed request origins — the automated counterpart of the Fig. 5b
// ChangePrimary policy.
//
// Peers record samples as they serve requests; the controller (TIM) reads
// the aggregates. Collection piggybacks on existing traffic, so no extra
// messages are modelled.
#pragma once

#include <map>
#include <string>
#include <vector>

#include "common/histogram.h"

namespace wiera::geo {

class NetworkMonitor {
 public:
  // Request-handling latency observed at an instance.
  void record_request_latency(const std::string& instance, Duration latency) {
    request_latency_[instance].record(latency);
  }
  // Observed latency of an inter-instance exchange (replication ack, etc.).
  void record_link_latency(const std::string& from, const std::string& to,
                           Duration latency) {
    link_latency_[{from, to}].record(latency);
  }

  const LatencyHistogram* request_latency(const std::string& instance) const {
    auto it = request_latency_.find(instance);
    return it == request_latency_.end() ? nullptr : &it->second;
  }
  const LatencyHistogram* link_latency(const std::string& from,
                                       const std::string& to) const {
    auto it = link_latency_.find({from, to});
    return it == link_latency_.end() ? nullptr : &it->second;
  }

  // The instance currently serving requests slowest (mean); empty if no
  // data. The controller can use this to spot poorly performing replicas.
  std::string slowest_instance() const;

  void reset() {
    request_latency_.clear();
    link_latency_.clear();
  }

 private:
  std::map<std::string, LatencyHistogram> request_latency_;
  std::map<std::pair<std::string, std::string>, LatencyHistogram>
      link_latency_;
};

class WorkloadMonitor {
 public:
  void record_request(const std::string& instance, bool is_put,
                      int64_t object_bytes) {
    Counters& counters = per_instance_[instance];
    if (is_put) {
      counters.puts++;
    } else {
      counters.gets++;
    }
    counters.bytes += object_bytes;
    total_requests_++;
  }

  struct Counters {
    int64_t puts = 0;
    int64_t gets = 0;
    int64_t bytes = 0;
    int64_t requests() const { return puts + gets; }
  };

  const Counters* counters(const std::string& instance) const {
    auto it = per_instance_.find(instance);
    return it == per_instance_.end() ? nullptr : &it->second;
  }
  int64_t total_requests() const { return total_requests_; }

  // The instance receiving the most requests (the "active region").
  std::string busiest_instance() const;
  // Mean object size across all recorded requests (0 if none).
  double mean_object_size() const;

  void reset() {
    per_instance_.clear();
    total_requests_ = 0;
  }

 private:
  std::map<std::string, Counters> per_instance_;
  int64_t total_requests_ = 0;
};

// First cut of the paper's future-work "data placement manager": recommend
// where the primary should live, based on observed workload. Returns empty
// when there is not enough signal (fewer than `min_requests` recorded).
class PlacementAdvisor {
 public:
  explicit PlacementAdvisor(int64_t min_requests = 100)
      : min_requests_(min_requests) {}

  std::string recommend_primary(const WorkloadMonitor& workload) const {
    if (workload.total_requests() < min_requests_) return "";
    return workload.busiest_instance();
  }

 private:
  int64_t min_requests_;
};

}  // namespace wiera::geo
