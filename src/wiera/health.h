// Health-scored failure detection (docs/HEALTH.md).
//
// The controller's liveness view is binary (node_alive_), which misses the
// dominant wide-area failure mode: a peer that answers pings while serving
// 50x slow (stuck tier, flaky NIC, stutter/GC pause). HealthTracker turns
// liveness into a score built from two signals:
//   * a φ-accrual-style suspicion level over heartbeat inter-arrival — the
//     longer a peer's next heartbeat overshoots its learned cadence, the
//     higher φ climbs (Hayashibara et al., SRDS'04);
//   * a per-target request-latency EWMA compared against the best (minimum)
//     EWMA ever observed for that target, so a peer serving far above its
//     own baseline is flagged degraded even while its pings are prompt.
// From the score the tracker drives a three-state lifecycle per peer:
// healthy → probation → (controller-declared) down. Probation demotes the
// peer from primary eligibility and moves it last in client replica ranking
// and replication fan-out ordering — but never narrows membership, so a
// peer that recovers rejoins with no catch-up.
//
// Determinism: all state is event-driven from recorded observations with
// explicit virtual timestamps (no wall clock, no background task), stored
// in std::map so iteration order is stable.
#pragma once

#include <cstdint>
#include <map>
#include <string>
#include <vector>

#include "common/time.h"
#include "obs/metrics.h"

namespace wiera::geo {

class HealthTracker {
 public:
  struct Config {
    // Master switch (the `health_detection` mutation knob). Off = seed
    // behavior everywhere: every peer ranks neutral, nothing enters
    // probation, and no health counters are registered.
    bool enabled = false;
    // φ-accrual thresholds with hysteresis: enter probation at/above
    // phi_suspect, leave only at/below phi_recover.
    double phi_suspect = 4.0;
    double phi_recover = 1.0;
    // Latency-EWMA degradation: a peer whose request-latency EWMA exceeds
    // degraded_factor x its own baseline (best EWMA seen) enters probation;
    // above degraded_factor/2 it ranks as degraded without probation.
    double degraded_factor = 4.0;
    double ewma_alpha = 0.25;
    // Below this many observations (pings for φ, latencies for the EWMA)
    // a signal stays NEUTRAL — sparse data must not rank a peer best or
    // worst (tested in wiera_test ClientHealthRanking*).
    int min_samples = 3;
    // A peer stays in probation at least this long, so a single good
    // sample cannot flap it straight back to primary-eligible.
    Duration probation_min_dwell = sec(2);
    // Consecutive failed pings also force probation (a cheaper signal than
    // φ when the heartbeat has a deadline and failures are crisp).
    int ping_failures_suspect = 2;
  };

  enum class State { kHealthy, kProbation };

  HealthTracker(obs::Registry& registry, Config config);

  bool enabled() const { return config_.enabled; }
  const Config& config() const { return config_; }

  // ---- observation feeds ----
  // One heartbeat outcome per peer per round (controller heartbeat_loop).
  void record_ping(const std::string& peer, bool ok, TimePoint now);
  // One request-latency sample against `peer` (client attempts, replication
  // acks). Only successful exchanges should be recorded; failures feed φ.
  void record_latency(const std::string& peer, Duration latency,
                      TimePoint now);

  // ---- scores & lifecycle ----
  // φ-accrual suspicion from heartbeat inter-arrival; 0 while sparse.
  double phi(const std::string& peer, TimePoint now) const;
  // EWMA / baseline ratio; 1.0 while sparse.
  double latency_ratio(const std::string& peer) const;
  State state(const std::string& peer) const;
  bool in_probation(const std::string& peer) const;
  // Ranking penalty for replica ordering: 0 = healthy or insufficient
  // samples (NEUTRAL), 1 = latency-degraded, 2 = probation. Callers order
  // by (penalty, own tiebreak) so health never overrides proximity between
  // equally healthy peers.
  int rank_penalty(const std::string& peer) const;

  // Deterministically ordered list of peers currently in probation.
  std::vector<std::string> probation_peers() const;

  // ---- counters (HEALTH-STATS; registered only when enabled) ----
  int64_t probation_entries() const {
    return probation_entries_ ? probation_entries_->value() : 0;
  }
  int64_t probation_exits() const {
    return probation_exits_ ? probation_exits_->value() : 0;
  }

 private:
  struct PeerHealth {
    // Heartbeat cadence (φ input): EWMA of inter-arrival time.
    TimePoint last_heard;
    Duration interval_ewma = Duration::zero();
    int ping_samples = 0;
    int consecutive_failures = 0;
    // Request latency (degradation input).
    Duration latency_ewma = Duration::zero();
    Duration latency_baseline = Duration::zero();  // min EWMA seen
    int latency_samples = 0;
    // Lifecycle.
    State state = State::kHealthy;
    TimePoint probation_since;
  };

  void evaluate(const std::string& peer, PeerHealth& h, TimePoint now);
  double phi_of(const PeerHealth& h, TimePoint now) const;
  double ratio_of(const PeerHealth& h) const;

  Config config_;
  std::map<std::string, PeerHealth> peers_;
  obs::Counter* probation_entries_ = nullptr;
  obs::Counter* probation_exits_ = nullptr;
};

}  // namespace wiera::geo
