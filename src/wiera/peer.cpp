#include "wiera/peer.h"

#include <algorithm>
#include <cassert>

#include "common/checksum.h"
#include "common/logging.h"

namespace wiera::geo {

namespace {
constexpr char kComponent[] = "peer";

// Extract the latency threshold a DynamicConsistency policy compares
// against (`threshold.latency > 800 ms`), so the monitor knows when a
// violation streak starts without hard-coding the number.
Duration extract_latency_threshold(const policy::PolicyDoc& doc) {
  Duration threshold = Duration::max();
  std::function<void(const policy::Expr&)> scan = [&](const policy::Expr& e) {
    if (!e.is_binary()) return;
    const auto& bin = e.binary();
    if (bin.lhs->is_path() &&
        bin.lhs->path().dotted() == "threshold.latency" &&
        bin.rhs->is_literal() &&
        bin.rhs->literal().value.kind == policy::Value::Kind::kDuration) {
      threshold = std::min(threshold, bin.rhs->literal().value.duration);
      return;
    }
    scan(*bin.lhs);
    scan(*bin.rhs);
  };
  for (const auto& rule : doc.events) {
    for (const auto& stmt : rule.response) {
      if (!stmt.is_if()) continue;
      for (const auto& branch : stmt.if_stmt().branches) {
        if (branch.condition != nullptr) scan(*branch.condition);
      }
    }
  }
  return threshold;
}

// Extract the staleness bound a BoundedStaleness degradation policy allows
// (`threshold.staleness <= 10 seconds`). Duration::zero() when the policy
// names no bound — stale serving stays disabled rather than unbounded.
Duration extract_staleness_threshold(const policy::PolicyDoc& doc) {
  Duration bound = Duration::zero();
  std::function<void(const policy::Expr&)> scan = [&](const policy::Expr& e) {
    if (!e.is_binary()) return;
    const auto& bin = e.binary();
    if (bin.lhs->is_path() &&
        bin.lhs->path().dotted() == "threshold.staleness" &&
        bin.rhs->is_literal() &&
        bin.rhs->literal().value.kind == policy::Value::Kind::kDuration) {
      bound = std::max(bound, bin.rhs->literal().value.duration);
      return;
    }
    scan(*bin.lhs);
    scan(*bin.rhs);
  };
  for (const auto& rule : doc.events) {
    for (const auto& stmt : rule.response) {
      if (!stmt.is_if()) continue;
      for (const auto& branch : stmt.if_stmt().branches) {
        if (branch.condition != nullptr) scan(*branch.condition);
      }
    }
  }
  return bound;
}

// FNV-1a over a small string, used to fold breaker transitions into the
// determinism trace hash (same recipe as the fault injector).
uint64_t fnv1a(const std::string& s) {
  uint64_t h = 1469598103934665603ull;
  for (unsigned char c : s) {
    h ^= c;
    h *= 1099511628211ull;
  }
  return h;
}

// Find the first change_policy action in a statement list whose condition
// (already checked by the caller) matched; returns its what/to words.
struct ChangeAction {
  std::string what;
  std::string to;
};

std::optional<ChangeAction> find_change_action(
    const std::vector<policy::Stmt>& stmts) {
  for (const auto& stmt : stmts) {
    if (!stmt.is_action()) continue;
    const auto& action = stmt.action();
    if (action.name != "change_policy" && action.name != "change_consistency") {
      continue;
    }
    ChangeAction out;
    if (const policy::Expr* what = action.arg("what");
        what != nullptr && what->is_path()) {
      out.what = what->path().dotted();
    }
    if (const policy::Expr* to = action.arg("to");
        to != nullptr && to->is_path()) {
      out.to = to->path().dotted();
    }
    return out;
  }
  return std::nullopt;
}

}  // namespace

WieraPeer::WieraPeer(sim::Simulation& sim, net::Network& network,
                     rpc::Registry& registry, Config config)
    : sim_(&sim), network_(&network), config_(std::move(config)) {
  endpoint_ = std::make_unique<rpc::Endpoint>(network, registry,
                                              config_.instance_id);
  // Every legacy counter/histogram is an instrument in the sim-wide metrics
  // registry, labeled by instance; accessors are thin views over these.
  metrics_ = &sim.telemetry().registry();
  const obs::LabelSet inst{{"instance", config_.instance_id}};
  catch_ups_completed_ = metrics_->counter("wiera_catch_ups_total", inst);
  replication_retries_ =
      metrics_->counter("wiera_replication_retries_total", inst);
  stale_serves_ = metrics_->counter("wiera_stale_serves_total", inst);
  breaker_fast_fails_ =
      metrics_->counter("wiera_breaker_fast_fails_total", inst);
  wire_checksum_failures_ =
      metrics_->counter("wiera_wire_checksum_failures_total", inst);
  repairs_ = metrics_->counter("wiera_repairs_total", inst);
  scrub_repairs_ = metrics_->counter("wiera_scrub_repairs_total", inst);
  scrub_rounds_ = metrics_->counter("wiera_scrub_rounds_total", inst);
  direct_puts_ = metrics_->counter("wiera_direct_puts_total", inst);
  replications_sent_ =
      metrics_->counter("wiera_replications_sent_total", inst);
  replications_accepted_ =
      metrics_->counter("wiera_replications_accepted_total", inst);
  // Registered only when batching is on: a counter family's mere presence
  // shows up in telemetry dumps, and batching-off deployments must produce
  // byte-identical dumps to the pre-batching code.
  if (config_.replicate_batch_max > 1) {
    replication_batches_ =
        metrics_->counter("wiera_replication_batches_total", inst);
    replication_batched_ops_ =
        metrics_->counter("wiera_replication_batched_ops_total", inst);
  }
  put_hist_ = metrics_->histogram("wiera_put_latency_us", inst);
  get_hist_ = metrics_->histogram("wiera_get_latency_us", inst);
  // Hot-key analytics (docs/METRICS_PIPELINE.md): bound eagerly but the
  // sketch registers its series lazily on first recorded access, so a
  // disabled (default) config adds nothing to telemetry dumps.
  key_stats_.configure(config_.key_stats);
  key_stats_.bind(metrics_, config_.instance_id);
  config_.local.instance_id = config_.instance_id;
  config_.local.region = config_.region;
  local_ = std::make_unique<tiera::TieraInstance>(sim, config_.local);
  local_->set_hooks(this);
  if (!config_.lock_service_node.empty()) {
    lock_client_ = std::make_unique<coord::LockClient>(
        *endpoint_, config_.lock_service_node);
  }
  queue_ = std::make_unique<sim::Channel<QueuedUpdate>>(sim, "peer.update-queue");
  unblocked_ = std::make_unique<sim::Event>(sim, "peer.unblocked");
  drained_ = std::make_unique<sim::Event>(sim, "peer.drained");
  unblocked_->set();
  if (config_.dynamic_consistency_policy.has_value()) {
    latency_threshold_ =
        extract_latency_threshold(*config_.dynamic_consistency_policy);
  }
  if (config_.max_inflight > 0) {
    endpoint_->set_admission(config_.max_inflight, config_.max_queue);
  }
  retry_budget_ = RetryBudget(config_.retry_budget_per_sec,
                              config_.retry_budget_capacity);
  if (config_.degradation_policy.has_value()) {
    stale_bound_ = extract_staleness_threshold(*config_.degradation_policy);
    allow_stale_ = stale_bound_ > Duration::zero();
  }
  register_handlers();
}

WieraPeer::~WieraPeer() { stop(); }

void WieraPeer::set_peers(std::vector<std::string> peer_ids) {
  peer_ids_.clear();
  for (auto& id : peer_ids) {
    if (id != config_.instance_id) peer_ids_.push_back(std::move(id));
  }
  storage_peer_ids_ = peer_ids_;
}

void WieraPeer::set_storage_peers(std::vector<std::string> storage_peer_ids) {
  storage_peer_ids_.clear();
  for (auto& id : storage_peer_ids) {
    if (id != config_.instance_id) {
      storage_peer_ids_.push_back(std::move(id));
    }
  }
}

void WieraPeer::start() {
  if (started_) return;
  started_ = true;
  stopping_ = false;
  local_->start();
  last_contact_ = sim_->now();
  sim_->spawn(queue_flusher(), config_.instance_id + "/queue-flusher");
  if (config_.scrub_interval > Duration::zero()) {
    sim_->spawn(scrub_loop(), config_.instance_id + "/scrubber");
  }
  if (config_.serve_lease > Duration::zero()) {
    sim_->spawn(availability_loop(),
                config_.instance_id + "/availability-loop");
  }
  if (config_.change_primary_policy.has_value()) {
    sim_->spawn(requests_monitor_loop(),
                config_.instance_id + "/requests-monitor");
  }
}

void WieraPeer::stop() {
  stopping_ = true;
  started_ = false;
  local_->stop();
}

int64_t WieraPeer::forwarded_puts_from(const std::string& origin) const {
  return metrics_->counter_value(
      "wiera_forwarded_puts_total",
      {{"instance", config_.instance_id}, {"origin", origin}});
}

void WieraPeer::register_handlers() {
  endpoint_->register_handler(
      method::kClientPut,
      [this](rpc::Message msg) -> sim::Task<Result<rpc::Message>> {
        auto req = decode_put_request(msg);
        if (!req.ok()) co_return req.status();
        PutRequest request = std::move(req).value();
        request.deadline = msg.deadline;  // frame metadata -> request
        request.trace = msg.trace();
        auto resp = co_await client_put(std::move(request));
        if (!resp.ok()) co_return resp.status();
        co_return encode(*resp);
      });
  endpoint_->register_handler(
      method::kClientGet,
      [this](rpc::Message msg) -> sim::Task<Result<rpc::Message>> {
        auto req = decode_get_request(msg);
        if (!req.ok()) co_return req.status();
        GetRequest request = std::move(req).value();
        request.deadline = msg.deadline;
        request.trace = msg.trace();
        auto resp = co_await client_get(std::move(request));
        if (!resp.ok()) co_return resp.status();
        co_return encode(*resp);
      });
  endpoint_->register_handler(
      method::kForwardPut,
      [this](rpc::Message msg) -> sim::Task<Result<rpc::Message>> {
        auto req = decode_put_request(msg);
        if (!req.ok()) co_return req.status();
        PutRequest request = std::move(req).value();
        request.forwarded = true;
        request.deadline = msg.deadline;
        request.trace = msg.trace();
        auto resp = co_await client_put(std::move(request));
        if (!resp.ok()) co_return resp.status();
        co_return encode(*resp);
      });
  endpoint_->register_handler(
      method::kForwardGet,
      [this](rpc::Message msg) -> sim::Task<Result<rpc::Message>> {
        auto req = decode_get_request(msg);
        if (!req.ok()) co_return req.status();
        // Serve locally; do not re-forward (avoids loops).
        GetRequest request = std::move(req).value();
        request.deadline = msg.deadline;
        // NOTE: no ternary around co_await — GCC 12 miscompiles conditional
        // operators whose branches both await (frame-slot corruption).
        Result<tiera::GetResult> local = not_found("unset");
        if (request.version == 0) {
          local = co_await local_->get(
              request.key,
              {.direct = request.direct, .deadline = request.deadline});
        } else {
          local = co_await local_->get_version(
              request.key, request.version,
              {.direct = request.direct, .deadline = request.deadline});
        }
        if (!local.ok()) co_return local.status();
        GetResponse out;
        out.value = std::move(local->value);
        out.version = local->version;
        out.served_by = config_.instance_id;
        out.checksum = object_checksum(request.key, out.version, out.value);
        co_return encode(out);
      });
  endpoint_->register_handler(
      method::kReplicate,
      [this](rpc::Message msg) -> sim::Task<Result<rpc::Message>> {
        auto req = decode_replicate_request(msg);
        if (!req.ok()) co_return req.status();
        // Verify before applying: a payload bit-flipped in transit must
        // never land in a replica. The sender sees the error, keeps the
        // update queued, and retries on the next flush tick.
        if (config_.local.verify_checksums && req->checksum != 0 &&
            object_checksum(req->key, req->version, req->value) !=
                req->checksum) {
          wire_checksum_failures_->inc();
          co_return data_loss("replicate of " + req->key + " to " +
                              config_.instance_id +
                              ": payload arrived corrupt");
        }
        tiera::TieraInstance::RemoteUpdate update;
        update.key = req->key;
        update.version = req->version;
        update.value = req->value;
        update.last_modified = req->last_modified;
        update.origin = req->origin;
        auto accepted = co_await local_->apply_remote_update(std::move(update));
        if (!accepted.ok()) co_return accepted.status();
        co_return encode(ReplicateResponse{*accepted});
      });
  endpoint_->register_handler(
      method::kReplicateBatch,
      [this](rpc::Message msg) -> sim::Task<Result<rpc::Message>> {
        auto req = decode_replicate_batch_request(msg);
        if (!req.ok()) co_return req.status();
        // Each op is verified and applied independently: a corrupt or
        // rejected op reports its own status without poisoning batch-mates
        // the sender would otherwise have to re-send.
        ReplicateBatchResponse out;
        out.results.reserve(req->ops.size());
        for (ReplicateRequest& op : req->ops) {
          ReplicateBatchResult res;
          if (config_.local.verify_checksums && op.checksum != 0 &&
              object_checksum(op.key, op.version, op.value) != op.checksum) {
            wire_checksum_failures_->inc();
            res.code = StatusCode::kDataLoss;
          } else {
            tiera::TieraInstance::RemoteUpdate update;
            update.key = op.key;
            update.version = op.version;
            update.value = op.value;
            update.last_modified = op.last_modified;
            update.origin = op.origin;
            auto accepted =
                co_await local_->apply_remote_update(std::move(update));
            if (!accepted.ok()) {
              res.code = accepted.status().code();
            } else {
              res.accepted = *accepted;
            }
          }
          out.results.push_back(res);
        }
        co_return encode(out);
      });
  endpoint_->register_handler(
      method::kSetConsistency,
      [this](rpc::Message msg) -> sim::Task<Result<rpc::Message>> {
        auto req = decode_set_consistency(msg);
        if (!req.ok()) co_return req.status();
        Status st = co_await apply_consistency_change(req->mode);
        co_return encode_status(st);
      });
  endpoint_->register_handler(
      method::kSetPrimary,
      [this](rpc::Message msg) -> sim::Task<Result<rpc::Message>> {
        auto req = decode_set_primary(msg);
        if (!req.ok()) co_return req.status();
        apply_primary_change(req->primary_instance);
        co_return encode_status(ok_status());
      });
  endpoint_->register_handler(
      method::kPing,
      [](rpc::Message) -> sim::Task<Result<rpc::Message>> {
        co_return encode_status(ok_status());
      });
  endpoint_->register_handler(
      method::kVersionList,
      [this](rpc::Message msg) -> sim::Task<Result<rpc::Message>> {
        auto req = decode_get_request(msg);
        if (!req.ok()) co_return req.status();
        VersionListResponse out;
        out.versions = local_->get_version_list(req->key);
        co_return encode(out);
      });
  endpoint_->register_handler(
      method::kRemove,
      [this](rpc::Message msg) -> sim::Task<Result<rpc::Message>> {
        auto req = decode_remove_request(msg);
        if (!req.ok()) co_return req.status();
        RemoveRequest request = std::move(req).value();
        request.deadline = msg.deadline;
        request.trace = msg.trace();
        Status st = co_await remove_key(std::move(request));
        co_return encode_status(st);
      });
  endpoint_->register_handler(
      method::kSyncPull,
      [this](rpc::Message msg) -> sim::Task<Result<rpc::Message>> {
        auto req = decode_sync_pull_request(msg);
        if (!req.ok()) co_return req.status();
        SyncPullResponse out;
        for (const std::string& key : local_->meta().keys()) {
          const metadb::ObjectMeta* obj = local_->meta().find(key);
          if (obj == nullptr) continue;
          const metadb::VersionMeta* vm = obj->latest_committed();
          if (vm == nullptr) continue;
          // Copy before suspending: a concurrent put/GC during get_version
          // can erase this version's metadata out from under vm.
          const int64_t version = vm->version;
          const TimePoint last_modified = vm->last_modified;
          const std::string origin = vm->origin;
          auto value = co_await local_->get_version(key, version);
          if (!value.ok()) continue;  // payload lost (volatile-only copy)
          ReplicateRequest entry;
          entry.key = key;
          entry.version = version;
          entry.value = std::move(value->value);
          entry.last_modified = last_modified;
          entry.origin = origin;
          entry.checksum = object_checksum(entry.key, entry.version,
                                           entry.value);
          out.entries.push_back(std::move(entry));
        }
        co_return encode(out);
      });
  endpoint_->register_handler(
      method::kScrubDigest,
      [this](rpc::Message msg) -> sim::Task<Result<rpc::Message>> {
        auto req = decode_scrub_digest_request(msg);
        if (!req.ok()) co_return req.status();
        // Metadata-only: the recorded checksum of each key's latest
        // committed version. No payload reads — the digest exchange stays
        // cheap even over large objects.
        ScrubDigestResponse out;
        for (const std::string& key : local_->meta().keys()) {
          const metadb::ObjectMeta* obj = local_->meta().find(key);
          if (obj == nullptr) continue;
          const metadb::VersionMeta* vm = obj->latest_committed();
          if (vm == nullptr) continue;
          out.entries.push_back(ScrubDigest{key, vm->version, vm->checksum});
        }
        co_return encode(out);
      });
  endpoint_->register_handler(
      method::kRepairFetch,
      [this](rpc::Message msg) -> sim::Task<Result<rpc::Message>> {
        auto req = decode_repair_fetch_request(msg);
        if (!req.ok()) co_return req.status();
        int64_t version = req->version;
        if (version == 0) {
          const metadb::ObjectMeta* obj = local_->meta().find(req->key);
          const metadb::VersionMeta* latest =
              obj == nullptr ? nullptr : obj->latest_committed();
          if (latest == nullptr) {
            co_return not_found("repair fetch: no committed version of " +
                                req->key + " on " + config_.instance_id);
          }
          version = latest->version;
        }
        // The read path verifies the payload against the recorded checksum,
        // so a replica whose own copy rotted answers kDataLoss here and the
        // requester moves on to the next replica.
        auto value = co_await local_->get_version(req->key, version);
        if (!value.ok()) co_return value.status();
        const metadb::VersionMeta* vm =
            local_->meta().find_version(req->key, version);
        ReplicateRequest entry;
        entry.key = req->key;
        entry.version = version;
        entry.value = std::move(value->value);
        entry.last_modified =
            vm != nullptr ? vm->last_modified : sim_->now();
        entry.origin = vm != nullptr ? vm->origin : config_.instance_id;
        entry.checksum = object_checksum(entry.key, entry.version,
                                         entry.value);
        co_return encode(entry);
      });
  endpoint_->register_handler(
      method::kColdStore,
      [this](rpc::Message msg) -> sim::Task<Result<rpc::Message>> {
        auto req = decode_replicate_request(msg);
        if (!req.ok()) co_return req.status();
        if (config_.local.verify_checksums && req->checksum != 0 &&
            object_checksum(req->key, req->version, req->value) !=
                req->checksum) {
          wire_checksum_failures_->inc();
          co_return data_loss("cold store of " + req->key + " on " +
                              config_.instance_id +
                              ": payload arrived corrupt");
        }
        store::StorageTier* tier =
            local_->tier_by_label(config_.cold_tier_label);
        if (tier == nullptr) {
          co_return failed_precondition("no cold tier configured on " +
                                        config_.instance_id);
        }
        std::string vkey =
            tiera::TieraInstance::versioned_key(req->key, req->version);
        Status st = co_await tier->put(std::move(vkey), req->value, {});
        if (!st.ok()) co_return st;
        metadb::VersionMeta& vm =
            local_->meta_mutable().upsert_version(req->key, req->version);
        vm.size = static_cast<int64_t>(req->value.size());
        vm.last_modified = req->last_modified;
        vm.origin = req->origin;
        vm.tier = config_.cold_tier_label;
        vm.committed = true;
        // Recomputed locally — never trusted from the wire.
        vm.checksum = object_checksum(req->key, req->version, req->value);
        co_return encode_status(ok_status());
      });
  endpoint_->register_handler(
      method::kColdFetch,
      [this](rpc::Message msg) -> sim::Task<Result<rpc::Message>> {
        auto req = decode_get_request(msg);
        if (!req.ok()) co_return req.status();
        auto local = co_await local_->get(req->key);
        if (!local.ok()) co_return local.status();
        GetResponse out;
        out.value = std::move(local->value);
        out.version = local->version;
        out.served_by = config_.instance_id;
        out.checksum = object_checksum(req->key, out.version, out.value);
        co_return encode(out);
      });
}

// ---------------------------------------------------------------- data plane

sim::Task<Result<PutResponse>> WieraPeer::client_put(PutRequest request) {
  // End-to-end write integrity: the client checksummed (key, version,
  // payload) before the bytes left it; reject rather than durably store a
  // payload that was corrupted in transit. Covers the forwarded-put hop
  // too (the checksum travels with the re-encoded request).
  if (config_.local.verify_checksums && request.checksum != 0 &&
      object_checksum(request.key, request.version, request.value) !=
          request.checksum) {
    wire_checksum_failures_->inc();
    co_return data_loss("put " + request.key + " on " + config_.instance_id +
                        ": payload arrived corrupt (checksum mismatch)");
  }
  if (Status gate = availability_gate(); !gate.ok()) co_return gate;
  co_await wait_if_blocked();
  op_started();
  const TimePoint start = sim_->now();
  tracer().annotate(request.trace,
                    std::string("mode=")
                        .append(consistency_mode_name(config_.mode)));

  record_put_source(request.client, request.forwarded);
  key_stats_.record_access(request.key, request.client, sim_->now(),
                           /*is_put=*/true);

  Result<PutResponse> result = internal_error("unreached");
  switch (config_.mode) {
    case ConsistencyMode::kMultiPrimaries:
      result = co_await put_multi_primaries(request);
      break;
    case ConsistencyMode::kPrimaryBackupSync:
    case ConsistencyMode::kPrimaryBackupAsync:
      result = co_await put_primary_backup(request);
      break;
    case ConsistencyMode::kEventual:
      result = co_await put_eventual(request);
      break;
  }

  const Duration latency = sim_->now() - start;
  put_hist_->record(latency);
  if (config_.network_monitor != nullptr) {
    config_.network_monitor->record_request_latency(config_.instance_id,
                                                    latency);
  }
  if (config_.workload_monitor != nullptr && !request.forwarded) {
    config_.workload_monitor->record_request(
        config_.instance_id, /*is_put=*/true,
        static_cast<int64_t>(request.value.size()));
  }
  // In strong modes the client-perceived put latency is the monitoring
  // signal; in eventual mode the flusher feeds replication latencies.
  if (config_.mode != ConsistencyMode::kEventual) {
    observe_put_latency(latency);
  }
  op_finished();
  co_return result;
}

sim::Task<Result<PutResponse>> WieraPeer::put_multi_primaries(
    PutRequest& request) {
  if (lock_client_ == nullptr) {
    co_return failed_precondition(
        "MultiPrimaries requires a lock service (none configured)");
  }
  const std::string lock_name = "key:" + request.key;
  Status st = co_await lock_client_->acquire(lock_name);
  if (!st.ok()) co_return st;

  Result<PutResponse> result = co_await put_local_and_replicate(
      request, /*synchronous=*/true);

  Status release_st = co_await lock_client_->release(lock_name);
  if (!release_st.ok()) {
    WLOG_WARN(kComponent) << id() << " lock release failed: "
                          << release_st.to_string();
  }
  co_return result;
}

sim::Task<Result<PutResponse>> WieraPeer::put_primary_backup(
    PutRequest& request) {
  if (!config_.is_primary) {
    // Forward to the primary (Fig. 3b else-branch). The forward is gated by
    // the per-peer breaker: once the primary has burned a few deadlines the
    // backup fails fast instead of parking every put until its deadline.
    CircuitBreaker* brk = breaker_for(config_.primary_instance);
    if (brk != nullptr && !brk->allow(sim_->now())) {
      breaker_fast_fails_->inc();
      tracer().annotate(request.trace,
                        "breaker=open target=" + config_.primary_instance);
      co_return unavailable("forward to " + config_.primary_instance +
                            ": circuit open");
    }
    PutRequest forwarded = request;
    forwarded.client = config_.instance_id;
    forwarded.forwarded = true;
    rpc::Message msg = encode(forwarded);
    auto resp = co_await endpoint_->call(
        config_.primary_instance, method::kForwardPut, std::move(msg),
        ctx_for(request.deadline, request.trace));
    // wiera-lint: allow(await-hazard) breakers_ is an emplace-only std::map; node references are stable
    if (brk != nullptr) {
      if (resp.ok() || (resp.status().code() != StatusCode::kUnavailable &&
                        resp.status().code() !=
                            StatusCode::kDeadlineExceeded)) {
        brk->record_success();  // the primary answered (even with an error)
      } else {
        brk->record_failure(sim_->now());
      }
    }
    if (!resp.ok()) co_return resp.status();
    co_return decode_put_response(*resp);
  }
  co_return co_await put_local_and_replicate(
      request, config_.mode == ConsistencyMode::kPrimaryBackupSync);
}

sim::Task<Result<PutResponse>> WieraPeer::put_eventual(PutRequest& request) {
  co_return co_await put_local_and_replicate(request, /*synchronous=*/false);
}

sim::Task<Result<PutResponse>> WieraPeer::put_local_and_replicate(
    PutRequest& request, bool synchronous) {
  if (config_.forwarding_only || local_->tier_count() == 0) {
    co_return failed_precondition("forwarding-only instance cannot store");
  }
  int64_t version = request.version;
  // Tier-access hop of the trace: how much of the put was the local write.
  const TraceContext tier_span =
      tracer().start_span("tiera.put", config_.instance_id, request.trace);
  Status tier_status = ok_status();
  if (version == 0) {
    auto put_result = co_await local_->put(
        request.key, request.value,
        {.direct = request.direct, .deadline = request.deadline});
    if (!put_result.ok()) {
      tier_status = put_result.status();
    } else {
      version = put_result->version;
    }
  } else {
    // Table 2 update(): the application names the version explicitly.
    tier_status = co_await local_->update(
        request.key, version, request.value,
        {.direct = request.direct, .deadline = request.deadline});
  }
  const std::string_view tier_st_name =
      tier_status.ok() ? "ok" : status_code_name(tier_status.code());
  tracer().end_span(tier_span, tier_st_name);
  if (!tier_status.ok()) co_return tier_status;

  ReplicateRequest update;
  update.key = request.key;
  update.version = version;
  update.value = request.value;
  // Carry the exact timestamp the local metadata recorded — replicas must
  // all compare the same value or LWW diverges.
  const metadb::VersionMeta* vm =
      local_->meta().find_version(request.key, version);
  update.last_modified = vm != nullptr ? vm->last_modified : sim_->now();
  update.origin = config_.instance_id;
  // The recorded checksum now binds the allocated version; replicas verify
  // it on receipt and recompute it locally when they apply the update.
  update.checksum = vm != nullptr
                        ? vm->checksum
                        : object_checksum(request.key, version, request.value);

  // The response carries the same checksum so the client can prove the
  // (version, ack) it receives wasn't garbled on the return leg.
  const uint64_t response_checksum = update.checksum;

  if (synchronous) {
    Status st = co_await replicate_to_all(std::move(update), request.deadline,
                                          request.trace);
    if (!st.ok()) co_return st;
  } else if (!storage_peer_ids_.empty()) {
    queue_->send(QueuedUpdate{std::move(update)});
    maybe_trigger_size_flush();
  }
  co_return PutResponse{version, response_checksum};
}

sim::Task<Result<GetResponse>> WieraPeer::client_get(GetRequest request) {
  // Request integrity: a GET whose key was garbled in transit must fail
  // loudly, not be answered as a clean miss (or with another object's
  // bytes). Clients checksum (key, version, client); internal forwards
  // leave it 0.
  if (config_.local.verify_checksums && request.checksum != 0 &&
      object_checksum(request.key, request.version, request.client) !=
          request.checksum) {
    wire_checksum_failures_->inc();
    co_return data_loss("get " + request.key + " on " + config_.instance_id +
                        ": request arrived corrupt (checksum mismatch)");
  }
  if (Status gate = availability_gate(); !gate.ok()) {
    // Graceful degradation (docs/OVERLOAD.md): a lease-lapsed replica may
    // answer from its local copy, flagged stale, while the BoundedStaleness
    // bound still covers it. Consumers treating the flag as a failure keep
    // strong semantics; the oracle records stale reads as unverified.
    if (stale_read_allowed()) {
      auto stale = co_await stale_local_get(request);
      if (stale.ok()) co_return stale;
    }
    co_return gate;
  }
  co_await wait_if_blocked();
  op_started();
  const TimePoint start = sim_->now();
  key_stats_.record_access(request.key, request.client, start,
                           /*is_put=*/false);
  Result<GetResponse> result = internal_error("unreached");

  // §5.4 get-forwarding / Fig. 6b forwarding instances.
  std::string forward_target;
  if (!config_.get_forward_target.empty() &&
      config_.get_forward_target != config_.instance_id) {
    forward_target = config_.get_forward_target;
  } else if (config_.forwarding_only) {
    forward_target = config_.primary_instance;
  }

  if (!forward_target.empty()) {
    CircuitBreaker* brk = breaker_for(forward_target);
    if (brk != nullptr && !brk->allow(sim_->now())) {
      breaker_fast_fails_->inc();
      tracer().annotate(request.trace, "breaker=open target=" + forward_target);
      result = unavailable("forward to " + forward_target +
                           ": circuit open");
    } else {
      rpc::Message msg = encode(request);
      auto resp = co_await endpoint_->call(
          forward_target, method::kForwardGet, std::move(msg),
          ctx_for(request.deadline, request.trace));
      if (brk != nullptr) {
        if (resp.ok() || (resp.status().code() != StatusCode::kUnavailable &&
                          resp.status().code() !=
                              StatusCode::kDeadlineExceeded)) {
          brk->record_success();  // the target answered (even with an error)
        } else {
          brk->record_failure(sim_->now());
        }
      }
      if (!resp.ok()) {
        result = resp.status();
      } else {
        result = decode_get_response(*resp);
      }
    }
    // Forward target unreachable or too slow: fall back to the local copy,
    // flagged stale, when the degradation policy covers it.
    if (!result.ok() &&
        (result.status().code() == StatusCode::kUnavailable ||
         result.status().code() == StatusCode::kDeadlineExceeded) &&
        stale_read_allowed()) {
      auto stale = co_await stale_local_get(request);
      if (stale.ok()) result = std::move(stale);
    }
  } else if (cold_remote_keys_.count(request.key) > 0 &&
             !config_.centralized_cold_target.empty()) {
    // §5.3: the only replica of this (cold) key lives at the centralized
    // cold-storage peer.
    rpc::Message msg = encode(request);
    auto resp = co_await endpoint_->call(
        config_.centralized_cold_target, method::kColdFetch, std::move(msg),
        ctx_for(request.deadline, request.trace));
    if (!resp.ok()) {
      result = resp.status();
    } else {
      result = decode_get_response(*resp);
    }
  } else {
    const TraceContext tier_span =
        tracer().start_span("tiera.get", config_.instance_id, request.trace);
    Result<tiera::GetResult> local = not_found("unset");
    if (request.version == 0) {
      local = co_await local_->get(
          request.key,
          {.direct = request.direct, .deadline = request.deadline});
    } else {
      local = co_await local_->get_version(
          request.key, request.version,
          {.direct = request.direct, .deadline = request.deadline});
    }
    const std::string_view tier_st_name =
        local.ok() ? "ok" : status_code_name(local.status().code());
    tracer().end_span(tier_span, tier_st_name);
    if (local.ok()) {
      GetResponse out;
      out.value = std::move(local->value);
      out.version = local->version;
      out.served_by = config_.instance_id;
      out.checksum = object_checksum(request.key, out.version, out.value);
      result = std::move(out);
    } else if (local.status().code() == StatusCode::kDataLoss &&
               !storage_peer_ids_.empty()) {
      // Every local copy failed its checksum and was quarantined: read-
      // repair from a healthy replica and serve the repaired payload
      // (docs/INTEGRITY.md).
      tracer().annotate(request.trace, "read_repair=true");
      result = co_await repair_get(request);
    } else if (local.status().code() == StatusCode::kNotFound &&
               !config_.is_primary && !config_.primary_instance.empty() &&
               config_.primary_instance != config_.instance_id) {
      // Replica miss: ask the primary.
      rpc::Message msg = encode(request);
      auto resp = co_await endpoint_->call(
          config_.primary_instance, method::kForwardGet, std::move(msg),
          ctx_for(request.deadline, request.trace));
      if (!resp.ok()) {
        result = resp.status();
      } else {
        result = decode_get_response(*resp);
      }
    } else {
      result = local.status();
    }
  }

  const Duration get_latency = sim_->now() - start;
  get_hist_->record(get_latency);
  if (config_.network_monitor != nullptr) {
    config_.network_monitor->record_request_latency(config_.instance_id,
                                                    get_latency);
  }
  if (config_.workload_monitor != nullptr) {
    const int64_t bytes =
        result.ok() ? static_cast<int64_t>(result->value.size()) : 0;
    config_.workload_monitor->record_request(config_.instance_id,
                                             /*is_put=*/false, bytes);
  }
  op_finished();
  co_return result;
}

std::vector<int64_t> WieraPeer::version_list(const std::string& key) const {
  return local_->get_version_list(key);
}

sim::Task<Status> WieraPeer::remove_key(RemoveRequest request) {
  if (Status gate = availability_gate(); !gate.ok()) co_return gate;
  co_await wait_if_blocked();
  op_started();
  Status local_status;
  if (request.version == 0) {
    local_status = co_await local_->remove(request.key);
  } else {
    local_status = co_await local_->remove_version(request.key,
                                                   request.version);
  }

  // Propagate the removal to every storage replica (fire-and-collect,
  // like a synchronous copy). Replicas that never had the key report
  // not-found, which is fine.
  if (request.propagate && !storage_peer_ids_.empty()) {
    RemoveRequest fanout = request;
    fanout.propagate = false;
    std::vector<sim::Task<Status>> tasks;
    for (const std::string& peer_id : storage_peer_ids_) {
      tasks.push_back([](rpc::Endpoint* ep, std::string target, rpc::Message m,
                         Context ctx) -> sim::Task<Status> {
        auto resp = co_await ep->call(std::move(target), method::kRemove,
                                      std::move(m), ctx);
        if (!resp.ok()) co_return resp.status();
        co_return decode_status(*resp);
      }(endpoint_.get(), peer_id, encode(fanout),
        ctx_for(request.deadline, request.trace)));
    }
    std::vector<Status> results =
        co_await sim::when_all(*sim_, std::move(tasks));
    for (const Status& st : results) {
      if (!st.ok() && st.code() != StatusCode::kNotFound) {
        op_finished();
        co_return st;
      }
    }
  }
  op_finished();
  co_return local_status;
}

// ---------------------------------------------------------------- replication

sim::Task<Status> WieraPeer::replicate_to_all(ReplicateRequest update,
                                              TimePoint deadline,
                                              TraceContext trace) {
  // Membership can widen while the fan-out is in flight (a recovered peer
  // rejoining). Keep sending until the acknowledged set covers the current
  // membership: a put must never report success while excluding a peer that
  // became a replication target again mid-flight — its catch-up snapshot may
  // predate this update, which would leave it permanently stale.
  FlatSet<std::string, 4> acked;
  while (true) {
    std::vector<std::string> targets;
    for (const std::string& peer_id : storage_peer_ids_) {
      if (acked.insert(peer_id).second) targets.push_back(peer_id);
    }
    if (targets.empty()) co_return ok_status();
    order_targets_by_health(targets);
    std::vector<sim::Task<Status>> tasks;
    tasks.reserve(targets.size());
    for (const std::string& peer_id : targets) {
      tasks.push_back(send_replicate(peer_id, update, deadline, trace));
    }
    std::vector<Status> statuses =
        co_await sim::when_all(*sim_, std::move(tasks));
    for (const Status& st : statuses) {
      if (!st.ok()) co_return st;
    }
  }
}

sim::Task<Status> WieraPeer::send_replicate(std::string peer_id,
                                            ReplicateRequest update,
                                            TimePoint deadline,
                                            TraceContext trace) {
  // One replication span per target covering every retry attempt, so a
  // retried send shows up as one annotated span, not duplicate spans.
  const TraceContext span = tracer().start_span(
      "peer.replicate " + peer_id, config_.instance_id, trace);
  Status st = co_await send_replicate_impl(std::move(peer_id),
                                           std::move(update), deadline, span);
  const std::string_view st_name = st.ok() ? "ok" : status_code_name(st.code());
  tracer().end_span(span, st_name);
  co_return st;
}

sim::Task<Status> WieraPeer::send_replicate_impl(std::string peer_id,
                                                 ReplicateRequest update,
                                                 TimePoint deadline,
                                                 TraceContext span) {
  const std::string target = std::move(peer_id);
  Status last = unavailable("replicate: no attempt made");
  for (int attempt = 0; attempt <= config_.replicate_retries; ++attempt) {
    if (attempt > 0) {
      // Retries spend the budget: under a sustained brownout the token
      // bucket drains and the send fails with its last error instead of
      // amplifying the overload (docs/OVERLOAD.md).
      if (!retry_budget_.try_spend(sim_->now())) {
        tracer().annotate(span, "retry_budget=denied");
        co_return last;
      }
      replication_retries_->inc();
      tracer().annotate(span, "retry=" + std::to_string(attempt));
      co_await sim_->delay(config_.replicate_backoff *
                           static_cast<double>(int64_t{1} << (attempt - 1)));
      if (stopping_) co_return last;
    }
    if (deadline != TimePoint::max() && sim_->now() >= deadline) {
      co_return deadline_exceeded("replicate to " + target +
                                  ": deadline exceeded");
    }
    CircuitBreaker* brk = breaker_for(target);
    if (brk != nullptr && !brk->allow(sim_->now())) {
      // Fail fast; the backoff loop above still paces any retry attempts.
      breaker_fast_fails_->inc();
      tracer().annotate(span, "breaker=open");
      last = unavailable("replicate to " + target + ": circuit open");
      continue;
    }
    rpc::Message msg = encode(update);
    replications_sent_->inc();
    const TimePoint start = sim_->now();
    auto resp = co_await endpoint_->call(target, method::kReplicate,
                                         std::move(msg),
                                         ctx_for(deadline, span));
    if (config_.network_monitor != nullptr) {
      config_.network_monitor->record_link_latency(config_.instance_id, target,
                                                   sim_->now() - start);
    }
    if (config_.health != nullptr && resp.ok()) {
      // Successful acks only: timeouts would pollute the EWMA with the
      // deadline value instead of the peer's actual service time.
      config_.health->record_latency(target, sim_->now() - start, sim_->now());
    }
    if (brk != nullptr) {
      // Unreachability and timeouts mark the target unhealthy; any decoded
      // response (even an application error) proves it is alive.
      if (!resp.ok() && (resp.status().code() == StatusCode::kUnavailable ||
                         resp.status().code() ==
                             StatusCode::kDeadlineExceeded)) {
        brk->record_failure(sim_->now());
      } else {
        brk->record_success();
      }
    }
    if (!resp.ok()) {
      last = resp.status();
      // Only unreachability is worth retrying; other errors are permanent.
      if (last.code() == StatusCode::kUnavailable) continue;
      co_return last;
    }
    auto decoded = decode_replicate_response(*resp);
    if (!decoded.ok()) co_return decoded.status();
    if (decoded->accepted) replications_accepted_->inc();
    co_return ok_status();
  }
  co_return last;
}

sim::Task<void> WieraPeer::queue_flusher() {
  while (!stopping_) {
    co_await sim_->delay(config_.queue_flush_interval);
    if (stopping_) break;
    Status st = co_await flush_queue();
    if (!st.ok()) {
      WLOG_WARN(kComponent) << id() << " queue flush: " << st.to_string();
    }
  }
}

sim::Task<Status> WieraPeer::flush_queue() {
  // Bound this round to the items queued when it started; requeued
  // failures are retried on the *next* flush tick rather than spinning.
  size_t budget = queue_->size();
  // Async replication is its own root trace: the originating put returned
  // long ago, so the flush round cannot ride its span tree. One root per
  // non-empty round keeps the span volume proportional to actual work.
  TraceContext flush_trace;
  if (budget > 0) {
    flush_trace = tracer().start_trace("peer.flush", config_.instance_id);
  }
  if (config_.replicate_batch_max > 1) {
    // Coalescing path (docs/PERFORMANCE.md): one wire message per target
    // per chunk of up to replicate_batch_max queued updates.
    Status batched = co_await flush_batched(budget, flush_trace);
    const std::string_view batched_st =
        batched.ok() ? "ok" : status_code_name(batched.code());
    tracer().end_span(flush_trace, batched_st);
    co_return batched;
  }
  Status first_error;
  while (budget-- > 0 && !queue_->empty()) {
    std::optional<QueuedUpdate> item = queue_->try_recv();
    if (!item.has_value()) break;
    const TimePoint start = sim_->now();
    QueuedUpdate retry_copy = *item;  // kept in case the fan-out fails
    Status st = co_await replicate_to_all(std::move(item->update),
                                          TimePoint::max(), flush_trace);
    // In eventual mode, background replication latency is the monitoring
    // signal for switching back to strong consistency (Fig. 7 points 1, 2).
    if (config_.mode == ConsistencyMode::kEventual) {
      observe_put_latency(sim_->now() - start);
    }
    if (!st.ok()) {
      // A replica was unreachable: requeue and retry next tick. Replicas
      // that already accepted the update reject the duplicate via LWW, so
      // the retry is idempotent.
      queue_->send(std::move(retry_copy));
      if (first_error.ok()) first_error = st;
    }
  }
  const std::string_view flush_st =
      first_error.ok() ? "ok" : status_code_name(first_error.code());
  tracer().end_span(flush_trace, flush_st);
  co_return first_error;
}

sim::Task<Status> WieraPeer::flush_batched(size_t budget,
                                           TraceContext flush_trace) {
  Status first_error;
  while (budget > 0 && !queue_->empty()) {
    std::vector<QueuedUpdate> chunk;
    const auto max_ops = static_cast<size_t>(config_.replicate_batch_max);
    while (chunk.size() < max_ops && budget > 0) {
      std::optional<QueuedUpdate> item = queue_->try_recv();
      if (!item.has_value()) break;
      budget--;
      chunk.push_back(std::move(*item));
    }
    if (chunk.empty()) break;
    const TimePoint start = sim_->now();
    std::vector<Status> op_status(chunk.size(), ok_status());
    Status st = co_await replicate_batch_to_all(chunk, op_status, flush_trace);
    if (config_.mode == ConsistencyMode::kEventual) {
      observe_put_latency(sim_->now() - start);
    }
    if (!st.ok() && first_error.ok()) first_error = st;
    // Requeue exactly the ops that failed somewhere; accepted batch-mates
    // are done (replicas reject their duplicates via LWW anyway, but not
    // re-sending them is the point of per-op outcomes).
    for (size_t i = 0; i < chunk.size(); ++i) {
      if (!op_status[i].ok()) queue_->send(std::move(chunk[i]));
    }
  }
  co_return first_error;
}

sim::Task<Status> WieraPeer::replicate_batch_to_all(
    std::vector<QueuedUpdate>& chunk, std::vector<Status>& op_status,
    TraceContext flush_trace) {
  // Same membership-widening loop as replicate_to_all: keep sending until
  // the acknowledged set covers current membership, so a peer that rejoins
  // mid-flush still receives every update in this chunk.
  FlatSet<std::string, 4> acked;
  Status first_error;
  while (true) {
    std::vector<std::string> targets;
    for (const std::string& peer_id : storage_peer_ids_) {
      if (acked.insert(peer_id).second) targets.push_back(peer_id);
    }
    if (targets.empty()) break;
    order_targets_by_health(targets);
    std::vector<sim::Task<std::vector<Status>>> tasks;
    tasks.reserve(targets.size());
    for (const std::string& peer_id : targets) {
      tasks.push_back(send_replicate_batch(peer_id, chunk, flush_trace));
    }
    std::vector<std::vector<Status>> per_target =
        co_await sim::when_all(*sim_, std::move(tasks));
    for (const std::vector<Status>& statuses : per_target) {
      for (size_t i = 0; i < statuses.size() && i < op_status.size(); ++i) {
        if (!statuses[i].ok()) {
          if (op_status[i].ok()) op_status[i] = statuses[i];
          if (first_error.ok()) first_error = statuses[i];
        }
      }
    }
  }
  co_return first_error;
}

sim::Task<std::vector<Status>> WieraPeer::send_replicate_batch(
    std::string peer_id, const std::vector<QueuedUpdate>& chunk,
    TraceContext flush_trace) {
  const std::string target = std::move(peer_id);
  const std::string batched = "batched=" + std::to_string(chunk.size());
  // One span per logical op, exactly as the per-op path has — a coalesced
  // send must not make replication lag invisible per update. The wire-level
  // batch gets its own span; the op spans close with their op's outcome.
  std::vector<TraceContext> op_spans;
  op_spans.reserve(chunk.size());
  for (const QueuedUpdate& item : chunk) {
    TraceContext span = tracer().start_span("peer.replicate " + target,
                                            config_.instance_id, flush_trace);
    tracer().annotate(span, batched);
    tracer().annotate(span, "key=" + item.update.key);
    op_spans.push_back(span);
  }
  const TraceContext batch_span = tracer().start_span(
      "peer.replicate_batch " + target, config_.instance_id, flush_trace);
  tracer().annotate(batch_span, batched);

  std::vector<Status> out;
  Status last = unavailable("replicate batch: no attempt made");
  bool done = false;
  for (int attempt = 0; attempt <= config_.replicate_retries && !done;
       ++attempt) {
    if (attempt > 0) {
      // Same budget/backoff pacing as send_replicate_impl: a coalesced
      // retry is still a retry and must drain the same token bucket.
      if (!retry_budget_.try_spend(sim_->now())) {
        tracer().annotate(batch_span, "retry_budget=denied");
        break;
      }
      replication_retries_->inc();
      tracer().annotate(batch_span, "retry=" + std::to_string(attempt));
      co_await sim_->delay(config_.replicate_backoff *
                           static_cast<double>(int64_t{1} << (attempt - 1)));
      if (stopping_) break;
    }
    CircuitBreaker* brk = breaker_for(target);
    if (brk != nullptr && !brk->allow(sim_->now())) {
      breaker_fast_fails_->inc();
      tracer().annotate(batch_span, "breaker=open");
      last = unavailable("replicate to " + target + ": circuit open");
      continue;
    }
    ReplicateBatchRequest req;
    req.origin = config_.instance_id;
    req.ops.reserve(chunk.size());
    // Payload blobs are ref-counted: rebuilding the request per attempt
    // shares the bytes, it does not copy them.
    for (const QueuedUpdate& item : chunk) req.ops.push_back(item.update);
    rpc::Message msg = encode(req);
    replication_batches_->inc();
    replication_batched_ops_->inc(static_cast<int64_t>(chunk.size()));
    const TimePoint start = sim_->now();
    auto resp = co_await endpoint_->call(target, method::kReplicateBatch,
                                         std::move(msg),
                                         ctx_for(TimePoint::max(), batch_span));
    if (config_.network_monitor != nullptr) {
      config_.network_monitor->record_link_latency(config_.instance_id, target,
                                                   sim_->now() - start);
    }
    if (config_.health != nullptr && resp.ok()) {
      config_.health->record_latency(target, sim_->now() - start, sim_->now());
    }
    if (brk != nullptr) {
      if (!resp.ok() && (resp.status().code() == StatusCode::kUnavailable ||
                         resp.status().code() ==
                             StatusCode::kDeadlineExceeded)) {
        brk->record_failure(sim_->now());
      } else {
        brk->record_success();
      }
    }
    if (!resp.ok()) {
      last = resp.status();
      // Only unreachability is worth retrying; other errors are permanent.
      if (last.code() == StatusCode::kUnavailable) continue;
      break;
    }
    auto decoded = decode_replicate_batch_response(*resp);
    if (!decoded.ok()) {
      last = decoded.status();
      break;
    }
    out.reserve(chunk.size());
    for (size_t i = 0; i < chunk.size(); ++i) {
      if (i < decoded->results.size()) {
        const ReplicateBatchResult& res = decoded->results[i];
        if (res.code == StatusCode::kOk) {
          if (res.accepted) replications_accepted_->inc();
          out.push_back(ok_status());
        } else {
          out.push_back(Status(res.code, "batched replicate to " + target +
                                             ": op rejected"));
        }
      } else {
        out.push_back(invalid_argument("batched replicate to " + target +
                                       ": short response"));
      }
    }
    done = true;
  }
  if (!done) out.assign(chunk.size(), last);
  const std::string_view batch_st =
      done ? "ok" : status_code_name(last.code());
  tracer().end_span(batch_span, batch_st);
  for (size_t i = 0; i < op_spans.size(); ++i) {
    const Status& st = out[i];
    tracer().end_span(op_spans[i],
                      st.ok() ? "ok" : status_code_name(st.code()));
  }
  co_return out;
}

void WieraPeer::maybe_trigger_size_flush() {
  if (config_.replicate_batch_max <= 1 || size_flush_inflight_ || stopping_) {
    return;
  }
  if (queue_->size() < static_cast<size_t>(config_.replicate_batch_max)) {
    return;
  }
  size_flush_inflight_ = true;
  sim_->spawn(size_triggered_flush(), config_.instance_id + "/size-flush");
}

sim::Task<void> WieraPeer::size_triggered_flush() {
  Status st = co_await flush_queue();
  size_flush_inflight_ = false;
  if (!st.ok()) {
    WLOG_WARN(kComponent) << id() << " size-triggered flush: "
                          << st.to_string();
  }
}

// ---------------------------------------------------------------- blocking

sim::Task<void> WieraPeer::wait_if_blocked() {
  while (blocking_) {
    co_await unblocked_->wait();
  }
}

void WieraPeer::op_finished() {
  in_flight_--;
  assert(in_flight_ >= 0);
  if (in_flight_ == 0) drained_->set();
}

sim::Task<Status> WieraPeer::apply_consistency_change(ConsistencyMode mode) {
  if (mode == config_.mode) co_return ok_status();
  // Block new requests; let in-flight operations and queued updates finish
  // first (§3.3.2).
  blocking_ = true;
  unblocked_->reset();
  while (in_flight_ > 0) {
    drained_->reset();
    co_await drained_->wait();
  }
  Status st = co_await flush_queue();
  if (!st.ok()) {
    WLOG_WARN(kComponent) << id() << " drain during change: " << st.to_string();
  }
  config_.mode = mode;
  streak_valid_ = false;  // restart monitor streaks under the new mode
  blocking_ = false;
  unblocked_->set();
  WLOG_INFO(kComponent) << id() << " consistency changed to "
                        << consistency_mode_name(mode);
  co_return ok_status();
}

void WieraPeer::apply_primary_change(const std::string& new_primary) {
  config_.primary_instance = new_primary;
  config_.is_primary = (new_primary == config_.instance_id);
  // Reset the requests monitor so the new primary starts a fresh window.
  put_history_.clear();
  requests_condition_active_ = false;
}

// ---------------------------------------------------------------- recovery

Status WieraPeer::availability_gate() {
  // A draining peer refuses new client work in *every* mode — the point of
  // the cooperative drain is that clients fail over to the remaining
  // replicas before this peer detaches, so nothing new lands between its
  // final hand-off flush and the detach (docs/SCENARIOS.md).
  if (draining_) {
    return unavailable(config_.instance_id + " is draining");
  }
  // Eventual mode keeps serving through faults (that is its contract; the
  // oracle only demands convergence after quiescence). The strong modes
  // must not serve stale data from an isolated or freshly-restarted node.
  if (config_.mode == ConsistencyMode::kEventual) return ok_status();
  if (config_.serve_lease > Duration::zero() &&
      sim_->now() - last_contact_ > config_.serve_lease) {
    if (!recovering_) {
      WLOG_INFO(kComponent) << id() << " serve lease lapsed; recovering";
    }
    recovering_ = true;
  }
  if (recovering_) {
    return unavailable(config_.instance_id + " is recovering");
  }
  return ok_status();
}

sim::Task<void> WieraPeer::availability_loop() {
  const std::string authority = config_.lease_authority.empty()
                                    ? config_.lock_service_node
                                    : config_.lease_authority;
  if (authority.empty()) co_return;
  const Duration interval = config_.serve_lease / 3;
  while (!stopping_) {
    co_await sim_->delay(interval);
    if (stopping_) break;
    rpc::WireWriter w;
    w.put_string(config_.instance_id);
    rpc::Message renew{w.take()};
    auto resp = co_await endpoint_->call(authority, method::kLeaseRenew,
                                         std::move(renew));
    if (resp.ok()) last_contact_ = sim_->now();
  }
}

void WieraPeer::on_crash() {
  local_->wipe_volatile();
  // The outbound replication queue lived in memory: it dies with the node.
  while (queue_->try_recv().has_value()) {
  }
  recovering_ = true;
  // A crashed peer lost its volatile tiers: its local copy is not merely
  // stale, it may be gone or torn, so the degradation path stays closed
  // until catch-up completes.
  data_suspect_ = true;
  journal().event("peer", "crash").str("instance", config_.instance_id);
  WLOG_INFO(kComponent) << id() << " crashed: volatile state lost";
}

sim::Task<Status> WieraPeer::catch_up(std::vector<std::string> sources) {
  Status last = unavailable("catch-up: no source available");
  for (const std::string& source : sources) {
    if (source == config_.instance_id) continue;
    SyncPullRequest pull{config_.instance_id};
    rpc::Message msg = encode(pull);
    auto resp = co_await endpoint_->call(source, method::kSyncPull,
                                         std::move(msg));
    if (!resp.ok()) {
      last = resp.status();
      continue;
    }
    auto decoded = decode_sync_pull_response(*resp);
    if (!decoded.ok()) {
      last = decoded.status();
      continue;
    }
    for (ReplicateRequest& entry : decoded->entries) {
      // A snapshot entry corrupted in transit must not be merged: skip it
      // (the scrubber's digest exchange repairs the gap later).
      if (config_.local.verify_checksums && entry.checksum != 0 &&
          object_checksum(entry.key, entry.version, entry.value) !=
              entry.checksum) {
        wire_checksum_failures_->inc();
        WLOG_WARN(kComponent) << id() << " catch-up entry " << entry.key
                              << " arrived corrupt; skipped";
        continue;
      }
      tiera::TieraInstance::RemoteUpdate update;
      update.key = entry.key;
      update.version = entry.version;
      update.value = entry.value;
      update.last_modified = entry.last_modified;
      update.origin = entry.origin;
      auto accepted = co_await local_->apply_remote_update(std::move(update));
      if (!accepted.ok()) {
        WLOG_WARN(kComponent) << id() << " catch-up merge of " << entry.key
                              << " failed: " << accepted.status().to_string();
      }
    }
    // Push survivors the other way: any durable local write the outage kept
    // from replicating goes back on the queue for the flusher.
    for (const std::string& key : local_->meta().keys()) {
      const metadb::ObjectMeta* obj = local_->meta().find(key);
      if (obj == nullptr) continue;
      const metadb::VersionMeta* vm = obj->latest_committed();
      if (vm == nullptr) continue;
      // Copy before suspending: get_version can interleave with a put/GC
      // that erases this version's metadata out from under vm.
      const int64_t version = vm->version;
      const TimePoint last_modified = vm->last_modified;
      const std::string origin = vm->origin;
      auto value = co_await local_->get_version(key, version);
      if (!value.ok()) continue;
      ReplicateRequest entry;
      entry.key = key;
      entry.version = version;
      entry.value = std::move(value->value);
      entry.last_modified = last_modified;
      entry.origin = origin;
      entry.checksum = object_checksum(entry.key, entry.version, entry.value);
      queue_->send(QueuedUpdate{std::move(entry)});
    }
    catch_ups_completed_->inc();
    journal()
        .event("peer", "catch_up")
        .str("instance", config_.instance_id)
        .str("source", source);
    WLOG_INFO(kComponent) << id() << " caught up from " << source;
    co_return ok_status();
  }
  co_return last;
}

void WieraPeer::finish_recovery() {
  recovering_ = false;
  data_suspect_ = false;
  last_contact_ = sim_->now();
}

// ------------------------------------------------------- cooperative drain

void WieraPeer::enter_draining() {
  if (draining_) return;
  draining_ = true;
  journal().event("peer", "drain_begin").str("instance", config_.instance_id);
  WLOG_INFO(kComponent) << id() << " draining: refusing new client ops";
}

void WieraPeer::exit_draining() {
  if (!draining_) return;
  draining_ = false;
  journal().event("peer", "drain_abort").str("instance", config_.instance_id);
  WLOG_INFO(kComponent) << id() << " drain aborted: serving again";
}

sim::Task<Status> WieraPeer::drain(TimePoint deadline, bool flush_only) {
  // Phase 1: push everything already queued. flush_queue rides the normal
  // replication path (breakers, retry budget, batching) and re-queues what
  // it could not deliver, so we loop with a pause until the queue is empty
  // or the deadline passes.
  while (queue_->size() > 0) {
    if (sim_->now() >= deadline) {
      co_return deadline_exceeded(config_.instance_id + " drain: " +
                                  std::to_string(queue_->size()) +
                                  " updates still queued at the deadline");
    }
    const Status flushed = co_await flush_queue();
    if (!flushed.ok() && queue_->size() > 0) {
      co_await sim_->delay(msec(200));
    }
  }
  if (flush_only) co_return ok_status();
  // Phase 2: enqueue the latest committed version of every local key —
  // catch_up's push-back half — so replicas that missed an update (or that
  // LWW-lost one we hold) converge before this peer detaches. Replicas drop
  // duplicates by version, so re-sending the already-replicated majority is
  // idle work, not corruption.
  for (const std::string& key : local_->meta().keys()) {
    const metadb::ObjectMeta* obj = local_->meta().find(key);
    if (obj == nullptr) continue;
    const metadb::VersionMeta* vm = obj->latest_committed();
    if (vm == nullptr) continue;
    // Copy before suspending: get_version can interleave with GC that
    // erases this version's metadata out from under vm.
    const int64_t version = vm->version;
    const TimePoint last_modified = vm->last_modified;
    const std::string origin = vm->origin;
    auto value = co_await local_->get_version(key, version);
    if (!value.ok()) continue;
    ReplicateRequest entry;
    entry.key = key;
    entry.version = version;
    entry.value = std::move(value->value);
    entry.last_modified = last_modified;
    entry.origin = origin;
    entry.checksum = object_checksum(entry.key, entry.version, entry.value);
    queue_->send(QueuedUpdate{std::move(entry)});
  }
  while (queue_->size() > 0) {
    if (sim_->now() >= deadline) {
      co_return deadline_exceeded(config_.instance_id + " drain hand-off: " +
                                  std::to_string(queue_->size()) +
                                  " updates still queued at the deadline");
    }
    const Status flushed = co_await flush_queue();
    if (!flushed.ok() && queue_->size() > 0) {
      co_await sim_->delay(msec(200));
    }
  }
  journal()
      .event("peer", "drain_complete")
      .str("instance", config_.instance_id);
  WLOG_INFO(kComponent) << id() << " drain hand-off complete";
  co_return ok_status();
}

// ------------------------------------------------------- overload robustness

void WieraPeer::order_targets_by_health(
    std::vector<std::string>& targets) const {
  if (config_.health == nullptr || !config_.health->enabled()) return;
  std::stable_partition(targets.begin(), targets.end(),
                        [this](const std::string& t) {
                          return !config_.health->in_probation(t);
                        });
}

CircuitBreaker* WieraPeer::breaker_for(const std::string& target) {
  if (config_.breaker_failures <= 0) return nullptr;
  auto it = breakers_.find(target);
  if (it == breakers_.end()) {
    CircuitBreaker::Options options;
    options.failure_threshold = config_.breaker_failures;
    options.open_for = config_.breaker_open_for;
    it = breakers_.emplace(target, CircuitBreaker(options)).first;
    // Fold every transition into the determinism trace: a replayed chaos
    // run must trip the same breakers in the same order.
    it->second.set_transition_hook(
        [this, target](CircuitBreaker::State, CircuitBreaker::State to) {
          sim_->checker().fold_trace(
              fnv1a(config_.instance_id + "|" + target + "|" +
                    CircuitBreaker::state_name(to)));
          metrics_
              ->counter("wiera_breaker_transitions_total",
                        {{"instance", config_.instance_id},
                         {"target", target},
                         {"state", CircuitBreaker::state_name(to)}})
              ->inc();
          journal()
              .event("peer", "breaker_transition")
              .str("instance", config_.instance_id)
              .str("target", target)
              .str("state", CircuitBreaker::state_name(to));
        });
  }
  return &it->second;
}

const CircuitBreaker* WieraPeer::breaker(const std::string& target) const {
  auto it = breakers_.find(target);
  return it == breakers_.end() ? nullptr : &it->second;
}

Context WieraPeer::ctx_for(TimePoint deadline, TraceContext trace) {
  Context ctx;
  if (deadline != TimePoint::max()) ctx = Context::with_deadline(deadline);
  ctx.trace = trace;
  return ctx;
}

bool WieraPeer::stale_read_allowed() const {
  if (!allow_stale_ || data_suspect_) return false;
  return sim_->now() - last_contact_ <= stale_bound_;
}

sim::Task<Result<GetResponse>> WieraPeer::stale_local_get(
    const GetRequest& request) {
  Result<tiera::GetResult> local = not_found("unset");
  if (request.version == 0) {
    local = co_await local_->get(
        request.key, {.direct = request.direct, .deadline = request.deadline});
  } else {
    local = co_await local_->get_version(
        request.key, request.version,
        {.direct = request.direct, .deadline = request.deadline});
  }
  if (!local.ok()) co_return local.status();
  GetResponse out;
  out.value = std::move(local->value);
  out.version = local->version;
  out.served_by = config_.instance_id;
  out.checksum = object_checksum(request.key, out.version, out.value);
  out.stale = true;
  stale_serves_->inc();
  tracer().annotate(request.trace, "stale=true");
  journal()
      .event("peer", "stale_serve")
      .str("instance", config_.instance_id)
      .str("key", request.key)
      .trace(request.trace);
  WLOG_INFO(kComponent) << id() << " served " << request.key
                        << " stale (degradation)";
  co_return out;
}

// ------------------------------------------------- integrity: repair / scrub

sim::Task<Status> WieraPeer::fetch_and_merge(std::string source,
                                             std::string key, int64_t version,
                                             bool from_scrub,
                                             TraceContext trace) {
  RepairFetchRequest fetch{key, version};
  auto resp = co_await endpoint_->call(source, method::kRepairFetch,
                                       encode(fetch),
                                       ctx_for(TimePoint::max(), trace));
  if (!resp.ok()) co_return resp.status();
  auto entry = decode_replicate_request(*resp);
  if (!entry.ok()) co_return entry.status();
  // A repair payload must prove itself unconditionally (not gated by
  // verify_checksums): installing an unverified "repair" would spread
  // corruption instead of healing it.
  if (entry->checksum == 0 ||
      object_checksum(entry->key, entry->version, entry->value) !=
          entry->checksum) {
    wire_checksum_failures_->inc();
    co_return data_loss("repair fetch of " + key + " from " + source +
                        " arrived corrupt");
  }
  tiera::TieraInstance::RemoteUpdate update;
  update.key = entry->key;
  update.version = entry->version;
  update.value = entry->value;
  update.last_modified = entry->last_modified;
  update.origin = entry->origin;
  auto accepted = co_await local_->apply_remote_update(std::move(update));
  if (!accepted.ok()) co_return accepted.status();
  if (*accepted) {
    if (from_scrub) {
      scrub_repairs_->inc();
    } else {
      repairs_->inc();
    }
    // Fold every applied repair into the determinism trace: a replayed
    // corruption run must heal the same objects in the same order.
    sim_->checker().fold_trace(
        fnv1a(config_.instance_id + "|repair|" + entry->key + "#" +
              std::to_string(entry->version)));
    journal()
        .event("peer", "repair")
        .str("instance", config_.instance_id)
        .str("key", entry->key)
        .num("version", entry->version)
        .str("source", source)
        .boolean("scrub", from_scrub)
        .trace(trace);
    WLOG_INFO(kComponent) << id()
                          << (from_scrub ? " scrub-repaired " : " read-repaired ")
                          << entry->key << "#" << entry->version << " from "
                          << source;
  }
  co_return ok_status();
}

sim::Task<Result<GetResponse>> WieraPeer::repair_get(GetRequest request) {
  Status last = unavailable("read-repair of " + request.key +
                            ": no replica reachable");
  // Snapshot the membership: set_storage_peers can rewrite the list while a
  // fetch is in flight, invalidating this loop's iterator.
  const std::vector<std::string> repair_peers = storage_peer_ids_;
  for (const std::string& peer_id : repair_peers) {
    Status st = co_await fetch_and_merge(peer_id, request.key, request.version,
                                         /*from_scrub=*/false, request.trace);
    if (!st.ok()) {
      last = st;
      continue;
    }
    // Serve the repaired object through the normal (checksum-verified)
    // local read path rather than echoing the fetched bytes.
    Result<tiera::GetResult> local = not_found("unset");
    if (request.version == 0) {
      local = co_await local_->get(
          request.key,
          {.direct = request.direct, .deadline = request.deadline});
    } else {
      local = co_await local_->get_version(
          request.key, request.version,
          {.direct = request.direct, .deadline = request.deadline});
    }
    if (!local.ok()) {
      last = local.status();
      continue;
    }
    GetResponse out;
    out.value = std::move(local->value);
    out.version = local->version;
    out.served_by = config_.instance_id;
    out.checksum = object_checksum(request.key, out.version, out.value);
    co_return out;
  }
  co_return last;
}

sim::Task<void> WieraPeer::scrub_loop() {
  while (!stopping_) {
    co_await sim_->delay(config_.scrub_interval);
    if (stopping_) break;
    // A recovering peer is about to catch up wholesale; scrubbing its
    // suspect state would be wasted work.
    if (recovering_) continue;
    co_await run_scrub();
  }
}

sim::Task<void> WieraPeer::run_scrub() {
  if (config_.forwarding_only || local_->tier_count() == 0) co_return;
  scrub_rounds_->inc();
  // A scrub round is its own root trace: repairs it triggers chain under it.
  const TraceContext scrub_trace =
      tracer().start_trace("peer.scrub", config_.instance_id);

  // Pass 1 — local verification: every committed version is re-read against
  // its recorded checksum; corrupt copies are quarantined. Keys whose last
  // good local copy is gone get repaired from the first healthy replica.
  // Snapshot the membership once for both passes: set_storage_peers can
  // rewrite the list while a fetch or digest call is in flight.
  const std::vector<std::string> scrub_peers = storage_peer_ids_;
  std::vector<std::string> lost = co_await local_->scrub_local();
  for (const std::string& key : lost) {
    for (const std::string& peer_id : scrub_peers) {
      Status st = co_await fetch_and_merge(peer_id, key, /*version=*/0,
                                           /*from_scrub=*/true, scrub_trace);
      if (st.ok()) break;
    }
  }

  // Pass 2 — digest exchange: compare each storage peer's per-key
  // (version, checksum) summary against ours. Checksums are recomputed
  // locally at apply time, so healthy replicas of the same version agree;
  // a mismatch (or a key we miss entirely) is silent divergence. Pull the
  // peer's copy and let LWW decide — if ours is actually newer the merge
  // rejects it, and the peer's own scrub pulls ours on its next round.
  for (const std::string& peer_id : scrub_peers) {
    ScrubDigestRequest req{config_.instance_id};
    auto resp = co_await endpoint_->call(peer_id, method::kScrubDigest,
                                         encode(req),
                                         ctx_for(TimePoint::max(),
                                                 scrub_trace));
    if (!resp.ok()) continue;  // unreachable peer: next scrub round retries
    auto digests = decode_scrub_digest_response(*resp);
    if (!digests.ok()) continue;
    for (const ScrubDigest& d : digests->entries) {
      const metadb::ObjectMeta* obj = local_->meta().find(d.key);
      const metadb::VersionMeta* vm =
          obj == nullptr ? nullptr : obj->latest_committed();
      if (vm != nullptr && vm->version == d.version &&
          vm->checksum == d.checksum) {
        continue;  // digest-identical: healthy
      }
      Status st = co_await fetch_and_merge(peer_id, d.key, d.version,
                                           /*from_scrub=*/true, scrub_trace);
      if (!st.ok()) {
        WLOG_WARN(kComponent) << id() << " scrub repair of " << d.key
                              << " from " << peer_id
                              << " failed: " << st.to_string();
      }
    }
  }
  tracer().end_span(scrub_trace);
}

// ---------------------------------------------------------------- monitors

void WieraPeer::observe_put_latency(Duration latency) {
  if (!config_.dynamic_consistency_policy.has_value()) return;
  if (latency_threshold_ == Duration::max()) return;

  const bool violating = latency > latency_threshold_;
  if (!streak_valid_ || violating != streak_violating_) {
    streak_valid_ = true;
    streak_violating_ = violating;
    streak_start_ = sim_->now();
  }
  const Duration period = sim_->now() - streak_start_;

  policy::MapContext ctx;
  ctx.set("threshold.latency", policy::Value::duration_of(latency));
  ctx.set("threshold.period", policy::Value::duration_of(period));

  for (const auto& rule : config_.dynamic_consistency_policy->events) {
    for (const auto& stmt : rule.response) {
      if (!stmt.is_if()) continue;
      for (const auto& branch : stmt.if_stmt().branches) {
        bool matched = branch.condition == nullptr;
        if (!matched) {
          auto eval = policy::evaluate_condition(*branch.condition, ctx);
          matched = eval.ok() && *eval;
        }
        if (!matched) continue;
        auto change = find_change_action(branch.body);
        if (change.has_value() && change->what == "consistency") {
          auto target = consistency_mode_from_name(change->to);
          if (target.ok() && *target != config_.mode &&
              control_.request_policy_change) {
            control_.request_policy_change(change->to);
          }
        }
        break;  // first matching branch only
      }
      break;  // one if-statement per monitoring rule
    }
  }
}

void WieraPeer::record_put_source(const std::string& origin, bool forwarded) {
  if (forwarded) {
    metrics_
        ->counter("wiera_forwarded_puts_total",
                  {{"instance", config_.instance_id}, {"origin", origin}})
        ->inc();
  } else {
    direct_puts_->inc();
  }
  put_history_.push_back(PutEvent{sim_->now(), origin, forwarded});
}

sim::Task<void> WieraPeer::requests_monitor_loop() {
  while (!stopping_) {
    co_await sim_->delay(config_.requests_monitor_check);
    if (stopping_) break;
    if (config_.is_primary) evaluate_requests_monitor();
  }
}

void WieraPeer::evaluate_requests_monitor() {
  // Prune history to the sliding window (paper: last 30 seconds).
  const TimePoint cutoff = sim_->now() - config_.requests_monitor_window;
  while (!put_history_.empty() && put_history_.front().time < cutoff) {
    put_history_.pop_front();
  }

  int64_t direct = 0;
  std::map<std::string, int64_t> forwarded_counts;
  for (const PutEvent& event : put_history_) {
    if (event.forwarded) {
      forwarded_counts[event.origin]++;
    } else {
      direct++;
    }
  }
  std::string top_origin;
  int64_t top_count = 0;
  for (const auto& [origin, count] : forwarded_counts) {
    if (count > top_count) {
      top_count = count;
      top_origin = origin;
    }
  }

  const bool condition = top_count > 0 && top_count >= direct;
  if (condition && !requests_condition_active_) {
    requests_condition_active_ = true;
    requests_condition_start_ = sim_->now();
  } else if (!condition) {
    requests_condition_active_ = false;
    return;
  }
  const Duration period = sim_->now() - requests_condition_start_;

  if (!config_.change_primary_policy.has_value()) return;
  policy::MapContext ctx;
  ctx.set("forwarded_requests_per_each_instance",
          policy::Value::number_of(static_cast<double>(top_count)));
  ctx.set("updates_from_primary",
          policy::Value::number_of(static_cast<double>(direct)));
  ctx.set("threshold.period", policy::Value::duration_of(period));

  for (const auto& rule : config_.change_primary_policy->events) {
    for (const auto& stmt : rule.response) {
      if (!stmt.is_if()) continue;
      for (const auto& branch : stmt.if_stmt().branches) {
        bool matched = branch.condition == nullptr;
        if (!matched) {
          auto eval = policy::evaluate_condition(*branch.condition, ctx);
          matched = eval.ok() && *eval;
        }
        if (!matched) continue;
        auto change = find_change_action(branch.body);
        if (change.has_value() && change->what == "primary_instance" &&
            control_.request_primary_change && !top_origin.empty() &&
            top_origin != config_.instance_id) {
          control_.request_primary_change(top_origin);
        }
        break;
      }
      break;
    }
  }
}

// ---------------------------------------------------------------- cold data

sim::Task<bool> WieraPeer::on_cold_object(const std::string& key) {
  if (config_.centralized_cold_target.empty() ||
      config_.centralized_cold_target == config_.instance_id) {
    co_return false;  // the centralized region applies its local policy
  }
  if (cold_remote_keys_.count(key) > 0) co_return true;  // already shipped

  auto value = co_await local_->get(key);
  if (!value.ok()) co_return false;

  ReplicateRequest update;
  update.key = key;
  update.version = value->version;
  update.value = value->value;
  update.last_modified = sim_->now();
  update.origin = config_.instance_id;
  update.checksum = object_checksum(update.key, update.version, update.value);
  rpc::Message msg = encode(update);
  auto resp = co_await endpoint_->call(config_.centralized_cold_target,
                                       method::kColdStore, std::move(msg));
  if (!resp.ok()) co_return false;
  Status st = decode_status(*resp);
  if (!st.ok()) co_return false;

  // Local replicas of the cold object are removed; the centralized S3-IA
  // replica is now the only copy (durable, §5.3).
  co_await local_->remove(key);
  cold_remote_keys_.insert(key);
  co_return true;
}

}  // namespace wiera::geo
