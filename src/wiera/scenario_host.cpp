#include "wiera/scenario_host.h"

#include "common/logging.h"

namespace wiera::geo {

namespace {
constexpr const char* kComponent = "wiera";
}  // namespace

void ScenarioHost::on_drain_region(const sim::ScenarioEvent& e) {
  sim_->spawn(run_drain(e.target, e.until), "scenario.drain/" + e.target);
}

void ScenarioHost::on_add_region(const sim::ScenarioEvent& e) {
  sim_->spawn(run_add(e.target), "scenario.add/" + e.target);
}

void ScenarioHost::on_rolling_restart(const sim::ScenarioEvent& e) {
  (void)e;
  sim_->spawn(run_rolling_restart(), "scenario.rolling-restart");
}

sim::Task<void> ScenarioHost::run_drain(std::string target,
                                        TimePoint deadline) {
  const Status st =
      co_await controller_->drain_peer(wiera_id_, target, deadline);
  if (!st.ok()) {
    failed_operations_++;
    WLOG_WARN(kComponent) << "scenario drain of " << target
                          << " failed: " << st.to_string();
  }
}

sim::Task<void> ScenarioHost::run_add(std::string target) {
  const Status st = co_await controller_->add_peer_live(wiera_id_, target);
  if (!st.ok()) {
    failed_operations_++;
    WLOG_WARN(kComponent) << "scenario add of " << target
                          << " failed: " << st.to_string();
  }
}

sim::Task<void> ScenarioHost::run_rolling_restart() {
  const Status st = co_await controller_->rolling_restart(wiera_id_);
  if (!st.ok()) {
    failed_operations_++;
    WLOG_WARN(kComponent) << "scenario rolling restart failed: "
                          << st.to_string();
  }
}

}  // namespace wiera::geo
