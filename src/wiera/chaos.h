// geo::ChaosHost — the concrete FaultSurface for a running Wiera cluster.
//
// The sim-layer FaultInjector walks a FaultPlan and calls back into this
// adapter, which maps each typed event onto the real hooks:
//   * crash      -> topology outage window + WieraPeer::on_crash() (volatile
//                   state lost, replication queue dropped, recovering latch);
//                   the controller's heartbeat later drives catch-up resync;
//   * partition  -> pairwise topology partition windows isolating the node
//                   from every other node, in the event's direction;
//   * msg chaos  -> a net::Network ChaosWindow (drop/duplicate/extra delay);
//   * spike      -> a topology per-node delay window;
//   * tier fault -> slowdown / ENOSPC windows on the peer's storage tiers;
//   * bit rot    -> flip one byte of a stored copy (TieraInstance);
//   * torn write -> crash + torn-write windows armed on every storage tier,
//                   so in-flight durable puts land as torn prefixes;
//   * msg corrupt-> a payload-corrupting net::Network ChaosWindow;
//   * stutter    -> a topology freeze window (work stalls, completes late);
//   * flaky link -> a pair-scoped ChaosWindow (loss + jitter on one link);
//   * slow node  -> a topology slow window + tier slowdowns (docs/HEALTH.md).
#pragma once

#include <string>

#include "net/network.h"
#include "sim/faults.h"
#include "wiera/controller.h"

namespace wiera::geo {

class ChaosHost : public sim::FaultSurface {
 public:
  ChaosHost(net::Network& network, WieraController& controller)
      : network_(&network), controller_(&controller) {}

  void on_node_crash(const sim::FaultEvent& e) override;
  void on_node_restart(const sim::FaultEvent& e) override;
  void on_partition(const sim::FaultEvent& e) override;
  void on_message_chaos(const sim::FaultEvent& e) override;
  void on_latency_spike(const sim::FaultEvent& e) override;
  void on_tier_fault(const sim::FaultEvent& e) override;
  void on_bit_rot(const sim::FaultEvent& e) override;
  void on_torn_write(const sim::FaultEvent& e) override;
  void on_message_corrupt(const sim::FaultEvent& e) override;
  void on_stutter(const sim::FaultEvent& e) override;
  void on_flaky_link(const sim::FaultEvent& e) override;
  void on_slow_node(const sim::FaultEvent& e) override;

 private:
  net::Network* network_;
  WieraController* controller_;
};

}  // namespace wiera::geo
