#include "net/topology.h"

#include <algorithm>
#include <cassert>

namespace wiera::net {

std::string_view provider_name(Provider p) {
  switch (p) {
    case Provider::kAws: return "aws";
    case Provider::kAzure: return "azure";
    case Provider::kPrivate: return "private";
  }
  return "?";
}

namespace {
std::pair<std::string, std::string> ordered(const std::string& a,
                                            const std::string& b) {
  return a <= b ? std::make_pair(a, b) : std::make_pair(b, a);
}
}  // namespace

Topology::Topology() = default;

void Topology::add_datacenter(const std::string& name, Provider provider,
                              const std::string& region) {
  datacenters_[name] = Datacenter{name, provider, region};
}

void Topology::set_rtt(const std::string& dc_a, const std::string& dc_b,
                       Duration rtt) {
  assert(datacenters_.count(dc_a) && datacenters_.count(dc_b));
  rtt_[ordered(dc_a, dc_b)] = rtt;
}

void Topology::add_node(const std::string& name,
                        const std::string& datacenter, VmType vm) {
  assert(datacenters_.count(datacenter) && "add the datacenter first");
  nodes_[name] = Node{name, datacenter, std::move(vm)};
}

bool Topology::has_node(const std::string& name) const {
  return nodes_.count(name) > 0;
}

const Node& Topology::node(const std::string& name) const {
  auto it = nodes_.find(name);
  assert(it != nodes_.end() && "unknown node");
  return it->second;
}

const Datacenter& Topology::datacenter_of(const std::string& node_name) const {
  auto it = datacenters_.find(node(node_name).datacenter);
  assert(it != datacenters_.end());
  return it->second;
}

std::vector<std::string> Topology::node_names() const {
  std::vector<std::string> out;
  out.reserve(nodes_.size());
  for (const auto& [name, _] : nodes_) out.push_back(name);
  return out;
}

Duration Topology::base_rtt(const std::string& dc_a,
                            const std::string& dc_b) const {
  if (dc_a == dc_b) return usec(calibration::kSameDcRttUs);
  auto it = rtt_.find(ordered(dc_a, dc_b));
  assert(it != rtt_.end() && "no RTT configured for datacenter pair");
  return it->second;
}

Duration Topology::base_one_way(const std::string& node_a,
                                const std::string& node_b) const {
  return base_rtt(node(node_a).datacenter, node(node_b).datacenter) / 2;
}

Duration Topology::sample_latency(const std::string& from,
                                  const std::string& to, int64_t bytes,
                                  TimePoint now, Rng& rng) const {
  const Node& src = node(from);
  const Node& dst = node(to);

  Duration lat = base_rtt(src.datacenter, dst.datacenter) / 2;
  if (jitter_fraction_ > 0) {
    // Multiplicative jitter, truncated at -50% so latency stays positive.
    const double k =
        std::max(0.5, 1.0 + jitter_fraction_ * rng.gaussian());
    lat = lat * k;
  }

  if (bytes > 0) {
    const double mbps = std::min(src.vm.net_mbps, dst.vm.net_mbps);
    const double transfer_s = static_cast<double>(bytes) / (mbps * 1e6);
    lat += sec(transfer_s);
  }

  // Slow-node windows scale the whole base+transfer sample (the node's
  // processing is slow, so everything it touches takes longer), while
  // injected extras add on top.
  const double slow = slow_multiplier(from, now) * slow_multiplier(to, now);
  if (slow != 1.0) lat = lat * slow;

  lat += injected_extra(from, now);
  lat += injected_extra(to, now);
  return lat;
}

void Topology::inject_node_delay(const std::string& node_name, Duration extra,
                                 TimePoint from, TimePoint until) {
  assert(nodes_.count(node_name));
  delays_.push_back(DelayWindow{node_name, extra, from, until});
}

void Topology::inject_freeze(const std::string& node_name, TimePoint from,
                             TimePoint until) {
  assert(nodes_.count(node_name));
  freezes_.push_back(FreezeWindow{node_name, from, until});
}

void Topology::inject_node_slow(const std::string& node_name, double factor,
                                TimePoint from, TimePoint until) {
  assert(nodes_.count(node_name));
  slows_.push_back(SlowWindow{node_name, factor, from, until});
}

void Topology::inject_outage(const std::string& node_name, TimePoint from,
                             TimePoint until) {
  assert(nodes_.count(node_name));
  outages_.push_back(OutageWindow{node_name, from, until});
}

bool Topology::node_down(const std::string& node_name, TimePoint now) const {
  for (const auto& o : outages_) {
    if (o.node == node_name && now >= o.from && now < o.until) return true;
  }
  return false;
}

bool Topology::node_down_during(const std::string& node_name, TimePoint from,
                                TimePoint until) const {
  for (const auto& o : outages_) {
    if (o.node == node_name && o.from <= until && o.until > from) return true;
  }
  return false;
}

void Topology::inject_partition(const std::string& src, const std::string& dst,
                                TimePoint from, TimePoint until,
                                bool bidirectional) {
  assert(nodes_.count(src) && nodes_.count(dst));
  partitions_.push_back(PartitionWindow{src, dst, from, until});
  if (bidirectional) {
    partitions_.push_back(PartitionWindow{dst, src, from, until});
  }
}

bool Topology::partitioned(const std::string& from, const std::string& to,
                           TimePoint now) const {
  for (const auto& p : partitions_) {
    if (p.src == from && p.dst == to && now >= p.from && now < p.until) {
      return true;
    }
  }
  return false;
}

void Topology::clear_faults() {
  delays_.clear();
  outages_.clear();
  partitions_.clear();
  freezes_.clear();
  slows_.clear();
}

Duration Topology::injected_extra(const std::string& node_name,
                                  TimePoint now) const {
  Duration extra = Duration::zero();
  for (const auto& d : delays_) {
    if (d.node == node_name && now >= d.from && now < d.until) {
      extra += d.extra;
    }
  }
  // A frozen node stalls every message it touches until the window ends:
  // the work isn't lost, it completes just after the thaw.
  for (const auto& f : freezes_) {
    if (f.node == node_name && now >= f.from && now < f.until) {
      extra += f.until - now;
    }
  }
  return extra;
}

double Topology::slow_multiplier(const std::string& node_name,
                                 TimePoint now) const {
  double factor = 1.0;
  for (const auto& s : slows_) {
    if (s.node == node_name && now >= s.from && now < s.until) {
      factor *= s.factor;
    }
  }
  return factor;
}

Topology Topology::paper_default() {
  Topology topo;
  topo.add_datacenter("aws-us-east", Provider::kAws, "us-east");
  topo.add_datacenter("aws-us-west", Provider::kAws, "us-west");
  topo.add_datacenter("aws-eu-west", Provider::kAws, "eu-west");
  topo.add_datacenter("aws-asia-east", Provider::kAws, "asia-east");
  topo.add_datacenter("azure-us-east", Provider::kAzure, "us-east");

  auto dc_in_region = [&](const std::string& region,
                          Provider provider) -> std::string {
    for (const auto& [name, dc] : topo.datacenters_) {
      if (dc.region == region && dc.provider == provider) return name;
    }
    return {};
  };

  for (const auto& pair : calibration::kRegionRtts) {
    const std::string a = dc_in_region(pair.a, Provider::kAws);
    const std::string b = dc_in_region(pair.b, Provider::kAws);
    topo.set_rtt(a, b, usec(pair.rtt_us));
  }
  // Azure US East sits 2 ms from AWS US East (paper §5.4.1) and inherits
  // AWS US East's distance to everything else.
  topo.set_rtt("azure-us-east", "aws-us-east",
               usec(calibration::kAwsAzureUsEastRttUs));
  for (const char* region : {"us-west", "eu-west", "asia-east"}) {
    const std::string aws_dc = dc_in_region(region, Provider::kAws);
    topo.set_rtt("azure-us-east", aws_dc,
                 topo.base_rtt("aws-us-east", aws_dc));
  }
  return topo;
}

}  // namespace wiera::net
