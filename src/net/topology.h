// WAN topology model: datacenters, nodes (VMs), latency matrix, bandwidth
// throttles, and fault injection.
//
// This is the stand-in for the live AWS + Azure deployment of the paper.
// Latency between two nodes =
//     one-way base (RTT/2 for their DC pair, with multiplicative jitter)
//   + serialization time (bytes / min(sender egress, receiver ingress))
//   + any injected extra delay active on either node or the path.
// Outages make transfers fail with kUnavailable after a timeout.
#pragma once

#include <map>
#include <optional>
#include <string>
#include <vector>

#include "common/rng.h"
#include "common/status.h"
#include "common/time.h"

namespace wiera::net {

// Cloud provider of a datacenter — pricing and throttle defaults differ.
enum class Provider { kAws, kAzure, kPrivate };

std::string_view provider_name(Provider p);

// VM instance type: determines network throughput. Azure throttles network
// by VM size (the effect behind Fig. 11/12); AWS t2.micro gets a modest cap.
// The NIC is a *shared* resource: concurrent transfers through one node
// serialize (see Network::transfer), so these caps bound aggregate
// throughput, not just per-message latency.
struct VmType {
  std::string name;
  double net_mbps;  // usable network throughput, megabytes/s

  // The instance types used in the paper's §5.4 experiments. The MBps
  // values are calibrated so the Fig. 11 IOPS ratios match (see DESIGN.md §5):
  // with 16 KiB blocks, remote-memory IOPS ~= net_mbps / 16KiB.
  static VmType t2_micro() { return {"t2.micro", 30.0}; }
  static VmType basic_a2() { return {"Basic A2", 5.7}; }
  static VmType standard_d1() { return {"Standard D1", 7.9}; }
  static VmType standard_d2() { return {"Standard D2", 11.8}; }
  static VmType standard_d3() { return {"Standard D3", 12.2}; }
};

struct Datacenter {
  std::string name;    // e.g. "aws-us-east"
  Provider provider;
  std::string region;  // e.g. "us-east"
};

struct Node {
  std::string name;  // e.g. "tiera-us-west"
  std::string datacenter;
  VmType vm;
};

// Static description of the world + dynamic fault state.
class Topology {
 public:
  Topology();

  // ---- construction ----
  void add_datacenter(const std::string& name, Provider provider,
                      const std::string& region);
  // RTT between two datacenters (symmetric). Same-DC RTT defaults to 0.5 ms.
  void set_rtt(const std::string& dc_a, const std::string& dc_b, Duration rtt);
  void add_node(const std::string& name, const std::string& datacenter,
                VmType vm = VmType::t2_micro());

  // Multiplicative jitter stddev applied to each one-way latency sample
  // (default 5%).
  void set_jitter_fraction(double f) { jitter_fraction_ = f; }

  // ---- queries ----
  bool has_node(const std::string& name) const;
  const Node& node(const std::string& name) const;
  const Datacenter& datacenter_of(const std::string& node_name) const;
  std::vector<std::string> node_names() const;

  Duration base_rtt(const std::string& dc_a, const std::string& dc_b) const;
  // Base one-way latency between two *nodes* (no jitter/faults applied).
  Duration base_one_way(const std::string& node_a,
                        const std::string& node_b) const;

  // One sampled one-way latency for a message between nodes, including
  // jitter and active injected delays. `bytes` adds serialization time.
  Duration sample_latency(const std::string& from, const std::string& to,
                          int64_t bytes, TimePoint now, Rng& rng) const;

  // ---- fault injection ----
  // Add `extra` to every message touching `node_name` during [from, until).
  void inject_node_delay(const std::string& node_name, Duration extra,
                         TimePoint from, TimePoint until);
  // Gray failures (docs/HEALTH.md):
  // Stutter/freeze window: a message touching the node during [from, until)
  // is stalled until the window ends (extra = until - now), so the node
  // loses no state but everything it queued completes late.
  void inject_freeze(const std::string& node_name, TimePoint from,
                     TimePoint until);
  // Slow-node window: multiply the sampled latency of every message
  // touching the node by `factor` during [from, until).
  void inject_node_slow(const std::string& node_name, double factor,
                        TimePoint from, TimePoint until);
  // Node outage window: transfers fail with kUnavailable.
  void inject_outage(const std::string& node_name, TimePoint from,
                     TimePoint until);
  bool node_down(const std::string& node_name, TimePoint now) const;
  // True if the node was inside an outage window at any instant of
  // [from, until] — a message in flight across a reboot is lost even if the
  // node is back up when the last byte would arrive.
  bool node_down_during(const std::string& node_name, TimePoint from,
                        TimePoint until) const;
  // Network partition: messages from `src` to `dst` are lost during
  // [from, until). Bidirectional installs both directions; one direction
  // only models an asymmetric partition (src can hear dst but not reach it).
  void inject_partition(const std::string& src, const std::string& dst,
                        TimePoint from, TimePoint until,
                        bool bidirectional = true);
  bool partitioned(const std::string& from, const std::string& to,
                   TimePoint now) const;
  void clear_faults();

  // A standard 4-region AWS topology matching the paper's deployment
  // (US East, US West, EU West, Asia East) plus calibrated RTTs.
  static Topology paper_default();

 private:
  struct DelayWindow {
    std::string node;
    Duration extra;
    TimePoint from;
    TimePoint until;
  };
  struct OutageWindow {
    std::string node;
    TimePoint from;
    TimePoint until;
  };
  struct PartitionWindow {
    std::string src;  // direction src -> dst is cut
    std::string dst;
    TimePoint from;
    TimePoint until;
  };
  struct FreezeWindow {
    std::string node;
    TimePoint from;
    TimePoint until;
  };
  struct SlowWindow {
    std::string node;
    double factor;
    TimePoint from;
    TimePoint until;
  };

  Duration injected_extra(const std::string& node_name, TimePoint now) const;
  double slow_multiplier(const std::string& node_name, TimePoint now) const;

  std::map<std::string, Datacenter> datacenters_;
  std::map<std::string, Node> nodes_;
  std::map<std::pair<std::string, std::string>, Duration> rtt_;
  double jitter_fraction_ = 0.05;
  std::vector<DelayWindow> delays_;
  std::vector<OutageWindow> outages_;
  std::vector<PartitionWindow> partitions_;
  std::vector<FreezeWindow> freezes_;
  std::vector<SlowWindow> slows_;
};

// Calibrated inter-region RTTs (see DESIGN.md §5).
namespace calibration {
inline constexpr int64_t kSameDcRttUs = 500;          // 0.5 ms
inline constexpr int64_t kAwsAzureUsEastRttUs = 2000; // 2 ms (paper §5.4.1)

struct RegionPairRtt {
  const char* a;
  const char* b;
  int64_t rtt_us;
};

// 2016-era inter-region RTTs consistent with the paper's latency numbers.
inline constexpr RegionPairRtt kRegionRtts[] = {
    {"us-east", "us-west", 70000},
    {"us-east", "eu-west", 80000},
    {"us-east", "asia-east", 170000},
    {"us-west", "eu-west", 140000},
    {"us-west", "asia-east", 110000},
    {"eu-west", "asia-east", 240000},
};
}  // namespace calibration

}  // namespace wiera::net
