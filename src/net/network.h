// Simulated message transport over the Topology.
//
// transfer() models a one-way message: it completes after the sampled
// latency (propagation + serialization + injected delay) or fails with
// kUnavailable when an endpoint is inside an outage window. Traffic volume
// is accounted per datacenter pair so the cost model can bill egress.
#pragma once

#include <cstdint>
#include <map>
#include <string>

#include "common/status.h"
#include "net/topology.h"
#include "sim/simulation.h"
#include "sim/task.h"

namespace wiera::net {

// Byte counters used by cost accounting. "Egress" in cloud billing terms:
// traffic leaving a DC (cross-DC or to the Internet) is charged; intra-DC
// traffic is free (Table 4).
struct TrafficStats {
  int64_t total_messages = 0;
  int64_t total_bytes = 0;
  // bytes sent from dc -> dc (ordered pair)
  std::map<std::pair<std::string, std::string>, int64_t> dc_pair_bytes;

  int64_t cross_dc_bytes() const {
    int64_t sum = 0;
    for (const auto& [pair, bytes] : dc_pair_bytes) {
      if (pair.first != pair.second) sum += bytes;
    }
    return sum;
  }
  int64_t egress_bytes_from(const std::string& dc) const {
    int64_t sum = 0;
    for (const auto& [pair, bytes] : dc_pair_bytes) {
      if (pair.first == dc && pair.second != dc) sum += bytes;
    }
    return sum;
  }
};

// A window of probabilistic message chaos (drop / duplicate / extra random
// delay). `node` scopes the window to messages touching that node; empty
// applies to every message. Sampling uses the simulation RNG, so a chaos
// run is fully reproducible from the seed.
struct ChaosWindow {
  std::string node;  // empty = all messages
  // Flaky-link scope (docs/HEALTH.md): when node_b is also set, the window
  // applies only to messages between node and node_b (either direction).
  std::string node_b;
  TimePoint from;
  TimePoint until;
  double drop_prob = 0.0;       // message silently lost in transit
  double dup_prob = 0.0;        // request delivered twice (see rpc::Endpoint)
  Duration max_extra_delay = Duration::zero();  // uniform [0, max] per message
  double corrupt_prob = 0.0;    // payload byte flipped in transit (rpc layer)
};

// Counters for chaos effects actually applied (tests assert the fault plan
// really exercised the code path it meant to).
struct ChaosStats {
  int64_t dropped = 0;
  int64_t duplicated = 0;
  int64_t delayed = 0;
  int64_t corrupted = 0;
};

class Network {
 public:
  // How long a sender waits before concluding a down node is unreachable.
  static constexpr Duration kUnreachableDelay = msec(500);

  Network(sim::Simulation& sim, Topology topology)
      : sim_(&sim), topology_(std::move(topology)) {}

  sim::Simulation& sim() { return *sim_; }
  Topology& topology() { return topology_; }
  const Topology& topology() const { return topology_; }
  const TrafficStats& traffic() const { return traffic_; }
  void reset_traffic() { traffic_ = TrafficStats{}; }

  // ---- chaos injection ----
  void inject_chaos(ChaosWindow window) {
    chaos_windows_.push_back(std::move(window));
  }
  void clear_chaos() { chaos_windows_.clear(); }
  const ChaosStats& chaos_stats() const { return chaos_stats_; }

  // Sample whether the *request leg* of an RPC should be delivered twice.
  // Called by rpc::Endpoint after a successful request transfer; consumes
  // randomness and bumps stats, hence non-const.
  bool chaos_duplicate(const std::string& from, const std::string& to);

  // Sample whether a delivered message body should arrive with a flipped
  // byte (checksum-corrupting chaos). Called by rpc::Endpoint on each leg
  // after a successful transfer; consumes randomness and bumps stats.
  bool chaos_corrupt(const std::string& from, const std::string& to);

  // Deliver `bytes` from node `from` to node `to`; resolves when the last
  // byte arrives. Fails if either endpoint is down. NIC capacity is shared:
  // concurrent transfers touching the same node queue behind each other for
  // their serialization time (bytes / slower endpoint's throughput), which
  // is what makes a VM's network throttle bound aggregate IOPS (Fig. 11).
  sim::Task<Status> transfer(std::string from, std::string to, int64_t bytes);

  // Deadline-aware variant: identical delivery semantics, but the
  // unreachable-timeout waits (down node, partition, dropped message) are
  // capped at the time remaining before `deadline`, so a sender with a
  // deadline learns about unreachability no later than its deadline instead
  // of always paying the full kUnreachableDelay. TimePoint::max() = none.
  sim::Task<Status> transfer(std::string from, std::string to, int64_t bytes,
                             TimePoint deadline);

 private:
  // The capped wait a sender pays before concluding unreachability.
  Duration unreachable_wait(TimePoint deadline) const;
  // Reserve NIC time on both endpoints; returns when the transfer may end.
  TimePoint reserve_nic(const std::string& from, const std::string& to,
                        int64_t bytes);

  bool chaos_drop(const std::string& from, const std::string& to);
  Duration chaos_extra_delay(const std::string& from, const std::string& to);
  // Active windows matching a message from->to at `now`.
  template <typename Fn>
  void for_each_chaos(const std::string& from, const std::string& to,
                      Fn&& fn) const {
    const TimePoint now = sim_->now();
    for (const auto& w : chaos_windows_) {
      if (now < w.from || now >= w.until) continue;
      if (!w.node_b.empty()) {
        // Pair-scoped (flaky link): only messages between the two endpoints.
        const bool pair = (w.node == from && w.node_b == to) ||
                          (w.node == to && w.node_b == from);
        if (!pair) continue;
      } else if (!w.node.empty() && w.node != from && w.node != to) {
        continue;
      }
      fn(w);
    }
  }

  sim::Simulation* sim_;
  Topology topology_;
  TrafficStats traffic_;
  ChaosStats chaos_stats_;
  std::vector<ChaosWindow> chaos_windows_;
  std::map<std::string, TimePoint> nic_free_;  // per-node next free time
};

}  // namespace wiera::net
