#include "net/network.h"

#include <algorithm>

namespace wiera::net {

TimePoint Network::reserve_nic(const std::string& from,
                               const std::string& to, int64_t bytes) {
  if (bytes <= 0) return sim_->now();
  const double mbps = std::min(topology_.node(from).vm.net_mbps,
                               topology_.node(to).vm.net_mbps);
  const Duration ser = sec(static_cast<double>(bytes) / (mbps * 1e6));
  TimePoint start = sim_->now();
  auto from_it = nic_free_.find(from);
  if (from_it != nic_free_.end()) start = std::max(start, from_it->second);
  auto to_it = nic_free_.find(to);
  if (to_it != nic_free_.end()) start = std::max(start, to_it->second);
  const TimePoint end = start + ser;
  nic_free_[from] = end;
  nic_free_[to] = end;
  return end;
}

bool Network::chaos_drop(const std::string& from, const std::string& to) {
  bool drop = false;
  for_each_chaos(from, to, [&](const ChaosWindow& w) {
    if (w.drop_prob > 0 && sim_->rng().bernoulli(w.drop_prob)) drop = true;
  });
  if (drop) chaos_stats_.dropped++;
  return drop;
}

bool Network::chaos_duplicate(const std::string& from, const std::string& to) {
  bool dup = false;
  for_each_chaos(from, to, [&](const ChaosWindow& w) {
    if (w.dup_prob > 0 && sim_->rng().bernoulli(w.dup_prob)) dup = true;
  });
  if (dup) chaos_stats_.duplicated++;
  return dup;
}

bool Network::chaos_corrupt(const std::string& from, const std::string& to) {
  bool corrupt = false;
  for_each_chaos(from, to, [&](const ChaosWindow& w) {
    if (w.corrupt_prob > 0 && sim_->rng().bernoulli(w.corrupt_prob)) {
      corrupt = true;
    }
  });
  if (corrupt) chaos_stats_.corrupted++;
  return corrupt;
}

Duration Network::chaos_extra_delay(const std::string& from,
                                    const std::string& to) {
  Duration extra = Duration::zero();
  for_each_chaos(from, to, [&](const ChaosWindow& w) {
    if (w.max_extra_delay > Duration::zero()) {
      extra += usec(sim_->rng().uniform_int(0, w.max_extra_delay.us()));
    }
  });
  if (extra > Duration::zero()) chaos_stats_.delayed++;
  return extra;
}

sim::Task<Status> Network::transfer(std::string from, std::string to,
                                    int64_t bytes) {
  co_return co_await transfer(std::move(from), std::move(to), bytes,
                              TimePoint::max());
}

Duration Network::unreachable_wait(TimePoint deadline) const {
  if (deadline == TimePoint::max()) return kUnreachableDelay;
  const Duration remaining =
      deadline > sim_->now() ? deadline - sim_->now() : Duration::zero();
  return std::min(kUnreachableDelay, remaining);
}

sim::Task<Status> Network::transfer(std::string from, std::string to,
                                    int64_t bytes, TimePoint deadline) {
  const TimePoint departed = sim_->now();
  if (topology_.node_down(from, departed) ||
      topology_.node_down(to, departed)) {
    co_await sim_->delay(unreachable_wait(deadline));
    co_return unavailable("node unreachable: " + to);
  }
  if (topology_.partitioned(from, to, departed)) {
    // Packets into a partition vanish; the sender only learns via timeout.
    co_await sim_->delay(unreachable_wait(deadline));
    co_return unavailable("partitioned: " + from + " -> " + to);
  }
  if (chaos_drop(from, to)) {
    co_await sim_->delay(unreachable_wait(deadline));
    co_return unavailable("message dropped: " + from + " -> " + to);
  }

  // Serialization through the shared NICs, then propagation. Chaos extra
  // delay is per-message and random, so overlapping messages on one path
  // can arrive out of order (reordering fault).
  const TimePoint tx_done = reserve_nic(from, to, bytes);
  const Duration propagation =
      topology_.sample_latency(from, to, /*bytes=*/0, sim_->now(),
                               sim_->rng()) +
      chaos_extra_delay(from, to);
  co_await sim_->at(tx_done);
  co_await sim_->delay(propagation);

  // The destination must have been continuously up for the whole flight: a
  // crash-and-reboot strictly inside the flight window also kills the
  // message (connections do not survive a reboot). A partition that closed
  // while the message was in flight swallows it too.
  if (topology_.node_down_during(to, departed, sim_->now())) {
    co_return unavailable("node went down mid-transfer: " + to);
  }
  if (topology_.partitioned(from, to, sim_->now())) {
    co_return unavailable("partitioned mid-transfer: " + from + " -> " + to);
  }

  traffic_.total_messages++;
  traffic_.total_bytes += bytes;
  const std::string& src_dc = topology_.node(from).datacenter;
  const std::string& dst_dc = topology_.node(to).datacenter;
  traffic_.dc_pair_bytes[{src_dc, dst_dc}] += bytes;
  co_return ok_status();
}

}  // namespace wiera::net
