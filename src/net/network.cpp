#include "net/network.h"

#include <algorithm>

namespace wiera::net {

TimePoint Network::reserve_nic(const std::string& from,
                               const std::string& to, int64_t bytes) {
  if (bytes <= 0) return sim_->now();
  const double mbps = std::min(topology_.node(from).vm.net_mbps,
                               topology_.node(to).vm.net_mbps);
  const Duration ser = sec(static_cast<double>(bytes) / (mbps * 1e6));
  TimePoint start = sim_->now();
  auto from_it = nic_free_.find(from);
  if (from_it != nic_free_.end()) start = std::max(start, from_it->second);
  auto to_it = nic_free_.find(to);
  if (to_it != nic_free_.end()) start = std::max(start, to_it->second);
  const TimePoint end = start + ser;
  nic_free_[from] = end;
  nic_free_[to] = end;
  return end;
}

sim::Task<Status> Network::transfer(std::string from, std::string to,
                                    int64_t bytes) {
  if (topology_.node_down(from, sim_->now()) ||
      topology_.node_down(to, sim_->now())) {
    co_await sim_->delay(kUnreachableDelay);
    co_return unavailable("node unreachable: " + to);
  }

  // Serialization through the shared NICs, then propagation.
  const TimePoint tx_done = reserve_nic(from, to, bytes);
  const Duration propagation = topology_.sample_latency(
      from, to, /*bytes=*/0, sim_->now(), sim_->rng());
  co_await sim_->at(tx_done);
  co_await sim_->delay(propagation);

  // The destination may have gone down while the message was in flight.
  if (topology_.node_down(to, sim_->now())) {
    co_return unavailable("node went down mid-transfer: " + to);
  }

  traffic_.total_messages++;
  traffic_.total_bytes += bytes;
  const std::string& src_dc = topology_.node(from).datacenter;
  const std::string& dst_dc = topology_.node(to).datacenter;
  traffic_.dc_pair_bytes[{src_dc, dst_dc}] += bytes;
  co_return ok_status();
}

}  // namespace wiera::net
