// Concurrency-focused tests for the VFS and applications: overlapping
// writers, mixed readers/writers, sysbench threading, and RUBiS
// determinism.
#include <gtest/gtest.h>

#include <memory>

#include "apps/rubis.h"
#include "apps/sysbench.h"
#include "policy/parser.h"
#include "sim/sync.h"
#include "vfs/vfs.h"

namespace wiera {
namespace {

struct VfsFixture {
  sim::Simulation sim;
  net::Network network;
  rpc::Registry registry;
  std::unique_ptr<geo::WieraPeer> peer;
  std::unique_ptr<vfs::WieraVfs> fs;

  explicit VfsFixture(uint64_t seed = 1)
      : sim(seed), network(sim, make_topology()) {
    geo::WieraPeer::Config config;
    config.instance_id = "node";
    config.region = "us-east";
    config.mode = geo::ConsistencyMode::kEventual;
    config.local.policy = std::move(policy::parse_policy(
        "Tiera Disk() { tier1: {name: EBS, size: 100G}; }")).value();
    config.local.tier_tweak = [](const std::string&, store::TierSpec& spec) {
      spec.jitter_fraction = 0;
      spec.buffer_cache = true;
    };
    peer = std::make_unique<geo::WieraPeer>(sim, network, registry,
                                            std::move(config));
    peer->start();
    fs = std::make_unique<vfs::WieraVfs>(sim, *peer,
                                         vfs::WieraVfs::Options{4096});
  }

  static net::Topology make_topology() {
    net::Topology topo;
    topo.add_datacenter("dc", net::Provider::kAws, "us-east");
    topo.set_jitter_fraction(0.0);
    topo.add_node("node", "dc");
    return topo;
  }

  template <typename F>
  void run(F&& body) {
    bool done = false;
    auto wrapper = [](sim::Simulation& s, F b, bool& flag) -> sim::Task<void> {
      co_await b();
      flag = true;
      s.stop();
    };
    sim.spawn(wrapper(sim, std::forward<F>(body), done));
    sim.run();
    ASSERT_TRUE(done);
  }
};

TEST(VfsConcurrencyTest, DisjointConcurrentWritersDontCorrupt) {
  VfsFixture f;
  f.run([&]() -> sim::Task<void> {
    auto fd = f.fs->open("/shared", {.create = true});
    EXPECT_TRUE(fd.ok());
    // 8 writers, each owning a distinct 4 KiB-aligned region.
    auto writer = [](vfs::WieraVfs* fs, int fd_num, int region,
                     uint8_t fill) -> sim::Task<void> {
      Bytes data(4096, fill);
      auto written =
          co_await fs->pwrite(fd_num, region * 4096, Blob(std::move(data)));
      EXPECT_TRUE(written.ok());
    };
    std::vector<sim::Task<void>> writers;
    for (int r = 0; r < 8; ++r) {
      writers.push_back(
          writer(f.fs.get(), *fd, r, static_cast<uint8_t>(r + 1)));
    }
    co_await sim::when_all(f.sim, std::move(writers));

    // Every region holds exactly its writer's bytes.
    for (int r = 0; r < 8; ++r) {
      Bytes out;
      auto read = co_await f.fs->pread(*fd, r * 4096, 4096, &out);
      EXPECT_TRUE(read.ok());
      EXPECT_EQ(out, Bytes(4096, static_cast<uint8_t>(r + 1))) << r;
    }
    EXPECT_EQ(f.fs->size("/shared").value(), 8 * 4096);
  });
}

TEST(VfsConcurrencyTest, ReadersSeeWholeBlockWrites) {
  VfsFixture f;
  f.run([&]() -> sim::Task<void> {
    auto fd = f.fs->open("/file", {.create = true});
    Bytes initial(4096, 0xAA);
    co_await f.fs->pwrite(*fd, 0, Blob(std::move(initial)));

    // A writer repeatedly overwrites the block while readers poll it; each
    // read observes one of the two full-block states, never a mix (block
    // writes through the object store are atomic versions).
    bool stop = false;
    auto flipper = [](vfs::WieraVfs* fs, int fd_num, sim::Simulation& s,
                      bool& halt) -> sim::Task<void> {
      uint8_t fill = 0xBB;
      while (!halt) {
        co_await fs->pwrite(fd_num, 0, Blob(Bytes(4096, fill)));
        fill = fill == 0xBB ? 0xAA : 0xBB;
        co_await s.delay(msec(1));
      }
    };
    f.sim.spawn(flipper(f.fs.get(), *fd, f.sim, stop));

    for (int i = 0; i < 50; ++i) {
      Bytes out;
      auto read = co_await f.fs->pread(*fd, 0, 4096, &out);
      EXPECT_TRUE(read.ok());
      EXPECT_EQ(out.size(), 4096u);
      if (out.size() != 4096u) co_return;
      const uint8_t first = out[0];
      EXPECT_TRUE(first == 0xAA || first == 0xBB);
      EXPECT_EQ(out, Bytes(4096, first)) << "torn read at iteration " << i;
      co_await f.sim.delay(usec(700));
    }
    stop = true;
  });
}

TEST(SysbenchThreadingTest, MoreThreadsMoreThroughputOnParallelDevice) {
  // Against an unthrottled tier, 8 threads should finish the same op count
  // much faster than 1 thread (ops overlap in virtual time).
  auto run_with_threads = [](int threads) {
    VfsFixture f(7);
    apps::SysbenchOptions options;
    options.file_size = 1 * MiB;
    options.block_size = 4096;
    options.operations = 400;
    options.threads = threads;
    options.direct = false;  // cached path: no device serialization
    apps::SysbenchFileIo bench(f.sim, *f.fs, options);
    double iops = 0;
    f.run([&]() -> sim::Task<void> {
      Status st = co_await bench.prepare();
      EXPECT_TRUE(st.ok());
      auto result = co_await bench.run();
      EXPECT_TRUE(result.ok());
      EXPECT_EQ(result->reads + result->writes, 400);
      iops = result->iops();
    });
    return iops;
  };
  const double single = run_with_threads(1);
  const double eight = run_with_threads(8);
  EXPECT_GT(eight, 3.0 * single);
}

TEST(RubisDeterminismTest, SameSeedSameThroughput) {
  auto run_once = [](uint64_t seed) {
    VfsFixture f(seed);
    apps::TableStore db(f.sim, *f.fs,
                        apps::TableStore::Options{16 * KiB, 4 * MiB, true});
    apps::RubisOptions options;
    options.items = 100;
    options.users = 100;
    options.clients = 5;
    options.ramp_up = sec(2);
    options.measure = sec(10);
    options.ramp_down = sec(2);
    options.think_time = msec(100);
    options.seed = seed;
    apps::RubisApp app(f.sim, db, options);
    int64_t measured = -1;
    f.run([&]() -> sim::Task<void> {
      Status st = co_await app.populate();
      EXPECT_TRUE(st.ok());
      auto result = co_await app.run();
      EXPECT_TRUE(result.ok());
      measured = result->requests_measured;
    });
    return measured;
  };
  const int64_t a = run_once(11);
  const int64_t b = run_once(11);
  EXPECT_EQ(a, b);
  EXPECT_GT(a, 0);
}

}  // namespace
}  // namespace wiera
