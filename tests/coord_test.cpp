// Tests for the global lock service (ZooKeeper stand-in).
#include <gtest/gtest.h>

#include "coord/lock_service.h"
#include "net/network.h"
#include "sim/simulation.h"

namespace wiera::coord {
namespace {

struct Fixture {
  sim::Simulation sim;
  net::Network network;
  rpc::Registry registry;
  rpc::Endpoint zk_endpoint;
  LockService service;

  Fixture()
      : network(sim, make_topology()),
        zk_endpoint(network, registry, "zk"),
        service(sim, zk_endpoint) {}

  static net::Topology make_topology() {
    net::Topology topo;
    // Lock service in US East (as the paper deploys ZooKeeper); clients in
    // US East and US West.
    topo.add_datacenter("us-east", net::Provider::kAws, "us-east");
    topo.add_datacenter("us-west", net::Provider::kAws, "us-west");
    topo.set_rtt("us-east", "us-west", msec(70));
    topo.set_jitter_fraction(0.0);
    topo.add_node("zk", "us-east");
    topo.add_node("client-east", "us-east");
    topo.add_node("client-west", "us-west");
    return topo;
  }
};

sim::Task<void> hold_lock(LockClient client, sim::Simulation& sim,
                          std::string name, Duration hold,
                          std::vector<std::pair<int64_t, int64_t>>& spans) {
  Status st = co_await client.acquire(name);
  EXPECT_TRUE(st.ok()) << st.to_string();
  const int64_t start = sim.now().us();
  co_await sim.delay(hold);
  spans.emplace_back(start, sim.now().us());
  st = co_await client.release(name);
  EXPECT_TRUE(st.ok()) << st.to_string();
}

TEST(LockServiceTest, AcquireFromRemoteRegionPaysWanRtt) {
  Fixture f;
  rpc::Endpoint west(f.network, f.registry, "client-west");
  LockClient client(west, "zk");
  std::vector<std::pair<int64_t, int64_t>> spans;
  f.sim.spawn(hold_lock(client, f.sim, "key1", Duration::zero(), spans));
  f.sim.run();
  ASSERT_EQ(spans.size(), 1u);
  // Grant arrives after ~70ms round trip to US East.
  EXPECT_NEAR(spans[0].first, 70000, 500);
  EXPECT_EQ(f.service.holder("key1"), "");  // released at the end
}

TEST(LockServiceTest, MutualExclusionAcrossClients) {
  Fixture f;
  rpc::Endpoint east(f.network, f.registry, "client-east");
  rpc::Endpoint west(f.network, f.registry, "client-west");
  LockClient c_east(east, "zk");
  LockClient c_west(west, "zk");
  std::vector<std::pair<int64_t, int64_t>> spans;
  f.sim.spawn(hold_lock(c_east, f.sim, "key", msec(50), spans));
  f.sim.spawn(hold_lock(c_west, f.sim, "key", msec(50), spans));
  f.sim.run();
  ASSERT_EQ(spans.size(), 2u);
  // Spans must not overlap.
  const auto& a = spans[0];
  const auto& b = spans[1];
  EXPECT_TRUE(a.second <= b.first || b.second <= a.first);
  EXPECT_EQ(f.service.acquires_served(), 2);
}

TEST(LockServiceTest, IndependentLocksDontBlock) {
  Fixture f;
  rpc::Endpoint east(f.network, f.registry, "client-east");
  rpc::Endpoint west(f.network, f.registry, "client-west");
  LockClient c_east(east, "zk");
  LockClient c_west(west, "zk");
  std::vector<std::pair<int64_t, int64_t>> spans_a, spans_b;
  f.sim.spawn(hold_lock(c_east, f.sim, "a", msec(100), spans_a));
  f.sim.spawn(hold_lock(c_west, f.sim, "b", msec(100), spans_b));
  f.sim.run();
  ASSERT_EQ(spans_a.size(), 1u);
  ASSERT_EQ(spans_b.size(), 1u);
  // Both held their locks concurrently (b started before a finished).
  EXPECT_LT(spans_b[0].first, spans_a[0].second);
}

sim::Task<void> expect_status(sim::Task<Status> op, StatusCode expected) {
  Status st = co_await std::move(op);
  EXPECT_EQ(st.code(), expected) << st.to_string();
}

TEST(LockServiceTest, ReleaseWithoutHoldingFails) {
  Fixture f;
  rpc::Endpoint east(f.network, f.registry, "client-east");
  LockClient client(east, "zk");
  f.sim.spawn(expect_status(client.release("never-held"),
                            StatusCode::kFailedPrecondition));
  f.sim.run();
}

TEST(LockServiceTest, ReleaseByNonHolderFails) {
  Fixture f;
  rpc::Endpoint east(f.network, f.registry, "client-east");
  rpc::Endpoint west(f.network, f.registry, "client-west");
  LockClient c_east(east, "zk");
  LockClient c_west(west, "zk");

  auto scenario = [](LockClient a, LockClient b) -> sim::Task<void> {
    Status st = co_await a.acquire("k");
    EXPECT_TRUE(st.ok());
    st = co_await b.release("k");
    EXPECT_EQ(st.code(), StatusCode::kFailedPrecondition);
    st = co_await a.release("k");
    EXPECT_TRUE(st.ok());
  };
  f.sim.spawn(scenario(c_east, c_west));
  f.sim.run();
}

TEST(LockServiceTest, DoubleAcquireBySameNodeRejected) {
  Fixture f;
  rpc::Endpoint east(f.network, f.registry, "client-east");
  LockClient client(east, "zk");
  auto scenario = [](LockClient c) -> sim::Task<void> {
    Status st = co_await c.acquire("k");
    EXPECT_TRUE(st.ok());
    st = co_await c.acquire("k");  // not reentrant
    EXPECT_EQ(st.code(), StatusCode::kFailedPrecondition);
    st = co_await c.release("k");
    EXPECT_TRUE(st.ok());
  };
  f.sim.spawn(scenario(client));
  f.sim.run();
}

TEST(LockServiceTest, HolderAndWaitingIntrospection) {
  Fixture f;
  rpc::Endpoint east(f.network, f.registry, "client-east");
  rpc::Endpoint west(f.network, f.registry, "client-west");
  LockClient c_east(east, "zk");
  LockClient c_west(west, "zk");
  std::vector<std::pair<int64_t, int64_t>> spans;
  f.sim.spawn(hold_lock(c_east, f.sim, "k", msec(200), spans));
  f.sim.spawn(hold_lock(c_west, f.sim, "k", msec(200), spans));
  // After both acquire RPCs have arrived (>35ms) but before the first
  // release (~200ms), east holds and west waits.
  f.sim.run_until(TimePoint(100000));
  EXPECT_EQ(f.service.holder("k"), "client-east");
  EXPECT_EQ(f.service.waiting("k"), 1);
  f.sim.run();
  EXPECT_EQ(f.service.holder("k"), "");
  EXPECT_EQ(f.service.waiting("k"), 0);
}

TEST(LockServiceTest, ManyContendersAllServed) {
  Fixture f;
  std::vector<std::unique_ptr<rpc::Endpoint>> endpoints;
  std::vector<std::pair<int64_t, int64_t>> spans;
  for (int i = 0; i < 8; ++i) {
    const std::string node = "n" + std::to_string(i);
    f.network.topology().add_node(node, i % 2 == 0 ? "us-east" : "us-west");
    endpoints.push_back(
        std::make_unique<rpc::Endpoint>(f.network, f.registry, node));
    LockClient c(*endpoints.back(), "zk");
    f.sim.spawn(hold_lock(c, f.sim, "hot", msec(10), spans));
  }
  f.sim.run();
  ASSERT_EQ(spans.size(), 8u);
  for (size_t i = 1; i < spans.size(); ++i) {
    EXPECT_GE(spans[i].first, spans[i - 1].second);  // strictly serialized
  }
  EXPECT_EQ(f.service.acquires_served(), 8);
}

// ------------------------------------------------------------ leases

TEST(LockServiceTest, LeaseExpiryEvictsCrashedHolder) {
  Fixture f;
  f.service.set_lease(sec(5));
  f.service.start_lease_reaper(sec(1));

  rpc::Endpoint east(f.network, f.registry, "client-east");
  rpc::Endpoint west(f.network, f.registry, "client-west");
  LockClient c_east(east, "zk");
  LockClient c_west(west, "zk");

  // East acquires and then "crashes" (never releases). West queues behind.
  bool west_got_lock = false;
  auto crasher = [](LockClient c) -> sim::Task<void> {
    Status st = co_await c.acquire("k");
    EXPECT_TRUE(st.ok());
    // ... crash: no release ...
  };
  auto waiter_task = [](LockClient c, bool& flag) -> sim::Task<void> {
    Status st = co_await c.acquire("k");
    EXPECT_TRUE(st.ok());
    flag = true;
    st = co_await c.release("k");
    EXPECT_TRUE(st.ok());
  };
  f.sim.spawn(crasher(c_east));
  f.sim.spawn(waiter_task(c_west, west_got_lock));

  // Before the lease expires, west is still blocked.
  f.sim.run_until(TimePoint(sec(4).us()));
  EXPECT_FALSE(west_got_lock);
  EXPECT_EQ(f.service.holder("k"), "client-east");
  // After expiry, the reaper evicts east and west proceeds.
  f.sim.run_until(TimePoint(sec(10).us()));
  EXPECT_TRUE(west_got_lock);
  EXPECT_GE(f.service.leases_expired(), 1);

  // The crashed holder's late release fails like an expired ZK session.
  bool checked = false;
  auto late_release = [](LockClient c, bool& flag) -> sim::Task<void> {
    Status st = co_await c.release("k");
    EXPECT_EQ(st.code(), StatusCode::kFailedPrecondition);
    flag = true;
  };
  f.sim.spawn(late_release(c_east, checked));
  f.sim.run_until(f.sim.now() + sec(2));
  EXPECT_TRUE(checked);
  f.service.stop_lease_reaper();
}

TEST(LockServiceTest, HealthyHolderUnaffectedByReaper) {
  Fixture f;
  f.service.set_lease(sec(30));
  f.service.start_lease_reaper(sec(1));
  rpc::Endpoint east(f.network, f.registry, "client-east");
  LockClient client(east, "zk");
  std::vector<std::pair<int64_t, int64_t>> spans;
  // Hold for 2 s (well inside the lease), release normally.
  f.sim.spawn(hold_lock(client, f.sim, "k", sec(2), spans));
  f.sim.run_until(TimePoint(sec(10).us()));
  ASSERT_EQ(spans.size(), 1u);
  EXPECT_EQ(f.service.leases_expired(), 0);
  f.service.stop_lease_reaper();
}

}  // namespace
}  // namespace wiera::coord
