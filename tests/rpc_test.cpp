// Tests for the wire format and RPC layer.
#include <gtest/gtest.h>

#include "net/network.h"
#include "rpc/rpc.h"
#include "rpc/wire.h"
#include "sim/simulation.h"

namespace wiera::rpc {
namespace {

// ------------------------------------------------------------ wire format

TEST(WireTest, RoundTripScalars) {
  WireWriter w;
  w.put_u8(7);
  w.put_bool(true);
  w.put_u32(0xDEADBEEF);
  w.put_u64(0x0123456789ABCDEFull);
  w.put_i64(-42);
  w.put_double(3.5);
  Bytes data = w.take();

  WireReader r(data);
  EXPECT_EQ(r.get_u8(), 7);
  EXPECT_TRUE(r.get_bool());
  EXPECT_EQ(r.get_u32(), 0xDEADBEEFu);
  EXPECT_EQ(r.get_u64(), 0x0123456789ABCDEFull);
  EXPECT_EQ(r.get_i64(), -42);
  EXPECT_EQ(r.get_double(), 3.5);
  EXPECT_TRUE(r.ok());
  EXPECT_EQ(r.remaining(), 0u);
}

TEST(WireTest, RoundTripStringsAndBlobs) {
  WireWriter w;
  w.put_string("hello");
  w.put_string("");
  w.put_blob(Blob("payload-bytes"));
  Bytes data = w.take();

  WireReader r(data);
  EXPECT_EQ(r.get_string(), "hello");
  EXPECT_EQ(r.get_string(), "");
  EXPECT_EQ(r.get_blob().to_string(), "payload-bytes");
  EXPECT_TRUE(r.ok());
}

TEST(WireTest, TruncatedDataFailsSafely) {
  WireWriter w;
  w.put_u64(1);
  Bytes data = w.take();
  data.resize(3);  // truncate

  WireReader r(data);
  EXPECT_EQ(r.get_u64(), 0u);
  EXPECT_FALSE(r.ok());
  EXPECT_FALSE(r.status().ok());
  // Further reads keep failing without UB.
  EXPECT_EQ(r.get_string(), "");
}

TEST(WireTest, CorruptLengthPrefixFailsSafely) {
  WireWriter w;
  w.put_u32(0xFFFFFFFF);  // claims a 4 GiB string
  Bytes data = w.take();
  WireReader r(data);
  EXPECT_EQ(r.get_string(), "");
  EXPECT_FALSE(r.ok());
}

TEST(WireTest, SizeTracksWrites) {
  WireWriter w;
  EXPECT_EQ(w.size(), 0u);
  w.put_u32(1);
  EXPECT_EQ(w.size(), 4u);
  w.put_string("abc");
  EXPECT_EQ(w.size(), 11u);
}

// ------------------------------------------------------------ RPC

struct Fixture {
  sim::Simulation sim;
  net::Network network;
  Registry registry;

  Fixture() : network(sim, make_topology()) {}

  static net::Topology make_topology() {
    net::Topology topo;
    topo.add_datacenter("dc-a", net::Provider::kAws, "us-east");
    topo.add_datacenter("dc-b", net::Provider::kAws, "us-west");
    topo.set_rtt("dc-a", "dc-b", msec(70));
    topo.set_jitter_fraction(0.0);
    topo.add_node("client", "dc-a");
    topo.add_node("server", "dc-b");
    return topo;
  }
};

Message make_msg(std::string_view s) {
  WireWriter w;
  w.put_string(s);
  return Message{w.take()};
}

std::string msg_text(const Message& m) {
  WireReader r(m.body);
  return r.get_string();
}

sim::Task<void> run_call(Endpoint& ep, std::string target, std::string method,
                         Message req, Result<Message>& out, int64_t& at_us,
                         sim::Simulation& sim) {
  out = co_await ep.call(std::move(target), std::move(method), std::move(req));
  at_us = sim.now().us();
}

TEST(RpcTest, EchoRoundTripPaysRtt) {
  Fixture f;
  Endpoint server(f.network, f.registry, "server");
  Endpoint client(f.network, f.registry, "client");
  server.register_handler("echo", [](Message req) -> sim::Task<Result<Message>> {
    co_return req;
  });

  Result<Message> out = internal_error("unset");
  int64_t at_us = -1;
  f.sim.spawn(run_call(client, "server", "echo", make_msg("ping"), out, at_us,
                       f.sim));
  f.sim.run();
  ASSERT_TRUE(out.ok());
  EXPECT_EQ(msg_text(*out), "ping");
  // One-way 35 ms each direction plus ~1 us serialization per frame.
  EXPECT_NEAR(at_us, 70000, 50);
}

TEST(RpcTest, LoopbackSkipsNetwork) {
  Fixture f;
  Endpoint client(f.network, f.registry, "client");
  client.register_handler("echo", [](Message req) -> sim::Task<Result<Message>> {
    co_return req;
  });
  Result<Message> out = internal_error("unset");
  int64_t at_us = -1;
  f.sim.spawn(run_call(client, "client", "echo", make_msg("x"), out, at_us,
                       f.sim));
  f.sim.run();
  ASSERT_TRUE(out.ok());
  EXPECT_EQ(at_us, 0);
  EXPECT_EQ(f.network.traffic().total_messages, 0);
}

TEST(RpcTest, UnknownMethodReturnsUnimplemented) {
  Fixture f;
  Endpoint server(f.network, f.registry, "server");
  Endpoint client(f.network, f.registry, "client");
  Result<Message> out = internal_error("unset");
  int64_t at_us = -1;
  f.sim.spawn(run_call(client, "server", "nope", make_msg(""), out, at_us,
                       f.sim));
  f.sim.run();
  EXPECT_EQ(out.status().code(), StatusCode::kUnimplemented);
}

TEST(RpcTest, MissingEndpointReturnsUnavailable) {
  Fixture f;
  Endpoint client(f.network, f.registry, "client");
  Result<Message> out = internal_error("unset");
  int64_t at_us = -1;
  f.sim.spawn(run_call(client, "server", "echo", make_msg(""), out, at_us,
                       f.sim));
  f.sim.run();
  EXPECT_EQ(out.status().code(), StatusCode::kUnavailable);
}

TEST(RpcTest, OutageFailsCall) {
  Fixture f;
  Endpoint server(f.network, f.registry, "server");
  Endpoint client(f.network, f.registry, "client");
  server.register_handler("echo", [](Message req) -> sim::Task<Result<Message>> {
    co_return req;
  });
  f.network.topology().inject_outage("server", TimePoint(0),
                                     TimePoint(100000000));
  Result<Message> out = internal_error("unset");
  int64_t at_us = -1;
  f.sim.spawn(run_call(client, "server", "echo", make_msg(""), out, at_us,
                       f.sim));
  f.sim.run();
  EXPECT_EQ(out.status().code(), StatusCode::kUnavailable);
}

TEST(RpcTest, HandlerCanDoAsyncWork) {
  Fixture f;
  Endpoint server(f.network, f.registry, "server");
  Endpoint client(f.network, f.registry, "client");
  sim::Simulation* simp = &f.sim;
  server.register_handler(
      "slow", [simp](Message req) -> sim::Task<Result<Message>> {
        co_await simp->delay(msec(100));  // storage work
        co_return req;
      });
  Result<Message> out = internal_error("unset");
  int64_t at_us = -1;
  f.sim.spawn(run_call(client, "server", "slow", make_msg(""), out, at_us,
                       f.sim));
  f.sim.run();
  ASSERT_TRUE(out.ok());
  EXPECT_NEAR(at_us, 170000, 50);  // 35ms + 100ms + 35ms + serialization
}

TEST(RpcTest, CountersTrackTraffic) {
  Fixture f;
  Endpoint server(f.network, f.registry, "server");
  Endpoint client(f.network, f.registry, "client");
  server.register_handler("echo", [](Message req) -> sim::Task<Result<Message>> {
    co_return req;
  });
  Result<Message> out = internal_error("unset");
  int64_t at_us;
  f.sim.spawn(run_call(client, "server", "echo", make_msg("abc"), out, at_us,
                       f.sim));
  f.sim.run();
  EXPECT_EQ(client.calls_sent(), 1);
  EXPECT_EQ(server.calls_handled(), 1);
  // Request + response crossed the wire with framing overhead.
  EXPECT_EQ(f.network.traffic().total_messages, 2);
  EXPECT_GE(f.network.traffic().total_bytes, 2 * Message::kFrameOverhead);
}

// ------------------------------------------------------------ deadlines

sim::Task<void> run_call_ctx(Endpoint& ep, std::string target,
                             std::string method, Message req, Context ctx,
                             Result<Message>& out, int64_t& at_us,
                             sim::Simulation& sim) {
  out = co_await ep.call(std::move(target), std::move(method), std::move(req),
                         ctx);
  at_us = sim.now().us();
}

TEST(RpcDeadlineTest, ExpiredBeforeSendFailsWithoutTraffic) {
  Fixture f;
  Endpoint server(f.network, f.registry, "server");
  Endpoint client(f.network, f.registry, "client");
  server.register_handler("echo", [](Message req) -> sim::Task<Result<Message>> {
    co_return req;
  });
  Result<Message> out = internal_error("unset");
  int64_t at_us = -1;
  // Deadline == now: already expired at the call site.
  f.sim.spawn(run_call_ctx(client, "server", "echo", make_msg(""),
                           Context::with_deadline(f.sim.now()), out, at_us,
                           f.sim));
  f.sim.run();
  EXPECT_EQ(out.status().code(), StatusCode::kDeadlineExceeded);
  EXPECT_EQ(at_us, 0);  // failed immediately, no network wait
  EXPECT_EQ(f.network.traffic().total_messages, 0);
  EXPECT_EQ(client.calls_expired(), 1);
}

TEST(RpcDeadlineTest, SlowHandlerCutOffAtDeadline) {
  Fixture f;
  Endpoint server(f.network, f.registry, "server");
  Endpoint client(f.network, f.registry, "client");
  sim::Simulation* simp = &f.sim;
  server.register_handler(
      "slow", [simp](Message req) -> sim::Task<Result<Message>> {
        co_await simp->delay(msec(500));
        co_return req;
      });
  Result<Message> out = internal_error("unset");
  int64_t at_us = -1;
  f.sim.spawn(run_call_ctx(client, "server", "slow", make_msg(""),
                           Context::with_deadline(f.sim.now() + msec(100)),
                           out, at_us, f.sim));
  f.sim.run();
  EXPECT_EQ(out.status().code(), StatusCode::kDeadlineExceeded);
  // The caller is released exactly at the deadline, not after the handler's
  // 500 ms + response leg.
  EXPECT_NEAR(at_us, 100000, 50);
  EXPECT_EQ(client.calls_expired(), 1);
}

TEST(RpcDeadlineTest, FastCallUnaffectedByDeadline) {
  Fixture f;
  Endpoint server(f.network, f.registry, "server");
  Endpoint client(f.network, f.registry, "client");
  server.register_handler("echo", [](Message req) -> sim::Task<Result<Message>> {
    co_return req;
  });
  Result<Message> out = internal_error("unset");
  int64_t at_us = -1;
  f.sim.spawn(run_call_ctx(client, "server", "echo", make_msg("ping"),
                           Context::with_deadline(f.sim.now() + sec(1)), out,
                           at_us, f.sim));
  f.sim.run();
  ASSERT_TRUE(out.ok());
  EXPECT_EQ(msg_text(*out), "ping");
  EXPECT_NEAR(at_us, 70000, 50);
  EXPECT_EQ(client.calls_expired(), 0);
}

// ------------------------------------------------------------ admission

TEST(RpcAdmissionTest, ShedsOldestWaiterWhenQueueOverflows) {
  Fixture f;
  Endpoint server(f.network, f.registry, "server");
  Endpoint client(f.network, f.registry, "client");
  sim::Simulation* simp = &f.sim;
  server.register_handler(
      "slow", [simp](Message req) -> sim::Task<Result<Message>> {
        co_await simp->delay(msec(100));
        co_return req;
      });
  server.set_admission(/*max_inflight=*/1, /*max_queue=*/1);

  Result<Message> out[3] = {internal_error("unset"), internal_error("unset"),
                            internal_error("unset")};
  int64_t at_us[3] = {-1, -1, -1};
  for (int i = 0; i < 3; ++i) {
    f.sim.spawn(run_call(client, "server", "slow", make_msg("x"), out[i],
                         at_us[i], f.sim));
  }
  f.sim.run();

  int ok = 0, shed = 0;
  for (const auto& r : out) {
    if (r.ok()) {
      ok++;
    } else if (r.status().code() == StatusCode::kResourceExhausted) {
      shed++;
    }
  }
  // One runs, one waits, the overflow sheds the oldest waiter (LIFO
  // service favours the freshest request under overload).
  EXPECT_EQ(ok, 2);
  EXPECT_EQ(shed, 1);
  EXPECT_EQ(server.calls_shed(), 1);
  EXPECT_EQ(server.adm_inflight(), 0);  // all slots released
}

TEST(RpcAdmissionTest, ZeroQueueShedsImmediately) {
  Fixture f;
  Endpoint server(f.network, f.registry, "server");
  Endpoint client(f.network, f.registry, "client");
  sim::Simulation* simp = &f.sim;
  server.register_handler(
      "slow", [simp](Message req) -> sim::Task<Result<Message>> {
        co_await simp->delay(msec(100));
        co_return req;
      });
  server.set_admission(/*max_inflight=*/1, /*max_queue=*/0);

  Result<Message> a = internal_error("unset"), b = internal_error("unset");
  int64_t at_a = -1, at_b = -1;
  f.sim.spawn(run_call(client, "server", "slow", make_msg("a"), a, at_a,
                       f.sim));
  f.sim.spawn(run_call(client, "server", "slow", make_msg("b"), b, at_b,
                       f.sim));
  f.sim.run();

  const bool a_ok = a.ok();
  const Result<Message>& failed = a_ok ? b : a;
  EXPECT_TRUE(a_ok || b.ok());
  EXPECT_EQ(failed.status().code(), StatusCode::kResourceExhausted);
  EXPECT_EQ(server.calls_shed(), 1);
}

// ------------------------------------------------------------ registry

TEST(RpcRegistryTest, DuplicateEndpointKeepsFirstAndReportsError) {
  Fixture f;
  Endpoint server(f.network, f.registry, "server");
  Endpoint client(f.network, f.registry, "client");
  server.register_handler("echo", [](Message req) -> sim::Task<Result<Message>> {
    co_return req;
  });
  {
    // A second endpoint claiming the same node name must not hijack —
    // or, on destruction, unhook — the first registration.
    Endpoint imposter(f.network, f.registry, "server");
  }
  const sim::SimDiagnostic* d =
      f.sim.checker().find(sim::SimDiagnostic::Kind::kDuplicateEndpoint);
  ASSERT_NE(d, nullptr);
  EXPECT_TRUE(d->is_error);
  EXPECT_NE(d->message.find("server"), std::string::npos) << d->message;
  f.sim.checker().clear_diagnostics();

  // The original endpoint still serves traffic.
  Result<Message> out = internal_error("unset");
  int64_t at_us = -1;
  f.sim.spawn(run_call(client, "server", "echo", make_msg("still-here"), out,
                       at_us, f.sim));
  f.sim.run();
  ASSERT_TRUE(out.ok());
  EXPECT_EQ(msg_text(*out), "still-here");
}

}  // namespace
}  // namespace wiera::rpc
