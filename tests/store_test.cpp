// Tests for the storage tier models: correctness of the KV semantics plus
// the behaviours the paper's evaluation depends on (LRU eviction, buffer
// cache, O_DIRECT, memory pressure, IOPS throttling, latency ordering).
#include <gtest/gtest.h>

#include <limits>
#include <memory>

#include "common/units.h"
#include "sim/simulation.h"
#include "store/tier.h"

namespace wiera::store {
namespace {

// Helper: run one coroutine to completion in a fresh simulation step.
template <typename F>
void run(sim::Simulation& sim, F&& body) {
  bool done = false;
  auto wrapper = [](F body, bool& flag) -> sim::Task<void> {
    co_await body();
    flag = true;
  };
  sim.spawn(wrapper(std::forward<F>(body), done));
  sim.run();
  ASSERT_TRUE(done);
}

TierSpec memory_spec(int64_t capacity) {
  TierSpec s;
  s.name = "mem";
  s.kind = TierKind::kMemory;
  s.capacity_bytes = capacity;
  s.jitter_fraction = 0;
  return s;
}

TierSpec block_spec(TierKind kind, bool cache, int64_t iops = 0) {
  TierSpec s;
  s.name = "disk";
  s.kind = kind;
  s.capacity_bytes = 16 * GiB;
  s.jitter_fraction = 0;
  s.buffer_cache = cache;
  s.iops_limit = iops;
  return s;
}

// ------------------------------------------------------------ kind parsing

TEST(TierKindTest, ParsesPaperNames) {
  EXPECT_EQ(tier_kind_from_name("Memcached").value(), TierKind::kMemory);
  EXPECT_EQ(tier_kind_from_name("LocalMemory").value(), TierKind::kMemory);
  EXPECT_EQ(tier_kind_from_name("EBS").value(), TierKind::kBlockSsd);
  EXPECT_EQ(tier_kind_from_name("LocalDisk").value(), TierKind::kBlockSsd);
  EXPECT_EQ(tier_kind_from_name("S3").value(), TierKind::kObjectS3);
  EXPECT_EQ(tier_kind_from_name("S3-IA").value(), TierKind::kObjectS3IA);
  EXPECT_EQ(tier_kind_from_name("CheapestArchival").value(),
            TierKind::kGlacier);
  EXPECT_FALSE(tier_kind_from_name("floppy").ok());
}

TEST(TierKindTest, NamesRoundTrip) {
  EXPECT_EQ(tier_kind_name(TierKind::kMemory), "memory");
  EXPECT_EQ(tier_kind_name(TierKind::kObjectS3IA), "s3-ia");
}

// ------------------------------------------------------------ MemoryTier

TEST(MemoryTierTest, PutGetRoundTrip) {
  sim::Simulation sim;
  auto tier = make_tier(sim, memory_spec(1 * MiB));
  run(sim, [&]() -> sim::Task<void> {
    EXPECT_TRUE((co_await tier->put("k1", Blob("v1"))).ok());
    auto r = co_await tier->get("k1");
    EXPECT_TRUE(r.ok());
    if (!r.ok()) co_return;
    EXPECT_EQ(r->to_string(), "v1");
  });
  EXPECT_EQ(tier->object_count(), 1);
  EXPECT_EQ(tier->stats().puts, 1);
  EXPECT_EQ(tier->stats().gets, 1);
}

TEST(MemoryTierTest, GetMissing) {
  sim::Simulation sim;
  auto tier = make_tier(sim, memory_spec(1 * MiB));
  run(sim, [&]() -> sim::Task<void> {
    auto r = co_await tier->get("nope");
    EXPECT_EQ(r.status().code(), StatusCode::kNotFound);
  });
  EXPECT_EQ(tier->stats().get_misses, 1);
}

TEST(MemoryTierTest, OverwriteReplacesAndAdjustsUsage) {
  sim::Simulation sim;
  auto tier = make_tier(sim, memory_spec(1 * MiB));
  run(sim, [&]() -> sim::Task<void> {
    co_await tier->put("k", Blob(Bytes(100, 1)));
    co_await tier->put("k", Blob(Bytes(40, 2)));
    co_return;
  });
  EXPECT_EQ(tier->used_bytes(), 40);
  EXPECT_EQ(tier->object_count(), 1);
}

TEST(MemoryTierTest, LruEvictionWhenFull) {
  sim::Simulation sim;
  auto tier = make_tier(sim, memory_spec(250));
  run(sim, [&]() -> sim::Task<void> {
    co_await tier->put("a", Blob(Bytes(100, 1)));
    co_await tier->put("b", Blob(Bytes(100, 2)));
    // Touch "a" so "b" becomes LRU.
    co_await tier->get("a");
    co_await tier->put("c", Blob(Bytes(100, 3)));  // must evict "b"
    co_return;
  });
  EXPECT_TRUE(tier->contains("a"));
  EXPECT_FALSE(tier->contains("b"));
  EXPECT_TRUE(tier->contains("c"));
  EXPECT_EQ(tier->stats().evictions, 1);
}

TEST(MemoryTierTest, ObjectBiggerThanTierRejected) {
  sim::Simulation sim;
  auto tier = make_tier(sim, memory_spec(100));
  run(sim, [&]() -> sim::Task<void> {
    auto st = co_await tier->put("big", Blob(Bytes(200, 0)));
    EXPECT_EQ(st.code(), StatusCode::kResourceExhausted);
  });
}

TEST(MemoryTierTest, RemoveFreesSpace) {
  sim::Simulation sim;
  auto tier = make_tier(sim, memory_spec(1 * MiB));
  run(sim, [&]() -> sim::Task<void> {
    co_await tier->put("k", Blob(Bytes(100, 1)));
    EXPECT_TRUE((co_await tier->remove("k")).ok());
    EXPECT_EQ((co_await tier->remove("k")).code(), StatusCode::kNotFound);
  });
  EXPECT_EQ(tier->used_bytes(), 0);
}

TEST(MemoryTierTest, WipeModelsVolatility) {
  sim::Simulation sim;
  TierSpec spec = memory_spec(1 * MiB);
  MemoryTier tier(sim, spec);
  run(sim, [&]() -> sim::Task<void> {
    co_await tier.put("k", Blob("v"), {});
    co_return;
  });
  tier.wipe();
  EXPECT_EQ(tier.object_count(), 0);
  EXPECT_EQ(tier.used_bytes(), 0);
}

TEST(MemoryTierTest, SubMillisecondServiceTime) {
  sim::Simulation sim;
  auto tier = make_tier(sim, memory_spec(1 * MiB));
  run(sim, [&]() -> sim::Task<void> {
    co_await tier->put("k", Blob(Bytes(4096, 0)));
    co_return;
  });
  EXPECT_LT(sim.now().us(), 1000);  // memory write for 4KB well under 1 ms
}

// ------------------------------------------------------------ BlockTier

TEST(BlockTierTest, DirectIoPaysDeviceLatency) {
  sim::Simulation sim;
  auto ssd = make_tier(sim, block_spec(TierKind::kBlockSsd, /*cache=*/true));
  int64_t write_done_us = 0, read_done_us = 0;
  run(sim, [&]() -> sim::Task<void> {
    IoOptions direct{.direct = true};
    co_await ssd->put("k", Blob(Bytes(4096, 0)), direct);
    write_done_us = sim.now().us();
    co_await ssd->get("k", direct);
    read_done_us = sim.now().us() - write_done_us;
  });
  // SSD 4KB direct: ~1.2ms write, ~1ms read.
  EXPECT_NEAR(write_done_us, 1225, 150);
  EXPECT_NEAR(read_done_us, 1025, 150);
  EXPECT_EQ(ssd->stats().cache_hits, 0);
}

TEST(BlockTierTest, BufferCacheMakesRepeatReadsFast) {
  sim::Simulation sim;
  auto ssd = make_tier(sim, block_spec(TierKind::kBlockSsd, /*cache=*/true));
  int64_t first_us = 0, second_us = 0;
  run(sim, [&]() -> sim::Task<void> {
    co_await ssd->put("k", Blob(Bytes(4096, 0)), {.direct = true});
    const int64_t t0 = sim.now().us();
    co_await ssd->get("k");  // miss: device + populate cache
    first_us = sim.now().us() - t0;
    const int64_t t1 = sim.now().us();
    co_await ssd->get("k");  // hit
    second_us = sim.now().us() - t1;
  });
  EXPECT_GT(first_us, 800);
  EXPECT_LT(second_us, 200);  // page-cache hit well under 1ms
  EXPECT_EQ(ssd->stats().cache_hits, 1);
}

TEST(BlockTierTest, CachedWriteIsFast) {
  sim::Simulation sim;
  auto ssd = make_tier(sim, block_spec(TierKind::kBlockSsd, /*cache=*/true));
  run(sim, [&]() -> sim::Task<void> {
    co_await ssd->put("k", Blob(Bytes(4096, 0)));  // write-back via cache
    co_return;
  });
  EXPECT_LT(sim.now().us(), 300);
}

TEST(BlockTierTest, MemoryPressureDisablesCache) {
  sim::Simulation sim;
  TierSpec spec = block_spec(TierKind::kBlockSsd, /*cache=*/true);
  BlockTier ssd(sim, [&] {
    TierSpec s = spec;
    s.read_base = usec(1000);
    s.write_base = usec(1200);
    s.bandwidth_mbps = 160;
    return s;
  }());
  ssd.set_memory_pressure(true);
  int64_t read_us = 0;
  run(sim, [&]() -> sim::Task<void> {
    co_await ssd.put("k", Blob(Bytes(4096, 0)), {});
    const int64_t t0 = sim.now().us();
    co_await ssd.get("k", {});
    read_us = sim.now().us() - t0;
    co_await ssd.get("k", {});  // still no caching
  });
  EXPECT_GT(read_us, 800);
  EXPECT_EQ(ssd.stats().cache_hits, 0);
}

TEST(BlockTierTest, HddSlowerThanSsd) {
  sim::Simulation sim;
  auto ssd = make_tier(sim, block_spec(TierKind::kBlockSsd, false));
  auto hdd = make_tier(sim, block_spec(TierKind::kBlockHdd, false));
  int64_t ssd_us = 0, hdd_us = 0;
  run(sim, [&]() -> sim::Task<void> {
    co_await ssd->put("k", Blob(Bytes(4096, 0)), {.direct = true});
    int64_t t = sim.now().us();
    co_await ssd->get("k", {.direct = true});
    ssd_us = sim.now().us() - t;
    co_await hdd->put("k", Blob(Bytes(4096, 0)), {.direct = true});
    t = sim.now().us();
    co_await hdd->get("k", {.direct = true});
    hdd_us = sim.now().us() - t;
  });
  EXPECT_GT(hdd_us, 4 * ssd_us);
}

TEST(BlockTierTest, IopsThrottleCapsOperationRate) {
  // 500 IOPS (the Azure cap): 100 direct reads must take >= ~200ms.
  sim::Simulation sim;
  auto disk = make_tier(
      sim, block_spec(TierKind::kBlockSsd, /*cache=*/false, /*iops=*/500));
  run(sim, [&]() -> sim::Task<void> {
    co_await disk->put("k", Blob(Bytes(512, 0)), {.direct = true});
    for (int i = 0; i < 100; ++i) {
      co_await disk->get("k", {.direct = true});
    }
  });
  // 101 device ops at 2ms/slot = ~202ms minimum.
  EXPECT_GE(sim.now().us(), 200000);
  EXPECT_LE(sim.now().us(), 260000);
}

TEST(BlockTierTest, CapacityEnforced) {
  sim::Simulation sim;
  TierSpec spec = block_spec(TierKind::kBlockSsd, false);
  spec.capacity_bytes = 1000;
  auto disk = make_tier(sim, spec);
  run(sim, [&]() -> sim::Task<void> {
    EXPECT_TRUE((co_await disk->put("a", Blob(Bytes(600, 0)))).ok());
    auto st = co_await disk->put("b", Blob(Bytes(600, 0)));
    EXPECT_EQ(st.code(), StatusCode::kResourceExhausted);
    // Overwriting "a" with something that fits in its place is fine.
    EXPECT_TRUE((co_await disk->put("a", Blob(Bytes(900, 0)))).ok());
  });
  EXPECT_EQ(disk->used_bytes(), 900);
}

// ------------------------------------------------------------ ObjectTier

TEST(ObjectTierTest, S3LatencyOrdering) {
  // Fig. 9: SSD < HDD < S3 < S3-IA for 4KB ops.
  sim::Simulation sim;
  auto s3 = make_tier(sim, [&] {
    TierSpec s;
    s.name = "s3";
    s.kind = TierKind::kObjectS3;
    s.jitter_fraction = 0;
    return s;
  }());
  auto s3ia = make_tier(sim, [&] {
    TierSpec s;
    s.name = "s3ia";
    s.kind = TierKind::kObjectS3IA;
    s.jitter_fraction = 0;
    return s;
  }());
  int64_t s3_us = 0, s3ia_us = 0;
  run(sim, [&]() -> sim::Task<void> {
    co_await s3->put("k", Blob(Bytes(4096, 0)));
    int64_t t = sim.now().us();
    co_await s3->get("k");
    s3_us = sim.now().us() - t;
    co_await s3ia->put("k", Blob(Bytes(4096, 0)));
    t = sim.now().us();
    co_await s3ia->get("k");
    s3ia_us = sim.now().us() - t;
  });
  EXPECT_GT(s3_us, 10000);    // ~15ms
  EXPECT_GT(s3ia_us, s3_us);  // IA slower than standard
}

TEST(ObjectTierTest, UnboundedCapacity) {
  sim::Simulation sim;
  TierSpec s;
  s.name = "s3";
  s.kind = TierKind::kObjectS3;
  auto tier = make_tier(sim, s);
  run(sim, [&]() -> sim::Task<void> {
    for (int i = 0; i < 50; ++i) {
      EXPECT_TRUE(
          (co_await tier->put("k" + std::to_string(i), Blob(Bytes(1 * MiB, 0))))
              .ok());
    }
  });
  EXPECT_EQ(tier->object_count(), 50);
  EXPECT_EQ(tier->fill_fraction(), 0.0);  // unbounded
}

TEST(ObjectTierTest, RemoveAndMissSemantics) {
  sim::Simulation sim;
  TierSpec s;
  s.name = "s3";
  s.kind = TierKind::kObjectS3;
  auto tier = make_tier(sim, s);
  run(sim, [&]() -> sim::Task<void> {
    co_await tier->put("k", Blob("v"));
    EXPECT_TRUE((co_await tier->remove("k")).ok());
    auto r = co_await tier->get("k");
    EXPECT_EQ(r.status().code(), StatusCode::kNotFound);
  });
}

// ------------------------------------------------------------ fill / grow

TEST(TierTest, FillFractionAndGrow) {
  sim::Simulation sim;
  auto tier = make_tier(sim, memory_spec(1000));
  run(sim, [&]() -> sim::Task<void> {
    co_await tier->put("k", Blob(Bytes(500, 0)));
    co_return;
  });
  EXPECT_DOUBLE_EQ(tier->fill_fraction(), 0.5);
  ASSERT_TRUE(tier->grow(1000).ok());
  EXPECT_DOUBLE_EQ(tier->fill_fraction(), 0.25);
}

TEST(TierTest, GrowRejectsNegative) {
  sim::Simulation sim;
  auto tier = make_tier(sim, memory_spec(1000));
  EXPECT_EQ(tier->grow(-1).code(), StatusCode::kInvalidArgument);
  // Rejected growth must not touch the capacity.
  EXPECT_EQ(tier->spec().capacity_bytes, 1000);
}

TEST(TierTest, GrowRejectsOverflow) {
  constexpr int64_t kMax = std::numeric_limits<int64_t>::max();
  sim::Simulation sim;
  auto tier = make_tier(sim, memory_spec(1000));
  EXPECT_EQ(tier->grow(kMax).code(), StatusCode::kOutOfRange);
  EXPECT_EQ(tier->spec().capacity_bytes, 1000);
  // The exact boundary is allowed: capacity lands on INT64_MAX, not past it.
  EXPECT_TRUE(tier->grow(kMax - 1000).ok());
  EXPECT_EQ(tier->spec().capacity_bytes, kMax);
  EXPECT_EQ(tier->grow(1).code(), StatusCode::kOutOfRange);
}

// ------------------------------------------------------- fault-window edges

TEST(TierFaultTest, EnospcWindowBlocksBeforeEviction) {
  // A full memory tier hit by an ENOSPC window: the put must fail up front
  // without evicting residents to make room for a write that cannot land.
  sim::Simulation sim;
  auto tier = make_tier(sim, memory_spec(250));
  run(sim, [&]() -> sim::Task<void> {
    co_await tier->put("a", Blob(Bytes(100, 1)));
    co_await tier->put("b", Blob(Bytes(100, 2)));
    tier->inject_write_errors(sim.now(), sim.now() + sec(10));
    auto st = co_await tier->put("c", Blob(Bytes(100, 3)));
    EXPECT_EQ(st.code(), StatusCode::kResourceExhausted);
  });
  EXPECT_TRUE(tier->contains("a"));
  EXPECT_TRUE(tier->contains("b"));
  EXPECT_FALSE(tier->contains("c"));
  EXPECT_EQ(tier->stats().evictions, 0);
}

TEST(TierFaultTest, SlowdownWindowIsHalfOpen) {
  // The window is [from, until): an operation starting exactly at `until`
  // pays no slowdown.
  sim::Simulation sim;
  auto tier = make_tier(sim, memory_spec(1 * MiB));
  const TimePoint until = TimePoint::origin() + usec(10000);
  tier->inject_slowdown(10.0, TimePoint::origin(), until);
  int64_t inside_us = 0, boundary_us = 0;
  run(sim, [&]() -> sim::Task<void> {
    // Empty payload: service time is exactly write_base (jitter disabled).
    int64_t t0 = sim.now().us();
    co_await tier->put("k", Blob(Bytes()));
    inside_us = sim.now().us() - t0;
    co_await sim.at(until);
    t0 = sim.now().us();
    co_await tier->put("k", Blob(Bytes()));
    boundary_us = sim.now().us() - t0;
  });
  EXPECT_EQ(inside_us, 10 * boundary_us);
  EXPECT_EQ(boundary_us, calibration::kMemoryWriteUs);
}

TEST(TierFaultTest, ClearFaultsMidWindowRestoresWrites) {
  sim::Simulation sim;
  auto tier = make_tier(sim, memory_spec(1 * MiB));
  run(sim, [&]() -> sim::Task<void> {
    tier->inject_write_errors(sim.now(), sim.now() + sec(60));
    auto st = co_await tier->put("k", Blob("v"));
    EXPECT_EQ(st.code(), StatusCode::kResourceExhausted);
    tier->clear_faults();
    // Still well inside the (now cancelled) window.
    EXPECT_LT(sim.now(), TimePoint::origin() + sec(60));
    EXPECT_TRUE((co_await tier->put("k", Blob("v"))).ok());
  });
  EXPECT_TRUE(tier->contains("k"));
}

// ------------------------------------------------------ torn writes / rot

TEST(BlockTierTest, TornWriteJournalledAndDiscardedByRecover) {
  sim::Simulation sim;
  auto disk = make_tier(sim, block_spec(TierKind::kBlockSsd, /*cache=*/false));
  run(sim, [&]() -> sim::Task<void> {
    EXPECT_TRUE((co_await disk->put("k", Blob(Bytes(4096, 1)))).ok());
    // The node "crashes" while the second write is in flight: its commit
    // instant lands inside the torn window.
    disk->inject_torn_writes(sim.now(), sim.now() + sec(10));
    auto st = co_await disk->put("k", Blob(Bytes(4096, 2)));
    EXPECT_EQ(st.code(), StatusCode::kDataLoss);
    // The previous committed copy is untouched by the shadow journal.
    auto r = co_await disk->get("k");
    EXPECT_TRUE(r.ok());
    if (!r.ok()) co_return;
    EXPECT_EQ(r->size(), 4096u);
    EXPECT_EQ(r->data()[0], 1);
  });
  EXPECT_EQ(disk->stats().torn_writes, 1);
  disk->recover();
  EXPECT_EQ(disk->stats().torn_discards, 1);
  run(sim, [&]() -> sim::Task<void> {
    auto r = co_await disk->get("k");
    EXPECT_TRUE(r.ok());
    if (!r.ok()) co_return;
    EXPECT_EQ(r->data()[0], 1);  // still the old committed copy
  });
}

TEST(BlockTierTest, LegacyTornWritePublishesTruncatedPrefix) {
  // crash_consistent=false models an in-place write path: the torn prefix
  // silently replaces the object with an OK status. Only the object
  // checksum can tell downstream.
  sim::Simulation sim;
  TierSpec spec = block_spec(TierKind::kBlockSsd, /*cache=*/false);
  spec.crash_consistent = false;
  auto disk = make_tier(sim, spec);
  run(sim, [&]() -> sim::Task<void> {
    disk->inject_torn_writes(sim.now(), sim.now() + sec(10));
    EXPECT_TRUE((co_await disk->put("k", Blob(Bytes(4096, 7)))).ok());
    disk->clear_faults();
    auto r = co_await disk->get("k");
    EXPECT_TRUE(r.ok());
    if (!r.ok()) co_return;
    EXPECT_EQ(r->size(), 2048u);  // first half only
  });
  EXPECT_EQ(disk->stats().torn_writes, 1);
  EXPECT_EQ(disk->used_bytes(), 2048);
  disk->recover();
  EXPECT_EQ(disk->stats().torn_discards, 0);  // nothing was journalled
}

TEST(ObjectTierTest, TornWriteJournalledAndDiscardedByRecover) {
  sim::Simulation sim;
  TierSpec s;
  s.name = "s3";
  s.kind = TierKind::kObjectS3;
  auto tier = make_tier(sim, s);
  run(sim, [&]() -> sim::Task<void> {
    EXPECT_TRUE((co_await tier->put("k", Blob(Bytes(1000, 1)))).ok());
    tier->inject_torn_writes(sim.now(), sim.now() + sec(10));
    auto st = co_await tier->put("k", Blob(Bytes(1000, 2)));
    EXPECT_EQ(st.code(), StatusCode::kDataLoss);
    auto r = co_await tier->get("k");
    EXPECT_TRUE(r.ok());
    if (!r.ok()) co_return;
    EXPECT_EQ(r->data()[0], 1);
  });
  EXPECT_EQ(tier->stats().torn_writes, 1);
  tier->recover();
  EXPECT_EQ(tier->stats().torn_discards, 1);
}

TEST(TierTest, CorruptObjectFlipsOneStoredByte) {
  sim::Simulation sim;
  auto tier = make_tier(sim, memory_spec(1 * MiB));
  Bytes payload(64, 0xAB);
  run(sim, [&]() -> sim::Task<void> {
    co_await tier->put("k", Blob(Bytes(payload)));
    co_return;
  });
  EXPECT_FALSE(tier->corrupt_object("missing"));
  EXPECT_TRUE(tier->corrupt_object("k"));
  EXPECT_EQ(tier->stats().corruptions, 1);
  run(sim, [&]() -> sim::Task<void> {
    auto r = co_await tier->get("k");
    EXPECT_TRUE(r.ok());
    if (!r.ok()) co_return;
    EXPECT_EQ(r->size(), payload.size());  // size is unchanged — only a flip
    EXPECT_NE(r->view(), Blob(Bytes(payload)).view());
  });
}

// Property sweep: every persistent tier kind round-trips payloads of many
// sizes unchanged.
class TierRoundTrip
    : public ::testing::TestWithParam<std::tuple<TierKind, int>> {};

TEST_P(TierRoundTrip, PayloadIntegrity) {
  const auto [kind, size] = GetParam();
  sim::Simulation sim;
  TierSpec spec;
  spec.name = "t";
  spec.kind = kind;
  spec.capacity_bytes = 0;  // unbounded for the sweep
  auto tier = make_tier(sim, spec);
  Bytes payload(static_cast<size_t>(size));
  for (size_t i = 0; i < payload.size(); ++i) {
    payload[i] = static_cast<uint8_t>(i * 31 + 7);
  }
  run(sim, [&, size = size]() -> sim::Task<void> {
    EXPECT_TRUE((co_await tier->put("k", Blob(Bytes(payload)))).ok());
    auto r = co_await tier->get("k");
    EXPECT_TRUE(r.ok());
    if (!r.ok()) co_return;
    EXPECT_EQ(r->size(), static_cast<size_t>(size));
    EXPECT_EQ(r->view(), Blob(Bytes(payload)).view());
  });
}

INSTANTIATE_TEST_SUITE_P(
    KindsAndSizes, TierRoundTrip,
    ::testing::Combine(::testing::Values(TierKind::kMemory,
                                         TierKind::kBlockSsd,
                                         TierKind::kBlockHdd,
                                         TierKind::kObjectS3,
                                         TierKind::kObjectS3IA),
                       ::testing::Values(0, 1, 4096, 1 << 20)));

}  // namespace
}  // namespace wiera::store
