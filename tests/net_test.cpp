// Tests for the WAN topology and network transport model.
#include <gtest/gtest.h>

#include "common/units.h"
#include "net/network.h"
#include "net/topology.h"
#include "sim/simulation.h"
#include "sim/sync.h"

namespace wiera::net {
namespace {

Topology two_dc_topology() {
  Topology topo;
  topo.add_datacenter("dc-a", Provider::kAws, "us-east");
  topo.add_datacenter("dc-b", Provider::kAws, "us-west");
  topo.set_rtt("dc-a", "dc-b", msec(70));
  topo.add_node("n1", "dc-a");
  topo.add_node("n2", "dc-b");
  topo.add_node("n3", "dc-a");
  return topo;
}

TEST(TopologyTest, NodeAndDatacenterLookup) {
  Topology topo = two_dc_topology();
  EXPECT_TRUE(topo.has_node("n1"));
  EXPECT_FALSE(topo.has_node("nx"));
  EXPECT_EQ(topo.node("n1").datacenter, "dc-a");
  EXPECT_EQ(topo.datacenter_of("n2").region, "us-west");
  EXPECT_EQ(topo.node_names().size(), 3u);
}

TEST(TopologyTest, RttSymmetricAndSameDcDefault) {
  Topology topo = two_dc_topology();
  EXPECT_EQ(topo.base_rtt("dc-a", "dc-b").us(), 70000);
  EXPECT_EQ(topo.base_rtt("dc-b", "dc-a").us(), 70000);
  EXPECT_EQ(topo.base_rtt("dc-a", "dc-a").us(),
            calibration::kSameDcRttUs);
}

TEST(TopologyTest, BaseOneWayIsHalfRtt) {
  Topology topo = two_dc_topology();
  EXPECT_EQ(topo.base_one_way("n1", "n2").us(), 35000);
  EXPECT_EQ(topo.base_one_way("n1", "n3").us(),
            calibration::kSameDcRttUs / 2);
}

TEST(TopologyTest, SampleLatencyJitterIsBounded) {
  Topology topo = two_dc_topology();
  topo.set_jitter_fraction(0.05);
  Rng rng(3);
  for (int i = 0; i < 1000; ++i) {
    Duration d = topo.sample_latency("n1", "n2", 0, TimePoint::origin(), rng);
    EXPECT_GT(d.us(), 35000 / 2);   // never below 50% of base
    EXPECT_LT(d.us(), 35000 * 2);   // 5% jitter can't double latency
  }
}

TEST(TopologyTest, ZeroJitterIsExact) {
  Topology topo = two_dc_topology();
  topo.set_jitter_fraction(0.0);
  Rng rng(3);
  EXPECT_EQ(topo.sample_latency("n1", "n2", 0, TimePoint::origin(), rng).us(),
            35000);
}

TEST(TopologyTest, TransferTimeScalesWithBytesAndThrottle) {
  Topology topo;
  topo.add_datacenter("dc", Provider::kAzure, "us-east");
  topo.add_node("small", "dc", VmType::basic_a2());
  topo.add_node("large", "dc", VmType::standard_d3());
  topo.set_jitter_fraction(0.0);
  Rng rng(1);
  const double small_mbps = VmType::basic_a2().net_mbps;
  const double large_mbps = VmType::standard_d3().net_mbps;
  const int64_t payload = 12 * 1000 * 1000;
  // Bottleneck is the slower endpoint's NIC.
  Duration d = topo.sample_latency("small", "large", payload,
                                   TimePoint::origin(), rng);
  EXPECT_NEAR(d.seconds(), payload / (small_mbps * 1e6), 0.01);
  topo.add_node("large2", "dc", VmType::standard_d3());
  d = topo.sample_latency("large", "large2", payload,
                          TimePoint::origin(), rng);
  EXPECT_NEAR(d.seconds(), payload / (large_mbps * 1e6), 0.01);
}

TEST(TopologyTest, InjectedDelayAppliesOnlyInWindow) {
  Topology topo = two_dc_topology();
  topo.set_jitter_fraction(0.0);
  topo.inject_node_delay("n2", msec(500), TimePoint(1000000),
                         TimePoint(2000000));
  Rng rng(1);
  EXPECT_EQ(topo.sample_latency("n1", "n2", 0, TimePoint(0), rng).us(), 35000);
  EXPECT_EQ(topo.sample_latency("n1", "n2", 0, TimePoint(1500000), rng).us(),
            535000);
  EXPECT_EQ(topo.sample_latency("n1", "n2", 0, TimePoint(2000000), rng).us(),
            35000);
}

TEST(TopologyTest, OutageWindow) {
  Topology topo = two_dc_topology();
  topo.inject_outage("n1", TimePoint(100), TimePoint(200));
  EXPECT_FALSE(topo.node_down("n1", TimePoint(99)));
  EXPECT_TRUE(topo.node_down("n1", TimePoint(100)));
  EXPECT_TRUE(topo.node_down("n1", TimePoint(199)));
  EXPECT_FALSE(topo.node_down("n1", TimePoint(200)));
  topo.clear_faults();
  EXPECT_FALSE(topo.node_down("n1", TimePoint(150)));
}

TEST(TopologyTest, PaperDefaultHasAllRegions) {
  Topology topo = Topology::paper_default();
  EXPECT_EQ(topo.base_rtt("aws-us-east", "aws-us-west").us(), 70000);
  EXPECT_EQ(topo.base_rtt("aws-eu-west", "aws-asia-east").us(), 240000);
  EXPECT_EQ(topo.base_rtt("azure-us-east", "aws-us-east").us(), 2000);
  // Azure US East inherits AWS US East distances.
  EXPECT_EQ(topo.base_rtt("azure-us-east", "aws-us-west").us(), 70000);
}

// ------------------------------------------------------------ Network

struct TransferResult {
  Status status = ok_status();
  int64_t completed_at_us = -1;
};

sim::Task<void> do_transfer(Network& net, std::string from, std::string to,
                            int64_t bytes, TransferResult& out) {
  out.status = co_await net.transfer(std::move(from), std::move(to), bytes);
  out.completed_at_us = net.sim().now().us();
}

TEST(NetworkTest, TransferTakesOneWayLatency) {
  sim::Simulation sim;
  Topology topo = two_dc_topology();
  topo.set_jitter_fraction(0.0);
  Network net(sim, std::move(topo));
  TransferResult r;
  sim.spawn(do_transfer(net, "n1", "n2", 0, r));
  sim.run();
  EXPECT_TRUE(r.status.ok());
  EXPECT_EQ(r.completed_at_us, 35000);
}

TEST(NetworkTest, TrafficAccounting) {
  sim::Simulation sim;
  Network net(sim, two_dc_topology());
  TransferResult r1, r2, r3;
  sim.spawn(do_transfer(net, "n1", "n2", 1000, r1));  // cross-DC
  sim.spawn(do_transfer(net, "n1", "n3", 500, r2));   // intra-DC
  sim.spawn(do_transfer(net, "n2", "n1", 200, r3));   // cross-DC reverse
  sim.run();
  const TrafficStats& t = net.traffic();
  EXPECT_EQ(t.total_messages, 3);
  EXPECT_EQ(t.total_bytes, 1700);
  EXPECT_EQ(t.cross_dc_bytes(), 1200);
  EXPECT_EQ(t.egress_bytes_from("dc-a"), 1000);
  EXPECT_EQ(t.egress_bytes_from("dc-b"), 200);
}

TEST(NetworkTest, TransferToDownNodeFails) {
  sim::Simulation sim;
  Topology topo = two_dc_topology();
  topo.inject_outage("n2", TimePoint(0), TimePoint(10000000));
  Network net(sim, std::move(topo));
  TransferResult r;
  sim.spawn(do_transfer(net, "n1", "n2", 100, r));
  sim.run();
  EXPECT_EQ(r.status.code(), StatusCode::kUnavailable);
  EXPECT_EQ(r.completed_at_us, Network::kUnreachableDelay.us());
  EXPECT_EQ(net.traffic().total_messages, 0);  // failed sends not billed
}

TEST(NetworkTest, NodeGoingDownMidFlightFailsTransfer) {
  sim::Simulation sim;
  Topology topo = two_dc_topology();
  topo.set_jitter_fraction(0.0);
  // n2 goes down at 10ms; one-way latency is 35ms, so the message is lost.
  topo.inject_outage("n2", TimePoint(10000), TimePoint(10000000));
  Network net(sim, std::move(topo));
  TransferResult r;
  sim.spawn(do_transfer(net, "n1", "n2", 0, r));
  sim.run();
  EXPECT_EQ(r.status.code(), StatusCode::kUnavailable);
}

TEST(TopologyTest, OutageEdgeCatchesMessagesInFlightAcrossReboot) {
  Topology topo = two_dc_topology();
  // Outage [10ms, 20ms): a message whose flight time overlaps any instant
  // of the window is lost, even when the node is back up at arrival time.
  topo.inject_outage("n2", TimePoint(10000), TimePoint(20000));
  EXPECT_TRUE(topo.node_down_during("n2", TimePoint(0), TimePoint(35000)));
  EXPECT_TRUE(topo.node_down_during("n2", TimePoint(15000), TimePoint(16000)));
  EXPECT_FALSE(topo.node_down_during("n2", TimePoint(20000), TimePoint(55000)));
  EXPECT_FALSE(topo.node_down_during("n2", TimePoint(0), TimePoint(9999)));
}

TEST(NetworkTest, TransferInFlightAcrossRebootFails) {
  sim::Simulation sim;
  Topology topo = two_dc_topology();
  topo.set_jitter_fraction(0.0);
  // One-way latency n1->n2 is 35ms; the outage covers [10ms, 20ms), fully
  // inside the flight window, so the message dies mid-flight.
  topo.inject_outage("n2", TimePoint(10000), TimePoint(20000));
  Network net(sim, std::move(topo));
  TransferResult r;
  sim.spawn(do_transfer(net, "n1", "n2", 0, r));
  sim.run();
  EXPECT_EQ(r.status.code(), StatusCode::kUnavailable);
}

TEST(TopologyTest, AsymmetricPartitionCutsOneDirection) {
  Topology topo = two_dc_topology();
  topo.inject_partition("n1", "n2", TimePoint(100), TimePoint(200),
                        /*bidirectional=*/false);
  EXPECT_TRUE(topo.partitioned("n1", "n2", TimePoint(150)));
  EXPECT_FALSE(topo.partitioned("n2", "n1", TimePoint(150)));
  EXPECT_FALSE(topo.partitioned("n1", "n2", TimePoint(99)));
  EXPECT_FALSE(topo.partitioned("n1", "n2", TimePoint(200)));  // window end
}

TEST(TopologyTest, BidirectionalPartitionCutsBothDirections) {
  Topology topo = two_dc_topology();
  topo.inject_partition("n1", "n2", TimePoint(100), TimePoint(200),
                        /*bidirectional=*/true);
  EXPECT_TRUE(topo.partitioned("n1", "n2", TimePoint(150)));
  EXPECT_TRUE(topo.partitioned("n2", "n1", TimePoint(150)));
  // Unrelated pairs are unaffected.
  EXPECT_FALSE(topo.partitioned("n1", "n3", TimePoint(150)));
  topo.clear_faults();
  EXPECT_FALSE(topo.partitioned("n1", "n2", TimePoint(150)));
}

TEST(NetworkTest, ResetTrafficClearsCounters) {
  sim::Simulation sim;
  Network net(sim, two_dc_topology());
  TransferResult r1;
  sim.spawn(do_transfer(net, "n1", "n2", 1000, r1));
  sim.run();
  ASSERT_EQ(net.traffic().total_messages, 1);
  ASSERT_EQ(net.traffic().total_bytes, 1000);
  net.reset_traffic();
  EXPECT_EQ(net.traffic().total_messages, 0);
  EXPECT_EQ(net.traffic().total_bytes, 0);
  EXPECT_EQ(net.traffic().dc_pair_bytes.size(), 0u);
  // Counting resumes from zero after the reset.
  TransferResult r2;
  sim.spawn(do_transfer(net, "n2", "n1", 200, r2));
  sim.run();
  EXPECT_EQ(net.traffic().total_messages, 1);
  EXPECT_EQ(net.traffic().total_bytes, 200);
}

TEST(NetworkTest, ChaosDropWindowLosesEveryMessageInside) {
  sim::Simulation sim(5);
  Topology topo = two_dc_topology();
  topo.set_jitter_fraction(0.0);
  Network net(sim, std::move(topo));
  ChaosWindow window;
  window.node = "n2";
  window.from = TimePoint(0);
  window.until = TimePoint(sec(1).us());
  window.drop_prob = 1.0;
  net.inject_chaos(window);

  TransferResult in_window, other_pair;
  sim.spawn(do_transfer(net, "n1", "n2", 100, in_window));
  sim.spawn(do_transfer(net, "n1", "n3", 100, other_pair));
  sim.run();
  EXPECT_EQ(in_window.status.code(), StatusCode::kUnavailable);
  EXPECT_TRUE(other_pair.status.ok());  // window scoped to n2 only
  EXPECT_EQ(net.chaos_stats().dropped, 1);

  // After the window (and after clear_chaos) messages flow again.
  net.clear_chaos();
  TransferResult after;
  sim.spawn(do_transfer(net, "n1", "n2", 100, after));
  sim.run();
  EXPECT_TRUE(after.status.ok());
}

TEST(NetworkTest, VmTypesHaveExpectedOrdering) {
  // Calibration sanity: bigger Azure VMs get more network throughput.
  EXPECT_LT(VmType::basic_a2().net_mbps, VmType::standard_d1().net_mbps);
  EXPECT_LT(VmType::standard_d1().net_mbps, VmType::standard_d2().net_mbps);
  EXPECT_LE(VmType::standard_d2().net_mbps, VmType::standard_d3().net_mbps);
}

}  // namespace
}  // namespace wiera::net
