// Edge-case and scenario tests for the Wiera layer:
//  * Fig. 6b SimplerConsistency end-to-end (forwarding instances)
//  * block-and-queue semantics during a consistency change
//  * get failover when the client's closest replica is down
//  * replication egress accounting (cost inputs)
//  * §3.2.2 modular instances via dynamic tier mounting
//  * shared-NIC serialization under concurrency
#include <gtest/gtest.h>

#include <memory>

#include "common/units.h"
#include "cost/cost_model.h"
#include "policy/builtin_policies.h"
#include "policy/parser.h"
#include "tiera/forward_tier.h"
#include "wiera/client.h"
#include "wiera/controller.h"

namespace wiera::geo {
namespace {

struct Cluster {
  sim::Simulation sim;
  net::Network network;
  rpc::Registry registry;
  WieraController controller;
  std::vector<std::unique_ptr<TieraServer>> servers;

  explicit Cluster(uint64_t seed = 1)
      : sim(seed),
        network(sim, make_topology()),
        controller(sim, network, registry,
                   WieraController::Config{"wiera-controller", sec(1), 0}) {
    for (const char* node :
         {"tiera-us-west", "tiera-us-east", "tiera-eu-west",
          "tiera-asia-east", "tiera-us-west-1", "tiera-us-west-2",
          "tiera-us-west-3"}) {
      servers.push_back(
          std::make_unique<TieraServer>(sim, network, registry, node));
      controller.register_server(servers.back().get());
    }
  }

  static net::Topology make_topology() {
    net::Topology topo = net::Topology::paper_default();
    topo.set_jitter_fraction(0.0);
    // Three same-region US West DCs for the Fig. 6b scenario (the paper's
    // earlier work shows multiple DCs within a region, ~2ms apart).
    topo.add_datacenter("aws-us-west-1", net::Provider::kAws, "us-west-1");
    topo.add_datacenter("aws-us-west-2", net::Provider::kAws, "us-west-2");
    topo.add_datacenter("aws-us-west-3", net::Provider::kAws, "us-west-3");
    for (const char* a : {"aws-us-west-1", "aws-us-west-2", "aws-us-west-3"}) {
      for (const char* b :
           {"aws-us-west-1", "aws-us-west-2", "aws-us-west-3"}) {
        if (std::string(a) < std::string(b)) topo.set_rtt(a, b, msec(2));
      }
      // Distance to the controller's region.
      topo.set_rtt(a, "aws-us-east", msec(70));
      topo.set_rtt(a, "aws-us-west", msec(2));
      topo.set_rtt(a, "aws-eu-west", msec(140));
      topo.set_rtt(a, "aws-asia-east", msec(110));
      topo.set_rtt(a, "azure-us-east", msec(70));
    }
    topo.add_node("wiera-controller", "aws-us-east");
    topo.add_node("tiera-us-west", "aws-us-west");
    topo.add_node("tiera-us-east", "aws-us-east");
    topo.add_node("tiera-eu-west", "aws-eu-west");
    topo.add_node("tiera-asia-east", "aws-asia-east");
    topo.add_node("tiera-us-west-1", "aws-us-west-1");
    topo.add_node("tiera-us-west-2", "aws-us-west-2");
    topo.add_node("tiera-us-west-3", "aws-us-west-3");
    topo.add_node("client-us-west", "aws-us-west");
    topo.add_node("client-us-west-2", "aws-us-west-2");
    return topo;
  }

  template <typename F>
  void run(F&& body) {
    bool done = false;
    auto wrapper = [](sim::Simulation& s, F b, bool& flag) -> sim::Task<void> {
      co_await b();
      flag = true;
      s.stop();
    };
    sim.spawn(wrapper(sim, std::forward<F>(body), done));
    sim.run();
    ASSERT_TRUE(done);
  }
};

// ------------------------------------------------------------ Fig. 6b

TEST(SimplerConsistencyTest, ForwardingInstancesFanIntoPrimary) {
  Cluster cluster;
  WieraController::StartOptions options;
  options.global = std::move(policy::parse_policy(
                                 policy::builtin::simpler_consistency()))
                       .value();
  options.local_params["t"] = policy::Value::duration_of(sec(60));
  auto peers = cluster.controller.start_instances("fig6b",
                                                  std::move(options));
  ASSERT_TRUE(peers.ok()) << peers.status().to_string();
  ASSERT_EQ(peers->size(), 3u);
  EXPECT_EQ(cluster.controller.current_primary("fig6b"), "tiera-us-west-1");

  // A client near the US-West-2 forwarding instance: puts and gets both
  // fan into the primary's fast tiers two milliseconds away.
  WieraClient client(cluster.sim, cluster.network, cluster.registry, "app",
                     "client-us-west-2", *peers);
  EXPECT_EQ(client.closest_peer(), "tiera-us-west-2");

  cluster.run([&]() -> sim::Task<void> {
    auto put = co_await client.put("k", Blob("v"));
    EXPECT_TRUE(put.ok()) << put.status().to_string();
    auto got = co_await client.get("k");
    EXPECT_TRUE(got.ok());
    EXPECT_EQ(got->served_by, "tiera-us-west-1");  // served by the primary
    EXPECT_EQ(got->value.to_string(), "v");
  });

  // The forwarding instance stored nothing locally.
  WieraPeer* fwd = cluster.controller.peer("tiera-us-west-2");
  EXPECT_EQ(fwd->local().tier_count(), 0u);
  EXPECT_EQ(fwd->local().meta().object_count(), 0u);
  // Data lives only at the primary (single region: no consistency traffic).
  WieraPeer* primary = cluster.controller.peer("tiera-us-west-1");
  EXPECT_NE(primary->local().meta().find("k"), nullptr);
  // Forwarded put counted by the requests monitor counters.
  EXPECT_EQ(primary->forwarded_puts_from("tiera-us-west-2"), 1);
}

// ------------------------------------------------------------ block & queue

TEST(ChangeConsistencyEdgeTest, OpsIssuedDuringSwitchCompleteAfter) {
  Cluster cluster;
  WieraController::StartOptions options;
  options.global = std::move(policy::parse_policy(
                                 policy::builtin::multi_primaries_consistency()))
                       .value();
  options.local_params["t"] = policy::Value::duration_of(sec(60));
  auto peers = cluster.controller.start_instances("w", std::move(options));
  ASSERT_TRUE(peers.ok());

  WieraClient client(cluster.sim, cluster.network, cluster.registry, "app",
                     "client-us-west", *peers);

  int64_t put_done_us = -1;
  int64_t switch_done_us = -1;
  bool all_done = false;

  // Start a put, then immediately start a consistency change. The put that
  // arrives during the change is blocked and completes under the new mode.
  auto put_task = [](Cluster& c, WieraClient& cl,
                     int64_t& done_us) -> sim::Task<void> {
    // Delay so the change starts first at the peer.
    co_await c.sim.delay(msec(40));
    auto put = co_await cl.put("during-switch", Blob("v"));
    EXPECT_TRUE(put.ok());
    done_us = c.sim.now().us();
  };
  auto switch_task = [](Cluster& c, int64_t& done_us,
                        bool& flag) -> sim::Task<void> {
    Status st = co_await c.controller.change_consistency(
        "w", ConsistencyMode::kEventual);
    EXPECT_TRUE(st.ok());
    done_us = c.sim.now().us();
    co_await c.sim.delay(sec(2));
    flag = true;
    c.sim.stop();
  };
  cluster.sim.spawn(put_task(cluster, client, put_done_us));
  cluster.sim.spawn(switch_task(cluster, switch_done_us, all_done));
  cluster.sim.run();
  ASSERT_TRUE(all_done);

  EXPECT_GT(put_done_us, 0);
  // The blocked put finished fast once unblocked (eventual mode), without
  // MultiPrimaries' lock+broadcast cost — i.e. it ran under the new mode.
  WieraPeer* west = cluster.controller.peer("tiera-us-west");
  EXPECT_EQ(west->mode(), ConsistencyMode::kEventual);
  EXPECT_LT(west->put_latency().max().ms(), 100.0);
}

// ------------------------------------------------------------ get failover

TEST(GetFailoverTest, ClientReadsFromNextReplicaWhenClosestDown) {
  Cluster cluster;
  WieraController::StartOptions options;
  options.global = std::move(policy::parse_policy(
                                 policy::builtin::eventual_consistency()))
                       .value();
  options.local_params["t"] = policy::Value::duration_of(sec(60));
  options.queue_flush_interval = msec(50);
  auto peers = cluster.controller.start_instances("w", std::move(options));
  ASSERT_TRUE(peers.ok());

  WieraClient client(cluster.sim, cluster.network, cluster.registry, "app",
                     "client-us-west", *peers);
  cluster.run([&]() -> sim::Task<void> {
    auto put = co_await client.put("k", Blob("v"));
    EXPECT_TRUE(put.ok());
    co_await cluster.sim.delay(sec(2));  // replicate everywhere
  });

  // Closest replica goes dark; reads keep working via the next closest.
  cluster.network.topology().inject_outage(
      "tiera-us-west", cluster.sim.now(), TimePoint::max());
  cluster.run([&]() -> sim::Task<void> {
    auto got = co_await client.get("k");
    EXPECT_TRUE(got.ok()) << got.status().to_string();
    EXPECT_NE(got->served_by, "tiera-us-west");
    EXPECT_EQ(got->value.to_string(), "v");
  });
  EXPECT_GE(client.failovers(), 1);
}

// ------------------------------------------------------------ egress accounting

TEST(EgressAccountingTest, ReplicationTrafficIsBilled) {
  Cluster cluster;
  WieraController::StartOptions options;
  options.global = std::move(policy::parse_policy(
                                 policy::builtin::multi_primaries_consistency()))
                       .value();
  options.local_params["t"] = policy::Value::duration_of(sec(60));
  auto peers = cluster.controller.start_instances("w", std::move(options));
  ASSERT_TRUE(peers.ok());
  cluster.network.reset_traffic();

  WieraClient client(cluster.sim, cluster.network, cluster.registry, "app",
                     "client-us-west", *peers);
  constexpr int64_t kSize = 1 * MiB;
  cluster.run([&]() -> sim::Task<void> {
    auto put = co_await client.put("big", Blob::zeros(kSize));
    EXPECT_TRUE(put.ok());
  });

  // Synchronous broadcast shipped the payload to 3 remote regions at
  // least; egress from US West covers those replicas.
  const int64_t egress =
      cluster.network.traffic().egress_bytes_from("aws-us-west");
  EXPECT_GE(egress, 3 * kSize);
  const double bill = cost::CostModel::bill_traffic(cluster.network.traffic());
  EXPECT_GT(bill, 0.0);
  EXPECT_NEAR(bill,
              cost::kCrossDcPerGb *
                  bytes_to_gb(cluster.network.traffic().cross_dc_bytes()),
              1e-9);
}

// ------------------------------------------------------------ §3.2.2 modular

TEST(ModularInstanceTest, IntermediateDataOverRawBigData) {
  // The paper's example: RAW-BIG-DATA-INSTANCES (durable + cheap) mounted
  // read-only into INTERMEDIATE-DATA (local Memcached for intermediates).
  sim::Simulation sim;

  auto raw_doc = policy::parse_policy(R"(
Tiera RawBigData() {
   tier1: {name: S3, size: 1T};
}
)");
  tiera::TieraInstance::Config raw_config;
  raw_config.instance_id = "raw-big-data";
  raw_config.region = "us-east";
  raw_config.policy = std::move(raw_doc).value();
  tiera::TieraInstance raw(sim, std::move(raw_config));

  auto inter_doc = policy::parse_policy(R"(
Tiera IntermediateData() {
   tier1: {name: Memcached, size: 1G};
}
)");
  tiera::TieraInstance::Config inter_config;
  inter_config.instance_id = "intermediate";
  inter_config.region = "us-east";
  inter_config.policy = std::move(inter_doc).value();
  tiera::TieraInstance intermediate(sim, std::move(inter_config));

  // Mount the raw instance as a read-only second tier at run time.
  ASSERT_TRUE(intermediate
                  .mount_tier("tier2", std::make_unique<tiera::ForwardTier>(
                                           sim, "tier2", raw,
                                           /*read_only=*/true))
                  .ok());
  EXPECT_FALSE(intermediate.mount_tier("tier2", nullptr).ok());

  bool done = false;
  auto body = [&]() -> sim::Task<void> {
    // Raw inputs land in the raw instance...
    co_await raw.put("input:part-0", Blob("raw-bytes"));
    // ...intermediates in the fast local tier...
    co_await intermediate.put("intermediate:sum", Blob("42"));
    auto fast = co_await intermediate.get("intermediate:sum");
    EXPECT_TRUE(fast.ok());
    // ...and raw data is readable *through* the intermediate instance's
    // mounted tier (ForwardTier delegates whole-object reads).
    auto* tier2 = intermediate.tier_by_label("tier2");
    EXPECT_NE(tier2, nullptr);
    if (tier2 == nullptr) co_return;
    auto raw_read = co_await tier2->get("input:part-0", {});
    EXPECT_TRUE(raw_read.ok());
    EXPECT_EQ(raw_read->to_string(), "raw-bytes");
    // Read-only: writes through the mount are refused.
    auto st = co_await tier2->put("x", Blob("y"), {});
    EXPECT_EQ(st.code(), StatusCode::kFailedPrecondition);
    done = true;
    sim.stop();
  };
  sim.spawn(body());
  sim.run();
  ASSERT_TRUE(done);

  // Unmount restores the original tier set.
  EXPECT_TRUE(intermediate.unmount_tier("tier2").ok());
  EXPECT_EQ(intermediate.unmount_tier("tier2").code(),
            StatusCode::kNotFound);
  EXPECT_EQ(intermediate.tier_count(), 1u);
}

// ------------------------------------------------------------ Fig. 6a

TEST(ReducedCostPolicyTest, BuiltinLaunchesAndDemotesColdData) {
  // Launch the paper's ReducedCostPolicy exactly as printed (Fig. 6a):
  // one region, PersistentInstance ("PersistanceInstance" in the paper's
  // listing) with LocalDisk + CheapestArchival tiers, 120 h idle threshold.
  Cluster cluster;
  WieraController::StartOptions options;
  options.global = std::move(policy::parse_policy(
                                 policy::builtin::reduced_cost_policy()))
                       .value();
  options.local_params["t"] = policy::Value::duration_of(sec(60));
  // Map the policy's region name onto the US-West node.
  options.node_for_region = [](const std::string&) {
    return std::string("tiera-us-west");
  };
  auto peers = cluster.controller.start_instances("fig6a",
                                                  std::move(options));
  ASSERT_TRUE(peers.ok()) << peers.status().to_string();
  ASSERT_EQ(peers->size(), 1u);

  WieraPeer* peer = cluster.controller.peer("tiera-us-west");
  ASSERT_NE(peer, nullptr);
  // Region tier overrides replaced PersistentInstance's tiers with
  // LocalDisk + CheapestArchival (Glacier model).
  ASSERT_EQ(peer->local().tier_count(), 2u);
  EXPECT_EQ(peer->local().tier_by_label("tier2")->spec().kind,
            store::TierKind::kGlacier);

  WieraClient client(cluster.sim, cluster.network, cluster.registry, "app",
                     "client-us-west", *peers);
  cluster.run([&]() -> sim::Task<void> {
    auto put = co_await client.put("report.pdf", Blob::zeros(4096));
    EXPECT_TRUE(put.ok());
  });
  // PersistentInstance's cold rule came from the *global* doc's event
  // (object.lastAccessedTime > 120 hours): after 130 idle hours the object
  // moved to the archival tier.
  cluster.sim.run_until(TimePoint(hoursd(130).us()));
  const auto* meta = peer->local().meta().find("report.pdf");
  ASSERT_NE(meta, nullptr);
  EXPECT_EQ(meta->latest()->tier, "tier2");
  EXPECT_GE(peer->local().cold_moves(), 1);
}

// ------------------------------------------------------------ Table 2 API

TEST(VersioningApiTest, VersionListAndRemovePropagate) {
  Cluster cluster;
  WieraController::StartOptions options;
  options.global = std::move(policy::parse_policy(
                                 policy::builtin::multi_primaries_consistency()))
                       .value();
  options.local_params["t"] = policy::Value::duration_of(sec(60));
  auto peers = cluster.controller.start_instances("w", std::move(options));
  ASSERT_TRUE(peers.ok());

  WieraClient client(cluster.sim, cluster.network, cluster.registry, "app",
                     "client-us-west", *peers);
  cluster.run([&]() -> sim::Task<void> {
    // Three versions, replicated synchronously everywhere.
    co_await client.put("k", Blob("v1"));
    co_await client.put("k", Blob("v2"));
    co_await client.put("k", Blob("v3"));

    auto versions = co_await client.get_version_list("k");
    EXPECT_TRUE(versions.ok());
    EXPECT_EQ(*versions, (std::vector<int64_t>{1, 2, 3}));

    // Old versions retrievable by number.
    auto v1 = co_await client.get_version("k", 1);
    EXPECT_TRUE(v1.ok());
    EXPECT_EQ(v1->value.to_string(), "v1");

    // removeVersion drops one version on every replica.
    Status st = co_await client.remove_version("k", 2);
    EXPECT_TRUE(st.ok()) << st.to_string();
    versions = co_await client.get_version_list("k");
    EXPECT_EQ(*versions, (std::vector<int64_t>{1, 3}));
  });
  for (const std::string& id : *peers) {
    EXPECT_EQ(cluster.controller.peer(id)->version_list("k"),
              (std::vector<int64_t>{1, 3}))
        << id;
  }

  // remove drops the whole object everywhere.
  cluster.run([&]() -> sim::Task<void> {
    Status st = co_await client.remove("k");
    EXPECT_TRUE(st.ok()) << st.to_string();
    auto gone = co_await client.get("k");
    EXPECT_EQ(gone.status().code(), StatusCode::kNotFound);
  });
  for (const std::string& id : *peers) {
    EXPECT_EQ(cluster.controller.peer(id)->local().meta().find("k"), nullptr)
        << id;
  }
}

TEST(VersioningApiTest, UpdateWritesExplicitVersionEverywhere) {
  Cluster cluster;
  WieraController::StartOptions options;
  options.global = std::move(policy::parse_policy(
                                 policy::builtin::multi_primaries_consistency()))
                       .value();
  options.local_params["t"] = policy::Value::duration_of(sec(60));
  auto peers = cluster.controller.start_instances("w", std::move(options));
  ASSERT_TRUE(peers.ok());
  WieraClient client(cluster.sim, cluster.network, cluster.registry, "app",
                     "client-us-west", *peers);
  cluster.run([&]() -> sim::Task<void> {
    co_await client.put("k", Blob("v1"));
    // Rewrite version 1 in place (Table 2 update semantics).
    auto updated = co_await client.update("k", 1, Blob("v1-fixed"));
    EXPECT_TRUE(updated.ok());
    EXPECT_EQ(updated->version, 1);
    auto got = co_await client.get_version("k", 1);
    EXPECT_TRUE(got.ok());
    EXPECT_EQ(got->value.to_string(), "v1-fixed");
    // Writing a far-future version works too and becomes latest.
    auto v9 = co_await client.update("k", 9, Blob("v9"));
    EXPECT_TRUE(v9.ok());
    auto latest = co_await client.get("k");
    EXPECT_EQ(latest->version, 9);
  });
  // Synchronous replication carried the explicit versions everywhere.
  for (const std::string& id : *peers) {
    EXPECT_EQ(cluster.controller.peer(id)->version_list("k"),
              (std::vector<int64_t>{1, 9}))
        << id;
  }
}

TEST(VersioningApiTest, RemoveMissingKeyIsNotFound) {
  Cluster cluster;
  WieraController::StartOptions options;
  options.global = std::move(policy::parse_policy(
                                 policy::builtin::eventual_consistency()))
                       .value();
  options.local_params["t"] = policy::Value::duration_of(sec(60));
  auto peers = cluster.controller.start_instances("w", std::move(options));
  ASSERT_TRUE(peers.ok());
  WieraClient client(cluster.sim, cluster.network, cluster.registry, "app",
                     "client-us-west", *peers);
  cluster.run([&]() -> sim::Task<void> {
    Status st = co_await client.remove("never-existed");
    EXPECT_EQ(st.code(), StatusCode::kNotFound);
    auto versions = co_await client.get_version_list("never-existed");
    EXPECT_TRUE(versions.ok());
    EXPECT_TRUE(versions->empty());
  });
}

// ------------------------------------------------------------ queue retry

TEST(QueueRetryTest, QueuedUpdatesSurviveReplicaOutage) {
  // Eventual consistency: a replica is down during the flush window. The
  // queued update must be retried until the replica recovers — dropping it
  // would diverge that replica forever.
  Cluster cluster;
  WieraController::StartOptions options;
  options.global = std::move(policy::parse_policy(
                                 policy::builtin::eventual_consistency()))
                       .value();
  options.local_params["t"] = policy::Value::duration_of(sec(60));
  options.queue_flush_interval = msec(200);
  auto peers = cluster.controller.start_instances("w", std::move(options));
  ASSERT_TRUE(peers.ok());

  // EU is dark from the start until t=10s.
  cluster.network.topology().inject_outage("tiera-eu-west", TimePoint(0),
                                           TimePoint(sec(10).us()));

  WieraClient client(cluster.sim, cluster.network, cluster.registry, "app",
                     "client-us-west", *peers);
  bool put_done = false;
  auto writer = [](WieraClient& c, bool& flag) -> sim::Task<void> {
    auto put = co_await c.put("k", Blob("v"));
    EXPECT_TRUE(put.ok());
    flag = true;
  };
  cluster.sim.spawn(writer(client, put_done));

  // While EU is down, the healthy replicas converge but EU does not.
  cluster.sim.run_until(TimePoint(sec(5).us()));
  ASSERT_TRUE(put_done);
  EXPECT_NE(cluster.controller.peer("tiera-us-east")->local().meta().find("k"),
            nullptr);
  EXPECT_EQ(cluster.controller.peer("tiera-eu-west")->local().meta().find("k"),
            nullptr);

  // After recovery, the retried queue delivers the update.
  cluster.sim.run_until(TimePoint(sec(15).us()));
  EXPECT_NE(cluster.controller.peer("tiera-eu-west")->local().meta().find("k"),
            nullptr);
  // The writer's queue eventually drained.
  EXPECT_EQ(cluster.controller.peer("tiera-us-west")->queue_depth(), 0);
}

// ------------------------------------------------------ deadline vs migration

TEST(MigrationDeadlineTest, GetDuringPrimaryMigrationCompletesOrExpires) {
  // Regression: a GET issued while the primary is migrating used to be able
  // to wait on the moving forward target indefinitely. With an op deadline
  // every such GET must resolve — success or kDeadlineExceeded — within the
  // deadline, and the simulation must fully drain (no hung coroutine).
  Cluster cluster;
  WieraController::StartOptions options;
  options.global = std::move(policy::parse_policy(
                                 policy::builtin::primary_backup_consistency()))
                       .value();
  options.local_params["t"] = policy::Value::duration_of(sec(60));
  auto peers = cluster.controller.start_instances("w", std::move(options));
  ASSERT_TRUE(peers.ok());

  WieraClient::Config client_config;
  client_config.op_deadline = sec(2);
  WieraClient client(cluster.sim, cluster.network, cluster.registry, "app",
                     "client-us-west", *peers, client_config);

  cluster.run([&]() -> sim::Task<void> {
    auto put = co_await client.put("k", Blob("v"));
    EXPECT_TRUE(put.ok()) << put.status().to_string();
  });

  // Fire a burst of GETs bracketing the migration; every one must resolve
  // within its deadline (plus scheduling slack) and never hang.
  int resolved = 0;
  int failed_late = 0;
  auto reader = [](Cluster& c, WieraClient& cl, Duration delay_before,
                   int& done, int& late) -> sim::Task<void> {
    co_await c.sim.delay(delay_before);
    const TimePoint issued = c.sim.now();
    auto got = co_await cl.get("k");
    const Duration took = c.sim.now() - issued;
    if (!got.ok()) {
      EXPECT_TRUE(got.status().code() == StatusCode::kDeadlineExceeded ||
                  got.status().code() == StatusCode::kUnavailable)
          << got.status().to_string();
    }
    // op_deadline 2s + one cross-region RTT of slack.
    if (took > sec(2) + msec(200)) late++;
    done++;
  };
  auto migrator = [](Cluster& c) -> sim::Task<void> {
    co_await c.sim.delay(msec(30));
    Status st = co_await c.controller.change_primary("w", "tiera-us-east");
    EXPECT_TRUE(st.ok()) << st.to_string();
  };
  constexpr int kReaders = 8;
  for (int i = 0; i < kReaders; ++i) {
    cluster.sim.spawn(
        reader(cluster, client, msec(10 * i), resolved, failed_late));
  }
  cluster.sim.spawn(migrator(cluster));
  // 30 virtual seconds is 15x the op deadline: if any GET coroutine hangs
  // past its deadline, `resolved` stays short. (run_until, because the
  // controller heartbeat and queue flushers never drain on their own.)
  cluster.sim.run_until(cluster.sim.now() + sec(30));
  EXPECT_EQ(resolved, kReaders);
  EXPECT_EQ(failed_late, 0);
}

// ------------------------------------------------------------ NIC sharing

TEST(NicSharingTest, ConcurrentTransfersSerializeOnOneNic) {
  sim::Simulation sim;
  net::Topology topo;
  topo.add_datacenter("dc-a", net::Provider::kAws, "us-east");
  topo.add_datacenter("dc-b", net::Provider::kAws, "us-west");
  topo.set_rtt("dc-a", "dc-b", msec(10));
  topo.set_jitter_fraction(0.0);
  topo.add_node("sender", "dc-a", net::VmType{"tiny", 10.0});  // 10 MB/s
  topo.add_node("rx1", "dc-b", net::VmType{"big", 1000.0});
  topo.add_node("rx2", "dc-b", net::VmType{"big", 1000.0});
  net::Network network(sim, std::move(topo));

  // Two concurrent 10 MB transfers from one 10 MB/s sender: aggregate must
  // take ~2 s, not ~1 s (the NIC is shared, not per-message).
  int completed = 0;
  auto xfer = [](net::Network& net, std::string to,
                 int& count) -> sim::Task<void> {
    Status st = co_await net.transfer("sender", std::move(to), 10 * 1000000);
    EXPECT_TRUE(st.ok());
    count++;
  };
  sim.spawn(xfer(network, "rx1", completed));
  sim.spawn(xfer(network, "rx2", completed));
  sim.run();
  EXPECT_EQ(completed, 2);
  EXPECT_GE(sim.now().seconds(), 1.99);
  EXPECT_LE(sim.now().seconds(), 2.2);
}

}  // namespace
}  // namespace wiera::geo
